file(REMOVE_RECURSE
  "CMakeFiles/allocator_stress_test.dir/twine/allocator_stress_test.cc.o"
  "CMakeFiles/allocator_stress_test.dir/twine/allocator_stress_test.cc.o.d"
  "allocator_stress_test"
  "allocator_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocator_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
