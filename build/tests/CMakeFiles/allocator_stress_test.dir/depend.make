# Empty dependencies file for allocator_stress_test.
# This may be replaced when dependencies are built.
