# Empty compiler generated dependencies file for capacity_portal_test.
# This may be replaced when dependencies are built.
