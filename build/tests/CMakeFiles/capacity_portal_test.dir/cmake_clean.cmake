file(REMOVE_RECURSE
  "CMakeFiles/capacity_portal_test.dir/core/capacity_portal_test.cc.o"
  "CMakeFiles/capacity_portal_test.dir/core/capacity_portal_test.cc.o.d"
  "capacity_portal_test"
  "capacity_portal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_portal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
