# Empty compiler generated dependencies file for request_gen_test.
# This may be replaced when dependencies are built.
