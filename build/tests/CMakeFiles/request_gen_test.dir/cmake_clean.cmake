file(REMOVE_RECURSE
  "CMakeFiles/request_gen_test.dir/fleet/request_gen_test.cc.o"
  "CMakeFiles/request_gen_test.dir/fleet/request_gen_test.cc.o.d"
  "request_gen_test"
  "request_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
