# Empty dependencies file for assignment_decoder_test.
# This may be replaced when dependencies are built.
