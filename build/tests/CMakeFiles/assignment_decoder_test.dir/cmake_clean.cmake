file(REMOVE_RECURSE
  "CMakeFiles/assignment_decoder_test.dir/core/assignment_decoder_test.cc.o"
  "CMakeFiles/assignment_decoder_test.dir/core/assignment_decoder_test.cc.o.d"
  "assignment_decoder_test"
  "assignment_decoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
