file(REMOVE_RECURSE
  "CMakeFiles/async_solver_test.dir/core/async_solver_test.cc.o"
  "CMakeFiles/async_solver_test.dir/core/async_solver_test.cc.o.d"
  "async_solver_test"
  "async_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
