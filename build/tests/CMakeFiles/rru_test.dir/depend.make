# Empty dependencies file for rru_test.
# This may be replaced when dependencies are built.
