file(REMOVE_RECURSE
  "CMakeFiles/rru_test.dir/core/rru_test.cc.o"
  "CMakeFiles/rru_test.dir/core/rru_test.cc.o.d"
  "rru_test"
  "rru_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
