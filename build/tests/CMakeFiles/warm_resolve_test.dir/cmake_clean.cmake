file(REMOVE_RECURSE
  "CMakeFiles/warm_resolve_test.dir/solver/warm_resolve_test.cc.o"
  "CMakeFiles/warm_resolve_test.dir/solver/warm_resolve_test.cc.o.d"
  "warm_resolve_test"
  "warm_resolve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warm_resolve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
