# Empty dependencies file for warm_resolve_test.
# This may be replaced when dependencies are built.
