file(REMOVE_RECURSE
  "CMakeFiles/online_mover_test.dir/core/online_mover_test.cc.o"
  "CMakeFiles/online_mover_test.dir/core/online_mover_test.cc.o.d"
  "online_mover_test"
  "online_mover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_mover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
