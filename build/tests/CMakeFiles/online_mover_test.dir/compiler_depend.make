# Empty compiler generated dependencies file for online_mover_test.
# This may be replaced when dependencies are built.
