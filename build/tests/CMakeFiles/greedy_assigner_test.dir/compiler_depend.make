# Empty compiler generated dependencies file for greedy_assigner_test.
# This may be replaced when dependencies are built.
