file(REMOVE_RECURSE
  "CMakeFiles/greedy_assigner_test.dir/twine/greedy_assigner_test.cc.o"
  "CMakeFiles/greedy_assigner_test.dir/twine/greedy_assigner_test.cc.o.d"
  "greedy_assigner_test"
  "greedy_assigner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_assigner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
