file(REMOVE_RECURSE
  "CMakeFiles/solver_edge_test.dir/solver/solver_edge_test.cc.o"
  "CMakeFiles/solver_edge_test.dir/solver/solver_edge_test.cc.o.d"
  "solver_edge_test"
  "solver_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
