file(REMOVE_RECURSE
  "CMakeFiles/fleet_gen_test.dir/fleet/fleet_gen_test.cc.o"
  "CMakeFiles/fleet_gen_test.dir/fleet/fleet_gen_test.cc.o.d"
  "fleet_gen_test"
  "fleet_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
