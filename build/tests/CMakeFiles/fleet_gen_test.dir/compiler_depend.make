# Empty compiler generated dependencies file for fleet_gen_test.
# This may be replaced when dependencies are built.
