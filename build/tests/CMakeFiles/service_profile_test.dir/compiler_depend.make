# Empty compiler generated dependencies file for service_profile_test.
# This may be replaced when dependencies are built.
