file(REMOVE_RECURSE
  "CMakeFiles/service_profile_test.dir/fleet/service_profile_test.cc.o"
  "CMakeFiles/service_profile_test.dir/fleet/service_profile_test.cc.o.d"
  "service_profile_test"
  "service_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
