file(REMOVE_RECURSE
  "CMakeFiles/resource_broker_test.dir/broker/resource_broker_test.cc.o"
  "CMakeFiles/resource_broker_test.dir/broker/resource_broker_test.cc.o.d"
  "resource_broker_test"
  "resource_broker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
