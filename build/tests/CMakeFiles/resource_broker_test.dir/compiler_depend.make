# Empty compiler generated dependencies file for resource_broker_test.
# This may be replaced when dependencies are built.
