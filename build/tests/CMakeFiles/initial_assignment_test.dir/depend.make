# Empty dependencies file for initial_assignment_test.
# This may be replaced when dependencies are built.
