file(REMOVE_RECURSE
  "CMakeFiles/initial_assignment_test.dir/core/initial_assignment_test.cc.o"
  "CMakeFiles/initial_assignment_test.dir/core/initial_assignment_test.cc.o.d"
  "initial_assignment_test"
  "initial_assignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initial_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
