file(REMOVE_RECURSE
  "CMakeFiles/hardware_test.dir/topology/hardware_test.cc.o"
  "CMakeFiles/hardware_test.dir/topology/hardware_test.cc.o.d"
  "hardware_test"
  "hardware_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
