file(REMOVE_RECURSE
  "CMakeFiles/solve_input_test.dir/core/solve_input_test.cc.o"
  "CMakeFiles/solve_input_test.dir/core/solve_input_test.cc.o.d"
  "solve_input_test"
  "solve_input_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_input_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
