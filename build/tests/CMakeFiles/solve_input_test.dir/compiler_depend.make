# Empty compiler generated dependencies file for solve_input_test.
# This may be replaced when dependencies are built.
