# Empty dependencies file for emergency_test.
# This may be replaced when dependencies are built.
