file(REMOVE_RECURSE
  "CMakeFiles/state_io_test.dir/core/state_io_test.cc.o"
  "CMakeFiles/state_io_test.dir/core/state_io_test.cc.o.d"
  "state_io_test"
  "state_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
