# Empty dependencies file for state_io_test.
# This may be replaced when dependencies are built.
