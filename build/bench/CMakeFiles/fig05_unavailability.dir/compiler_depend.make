# Empty compiler generated dependencies file for fig05_unavailability.
# This may be replaced when dependencies are built.
