file(REMOVE_RECURSE
  "CMakeFiles/fig05_unavailability.dir/fig05_unavailability.cpp.o"
  "CMakeFiles/fig05_unavailability.dir/fig05_unavailability.cpp.o.d"
  "fig05_unavailability"
  "fig05_unavailability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_unavailability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
