# Empty dependencies file for fig07_alloc_time.
# This may be replaced when dependencies are built.
