
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_quality_gap.cpp" "bench/CMakeFiles/fig09_quality_gap.dir/fig09_quality_gap.cpp.o" "gcc" "bench/CMakeFiles/fig09_quality_gap.dir/fig09_quality_gap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ras_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/ras_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ras_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/twine/CMakeFiles/ras_twine.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/ras_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ras_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ras_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
