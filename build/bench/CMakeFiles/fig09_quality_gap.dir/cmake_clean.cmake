file(REMOVE_RECURSE
  "CMakeFiles/fig09_quality_gap.dir/fig09_quality_gap.cpp.o"
  "CMakeFiles/fig09_quality_gap.dir/fig09_quality_gap.cpp.o.d"
  "fig09_quality_gap"
  "fig09_quality_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_quality_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
