# Empty dependencies file for fig09_quality_gap.
# This may be replaced when dependencies are built.
