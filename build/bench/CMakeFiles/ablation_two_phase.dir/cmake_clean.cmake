file(REMOVE_RECURSE
  "CMakeFiles/ablation_two_phase.dir/ablation_two_phase.cpp.o"
  "CMakeFiles/ablation_two_phase.dir/ablation_two_phase.cpp.o.d"
  "ablation_two_phase"
  "ablation_two_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_two_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
