file(REMOVE_RECURSE
  "../lib/libras_bench_sweep.a"
  "../lib/libras_bench_sweep.pdb"
  "CMakeFiles/ras_bench_sweep.dir/sweep_common.cpp.o"
  "CMakeFiles/ras_bench_sweep.dir/sweep_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_bench_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
