file(REMOVE_RECURSE
  "../lib/libras_bench_sweep.a"
)
