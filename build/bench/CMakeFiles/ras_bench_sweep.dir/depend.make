# Empty dependencies file for ras_bench_sweep.
# This may be replaced when dependencies are built.
