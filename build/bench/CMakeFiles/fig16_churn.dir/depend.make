# Empty dependencies file for fig16_churn.
# This may be replaced when dependencies are built.
