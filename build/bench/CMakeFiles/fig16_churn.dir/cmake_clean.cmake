file(REMOVE_RECURSE
  "CMakeFiles/fig16_churn.dir/fig16_churn.cpp.o"
  "CMakeFiles/fig16_churn.dir/fig16_churn.cpp.o.d"
  "fig16_churn"
  "fig16_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
