# Empty compiler generated dependencies file for fig03_relative_value.
# This may be replaced when dependencies are built.
