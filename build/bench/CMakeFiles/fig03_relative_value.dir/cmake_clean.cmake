file(REMOVE_RECURSE
  "CMakeFiles/fig03_relative_value.dir/fig03_relative_value.cpp.o"
  "CMakeFiles/fig03_relative_value.dir/fig03_relative_value.cpp.o.d"
  "fig03_relative_value"
  "fig03_relative_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_relative_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
