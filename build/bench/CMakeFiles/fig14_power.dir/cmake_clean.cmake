file(REMOVE_RECURSE
  "CMakeFiles/fig14_power.dir/fig14_power.cpp.o"
  "CMakeFiles/fig14_power.dir/fig14_power.cpp.o.d"
  "fig14_power"
  "fig14_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
