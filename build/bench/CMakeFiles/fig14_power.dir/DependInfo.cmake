
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_power.cpp" "bench/CMakeFiles/fig14_power.dir/fig14_power.cpp.o" "gcc" "bench/CMakeFiles/fig14_power.dir/fig14_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ras_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ras_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ras_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/twine/CMakeFiles/ras_twine.dir/DependInfo.cmake"
  "/root/repo/build/src/health/CMakeFiles/ras_health.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/ras_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/ras_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ras_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ras_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
