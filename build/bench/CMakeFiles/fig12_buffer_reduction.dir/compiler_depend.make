# Empty compiler generated dependencies file for fig12_buffer_reduction.
# This may be replaced when dependencies are built.
