file(REMOVE_RECURSE
  "CMakeFiles/fig12_buffer_reduction.dir/fig12_buffer_reduction.cpp.o"
  "CMakeFiles/fig12_buffer_reduction.dir/fig12_buffer_reduction.cpp.o.d"
  "fig12_buffer_reduction"
  "fig12_buffer_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_buffer_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
