file(REMOVE_RECURSE
  "CMakeFiles/fig04_capacity_requests.dir/fig04_capacity_requests.cpp.o"
  "CMakeFiles/fig04_capacity_requests.dir/fig04_capacity_requests.cpp.o.d"
  "fig04_capacity_requests"
  "fig04_capacity_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_capacity_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
