# Empty dependencies file for fig04_capacity_requests.
# This may be replaced when dependencies are built.
