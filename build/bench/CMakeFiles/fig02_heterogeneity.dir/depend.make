# Empty dependencies file for fig02_heterogeneity.
# This may be replaced when dependencies are built.
