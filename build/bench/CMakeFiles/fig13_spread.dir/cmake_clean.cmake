file(REMOVE_RECURSE
  "CMakeFiles/fig13_spread.dir/fig13_spread.cpp.o"
  "CMakeFiles/fig13_spread.dir/fig13_spread.cpp.o.d"
  "fig13_spread"
  "fig13_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
