# Empty dependencies file for fig13_spread.
# This may be replaced when dependencies are built.
