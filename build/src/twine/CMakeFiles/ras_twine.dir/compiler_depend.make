# Empty compiler generated dependencies file for ras_twine.
# This may be replaced when dependencies are built.
