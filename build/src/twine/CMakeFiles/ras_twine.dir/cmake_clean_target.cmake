file(REMOVE_RECURSE
  "libras_twine.a"
)
