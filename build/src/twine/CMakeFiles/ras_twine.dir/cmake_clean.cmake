file(REMOVE_RECURSE
  "CMakeFiles/ras_twine.dir/allocator.cc.o"
  "CMakeFiles/ras_twine.dir/allocator.cc.o.d"
  "CMakeFiles/ras_twine.dir/greedy_assigner.cc.o"
  "CMakeFiles/ras_twine.dir/greedy_assigner.cc.o.d"
  "libras_twine.a"
  "libras_twine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_twine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
