file(REMOVE_RECURSE
  "CMakeFiles/ras_fleet.dir/fleet_gen.cc.o"
  "CMakeFiles/ras_fleet.dir/fleet_gen.cc.o.d"
  "CMakeFiles/ras_fleet.dir/request_gen.cc.o"
  "CMakeFiles/ras_fleet.dir/request_gen.cc.o.d"
  "CMakeFiles/ras_fleet.dir/service_profile.cc.o"
  "CMakeFiles/ras_fleet.dir/service_profile.cc.o.d"
  "libras_fleet.a"
  "libras_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
