# Empty compiler generated dependencies file for ras_fleet.
# This may be replaced when dependencies are built.
