file(REMOVE_RECURSE
  "libras_fleet.a"
)
