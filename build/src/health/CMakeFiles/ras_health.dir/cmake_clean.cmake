file(REMOVE_RECURSE
  "CMakeFiles/ras_health.dir/health.cc.o"
  "CMakeFiles/ras_health.dir/health.cc.o.d"
  "libras_health.a"
  "libras_health.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_health.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
