# Empty dependencies file for ras_health.
# This may be replaced when dependencies are built.
