file(REMOVE_RECURSE
  "libras_health.a"
)
