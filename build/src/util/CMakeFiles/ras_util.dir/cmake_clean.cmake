file(REMOVE_RECURSE
  "CMakeFiles/ras_util.dir/logging.cc.o"
  "CMakeFiles/ras_util.dir/logging.cc.o.d"
  "CMakeFiles/ras_util.dir/rng.cc.o"
  "CMakeFiles/ras_util.dir/rng.cc.o.d"
  "CMakeFiles/ras_util.dir/sim_time.cc.o"
  "CMakeFiles/ras_util.dir/sim_time.cc.o.d"
  "CMakeFiles/ras_util.dir/stats.cc.o"
  "CMakeFiles/ras_util.dir/stats.cc.o.d"
  "CMakeFiles/ras_util.dir/status.cc.o"
  "CMakeFiles/ras_util.dir/status.cc.o.d"
  "libras_util.a"
  "libras_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
