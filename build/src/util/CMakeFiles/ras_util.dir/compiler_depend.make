# Empty compiler generated dependencies file for ras_util.
# This may be replaced when dependencies are built.
