file(REMOVE_RECURSE
  "libras_util.a"
)
