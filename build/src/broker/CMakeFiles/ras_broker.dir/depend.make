# Empty dependencies file for ras_broker.
# This may be replaced when dependencies are built.
