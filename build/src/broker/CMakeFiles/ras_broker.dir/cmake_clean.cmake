file(REMOVE_RECURSE
  "CMakeFiles/ras_broker.dir/resource_broker.cc.o"
  "CMakeFiles/ras_broker.dir/resource_broker.cc.o.d"
  "libras_broker.a"
  "libras_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
