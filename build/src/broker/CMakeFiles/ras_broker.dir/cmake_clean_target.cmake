file(REMOVE_RECURSE
  "libras_broker.a"
)
