
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broker/resource_broker.cc" "src/broker/CMakeFiles/ras_broker.dir/resource_broker.cc.o" "gcc" "src/broker/CMakeFiles/ras_broker.dir/resource_broker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/ras_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ras_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
