# Empty compiler generated dependencies file for ras_solver.
# This may be replaced when dependencies are built.
