file(REMOVE_RECURSE
  "CMakeFiles/ras_solver.dir/mip.cc.o"
  "CMakeFiles/ras_solver.dir/mip.cc.o.d"
  "CMakeFiles/ras_solver.dir/model.cc.o"
  "CMakeFiles/ras_solver.dir/model.cc.o.d"
  "CMakeFiles/ras_solver.dir/simplex.cc.o"
  "CMakeFiles/ras_solver.dir/simplex.cc.o.d"
  "libras_solver.a"
  "libras_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
