file(REMOVE_RECURSE
  "libras_solver.a"
)
