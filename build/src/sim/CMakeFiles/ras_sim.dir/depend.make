# Empty dependencies file for ras_sim.
# This may be replaced when dependencies are built.
