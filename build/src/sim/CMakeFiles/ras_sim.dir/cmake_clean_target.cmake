file(REMOVE_RECURSE
  "libras_sim.a"
)
