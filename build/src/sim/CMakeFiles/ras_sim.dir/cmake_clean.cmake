file(REMOVE_RECURSE
  "CMakeFiles/ras_sim.dir/event_loop.cc.o"
  "CMakeFiles/ras_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/ras_sim.dir/scenario.cc.o"
  "CMakeFiles/ras_sim.dir/scenario.cc.o.d"
  "libras_sim.a"
  "libras_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
