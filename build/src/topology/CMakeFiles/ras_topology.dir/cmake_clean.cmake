file(REMOVE_RECURSE
  "CMakeFiles/ras_topology.dir/hardware.cc.o"
  "CMakeFiles/ras_topology.dir/hardware.cc.o.d"
  "CMakeFiles/ras_topology.dir/topology.cc.o"
  "CMakeFiles/ras_topology.dir/topology.cc.o.d"
  "libras_topology.a"
  "libras_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ras_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
