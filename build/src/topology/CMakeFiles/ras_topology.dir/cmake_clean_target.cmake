file(REMOVE_RECURSE
  "libras_topology.a"
)
