# Empty compiler generated dependencies file for ras_topology.
# This may be replaced when dependencies are built.
