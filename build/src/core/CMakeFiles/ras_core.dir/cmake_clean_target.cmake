file(REMOVE_RECURSE
  "libras_core.a"
)
