
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cc" "src/core/CMakeFiles/ras_core.dir/admission.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/admission.cc.o.d"
  "/root/repo/src/core/assignment_decoder.cc" "src/core/CMakeFiles/ras_core.dir/assignment_decoder.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/assignment_decoder.cc.o.d"
  "/root/repo/src/core/async_solver.cc" "src/core/CMakeFiles/ras_core.dir/async_solver.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/async_solver.cc.o.d"
  "/root/repo/src/core/buffer_policy.cc" "src/core/CMakeFiles/ras_core.dir/buffer_policy.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/buffer_policy.cc.o.d"
  "/root/repo/src/core/capacity_portal.cc" "src/core/CMakeFiles/ras_core.dir/capacity_portal.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/capacity_portal.cc.o.d"
  "/root/repo/src/core/emergency.cc" "src/core/CMakeFiles/ras_core.dir/emergency.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/emergency.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/ras_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/explain.cc.o.d"
  "/root/repo/src/core/initial_assignment.cc" "src/core/CMakeFiles/ras_core.dir/initial_assignment.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/initial_assignment.cc.o.d"
  "/root/repo/src/core/local_search.cc" "src/core/CMakeFiles/ras_core.dir/local_search.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/local_search.cc.o.d"
  "/root/repo/src/core/lp_rounding.cc" "src/core/CMakeFiles/ras_core.dir/lp_rounding.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/lp_rounding.cc.o.d"
  "/root/repo/src/core/model_builder.cc" "src/core/CMakeFiles/ras_core.dir/model_builder.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/model_builder.cc.o.d"
  "/root/repo/src/core/online_mover.cc" "src/core/CMakeFiles/ras_core.dir/online_mover.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/online_mover.cc.o.d"
  "/root/repo/src/core/reservation.cc" "src/core/CMakeFiles/ras_core.dir/reservation.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/reservation.cc.o.d"
  "/root/repo/src/core/rru.cc" "src/core/CMakeFiles/ras_core.dir/rru.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/rru.cc.o.d"
  "/root/repo/src/core/solve_input.cc" "src/core/CMakeFiles/ras_core.dir/solve_input.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/solve_input.cc.o.d"
  "/root/repo/src/core/state_io.cc" "src/core/CMakeFiles/ras_core.dir/state_io.cc.o" "gcc" "src/core/CMakeFiles/ras_core.dir/state_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/ras_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/ras_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/twine/CMakeFiles/ras_twine.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/ras_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ras_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ras_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
