# Empty dependencies file for ras_core.
# This may be replaced when dependencies are built.
