file(REMOVE_RECURSE
  "CMakeFiles/elastic_harvest.dir/elastic_harvest.cpp.o"
  "CMakeFiles/elastic_harvest.dir/elastic_harvest.cpp.o.d"
  "elastic_harvest"
  "elastic_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
