# Empty dependencies file for elastic_harvest.
# This may be replaced when dependencies are built.
