file(REMOVE_RECURSE
  "CMakeFiles/region_autopilot.dir/region_autopilot.cpp.o"
  "CMakeFiles/region_autopilot.dir/region_autopilot.cpp.o.d"
  "region_autopilot"
  "region_autopilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_autopilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
