# Empty compiler generated dependencies file for region_autopilot.
# This may be replaced when dependencies are built.
