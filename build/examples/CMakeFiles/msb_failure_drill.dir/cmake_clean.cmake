file(REMOVE_RECURSE
  "CMakeFiles/msb_failure_drill.dir/msb_failure_drill.cpp.o"
  "CMakeFiles/msb_failure_drill.dir/msb_failure_drill.cpp.o.d"
  "msb_failure_drill"
  "msb_failure_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msb_failure_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
