# Empty dependencies file for msb_failure_drill.
# This may be replaced when dependencies are built.
