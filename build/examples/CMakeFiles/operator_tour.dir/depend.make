# Empty dependencies file for operator_tour.
# This may be replaced when dependencies are built.
