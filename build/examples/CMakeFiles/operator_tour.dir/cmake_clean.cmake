file(REMOVE_RECURSE
  "CMakeFiles/operator_tour.dir/operator_tour.cpp.o"
  "CMakeFiles/operator_tour.dir/operator_tour.cpp.o.d"
  "operator_tour"
  "operator_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
