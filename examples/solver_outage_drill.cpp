// Solver outage drill: demonstrates the supervised solve loop's graceful-
// degradation ladder (Section 5.4 posture). A fault plan first times the MIP
// out — retries back off in simulated time, then the greedy incumbent ships —
// and then crashes the solver outright for several rounds, which walks the
// ladder down to last-good, declares the solver unhealthy, and arms the
// out-of-band emergency path. An urgent capacity request is served while the
// solver is down; once the faults clear, the next round recovers to a full
// two-phase solve automatically.
//
// Build & run:  ./build/examples/solver_outage_drill

#include <cstdio>

#include "src/sim/scenario.h"

using namespace ras;

int main() {
  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 3;
  options.fleet.racks_per_msb = 6;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 7;
  // Round 1: the MIP times out (retry + backoff, then the incumbent ships).
  // Rounds 2-4: the solver crashes outright, taking every solve mode with it.
  options.faults.AddBurst(FaultKind::kSolverTimeout, 1, 1);
  options.faults.AddBurst(FaultKind::kSolverCrash, 2, 3);
  RegionScenario sim(options);

  ReservationSpec spec;
  spec.name = "feed-ranker";
  spec.capacity_rru = 90;
  spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);  // Count-based.
  ReservationId res = *sim.registry.Create(spec);

  ReservationSpec urgent_spec;
  urgent_spec.name = "incident-war-room";
  urgent_spec.capacity_rru = 6;
  urgent_spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
  ReservationId urgent = *sim.registry.Create(urgent_spec);

  std::printf("round | rung           | retries | healthy | emergency | error\n");
  std::printf("------+----------------+---------+---------+-----------+------\n");
  for (int round = 0; round < 6; ++round) {
    sim.loop.RunUntil(sim.loop.now() + Hours(1));  // Hourly solve cadence.
    sim.SolveRound();  // The outcome of interest is in the supervisor stats.
    const RoundOutcome& outcome = sim.supervisor->stats().rounds.back();
    std::printf("%5d | %-14s | %7d | %-7s | %-9s | %s\n", outcome.round,
                LadderRungName(outcome.rung), outcome.retries,
                sim.supervisor->solver_healthy() ? "yes" : "NO",
                outcome.emergency_armed ? "ARMED" : "-",
                outcome.error.ok() ? "-" : outcome.error.ToString().c_str());

    // The moment the supervisor arms the emergency path, serve the urgent
    // request out of band: free pool and preempted elastic loans only — idle
    // shared-buffer servers stay untouched.
    if (sim.supervisor->emergency_armed() &&
        sim.broker->CountInReservation(urgent) == 0) {
      Result<EmergencyGrant> grant = sim.RequestUrgentCapacity(urgent, 6);
      if (grant.ok()) {
        std::printf("      > emergency grant: %zu servers (%zu free pool, %zu elastic)\n",
                    grant->servers_granted, grant->from_free_pool, grant->from_elastic);
      }
    }
  }

  const SupervisorStats& stats = sim.supervisor->stats();
  std::printf("\nladder usage over %zu rounds:\n", stats.rounds.size());
  for (int r = 0; r < kNumLadderRungs; ++r) {
    std::printf("  %-14s %zu\n", LadderRungName(static_cast<LadderRung>(r)),
                stats.rung_counts[r]);
  }
  std::printf("retries=%zu failed_attempts=%zu\n", stats.total_retries, stats.failed_attempts);
  for (SimDuration recovery : stats.recovery_times) {
    std::printf("recovered after %lld s of simulated outage\n",
                static_cast<long long>(recovery.seconds));
  }
  std::printf("final: %zu servers targeted for %s, %zu granted to %s\n",
              [&] {
                size_t n = 0;
                for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
                  n += sim.broker->record(id).target == res;
                }
                return n;
              }(),
              spec.name.c_str(), sim.broker->CountInReservation(urgent),
              urgent_spec.name.c_str());
  return 0;
}
