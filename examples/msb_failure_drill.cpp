// MSB failure drill: demonstrates the embedded correlated-failure buffer
// (Section 3.3.1). A reservation's capacity guarantee is sized so that losing
// its *worst* MSB still leaves C_r RRUs. We kill exactly that MSB and show
// the workload rides through on the buffer servers with no Online Mover
// involvement — then show a random (server-scale) failure, which instead
// draws a replacement from the shared buffer within "a minute".
//
// Build & run:  ./build/examples/msb_failure_drill

#include <cstdio>
#include <map>

#include "src/sim/scenario.h"

using namespace ras;

int main() {
  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 4;
  options.fleet.racks_per_msb = 8;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 7;
  RegionScenario sim(options);

  ReservationSpec spec;
  spec.name = "feed-ranker";
  spec.capacity_rru = 120;
  spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);  // Count-based.
  ReservationId res = *sim.registry.Create(spec);

  auto stats = sim.SolveRound();
  if (!stats.ok()) {
    std::fprintf(stderr, "solve failed\n");
    return 1;
  }

  JobSpec job;
  job.name = "ranker";
  job.reservation = res;
  job.container = ContainerSpec{16.0, 32.0};  // One per server, roughly.
  job.replicas = 110;
  JobId jid = *sim.twine->SubmitJob(job);
  sim.mover->ResetStats();  // Separate steady-state moves from drill handling.
  std::printf("before outage: %zu servers held, %zu replicas running\n",
              sim.broker->CountInReservation(res), sim.twine->running_containers(jid));

  // Find the reservation's most-loaded MSB and fail it entirely.
  std::map<MsbId, size_t> per_msb;
  for (ServerId id : sim.broker->ServersInReservation(res)) {
    per_msb[sim.fleet.topology.server(id).msb]++;
  }
  MsbId worst = per_msb.begin()->first;
  for (auto& [msb, count] : per_msb) {
    if (count > per_msb[worst]) {
      worst = msb;
    }
  }
  std::printf("failing MSB %u (%zu of the reservation's servers)...\n", worst, per_msb[worst]);

  HealthEvent outage;
  outage.kind = HealthEventKind::kMsbCorrelatedFailure;
  outage.start = sim.loop.now();
  outage.duration = Hours(8);
  outage.servers = sim.fleet.topology.ServersInMsb(worst);
  sim.health->Inject(outage);
  sim.health->AdvanceTo(sim.loop.now() + Seconds(1));

  // Containers on dead servers are displaced; the Twine allocator re-places
  // them onto the embedded buffer *inside the same reservation*. The Online
  // Mover takes no action for correlated failures.
  size_t displaced = 0;
  for (ServerId id : sim.fleet.topology.ServersInMsb(worst)) {
    if (sim.twine->containers_on(id) > 0) {
      displaced += sim.twine->EvictServer(id);
    }
  }
  sim.twine->RetryPending();
  std::printf("after outage: %zu replicas displaced, %zu running, %d pending "
              "(mover moves: %zu — embedded buffer, no mover action)\n",
              displaced, sim.twine->running_containers(jid), sim.twine->pending_containers(jid),
              sim.mover->stats().moves_applied);

  // Contrast: a *random* single-server failure is handled by the shared
  // buffer through the mover's fast path.
  sim.ArmHealth(Days(1));
  ServerId victim = sim.broker->ServersInReservation(res)[0];
  HealthEvent random_failure;
  random_failure.kind = HealthEventKind::kServerHardware;
  random_failure.start = sim.loop.now() + Seconds(10);
  random_failure.duration = Days(4);
  random_failure.servers = {victim};
  sim.health->Inject(random_failure);
  sim.health->AdvanceTo(sim.loop.now() + Seconds(11));
  std::printf("random failure of server %u: replacements=%zu (pulled from shared buffer)\n",
              victim, sim.mover->stats().failures_replaced);
  return 0;
}
