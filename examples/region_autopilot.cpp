// Region autopilot: two simulated days of continuous region-wide operation.
//
//  - the Async Solver re-evaluates all assignments every 6 simulated hours
//    (production: hourly; compressed here so the example finishes quickly);
//  - the Health Check Service injects random failures, maintenance waves and
//    the occasional correlated event from the paper's Section 2.5 rates;
//  - capacity requests arrive with a diurnal pattern (engineers work days);
//  - the Online Mover reconciles bindings and fast-replaces failed servers.
//
// Prints an hourly status line: the live view an operator would watch.
//
// Build & run:  ./build/examples/region_autopilot

#include <cstdio>

#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/sim/scenario.h"

using namespace ras;

int main() {
  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 3;
  options.fleet.racks_per_msb = 6;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 99;
  options.solver.phase1_mip.time_limit_seconds = 5.0;
  options.solver.phase1_mip.max_nodes = 60;
  options.solver.phase2_mip.time_limit_seconds = 2.0;
  RegionScenario sim(options);

  // Seed workload: three services of different shapes.
  auto profiles = MakePaperServiceProfiles();
  std::vector<ReservationId> services;
  const double base_capacity[3] = {60, 40, 30};
  for (int i = 0; i < 3; ++i) {
    ReservationSpec spec;
    spec.name = profiles[i].name;
    spec.capacity_rru = base_capacity[i];
    spec.rru_per_type = BuildRruVector(sim.fleet.catalog, profiles[i]);
    services.push_back(*sim.registry.Create(spec));
  }

  sim.ArmHealth(Days(2));

  // Solver cadence: every 6 hours (step 8 of Figure 6, compressed). Each
  // round prints the standard src/obs report instead of a bespoke line.
  sim.loop.ScheduleEvery(SimTime{0}, Hours(6), [&](SimTime) {
    auto stats = sim.SolveRound();
    const RoundOutcome& record = sim.supervisor->stats().rounds.back();
    std::printf("  %s\n",
                obs::FormatRoundReport(MakeRoundReport(record, stats.ok() ? *stats : SolveStats()))
                    .c_str());
  });

  // Diurnal capacity churn: engineers resize requests during working hours.
  sim.loop.ScheduleEvery(SimTime{0} + Hours(1), Hours(1), [&](SimTime t) {
    int64_t hour_of_day = (t.seconds / 3600) % 24;
    if (hour_of_day < 9 || hour_of_day > 17) {
      return;
    }
    size_t which = static_cast<size_t>(sim.rng.UniformInt(0, 2));
    ReservationSpec spec = *sim.registry.Find(services[which]);
    double delta = sim.rng.Uniform(-0.1, 0.15) * base_capacity[which];
    spec.capacity_rru = std::max(10.0, spec.capacity_rru + delta);
    (void)sim.registry.Update(spec);
  });

  // Hourly: advance health, reconcile, report.
  sim.loop.ScheduleEvery(SimTime{0} + Hours(1), Hours(1), [&](SimTime t) {
    sim.health->AdvanceTo(t);
    sim.mover->ReconcileAll();
    sim.twine->RetryPending();
    std::printf("%s  unplanned=%.2f%% planned=%.2f%% replacements=%zu moves=%zu\n",
                FormatSimTime(t).c_str(), 100 * sim.UnavailableFraction(false),
                100 * sim.UnavailableFraction(true), sim.mover->stats().failures_replaced,
                sim.mover->stats().moves_applied);
  });

  sim.loop.RunUntil(SimTime{0} + Days(2));

  std::printf("\n== 48h summary ==\n");
  for (size_t i = 0; i < services.size(); ++i) {
    const ReservationSpec* spec = sim.registry.Find(services[i]);
    std::printf("%-10s capacity=%.1f RRU, holds %zu servers, worst-MSB share %.1f%%\n",
                spec->name.c_str(), spec->capacity_rru,
                sim.broker->CountInReservation(services[i]),
                100 * MaxMsbShare(*sim.broker, services[i]));
  }
  const MoverStats& ms = sim.mover->stats();
  std::printf("mover: %zu moves (%zu in-use), %zu failure replacements, %zu preemptions\n",
              ms.moves_applied, ms.in_use_moves, ms.failures_replaced, ms.containers_preempted);

  // The pipeline's aggregated span tree (deterministic structure view) and an
  // atomically-written metrics snapshot, as a scraper would see it.
  std::printf("\n== solve pipeline spans ==\n%s",
              obs::Tracer::Default().DumpTree(obs::Tracer::Dump::kStructure).c_str());
  Status exported = obs::WriteSnapshotFiles(obs::MetricRegistry::Default(), "autopilot_obs");
  std::printf("metrics snapshot: %s\n",
              exported.ok() ? "autopilot_obs/metrics.{prom,json}" : exported.ToString().c_str());
  return 0;
}
