// Crash-recovery drill: runs a durable control plane through an admit +
// solve cycle, kills the "process" at an injected crash point inside the
// persist barrier, then restarts over the same directory and prints the
// recovery report — checkpoint chosen, records replayed, torn bytes
// dropped, and whether every state digest verified.
//
// Build & run:  ./build/examples/crash_recovery_drill [durable-dir]
// With no argument the drill uses ./crash_recovery_drill.state.

#include <cstdio>
#include <string>

#include <dirent.h>
#include <unistd.h>

#include "src/journal/checkpoint.h"
#include "src/sim/scenario.h"

using namespace ras;

namespace {

// The drill is repeatable: wipe any state a previous run left behind.
void WipeDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return;
  }
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

ScenarioOptions DrillOptions(const std::string& dir) {
  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 2;
  options.fleet.racks_per_msb = 3;
  options.fleet.servers_per_rack = 6;
  options.fleet.seed = 11;
  options.seed = 11;
  options.durable_dir = dir;
  return options;  // 72 servers.
}

ReservationSpec Spec(const RegionScenario& s, const std::string& name, double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(s.fleet.catalog.size(), 1.0);
  return spec;
}

void PrintReport(const journal::RecoveryReport& report) {
  std::printf("  status                 %s\n", report.status.ToString().c_str());
  std::printf("  recovered state        %s\n", report.recovered_state ? "yes" : "no (bootstrap)");
  std::printf("  checkpoint generation  %llu (%d candidate%s tried)\n",
              static_cast<unsigned long long>(report.checkpoint_generation),
              report.checkpoints_tried, report.checkpoints_tried == 1 ? "" : "s");
  std::printf("  records replayed       %zu\n", report.records_replayed);
  std::printf("  torn tail dropped      %zu record(s), %zu byte(s)\n",
              report.torn_records_dropped, report.torn_bytes_dropped);
  std::printf("  aborted batches        %zu skipped\n", report.aborted_batches_skipped);
  std::printf("  digests checked        %zu%s\n", report.digests_checked,
              report.digests_checked == 0 ? ""
              : report.digest_verified  ? ", all verified"
                                        : ", MISMATCH");
  std::printf("  next generation        %llu\n",
              static_cast<unsigned long long>(report.next_generation));
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "crash_recovery_drill.state";
  WipeDir(dir);

  // --- Life before the crash: bootstrap, admit, solve, admit again. ---
  std::printf("[1] bootstrap in %s\n", dir.c_str());
  CrashPointInjector injector;
  uint64_t generation_at_crash = 0;
  uint32_t last_durable_digest = 0;
  {
    RegionScenario s(DrillOptions(dir));
    PrintReport(s.recovery);
    Result<ReservationId> ranker = s.AdmitReservation(Spec(s, "feed-ranker", 20));
    if (!ranker.ok()) {
      std::printf("admit failed: %s\n", ranker.status().ToString().c_str());
      return 1;
    }
    if (!s.SolveRound().ok()) {
      return 1;
    }
    std::printf("\n[2] round 1 solved: %zu servers granted to feed-ranker, generation %llu\n",
                s.broker->CountInReservation(*ranker),
                static_cast<unsigned long long>(s.durable->generation()));
    (void)s.AdmitReservation(Spec(s, "ads-scorer", 12));
    last_durable_digest = journal::StateDigest(*s.broker, s.registry);

    // --- The crash: die mid-apply inside round 2's persist barrier. The
    // intent record is already fsynced, so the batch is redone at recovery.
    s.durable->SetCrashInjector(&injector);
    injector.Arm(CrashPoint::kMidApply);
    generation_at_crash = s.durable->generation();
    (void)s.SolveRound();
    std::printf("\n[3] crashed at %s — control plane dead: %s\n",
                CrashPointName(CrashPoint::kMidApply), s.durable->dead() ? "yes" : "no");
  }

  // --- Restart: a fresh process over the same directory. ---
  std::printf("\n[4] restart + recovery\n");
  RegionScenario r(DrillOptions(dir));
  PrintReport(r.recovery);
  if (!r.recovery.status.ok()) {
    return 1;
  }
  uint32_t recovered_digest = journal::StateDigest(*r.broker, r.registry);
  std::printf("\n[5] recovered region: %zu reservations, generation %llu (was %llu at crash)\n",
              r.registry.size(), static_cast<unsigned long long>(r.durable->generation()),
              static_cast<unsigned long long>(generation_at_crash));
  for (const ReservationSpec* spec : r.registry.All()) {
    std::printf("  %-16s granted %zu servers\n", spec->name.c_str(),
                r.broker->CountInReservation(spec->id));
  }
  std::printf("  pre-crash admit digest %08x, recovered digest %08x — the\n"
              "  recovered state includes the redone round-2 batch, so the two\n"
              "  differ exactly when the crashed round's intent was durable.\n",
              last_durable_digest, recovered_digest);

  // Life goes on: the recovered control plane keeps solving.
  if (!r.SolveRound().ok()) {
    return 1;
  }
  std::printf("\n[6] post-recovery round solved; generation now %llu\n",
              static_cast<unsigned long long>(r.durable->generation()));
  return 0;
}
