// Elastic reservations (Section 3.4): buffers that are not actively handling
// failures are loaned to opportunistic workloads (async compute, offline ML
// training). When failure handling needs the capacity back, the loans are
// revoked and the servers return to their home reservations.
//
// Build & run:  ./build/examples/elastic_harvest

#include <cstdio>

#include "src/sim/scenario.h"

using namespace ras;

int main() {
  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 3;
  options.fleet.racks_per_msb = 8;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 13;
  options.shared_buffer_fraction = 0.05;
  RegionScenario sim(options);

  // A guaranteed service, solved and materialized.
  ReservationSpec spec;
  spec.name = "datastore";
  spec.capacity_rru = 90;
  spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
  ReservationId guaranteed = *sim.registry.Create(spec);
  if (!sim.SolveRound().ok()) {
    std::fprintf(stderr, "solve failed\n");
    return 1;
  }

  // An elastic reservation for offline ML training.
  ReservationSpec elastic_spec;
  elastic_spec.name = "ml-offline-training";
  elastic_spec.capacity_rru = 0;  // Opportunistic: no guarantee.
  elastic_spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
  elastic_spec.is_elastic = true;
  elastic_spec.needs_correlated_buffer = false;
  ReservationId elastic = *sim.registry.Create(elastic_spec);

  // The Online Mover monitors buffer usage and loans idle servers out.
  size_t loaned = sim.mover->LoanIdleBuffersToElastic(elastic, 50);
  std::printf("loaned %zu idle shared-buffer servers to %s\n", loaned,
              elastic_spec.name.c_str());

  // The elastic owner submits container requests like anyone else,
  // referencing the elastic reservation id.
  JobSpec batch;
  batch.name = "training-trial";
  batch.reservation = elastic;
  batch.container = ContainerSpec{16.0, 64.0};
  batch.replicas = static_cast<int>(loaned);
  JobId jid = *sim.twine->SubmitJob(batch);
  std::printf("elastic job: %zu replicas running on borrowed capacity\n",
              sim.twine->running_containers(jid));

  // A guaranteed server fails: the mover revokes a loan (preempting the
  // batch work) to provide the replacement.
  ServerId victim = sim.broker->ServersInReservation(guaranteed)[0];
  sim.broker->SetUnavailability(victim, Unavailability::kUnplannedHardware);
  sim.mover->HandleFailure(victim);

  const MoverStats& stats = sim.mover->stats();
  std::printf("after failure: replacements=%zu, loans revoked=%zu, "
              "containers preempted=%zu\n",
              stats.failures_replaced, stats.elastic_revocations, stats.containers_preempted);
  std::printf("elastic job now: %zu running, %d pending (preempted work waits "
              "for the next idle loan)\n",
              sim.twine->running_containers(jid), sim.twine->pending_containers(jid));
  std::printf("guaranteed reservation still holds %zu servers\n",
              sim.broker->CountInReservation(guaranteed));
  return 0;
}
