// Operator tour: the capacity-management workflow around the solver —
// admission-checked capacity requests through the Capacity Portal (with an
// actionable rejection), a solve, and the assignment explanation an operator
// would send a service owner asking "why did I get this hardware mix?"
// (both Section 5.3 lessons).
//
// Build & run:  ./build/examples/operator_tour

#include <cstdio>

#include "src/core/ras.h"
#include "src/core/solver_supervisor.h"
#include "src/fleet/fleet_gen.h"
#include "src/obs/round_report.h"
#include "src/twine/allocator.h"

using namespace ras;

int main() {
  FleetOptions fleet_options;
  fleet_options.num_datacenters = 2;
  fleet_options.msbs_per_datacenter = 4;
  fleet_options.racks_per_msb = 8;
  fleet_options.servers_per_rack = 10;
  fleet_options.seed = 606;
  Fleet fleet = GenerateFleet(fleet_options);
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
  CapacityPortal portal(&registry, &fleet.topology, &fleet.catalog);

  // 1. A reasonable request for the Web service passes admission.
  auto profiles = MakePaperServiceProfiles();
  ReservationSpec web;
  web.name = "web-frontend";
  web.capacity_rru = 120;
  web.rru_per_type = BuildRruVector(fleet.catalog, profiles[3]);
  auto web_id = portal.SubmitRequest(web);
  std::printf("submit %-16s -> %s\n", web.name.c_str(),
              web_id.ok() ? "GRANTED" : web_id.status().message().c_str());

  // 2. An impossible request is rejected with an actionable message.
  ReservationSpec ml;
  ml.name = "ml-mega-training";
  ml.capacity_rru = 5000;
  ServiceProfile gpu_profile;
  gpu_profile.relative_value = {0, 1, 1, 1};
  gpu_profile.requires_gpu = true;
  ml.rru_per_type = BuildRruVector(fleet.catalog, gpu_profile);
  auto ml_id = portal.SubmitRequest(ml);
  std::printf("submit %-16s -> REJECTED:\n  %s\n", ml.name.c_str(),
              ml_id.ok() ? "(unexpected grant)" : ml_id.status().message().c_str());

  // 3. A right-sized GPU request passes.
  ml.capacity_rru = 8;
  ml.name = "ml-training";
  auto ml_ok = portal.SubmitRequest(ml);
  std::printf("submit %-16s -> %s\n", ml.name.c_str(),
              ml_ok.ok() ? "GRANTED" : ml_ok.status().message().c_str());

  // 4. Solve and materialize.
  AsyncSolver solver;
  auto stats = solver.SolveOnce(broker, registry, fleet.catalog);
  if (!stats.ok()) {
    std::fprintf(stderr, "solve failed\n");
    return 1;
  }
  TwineAllocator twine(&fleet.catalog, &broker);
  OnlineMover mover(&broker, &registry, &twine);
  mover.ReconcileAll();
  // The standard per-round report (src/obs); this tour runs the solver bare,
  // so the outcome record is the trivial top-rung one.
  RoundOutcome record;
  std::printf("\n%s\n", obs::FormatRoundReport(MakeRoundReport(record, *stats)).c_str());

  // 5. Explain the web reservation's composition to its owner.
  std::printf("\n%s\n",
              ExplainAssignment(broker, registry, fleet.catalog, *web_id)
                  .ToString(fleet.catalog)
                  .c_str());

  // 6. The portal's request history is the operator's audit trail.
  std::printf("portal history:\n");
  for (const PortalEvent& event : portal.history()) {
    const char* kind = event.kind == PortalEvent::Kind::kCreated    ? "created"
                       : event.kind == PortalEvent::Kind::kUpdated  ? "updated"
                       : event.kind == PortalEvent::Kind::kDeleted  ? "deleted"
                                                                    : "REJECTED";
    std::printf("  %-8s %-18s %7.1f RRU  %s\n", kind, event.name.c_str(), event.capacity_rru,
                event.kind == PortalEvent::Kind::kRejected ? event.detail.c_str() : "");
  }
  return 0;
}
