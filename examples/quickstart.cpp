// Quickstart: the full RAS flow on a synthetic region.
//
//   1. Generate a region (3 datacenters, 12 MSBs, ~1.4k servers).
//   2. Create the shared random-failure buffers (2% of the region).
//   3. Submit a capacity request (a reservation) in RRUs.
//   4. Run one Async Solver round and materialize bindings with the Mover.
//   5. Place containers on the reservation through the Twine allocator.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <map>

#include "src/core/ras.h"
#include "src/fleet/fleet_gen.h"
#include "src/twine/allocator.h"

using namespace ras;

int main() {
  // 1. A synthetic region: topology + heterogeneous hardware mixture.
  FleetOptions fleet_options;
  fleet_options.num_datacenters = 3;
  fleet_options.msbs_per_datacenter = 4;
  fleet_options.racks_per_msb = 10;
  fleet_options.servers_per_rack = 12;
  fleet_options.seed = 2026;
  Fleet fleet = GenerateFleet(fleet_options);
  std::printf("region: %zu datacenters, %zu MSBs, %zu racks, %zu servers\n",
              fleet.topology.num_datacenters(), fleet.topology.num_msbs(),
              fleet.topology.num_racks(), fleet.topology.num_servers());

  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;

  // 2. Shared random-failure buffers: one special reservation per SKU.
  auto buffers = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
  std::printf("shared buffers: %zu type-specific reservations\n", buffers.size());

  // 3. A capacity request: the Web service wants 150 RRUs; its RRU table
  // reflects how much each hardware generation is worth to it (Figure 3).
  auto profiles = MakePaperServiceProfiles();
  ReservationSpec web;
  web.name = "web-frontend";
  web.capacity_rru = 150;
  web.rru_per_type = BuildRruVector(fleet.catalog, profiles[3]);  // "Web".
  ReservationId web_id = *registry.Create(web);

  // 4. One continuous-optimization round: solve, persist targets, reconcile.
  AsyncSolver solver;
  auto stats = solver.SolveOnce(broker, registry, fleet.catalog);
  if (!stats.ok()) {
    std::fprintf(stderr, "solve failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("solve: %zu assignment vars, %.0f ms, mip=%s, shortfall=%.1f RRU\n",
              stats->phase1.assignment_variables, stats->total_seconds * 1e3,
              MipStatusName(stats->phase1.mip_status), stats->total_shortfall_rru);

  TwineAllocator twine(&fleet.catalog, &broker);
  OnlineMover mover(&broker, &registry, &twine);
  mover.ReconcileAll();

  // Where did the capacity land?
  std::map<MsbId, int> per_msb;
  double total_rru = 0;
  for (ServerId id : broker.ServersInReservation(web_id)) {
    per_msb[fleet.topology.server(id).msb]++;
    total_rru += web.ValueOfType(fleet.topology.server(id).type);
  }
  std::printf("web-frontend: %zu servers / %.1f RRUs across %zu MSBs "
              "(guarantee: 150 RRUs survive any single-MSB loss)\n",
              broker.CountInReservation(web_id), total_rru, per_msb.size());

  // 5. Real-time container placement inside the reservation.
  JobSpec job;
  job.name = "web-tier";
  job.reservation = web_id;
  job.container = ContainerSpec{8.0, 16.0};
  job.replicas = 120;
  auto job_id = twine.SubmitJob(job);
  std::printf("job web-tier: %zu running, %d pending\n", twine.running_containers(*job_id),
              twine.pending_containers(*job_id));
  return 0;
}
