#include "src/journal/wal.h"

#include <gtest/gtest.h>

#include "src/journal/crc32.h"
#include "src/util/file_io.h"

namespace ras {
namespace journal {
namespace {

std::string TestPath(const char* name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".wal";
}

TEST(Crc32Test, KnownVectorAndChaining) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Chaining via the seed equals hashing the concatenation.
  EXPECT_EQ(Crc32("6789", Crc32("12345")), Crc32("123456789"));
  EXPECT_NE(Crc32("123456789"), Crc32("123456780"));
}

TEST(WalTest, AppendScanRoundTrip) {
  std::string path = TestPath("roundtrip");
  std::remove(path.c_str());
  WriteAheadJournal wal(path);
  ASSERT_TRUE(wal.OpenAppend(7).ok());
  Result<uint64_t> g1 = wal.Append(RecordKind::kReservationAdmit, "reservation|1|svc");
  Result<uint64_t> g2 = wal.Append(RecordKind::kApplyTargets, "0=1,1=-,2=1");
  Result<uint64_t> g3 = wal.Append(RecordKind::kDigest, "deadbeef");
  ASSERT_TRUE(g1.ok() && g2.ok() && g3.ok());
  EXPECT_EQ(*g1, 7u);
  EXPECT_EQ(*g3, 9u);
  wal.Close();

  Result<JournalScan> scan = WriteAheadJournal::Scan(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn());
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].generation, 7u);
  EXPECT_EQ(scan->records[0].kind, RecordKind::kReservationAdmit);
  EXPECT_EQ(scan->records[0].payload, "reservation|1|svc");
  EXPECT_EQ(scan->records[1].payload, "0=1,1=-,2=1");
  EXPECT_EQ(scan->records[2].kind, RecordKind::kDigest);
}

TEST(WalTest, PayloadWithPipesAndNewlinesSurvives) {
  std::string path = TestPath("escaping");
  std::remove(path.c_str());
  WriteAheadJournal wal(path);
  ASSERT_TRUE(wal.OpenAppend(1).ok());
  std::string nasty = "name|with|pipes\nand a newline|";
  ASSERT_TRUE(wal.Append(RecordKind::kReservationAdmit, nasty).ok());
  wal.Close();
  Result<JournalScan> scan = WriteAheadJournal::Scan(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].payload, nasty);
}

TEST(WalTest, MissingFileScansEmpty) {
  Result<JournalScan> scan = WriteAheadJournal::Scan(TestPath("never-created"));
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_FALSE(scan->torn());
}

TEST(WalTest, TornAppendIsDroppedAndTruncatable) {
  std::string path = TestPath("torn");
  std::remove(path.c_str());
  WriteAheadJournal wal(path);
  ASSERT_TRUE(wal.OpenAppend(1).ok());
  ASSERT_TRUE(wal.Append(RecordKind::kServerDelta, "server|0|1|1|-|0|0|0").ok());
  ASSERT_TRUE(wal.AppendTorn(RecordKind::kApplyTargets, "0=1,1=2,2=3").ok());

  Result<JournalScan> scan = WriteAheadJournal::Scan(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn());
  EXPECT_EQ(scan->records.size(), 1u) << "torn record must not replay";
  EXPECT_GT(scan->torn_bytes, 0u);
  EXPECT_EQ(scan->torn_reason, "record missing trailing newline");

  // Recovery truncates the tail in place; the next scan is clean.
  WriteAheadJournal recovered(path);
  ASSERT_TRUE(recovered.TruncateTo(scan->valid_bytes).ok());
  Result<JournalScan> rescan = WriteAheadJournal::Scan(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan->torn());
  EXPECT_EQ(rescan->records.size(), 1u);
}

TEST(WalTest, FlippedByteStopsTheScan) {
  std::string path = TestPath("flip");
  std::remove(path.c_str());
  WriteAheadJournal wal(path);
  ASSERT_TRUE(wal.OpenAppend(1).ok());
  ASSERT_TRUE(wal.Append(RecordKind::kDigest, "11111111").ok());
  ASSERT_TRUE(wal.Append(RecordKind::kDigest, "22222222").ok());
  wal.Close();

  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string corrupted = *content;
  // Flip a payload byte of the second record.
  corrupted[corrupted.find("22222222") + 3] = 'X';
  ASSERT_TRUE(AtomicWriteFile(path, corrupted).ok());

  Result<JournalScan> scan = WriteAheadJournal::Scan(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn());
  EXPECT_EQ(scan->torn_reason, "CRC mismatch");
}

TEST(WalTest, NonMonotonicGenerationRejected) {
  std::string path = TestPath("monotonic");
  std::remove(path.c_str());
  // Two journals writing the same generation range, concatenated by hand —
  // the replayed half must stop where generations stop increasing.
  WriteAheadJournal a(path);
  ASSERT_TRUE(a.OpenAppend(5).ok());
  ASSERT_TRUE(a.Append(RecordKind::kDigest, "aaaaaaaa").ok());
  a.Close();
  WriteAheadJournal b(path);
  ASSERT_TRUE(b.OpenAppend(5).ok());  // Same generation again: invalid.
  ASSERT_TRUE(b.Append(RecordKind::kDigest, "bbbbbbbb").ok());
  b.Close();

  Result<JournalScan> scan = WriteAheadJournal::Scan(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].payload, "aaaaaaaa");
  EXPECT_EQ(scan->torn_reason, "generation went backwards");
}

TEST(WalTest, ResetEmptiesButGenerationsContinue) {
  std::string path = TestPath("reset");
  std::remove(path.c_str());
  WriteAheadJournal wal(path);
  ASSERT_TRUE(wal.OpenAppend(1).ok());
  ASSERT_TRUE(wal.Append(RecordKind::kDigest, "11111111").ok());
  ASSERT_TRUE(wal.Reset().ok());
  Result<uint64_t> next = wal.Append(RecordKind::kDigest, "22222222");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 2u) << "generations never restart";
  wal.Close();

  Result<JournalScan> scan = WriteAheadJournal::Scan(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].generation, 2u);
}

TEST(WalTest, KindNamesRoundTrip) {
  for (int k = 0; k < kNumRecordKinds; ++k) {
    RecordKind kind = static_cast<RecordKind>(k);
    Result<RecordKind> back = RecordKindFromName(RecordKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(RecordKindFromName("nonsense").ok());
}

}  // namespace
}  // namespace journal
}  // namespace ras
