#include "src/journal/durable_control_plane.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fleet_gen.h"
#include "src/util/file_io.h"

namespace ras {
namespace journal {
namespace {

FleetOptions SmallFleet() {
  FleetOptions opts;
  opts.num_datacenters = 1;
  opts.msbs_per_datacenter = 2;
  opts.racks_per_msb = 2;
  opts.servers_per_rack = 6;
  return opts;  // 24 servers.
}

// Deletes every regular file under `dir` so each test starts from an empty
// durable directory even when the temp dir survives across runs.
void WipeDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return;
  }
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/dcp-" + name;
  WipeDir(dir);
  return dir;
}

// One "control-plane process": a fresh in-memory region attached to the
// durable directory. Constructing a second Proc on the same dir after the
// first died models a restart.
struct Proc {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;
  std::unique_ptr<DurableControlPlane> durable;
  RecoveryReport report;

  explicit Proc(const std::string& dir, DurableOptions options = DurableOptions())
      : fleet(GenerateFleet(SmallFleet())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
    durable = std::make_unique<DurableControlPlane>(dir, options);
    EXPECT_TRUE(durable->Attach(broker.get(), &registry).ok());
    report = durable->OpenOrRecover();
  }

  uint32_t Digest() const { return StateDigest(*broker, registry); }

  ReservationId Admit(const std::string& name, double capacity) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    Result<ReservationId> id = durable->AdmitReservation(std::move(spec));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ok() ? *id : kUnassigned;
  }
};

std::vector<std::pair<ServerId, ReservationId>> Batch1(ReservationId id) {
  return {{0, id}, {1, id}, {2, id}, {3, id}, {4, id}, {5, id}};
}

std::vector<std::pair<ServerId, ReservationId>> Batch2(ReservationId id) {
  return {{0, kUnassigned}, {6, id}, {7, id}, {8, id}, {9, id}, {10, id}};
}

TEST(DurableControlPlaneTest, BootstrapPersistRestartRecovers) {
  std::string dir = FreshDir("bootstrap");
  uint32_t live_digest = 0;
  uint64_t live_generation = 0;
  size_t granted = 0;
  {
    Proc p(dir);
    ASSERT_TRUE(p.report.status.ok()) << p.report.status.ToString();
    EXPECT_FALSE(p.report.recovered_state);
    ReservationId id = p.Admit("svc", 10);
    ASSERT_TRUE(p.durable->PersistTargets(*p.broker, Batch1(id)).ok());
    // Out-of-band broker mutations flow through the watcher.
    p.broker->SetCurrent(0, id);
    p.broker->SetUnavailability(5, Unavailability::kUnplannedHardware);
    ASSERT_TRUE(p.durable->RoundBarrier().ok());
    live_digest = p.Digest();
    live_generation = p.durable->generation();
    granted = p.broker->CountInReservation(id);
    EXPECT_GT(granted, 0u);
  }
  Proc q(dir);
  ASSERT_TRUE(q.report.status.ok()) << q.report.status.ToString();
  EXPECT_TRUE(q.report.recovered_state);
  EXPECT_TRUE(q.report.digest_verified);
  EXPECT_GT(q.report.digests_checked, 0u);
  EXPECT_EQ(q.Digest(), live_digest);
  EXPECT_GE(q.durable->generation(), live_generation);
  const ReservationSpec* spec = q.registry.Find(1);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->name, "svc");
  EXPECT_EQ(q.broker->CountInReservation(1), granted) << "granted capacity lost in recovery";
  EXPECT_EQ(q.broker->record(5).unavailability, Unavailability::kUnplannedHardware);
  // The drill log artifact exists.
  EXPECT_TRUE(FileExists(dir + "/recovery.log"));
}

TEST(DurableControlPlaneTest, CrashSiteMatrixRecoversToExpectedState) {
  // Crash-free twin: the reference digests each crash site must recover to.
  uint32_t after_b1 = 0;
  uint32_t after_b2 = 0;
  {
    Proc ref(FreshDir("matrix-ref"));
    ReservationId id = ref.Admit("svc", 10);
    ASSERT_TRUE(ref.durable->PersistTargets(*ref.broker, Batch1(id)).ok());
    after_b1 = ref.Digest();
    ASSERT_TRUE(ref.durable->PersistTargets(*ref.broker, Batch2(id)).ok());
    after_b2 = ref.Digest();
  }
  ASSERT_NE(after_b1, after_b2);

  struct Site {
    CrashPoint point;
    bool batch2_survives;  // Recovery includes the crashed batch's effects.
  };
  const Site kSites[] = {
      {CrashPoint::kBeforeJournalAppend, false},
      {CrashPoint::kTornJournalAppend, false},
      {CrashPoint::kAfterJournalAppend, true},  // Intent durable: redone.
      {CrashPoint::kMidApply, true},
      {CrashPoint::kAfterApply, true},
      {CrashPoint::kAfterDigest, true},
  };
  for (const Site& site : kSites) {
    SCOPED_TRACE(CrashPointName(site.point));
    std::string dir = FreshDir(std::string("matrix-") + CrashPointName(site.point));
    uint64_t crash_generation = 0;
    {
      Proc p(dir);
      ReservationId id = p.Admit("svc", 10);
      ASSERT_TRUE(p.durable->PersistTargets(*p.broker, Batch1(id)).ok());
      CrashPointInjector injector;
      p.durable->SetCrashInjector(&injector);
      injector.Arm(site.point);
      crash_generation = p.durable->generation();
      Status crashed = p.durable->PersistTargets(*p.broker, Batch2(id));
      EXPECT_EQ(crashed.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(p.durable->dead());
      EXPECT_TRUE(injector.crashed());
      EXPECT_EQ(injector.crashed_at(), site.point);
      // A dead process performs no further durable work.
      EXPECT_EQ(p.durable->RoundBarrier().code(), StatusCode::kUnavailable);
      EXPECT_EQ(p.durable->AdmitReservation(ReservationSpec()).status().code(),
                StatusCode::kUnavailable);
    }
    Proc q(dir);
    ASSERT_TRUE(q.report.status.ok()) << q.report.status.ToString();
    EXPECT_TRUE(q.report.digest_verified);
    EXPECT_EQ(q.Digest(), site.batch2_survives ? after_b2 : after_b1);
    EXPECT_GE(q.durable->generation(), crash_generation)
        << "generation must never move backwards across a restart";
  }
}

TEST(DurableControlPlaneTest, CompactionCrashSitesAllRecoverLosslessly) {
  uint32_t after_b2 = 0;
  {
    Proc ref(FreshDir("compact-ref"));
    ReservationId id = ref.Admit("svc", 10);
    ASSERT_TRUE(ref.durable->PersistTargets(*ref.broker, Batch1(id)).ok());
    ASSERT_TRUE(ref.durable->PersistTargets(*ref.broker, Batch2(id)).ok());
    after_b2 = ref.Digest();
  }
  const CrashPoint kSites[] = {
      CrashPoint::kBeforeCheckpointWrite,
      CrashPoint::kAfterCheckpointWrite,
      CrashPoint::kAfterJournalTruncate,
  };
  for (CrashPoint point : kSites) {
    SCOPED_TRACE(CrashPointName(point));
    std::string dir = FreshDir(std::string("compact-") + CrashPointName(point));
    {
      Proc p(dir);
      ReservationId id = p.Admit("svc", 10);
      ASSERT_TRUE(p.durable->PersistTargets(*p.broker, Batch1(id)).ok());
      ASSERT_TRUE(p.durable->PersistTargets(*p.broker, Batch2(id)).ok());
      CrashPointInjector injector;
      p.durable->SetCrashInjector(&injector);
      injector.Arm(point);
      EXPECT_EQ(p.durable->Compact().code(), StatusCode::kUnavailable);
    }
    Proc q(dir);
    ASSERT_TRUE(q.report.status.ok()) << q.report.status.ToString();
    EXPECT_EQ(q.Digest(), after_b2) << "compaction must never lose state";
  }
}

TEST(DurableControlPlaneTest, AdmitCrashLosesOnlyTheUnacknowledgedReservation) {
  std::string dir = FreshDir("admit-crash");
  {
    Proc p(dir);
    ASSERT_NE(p.Admit("acknowledged", 5), kUnassigned);
    CrashPointInjector injector;
    p.durable->SetCrashInjector(&injector);
    injector.Arm(CrashPoint::kAfterAdmitApply);
    ReservationSpec spec;
    spec.name = "never-acknowledged";
    spec.capacity_rru = 5;
    spec.rru_per_type.assign(p.fleet.catalog.size(), 1.0);
    Result<ReservationId> id = p.durable->AdmitReservation(std::move(spec));
    EXPECT_EQ(id.status().code(), StatusCode::kUnavailable);
  }
  Proc q(dir);
  ASSERT_TRUE(q.report.status.ok());
  ASSERT_EQ(q.registry.size(), 1u);
  EXPECT_EQ(q.registry.All()[0]->name, "acknowledged");
}

TEST(DurableControlPlaneTest, AbortedBatchIsNotReplayed) {
  std::string dir = FreshDir("abort");
  uint32_t live_digest = 0;
  {
    Proc p(dir);
    ReservationId id = p.Admit("svc", 10);
    // Quorum loss: every write bounces, the broker rolls the batch back, and
    // the journal records the abort after its already-durable intent.
    p.broker->SetWriteFaultHook([](ServerId, ReservationId) { return true; });
    EXPECT_FALSE(p.durable->PersistTargets(*p.broker, Batch1(id)).ok());
    p.broker->SetWriteFaultHook(nullptr);
    ASSERT_TRUE(p.durable->PersistTargets(*p.broker, Batch2(id)).ok());
    live_digest = p.Digest();
  }
  Proc q(dir);
  ASSERT_TRUE(q.report.status.ok()) << q.report.status.ToString();
  EXPECT_EQ(q.report.aborted_batches_skipped, 1u);
  EXPECT_EQ(q.Digest(), live_digest);
  EXPECT_EQ(q.broker->record(0).target, kUnassigned) << "aborted batch leaked into recovery";
}

TEST(DurableControlPlaneTest, FallsBackToOlderCheckpointWhenNewestIsCorrupt) {
  std::string dir = FreshDir("fallback");
  uint32_t at_first_checkpoint = 0;
  {
    Proc p(dir);
    ReservationId id = p.Admit("svc", 10);
    ASSERT_TRUE(p.durable->PersistTargets(*p.broker, Batch1(id)).ok());
    ASSERT_TRUE(p.durable->Compact().ok());
    at_first_checkpoint = p.Digest();
    ASSERT_TRUE(p.durable->PersistTargets(*p.broker, Batch2(id)).ok());
    ASSERT_TRUE(p.durable->Compact().ok());
  }
  std::vector<CheckpointInfo> checkpoints = ListCheckpoints(dir);
  ASSERT_GE(checkpoints.size(), 2u);
  // Flip one body byte of the newest checkpoint.
  Result<std::string> content = ReadFileToString(checkpoints[0].path);
  ASSERT_TRUE(content.ok());
  std::string corrupted = *content;
  corrupted[corrupted.size() / 2] ^= 0x40;
  ASSERT_TRUE(AtomicWriteFile(checkpoints[0].path, corrupted).ok());

  Proc q(dir);
  ASSERT_TRUE(q.report.status.ok()) << q.report.status.ToString();
  EXPECT_EQ(q.report.checkpoints_tried, 2);
  // The journal was truncated at the newer compaction, so the fallback is
  // consistent but stale: exactly the older checkpoint's state.
  EXPECT_EQ(q.Digest(), at_first_checkpoint);
}

TEST(DurableControlPlaneTest, ThresholdCompactionTruncatesTheJournal) {
  std::string dir = FreshDir("threshold");
  DurableOptions options;
  options.compact_every_records = 4;
  Proc p(dir, options);
  ReservationId id = p.Admit("svc", 10);
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(
        p.durable->PersistTargets(*p.broker, round % 2 == 0 ? Batch1(id) : Batch2(id)).ok());
  }
  EXPECT_LT(p.durable->records_since_compact(), 4u);
  EXPECT_FALSE(ListCheckpoints(dir).empty());
  Result<JournalScan> scan = WriteAheadJournal::Scan(dir + "/journal.wal");
  ASSERT_TRUE(scan.ok());
  EXPECT_LT(scan->records.size(), 12u) << "journal never truncated";
}

}  // namespace
}  // namespace journal
}  // namespace ras
