// Corruption fuzzing for the durability formats: state_io snapshots, the
// write-ahead journal, and checkpoint files. The invariant under test is
// *no partial effects*: whatever a flipped byte or truncation does, a load
// either succeeds or leaves the target state exactly as it was — and a
// journal scan never surfaces a record from beyond the damage.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/state_io.h"
#include "src/fleet/fleet_gen.h"
#include "src/journal/checkpoint.h"
#include "src/journal/wal.h"
#include "src/util/file_io.h"
#include "src/util/rng.h"

namespace ras {
namespace {

FleetOptions SmallFleet() {
  FleetOptions opts;
  opts.num_datacenters = 1;
  opts.msbs_per_datacenter = 2;
  opts.racks_per_msb = 2;
  opts.servers_per_rack = 6;
  return opts;  // 24 servers.
}

// A representative region state with reservations, bindings, loans, and
// unavailability — every record shape the serializer produces.
std::string ReferenceState(const Fleet& fleet) {
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "svc|with|pipes";
  spec.capacity_rru = 12;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ReservationId a = *registry.Create(spec);
  spec.name = "second";
  spec.capacity_rru = 6;
  ReservationId b = *registry.Create(spec);
  for (ServerId s = 0; s < 8; ++s) {
    broker.SetTarget(s, a);
    broker.SetCurrent(s, a);
  }
  broker.SetTarget(9, b);
  broker.SetElasticLoan(10, a, true);
  broker.SetUnavailability(11, Unavailability::kUnplannedSoftware);
  broker.SetHasContainers(3, true);
  return SerializeRegionState(broker, registry);
}

// True when `broker` + `registry` are bit-identical to freshly-constructed
// empties (the no-partial-effects postcondition after a failed load).
void ExpectUntouched(const ResourceBroker& broker, const ReservationRegistry& registry) {
  EXPECT_EQ(registry.size(), 0u);
  for (ServerId s = 0; s < broker.num_servers(); ++s) {
    const ServerRecord& r = broker.record(s);
    EXPECT_EQ(r.current, kUnassigned) << "server " << s;
    EXPECT_EQ(r.target, kUnassigned) << "server " << s;
    EXPECT_FALSE(r.elastic_loan) << "server " << s;
    EXPECT_EQ(r.unavailability, Unavailability::kNone) << "server " << s;
    EXPECT_FALSE(r.has_containers) << "server " << s;
  }
}

TEST(CorruptionFuzzTest, StateLoadHasNoPartialEffectsUnderByteFlips) {
  Fleet fleet = GenerateFleet(SmallFleet());
  std::string good = ReferenceState(fleet);
  Rng rng(0xC0FFEE);
  int accepted = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = good;
    size_t pos = rng.Next() % mutated.size();
    mutated[pos] ^= static_cast<char>(1 + (rng.Next() % 255));
    ResourceBroker broker(&fleet.topology);
    ReservationRegistry registry;
    Status loaded = DeserializeRegionState(mutated, broker, registry);
    if (loaded.ok()) {
      // A flip can land in a name or a digit and still parse — but then the
      // state must round-trip to exactly the mutated text's content.
      ++accepted;
      continue;
    }
    ExpectUntouched(broker, registry);
  }
  // Most flips must be caught (structure, numbers, ranges); a few landing in
  // free-text name bytes may legitimately survive.
  EXPECT_LT(accepted, 400 / 2);
}

TEST(CorruptionFuzzTest, StateLoadHasNoPartialEffectsUnderTruncation) {
  Fleet fleet = GenerateFleet(SmallFleet());
  std::string good = ReferenceState(fleet);
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 200; ++trial) {
    size_t keep = rng.Next() % good.size();
    std::string mutated = good.substr(0, keep);
    ResourceBroker broker(&fleet.topology);
    ReservationRegistry registry;
    Status loaded = DeserializeRegionState(mutated, broker, registry);
    if (!loaded.ok()) {
      ExpectUntouched(broker, registry);
    }
  }
}

TEST(CorruptionFuzzTest, DuplicateRecordsRejectedWithoutPartialEffects) {
  Fleet fleet = GenerateFleet(SmallFleet());
  std::string good = ReferenceState(fleet);
  // Duplicate every line in turn; reservation/server duplicates must be
  // rejected and must leave nothing behind.
  size_t start = 0;
  while (start < good.size()) {
    size_t end = good.find('\n', start);
    std::string line = good.substr(start, end - start);
    if (line.rfind("reservation|", 0) == 0 || line.rfind("server|", 0) == 0) {
      std::string mutated = good + line + "\n";
      ResourceBroker broker(&fleet.topology);
      ReservationRegistry registry;
      Status loaded = DeserializeRegionState(mutated, broker, registry);
      EXPECT_FALSE(loaded.ok()) << line;
      EXPECT_NE(loaded.message().find("duplicate"), std::string::npos) << loaded.ToString();
      ExpectUntouched(broker, registry);
    }
    start = end + 1;
  }
}

TEST(CorruptionFuzzTest, JournalScanNeverSurfacesRecordsPastDamage) {
  std::string path = ::testing::TempDir() + "/fuzz-journal.wal";
  std::remove(path.c_str());
  journal::WriteAheadJournal wal(path);
  ASSERT_TRUE(wal.OpenAppend(1).ok());
  const int kRecords = 20;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(
        wal.Append(journal::RecordKind::kDigest, std::string(8, static_cast<char>('a' + i % 16)))
            .ok());
  }
  wal.Close();
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  const std::string good = *content;

  Rng rng(0xF00D);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    size_t pos = rng.Next() % mutated.size();
    bool truncate = trial % 3 == 0;
    if (truncate) {
      mutated = mutated.substr(0, pos);
    } else {
      mutated[pos] ^= static_cast<char>(1 + (rng.Next() % 255));
    }
    ASSERT_TRUE(AtomicWriteFile(path, mutated).ok());
    Result<journal::JournalScan> scan = journal::WriteAheadJournal::Scan(path);
    ASSERT_TRUE(scan.ok());
    // Every surfaced record must be one of the originals, in order, with no
    // gaps: generations 1..k for some k.
    for (size_t i = 0; i < scan->records.size(); ++i) {
      EXPECT_EQ(scan->records[i].generation, i + 1);
    }
    EXPECT_LE(scan->valid_bytes, mutated.size());
    if (scan->torn()) {
      EXPECT_EQ(scan->valid_bytes + scan->torn_bytes, mutated.size());
      EXPECT_LT(scan->records.size(), static_cast<size_t>(kRecords));
    }
  }
}

TEST(CorruptionFuzzTest, CheckpointLoadRejectsAnyByteFlip) {
  Fleet fleet = GenerateFleet(SmallFleet());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 8;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ReservationId id = *registry.Create(spec);
  for (ServerId s = 0; s < 6; ++s) {
    broker.SetTarget(s, id);
  }
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(journal::WriteCheckpoint(dir, 42, broker, registry).ok());
  std::vector<journal::CheckpointInfo> found = journal::ListCheckpoints(dir);
  ASSERT_FALSE(found.empty());
  std::string path;
  for (const journal::CheckpointInfo& c : found) {
    if (c.generation == 42) {
      path = c.path;
    }
  }
  ASSERT_FALSE(path.empty());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  const std::string good = *content;

  uint64_t generation = 0;
  ASSERT_TRUE(journal::LoadCheckpointBody(path, &generation).ok());
  EXPECT_EQ(generation, 42u);

  Rng rng(0xABCD);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = good;
    size_t pos = rng.Next() % mutated.size();
    mutated[pos] ^= static_cast<char>(1 + (rng.Next() % 255));
    ASSERT_TRUE(AtomicWriteFile(path, mutated).ok());
    Result<std::string> body = journal::LoadCheckpointBody(path, &generation);
    // The header CRC + length cover every body byte, and the header's own
    // fields fail parsing or CRC comparison when damaged. Nothing survives.
    EXPECT_FALSE(body.ok()) << "flip at byte " << pos << " went undetected";
  }
  ASSERT_TRUE(AtomicWriteFile(path, good).ok());
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace ras
