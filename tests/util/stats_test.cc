#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleSample) {
  OnlineStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.min(), 4.5);
  EXPECT_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Classic population-variance example.
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(PercentileTest, Empty) { EXPECT_EQ(Percentile({}, 50), 0.0); }

TEST(PercentileTest, Median) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(PercentileTest, Interpolates) {
  // p95 of [0..99]: rank 94.05 -> 94.05.
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(i);
  }
  EXPECT_NEAR(Percentile(v, 95), 94.05, 1e-9);
}

TEST(VarianceTest, MatchesOnline) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
}

TEST(VarianceTest, DegenerateInputs) {
  EXPECT_EQ(Variance({}), 0.0);
  EXPECT_EQ(Variance({3.0}), 0.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.Add(0.5);   // Bucket 0.
  h.Add(9.5);   // Bucket 4.
  h.Add(-3);    // Clamps to bucket 0.
  h.Add(42);    // Clamps to bucket 4.
  h.Add(5.0);   // Bucket 2 (boundary goes up).
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

TEST(HistogramTest, ToStringContainsBars) {
  Histogram h(0, 4, 2);
  h.Add(1);
  h.Add(1);
  h.Add(3);
  std::string s = h.ToString(10);
  EXPECT_NE(s.find("##########"), std::string::npos);  // Peak bucket full bar.
  EXPECT_NE(s.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace ras
