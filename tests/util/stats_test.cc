#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleSample) {
  OnlineStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.min(), 4.5);
  EXPECT_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Classic population-variance example.
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(PercentileTest, Empty) { EXPECT_EQ(Percentile({}, 50), 0.0); }

TEST(PercentileTest, Median) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(PercentileTest, Interpolates) {
  // p95 of [0..99]: rank 94.05 -> 94.05.
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(i);
  }
  EXPECT_NEAR(Percentile(v, 95), 94.05, 1e-9);
}

TEST(VarianceTest, MatchesOnline) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
}

TEST(VarianceTest, DegenerateInputs) {
  EXPECT_EQ(Variance({}), 0.0);
  EXPECT_EQ(Variance({3.0}), 0.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.Add(0.5);   // Bucket 0.
  h.Add(9.5);   // Bucket 4.
  h.Add(-3);    // Clamps to bucket 0.
  h.Add(42);    // Clamps to bucket 4.
  h.Add(5.0);   // Bucket 2 (boundary goes up).
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

TEST(HistogramTest, AddCountBulkInsert) {
  Histogram h(0, 10, 5);
  h.AddCount(1, 3);
  h.AddCount(4, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(1), 3u);
  EXPECT_EQ(h.bucket(4), 2u);
}

TEST(HistogramTest, MergeAddsBucketForBucket) {
  Histogram a(0, 10, 5);
  Histogram b(0, 10, 5);
  a.Add(1);
  a.Add(9);
  b.Add(1);
  b.Add(5);
  ASSERT_TRUE(a.MergeableWith(b));
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_EQ(a.bucket(4), 1u);
}

TEST(HistogramTest, MergeRejectsShapeMismatch) {
  Histogram a(0, 10, 5);
  Histogram wrong_buckets(0, 10, 4);
  Histogram wrong_range(0, 20, 5);
  a.Add(3);
  EXPECT_FALSE(a.Merge(wrong_buckets));
  EXPECT_FALSE(a.Merge(wrong_range));
  // A rejected merge leaves the target untouched.
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(a.bucket(1), 1u);
}

// --- Percentile-from-buckets edge semantics (locked down exactly) ----------

TEST(HistogramPercentileTest, EmptyIsZero) {
  Histogram h(0, 10, 5);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramPercentileTest, SingleSampleInterpolatesWithinBucket) {
  // One sample in bucket [2, 3): rank p/100 sweeps the bucket linearly.
  Histogram h(0, 10, 10);
  h.Add(2.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 2.0);    // Lower edge of first nonempty.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 2.5);   // Midpoint of the bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 3.0);  // Upper edge of last nonempty.
}

TEST(HistogramPercentileTest, UniformFillMatchesLinearRamp) {
  // 10 buckets x 10 samples each: percentile p maps to value p/10 exactly.
  Histogram h(0, 10, 10);
  for (size_t b = 0; b < 10; ++b) {
    h.AddCount(b, 10);
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(25), 2.5);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 9.5);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 9.9);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10.0);
}

TEST(HistogramPercentileTest, RankOnBucketBoundaryReturnsTheBoundary) {
  // 4 samples in bucket 0 ([0,2)), 4 in bucket 3 ([6,8)). p50's rank (4 of 8)
  // completes bucket 0 exactly: the answer is that bucket's upper edge, 2.0 —
  // not the lower edge of the next nonempty bucket across the gap.
  Histogram h(0, 10, 5);
  h.AddCount(0, 4);
  h.AddCount(3, 4);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 2.0);
  // Just past the boundary the answer jumps into the next nonempty bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(62.5), 6.5);  // Rank 5 of 8: 1/4 into [6,8).
  EXPECT_DOUBLE_EQ(h.Percentile(100), 8.0);
}

TEST(HistogramPercentileTest, SkewedMassLandsInHeavyBucket) {
  Histogram h(0, 100, 10);
  h.AddCount(0, 98);  // [0, 10)
  h.AddCount(9, 2);   // [90, 100)
  EXPECT_NEAR(h.Percentile(50), 10.0 * 50.0 / 98.0, 1e-12);  // Rank 50 of 100 in [0,10).
  EXPECT_DOUBLE_EQ(h.Percentile(99), 95.0);  // Rank 99 of 100: halfway into [90,100).
}

TEST(HistogramPercentileTest, MergedHistogramMatchesCombinedCounts) {
  Histogram a(0, 10, 10);
  Histogram b(0, 10, 10);
  for (int i = 0; i < 50; ++i) {
    a.Add(2.5);
    b.Add(7.5);
  }
  ASSERT_TRUE(a.Merge(b));
  EXPECT_DOUBLE_EQ(a.Percentile(50), 3.0);  // Rank 50 completes bucket [2,3).
  EXPECT_DOUBLE_EQ(a.Percentile(75), 7.5);
}

TEST(HistogramTest, ToStringContainsBars) {
  Histogram h(0, 4, 2);
  h.Add(1);
  h.Add(1);
  h.Add(3);
  std::string s = h.ToString(10);
  EXPECT_NE(s.find("##########"), std::string::npos);  // Peak bucket full bar.
  EXPECT_NE(s.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace ras
