#include "src/util/sim_time.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

TEST(SimTimeTest, Arithmetic) {
  SimTime t{100};
  EXPECT_EQ((t + Seconds(5)).seconds, 105);
  EXPECT_EQ((t - Seconds(5)).seconds, 95);
  EXPECT_EQ((SimTime{200} - SimTime{50}).seconds, 150);
}

TEST(SimTimeTest, DurationHelpers) {
  EXPECT_EQ(Minutes(2).seconds, 120);
  EXPECT_EQ(Hours(1).seconds, 3600);
  EXPECT_EQ(Days(1).seconds, 86400);
  EXPECT_EQ(Weeks(1).seconds, 604800);
  EXPECT_EQ((Hours(1) + Minutes(30)).seconds, 5400);
  EXPECT_EQ((Hours(2) * 3).seconds, 6 * 3600);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime{5}, SimTime{6});
  EXPECT_EQ(SimTime{5}, SimTime{5});
  EXPECT_GT(SimDuration{10}, SimDuration{9});
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(FormatSimTime(SimTime{0}), "0d 00:00:00");
  EXPECT_EQ(FormatSimTime(SimTime{3 * 86400 + 4 * 3600 + 5 * 60 + 6}), "3d 04:05:06");
  EXPECT_EQ(FormatSimTime(SimTime{-61}), "-0d 00:01:01");
}

}  // namespace
}  // namespace ras
