#include "src/util/status.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad capacity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad capacity");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad capacity");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace ras
