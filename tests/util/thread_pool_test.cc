#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace ras {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
    // No Wait(): the destructor must still run everything before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmittingFromWithinATaskWorks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    ++count;
    pool.Submit([&count] { ++count; });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyUpToPoolSize) {
  // The parallel B&B relies on one long-lived worker loop per thread, so the
  // pool must actually run N submitted tasks at the same time. Rendezvous: all
  // four tasks block until all four have started.
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  for (int i = 0; i < kThreads; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      if (++arrived == kThreads) {
        cv.notify_all();
      } else {
        cv.wait(lock, [&] { return arrived == kThreads; });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(arrived, kThreads);
}

}  // namespace
}  // namespace ras
