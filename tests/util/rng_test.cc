#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ras {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values hit in 2000 draws.
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, BernoulliRateRoughlyMatches) {
  Rng rng(17);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsRoughlyMatch) {
  Rng rng(19);
  double sum = 0, sum2 = 0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / kTrials;
  double var = sum2 / kTrials - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanRoughlyMatches) {
  Rng rng(23);
  double sum = 0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    double x = rng.Exponential(0.5);  // Mean 2.
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kTrials, 2.0, 0.1);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(29);
  double sum = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(rng.Poisson(3.0));
  }
  EXPECT_NEAR(sum / kTrials, 3.0, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(31);
  double sum = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(rng.Poisson(100.0));
  }
  EXPECT_NEAR(sum / kTrials, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(37);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, LogUniformStaysInRange) {
  Rng rng(41);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.LogUniformInt(1, 30000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 30000);
  }
}

TEST(RngTest, LogUniformIsHeavyTailed) {
  // A log-uniform draw over [1, 10000] lands below 100 about half the time.
  Rng rng(43);
  int below_100 = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.LogUniformInt(1, 10000) < 100) {
      ++below_100;
    }
  }
  double rate = static_cast<double>(below_100) / kTrials;
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(RngTest, WeightedIndexHonorsWeights) {
  Rng rng(47);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);  // Zero weight never selected.
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.Fork();
  // Child stream differs from the parent continuing.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.Next() == child.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace ras
