// Crash-restart chaos drill: kill the control plane mid-round at every
// injection site, recover it from the write-ahead journal + checkpoints, and
// assert the recovered region is exactly what a crash-free reference run
// durably held at that instant — zero lost grants, exact partition
// conservation, and broker generations that never move backwards.
//
// The drill log of every recovery is concatenated into recovery_drill.log in
// the working directory; CI archives it as the crash-recovery artifact.

#include "src/sim/scenario.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/journal/checkpoint.h"
#include "src/util/file_io.h"

namespace ras {
namespace {

void WipeDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return;
  }
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

ScenarioOptions DrillScenario(const std::string& durable_dir) {
  ScenarioOptions opts;
  opts.fleet.num_datacenters = 2;
  opts.fleet.msbs_per_datacenter = 2;
  opts.fleet.racks_per_msb = 3;
  opts.fleet.servers_per_rack = 6;
  opts.fleet.seed = 11;
  opts.seed = 11;
  opts.durable_dir = durable_dir;
  return opts;  // 72 servers.
}

ReservationSpec AnySpec(const RegionScenario& s, const std::string& name, double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(s.fleet.catalog.size(), 1.0);
  return spec;
}

// Every server must sit in exactly one current-binding bucket, and every
// bound reservation must exist: the integer-RRU conservation invariant.
void ExpectConservation(const RegionScenario& s) {
  size_t bound = 0;
  for (const ReservationSpec* spec : s.registry.All()) {
    bound += s.broker->CountInReservation(spec->id);
  }
  size_t free_pool = s.broker->CountInReservation(kUnassigned);
  EXPECT_EQ(bound + free_pool, s.broker->num_servers())
      << "servers leaked out of the reservation partition";
  std::set<ReservationId> live;
  for (const ReservationSpec* spec : s.registry.All()) {
    live.insert(spec->id);
  }
  for (ServerId id = 0; id < s.broker->num_servers(); ++id) {
    const ServerRecord& r = s.broker->record(id);
    if (r.current != kUnassigned) {
      EXPECT_TRUE(live.count(r.current)) << "server " << id << " bound to a ghost reservation";
    }
  }
}

std::map<ReservationId, size_t> GrantedCounts(const RegionScenario& s) {
  std::map<ReservationId, size_t> counts;
  for (const ReservationSpec* spec : s.registry.All()) {
    counts[spec->id] = s.broker->CountInReservation(spec->id);
  }
  return counts;
}

TEST(CrashRestartTest, EveryCrashSiteRecoversToTheReferenceDigest) {
  // Crash-free reference: two admission+solve rounds, capturing both the
  // post-apply digest of each round's persist and the end-of-round digest.
  std::string ref_dir = ::testing::TempDir() + "/crash-ref";
  WipeDir(ref_dir);
  uint32_t ref_persist_round2 = 0;  // Post-apply digest of round 2's batch.
  uint32_t ref_after_admit_b = 0;   // Round 1 complete + svc-b acknowledged.
  {
    RegionScenario ref(DrillScenario(ref_dir));
    ASSERT_TRUE(ref.recovery.status.ok()) << ref.recovery.status.ToString();
    ASSERT_TRUE(ref.AdmitReservation(AnySpec(ref, "svc-a", 20)).ok());
    ASSERT_TRUE(ref.SolveRound().ok());  // Round 1.
    ASSERT_TRUE(ref.AdmitReservation(AnySpec(ref, "svc-b", 12)).ok());
    ref_after_admit_b = journal::StateDigest(*ref.broker, ref.registry);
    ASSERT_TRUE(ref.SolveRound().ok());  // Round 2.
    ref_persist_round2 = ref.durable->last_persist_digest();
    ASSERT_NE(ref_persist_round2, 0u);
  }

  struct Site {
    CrashPoint point;
    bool round2_batch_survives;
  };
  const Site kSites[] = {
      {CrashPoint::kBeforeJournalAppend, false},
      {CrashPoint::kTornJournalAppend, false},
      {CrashPoint::kAfterJournalAppend, true},
      {CrashPoint::kMidApply, true},
      {CrashPoint::kAfterApply, true},
      {CrashPoint::kAfterDigest, true},
  };
  std::string drill_log;
  for (const Site& site : kSites) {
    SCOPED_TRACE(CrashPointName(site.point));
    std::string dir =
        ::testing::TempDir() + "/crash-" + std::string(CrashPointName(site.point));
    WipeDir(dir);
    CrashPointInjector injector;
    uint64_t generation_at_crash = 0;
    std::map<ReservationId, size_t> granted_round1;
    {
      RegionScenario s(DrillScenario(dir));
      ASSERT_TRUE(s.recovery.status.ok());
      ASSERT_TRUE(s.AdmitReservation(AnySpec(s, "svc-a", 20)).ok());
      ASSERT_TRUE(s.SolveRound().ok());
      granted_round1 = GrantedCounts(s);
      ASSERT_TRUE(s.AdmitReservation(AnySpec(s, "svc-b", 12)).ok());
      s.durable->SetCrashInjector(&injector);
      injector.Arm(site.point);
      generation_at_crash = s.durable->generation();
      // Round 2: the control plane dies inside the persist barrier. The
      // round itself still completes in memory (the supervisor degrades),
      // but nothing after the crash instant is durable.
      (void)s.SolveRound();
      EXPECT_TRUE(injector.crashed());
      EXPECT_TRUE(s.durable->dead());
    }
    // Restart: a fresh scenario over the same durable directory.
    RegionScenario r(DrillScenario(dir));
    ASSERT_TRUE(r.recovery.status.ok()) << r.recovery.status.ToString();
    ASSERT_TRUE(r.recovery.recovered_state);
    EXPECT_TRUE(r.recovery.digest_verified);
    EXPECT_GE(r.durable->generation(), generation_at_crash)
        << "broker generation moved backwards across the restart";
    uint32_t recovered = journal::StateDigest(*r.broker, r.registry);
    if (site.round2_batch_survives) {
      // The intent record was durable: recovery redid the round-2 apply and
      // must land exactly on the crash-free run's post-apply state.
      EXPECT_EQ(recovered, ref_persist_round2);
    } else {
      // The intent never reached the journal (or only half of it did): the
      // durable truth is the end of round 1 plus the acknowledged admit.
      EXPECT_EQ(recovered, ref_after_admit_b);
    }
    // No reservation lost granted capacity relative to the last durable
    // round that bound it.
    ExpectConservation(r);
    for (const auto& [id, count] : granted_round1) {
      EXPECT_GE(r.broker->CountInReservation(id), count)
          << "reservation " << id << " lost granted servers in recovery";
    }
    drill_log += "=== " + std::string(CrashPointName(site.point)) + " ===\n" + r.recovery.log;
  }
  ASSERT_TRUE(AtomicWriteFile("recovery_drill.log", drill_log).ok());
}

TEST(CrashRestartTest, RepeatedCrashRestartLineageStaysConsistent) {
  std::string dir = ::testing::TempDir() + "/crash-lineage";
  WipeDir(dir);
  const CrashPoint kRotation[] = {
      CrashPoint::kAfterJournalAppend, CrashPoint::kBeforeCheckpointWrite,
      CrashPoint::kTornJournalAppend,  CrashPoint::kAfterCheckpointWrite,
      CrashPoint::kMidApply,           CrashPoint::kAfterDigest,
  };
  uint64_t last_generation = 0;
  size_t expected_reservations = 0;
  bool first_cycle = true;
  int cycle = 0;
  for (CrashPoint point : kRotation) {
    SCOPED_TRACE(CrashPointName(point));
    CrashPointInjector injector;
    RegionScenario s(DrillScenario(dir));
    ASSERT_TRUE(s.recovery.status.ok()) << s.recovery.status.ToString();
    if (!first_cycle) {
      ASSERT_TRUE(s.recovery.recovered_state);
      EXPECT_TRUE(s.recovery.digest_verified);
      // GE, not GT: a crash that never durably consumed a generation (a torn
      // append, a pre-append death) legitimately resumes at the same number.
      EXPECT_GE(s.durable->generation(), last_generation)
          << "generation lineage broke across restart " << cycle;
      EXPECT_EQ(s.registry.size(), expected_reservations)
          << "a recovered reservation vanished";
    }
    ExpectConservation(s);
    // Grow the region a little each cycle, then die at this cycle's site.
    Result<ReservationId> id =
        s.AdmitReservation(AnySpec(s, "svc-" + std::to_string(cycle), 6 + cycle));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(s.SolveRound().ok());
    expected_reservations = s.registry.size();
    last_generation = s.durable->generation();
    s.durable->SetCrashInjector(&injector);
    injector.Arm(point);
    (void)s.SolveRound();
    if (point == CrashPoint::kBeforeCheckpointWrite ||
        point == CrashPoint::kAfterCheckpointWrite) {
      // Compaction sites are reached via an explicit compaction, not the
      // persist barrier.
      (void)s.durable->Compact();
    }
    EXPECT_TRUE(injector.crashed());
    first_cycle = false;
    ++cycle;
  }
  // One final clean restart: the whole lineage replays.
  RegionScenario final_scenario(DrillScenario(dir));
  ASSERT_TRUE(final_scenario.recovery.status.ok())
      << final_scenario.recovery.status.ToString();
  EXPECT_TRUE(final_scenario.recovery.digest_verified);
  EXPECT_EQ(final_scenario.registry.size(), expected_reservations);
  ExpectConservation(final_scenario);
  EXPECT_GT(final_scenario.durable->generation(), last_generation);
}

TEST(CrashRestartTest, RecoveryColdStartsTheResolveCache) {
  // Durable-control-plane recovery restores broker + registry state but must
  // never resurrect cross-round solver warm state: the first round after a
  // recovery always runs cold (delta_servers == -1), then warms back up.
  std::string dir = ::testing::TempDir() + "/resolve-cold";
  WipeDir(dir);
  {
    RegionScenario s(DrillScenario(dir));
    ASSERT_TRUE(s.recovery.status.ok()) << s.recovery.status.ToString();
    ASSERT_TRUE(s.AdmitReservation(AnySpec(s, "svc", 16)).ok());
    ASSERT_TRUE(s.SolveRound().ok());
    ASSERT_TRUE(s.SolveRound().ok());
    const auto& rounds = s.supervisor->stats().rounds;
    ASSERT_EQ(rounds.size(), 2u);
    EXPECT_EQ(rounds[0].delta_servers, -1);  // First-ever round: cold.
    EXPECT_GE(rounds[1].delta_servers, 0) << "continuity lost across healthy rounds";
  }
  RegionScenario r(DrillScenario(dir));
  ASSERT_TRUE(r.recovery.status.ok()) << r.recovery.status.ToString();
  ASSERT_TRUE(r.recovery.recovered_state);
  EXPECT_TRUE(r.solver.resolve_cache().empty());
  ASSERT_TRUE(r.SolveRound().ok());
  const auto& rounds = r.supervisor->stats().rounds;
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].delta_servers, -1) << "the round after recovery was not cold";
  ExpectConservation(r);
}

}  // namespace
}  // namespace ras
