// Region soak test: several simulated days of everything at once — solver
// rounds, health events, capacity churn, failure replacement, elastic loans
// and revocations, container workloads — with system-wide invariants checked
// after every round.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/sim/scenario.h"

namespace ras {
namespace {

class SoakTest : public ::testing::Test {
 protected:
  static ScenarioOptions Options() {
    ScenarioOptions opts;
    opts.fleet.num_datacenters = 2;
    opts.fleet.msbs_per_datacenter = 3;
    opts.fleet.racks_per_msb = 4;
    opts.fleet.servers_per_rack = 8;
    opts.fleet.seed = 31337;
    opts.seed = 31337;
    opts.solver.phase1_mip.max_nodes = 12;  // Keep the soak fast.
    opts.solver.phase2_mip.max_nodes = 8;
    return opts;  // 192 servers.
  }

  // System-wide invariants that must hold at any quiescent point.
  void CheckInvariants(RegionScenario& sim) {
    // 1. Broker membership index is consistent with records.
    std::map<ReservationId, size_t> counted;
    for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
      counted[sim.broker->record(id).current]++;
    }
    for (const auto& [res, count] : counted) {
      EXPECT_EQ(sim.broker->CountInReservation(res), count) << "reservation " << res;
    }
    // 2. No server is a member of two reservations (index is a partition).
    std::set<ServerId> seen;
    for (const auto& [res, count] : counted) {
      for (ServerId id : sim.broker->ServersInReservation(res)) {
        EXPECT_TRUE(seen.insert(id).second) << "server " << id << " in two reservations";
      }
    }
    // 3. Elastic-loan flags are consistent: loaned servers sit in elastic
    // reservations and have a home.
    for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
      const ServerRecord& rec = sim.broker->record(id);
      if (rec.elastic_loan) {
        const ReservationSpec* owner = sim.registry.Find(rec.current);
        ASSERT_NE(owner, nullptr);
        EXPECT_TRUE(owner->is_elastic);
        EXPECT_NE(rec.home, kUnassigned);
      }
    }
    // 4. has_containers agrees with the allocator's view.
    for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
      EXPECT_EQ(sim.broker->record(id).has_containers, sim.twine->containers_on(id) > 0)
          << "server " << id;
    }
    // 5. Containers only run on servers currently bound to their job's
    // reservation (checked indirectly: every busy server is bound somewhere).
    for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
      if (sim.twine->containers_on(id) > 0) {
        EXPECT_NE(sim.broker->record(id).current, kUnassigned);
      }
    }
  }
};

TEST_F(SoakTest, ThreeSimulatedDays) {
  RegionScenario sim(Options());

  // Workload: three guaranteed services with containers, one elastic.
  std::vector<ReservationId> services;
  std::vector<JobId> jobs;
  for (int i = 0; i < 3; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = 25 + 5 * i;
    spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
    services.push_back(*sim.registry.Create(spec));
  }
  ASSERT_TRUE(sim.SolveRound().ok());
  for (size_t i = 0; i < services.size(); ++i) {
    JobSpec job;
    job.name = "job-" + std::to_string(i);
    job.reservation = services[i];
    job.container = ContainerSpec{16, 32};
    job.replicas = 20;
    jobs.push_back(*sim.twine->SubmitJob(job));
  }
  ReservationSpec elastic;
  elastic.name = "batch";
  elastic.capacity_rru = 0;
  elastic.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
  elastic.is_elastic = true;
  elastic.needs_correlated_buffer = false;
  ReservationId batch = *sim.registry.Create(elastic);

  sim.ArmHealth(Days(3));

  for (int hour = 0; hour < 3 * 24; ++hour) {
    SimTime now = SimTime{static_cast<int64_t>(hour) * 3600};
    sim.health->AdvanceTo(now);
    // Capacity churn every few hours.
    if (hour % 5 == 2) {
      size_t which = static_cast<size_t>(sim.rng.UniformInt(0, 2));
      ReservationSpec spec = *sim.registry.Find(services[which]);
      spec.capacity_rru = std::max(15.0, spec.capacity_rru * sim.rng.Uniform(0.9, 1.12));
      ASSERT_TRUE(sim.registry.Update(spec).ok());
    }
    // Elastic loans in quiet hours, solve every 6h, reconcile hourly.
    if (hour % 24 == 3) {
      sim.mover->LoanIdleBuffersToElastic(batch, 3);
    }
    if (hour % 6 == 0) {
      auto stats = sim.SolveRound();
      ASSERT_TRUE(stats.ok()) << "hour " << hour;
    } else {
      sim.mover->ReconcileAll();
      sim.twine->RetryPending();
    }
    CheckInvariants(sim);
  }

  // After three days: guarantees hold — each service has at least its
  // capacity in healthy effective servers, and every replica that fits runs.
  for (size_t i = 0; i < services.size(); ++i) {
    const ReservationSpec* spec = sim.registry.Find(services[i]);
    size_t healthy = 0;
    for (ServerId id : sim.broker->ServersInReservation(services[i])) {
      healthy += IsUnplanned(sim.broker->record(id).unavailability) ? 0 : 1;
    }
    EXPECT_GE(static_cast<double>(healthy) + 1.0, spec->capacity_rru)
        << spec->name << " lost its guarantee";
    EXPECT_EQ(sim.twine->running_containers(jobs[i]) +
                  static_cast<size_t>(sim.twine->pending_containers(jobs[i])),
              20u);
  }
}

TEST_F(SoakTest, SurvivesBackToBackMsbFailures) {
  RegionScenario sim(Options());
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 40;
  spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
  ReservationId id = *sim.registry.Create(spec);
  ASSERT_TRUE(sim.SolveRound().ok());

  // Fail each MSB in turn for an hour, solving in between: the system must
  // keep the guarantee whenever the region can physically support it.
  for (MsbId m = 0; m < sim.fleet.topology.num_msbs(); ++m) {
    HealthEvent outage;
    outage.kind = HealthEventKind::kMsbCorrelatedFailure;
    outage.start = sim.loop.now();
    outage.duration = Hours(1);
    outage.servers = sim.fleet.topology.ServersInMsb(m);
    sim.health->Inject(outage);
    sim.health->AdvanceTo(sim.loop.now() + Seconds(1));

    // During the outage the embedded buffer covers: healthy servers still
    // reach the requested capacity.
    size_t healthy = 0;
    for (ServerId sid : sim.broker->ServersInReservation(id)) {
      healthy += IsUnplanned(sim.broker->record(sid).unavailability) ? 0 : 1;
    }
    EXPECT_GE(static_cast<double>(healthy) + 1e-9, 40.0) << "during MSB " << m << " outage";

    sim.health->AdvanceTo(sim.loop.now() + Hours(2));  // Recover.
    sim.loop.RunUntil(sim.loop.now() + Hours(2));
    ASSERT_TRUE(sim.SolveRound().ok());
    CheckInvariants(sim);
  }
}

}  // namespace
}  // namespace ras
