// Integration tests: a whole simulated region driven through health events,
// solver rounds, container workloads, and failure drills.

#include "src/sim/scenario.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

ScenarioOptions SmallScenario() {
  ScenarioOptions opts;
  opts.fleet.num_datacenters = 2;
  opts.fleet.msbs_per_datacenter = 3;
  opts.fleet.racks_per_msb = 4;
  opts.fleet.servers_per_rack = 6;
  opts.fleet.seed = 5;
  opts.seed = 5;
  return opts;  // 144 servers.
}

ReservationSpec AnySpec(const RegionScenario& s, const std::string& name, double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(s.fleet.catalog.size(), 1.0);
  return spec;
}

TEST(ScenarioTest, SolveRoundMaterializesCapacity) {
  RegionScenario s(SmallScenario());
  auto id = s.registry.Create(AnySpec(s, "svc", 40));
  ASSERT_TRUE(id.ok());
  auto stats = s.SolveRound();
  ASSERT_TRUE(stats.ok());
  // After reconcile, current bindings match targets.
  EXPECT_TRUE(s.broker->PendingMoves().empty());
  EXPECT_GE(s.broker->CountInReservation(*id), 40u);
}

TEST(ScenarioTest, ContainersRideThroughSolve) {
  RegionScenario s(SmallScenario());
  auto id = s.registry.Create(AnySpec(s, "svc", 30));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(s.SolveRound().ok());

  JobSpec job;
  job.name = "web";
  job.reservation = *id;
  job.container = ContainerSpec{4, 8};
  job.replicas = 40;
  auto jid = s.twine->SubmitJob(job);
  ASSERT_TRUE(jid.ok());
  EXPECT_GT(s.twine->running_containers(*jid), 30u);

  // Another solve rebalances; workload must stay placed.
  ASSERT_TRUE(s.SolveRound().ok());
  EXPECT_EQ(s.twine->running_containers(*jid) + s.twine->pending_containers(*jid), 40u);
}

TEST(ScenarioTest, MsbFailureAbsorbedByEmbeddedBuffer) {
  RegionScenario s(SmallScenario());
  auto id = s.registry.Create(AnySpec(s, "svc", 40));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(s.SolveRound().ok());

  JobSpec job;
  job.name = "web";
  job.reservation = *id;
  job.container = ContainerSpec{8, 16};
  job.replicas = 30;
  auto jid = s.twine->SubmitJob(job);
  ASSERT_TRUE(jid.ok());

  // Kill the MSB where the reservation holds the most servers.
  std::map<MsbId, size_t> per_msb;
  for (ServerId sid : s.broker->ServersInReservation(*id)) {
    per_msb[s.fleet.topology.server(sid).msb]++;
  }
  MsbId worst = per_msb.begin()->first;
  for (const auto& [msb, count] : per_msb) {
    if (count > per_msb[worst]) {
      worst = msb;
    }
  }
  HealthEvent outage;
  outage.kind = HealthEventKind::kMsbCorrelatedFailure;
  outage.start = s.loop.now();
  outage.duration = Hours(8);
  outage.servers = s.fleet.topology.ServersInMsb(worst);
  s.health->Inject(outage);
  s.health->AdvanceTo(s.loop.now() + Seconds(1));

  // Displaced replicas re-place onto the embedded buffer inside the same
  // reservation — no mover action needed (Section 3.3.1).
  for (ServerId sid : s.fleet.topology.ServersInMsb(worst)) {
    if (s.twine->containers_on(sid) > 0) {
      s.twine->EvictServer(sid);
    }
  }
  s.twine->RetryPending();
  EXPECT_EQ(s.twine->running_containers(*jid), 30u);
}

TEST(ScenarioTest, RandomFailureTriggersFastReplacement) {
  RegionScenario s(SmallScenario());
  auto id = s.registry.Create(AnySpec(s, "svc", 40));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(s.SolveRound().ok());
  s.ArmHealth(Days(1));

  size_t before = s.broker->CountInReservation(*id);
  ServerId victim = s.broker->ServersInReservation(*id)[0];
  HealthEvent failure;
  failure.kind = HealthEventKind::kServerHardware;
  failure.start = s.loop.now();
  failure.duration = Days(3);
  failure.servers = {victim};
  s.health->Inject(failure);
  s.health->AdvanceTo(s.loop.now() + Seconds(1));
  // Replacement pulled from the shared buffer via the failure callback.
  EXPECT_EQ(s.mover->stats().failures_replaced, 1u);
  EXPECT_EQ(s.broker->CountInReservation(*id), before + 1);
}

TEST(ScenarioTest, PowerProbesProduceSaneValues) {
  RegionScenario s(SmallScenario());
  auto draws = s.MsbPowerDraw();
  EXPECT_EQ(draws.size(), s.fleet.topology.num_msbs());
  for (double d : draws) {
    EXPECT_GT(d, 0.0);
  }
  double var = s.PowerUtilizationVariance();
  EXPECT_GE(var, 0.0);
  EXPECT_LT(var, 1.0);
}

TEST(ScenarioTest, CrossDcTrafficFractionBounds) {
  RegionScenario s(SmallScenario());
  auto id = s.registry.Create(AnySpec(s, "presto", 30));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(s.SolveRound().ok());
  std::map<DatacenterId, double> data_share = {{0, 1.0}};  // All data in DC 0.
  double cross = s.CrossDcTrafficFraction(*id, data_share);
  EXPECT_GE(cross, 0.0);
  EXPECT_LE(cross, 1.0);
  // Spread placement: a good chunk of compute is outside DC 0.
  EXPECT_GT(cross, 0.2);
}

TEST(ScenarioTest, AffinityReducesCrossDcTraffic) {
  ScenarioOptions opts = SmallScenario();
  RegionScenario s(opts);
  ReservationSpec spec = AnySpec(s, "presto", 30);
  auto id = s.registry.Create(spec);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(s.SolveRound().ok());
  std::map<DatacenterId, double> data_share = {{0, 1.0}};
  double before = s.CrossDcTrafficFraction(*id, data_share);

  // Enable the affinity constraint (Expression 7) and re-solve. Data lives
  // entirely in DC 0; A > 1 keeps the embedded buffer local too (shares are
  // relative to C_r, which excludes the buffer).
  ReservationSpec updated = *s.registry.Find(*id);
  updated.dc_affinity[0] = 1.3;
  updated.affinity_theta = 0.1;
  ASSERT_TRUE(s.registry.Update(updated).ok());
  ASSERT_TRUE(s.SolveRound().ok());
  double after = s.CrossDcTrafficFraction(*id, data_share);
  EXPECT_LT(after, before * 0.7);  // Figure 15's direction, comfortably.
}

TEST(ScenarioTest, UnavailabilityProbe) {
  RegionScenario s(SmallScenario());
  EXPECT_EQ(s.UnavailableFraction(true), 0.0);
  EXPECT_EQ(s.UnavailableFraction(false), 0.0);
  s.broker->SetUnavailability(0, Unavailability::kPlannedMaintenance);
  s.broker->SetUnavailability(1, Unavailability::kUnplannedHardware);
  EXPECT_GT(s.UnavailableFraction(true), 0.0);
  EXPECT_GT(s.UnavailableFraction(false), 0.0);
}

}  // namespace
}  // namespace ras
