#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(SimTime{30}, [&](SimTime) { order.push_back(3); });
  loop.ScheduleAt(SimTime{10}, [&](SimTime) { order.push_back(1); });
  loop.ScheduleAt(SimTime{20}, [&](SimTime) { order.push_back(2); });
  loop.RunUntil(SimTime{100});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime{100});
}

TEST(EventLoopTest, FifoTieBreakAtSameTime) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(SimTime{5}, [&](SimTime) { order.push_back(1); });
  loop.ScheduleAt(SimTime{5}, [&](SimTime) { order.push_back(2); });
  loop.ScheduleAt(SimTime{5}, [&](SimTime) { order.push_back(3); });
  loop.RunUntil(SimTime{5});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, EventsBeyondHorizonStayPending) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAt(SimTime{50}, [&](SimTime) { ++fired; });
  loop.ScheduleAt(SimTime{150}, [&](SimTime) { ++fired; });
  loop.RunUntil(SimTime{100});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
  loop.RunUntil(SimTime{200});
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, EventsCanScheduleEvents) {
  EventLoop loop;
  std::vector<int64_t> fire_times;
  loop.ScheduleAt(SimTime{10}, [&](SimTime t) {
    fire_times.push_back(t.seconds);
    loop.ScheduleAfter(Seconds(15), [&](SimTime t2) { fire_times.push_back(t2.seconds); });
  });
  loop.RunUntil(SimTime{100});
  EXPECT_EQ(fire_times, (std::vector<int64_t>{10, 25}));
}

TEST(EventLoopTest, RecurringEvents) {
  EventLoop loop;
  std::vector<int64_t> fire_times;
  loop.ScheduleEvery(SimTime{0}, Hours(1), [&](SimTime t) { fire_times.push_back(t.seconds); });
  loop.RunUntil(SimTime{3 * 3600});
  ASSERT_EQ(fire_times.size(), 4u);  // t=0, 1h, 2h, 3h.
  EXPECT_EQ(fire_times[3], 3 * 3600);
  // Continues after further RunUntil.
  loop.RunUntil(SimTime{4 * 3600});
  EXPECT_EQ(fire_times.size(), 5u);
}

TEST(EventLoopTest, PastScheduleClampsToNow) {
  EventLoop loop;
  loop.RunUntil(SimTime{100});
  int fired = 0;
  loop.ScheduleAt(SimTime{10}, [&](SimTime t) {
    EXPECT_EQ(t, SimTime{100});
    ++fired;
  });
  loop.RunUntil(SimTime{100});
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace ras
