// Chaos soak: a simulated week with a fault plan active the whole time —
// probabilistic solver timeouts/crashes, stale snapshots, broker write
// failures — layered on top of the health schedule's MSB failures. The system
// must never crash, keep the broker index consistent, never move targets on a
// round that served from last-good, keep shortfall bounded, and return to
// healthy full solves once a hard outage burst ends.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/sim/scenario.h"

namespace ras {
namespace {

// Hard outage: every rung fails for these solve rounds, long enough to blow
// through SupervisorConfig::unhealthy_after_failures and arm the emergency
// path mid-week.
constexpr int kOutageFirstRound = 30;
constexpr int kOutageRounds = 5;

ScenarioOptions ChaosOptions() {
  ScenarioOptions opts;
  opts.fleet.num_datacenters = 2;
  opts.fleet.msbs_per_datacenter = 3;
  opts.fleet.racks_per_msb = 4;
  opts.fleet.servers_per_rack = 8;
  opts.fleet.seed = 777;
  opts.seed = 777;
  opts.solver.phase1_mip.max_nodes = 12;  // Keep the soak fast.
  opts.solver.phase2_mip.max_nodes = 8;
  // Background fault weather for most of the week (the 42 solve rounds run
  // 4h apart; the last couple of rounds are left clean so recovery to a full
  // solve is guaranteed, not probabilistic)...
  opts.faults.seed = 0xC4A05;
  opts.faults.AddBurst(FaultKind::kSolverTimeout, 0, 40, 0.15);
  opts.faults.AddBurst(FaultKind::kSolverCrash, 0, 40, 0.10);
  opts.faults.AddBurst(FaultKind::kSnapshotStale, 0, 40, 0.08);
  opts.faults.AddBurst(FaultKind::kSnapshotCorruption, 0, 40, 0.05);
  opts.faults.AddBurst(FaultKind::kBrokerWriteFailure, 0, 40, 0.05);
  // ...plus one certain crash storm to force the bottom of the ladder.
  opts.faults.AddBurst(FaultKind::kSolverCrash, kOutageFirstRound, kOutageRounds);
  return opts;  // 192 servers.
}

std::map<ServerId, ReservationId> TargetsNow(const RegionScenario& sim) {
  std::map<ServerId, ReservationId> targets;
  for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
    targets[id] = sim.broker->record(id).target;
  }
  return targets;
}

// The broker's membership index must stay a partition that agrees with the
// records, no matter which ladder rungs served.
void CheckBrokerConsistent(const RegionScenario& sim) {
  std::map<ReservationId, size_t> counted;
  for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
    counted[sim.broker->record(id).current]++;
  }
  std::set<ServerId> seen;
  for (const auto& [res, count] : counted) {
    ASSERT_EQ(sim.broker->CountInReservation(res), count) << "reservation " << res;
    for (ServerId id : sim.broker->ServersInReservation(res)) {
      ASSERT_TRUE(seen.insert(id).second) << "server " << id << " in two reservations";
    }
  }
}

TEST(ChaosSoakTest, SimulatedWeekUnderFaultWeather) {
  RegionScenario sim(ChaosOptions());

  double total_demand = 0.0;
  std::vector<ReservationId> services;
  for (int i = 0; i < 3; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = 20 + 5 * i;
    spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
    services.push_back(*sim.registry.Create(spec));
    total_demand += spec.capacity_rru;
  }

  sim.ArmHealth(Days(7));

  int solve_round = 0;
  size_t emergency_grants = 0;
  double worst_shortfall = 0.0;
  for (int hour = 0; hour < 7 * 24; ++hour) {
    SimTime tick{static_cast<int64_t>(hour) * 3600};
    // Backoffs may already have pushed simulated time past this tick.
    if (tick > sim.loop.now()) {
      sim.loop.RunUntil(tick);
    }
    sim.health->AdvanceTo(sim.loop.now());

    // Capacity churn, as in the plain soak.
    if (hour % 7 == 3) {
      size_t which = static_cast<size_t>(sim.rng.UniformInt(0, 2));
      ReservationSpec spec = *sim.registry.Find(services[which]);
      spec.capacity_rru = std::max(15.0, spec.capacity_rru * sim.rng.Uniform(0.92, 1.1));
      ASSERT_TRUE(sim.registry.Update(spec).ok());
    }

    if (hour % 4 == 0) {
      auto before = TargetsNow(sim);
      Result<SolveStats> result = sim.SolveRound();
      const RoundOutcome& outcome = sim.supervisor->stats().rounds.back();
      if (ProducedAssignment(outcome.rung)) {
        ASSERT_TRUE(result.ok()) << "hour " << hour;
        worst_shortfall = std::max(worst_shortfall, result->total_shortfall_rru);
      } else {
        // Serving from last-good must be exactly that: not one target moved.
        EXPECT_FALSE(result.ok()) << "hour " << hour;
        EXPECT_EQ(TargetsNow(sim), before)
            << "round " << solve_round << " regressed the last-good assignment";
      }
      // Exercise the emergency path whenever the storm has armed it.
      if (sim.supervisor->emergency_armed()) {
        Result<EmergencyGrant> grant = sim.RequestUrgentCapacity(services[0], 1);
        ASSERT_TRUE(grant.ok());
        emergency_grants += grant->servers_granted;
      }
      ++solve_round;
    } else {
      sim.mover->ReconcileAll();
      sim.twine->RetryPending();
    }
    CheckBrokerConsistent(sim);
  }

  const SupervisorStats& stats = sim.supervisor->stats();
  ASSERT_EQ(stats.rounds.size(), static_cast<size_t>(solve_round));
  // The week was genuinely chaotic: degraded rungs served, the crash storm
  // reached the emergency rung, and the supervisor recovered afterwards.
  EXPECT_GT(stats.failed_attempts, 0u);
  EXPECT_GT(stats.RungCount(LadderRung::kLastGood) + stats.RungCount(LadderRung::kEmergency),
            0u);
  EXPECT_GE(stats.RungCount(LadderRung::kEmergency), 1u);
  EXPECT_GE(stats.recovery_times.size(), 1u);
  EXPECT_GT(emergency_grants, 0u);
  EXPECT_TRUE(sim.supervisor->solver_healthy());
  EXPECT_FALSE(sim.supervisor->emergency_armed());
  // Shortfall stayed bounded on every round that produced an assignment: the
  // region has ample capacity, so even the greedy incumbent covers most of
  // the demand.
  EXPECT_LE(worst_shortfall, 0.25 * total_demand);

  // With the weather over (all round windows exhausted), a clean solve
  // restores the full guarantee for every service.
  ASSERT_TRUE(sim.SolveRound().ok());
  for (ReservationId svc : services) {
    const ReservationSpec* spec = sim.registry.Find(svc);
    size_t targeted = 0;
    for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
      targeted += sim.broker->record(id).target == svc;
    }
    EXPECT_GE(static_cast<double>(targeted) + 1.0, spec->capacity_rru)
        << spec->name << " under-provisioned after the chaos cleared";
  }
}

}  // namespace
}  // namespace ras
