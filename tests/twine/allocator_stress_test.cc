// Property/stress test for the Twine allocator: long random operation
// sequences must preserve every structural invariant.

#include <gtest/gtest.h>

#include <map>

#include "src/fleet/fleet_gen.h"
#include "src/twine/allocator.h"
#include "src/util/rng.h"

namespace ras {
namespace {

class AllocatorStressTest : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorStressTest, RandomOperationSequence) {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 2;
  opts.racks_per_msb = 4;
  opts.servers_per_rack = 6;
  opts.seed = 100 + static_cast<uint64_t>(GetParam());
  Fleet fleet = GenerateFleet(opts);
  ResourceBroker broker(&fleet.topology);
  TwineAllocator twine(&fleet.catalog, &broker);
  Rng rng(2000 + static_cast<uint64_t>(GetParam()));

  // Two reservations over a moving set of servers.
  const ReservationId kResA = 1, kResB = 2;
  for (ServerId id = 0; id < 40; ++id) {
    broker.SetCurrent(id, id < 24 ? kResA : kResB);
  }

  std::vector<JobId> jobs;
  std::map<JobId, int> requested;
  for (int op = 0; op < 300; ++op) {
    int action = static_cast<int>(rng.UniformInt(0, 5));
    switch (action) {
      case 0: {  // Submit.
        JobSpec spec;
        spec.name = "job";
        spec.reservation = rng.Bernoulli(0.5) ? kResA : kResB;
        spec.container =
            ContainerSpec{rng.Uniform(1, 12), rng.Uniform(2, 24)};
        spec.replicas = static_cast<int>(rng.UniformInt(1, 12));
        auto id = twine.SubmitJob(spec);
        ASSERT_TRUE(id.ok());
        jobs.push_back(*id);
        requested[*id] = spec.replicas;
        break;
      }
      case 1: {  // Stop.
        if (!jobs.empty()) {
          size_t which = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(jobs.size()) - 1));
          (void)twine.StopJob(jobs[which]);
          requested.erase(jobs[which]);
          jobs.erase(jobs.begin() + static_cast<long>(which));
        }
        break;
      }
      case 2: {  // Resize.
        if (!jobs.empty()) {
          size_t which = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(jobs.size()) - 1));
          int replicas = static_cast<int>(rng.UniformInt(0, 15));
          ASSERT_TRUE(twine.ResizeJob(jobs[which], replicas).ok());
          requested[jobs[which]] = replicas;
        }
        break;
      }
      case 3: {  // Evict a random server.
        ServerId victim = static_cast<ServerId>(rng.UniformInt(0, 39));
        twine.EvictServer(victim);
        EXPECT_EQ(twine.containers_on(victim), 0u);
        break;
      }
      case 4: {  // Move a server between reservations (with eviction).
        ServerId victim = static_cast<ServerId>(rng.UniformInt(0, 39));
        twine.EvictServer(victim);
        broker.SetCurrent(victim,
                          broker.record(victim).current == kResA ? kResB : kResA);
        break;
      }
      case 5: {  // Retry pending.
        twine.RetryPending();
        break;
      }
    }

    // --- Invariants after every operation ---
    // Replica accounting: running + pending == requested.
    for (JobId id : jobs) {
      ASSERT_NE(twine.job(id), nullptr);
      EXPECT_EQ(twine.running_containers(id) +
                    static_cast<size_t>(twine.pending_containers(id)),
                static_cast<size_t>(requested[id]))
          << "job " << id << " op " << op;
      EXPECT_GE(twine.pending_containers(id), 0);
    }
    // has_containers mirrors per-server container counts.
    for (ServerId id = 0; id < broker.num_servers(); ++id) {
      EXPECT_EQ(broker.record(id).has_containers, twine.containers_on(id) > 0);
    }
  }

  // Total containers on servers equals total running replicas.
  size_t on_servers = 0;
  for (ServerId id = 0; id < broker.num_servers(); ++id) {
    on_servers += twine.containers_on(id);
  }
  size_t running = 0;
  for (JobId id : jobs) {
    running += twine.running_containers(id);
  }
  EXPECT_EQ(on_servers, running);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocatorStressTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace ras
