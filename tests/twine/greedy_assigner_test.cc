#include "src/twine/greedy_assigner.h"

#include <gtest/gtest.h>

#include <map>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions Options() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 5;
  opts.servers_per_rack = 8;
  return opts;  // 240 servers.
}

TEST(GreedyAssignerTest, GrowAcquiresRequestedCount) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  GreedyAssigner greedy(&fleet.catalog, &broker);
  size_t got = greedy.Grow(5, {}, 40);
  EXPECT_EQ(got, 40u);
  EXPECT_EQ(broker.CountInReservation(5), 40u);
  // Both current and target are set (greedy has no separate solve).
  for (ServerId id : broker.ServersInReservation(5)) {
    EXPECT_EQ(broker.record(id).target, 5u);
  }
}

TEST(GreedyAssignerTest, ConcentratesInOldestMsbs) {
  // The pre-RAS pathology (Figure 12's 15% starting point): greedy fills
  // deployment order, so small grows land entirely in MSB 0.
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  GreedyAssigner greedy(&fleet.catalog, &broker);
  greedy.Grow(7, {}, 30);
  std::map<MsbId, size_t> per_msb;
  for (ServerId id : broker.ServersInReservation(7)) {
    per_msb[fleet.topology.server(id).msb]++;
  }
  // All 30 in the first MSB (it has 40 servers).
  EXPECT_EQ(per_msb.size(), 1u);
  EXPECT_EQ(per_msb.begin()->first, 0u);
}

TEST(GreedyAssignerTest, HonorsHardwareFilter) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  GreedyAssigner greedy(&fleet.catalog, &broker);
  HardwareTypeId c1 = fleet.catalog.FindByName("C1");
  size_t got = greedy.Grow(3, {c1}, 1000);
  for (ServerId id : broker.ServersInReservation(3)) {
    EXPECT_EQ(fleet.topology.server(id).type, c1);
  }
  // Can't acquire more C1s than exist.
  size_t c1_total = 0;
  for (const Server& s : fleet.topology.servers()) {
    c1_total += s.type == c1 ? 1 : 0;
  }
  EXPECT_EQ(got, c1_total);
}

TEST(GreedyAssignerTest, SkipsFailedServers) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  for (ServerId id = 0; id < 20; ++id) {
    broker.SetUnavailability(id, Unavailability::kUnplannedHardware);
  }
  GreedyAssigner greedy(&fleet.catalog, &broker);
  greedy.Grow(5, {}, 10);
  for (ServerId id : broker.ServersInReservation(5)) {
    EXPECT_GE(id, 20u);
  }
}

TEST(GreedyAssignerTest, ShrinkReleasesIdleOnly) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  GreedyAssigner greedy(&fleet.catalog, &broker);
  greedy.Grow(5, {}, 10);
  // Mark 4 as running containers.
  auto members = broker.ServersInReservation(5);
  for (size_t i = 0; i < 4; ++i) {
    broker.SetHasContainers(members[i], true);
  }
  size_t released = greedy.Shrink(5, 100);
  EXPECT_EQ(released, 6u);
  EXPECT_EQ(broker.CountInReservation(5), 4u);
}

TEST(GreedyAssignerTest, GrowWithExhaustedPool) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  GreedyAssigner greedy(&fleet.catalog, &broker);
  size_t got = greedy.Grow(1, {}, 100000);
  EXPECT_EQ(got, fleet.topology.num_servers());
  EXPECT_EQ(greedy.Grow(2, {}, 1), 0u);
}

}  // namespace
}  // namespace ras
