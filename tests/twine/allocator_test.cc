#include "src/twine/allocator.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

class TwineAllocatorTest : public ::testing::Test {
 protected:
  TwineAllocatorTest()
      : fleet_(GenerateFleet(Options())),
        broker_(&fleet_.topology),
        twine_(&fleet_.catalog, &broker_) {
    // Bind the first 30 servers to reservation 1.
    for (ServerId id = 0; id < 30; ++id) {
      broker_.SetCurrent(id, 1);
    }
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 2;
    opts.racks_per_msb = 4;
    opts.servers_per_rack = 6;
    return opts;  // 96 servers.
  }

  JobSpec SmallJob(int replicas) {
    JobSpec spec;
    spec.name = "job";
    spec.reservation = 1;
    spec.container = ContainerSpec{2.0, 4.0};
    spec.replicas = replicas;
    return spec;
  }

  Fleet fleet_;
  ResourceBroker broker_;
  TwineAllocator twine_;
};

TEST_F(TwineAllocatorTest, PlacesReplicasInReservation) {
  auto job = twine_.SubmitJob(SmallJob(10));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(twine_.running_containers(*job), 10u);
  EXPECT_EQ(twine_.pending_containers(*job), 0);
  // Containers only on reservation-1 servers.
  for (ServerId id = 0; id < broker_.num_servers(); ++id) {
    if (twine_.containers_on(id) > 0) {
      EXPECT_EQ(broker_.record(id).current, 1u);
      EXPECT_TRUE(broker_.record(id).has_containers);
    }
  }
}

TEST_F(TwineAllocatorTest, RejectsInvalidSpecs) {
  JobSpec bad = SmallJob(1);
  bad.container.cpu = -1;
  EXPECT_FALSE(twine_.SubmitJob(bad).ok());
  bad = SmallJob(-2);
  EXPECT_FALSE(twine_.SubmitJob(bad).ok());
  bad = SmallJob(1);
  bad.reservation = kUnassigned;
  EXPECT_FALSE(twine_.SubmitJob(bad).ok());
}

TEST_F(TwineAllocatorTest, OverflowBecomesPending) {
  // Demand far beyond 30 servers' capacity.
  JobSpec big = SmallJob(5000);
  auto job = twine_.SubmitJob(big);
  ASSERT_TRUE(job.ok());
  EXPECT_GT(twine_.running_containers(*job), 0u);
  EXPECT_GT(twine_.pending_containers(*job), 0);
  EXPECT_EQ(twine_.total_pending(), static_cast<size_t>(twine_.pending_containers(*job)));
}

TEST_F(TwineAllocatorTest, PendingPlacedWhenCapacityArrives) {
  auto job = twine_.SubmitJob(SmallJob(5000));
  ASSERT_TRUE(job.ok());
  int pending_before = twine_.pending_containers(*job);
  ASSERT_GT(pending_before, 0);
  // Grow the reservation.
  for (ServerId id = 30; id < 60; ++id) {
    broker_.SetCurrent(id, 1);
  }
  size_t placed = twine_.RetryPending();
  EXPECT_GT(placed, 0u);
  EXPECT_LT(twine_.pending_containers(*job), pending_before);
}

TEST_F(TwineAllocatorTest, StackingMultipleJobsOnOneServer) {
  // Tiny containers: many fit per server; two jobs can share servers.
  JobSpec a = SmallJob(3);
  a.container = ContainerSpec{1.0, 1.0};
  JobSpec b = SmallJob(3);
  b.container = ContainerSpec{1.0, 1.0};
  auto ja = twine_.SubmitJob(a);
  auto jb = twine_.SubmitJob(b);
  ASSERT_TRUE(ja.ok() && jb.ok());
  // Best-fit packing should co-locate at least one pair.
  bool any_stacked = false;
  for (ServerId id = 0; id < 30; ++id) {
    if (twine_.containers_on(id) >= 2) {
      any_stacked = true;
    }
  }
  EXPECT_TRUE(any_stacked);
}

TEST_F(TwineAllocatorTest, SpreadAcrossMsbs) {
  // 30 servers span 2+ MSBs in this fleet; replicas should spread.
  auto job = twine_.SubmitJob(SmallJob(8));
  ASSERT_TRUE(job.ok());
  auto per_msb = twine_.ReplicasPerMsb(*job);
  int msbs_used = 0;
  for (size_t c : per_msb) {
    msbs_used += c > 0 ? 1 : 0;
  }
  EXPECT_GE(msbs_used, 2);
}

TEST_F(TwineAllocatorTest, EvictServerDisplacesAndReplaces) {
  auto job = twine_.SubmitJob(SmallJob(5));
  ASSERT_TRUE(job.ok());
  ServerId victim = kInvalidServer;
  for (ServerId id = 0; id < 30; ++id) {
    if (twine_.containers_on(id) > 0) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidServer);
  size_t displaced = twine_.EvictServer(victim);
  EXPECT_GT(displaced, 0u);
  EXPECT_EQ(twine_.containers_on(victim), 0u);
  EXPECT_FALSE(broker_.record(victim).has_containers);
  // Replicas re-placed (plenty of room elsewhere).
  EXPECT_EQ(twine_.running_containers(*job), 5u);
}

TEST_F(TwineAllocatorTest, UnavailableServersNotUsed) {
  for (ServerId id = 0; id < 30; ++id) {
    if (id % 2 == 0) {
      broker_.SetUnavailability(id, Unavailability::kUnplannedHardware);
    }
  }
  auto job = twine_.SubmitJob(SmallJob(10));
  ASSERT_TRUE(job.ok());
  for (ServerId id = 0; id < 30; id += 2) {
    EXPECT_EQ(twine_.containers_on(id), 0u);
  }
}

TEST_F(TwineAllocatorTest, MaintenanceServersGetNoNewPlacements) {
  // The solver treats planned maintenance as usable capacity; the real-time
  // allocator must still avoid landing fresh containers there.
  for (ServerId id = 0; id < 30; ++id) {
    if (id % 3 == 0) {
      broker_.SetUnavailability(id, Unavailability::kPlannedMaintenance);
    }
  }
  auto job = twine_.SubmitJob(SmallJob(10));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(twine_.running_containers(*job), 10u);  // Healthy servers suffice.
  for (ServerId id = 0; id < 30; id += 3) {
    EXPECT_EQ(twine_.containers_on(id), 0u);
  }
}

TEST_F(TwineAllocatorTest, StopJobReleasesEverything) {
  auto job = twine_.SubmitJob(SmallJob(6));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(twine_.StopJob(*job).ok());
  EXPECT_EQ(twine_.job(*job), nullptr);
  for (ServerId id = 0; id < 30; ++id) {
    EXPECT_EQ(twine_.containers_on(id), 0u);
    EXPECT_FALSE(broker_.record(id).has_containers);
  }
  EXPECT_FALSE(twine_.StopJob(*job).ok());  // Already gone.
}

TEST_F(TwineAllocatorTest, ResizeUpAndDown) {
  auto job = twine_.SubmitJob(SmallJob(4));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(twine_.ResizeJob(*job, 9).ok());
  EXPECT_EQ(twine_.running_containers(*job), 9u);
  ASSERT_TRUE(twine_.ResizeJob(*job, 2).ok());
  EXPECT_EQ(twine_.running_containers(*job), 2u);
  EXPECT_EQ(twine_.pending_containers(*job), 0);
  EXPECT_FALSE(twine_.ResizeJob(*job, -1).ok());
  EXPECT_FALSE(twine_.ResizeJob(999, 5).ok());
}

TEST_F(TwineAllocatorTest, CapacityOfScalesWithComputeUnits) {
  const HardwareCatalog& catalog = fleet_.catalog;
  ServerResources gen1 = CapacityOf(catalog.type(catalog.FindByName("C1")));
  ServerResources gen3 = CapacityOf(catalog.type(catalog.FindByName("C3")));
  EXPECT_GT(gen3.cpu, gen1.cpu);
  EXPECT_DOUBLE_EQ(gen1.cpu, 1.0 * kCoresPerComputeUnit);
}

}  // namespace
}  // namespace ras
