#include "src/core/admission.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions Options() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 5;
  opts.servers_per_rack = 8;
  return opts;  // 240 servers.
}

ReservationSpec AnySpec(const HardwareCatalog& catalog, double capacity) {
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(catalog.size(), 1.0);
  return spec;
}

TEST(AdmissionTest, ReasonableRequestGrantable) {
  Fleet fleet = GenerateFleet(Options());
  AdmissionReport report =
      CheckGrantable(AnySpec(fleet.catalog, 60), fleet.topology, fleet.catalog);
  EXPECT_TRUE(report.grantable);
  EXPECT_GT(report.available_rru, report.required_rru);
  EXPECT_EQ(report.compatible_servers, fleet.topology.num_servers());
  EXPECT_NE(report.message.find("grantable"), std::string::npos);
}

TEST(AdmissionTest, OversizedRequestRejectedWithNumbers) {
  Fleet fleet = GenerateFleet(Options());
  AdmissionReport report =
      CheckGrantable(AnySpec(fleet.catalog, 100000), fleet.topology, fleet.catalog);
  EXPECT_FALSE(report.grantable);
  // The rejection must be actionable: names the offered and needed amounts.
  EXPECT_NE(report.message.find("region offers"), std::string::npos);
  EXPECT_NE(report.message.find("reduce the request"), std::string::npos);
}

TEST(AdmissionTest, NoCompatibleHardware) {
  Fleet fleet = GenerateFleet(Options());
  ReservationSpec spec;
  spec.name = "impossible";
  spec.capacity_rru = 5;
  spec.rru_per_type.assign(fleet.catalog.size(), 0.0);
  spec.rru_per_type[fleet.catalog.size() - 1] = 0.0;  // Nothing accepted.
  spec.rru_per_type[0] = 0.0;
  // Give it exactly one type that does not exist in this fleet? All paper
  // types exist; instead accept none and check the message.
  AdmissionReport report = CheckGrantable(spec, fleet.topology, fleet.catalog);
  EXPECT_FALSE(report.grantable);
  EXPECT_NE(report.message.find("no server"), std::string::npos);
}

TEST(AdmissionTest, SingleMsbHardwareCannotCarryBufferedReservation) {
  Fleet fleet = GenerateFleet(Options());
  // Find a type present in exactly one MSB, if any; otherwise construct the
  // condition by restricting to the GPU type (newest MSBs only).
  HardwareTypeId gpu = fleet.catalog.FindByName("C7-S1");
  size_t msbs_with_gpu = 0;
  for (MsbId m = 0; m < fleet.topology.num_msbs(); ++m) {
    msbs_with_gpu += fleet.CountInMsb(m, gpu) > 0 ? 1 : 0;
  }
  if (msbs_with_gpu != 1) {
    GTEST_SKIP() << "fleet seed spread GPU over " << msbs_with_gpu << " MSBs";
  }
  ReservationSpec spec;
  spec.name = "gpu-only";
  spec.capacity_rru = 2;
  spec.rru_per_type.assign(fleet.catalog.size(), 0.0);
  spec.rru_per_type[gpu] = 1.0;
  AdmissionReport report = CheckGrantable(spec, fleet.topology, fleet.catalog);
  EXPECT_FALSE(report.grantable);
  EXPECT_NE(report.message.find("MSB"), std::string::npos);
}

TEST(AdmissionTest, UnbufferedRequestNeedsNoBuffer) {
  Fleet fleet = GenerateFleet(Options());
  ReservationSpec spec = AnySpec(fleet.catalog, 100);
  spec.needs_correlated_buffer = false;
  AdmissionReport report = CheckGrantable(spec, fleet.topology, fleet.catalog);
  EXPECT_TRUE(report.grantable);
  EXPECT_DOUBLE_EQ(report.required_rru, 100.0);
}

TEST(AdmissionTest, ImpossibleAffinityRejected) {
  Fleet fleet = GenerateFleet(Options());
  ReservationSpec spec = AnySpec(fleet.catalog, 100);
  spec.dc_affinity[0] = 1.0;  // All capacity in DC 0.
  spec.affinity_theta = 0.0;
  // DC 0 has 120 servers -> ~150+ RRU; ask for more than it can hold.
  spec.capacity_rru = 1000;
  AdmissionReport report = CheckGrantable(spec, fleet.topology, fleet.catalog);
  EXPECT_FALSE(report.grantable);
}

TEST(AdmissionTest, BufferRequirementReflectsWaterfill) {
  Fleet fleet = GenerateFleet(Options());
  AdmissionReport report =
      CheckGrantable(AnySpec(fleet.catalog, 60), fleet.topology, fleet.catalog);
  // 6 MSBs: the buffer requirement is at least 1/6 of capacity.
  EXPECT_GE(report.required_rru, 60.0 * (1.0 + 1.0 / 6.0) - 1e-9);
  EXPECT_LT(report.required_rru, 60.0 * 1.6);
}

}  // namespace
}  // namespace ras
