#include "src/core/rru.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

TEST(RruTest, WebValuesScaleWithGeneration) {
  HardwareCatalog catalog = MakePaperCatalog();
  auto profiles = MakePaperServiceProfiles();
  const ServiceProfile& web = profiles[3];
  std::vector<double> rru = BuildRruVector(catalog, web);
  HardwareTypeId c1 = catalog.FindByName("C1");
  HardwareTypeId c3 = catalog.FindByName("C3");
  // Web's gen-3 multiplier (1.82) on top of the SKU's compute units.
  EXPECT_DOUBLE_EQ(rru[c1], 1.0 * 1.0);
  EXPECT_DOUBLE_EQ(rru[c3], 1.82 * 1.85);
}

TEST(RruTest, DataStoreFlatAcrossGenerations) {
  HardwareCatalog catalog = MakePaperCatalog();
  auto profiles = MakePaperServiceProfiles();
  std::vector<double> rru = BuildRruVector(catalog, profiles[0]);
  HardwareTypeId c1 = catalog.FindByName("C1");
  HardwareTypeId c3 = catalog.FindByName("C3");
  // DataStore gains nothing from generations; only the SKU baseline differs.
  EXPECT_DOUBLE_EQ(rru[c1] / catalog.type(c1).compute_units,
                   rru[c3] / catalog.type(c3).compute_units);
}

TEST(RruTest, AcceptableTypesFilter) {
  HardwareCatalog catalog = MakePaperCatalog();
  auto profiles = MakePaperServiceProfiles();
  HardwareTypeId c1 = catalog.FindByName("C1");
  HardwareTypeId c3 = catalog.FindByName("C3");
  std::vector<double> rru = BuildRruVector(catalog, profiles[3], {c3});
  EXPECT_EQ(rru[c1], 0.0);
  EXPECT_GT(rru[c3], 0.0);
}

TEST(RruTest, CountBasedVector) {
  HardwareCatalog catalog = MakePaperCatalog();
  HardwareTypeId c1 = catalog.FindByName("C1");
  HardwareTypeId c5 = catalog.FindByName("C5");
  std::vector<double> rru = BuildCountRruVector(catalog, {c1, c5});
  EXPECT_DOUBLE_EQ(rru[c1], 1.0);
  EXPECT_DOUBLE_EQ(rru[c5], 1.0);
  double sum = 0;
  for (double v : rru) {
    sum += v;
  }
  EXPECT_DOUBLE_EQ(sum, 2.0);
}

TEST(RruTest, TotalRruAggregation) {
  std::vector<double> per_type = {1.0, 0.0, 2.5};
  std::vector<size_t> counts = {4, 7, 2};
  EXPECT_DOUBLE_EQ(TotalRru(per_type, counts), 4.0 + 5.0);
}

TEST(RruTest, GpuServiceOnlyValuesGpuSku) {
  HardwareCatalog catalog = MakePaperCatalog();
  ServiceProfile ml;
  ml.name = "ML";
  ml.relative_value = {0, 1, 1, 1};
  ml.requires_gpu = true;
  std::vector<double> rru = BuildRruVector(catalog, ml);
  for (size_t t = 0; t < catalog.size(); ++t) {
    if (catalog.type(static_cast<HardwareTypeId>(t)).has_gpu) {
      EXPECT_GT(rru[t], 0.0);
    } else {
      EXPECT_EQ(rru[t], 0.0);
    }
  }
}

}  // namespace
}  // namespace ras
