// End-to-end tests of the two-phase Async Solver over synthetic fleets.

#include "src/core/async_solver.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/buffer_policy.h"
#include "src/core/rru.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions SmallFleetOptions() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 6;
  opts.servers_per_rack = 8;
  opts.seed = 11;
  return opts;  // 2 * 3 * 6 * 8 = 288 servers.
}

// A count-based reservation accepting every hardware type.
ReservationSpec AnyTypeReservation(const HardwareCatalog& catalog, const std::string& name,
                                   double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(catalog.size(), 1.0);
  return spec;
}

struct TestRegion {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  explicit TestRegion(const FleetOptions& opts) : fleet(GenerateFleet(opts)) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }
};

// Post-solve capacity accounting for one reservation over broker targets.
struct TargetAccounting {
  double total_rru = 0.0;
  double worst_msb_rru = 0.0;
  size_t servers = 0;
};

TargetAccounting AccountTargets(const TestRegion& region, const ReservationSpec& spec) {
  TargetAccounting acc;
  std::map<MsbId, double> per_msb;
  for (ServerId id = 0; id < region.broker->num_servers(); ++id) {
    if (region.broker->record(id).target != spec.id) {
      continue;
    }
    const Server& s = region.fleet.topology.server(id);
    double v = spec.ValueOfType(s.type);
    acc.total_rru += v;
    per_msb[s.msb] += v;
    ++acc.servers;
  }
  for (const auto& [msb, rru] : per_msb) {
    acc.worst_msb_rru = std::max(acc.worst_msb_rru, rru);
  }
  return acc;
}

TEST(AsyncSolverTest, SingleReservationGetsCapacityPlusBuffer) {
  TestRegion region(SmallFleetOptions());
  auto id = region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 60));
  ASSERT_TRUE(id.ok());

  AsyncSolver solver;
  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->phase1.ran);
  EXPECT_NEAR(stats->total_shortfall_rru, 0.0, 1e-6);

  const ReservationSpec& spec = *region.registry.Find(*id);
  TargetAccounting acc = AccountTargets(region, spec);
  // Expression (6): capacity survives the loss of the worst MSB.
  EXPECT_GE(acc.total_rru - acc.worst_msb_rru, 60.0 - 1e-6);
}

TEST(AsyncSolverTest, BufferIsEmbeddedAcrossMsbs) {
  TestRegion region(SmallFleetOptions());
  auto id = region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 60));
  ASSERT_TRUE(id.ok());
  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());

  const ReservationSpec& spec = *region.registry.Find(*id);
  TargetAccounting acc = AccountTargets(region, spec);
  // With 6 MSBs the worst-MSB share should be far below 100% — the solver
  // spreads rather than stuffing one fault domain.
  EXPECT_LT(acc.worst_msb_rru / acc.total_rru, 0.4);
}

TEST(AsyncSolverTest, MultipleReservationsAllSatisfied) {
  TestRegion region(SmallFleetOptions());
  std::vector<ReservationId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = region.registry.Create(
        AnyTypeReservation(region.fleet.catalog, "svc" + std::to_string(i), 30));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  AsyncSolver solver;
  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->total_shortfall_rru, 0.0, 1e-6);
  for (ReservationId id : ids) {
    const ReservationSpec& spec = *region.registry.Find(id);
    TargetAccounting acc = AccountTargets(region, spec);
    EXPECT_GE(acc.total_rru - acc.worst_msb_rru, 30.0 - 1e-6) << spec.name;
  }
}

TEST(AsyncSolverTest, NoServerDoubleAssigned) {
  TestRegion region(SmallFleetOptions());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(region.registry
                    .Create(AnyTypeReservation(region.fleet.catalog, "s" + std::to_string(i), 40))
                    .ok());
  }
  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());
  // Targets are single-valued by construction of the broker; verify every
  // server has exactly one target and totals are consistent.
  size_t assigned = 0;
  for (ServerId id = 0; id < region.broker->num_servers(); ++id) {
    if (region.broker->record(id).target != kUnassigned) {
      ++assigned;
    }
  }
  EXPECT_GT(assigned, 120u);  // 3 x 40 plus buffers.
  EXPECT_LE(assigned, region.broker->num_servers());
}

TEST(AsyncSolverTest, OversizedRequestReportsShortfall) {
  TestRegion region(SmallFleetOptions());
  // Far more capacity than the region holds.
  ASSERT_TRUE(
      region.registry.Create(AnyTypeReservation(region.fleet.catalog, "huge", 10000)).ok());
  AsyncSolver solver;
  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  // Softened capacity constraint: the solve completes and reports the gap.
  EXPECT_GT(stats->total_shortfall_rru, 1000.0);
}

TEST(AsyncSolverTest, StabilityAcrossResolves) {
  TestRegion region(SmallFleetOptions());
  auto id = region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 80));
  ASSERT_TRUE(id.ok());
  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());
  // Materialize bindings (current := target) so the next snapshot sees them.
  for (ServerId s = 0; s < region.broker->num_servers(); ++s) {
    region.broker->SetCurrent(s, region.broker->record(s).target);
  }
  // Re-solve with no input change: Expression (1) should keep moves ~zero.
  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->moves_total, 4u);
}

TEST(AsyncSolverTest, HardwareRestrictedReservation) {
  TestRegion region(SmallFleetOptions());
  const HardwareCatalog& catalog = region.fleet.catalog;
  // Accept only the generation-3 web SKU.
  ReservationSpec spec;
  spec.name = "gen3-only";
  spec.capacity_rru = 10;
  spec.rru_per_type.assign(catalog.size(), 0.0);
  spec.rru_per_type[catalog.FindByName("C3")] = 1.0;
  auto id = region.registry.Create(spec);
  ASSERT_TRUE(id.ok());

  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());
  for (ServerId s = 0; s < region.broker->num_servers(); ++s) {
    if (region.broker->record(s).target == *id) {
      EXPECT_EQ(catalog.type(region.fleet.topology.server(s).type).name, "C3");
    }
  }
}

TEST(AsyncSolverTest, AffinityConstraintSteersCapacityToDatacenter) {
  TestRegion region(SmallFleetOptions());
  ReservationSpec spec = AnyTypeReservation(region.fleet.catalog, "dc0-bound", 40);
  spec.dc_affinity[0] = 0.9;  // 90% of capacity in DC 0.
  spec.affinity_theta = 0.05;
  auto id = region.registry.Create(spec);
  ASSERT_TRUE(id.ok());

  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());
  // Expression (7) bounds the DC-0 RRU within theta of A * C_r. RRU == server
  // count here (count-based request).
  double in_dc0 = 0, total = 0;
  for (ServerId s = 0; s < region.broker->num_servers(); ++s) {
    if (region.broker->record(s).target == *id) {
      total += 1.0;
      if (region.fleet.topology.server(s).dc == 0) {
        in_dc0 += 1.0;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(in_dc0, (0.9 - 0.05) * 40 - 1e-6);
  EXPECT_LE(in_dc0, (0.9 + 0.05) * 40 + 1e-6);
}

TEST(AsyncSolverTest, UnavailableServersNeverTargeted) {
  TestRegion region(SmallFleetOptions());
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 50)).ok());
  // Fail a third of the fleet.
  for (ServerId s = 0; s < region.broker->num_servers(); s += 3) {
    region.broker->SetUnavailability(s, Unavailability::kUnplannedHardware);
  }
  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());
  for (ServerId s = 0; s < region.broker->num_servers(); s += 3) {
    // Failed servers keep their old (unassigned) target: the solver never
    // counts them as capacity.
    EXPECT_EQ(region.broker->record(s).target, kUnassigned);
  }
}

TEST(AsyncSolverTest, PlannedMaintenanceCountsAsUsable) {
  TestRegion region(SmallFleetOptions());
  auto id = region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 50));
  ASSERT_TRUE(id.ok());
  for (ServerId s = 0; s < region.broker->num_servers(); s += 4) {
    region.broker->SetUnavailability(s, Unavailability::kPlannedMaintenance);
  }
  AsyncSolver solver;
  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->total_shortfall_rru, 0.0, 1e-6);
  // Maintenance servers are assignable (Section 3.5.1).
  bool any_maintenance_assigned = false;
  for (ServerId s = 0; s < region.broker->num_servers(); s += 4) {
    if (region.broker->record(s).target != kUnassigned) {
      any_maintenance_assigned = true;
    }
  }
  EXPECT_TRUE(any_maintenance_assigned);
}

TEST(AsyncSolverTest, SharedBuffersPopulated) {
  TestRegion region(SmallFleetOptions());
  std::vector<ReservationId> buffers =
      EnsureSharedBuffers(region.registry, region.fleet.topology, region.fleet.catalog, 0.02);
  ASSERT_FALSE(buffers.empty());
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 40)).ok());

  AsyncSolver solver;
  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->total_shortfall_rru, 0.0, 1e-6);
  size_t buffered = 0;
  for (ServerId s = 0; s < region.broker->num_servers(); ++s) {
    ReservationId t = region.broker->record(s).target;
    for (ReservationId b : buffers) {
      if (t == b) {
        ++buffered;
      }
    }
  }
  // ~2% of 288 servers, distributed over the populated types.
  EXPECT_GE(buffered, 4u);
}

TEST(AsyncSolverTest, StorageQuorumCapLimitsEveryMsb) {
  TestRegion region(SmallFleetOptions());
  ReservationSpec spec = AnyTypeReservation(region.fleet.catalog, "storage", 40);
  spec.is_storage = true;
  spec.max_msb_fraction_hard = 0.25;  // No MSB may hold > 10 RRU of C_r = 40.
  auto id = region.registry.Create(spec);
  ASSERT_TRUE(id.ok());

  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());
  std::map<MsbId, double> per_msb;
  for (ServerId s = 0; s < region.broker->num_servers(); ++s) {
    if (region.broker->record(s).target == *id) {
      per_msb[region.fleet.topology.server(s).msb] += 1.0;
    }
  }
  for (const auto& [msb, rru] : per_msb) {
    EXPECT_LE(rru, 0.25 * 40 + 1e-6) << "MSB " << msb << " exceeds the quorum cap";
  }
}

TEST(AsyncSolverTest, PhaseTwoReducesRackConcentration) {
  TestRegion region(SmallFleetOptions());
  ReservationSpec spec = AnyTypeReservation(region.fleet.catalog, "svc", 40);
  spec.rack_spread_alpha = 0.06;  // At most ~2.4 RRU per rack.
  auto id = region.registry.Create(spec);
  ASSERT_TRUE(id.ok());
  // Concentrate the reservation into whole racks so phase 1 (rack-blind)
  // leaves rack overflow for phase 2 to fix.
  size_t bound = 0;
  for (RackId rack = 0; rack < region.fleet.topology.num_racks() && bound < 48; ++rack) {
    for (ServerId s : region.fleet.topology.ServersInRack(rack)) {
      region.broker->SetCurrent(s, *id);
      ++bound;
    }
  }

  AsyncSolver solver;
  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->phase2.ran);
  EXPECT_GT(stats->phase2.assignment_variables, 0u);

  // Post-solve rack concentration should be below the starting 8-per-rack.
  std::map<RackId, int> per_rack;
  for (ServerId s = 0; s < region.broker->num_servers(); ++s) {
    if (region.broker->record(s).target == *id) {
      per_rack[region.fleet.topology.server(s).rack]++;
    }
  }
  int worst = 0;
  for (auto& [rack, count] : per_rack) {
    worst = std::max(worst, count);
  }
  EXPECT_LT(worst, 8);  // Was 8 (full racks of 8) before the solve.
}

TEST(AsyncSolverTest, SolveStatsTimingsPopulated) {
  TestRegion region(SmallFleetOptions());
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 30)).ok());
  AsyncSolver solver;
  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->phase1.assignment_variables, 0u);
  EXPECT_GT(stats->phase1.model_rows, 0u);
  EXPECT_GT(stats->phase1.memory_bytes, 0u);
  EXPECT_GE(stats->phase1.timings.total(), 0.0);
  EXPECT_GT(stats->total_seconds, 0.0);
}

}  // namespace
}  // namespace ras
