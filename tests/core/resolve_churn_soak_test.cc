// Randomized churn soak for the incremental re-solve layer: two identical
// regions evolve under the same seeded churn (reservation add / remove /
// resize, server kills and revivals, binding materialization); one is solved
// with the incremental resolve cache on, the other strictly from scratch.
// Every round, the two must produce identical targets and identical
// serialized region state — the determinism record behind
// SolverConfig::incremental_resolve's "timings, not targets" contract.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/async_solver.h"
#include "src/core/state_io.h"
#include "src/fleet/fleet_gen.h"
#include "src/util/rng.h"

namespace ras {
namespace {

constexpr int kRounds = 50;

FleetOptions SoakFleetOptions() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 2;
  opts.racks_per_msb = 3;
  opts.servers_per_rack = 8;
  opts.seed = 11;
  return opts;  // 96 servers.
}

ReservationSpec AnyTypeReservation(const HardwareCatalog& catalog, const std::string& name,
                                   double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(catalog.size(), 1.0);
  return spec;
}

struct SoakRegion {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;
  std::vector<ReservationId> services;

  SoakRegion() : fleet(GenerateFleet(SoakFleetOptions())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
    for (int i = 0; i < 3; ++i) {
      auto id = registry.Create(
          AnyTypeReservation(fleet.catalog, "svc" + std::to_string(i), 12));
      EXPECT_TRUE(id.ok());
      services.push_back(*id);
    }
  }
};

// One round of churn, fully determined by (rng state, round index). Both
// regions consume identical operation streams from identically-seeded rngs,
// so their worlds stay in lockstep by construction — the solvers are the only
// difference between them.
void ApplyChurn(SoakRegion& region, Rng& rng, int round) {
  const int64_t roll = rng.UniformInt(0, 99);
  // ~1/5 of rounds are quiet: the skip-solve path must fire there.
  if (roll < 20) {
    return;
  }
  if (roll < 55 && !region.services.empty()) {
    // Resize an existing service.
    size_t which = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(region.services.size()) - 1));
    ReservationSpec spec = *region.registry.Find(region.services[which]);
    spec.capacity_rru = std::max(4.0, spec.capacity_rru + rng.Uniform(-4.0, 5.0));
    EXPECT_TRUE(region.registry.Update(spec).ok());
    return;
  }
  if (roll < 70) {
    // Kill a healthy server (or revive a dead one on odd rounds).
    ServerId id = static_cast<ServerId>(
        rng.UniformInt(0, static_cast<int64_t>(region.broker->num_servers()) - 1));
    if (round % 2 == 1 && region.broker->record(id).unavailability != Unavailability::kNone) {
      region.broker->SetUnavailability(id, Unavailability::kNone);
    } else {
      region.broker->SetUnavailability(id, Unavailability::kUnplannedHardware);
    }
    return;
  }
  if (roll < 85) {
    // Admit a new service.
    auto id = region.registry.Create(AnyTypeReservation(
        region.fleet.catalog, "churn" + std::to_string(round), 4 + rng.Uniform(0.0, 4.0)));
    EXPECT_TRUE(id.ok());
    region.services.push_back(*id);
    return;
  }
  if (region.services.size() > 1) {
    // Remove the youngest churn service.
    EXPECT_TRUE(region.registry.Remove(region.services.back()).ok());
    region.services.pop_back();
  }
}

// Materialize solver intent into current bindings, as the Online Mover would.
void MaterializeTargets(SoakRegion& region) {
  for (ServerId id = 0; id < region.broker->num_servers(); ++id) {
    region.broker->SetCurrent(id, region.broker->record(id).target);
  }
}

std::map<ServerId, ReservationId> Targets(const SoakRegion& region) {
  std::map<ServerId, ReservationId> targets;
  for (ServerId id = 0; id < region.broker->num_servers(); ++id) {
    targets[id] = region.broker->record(id).target;
  }
  return targets;
}

SolverConfig SoakConfig(bool incremental) {
  SolverConfig config;
  config.incremental_resolve = incremental;
  config.phase1_mip.max_nodes = 8;  // Keep 2 x 50 solves fast; skip-solve on
  config.phase2_mip.max_nodes = 4;  // an unchanged round needs no proof.
  return config;
}

TEST(ResolveChurnSoakTest, FiftyRoundsOfChurnMatchFromScratchBitForBit) {
  SoakRegion incremental;
  SoakRegion cold;
  AsyncSolver inc_solver(SoakConfig(/*incremental=*/true));
  AsyncSolver cold_solver(SoakConfig(/*incremental=*/false));
  Rng inc_rng(4242);
  Rng cold_rng(4242);

  int patched_rounds = 0;
  int skipped_rounds = 0;
  int warm_rounds = 0;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    ApplyChurn(incremental, inc_rng, round);
    ApplyChurn(cold, cold_rng, round);
    if (round == 17 || round == 34) {
      // Binding materialization reshapes every equivalence class at once —
      // the hardest structural churn the cache must survive (by rebuilding).
      MaterializeTargets(incremental);
      MaterializeTargets(cold);
    }

    auto inc_stats = inc_solver.SolveOnce(*incremental.broker, incremental.registry,
                                          incremental.fleet.catalog);
    auto cold_stats =
        cold_solver.SolveOnce(*cold.broker, cold.registry, cold.fleet.catalog);
    ASSERT_TRUE(inc_stats.ok()) << inc_stats.status().ToString();
    ASSERT_TRUE(cold_stats.ok()) << cold_stats.status().ToString();

    // The from-scratch solver must never report reuse.
    EXPECT_FALSE(cold_stats->model_patched);
    EXPECT_FALSE(cold_stats->solve_skipped);
    EXPECT_EQ(cold_stats->delta_servers, -1);
    // Phase-1 fields: phase 2 solves a different (smaller) problem whose
    // node-limited rounds may legitimately re-solve instead of skipping.
    patched_rounds += inc_stats->phase1.model_patched;
    skipped_rounds += inc_stats->phase1.solve_skipped;
    warm_rounds += inc_stats->delta_servers >= 0;

    ASSERT_EQ(Targets(incremental), Targets(cold)) << "targets diverged";
    ASSERT_EQ(SerializeRegionState(*incremental.broker, incremental.registry),
              SerializeRegionState(*cold.broker, cold.registry))
        << "serialized region state diverged";
  }

  // The soak only proves parity if the reuse machinery actually engaged.
  EXPECT_GT(patched_rounds, 0) << "no round ever patched the cached model";
  EXPECT_GT(skipped_rounds, 0) << "no quiet round ever took the skip-solve path";
  EXPECT_GT(warm_rounds, patched_rounds / 2);
}

TEST(ResolveChurnSoakTest, RollbackFailedPersistForcesNextRoundCold) {
  // A broker write fault rolls the whole target batch back; the resolve cache
  // must not let the next round diff against the round that never landed.
  SoakRegion region;
  AsyncSolver solver(SoakConfig(/*incremental=*/true));
  ASSERT_TRUE(
      solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());
  EXPECT_FALSE(solver.resolve_cache().empty());

  ReservationSpec spec = *region.registry.Find(region.services[0]);
  spec.capacity_rru += 6;
  ASSERT_TRUE(region.registry.Update(spec).ok());
  region.broker->SetWriteFaultHook([](ServerId, ReservationId) { return true; });
  EXPECT_FALSE(
      solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());
  region.broker->SetWriteFaultHook(nullptr);
  EXPECT_TRUE(solver.resolve_cache().empty()) << "rollback left warm state behind";

  auto stats = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->delta_servers, -1) << "round after a rollback was not cold";
  EXPECT_FALSE(stats->model_patched);
}

TEST(ResolveChurnSoakTest, DegradedModeSolveForcesNextRoundCold) {
  SoakRegion region;
  AsyncSolver solver(SoakConfig(/*incremental=*/true));
  ASSERT_TRUE(
      solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog).ok());

  // An unchanged full round rides the cache.
  auto warm = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(warm.ok());
  EXPECT_GE(warm->delta_servers, 0);
  EXPECT_TRUE(warm->phase1.solve_skipped);

  // A degraded-mode solve (supervisor ladder rung) drops every entry...
  ASSERT_TRUE(solver
                  .SolveOnce(*region.broker, region.registry, region.fleet.catalog,
                             SolveMode::kPhase1Only)
                  .ok());
  EXPECT_TRUE(solver.resolve_cache().empty());

  // ...so the next full round is cold, then warms back up.
  auto after = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->delta_servers, -1);
  auto rewarmed = solver.SolveOnce(*region.broker, region.registry, region.fleet.catalog);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_GE(rewarmed->delta_servers, 0);
}

}  // namespace
}  // namespace ras
