#include "src/core/buffer_policy.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions Options() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 5;
  opts.servers_per_rack = 8;
  return opts;  // 240 servers.
}

TEST(SharedBuffersTest, OnePerPopulatedType) {
  Fleet fleet = GenerateFleet(Options());
  ReservationRegistry registry;
  auto ids = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
  // Count populated types.
  std::vector<size_t> population(fleet.catalog.size(), 0);
  for (const Server& s : fleet.topology.servers()) {
    population[s.type]++;
  }
  size_t populated = 0;
  for (size_t c : population) {
    populated += c > 0 ? 1 : 0;
  }
  EXPECT_EQ(ids.size(), populated);
  for (ReservationId id : ids) {
    const ReservationSpec* spec = registry.Find(id);
    ASSERT_NE(spec, nullptr);
    EXPECT_TRUE(spec->is_shared_random_buffer);
    EXPECT_FALSE(spec->needs_correlated_buffer);
    EXPECT_GE(spec->capacity_rru, 1.0);
  }
}

TEST(SharedBuffersTest, SizedToFraction) {
  Fleet fleet = GenerateFleet(Options());
  ReservationRegistry registry;
  auto ids = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.10);
  double total_buffer = 0;
  for (ReservationId id : ids) {
    total_buffer += registry.Find(id)->capacity_rru;
  }
  double fleet_size = static_cast<double>(fleet.topology.num_servers());
  // Ceil per type adds a little; stays near 10%.
  EXPECT_GE(total_buffer, 0.10 * fleet_size);
  EXPECT_LE(total_buffer, 0.10 * fleet_size + static_cast<double>(ids.size()));
}

TEST(SharedBuffersTest, IdempotentResize) {
  Fleet fleet = GenerateFleet(Options());
  ReservationRegistry registry;
  auto first = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
  auto second = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.04);
  EXPECT_EQ(first, second);  // Same ids, updated capacity.
  EXPECT_EQ(registry.size(), first.size());
  EXPECT_GT(registry.Find(second[0])->capacity_rru, 0.0);
}

TEST(MaxMsbShareTest, ComputesWorstFraction) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  // 3 servers in MSB 0, 1 in MSB 1.
  std::vector<ServerId> msb0(fleet.topology.ServersInMsb(0).begin(),
                             fleet.topology.ServersInMsb(0).end());
  std::vector<ServerId> msb1(fleet.topology.ServersInMsb(1).begin(),
                             fleet.topology.ServersInMsb(1).end());
  broker.SetCurrent(msb0[0], 9);
  broker.SetCurrent(msb0[1], 9);
  broker.SetCurrent(msb0[2], 9);
  broker.SetCurrent(msb1[0], 9);
  EXPECT_DOUBLE_EQ(MaxMsbShare(broker, 9), 0.75);
  EXPECT_DOUBLE_EQ(MaxMsbShare(broker, 12345), 0.0);  // Empty reservation.
}

TEST(RegionEmbeddedBufferTest, AggregatesGuaranteedOnly) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 4;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ReservationId res = *registry.Create(spec);

  ReservationSpec buffer = spec;
  buffer.name = "buf";
  buffer.is_shared_random_buffer = true;
  buffer.needs_correlated_buffer = false;
  ReservationId buf = *registry.Create(buffer);

  auto msb0 = fleet.topology.ServersInMsb(0);
  broker.SetCurrent(msb0[0], res);
  broker.SetCurrent(msb0[1], res);
  broker.SetCurrent(fleet.topology.ServersInMsb(1)[0], res);
  broker.SetCurrent(fleet.topology.ServersInMsb(2)[0], res);
  // Buffer reservation concentrated (should not count).
  broker.SetCurrent(msb0[2], buf);
  broker.SetCurrent(msb0[3], buf);

  // svc: 4 servers, worst MSB holds 2 -> 0.5.
  EXPECT_DOUBLE_EQ(RegionEmbeddedBufferFraction(broker, registry), 0.5);
}

TEST(LowerBoundTest, PerfectSpreadBound) {
  Fleet fleet = GenerateFleet(Options());
  EXPECT_DOUBLE_EQ(PerfectSpreadBound(fleet.topology), 1.0 / 6.0);
}

TEST(LowerBoundTest, WaterfillRespectsAvailability) {
  Fleet fleet = GenerateFleet(Options());
  // A type-restricted reservation can only spread over MSBs carrying it.
  ReservationSpec spec;
  spec.name = "gen3";
  spec.capacity_rru = 20;
  spec.rru_per_type.assign(fleet.catalog.size(), 0.0);
  spec.rru_per_type[fleet.catalog.FindByName("C3")] = 1.0;
  double bound = MinPossibleMaxMsbShare(spec, fleet.topology);
  // Must be at least the perfect-spread bound and at most 1.
  EXPECT_GE(bound, PerfectSpreadBound(fleet.topology) - 1e-6);
  EXPECT_LE(bound, 1.0);

  // An any-type reservation gets (nearly) the perfect bound.
  ReservationSpec any;
  any.name = "any";
  any.capacity_rru = 60;
  any.rru_per_type.assign(fleet.catalog.size(), 1.0);
  double any_bound = MinPossibleMaxMsbShare(any, fleet.topology);
  EXPECT_LT(any_bound, bound + 1e-9);
  EXPECT_NEAR(any_bound, PerfectSpreadBound(fleet.topology), 0.05);
}

TEST(LowerBoundTest, ImpossibleDemandDegeneratesToOne) {
  Fleet fleet = GenerateFleet(Options());
  ReservationSpec spec;
  spec.name = "huge";
  spec.capacity_rru = 1e9;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  EXPECT_DOUBLE_EQ(MinPossibleMaxMsbShare(spec, fleet.topology), 1.0);
}

}  // namespace
}  // namespace ras
