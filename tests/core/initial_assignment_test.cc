#include "src/core/initial_assignment.h"

#include <gtest/gtest.h>

#include <map>

#include "src/fleet/fleet_gen.h"
#include "src/util/rng.h"

namespace ras {
namespace {

struct GreedyEnv {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  GreedyEnv() : fleet(GenerateFleet(Options())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 3;
    opts.racks_per_msb = 4;
    opts.servers_per_rack = 6;
    return opts;  // 144 servers.
  }

  ReservationId Add(const std::string& name, double capacity,
                    std::vector<double> rru = {}) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type = rru.empty() ? std::vector<double>(fleet.catalog.size(), 1.0) : rru;
    return *registry.Create(spec);
  }

  struct Built {
    SolveInput input;
    std::vector<EquivalenceClass> classes;
    BuiltModel built;
  };
  Built Prepare() {
    Built b;
    b.input = SnapshotSolveInput(*broker, registry, fleet.catalog);
    b.classes = BuildEquivalenceClasses(b.input, Scope::kMsb);
    b.built = BuildRasModel(b.input, b.classes, SolverConfig(), false);
    return b;
  }
};

// Effective capacity (total minus worst MSB) per reservation from counts.
std::map<int, double> EffectivePerReservation(const GreedyEnv::Built& b,
                                              const std::vector<double>& counts) {
  std::map<int, double> total;
  std::map<int, std::map<MsbId, double>> per_msb;
  for (size_t k = 0; k < b.built.assignment_vars.size(); ++k) {
    const auto& av = b.built.assignment_vars[k];
    const EquivalenceClass& cls = b.classes[static_cast<size_t>(av.class_index)];
    double rru =
        b.input.reservations[static_cast<size_t>(av.reservation_index)].ValueOfType(cls.type) *
        counts[k];
    total[av.reservation_index] += rru;
    per_msb[av.reservation_index][cls.msb] += rru;
  }
  std::map<int, double> effective;
  for (auto& [r, t] : total) {
    double worst = 0;
    for (auto& [msb, rru] : per_msb[r]) {
      worst = std::max(worst, rru);
    }
    effective[r] = t - worst;
  }
  return effective;
}

TEST(InitialAssignmentTest, FillsCapacityPlusBuffer) {
  GreedyEnv env;
  env.Add("a", 30);
  env.Add("b", 20);
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  auto effective = EffectivePerReservation(b, counts);
  for (size_t r = 0; r < b.input.reservations.size(); ++r) {
    EXPECT_GE(effective[static_cast<int>(r)] + 1e-9, b.input.reservations[r].capacity_rru)
        << b.input.reservations[r].name;
  }
}

TEST(InitialAssignmentTest, NeverExceedsSupply) {
  GreedyEnv env;
  env.Add("a", 45);
  env.Add("b", 45);
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  std::vector<double> used(b.classes.size(), 0.0);
  for (size_t k = 0; k < b.built.assignment_vars.size(); ++k) {
    used[static_cast<size_t>(b.built.assignment_vars[k].class_index)] += counts[k];
  }
  for (size_t c = 0; c < b.classes.size(); ++c) {
    EXPECT_LE(used[c], static_cast<double>(b.classes[c].count()) + 1e-9);
  }
}

TEST(InitialAssignmentTest, KeepsExistingBindings) {
  GreedyEnv env;
  ReservationId a = env.Add("a", 10);
  for (ServerId id = 0; id < 12; ++id) {
    env.broker->SetCurrent(id, a);
  }
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  // The greedy never reduces counts below X.
  for (size_t k = 0; k < counts.size(); ++k) {
    EXPECT_GE(counts[k], b.built.initial_counts[k] - 1e-9);
  }
}

TEST(InitialAssignmentTest, SpreadsAcrossMsbs) {
  GreedyEnv env;
  env.Add("a", 40);
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  std::map<MsbId, double> per_msb;
  for (size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] > 0) {
      per_msb[b.classes[static_cast<size_t>(b.built.assignment_vars[k].class_index)].msb] +=
          counts[k];
    }
  }
  EXPECT_GE(per_msb.size(), 5u);  // 6 MSBs; greedy is spread-first.
}

TEST(InitialAssignmentTest, StopsWhenRegionExhausted) {
  GreedyEnv env;
  env.Add("huge", 100000);
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  double assigned = 0;
  for (double c : counts) {
    assigned += c;
  }
  EXPECT_LE(assigned, static_cast<double>(env.fleet.topology.num_servers()) + 1e-9);
  // Warm start from the exhausted greedy must still be model-feasible.
  auto warm = MakeWarmStart(b.input, b.classes, b.built, counts);
  EXPECT_TRUE(b.built.model.IsFeasible(warm, 1e-6));
}

TEST(RepairCountsTest, RepairsArbitraryStartingPoint) {
  GreedyEnv env;
  env.Add("a", 30);
  auto b = env.Prepare();
  // Start from an empty assignment (not the broker state).
  std::vector<double> empty(b.built.assignment_vars.size(), 0.0);
  auto counts = RepairCounts(b.input, b.classes, b.built, empty);
  auto effective = EffectivePerReservation(b, counts);
  EXPECT_GE(effective[0] + 1e-9, 30.0);
}

TEST(RepairCountsTest, DrawsFromPartiallyUsedClasses) {
  GreedyEnv env;
  env.Add("a", 20);
  auto b = env.Prepare();
  // Seed a start that uses half of one big class; repair must be able to use
  // the other half even though the class is not "free" in the broker sense.
  std::vector<double> seeded(b.built.assignment_vars.size(), 0.0);
  int big_class = -1;
  for (size_t c = 0; c < b.classes.size(); ++c) {
    if (b.classes[c].count() >= 4) {
      big_class = static_cast<int>(c);
      break;
    }
  }
  ASSERT_GE(big_class, 0);
  int var_in_big = b.built.class_to_vars[static_cast<size_t>(big_class)][0];
  seeded[static_cast<size_t>(var_in_big)] =
      static_cast<double>(b.classes[static_cast<size_t>(big_class)].count() / 2);
  auto counts = RepairCounts(b.input, b.classes, b.built, seeded);
  auto effective = EffectivePerReservation(b, counts);
  EXPECT_GE(effective[0] + 1e-9, 20.0);
}

}  // namespace
}  // namespace ras
