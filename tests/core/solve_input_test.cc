#include "src/core/solve_input.h"

#include <gtest/gtest.h>

#include <set>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions Options() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 2;
  opts.racks_per_msb = 3;
  opts.servers_per_rack = 6;
  return opts;  // 72 servers.
}

ReservationSpec AnySpec(const HardwareCatalog& catalog, const std::string& name) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = 5;
  spec.rru_per_type.assign(catalog.size(), 1.0);
  return spec;
}

TEST(SnapshotTest, CapturesBindingsAndFlags) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  auto id = registry.Create(AnySpec(fleet.catalog, "svc"));
  ASSERT_TRUE(id.ok());
  broker.SetCurrent(3, *id);
  broker.SetHasContainers(3, true);
  broker.SetUnavailability(9, Unavailability::kUnplannedHardware);

  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  EXPECT_EQ(input.servers[3].current, *id);
  EXPECT_TRUE(input.servers[3].in_use);
  EXPECT_FALSE(input.servers[9].available);
  EXPECT_TRUE(input.servers[0].available);
  EXPECT_EQ(input.reservations.size(), 1u);
  EXPECT_EQ(input.ReservationIndex(*id), 0);
  EXPECT_EQ(input.ReservationIndex(999), -1);
}

TEST(SnapshotTest, ElasticLoansResolveToHome) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  auto home = registry.Create(AnySpec(fleet.catalog, "buffer"));
  ASSERT_TRUE(home.ok());
  broker.SetCurrent(5, 777);  // Bound to some elastic reservation id.
  broker.SetElasticLoan(5, *home, true);
  broker.SetHasContainers(5, true);  // Elastic workload running.

  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  EXPECT_EQ(input.servers[5].current, *home);
  EXPECT_FALSE(input.servers[5].in_use);  // Loans move for free.
}

TEST(SnapshotTest, DanglingBindingsBecomeFree) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  broker.SetCurrent(2, 12345);  // Reservation does not exist.
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  EXPECT_EQ(input.servers[2].current, kUnassigned);
}

TEST(SnapshotTest, ExcludesElasticReservations) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ASSERT_TRUE(registry.Create(AnySpec(fleet.catalog, "normal")).ok());
  ReservationSpec elastic = AnySpec(fleet.catalog, "elastic");
  elastic.is_elastic = true;
  ASSERT_TRUE(registry.Create(elastic).ok());
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  EXPECT_EQ(input.reservations.size(), 1u);
  EXPECT_EQ(input.reservations[0].name, "normal");
}

TEST(SnapshotTest, ExternallyManagedServersInvisible) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec legacy = AnySpec(fleet.catalog, "legacy");
  legacy.externally_managed = true;
  auto id = registry.Create(legacy);
  ASSERT_TRUE(id.ok());
  broker.SetCurrent(7, *id);

  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  // Not in the solvable reservation list, and its servers are not supply.
  EXPECT_TRUE(input.reservations.empty());
  EXPECT_FALSE(input.servers[7].available);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  for (const auto& cls : classes) {
    for (ServerId sid : cls.servers) {
      EXPECT_NE(sid, 7u);
    }
  }
}

TEST(EquivalenceTest, ClassesPartitionAvailableServers) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  broker.SetUnavailability(0, Unavailability::kUnplannedSoftware);
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  std::set<ServerId> seen;
  for (const auto& cls : classes) {
    for (ServerId id : cls.servers) {
      EXPECT_TRUE(seen.insert(id).second) << "server in two classes";
    }
  }
  EXPECT_EQ(seen.size(), fleet.topology.num_servers() - 1);  // Minus the failed one.
  EXPECT_EQ(seen.count(0), 0u);
}

TEST(EquivalenceTest, MembersShareKeyFields) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  auto id = registry.Create(AnySpec(fleet.catalog, "svc"));
  ASSERT_TRUE(id.ok());
  broker.SetCurrent(4, *id);
  broker.SetCurrent(5, *id);
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  for (const auto& cls : classes) {
    for (ServerId sid : cls.servers) {
      const Server& s = fleet.topology.server(sid);
      EXPECT_EQ(s.msb, cls.msb);
      EXPECT_EQ(s.type, cls.type);
      EXPECT_EQ(input.servers[sid].current, cls.current);
      EXPECT_EQ(input.servers[sid].in_use, cls.in_use);
    }
  }
}

TEST(EquivalenceTest, RackGranularityIsFiner) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  auto msb_classes = BuildEquivalenceClasses(input, Scope::kMsb);
  auto rack_classes = BuildEquivalenceClasses(input, Scope::kRack);
  EXPECT_GE(rack_classes.size(), msb_classes.size());
  // Rack classes never span racks.
  for (const auto& cls : rack_classes) {
    std::set<RackId> racks;
    for (ServerId id : cls.servers) {
      racks.insert(fleet.topology.server(id).rack);
    }
    EXPECT_EQ(racks.size(), 1u);
  }
}

TEST(EquivalenceTest, FilterRestrictsToSubsetPlusFree) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  auto a = registry.Create(AnySpec(fleet.catalog, "a"));
  auto b = registry.Create(AnySpec(fleet.catalog, "b"));
  ASSERT_TRUE(a.ok() && b.ok());
  broker.SetCurrent(1, *a);
  broker.SetCurrent(2, *b);
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);

  std::unordered_set<ReservationId> only_a = {*a};
  ClassFilter filter;
  filter.reservations = &only_a;
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb, filter);
  bool saw_a = false;
  for (const auto& cls : classes) {
    EXPECT_NE(cls.current, *b);
    if (cls.current == *a) {
      saw_a = true;
    }
  }
  EXPECT_TRUE(saw_a);
}

TEST(EquivalenceTest, SymmetryCompressionIsLarge) {
  // The point of Section 3.5.2: classes are far fewer than servers.
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  EXPECT_LT(classes.size(), fleet.topology.num_servers() / 3);
}

}  // namespace
}  // namespace ras
