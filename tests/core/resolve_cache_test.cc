// Resolve cache: the patch path must reproduce a fresh build field-for-field,
// and incumbent shifting must stay supply-feasible and deterministic.

#include "src/core/resolve_cache.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/initial_assignment.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions SmallFleetOptions() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 2;
  opts.racks_per_msb = 3;
  opts.servers_per_rack = 4;
  opts.seed = 11;
  return opts;  // 48 servers.
}

ReservationSpec AnyTypeReservation(const HardwareCatalog& catalog, const std::string& name,
                                   double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(catalog.size(), 1.0);
  return spec;
}

struct TestRegion {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  TestRegion() : fleet(GenerateFleet(SmallFleetOptions())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }

  SolveInput Snapshot() const {
    return SnapshotSolveInput(*broker, registry, fleet.catalog);
  }
};

// Field-for-field model comparison: variables (bounds, cost, integrality),
// rows (bounds), and the constraint matrix entries in build order.
void ExpectModelsEqual(const Model& a, const Model& b) {
  ASSERT_EQ(a.num_variables(), b.num_variables());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (VarId v = 0; v < static_cast<VarId>(a.num_variables()); ++v) {
    const ModelVariable& va = a.variable(v);
    const ModelVariable& vb = b.variable(v);
    EXPECT_EQ(va.lb, vb.lb) << "var " << v << " lb";
    EXPECT_EQ(va.ub, vb.ub) << "var " << v << " ub";
    EXPECT_EQ(va.cost, vb.cost) << "var " << v << " cost";
    EXPECT_EQ(va.is_integer, vb.is_integer) << "var " << v;
  }
  for (RowId r = 0; r < static_cast<RowId>(a.num_rows()); ++r) {
    EXPECT_EQ(a.row(r).lb, b.row(r).lb) << "row " << r << " lb";
    EXPECT_EQ(a.row(r).ub, b.row(r).ub) << "row " << r << " ub";
    const auto& ea = a.row_entries(r);
    const auto& eb = b.row_entries(r);
    ASSERT_EQ(ea.size(), eb.size()) << "row " << r << " nonzeros";
    for (size_t k = 0; k < ea.size(); ++k) {
      EXPECT_EQ(ea[k].var, eb[k].var) << "row " << r << " entry " << k;
      EXPECT_EQ(ea[k].coeff, eb[k].coeff) << "row " << r << " entry " << k;
    }
  }
}

void ExpectBuiltModelsEqual(const BuiltModel& a, const BuiltModel& b) {
  ExpectModelsEqual(a.model, b.model);
  ASSERT_EQ(a.assignment_vars.size(), b.assignment_vars.size());
  for (size_t k = 0; k < a.assignment_vars.size(); ++k) {
    EXPECT_EQ(a.assignment_vars[k].var, b.assignment_vars[k].var);
    EXPECT_EQ(a.assignment_vars[k].class_index, b.assignment_vars[k].class_index);
    EXPECT_EQ(a.assignment_vars[k].reservation_index, b.assignment_vars[k].reservation_index);
  }
  EXPECT_EQ(a.initial_counts, b.initial_counts);
  EXPECT_EQ(a.hoard_limits, b.hoard_limits);
  ASSERT_EQ(a.msb_spread_terms.size(), b.msb_spread_terms.size());
  for (size_t k = 0; k < a.msb_spread_terms.size(); ++k) {
    EXPECT_EQ(a.msb_spread_terms[k].threshold, b.msb_spread_terms[k].threshold);
  }
  ASSERT_EQ(a.affinity_terms.size(), b.affinity_terms.size());
  for (size_t k = 0; k < a.affinity_terms.size(); ++k) {
    EXPECT_EQ(a.affinity_terms[k].lo, b.affinity_terms[k].lo);
    EXPECT_EQ(a.affinity_terms[k].hi, b.affinity_terms[k].hi);
  }
}

TEST(ResolveCacheTest, PatchedModelEqualsFreshRebuildAfterResize) {
  TestRegion region;
  auto svc = region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 12));
  ASSERT_TRUE(svc.ok());
  ReservationSpec aff = AnyTypeReservation(region.fleet.catalog, "aff", 8);
  aff.dc_affinity[0] = 0.5;
  aff.dc_affinity[1] = 0.5;
  ASSERT_TRUE(region.registry.Create(aff).ok());

  SolverConfig config;
  SolveInput prev = region.Snapshot();
  std::vector<EquivalenceClass> classes = BuildEquivalenceClasses(prev, Scope::kMsb);
  BuiltModel patched = BuildRasModel(prev, classes, config, /*include_rack_spread=*/false);
  patched.model.EnsureCompressedCache();

  // Resize both reservations and kill one server of a populous class: bound
  // changes only, so the cached model patches forward.
  SolveInput next = prev;
  next.reservations[0].capacity_rru = 18;
  next.reservations[1].capacity_rru = 6;
  ServerId victim = 0;
  for (const EquivalenceClass& cls : classes) {
    if (cls.count() >= 2) {
      victim = cls.servers[0];
      break;
    }
  }
  next.servers[victim].available = false;
  std::vector<EquivalenceClass> next_classes = BuildEquivalenceClasses(next, Scope::kMsb);
  ASSERT_TRUE(ClassStructureEqual(classes, next_classes));

  ASSERT_TRUE(PatchRasModel(patched, next, next_classes, config,
                            /*include_rack_spread=*/false));
  // Patching goes exclusively through the Update* mutators: the CSC cache
  // built before the patch must still be valid.
  EXPECT_TRUE(patched.model.compressed_cache_valid());

  BuiltModel fresh = BuildRasModel(next, next_classes, config, /*include_rack_spread=*/false);
  ExpectBuiltModelsEqual(patched, fresh);
}

TEST(ResolveCacheTest, PatchRefusesStructuralMismatch) {
  TestRegion region;
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 12)).ok());
  SolverConfig config;
  SolveInput prev = region.Snapshot();
  std::vector<EquivalenceClass> classes = BuildEquivalenceClasses(prev, Scope::kMsb);
  BuiltModel built = BuildRasModel(prev, classes, config, /*include_rack_spread=*/false);

  // A second reservation changes the variable layout: the patch walk must
  // detect the mismatch and refuse.
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "extra", 4)).ok());
  SolveInput next = region.Snapshot();
  std::vector<EquivalenceClass> next_classes = BuildEquivalenceClasses(next, Scope::kMsb);
  EXPECT_FALSE(PatchRasModel(built, next, next_classes, config,
                             /*include_rack_spread=*/false));
}

TEST(ResolveCacheTest, EntriesAreKeyedAndInvalidateDropsAll) {
  ResolveCache cache;
  EXPECT_TRUE(cache.empty());
  cache.entry(1, -1).valid = true;
  cache.entry(2, -1).objective = 7.0;
  cache.entry(1, 3).valid = true;
  EXPECT_EQ(cache.size(), 3u);
  // Same key returns the same entry.
  EXPECT_TRUE(cache.entry(1, -1).valid);
  EXPECT_EQ(cache.entry(2, -1).objective, 7.0);
  cache.Invalidate();
  EXPECT_TRUE(cache.empty());
  // First touch after invalidation is cold.
  EXPECT_FALSE(cache.entry(1, -1).valid);
}

struct ShiftFixture {
  TestRegion region;
  SolverConfig config;
  SolveInput input;
  std::vector<EquivalenceClass> classes;
  ResolveEntry entry;

  ShiftFixture() {
    EXPECT_TRUE(
        region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 12)).ok());
    input = region.Snapshot();
    classes = BuildEquivalenceClasses(input, Scope::kMsb);
    entry.input = input;
    entry.classes = classes;
    entry.built = BuildRasModel(input, classes, config, /*include_rack_spread=*/false);
    entry.counts = BuildInitialCounts(input, classes, entry.built);
    entry.valid = true;
  }
};

TEST(ResolveCacheTest, ShiftIsIdentityOnUnchangedClasses) {
  ShiftFixture f;
  std::vector<double> shifted;
  ASSERT_TRUE(ShiftIncumbentCounts(f.entry, f.classes, &shifted));
  EXPECT_EQ(shifted, f.entry.counts);
}

TEST(ResolveCacheTest, ShiftClampsAndDrainsShrunkenClasses) {
  ShiftFixture f;
  // Find a class the incumbent actually uses, then shrink it to one server.
  size_t cls = f.classes.size();
  for (size_t c = 0; c < f.classes.size(); ++c) {
    double total = 0.0;
    for (int k : f.entry.built.class_to_vars[c]) {
      total += f.entry.counts[static_cast<size_t>(k)];
    }
    if (total >= 2.0 && f.classes[c].count() >= 2) {
      cls = c;
      break;
    }
  }
  ASSERT_LT(cls, f.classes.size());
  std::vector<EquivalenceClass> shrunk = f.classes;
  shrunk[cls].servers.resize(1);

  std::vector<double> shifted;
  ASSERT_TRUE(ShiftIncumbentCounts(f.entry, shrunk, &shifted));
  // Per-class supply feasibility after the shift.
  for (size_t c = 0; c < shrunk.size(); ++c) {
    double total = 0.0;
    for (int k : f.entry.built.class_to_vars[c]) {
      double v = shifted[static_cast<size_t>(k)];
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_LE(total, static_cast<double>(shrunk[c].count()) + 1e-9) << "class " << c;
  }
  // Deterministic: the same shift twice is bit-identical.
  std::vector<double> again;
  ASSERT_TRUE(ShiftIncumbentCounts(f.entry, shrunk, &again));
  EXPECT_EQ(shifted, again);
}

TEST(ResolveCacheTest, ShiftRefusesMisalignedStructures) {
  ShiftFixture f;
  std::vector<double> shifted;
  // Wrong class count.
  std::vector<EquivalenceClass> fewer = f.classes;
  fewer.pop_back();
  EXPECT_FALSE(ShiftIncumbentCounts(f.entry, fewer, &shifted));
  // Counts misaligned with the cached model.
  ResolveEntry broken = f.entry;
  broken.counts.pop_back();
  EXPECT_FALSE(ShiftIncumbentCounts(broken, f.classes, &shifted));
}

}  // namespace
}  // namespace ras
