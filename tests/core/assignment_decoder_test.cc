#include "src/core/assignment_decoder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/core/initial_assignment.h"
#include "src/fleet/fleet_gen.h"
#include "src/util/rng.h"

namespace ras {
namespace {

struct DecoderEnv {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  DecoderEnv() : fleet(GenerateFleet(Options())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 2;
    opts.racks_per_msb = 4;
    opts.servers_per_rack = 6;
    return opts;  // 96 servers.
  }

  ReservationId Add(const std::string& name, double capacity) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    return *registry.Create(spec);
  }
};

TEST(DecoderTest, CoversEveryAvailableServerExactlyOnce) {
  DecoderEnv env;
  env.Add("a", 20);
  env.Add("b", 15);
  SolveInput input = SnapshotSolveInput(*env.broker, env.registry, env.fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, SolverConfig(), false);
  auto counts = BuildInitialCounts(input, classes, built);
  auto warm = MakeWarmStart(input, classes, built, counts);

  DecodedAssignment decoded = DecodeAssignment(input, classes, built, warm);
  std::set<ServerId> seen;
  for (const auto& [server, res] : decoded.targets) {
    EXPECT_TRUE(seen.insert(server).second) << "server decoded twice";
  }
  EXPECT_EQ(seen.size(), env.fleet.topology.num_servers());
}

TEST(DecoderTest, QuotasMatchCounts) {
  DecoderEnv env;
  ReservationId a = env.Add("a", 20);
  SolveInput input = SnapshotSolveInput(*env.broker, env.registry, env.fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, SolverConfig(), false);
  auto counts = BuildInitialCounts(input, classes, built);
  auto warm = MakeWarmStart(input, classes, built, counts);

  DecodedAssignment decoded = DecodeAssignment(input, classes, built, warm);
  // Per-reservation decoded counts equal the summed integer counts.
  std::map<ReservationId, long> decoded_counts;
  for (const auto& [server, res] : decoded.targets) {
    decoded_counts[res]++;
  }
  double a_total = 0;
  for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
    if (input.reservations[static_cast<size_t>(built.assignment_vars[k].reservation_index)].id ==
        a) {
      a_total += counts[k];
    }
  }
  EXPECT_EQ(decoded_counts[a], std::lround(a_total));
}

TEST(DecoderTest, KeepsCurrentServersInPlace) {
  DecoderEnv env;
  ReservationId a = env.Add("a", 10);
  // Bind 15 servers; the decode of the initial counts must keep them.
  std::vector<ServerId> bound;
  for (ServerId id = 0; id < 15; ++id) {
    env.broker->SetCurrent(id, a);
    bound.push_back(id);
  }
  SolveInput input = SnapshotSolveInput(*env.broker, env.registry, env.fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, SolverConfig(), false);
  // Decode X itself (keep everything): zero moves expected.
  auto warm = MakeWarmStart(input, classes, built, built.initial_counts);
  DecodedAssignment decoded = DecodeAssignment(input, classes, built, warm);
  EXPECT_EQ(decoded.moves_total, 0u);
  for (const auto& [server, res] : decoded.targets) {
    if (std::find(bound.begin(), bound.end(), server) != bound.end()) {
      EXPECT_EQ(res, a);
    } else {
      EXPECT_EQ(res, kUnassigned);
    }
  }
}

TEST(DecoderTest, MoveTiersFollowClassInUse) {
  DecoderEnv env;
  ReservationId a = env.Add("a", 5);
  // 4 idle + 4 in-use servers bound to a; then decode an assignment that
  // frees everything.
  for (ServerId id = 0; id < 8; ++id) {
    env.broker->SetCurrent(id, a);
    env.broker->SetHasContainers(id, id >= 4);
  }
  SolveInput input = SnapshotSolveInput(*env.broker, env.registry, env.fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, SolverConfig(), false);
  std::vector<double> zero(built.assignment_vars.size(), 0.0);
  auto warm = MakeWarmStart(input, classes, built, zero);
  DecodedAssignment decoded = DecodeAssignment(input, classes, built, warm);
  EXPECT_EQ(decoded.moves_total, 8u);
  EXPECT_EQ(decoded.moves_in_use, 4u);
  EXPECT_EQ(decoded.moves_idle, 4u);
}

// Property sweep: random integral count vectors decode into consistent
// targets: per-class totals respected, every class member assigned.
class DecoderPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DecoderPropertyTest, RandomCountsDecodeConsistently) {
  DecoderEnv env;
  Rng rng(6000 + GetParam());
  ReservationId a = env.Add("a", 10);
  ReservationId b = env.Add("b", 10);
  // Random pre-bindings.
  for (ServerId id = 0; id < env.broker->num_servers(); ++id) {
    double draw = rng.NextDouble();
    if (draw < 0.2) {
      env.broker->SetCurrent(id, a);
    } else if (draw < 0.4) {
      env.broker->SetCurrent(id, b);
    }
    env.broker->SetHasContainers(id, rng.Bernoulli(0.3));
  }
  SolveInput input = SnapshotSolveInput(*env.broker, env.registry, env.fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, SolverConfig(), false);

  // Random supply-respecting integral counts.
  std::vector<double> counts(built.assignment_vars.size(), 0.0);
  for (size_t c = 0; c < classes.size(); ++c) {
    long remaining = static_cast<long>(classes[c].count());
    for (int k : built.class_to_vars[c]) {
      long take = rng.UniformInt(0, remaining);
      counts[static_cast<size_t>(k)] = static_cast<double>(take);
      remaining -= take;
    }
  }
  auto warm = MakeWarmStart(input, classes, built, counts);
  DecodedAssignment decoded = DecodeAssignment(input, classes, built, warm);

  // Every available server decoded exactly once; per-(class, reservation)
  // decoded counts match the requested counts.
  std::set<ServerId> seen;
  std::map<std::pair<int, ReservationId>, long> per_class_res;
  std::map<ServerId, int> class_of;
  for (size_t c = 0; c < classes.size(); ++c) {
    for (ServerId id : classes[c].servers) {
      class_of[id] = static_cast<int>(c);
    }
  }
  for (const auto& [server, res] : decoded.targets) {
    EXPECT_TRUE(seen.insert(server).second);
    if (res != kUnassigned) {
      per_class_res[{class_of[server], res}]++;
    }
  }
  for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
    const auto& av = built.assignment_vars[k];
    ReservationId res = input.reservations[static_cast<size_t>(av.reservation_index)].id;
    long actual = per_class_res[std::make_pair(av.class_index, res)];
    EXPECT_EQ(actual, std::lround(counts[k]))
        << "class " << av.class_index << " res " << res;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecoderPropertyTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace ras
