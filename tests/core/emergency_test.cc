#include "src/core/emergency.h"

#include <gtest/gtest.h>

#include "src/core/buffer_policy.h"
#include "src/core/online_mover.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

struct EmergencySetup {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;
  std::unique_ptr<OnlineMover> mover;
  std::vector<ReservationId> buffers;

  EmergencySetup() : fleet(GenerateFleet(Options())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
    mover = std::make_unique<OnlineMover>(broker.get(), &registry, nullptr);
    buffers = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.05);
    for (ReservationId b : buffers) {
      const ReservationSpec* spec = registry.Find(b);
      size_t need = static_cast<size_t>(spec->capacity_rru);
      for (ServerId id = 0; id < broker->num_servers() && need > 0; ++id) {
        if (broker->record(id).current == kUnassigned &&
            spec->ValueOfType(fleet.topology.server(id).type) > 0) {
          broker->SetCurrent(id, b);
          --need;
        }
      }
    }
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 1;
    opts.msbs_per_datacenter = 3;
    opts.racks_per_msb = 4;
    opts.servers_per_rack = 8;
    return opts;  // 96 servers.
  }

  ReservationId AddGuaranteed(const std::string& name, double capacity) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    return *registry.Create(spec);
  }
};

TEST(EmergencyTest, GrantsFromFreePool) {
  EmergencySetup s;
  ReservationId res = s.AddGuaranteed("urgent", 10);
  EmergencyGrant grant = GrantImmediateCapacity(*s.broker, s.registry, res, 10);
  EXPECT_EQ(grant.servers_granted, 10u);
  EXPECT_EQ(grant.from_free_pool, 10u);
  EXPECT_EQ(s.broker->CountInReservation(res), 10u);
}

TEST(EmergencyTest, FallsBackToElasticLoans) {
  EmergencySetup s;
  // Drain the free pool into a filler reservation.
  ReservationId filler = s.AddGuaranteed("filler", 1);
  std::vector<ServerId> pool = s.broker->ServersInReservation(kUnassigned);
  for (ServerId id : pool) {
    s.broker->SetCurrent(id, filler);
  }
  // Loan buffer capacity to an elastic reservation.
  ReservationSpec elastic_spec;
  elastic_spec.name = "batch";
  elastic_spec.capacity_rru = 0;
  elastic_spec.rru_per_type.assign(s.fleet.catalog.size(), 1.0);
  elastic_spec.is_elastic = true;
  elastic_spec.needs_correlated_buffer = false;
  ReservationId elastic = *s.registry.Create(elastic_spec);
  size_t loaned = s.mover->LoanIdleBuffersToElastic(elastic, 4);
  ASSERT_GT(loaned, 0u);

  ReservationId urgent = s.AddGuaranteed("urgent", 2);
  EmergencyGrant grant = GrantImmediateCapacity(*s.broker, s.registry, urgent, 2);
  EXPECT_EQ(grant.servers_granted, std::min<size_t>(2, loaned));
  EXPECT_EQ(grant.from_free_pool, 0u);
  EXPECT_GT(grant.from_elastic, 0u);
}

TEST(EmergencyTest, NeverTouchesIdleBuffers) {
  EmergencySetup s;
  // Drain the free pool.
  ReservationId filler = s.AddGuaranteed("filler", 1);
  std::vector<ServerId> pool = s.broker->ServersInReservation(kUnassigned);
  for (ServerId id : pool) {
    s.broker->SetCurrent(id, filler);
  }
  size_t buffer_before = 0;
  for (ReservationId b : s.buffers) {
    buffer_before += s.broker->CountInReservation(b);
  }
  ReservationId urgent = s.AddGuaranteed("urgent", 5);
  EmergencyGrant grant = GrantImmediateCapacity(*s.broker, s.registry, urgent, 5);
  EXPECT_EQ(grant.servers_granted, 0u);  // Nothing available without loans.
  size_t buffer_after = 0;
  for (ReservationId b : s.buffers) {
    buffer_after += s.broker->CountInReservation(b);
  }
  EXPECT_EQ(buffer_before, buffer_after);
}

TEST(EmergencyTest, UnknownReservationOrZeroCount) {
  EmergencySetup s;
  EXPECT_EQ(GrantImmediateCapacity(*s.broker, s.registry, 9999, 5).servers_granted, 0u);
  ReservationId res = s.AddGuaranteed("svc", 5);
  EXPECT_EQ(GrantImmediateCapacity(*s.broker, s.registry, res, 0).servers_granted, 0u);
}

TEST(EmergencyTest, SkipsFailedServers) {
  EmergencySetup s;
  for (ServerId id : s.broker->ServersInReservation(kUnassigned)) {
    s.broker->SetUnavailability(id, Unavailability::kUnplannedHardware);
  }
  ReservationId res = s.AddGuaranteed("svc", 5);
  EXPECT_EQ(GrantImmediateCapacity(*s.broker, s.registry, res, 5).servers_granted, 0u);
}

}  // namespace
}  // namespace ras
