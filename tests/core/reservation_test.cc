#include "src/core/reservation.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

ReservationSpec ValidSpec(const std::string& name = "svc") {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = 10;
  spec.rru_per_type = {1.0, 0.0, 2.0};
  return spec;
}

TEST(ReservationRegistryTest, CreateAssignsIds) {
  ReservationRegistry registry;
  auto a = registry.Create(ValidSpec("a"));
  auto b = registry.Create(ValidSpec("b"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Find(*a)->name, "a");
}

TEST(ReservationRegistryTest, RejectsBadSpecs) {
  ReservationRegistry registry;
  ReservationSpec no_capacity = ValidSpec();
  no_capacity.capacity_rru = 0;
  EXPECT_FALSE(registry.Create(no_capacity).ok());

  ReservationSpec no_rru = ValidSpec();
  no_rru.rru_per_type.clear();
  EXPECT_FALSE(registry.Create(no_rru).ok());

  ReservationSpec all_zero = ValidSpec();
  all_zero.rru_per_type = {0.0, 0.0};
  EXPECT_FALSE(registry.Create(all_zero).ok());

  ReservationSpec bad_affinity = ValidSpec();
  bad_affinity.dc_affinity[0] = 2.5;
  EXPECT_FALSE(registry.Create(bad_affinity).ok());
  ReservationSpec buffer_affinity = ValidSpec("with-buffer-share");
  buffer_affinity.dc_affinity[0] = 1.3;  // Capacity + buffer in one DC: legal.
  EXPECT_TRUE(registry.Create(buffer_affinity).ok());
}

TEST(ReservationRegistryTest, ElasticAllowsZeroCapacity) {
  ReservationRegistry registry;
  ReservationSpec elastic = ValidSpec("elastic");
  elastic.capacity_rru = 0;
  elastic.is_elastic = true;
  EXPECT_TRUE(registry.Create(elastic).ok());
}

TEST(ReservationRegistryTest, UpdateAndRemove) {
  ReservationRegistry registry;
  auto id = registry.Create(ValidSpec());
  ASSERT_TRUE(id.ok());
  ReservationSpec updated = *registry.Find(*id);
  updated.capacity_rru = 99;
  ASSERT_TRUE(registry.Update(updated).ok());
  EXPECT_EQ(registry.Find(*id)->capacity_rru, 99.0);

  ASSERT_TRUE(registry.Remove(*id).ok());
  EXPECT_EQ(registry.Find(*id), nullptr);
  EXPECT_FALSE(registry.Remove(*id).ok());
  ReservationSpec ghost = ValidSpec();
  ghost.id = 424242;
  EXPECT_FALSE(registry.Update(ghost).ok());
}

TEST(ReservationRegistryTest, SolvableExcludesElastic) {
  ReservationRegistry registry;
  ASSERT_TRUE(registry.Create(ValidSpec("normal")).ok());
  ReservationSpec elastic = ValidSpec("elastic");
  elastic.is_elastic = true;
  ASSERT_TRUE(registry.Create(elastic).ok());
  ReservationSpec buffer = ValidSpec("buffer");
  buffer.is_shared_random_buffer = true;
  buffer.needs_correlated_buffer = false;
  ASSERT_TRUE(registry.Create(buffer).ok());

  EXPECT_EQ(registry.All().size(), 3u);
  EXPECT_EQ(registry.AllSolvable().size(), 2u);  // normal + buffer.
  EXPECT_EQ(registry.AllElastic().size(), 1u);
  EXPECT_EQ(registry.AllElastic()[0]->name, "elastic");
}

TEST(ReservationSpecTest, ValueOfTypeBounds) {
  ReservationSpec spec = ValidSpec();
  EXPECT_DOUBLE_EQ(spec.ValueOfType(0), 1.0);
  EXPECT_DOUBLE_EQ(spec.ValueOfType(2), 2.0);
  EXPECT_DOUBLE_EQ(spec.ValueOfType(999), 0.0);  // Out of range.
}

TEST(ReservationRegistryTest, IdsNotReused) {
  ReservationRegistry registry;
  auto a = registry.Create(ValidSpec("a"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(registry.Remove(*a).ok());
  auto b = registry.Create(ValidSpec("b"));
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

}  // namespace
}  // namespace ras
