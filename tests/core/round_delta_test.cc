// Round deltas: classification of what changed between consecutive SolveInput
// snapshots, and the structural-equality certificates that gate the
// incremental re-solve layer (model patching / basis reuse / skip-solve).

#include "src/core/round_delta.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions SmallFleetOptions() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 2;
  opts.racks_per_msb = 3;
  opts.servers_per_rack = 4;
  opts.seed = 11;
  return opts;  // 48 servers.
}

ReservationSpec AnyTypeReservation(const HardwareCatalog& catalog, const std::string& name,
                                   double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(catalog.size(), 1.0);
  return spec;
}

struct TestRegion {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  TestRegion() : fleet(GenerateFleet(SmallFleetOptions())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }

  SolveInput Snapshot() const {
    return SnapshotSolveInput(*broker, registry, fleet.catalog);
  }
};

TEST(RoundDeltaTest, IdenticalSnapshotsAreEmptyAndPatchable) {
  TestRegion region;
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 10)).ok());
  SolveInput prev = region.Snapshot();
  SolveInput next = region.Snapshot();

  RoundDelta delta = ComputeRoundDelta(prev, next);
  EXPECT_TRUE(delta.same_region);
  EXPECT_TRUE(delta.reservations_structurally_equal);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.delta_servers(), 0);

  // The caller certifies class structure; with it, the round is patchable.
  std::vector<EquivalenceClass> a = BuildEquivalenceClasses(prev, Scope::kMsb);
  std::vector<EquivalenceClass> b = BuildEquivalenceClasses(next, Scope::kMsb);
  delta.classes_structurally_equal = ClassStructureEqual(a, b);
  EXPECT_TRUE(delta.patchable());
}

TEST(RoundDeltaTest, ServerStateFlipsAreCountedPerServer) {
  TestRegion region;
  auto id = region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 10));
  ASSERT_TRUE(id.ok());
  SolveInput prev = region.Snapshot();
  SolveInput next = prev;
  next.servers[3].available = false;       // Health flip.
  next.servers[7].current = *id;           // Binding change.
  next.servers[7].in_use = true;           // Same server: still one change.

  RoundDelta delta = ComputeRoundDelta(prev, next);
  EXPECT_EQ(delta.servers_changed, 2);
  EXPECT_EQ(delta.delta_servers(), 2);
  EXPECT_FALSE(delta.empty());
  // Server churn alone never breaks reservation structure.
  EXPECT_TRUE(delta.reservations_structurally_equal);
}

TEST(RoundDeltaTest, FleetGrowthCountsAddedServers) {
  TestRegion region;
  SolveInput prev = region.Snapshot();
  SolveInput next = prev;
  next.servers.push_back(ServerSolveState{});
  next.servers.push_back(ServerSolveState{});

  RoundDelta delta = ComputeRoundDelta(prev, next);
  EXPECT_EQ(delta.servers_added, 2);
  EXPECT_EQ(delta.servers_changed, 0);
  EXPECT_EQ(delta.delta_servers(), 2);

  // Shrink is the mirror image.
  RoundDelta shrink = ComputeRoundDelta(next, prev);
  EXPECT_EQ(shrink.servers_removed, 2);
}

TEST(RoundDeltaTest, ResizeIsPatchableRestructureIsNot) {
  TestRegion region;
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "svc", 10)).ok());
  SolveInput prev = region.Snapshot();

  // Capacity / alpha / theta / quorum-magnitude changes only move bounds.
  SolveInput resized = prev;
  resized.reservations[0].capacity_rru = 14;
  RoundDelta delta = ComputeRoundDelta(prev, resized);
  EXPECT_EQ(delta.reservations_resized, 1);
  EXPECT_EQ(delta.reservations_restructured, 0);
  EXPECT_TRUE(delta.reservations_structurally_equal);
  EXPECT_FALSE(delta.empty());

  // A value-table change alters constraint coefficients: restructured.
  SolveInput restructured = prev;
  restructured.reservations[0].rru_per_type[0] = 2.0;
  delta = ComputeRoundDelta(prev, restructured);
  EXPECT_EQ(delta.reservations_restructured, 1);
  EXPECT_FALSE(delta.reservations_structurally_equal);
}

TEST(RoundDeltaTest, ReservationChurnBreaksStructuralEquality) {
  TestRegion region;
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 10)).ok());
  SolveInput prev = region.Snapshot();
  ASSERT_TRUE(region.registry.Create(AnyTypeReservation(region.fleet.catalog, "b", 5)).ok());
  SolveInput next = region.Snapshot();

  RoundDelta delta = ComputeRoundDelta(prev, next);
  EXPECT_EQ(delta.reservations_added, 1);
  EXPECT_FALSE(delta.reservations_structurally_equal);

  RoundDelta removal = ComputeRoundDelta(next, prev);
  EXPECT_EQ(removal.reservations_removed, 1);
  EXPECT_FALSE(removal.reservations_structurally_equal);
}

TEST(RoundDeltaTest, DifferentRegionObjectsVoidEverything) {
  TestRegion a;
  TestRegion b;
  RoundDelta delta = ComputeRoundDelta(a.Snapshot(), b.Snapshot());
  EXPECT_FALSE(delta.same_region);
  EXPECT_FALSE(delta.empty());
  delta.classes_structurally_equal = true;  // Even a (bogus) certificate
  EXPECT_FALSE(delta.patchable());          // cannot rescue a region swap.
}

TEST(RoundDeltaTest, ReservationStructureEqualitySemantics) {
  TestRegion region;
  ReservationSpec a = AnyTypeReservation(region.fleet.catalog, "svc", 10);
  a.id = 1;

  // Size-only changes keep structure.
  ReservationSpec b = a;
  b.capacity_rru = 20;
  b.affinity_theta = 0.1;
  EXPECT_TRUE(ReservationStructureEqual(a, b));

  // The quorum cap appearing adds rows.
  ReservationSpec quorum = a;
  quorum.max_msb_fraction_hard = 0.33;
  EXPECT_FALSE(ReservationStructureEqual(a, quorum));
  // Magnitude-only quorum changes patch.
  ReservationSpec quorum2 = quorum;
  quorum2.max_msb_fraction_hard = 0.5;
  EXPECT_TRUE(ReservationStructureEqual(quorum, quorum2));

  // Affinity keys define rows; values are bounds.
  ReservationSpec aff = a;
  aff.dc_affinity[0] = 0.6;
  EXPECT_FALSE(ReservationStructureEqual(a, aff));
  ReservationSpec aff2 = aff;
  aff2.dc_affinity[0] = 0.4;
  EXPECT_TRUE(ReservationStructureEqual(aff, aff2));

  // Flag flips rebuild.
  ReservationSpec buf = a;
  buf.needs_correlated_buffer = false;
  EXPECT_FALSE(ReservationStructureEqual(a, buf));
}

TEST(RoundDeltaTest, ClassStructureEqualityIgnoresMembership) {
  TestRegion region;
  SolveInput prev = region.Snapshot();
  std::vector<EquivalenceClass> a = BuildEquivalenceClasses(prev, Scope::kMsb);
  ASSERT_FALSE(a.empty());

  // Killing one server of a populous class shrinks the class but keeps every
  // key: still equal. (A singleton class would vanish and break equality.)
  ServerId victim = 0;
  bool found = false;
  for (const EquivalenceClass& cls : a) {
    if (cls.count() >= 2) {
      victim = cls.servers[0];
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  SolveInput next = prev;
  next.servers[victim].available = false;
  std::vector<EquivalenceClass> b = BuildEquivalenceClasses(next, Scope::kMsb);
  EXPECT_TRUE(ClassStructureEqual(a, b));

  // A key change at any index breaks equality.
  std::vector<EquivalenceClass> c = a;
  c[0].in_use = !c[0].in_use;
  EXPECT_FALSE(ClassStructureEqual(a, c));
  std::vector<EquivalenceClass> d = a;
  d.pop_back();
  EXPECT_FALSE(ClassStructureEqual(a, d));
}

}  // namespace
}  // namespace ras
