// Supervisor tests: deadline/retry/backoff behavior, the degradation ladder,
// snapshot validation, atomic persistence, and the emergency path under
// sustained solver unavailability. Everything is seeded and all backoff is in
// simulated time — no wall-clock sleeps anywhere.

#include "src/core/solver_supervisor.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/buffer_policy.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

struct SupervisedSetup {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;
  AsyncSolver solver;
  EventLoop loop;
  std::vector<ReservationId> buffers;
  std::unique_ptr<SolverSupervisor> supervisor;
  std::unique_ptr<FaultInjector> injector;

  explicit SupervisedSetup(const FaultPlan& plan = FaultPlan(),
                           SupervisorConfig config = FastConfig())
      : fleet(GenerateFleet(Options())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
    buffers = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.04);
    // Materialize the shared buffers (bind current, as the Online Mover
    // would) so the emergency path's respect for them is observable.
    for (ReservationId b : buffers) {
      const ReservationSpec* spec = registry.Find(b);
      size_t need = static_cast<size_t>(spec->capacity_rru);
      for (ServerId id = 0; id < broker->num_servers() && need > 0; ++id) {
        if (broker->record(id).current == kUnassigned &&
            spec->ValueOfType(fleet.topology.server(id).type) > 0) {
          broker->SetCurrent(id, b);
          --need;
        }
      }
    }
    solver.mutable_config().phase1_mip.max_nodes = 8;  // Keep solves fast.
    solver.mutable_config().phase2_mip.max_nodes = 4;
    supervisor = std::make_unique<SolverSupervisor>(&solver, broker.get(), &registry,
                                                    &fleet.catalog, &loop, config);
    if (!plan.empty()) {
      injector = std::make_unique<FaultInjector>(plan);
      supervisor->SetFaultInjector(injector.get());
    }
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 2;
    opts.racks_per_msb = 3;
    opts.servers_per_rack = 8;
    opts.seed = 11;
    return opts;  // 96 servers.
  }

  static SupervisorConfig FastConfig() {
    SupervisorConfig config;
    config.max_retries = 2;
    config.backoff_initial = Seconds(30);
    config.backoff_multiplier = 2.0;
    config.backoff_jitter = 0.25;
    config.unhealthy_after_failures = 3;
    return config;
  }

  ReservationId AddService(const std::string& name, double capacity) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    return *registry.Create(spec);
  }

  // Solver intent for `reservation` (the supervisor persists targets; there
  // is no Online Mover here to materialize them into current bindings).
  size_t TargetCount(ReservationId reservation) const {
    size_t count = 0;
    for (ServerId id = 0; id < broker->num_servers(); ++id) {
      count += broker->record(id).target == reservation;
    }
    return count;
  }

  std::map<ServerId, ReservationId> TargetsNow() const {
    std::map<ServerId, ReservationId> targets;
    for (ServerId id = 0; id < broker->num_servers(); ++id) {
      targets[id] = broker->record(id).target;
    }
    return targets;
  }
};

TEST(SolverSupervisorTest, HealthyRoundUsesTopRung) {
  SupervisedSetup s;
  ReservationId svc = s.AddService("svc", 20);
  SupervisedRound round = s.supervisor->RunRound();
  EXPECT_EQ(round.rung, LadderRung::kFullTwoPhase);
  EXPECT_EQ(round.retries, 0);
  EXPECT_TRUE(round.error.ok());
  EXPECT_TRUE(s.supervisor->solver_healthy());
  EXPECT_FALSE(s.supervisor->emergency_armed());
  EXPECT_FALSE(s.supervisor->last_good_targets().empty());
  ASSERT_EQ(s.supervisor->stats().rounds.size(), 1u);
  EXPECT_EQ(s.supervisor->stats().RungCount(LadderRung::kFullTwoPhase), 1u);
  // The solve actually landed in the broker.
  EXPECT_GT(s.TargetCount(svc), 0u);
}

TEST(SolverSupervisorTest, TimeoutRetriesWithSimTimeBackoffThenShipsIncumbent) {
  // Timeouts kill both MIP rungs; the greedy incumbent (the paper's
  // documented timeout fallback) ships instead. Retries back off in sim-time.
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSolverTimeout, 0, 1);
  SupervisedSetup s(plan);
  ReservationId svc = s.AddService("svc", 20);

  SimTime before = s.loop.now();
  SupervisedRound round = s.supervisor->RunRound();
  EXPECT_EQ(round.rung, LadderRung::kIncumbent);
  EXPECT_EQ(round.retries, 2);
  EXPECT_EQ(round.error.code(), StatusCode::kDeadlineExceeded);
  // Two backoffs: ~30s and ~60s, each with +/-25% seeded jitter.
  int64_t waited = (s.loop.now() - before).seconds;
  EXPECT_GE(waited, 66);
  EXPECT_LE(waited, 114);
  // The incumbent still materialized solver intent for the service.
  EXPECT_GT(s.TargetCount(svc), 0u);
  EXPECT_EQ(s.supervisor->stats().total_retries, 2u);
  EXPECT_EQ(s.supervisor->stats().failed_attempts, 4u);  // 3 full + 1 phase-1.

  // Next round the burst is over: full solve again, health intact throughout.
  round = s.supervisor->RunRound();
  EXPECT_EQ(round.rung, LadderRung::kFullTwoPhase);
  EXPECT_TRUE(s.supervisor->solver_healthy());
}

TEST(SolverSupervisorTest, Phase1OnlyRungServesWhenOnlyFullSolveFails) {
  // Degradation to the cheaper phase-1-only solve, driven through the
  // solver's public fault hook (a fault mode the plan DSL does not encode:
  // only the expensive two-phase solve blows its window).
  SupervisedSetup s;
  s.AddService("svc", 20);
  s.solver.SetFaultHook([](SolveMode mode) {
    return mode == SolveMode::kFullTwoPhase
               ? Status::DeadlineExceeded("two-phase solve too slow")
               : Status::Ok();
  });
  SupervisedRound round = s.supervisor->RunRound();
  EXPECT_EQ(round.rung, LadderRung::kPhase1Only);
  EXPECT_TRUE(round.stats.phase1.ran);
  EXPECT_FALSE(round.stats.phase2.ran);
  EXPECT_EQ(round.error.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(s.supervisor->solver_healthy());
}

TEST(SolverSupervisorTest, CrashBurstKeepsLastGoodAssignmentUntouched) {
  // Establish a last-good assignment, then crash the solver for two rounds:
  // the broker's targets must not move at all while degraded.
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSolverCrash, 1, 2);
  SupervisedSetup s(plan);
  s.AddService("svc", 20);
  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kFullTwoPhase);
  auto last_good = s.TargetsNow();

  for (int k = 0; k < 2; ++k) {
    SupervisedRound round = s.supervisor->RunRound();
    EXPECT_EQ(round.rung, LadderRung::kLastGood);
    EXPECT_EQ(round.error.code(), StatusCode::kInternal);
    EXPECT_EQ(s.TargetsNow(), last_good) << "degraded round " << k << " moved targets";
  }
  EXPECT_EQ(s.supervisor->stats().consecutive_failed_rounds, 2u);
  EXPECT_TRUE(s.supervisor->solver_healthy());  // Threshold is 3.

  // Faults cleared: recovery to the full solve is automatic.
  SupervisedRound round = s.supervisor->RunRound();
  EXPECT_EQ(round.rung, LadderRung::kFullTwoPhase);
  EXPECT_EQ(s.supervisor->stats().consecutive_failed_rounds, 0u);
}

TEST(SolverSupervisorTest, CorruptSnapshotsAreRejectedBeforePersisting) {
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSnapshotCorruption, 1, 1);
  SupervisedSetup s(plan);
  s.AddService("svc", 20);
  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kFullTwoPhase);
  auto last_good = s.TargetsNow();

  SupervisedRound round = s.supervisor->RunRound();
  EXPECT_EQ(round.rung, LadderRung::kLastGood);
  EXPECT_GT(s.supervisor->stats().snapshots_rejected, 0u);
  EXPECT_EQ(s.TargetsNow(), last_good);
}

TEST(SolverSupervisorTest, StaleSnapshotsAreNotPersisted) {
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSnapshotStale, 1, 1);
  SupervisedSetup s(plan);
  s.AddService("svc", 20);
  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kFullTwoPhase);
  auto last_good = s.TargetsNow();

  SupervisedRound round = s.supervisor->RunRound();
  EXPECT_EQ(round.rung, LadderRung::kLastGood);
  EXPECT_EQ(round.error.code(), StatusCode::kFailedPrecondition);
  EXPECT_GT(s.supervisor->stats().stale_snapshots, 0u);
  EXPECT_EQ(s.TargetsNow(), last_good);
}

TEST(SolverSupervisorTest, BrokerWriteFailuresRollBackAndDegrade) {
  FaultPlan plan;
  plan.AddBurst(FaultKind::kBrokerWriteFailure, 1, 1);
  SupervisedSetup s(plan);
  ReservationId svc = s.AddService("svc", 20);
  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kFullTwoPhase);
  auto last_good = s.TargetsNow();
  // Grow the request so the next solve must produce different targets; the
  // rejected batch must leave none of them behind.
  ReservationSpec spec = *s.registry.Find(svc);
  spec.capacity_rru = 30;
  ASSERT_TRUE(s.registry.Update(spec).ok());

  SupervisedRound round = s.supervisor->RunRound();
  EXPECT_EQ(round.rung, LadderRung::kLastGood);
  EXPECT_EQ(round.error.code(), StatusCode::kUnavailable);
  EXPECT_GT(s.supervisor->stats().persist_failures, 0u);
  EXPECT_GT(s.broker->failed_writes(), 0u);
  EXPECT_EQ(s.TargetsNow(), last_good) << "half-persisted targets leaked";
}

TEST(SolverSupervisorTest, ConsecutiveCrashesArmEmergencyAndRecoverCleanly) {
  // The Section 5.4 drill: N consecutive solver crashes mark the solver
  // unhealthy and arm GrantImmediateCapacity; an urgent request is served
  // without touching un-loaned shared-buffer servers; the next successful
  // solve restores normal operation.
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSolverCrash, 1, 3);
  SupervisedSetup s(plan);
  s.AddService("svc", 20);
  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kFullTwoPhase);

  // While healthy, the emergency path refuses.
  ReservationId urgent = s.AddService("urgent", 4);
  EXPECT_EQ(s.supervisor->RequestUrgentCapacity(urgent, 4).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kLastGood);
  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kLastGood);
  SupervisedRound third = s.supervisor->RunRound();
  EXPECT_EQ(third.rung, LadderRung::kEmergency);
  EXPECT_FALSE(s.supervisor->solver_healthy());
  EXPECT_TRUE(s.supervisor->emergency_armed());
  EXPECT_EQ(s.supervisor->stats().RungCount(LadderRung::kEmergency), 1u);

  // Idle (un-loaned) shared-buffer servers are sacred even in an emergency.
  std::set<ServerId> buffer_servers;
  for (ReservationId b : s.buffers) {
    for (ServerId id : s.broker->ServersInReservation(b)) {
      buffer_servers.insert(id);
    }
  }
  ASSERT_FALSE(buffer_servers.empty());
  Result<EmergencyGrant> grant = s.supervisor->RequestUrgentCapacity(urgent, 4);
  ASSERT_TRUE(grant.ok());
  EXPECT_GT(grant->servers_granted, 0u);
  EXPECT_EQ(s.broker->CountInReservation(urgent), grant->servers_granted);
  for (ServerId id : s.broker->ServersInReservation(urgent)) {
    EXPECT_EQ(buffer_servers.count(id), 0u) << "emergency grant raided the shared buffer";
  }
  // Buffer membership is exactly what it was before the grant.
  size_t still_bound = 0;
  for (ReservationId b : s.buffers) {
    still_bound += s.broker->CountInReservation(b);
  }
  EXPECT_EQ(still_bound, buffer_servers.size());

  // Faults cleared: the next round recovers automatically and disarms.
  SupervisedRound recovered = s.supervisor->RunRound();
  EXPECT_EQ(recovered.rung, LadderRung::kFullTwoPhase);
  EXPECT_TRUE(s.supervisor->solver_healthy());
  EXPECT_FALSE(s.supervisor->emergency_armed());
  ASSERT_EQ(s.supervisor->stats().recovery_times.size(), 1u);
  EXPECT_GE(s.supervisor->stats().recovery_times[0].seconds, 0);
  // And the emergency door is locked again.
  EXPECT_EQ(s.supervisor->RequestUrgentCapacity(urgent, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SolverSupervisorTest, LadderNeverRegressesAndIsFullyObservable) {
  // One run that walks every rung, asserting the recorded ladder sequence:
  // retry -> incumbent (timeout), last-good (crash) x2 -> emergency, then
  // automatic recovery to the full two-phase solve.
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSolverTimeout, 1, 1);
  plan.AddBurst(FaultKind::kSolverCrash, 2, 3);
  SupervisedSetup s(plan);
  s.AddService("svc", 20);

  std::vector<LadderRung> expected = {
      LadderRung::kFullTwoPhase,  // round 0: healthy
      LadderRung::kIncumbent,     // round 1: timeout burst, retries then greedy
      LadderRung::kLastGood,      // rounds 2-3: crash burst
      LadderRung::kLastGood,
      LadderRung::kEmergency,     // round 4: third consecutive failure
      LadderRung::kFullTwoPhase,  // round 5: recovered
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    SupervisedRound round = s.supervisor->RunRound();
    EXPECT_EQ(round.rung, expected[i])
        << "round " << i << " took rung " << LadderRungName(round.rung);
  }
  const SupervisorStats& stats = s.supervisor->stats();
  ASSERT_EQ(stats.rounds.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(stats.rounds[i].rung, expected[i]);
  }
  EXPECT_EQ(stats.RungCount(LadderRung::kFullTwoPhase), 2u);
  EXPECT_EQ(stats.RungCount(LadderRung::kIncumbent), 1u);
  EXPECT_EQ(stats.RungCount(LadderRung::kLastGood), 2u);
  EXPECT_EQ(stats.RungCount(LadderRung::kEmergency), 1u);
  EXPECT_EQ(stats.recovery_times.size(), 1u);
}

TEST(SolverSupervisorTest, FullyDeterministicUnderFaults) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.AddBurst(FaultKind::kSolverTimeout, 0, 6, 0.5);
  plan.AddBurst(FaultKind::kSolverCrash, 0, 6, 0.3);

  auto run = [&plan]() {
    SupervisedSetup s(plan);
    s.AddService("svc", 20);
    std::vector<LadderRung> rungs;
    std::vector<int64_t> times;
    for (int round = 0; round < 6; ++round) {
      rungs.push_back(s.supervisor->RunRound().rung);
      times.push_back(s.loop.now().seconds);
    }
    return std::make_pair(rungs, times);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SolverSupervisorTest, DegradedRungForcesNextRoundCold) {
  // Cache lifetime across the ladder: healthy consecutive full rounds ride
  // the resolve cache; a degraded rung drops it; the round after the solver
  // recovers is cold and then warms back up.
  SupervisedSetup s;
  s.AddService("svc", 20);
  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kFullTwoPhase);
  EXPECT_FALSE(s.solver.resolve_cache().empty());

  // The supervisor persists targets (current bindings never move here), so
  // the second snapshot is identical and the round reuses the cached model.
  SupervisedRound warm = s.supervisor->RunRound();
  EXPECT_EQ(warm.rung, LadderRung::kFullTwoPhase);
  EXPECT_GE(warm.stats.delta_servers, 0);
  EXPECT_TRUE(warm.stats.phase1.model_patched);

  s.solver.SetFaultHook([](SolveMode mode) {
    return mode == SolveMode::kFullTwoPhase ? Status::DeadlineExceeded("two-phase too slow")
                                            : Status::Ok();
  });
  SupervisedRound degraded = s.supervisor->RunRound();
  EXPECT_EQ(degraded.rung, LadderRung::kPhase1Only);
  EXPECT_EQ(degraded.stats.delta_servers, -1) << "a degraded rung must never reuse warm state";
  EXPECT_TRUE(s.solver.resolve_cache().empty()) << "degraded solve left warm state behind";

  s.solver.SetFaultHook(nullptr);
  SupervisedRound after = s.supervisor->RunRound();
  EXPECT_EQ(after.rung, LadderRung::kFullTwoPhase);
  EXPECT_EQ(after.stats.delta_servers, -1) << "round after degradation was not cold";
  SupervisedRound rewarmed = s.supervisor->RunRound();
  EXPECT_GE(rewarmed.stats.delta_servers, 0);
}

TEST(SolverSupervisorTest, PersistRollbackInvalidatesResolveCache) {
  // The supervisor's own persist path (not AsyncSolver::SolveOnce): a rolled
  // back broker write must also cold-start the next round.
  FaultPlan plan;
  plan.AddBurst(FaultKind::kBrokerWriteFailure, 1, 1);
  SupervisedSetup s(plan);
  s.AddService("svc", 20);
  ASSERT_EQ(s.supervisor->RunRound().rung, LadderRung::kFullTwoPhase);
  EXPECT_FALSE(s.solver.resolve_cache().empty());

  SupervisedRound rolled_back = s.supervisor->RunRound();
  EXPECT_EQ(rolled_back.rung, LadderRung::kLastGood);
  EXPECT_GT(s.supervisor->stats().persist_failures, 0u);
  EXPECT_TRUE(s.solver.resolve_cache().empty()) << "rollback left warm state behind";

  SupervisedRound after = s.supervisor->RunRound();
  EXPECT_EQ(after.rung, LadderRung::kFullTwoPhase);
  EXPECT_EQ(after.stats.delta_servers, -1) << "round after a rollback was not cold";
}

TEST(SolverSupervisorTest, DeadlineEnforcementRejectsOverlongSolves) {
  SupervisorConfig config = SupervisedSetup::FastConfig();
  config.solve_deadline_seconds = -1.0;  // Everything is too slow.
  SupervisedSetup s(FaultPlan(), config);
  s.AddService("svc", 20);
  SupervisedRound round = s.supervisor->RunRound();
  // Every rung overshoots an impossible deadline, so the round serves from
  // last-good (empty here) and reports the deadline failure.
  EXPECT_EQ(round.rung, LadderRung::kLastGood);
  EXPECT_EQ(round.error.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace ras
