#include "src/core/lp_rounding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/initial_assignment.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

struct RoundingEnv {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  RoundingEnv() : fleet(GenerateFleet(Options())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 3;
    opts.racks_per_msb = 5;
    opts.servers_per_rack = 8;
    return opts;
  }
};

TEST(LpRoundingTest, CandidateIsFeasibleAndGood) {
  RoundingEnv env;
  for (int i = 0; i < 4; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = 25;
    spec.rru_per_type.assign(env.fleet.catalog.size(), 1.0);
    ASSERT_TRUE(env.registry.Create(spec).ok());
  }
  SolveInput input = SnapshotSolveInput(*env.broker, env.registry, env.fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  SolverConfig config;
  BuiltModel built = BuildRasModel(input, classes, config, false);

  SimplexSolver lp;
  LpResult relaxation = lp.Solve(built.model);
  ASSERT_EQ(relaxation.status, LpStatus::kOptimal);

  MipHeuristic heuristic = MakeLpRoundingHeuristic(input, classes, built);
  std::vector<double> candidate;
  ASSERT_TRUE(heuristic(built.model, relaxation.x, &candidate));
  EXPECT_TRUE(built.model.IsFeasible(candidate, 1e-5));

  // Quality: the LP-guided candidate should not be worse than the plain
  // greedy warm start, and must be within a few moves of the LP bound.
  auto warm_counts = BuildInitialCounts(input, classes, built);
  auto warm = MakeWarmStart(input, classes, built, warm_counts);
  EXPECT_LE(built.model.Objective(candidate), built.model.Objective(warm) + 1e-6);

  // All capacity covered: no shortfall slack in the candidate.
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    if (built.shortfall_vars[r] != kNoVar) {
      EXPECT_NEAR(candidate[built.shortfall_vars[r]], 0.0, 1e-6)
          << input.reservations[r].name;
    }
  }
}

TEST(LpRoundingTest, SupplyNeverViolated) {
  RoundingEnv env;
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 60;
  spec.rru_per_type.assign(env.fleet.catalog.size(), 1.0);
  ASSERT_TRUE(env.registry.Create(spec).ok());
  SolveInput input = SnapshotSolveInput(*env.broker, env.registry, env.fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, SolverConfig(), false);

  SimplexSolver lp;
  LpResult relaxation = lp.Solve(built.model);
  ASSERT_EQ(relaxation.status, LpStatus::kOptimal);
  MipHeuristic heuristic = MakeLpRoundingHeuristic(input, classes, built);
  std::vector<double> candidate;
  ASSERT_TRUE(heuristic(built.model, relaxation.x, &candidate));

  // Per-class totals never exceed the class size (the supply rows).
  for (size_t c = 0; c < classes.size(); ++c) {
    double used = 0;
    for (int k : built.class_to_vars[c]) {
      used += candidate[built.assignment_vars[static_cast<size_t>(k)].var];
    }
    EXPECT_LE(used, static_cast<double>(classes[c].count()) + 1e-9);
  }
}

TEST(LpRoundingTest, IntegersAreIntegral) {
  RoundingEnv env;
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 33;
  spec.rru_per_type.assign(env.fleet.catalog.size(), 1.0);
  ASSERT_TRUE(env.registry.Create(spec).ok());
  SolveInput input = SnapshotSolveInput(*env.broker, env.registry, env.fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, SolverConfig(), false);
  SimplexSolver lp;
  LpResult relaxation = lp.Solve(built.model);
  ASSERT_EQ(relaxation.status, LpStatus::kOptimal);
  MipHeuristic heuristic = MakeLpRoundingHeuristic(input, classes, built);
  std::vector<double> candidate;
  ASSERT_TRUE(heuristic(built.model, relaxation.x, &candidate));
  for (size_t j = 0; j < built.model.num_variables(); ++j) {
    if (built.model.variable(j).is_integer) {
      EXPECT_NEAR(candidate[j], std::round(candidate[j]), 1e-9);
    }
  }
}

}  // namespace
}  // namespace ras
