#include "src/core/explain.h"

#include <gtest/gtest.h>

#include "src/core/async_solver.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions Options() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 5;
  opts.servers_per_rack = 8;
  return opts;
}

TEST(ExplainTest, SummarizesSolvedReservation) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 40;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ReservationId id = *registry.Create(spec);

  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(broker, registry, fleet.catalog).ok());
  for (ServerId s = 0; s < broker.num_servers(); ++s) {
    broker.SetCurrent(s, broker.record(s).target);
  }

  AssignmentExplanation ex = ExplainAssignment(broker, registry, fleet.catalog, id);
  EXPECT_EQ(ex.name, "svc");
  EXPECT_GT(ex.servers, 40u);  // Capacity + buffer.
  EXPECT_NEAR(ex.total_rru, static_cast<double>(ex.servers), 1e-9);  // Count-based.
  EXPECT_GE(ex.effective_rru, 40.0 - 1e-6);
  EXPECT_NEAR(ex.shortfall_rru, 0.0, 1e-6);
  EXPECT_GE(ex.by_msb.size(), 4u);  // Spread across most of the 6 MSBs.
  EXPECT_EQ(ex.by_dc.size(), 2u);

  std::string text = ex.ToString(fleet.catalog);
  EXPECT_NE(text.find("svc"), std::string::npos);
  EXPECT_NE(text.find("survives any single-MSB loss"), std::string::npos);
  EXPECT_NE(text.find("hardware mix"), std::string::npos);
  EXPECT_EQ(text.find("SHORT"), std::string::npos);  // Fully granted.
}

TEST(ExplainTest, UnknownReservation) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  AssignmentExplanation ex = ExplainAssignment(broker, registry, fleet.catalog, 12345);
  EXPECT_EQ(ex.name, "<unknown reservation>");
  EXPECT_EQ(ex.servers, 0u);
}

TEST(ExplainTest, FlagsShortfall) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "under";
  spec.capacity_rru = 50;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ReservationId id = *registry.Create(spec);
  // Bind only 10 servers, all in one MSB: effective capacity 0.
  for (ServerId s : fleet.topology.ServersInMsb(0)) {
    if (broker.CountInReservation(id) >= 10) {
      break;
    }
    broker.SetCurrent(s, id);
  }
  AssignmentExplanation ex = ExplainAssignment(broker, registry, fleet.catalog, id);
  EXPECT_NEAR(ex.effective_rru, 0.0, 1e-9);
  EXPECT_NEAR(ex.shortfall_rru, 50.0, 1e-9);
  EXPECT_NE(ex.ToString(fleet.catalog).find("SHORT"), std::string::npos);
}

}  // namespace
}  // namespace ras
