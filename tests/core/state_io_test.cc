#include "src/core/state_io.h"

#include <gtest/gtest.h>

#include "src/core/async_solver.h"
#include "src/core/buffer_policy.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions Options() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 2;
  opts.racks_per_msb = 4;
  opts.servers_per_rack = 6;
  return opts;  // 96 servers.
}

TEST(StateIoTest, RoundTripPreservesEverything) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);

  ReservationSpec spec;
  spec.name = "svc with spaces | and pipes";
  spec.capacity_rru = 22.5;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  spec.rru_per_type[2] = 1.75;
  spec.dc_affinity[1] = 0.8;
  spec.affinity_theta = 0.07;
  spec.is_storage = true;
  spec.max_msb_fraction_hard = 0.3;
  spec.host_profile = "kernel-6.1";
  ReservationId id = *registry.Create(spec);

  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(broker, registry, fleet.catalog).ok());
  broker.SetCurrent(3, id);
  broker.SetElasticLoan(7, id, true);
  broker.SetUnavailability(11, Unavailability::kUnplannedHardware);
  broker.SetHasContainers(3, true);

  std::string text = SerializeRegionState(broker, registry);

  ResourceBroker restored_broker(&fleet.topology);
  ReservationRegistry restored_registry;
  ASSERT_TRUE(DeserializeRegionState(text, restored_broker, restored_registry).ok());

  // Registry round trip.
  ASSERT_EQ(restored_registry.size(), registry.size());
  const ReservationSpec* r = restored_registry.Find(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->name, spec.name);
  EXPECT_DOUBLE_EQ(r->capacity_rru, 22.5);
  EXPECT_DOUBLE_EQ(r->rru_per_type[2], 1.75);
  EXPECT_DOUBLE_EQ(r->dc_affinity.at(1), 0.8);
  EXPECT_DOUBLE_EQ(r->affinity_theta, 0.07);
  EXPECT_TRUE(r->is_storage);
  EXPECT_DOUBLE_EQ(r->max_msb_fraction_hard, 0.3);
  EXPECT_EQ(r->host_profile, "kernel-6.1");

  // Broker round trip.
  for (ServerId s = 0; s < broker.num_servers(); ++s) {
    const ServerRecord& a = broker.record(s);
    const ServerRecord& b = restored_broker.record(s);
    EXPECT_EQ(a.current, b.current) << "server " << s;
    EXPECT_EQ(a.target, b.target) << "server " << s;
    EXPECT_EQ(a.home, b.home) << "server " << s;
    EXPECT_EQ(a.elastic_loan, b.elastic_loan) << "server " << s;
    EXPECT_EQ(a.unavailability, b.unavailability) << "server " << s;
    EXPECT_EQ(a.has_containers, b.has_containers) << "server " << s;
  }
  // Membership indexes rebuilt consistently.
  for (const ReservationSpec* restored : restored_registry.All()) {
    EXPECT_EQ(restored_broker.CountInReservation(restored->id),
              broker.CountInReservation(restored->id));
  }
}

TEST(StateIoTest, RestoredRegistryKeepsIdsMonotonic) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "a";
  spec.capacity_rru = 5;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ReservationId old_id = *registry.Create(spec);

  std::string text = SerializeRegionState(broker, registry);
  ResourceBroker broker2(&fleet.topology);
  ReservationRegistry registry2;
  ASSERT_TRUE(DeserializeRegionState(text, broker2, registry2).ok());
  // New creations after restore never collide with restored ids.
  spec.name = "b";
  ReservationId new_id = *registry2.Create(spec);
  EXPECT_GT(new_id, old_id);
}

TEST(StateIoTest, RejectsMalformedInput) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  EXPECT_FALSE(DeserializeRegionState("not a snapshot", broker, registry).ok());
  EXPECT_FALSE(DeserializeRegionState("ras-state v1\nbogus|1|2", broker, registry).ok());
  EXPECT_FALSE(
      DeserializeRegionState("ras-state v1\nreservation|1|x", broker, registry).ok());
  // Server id out of range.
  EXPECT_FALSE(DeserializeRegionState("ras-state v1\nserver|99999|-|-|-|0|0|0", broker,
                                      registry)
                   .ok());
  // All rejections left the broker untouched.
  for (ServerId s = 0; s < broker.num_servers(); ++s) {
    EXPECT_EQ(broker.record(s).current, kUnassigned);
  }
}

TEST(StateIoTest, RejectsDuplicateIdsWithLineNumbers) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 5;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ASSERT_TRUE(registry.Create(spec).ok());
  broker.SetTarget(4, 1);
  std::string good = SerializeRegionState(broker, registry);

  // Duplicate reservation line.
  {
    std::string line = SerializeReservationRecord(*registry.Find(1));
    ResourceBroker b2(&fleet.topology);
    ReservationRegistry r2;
    Status status = DeserializeRegionState(good + line + "\n", b2, r2);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("duplicate reservation id 1"), std::string::npos)
        << status.ToString();
    EXPECT_NE(status.message().find("line "), std::string::npos) << status.ToString();
    EXPECT_EQ(r2.size(), 0u) << "failed load mutated the registry";
  }
  // Duplicate server line.
  {
    std::string line = SerializeServerRecord(broker.record(4));
    ResourceBroker b2(&fleet.topology);
    ReservationRegistry r2;
    Status status = DeserializeRegionState(good + line + "\n", b2, r2);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("duplicate server id 4"), std::string::npos)
        << status.ToString();
    EXPECT_EQ(b2.record(4).target, kUnassigned) << "failed load mutated the broker";
  }
}

TEST(StateIoTest, RejectsOutOfRangeRruValues) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  const std::string header = "ras-state v1\n";
  // Capacity beyond the corruption bound, negative capacity, non-finite
  // capacity, and a bad per-type RRU — all named by line.
  const char* kBad[] = {
      "reservation|1|svc|1e13|1|0|0|0.05|0|p|1|",
      "reservation|1|svc|-5|1|0|0|0.05|0|p|1|",
      "reservation|1|svc|inf|1|0|0|0.05|0|p|1|",
      "reservation|1|svc|10|1|0|0|0.05|0|p|1e13|",
  };
  for (const char* line : kBad) {
    ReservationRegistry r2;
    Status status = DeserializeRegionState(header + line + "\n", broker, r2);
    ASSERT_FALSE(status.ok()) << line;
    EXPECT_NE(status.message().find("line 2"), std::string::npos) << status.ToString();
    EXPECT_EQ(r2.size(), 0u);
  }
}

TEST(StateIoTest, RequiresEmptyRegistry) {
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "existing";
  spec.capacity_rru = 5;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ASSERT_TRUE(registry.Create(spec).ok());
  Status status = DeserializeRegionState("ras-state v1\n", broker, registry);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(StateIoTest, SolveResumesFromRestoredState) {
  // The operational story: snapshot, restart the control plane, re-solve —
  // stability must keep the restored assignment nearly untouched.
  Fleet fleet = GenerateFleet(Options());
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 30;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  ASSERT_TRUE(registry.Create(spec).ok());
  AsyncSolver solver;
  ASSERT_TRUE(solver.SolveOnce(broker, registry, fleet.catalog).ok());
  for (ServerId s = 0; s < broker.num_servers(); ++s) {
    broker.SetCurrent(s, broker.record(s).target);
  }

  std::string text = SerializeRegionState(broker, registry);
  ResourceBroker broker2(&fleet.topology);
  ReservationRegistry registry2;
  ASSERT_TRUE(DeserializeRegionState(text, broker2, registry2).ok());

  auto stats = solver.SolveOnce(broker2, registry2, fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->moves_total, 4u);
}

}  // namespace
}  // namespace ras
