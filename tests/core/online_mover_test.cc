#include "src/core/online_mover.h"

#include <gtest/gtest.h>

#include "src/core/buffer_policy.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

struct MoverSetup {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;
  std::unique_ptr<TwineAllocator> twine;
  std::unique_ptr<OnlineMover> mover;
  std::vector<ReservationId> buffers;

  MoverSetup() : fleet(GenerateFleet(Options())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
    twine = std::make_unique<TwineAllocator>(&fleet.catalog, broker.get());
    mover = std::make_unique<OnlineMover>(broker.get(), &registry, twine.get());
    buffers = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.05);
    // Populate buffers: bind some free servers of each type.
    for (ReservationId b : buffers) {
      const ReservationSpec* spec = registry.Find(b);
      size_t need = static_cast<size_t>(spec->capacity_rru);
      for (ServerId id = 0; id < broker->num_servers() && need > 0; ++id) {
        if (broker->record(id).current != kUnassigned) {
          continue;
        }
        if (spec->ValueOfType(fleet.topology.server(id).type) > 0) {
          broker->SetCurrent(id, b);
          broker->SetTarget(id, b);
          --need;
        }
      }
    }
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 2;
    opts.racks_per_msb = 5;
    opts.servers_per_rack = 8;
    return opts;  // 160 servers.
  }

  ReservationId AddGuaranteed(const std::string& name, double capacity) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    return *registry.Create(spec);
  }

  ReservationId AddElastic(const std::string& name) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = 0;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    spec.is_elastic = true;
    spec.needs_correlated_buffer = false;
    return *registry.Create(spec);
  }
};

TEST(OnlineMoverTest, ReconcileAppliesTargets) {
  MoverSetup s;
  ReservationId res = s.AddGuaranteed("svc", 10);
  // Target 10 free servers into the reservation.
  size_t set = 0;
  for (ServerId id = 0; id < s.broker->num_servers() && set < 10; ++id) {
    if (s.broker->record(id).current == kUnassigned) {
      s.broker->SetTarget(id, res);
      ++set;
    }
  }
  size_t moved = s.mover->ReconcileAll();
  EXPECT_EQ(moved, 10u);
  EXPECT_EQ(s.broker->CountInReservation(res), 10u);
  EXPECT_TRUE(s.broker->PendingMoves().empty());
  EXPECT_EQ(s.mover->stats().idle_moves, 10u);
}

TEST(OnlineMoverTest, ReconcilePreemptsContainers) {
  MoverSetup s;
  ReservationId res = s.AddGuaranteed("svc", 5);
  // Bind servers, run a job on them, then retarget one away.
  std::vector<ServerId> bound;
  for (ServerId id = 0; id < s.broker->num_servers() && bound.size() < 5; ++id) {
    if (s.broker->record(id).current == kUnassigned) {
      s.broker->SetCurrent(id, res);
      s.broker->SetTarget(id, res);
      bound.push_back(id);
    }
  }
  JobSpec job;
  job.name = "j";
  job.reservation = res;
  job.container = ContainerSpec{1, 1};
  job.replicas = 5;
  auto jid = s.twine->SubmitJob(job);
  ASSERT_TRUE(jid.ok());

  ServerId victim = kInvalidServer;
  for (ServerId id : bound) {
    if (s.twine->containers_on(id) > 0) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidServer);
  s.broker->SetTarget(victim, kUnassigned);
  s.mover->ReconcileAll();
  EXPECT_EQ(s.broker->record(victim).current, kUnassigned);
  EXPECT_GT(s.mover->stats().containers_preempted, 0u);
  EXPECT_EQ(s.mover->stats().in_use_moves, 1u);
  // Replica re-placed on remaining capacity.
  EXPECT_EQ(s.twine->running_containers(*jid), 5u);
}

TEST(OnlineMoverTest, FailureReplacedFromSharedBuffer) {
  MoverSetup s;
  ReservationId res = s.AddGuaranteed("svc", 10);
  std::vector<ServerId> bound;
  for (ServerId id = 0; id < s.broker->num_servers() && bound.size() < 10; ++id) {
    if (s.broker->record(id).current == kUnassigned) {
      s.broker->SetCurrent(id, res);
      bound.push_back(id);
    }
  }
  size_t before = s.broker->CountInReservation(res);
  ServerId failed = bound[0];
  s.broker->SetUnavailability(failed, Unavailability::kUnplannedHardware);
  s.mover->HandleFailure(failed);
  EXPECT_EQ(s.mover->stats().failures_replaced, 1u);
  // The reservation gained a healthy replacement (failed one still bound).
  EXPECT_EQ(s.broker->CountInReservation(res), before + 1);
}

TEST(OnlineMoverTest, FreePoolFailureIsIgnored) {
  MoverSetup s;
  ServerId free_server = kInvalidServer;
  for (ServerId id = 0; id < s.broker->num_servers(); ++id) {
    if (s.broker->record(id).current == kUnassigned) {
      free_server = id;
      break;
    }
  }
  s.broker->SetUnavailability(free_server, Unavailability::kUnplannedHardware);
  s.mover->HandleFailure(free_server);
  EXPECT_EQ(s.mover->stats().failures_replaced, 0u);
}

TEST(OnlineMoverTest, BufferFailureNotReplaced) {
  MoverSetup s;
  ASSERT_FALSE(s.buffers.empty());
  const auto& members = s.broker->ServersInReservation(s.buffers[0]);
  ASSERT_FALSE(members.empty());
  ServerId buffer_server = members[0];
  s.broker->SetUnavailability(buffer_server, Unavailability::kUnplannedHardware);
  s.mover->HandleFailure(buffer_server);
  EXPECT_EQ(s.mover->stats().failures_replaced, 0u);
}

TEST(OnlineMoverTest, ElasticLoanAndRevoke) {
  MoverSetup s;
  ReservationId elastic = s.AddElastic("batch");
  size_t loaned = s.mover->LoanIdleBuffersToElastic(elastic, 5);
  EXPECT_GT(loaned, 0u);
  EXPECT_EQ(s.broker->CountInReservation(elastic), loaned);
  for (ServerId id : s.broker->ServersInReservation(elastic)) {
    EXPECT_TRUE(s.broker->record(id).elastic_loan);
    EXPECT_NE(s.broker->record(id).home, kUnassigned);
  }

  // Revoke back to the first buffer.
  ReservationId home = s.broker->record(s.broker->ServersInReservation(elastic)[0]).home;
  size_t before = s.broker->CountInReservation(home);
  size_t revoked = s.mover->RevokeElasticLoans(home, 100);
  EXPECT_GT(revoked, 0u);
  EXPECT_EQ(s.broker->CountInReservation(home), before + revoked);
}

TEST(OnlineMoverTest, LoanToNonElasticRejected) {
  MoverSetup s;
  ReservationId normal = s.AddGuaranteed("svc", 5);
  EXPECT_EQ(s.mover->LoanIdleBuffersToElastic(normal, 5), 0u);
  EXPECT_EQ(s.mover->LoanIdleBuffersToElastic(99999, 5), 0u);
}

TEST(OnlineMoverTest, HostProfileChangesCounted) {
  MoverSetup s;
  // Two reservations with different OS requirements.
  ReservationSpec kernel_a;
  kernel_a.name = "kernel-a";
  kernel_a.capacity_rru = 5;
  kernel_a.rru_per_type.assign(s.fleet.catalog.size(), 1.0);
  kernel_a.host_profile = "kernel-5.12-hugepages";
  ReservationId a = *s.registry.Create(kernel_a);
  ReservationSpec kernel_b = kernel_a;
  kernel_b.name = "kernel-b";
  kernel_b.host_profile = "kernel-6.1-default";
  ReservationId b = *s.registry.Create(kernel_b);

  ServerId server = kInvalidServer;
  for (ServerId id = 0; id < s.broker->num_servers(); ++id) {
    if (s.broker->record(id).current == kUnassigned) {
      server = id;
      break;
    }
  }
  // Free (default profile) -> a: reprofile. a -> b: reprofile. b -> b: none.
  s.broker->SetTarget(server, a);
  s.mover->ReconcileAll();
  EXPECT_EQ(s.mover->stats().host_reprofiles, 1u);
  s.broker->SetTarget(server, b);
  s.mover->ReconcileAll();
  EXPECT_EQ(s.mover->stats().host_reprofiles, 2u);

  // Same-profile moves do not reconfigure.
  ReservationSpec kernel_b2 = kernel_b;
  kernel_b2.name = "kernel-b2";
  ReservationId b2 = *s.registry.Create(kernel_b2);
  s.broker->SetTarget(server, b2);
  s.mover->ReconcileAll();
  EXPECT_EQ(s.mover->stats().host_reprofiles, 2u);
}

TEST(OnlineMoverTest, ReplacementRevokesLoanWhenBufferDrained) {
  MoverSetup s;
  ReservationId res = s.AddGuaranteed("svc", 10);
  std::vector<ServerId> bound;
  for (ServerId id = 0; id < s.broker->num_servers() && bound.size() < 10; ++id) {
    if (s.broker->record(id).current == kUnassigned) {
      s.broker->SetCurrent(id, res);
      bound.push_back(id);
    }
  }
  // Loan out every idle buffer server; the buffers' member lists drain.
  ReservationId elastic = s.AddElastic("batch");
  size_t loaned = s.mover->LoanIdleBuffersToElastic(elastic, 10000);
  ASSERT_GT(loaned, 0u);

  ServerId failed = bound[0];
  s.broker->SetUnavailability(failed, Unavailability::kUnplannedHardware);
  s.mover->HandleFailure(failed);
  // Replacement must come by revoking an elastic loan.
  EXPECT_EQ(s.mover->stats().failures_replaced, 1u);
  EXPECT_GE(s.mover->stats().elastic_revocations, 1u);
  EXPECT_EQ(s.broker->CountInReservation(res), 11u);
}

TEST(OnlineMoverTest, FailureOfLoanedServerProtectsHome) {
  MoverSetup s;
  ReservationId elastic = s.AddElastic("batch");
  ASSERT_GT(s.mover->LoanIdleBuffersToElastic(elastic, 3), 0u);
  ServerId loaned = s.broker->ServersInReservation(elastic)[0];
  ReservationId home = s.broker->record(loaned).home;
  // Loaned server fails: its home is a shared buffer, so no replacement
  // should be drawn (buffers absorb their own random failures).
  s.broker->SetUnavailability(loaned, Unavailability::kUnplannedHardware);
  s.mover->HandleFailure(loaned);
  EXPECT_EQ(s.mover->stats().failures_replaced, 0u);
  (void)home;
}

}  // namespace
}  // namespace ras
