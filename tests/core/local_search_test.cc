#include "src/core/local_search.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/core/async_solver.h"
#include "src/core/initial_assignment.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

struct SearchEnv {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  SearchEnv() : fleet(GenerateFleet(Options())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 3;
    opts.racks_per_msb = 4;
    opts.servers_per_rack = 8;
    return opts;  // 192 servers.
  }

  ReservationId Add(const std::string& name, double capacity) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    return *registry.Create(spec);
  }

  struct Built {
    SolveInput input;
    std::vector<EquivalenceClass> classes;
    BuiltModel built;
  };
  Built Prepare() {
    Built b;
    b.input = SnapshotSolveInput(*broker, registry, fleet.catalog);
    b.classes = BuildEquivalenceClasses(b.input, Scope::kMsb);
    b.built = BuildRasModel(b.input, b.classes, SolverConfig(), false);
    return b;
  }
};

TEST(LocalSearchTest, ObjectiveMatchesModelEvaluation) {
  SearchEnv env;
  env.Add("a", 25);
  env.Add("b", 20);
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  LocalSearchOptions options;
  options.max_proposals = 20000;
  LocalSearchResult result = LocalSearchOptimize(b.input, b.classes, b.built, counts, options);

  // The incremental objective must equal the model's objective at the
  // corresponding full point, both before and after the search.
  auto warm0 = MakeWarmStart(b.input, b.classes, b.built, counts);
  EXPECT_NEAR(result.initial_objective, b.built.model.Objective(warm0),
              1e-6 * (1 + std::fabs(result.initial_objective)));
  auto warm1 = MakeWarmStart(b.input, b.classes, b.built, result.counts);
  EXPECT_NEAR(result.final_objective, b.built.model.Objective(warm1),
              1e-6 * (1 + std::fabs(result.final_objective)));
}

TEST(LocalSearchTest, NeverWorsensAndUsuallyImproves) {
  SearchEnv env;
  ReservationId a = env.Add("a", 30);
  // A deliberately bad start: everything concentrated in MSB 0.
  for (ServerId id : env.fleet.topology.ServersInMsb(0)) {
    env.broker->SetCurrent(id, a);
  }
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  LocalSearchResult result = LocalSearchOptimize(b.input, b.classes, b.built, counts);
  EXPECT_LE(result.final_objective, result.initial_objective + 1e-6);
  // The concentrated start has huge spread/buffer costs; search must fix it.
  EXPECT_LT(result.final_objective, result.initial_objective * 0.8);
  EXPECT_GT(result.accepted, 0);
}

TEST(LocalSearchTest, ResultRespectsSupplyAndFeasibility) {
  SearchEnv env;
  env.Add("a", 35);
  env.Add("b", 25);
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  LocalSearchResult result = LocalSearchOptimize(b.input, b.classes, b.built, counts);
  std::vector<double> used(b.classes.size(), 0.0);
  for (size_t k = 0; k < result.counts.size(); ++k) {
    EXPECT_GE(result.counts[k], -1e-9);
    used[static_cast<size_t>(b.built.assignment_vars[k].class_index)] += result.counts[k];
  }
  for (size_t c = 0; c < b.classes.size(); ++c) {
    EXPECT_LE(used[c], static_cast<double>(b.classes[c].count()) + 1e-9);
  }
  auto warm = MakeWarmStart(b.input, b.classes, b.built, result.counts);
  EXPECT_TRUE(b.built.model.IsFeasible(warm, 1e-6));
}

TEST(LocalSearchTest, RespectsProposalBudget) {
  SearchEnv env;
  env.Add("a", 25);
  auto b = env.Prepare();
  auto counts = BuildInitialCounts(b.input, b.classes, b.built);
  LocalSearchOptions options;
  options.max_proposals = 100;
  LocalSearchResult result = LocalSearchOptimize(b.input, b.classes, b.built, counts, options);
  EXPECT_LE(result.proposals, 100);
}

TEST(LocalSearchBackendTest, AsyncSolverWorksWithLocalSearch) {
  SearchEnv env;
  ReservationId a = env.Add("a", 30);
  SolverConfig config;
  config.backend = SolverBackend::kLocalSearch;
  AsyncSolver solver(config);
  auto stats = solver.SolveOnce(*env.broker, env.registry, env.fleet.catalog);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->total_shortfall_rru, 0.0, 1e-6);
  // Capacity + buffer granted and spread, as with the MIP backend.
  std::map<MsbId, double> per_msb;
  double total = 0;
  for (ServerId s = 0; s < env.broker->num_servers(); ++s) {
    if (env.broker->record(s).target == a) {
      per_msb[env.fleet.topology.server(s).msb] += 1;
      total += 1;
    }
  }
  double worst = 0;
  for (auto& [msb, count] : per_msb) {
    worst = std::max(worst, count);
  }
  EXPECT_GE(total - worst, 30.0 - 1e-6);
}

}  // namespace
}  // namespace ras
