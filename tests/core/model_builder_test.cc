#include "src/core/model_builder.h"

#include <gtest/gtest.h>

#include "src/core/initial_assignment.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

struct BuilderEnv {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  BuilderEnv() : fleet(GenerateFleet(Options())) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 2;
    opts.racks_per_msb = 4;
    opts.servers_per_rack = 6;
    return opts;  // 96 servers.
  }

  ReservationId AddReservation(const std::string& name, double capacity) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    return *registry.Create(spec);
  }

  SolveInput Snapshot() { return SnapshotSolveInput(*broker, registry, fleet.catalog); }
};

TEST(ModelBuilderTest, VariableAndRowCountsSane) {
  BuilderEnv s;
  s.AddReservation("a", 20);
  s.AddReservation("b", 10);
  SolveInput input = s.Snapshot();
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  SolverConfig config;
  BuiltModel built = BuildRasModel(input, classes, config, false);

  // One n-var per (class, compatible reservation): both accept every type.
  EXPECT_EQ(built.num_assignment_variables(), classes.size() * 2);
  EXPECT_EQ(built.shortfall_vars.size(), 2u);
  EXPECT_NE(built.shortfall_vars[0], kNoVar);
  EXPECT_NE(built.buffer_vars[0], kNoVar);  // Guaranteed reservations are buffered.
  EXPECT_GT(built.model.num_rows(), classes.size());  // Supply + capacity + spread...
  EXPECT_GT(built.EstimatedMemoryBytes(), 0u);
}

TEST(ModelBuilderTest, WarmStartIsFeasible) {
  BuilderEnv s;
  s.AddReservation("a", 25);
  s.AddReservation("b", 15);
  SolveInput input = s.Snapshot();
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  SolverConfig config;
  BuiltModel built = BuildRasModel(input, classes, config, false);
  auto counts = BuildInitialCounts(input, classes, built);
  auto warm = MakeWarmStart(input, classes, built, counts);
  EXPECT_TRUE(built.model.IsFeasible(warm, 1e-6));
}

TEST(ModelBuilderTest, WarmStartCoversCapacityWhenPossible) {
  BuilderEnv s;
  ReservationId id = s.AddReservation("a", 30);
  SolveInput input = s.Snapshot();
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  SolverConfig config;
  BuiltModel built = BuildRasModel(input, classes, config, false);
  auto counts = BuildInitialCounts(input, classes, built);
  auto warm = MakeWarmStart(input, classes, built, counts);
  // Shortfall slack should be zero: the region easily fits 30 + buffer.
  int r = input.ReservationIndex(id);
  ASSERT_GE(r, 0);
  EXPECT_NEAR(warm[built.shortfall_vars[r]], 0.0, 1e-6);
}

TEST(ModelBuilderTest, WarmStartReportsShortfallWhenImpossible) {
  BuilderEnv s;
  ReservationId id = s.AddReservation("huge", 100000);
  SolveInput input = s.Snapshot();
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  SolverConfig config;
  BuiltModel built = BuildRasModel(input, classes, config, false);
  auto counts = BuildInitialCounts(input, classes, built);
  auto warm = MakeWarmStart(input, classes, built, counts);
  int r = input.ReservationIndex(id);
  EXPECT_GT(warm[built.shortfall_vars[r]], 1000.0);
  EXPECT_TRUE(built.model.IsFeasible(warm, 1e-6));  // Still feasible: softened.
}

TEST(ModelBuilderTest, StabilityTermPenalizesMoveOut) {
  BuilderEnv s;
  ReservationId id = s.AddReservation("a", 10);
  // Bind 20 servers with containers, spread across the 4 MSBs (24 servers
  // each) so the embedded-buffer term does not swallow the capacity.
  for (int i = 0; i < 20; ++i) {
    ServerId sid = static_cast<ServerId>((i % 4) * 24 + i / 4);
    s.broker->SetCurrent(sid, id);
    s.broker->SetHasContainers(sid, true);
  }
  SolveInput input = s.Snapshot();
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  SolverConfig config;
  BuiltModel built = BuildRasModel(input, classes, config, false);

  // Zero assignment: every held server "moves out".
  std::vector<double> zero(built.assignment_vars.size(), 0.0);
  auto warm_zero = MakeWarmStart(input, classes, built, zero);
  // Keep-everything assignment.
  auto keep = built.initial_counts;
  auto warm_keep = MakeWarmStart(input, classes, built, keep);
  double obj_zero = built.model.Objective(warm_zero);
  double obj_keep = built.model.Objective(warm_keep);
  // Moving 20 in-use servers out costs 20 * move_cost_in_use more than keeping
  // them (modulo spread/buffer deltas, which are much smaller here).
  EXPECT_GT(obj_zero - obj_keep, 10 * config.move_cost_in_use);
}

TEST(ModelBuilderTest, BufferVarTracksWorstMsb) {
  BuilderEnv s;
  ReservationId id = s.AddReservation("a", 10);
  SolveInput input = s.Snapshot();
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  SolverConfig config;
  BuiltModel built = BuildRasModel(input, classes, config, false);

  // Assign 5 servers in one class (single MSB) and check m_r == that RRU.
  std::vector<double> counts(built.assignment_vars.size(), 0.0);
  counts[0] = 5.0;
  auto warm = MakeWarmStart(input, classes, built, counts);
  int r = built.assignment_vars[0].reservation_index;
  const EquivalenceClass& cls = classes[static_cast<size_t>(built.assignment_vars[0].class_index)];
  double v = input.reservations[static_cast<size_t>(r)].ValueOfType(cls.type);
  EXPECT_NEAR(warm[built.buffer_vars[r]], 5.0 * v, 1e-9);
  EXPECT_EQ(static_cast<ReservationId>(input.reservations[static_cast<size_t>(r)].id), id);
}

TEST(ModelBuilderTest, SubsetBuildSkipsOtherReservations) {
  BuilderEnv s;
  s.AddReservation("a", 10);
  s.AddReservation("b", 10);
  SolveInput input = s.Snapshot();
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  SolverConfig config;
  BuiltModel built = BuildRasModel(input, classes, config, false, {0});
  for (const auto& av : built.assignment_vars) {
    EXPECT_EQ(av.reservation_index, 0);
  }
  EXPECT_EQ(built.shortfall_vars[1], kNoVar);
  EXPECT_EQ(built.buffer_vars[1], kNoVar);
}

TEST(ModelBuilderTest, RackSpreadOnlyInPhase2) {
  BuilderEnv s;
  s.AddReservation("a", 10);
  SolveInput input = s.Snapshot();
  auto msb_classes = BuildEquivalenceClasses(input, Scope::kMsb);
  auto rack_classes = BuildEquivalenceClasses(input, Scope::kRack);
  SolverConfig config;
  BuiltModel p1 = BuildRasModel(input, msb_classes, config, false);
  BuiltModel p2 = BuildRasModel(input, rack_classes, config, true);
  EXPECT_TRUE(p1.rack_spread_terms.empty());
  EXPECT_FALSE(p2.rack_spread_terms.empty());
  EXPECT_FALSE(p2.msb_spread_terms.empty());  // Phase 2 keeps phase-1 goals.
}

TEST(ModelBuilderTest, SharedBufferReservationHasNoBufferVar) {
  BuilderEnv s;
  ReservationSpec buffer;
  buffer.name = "shared-buffer";
  buffer.capacity_rru = 5;
  buffer.rru_per_type.assign(s.fleet.catalog.size(), 0.0);
  buffer.rru_per_type[0] = 1.0;
  buffer.needs_correlated_buffer = false;
  buffer.is_shared_random_buffer = true;
  ASSERT_TRUE(s.registry.Create(buffer).ok());
  SolveInput input = s.Snapshot();
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, SolverConfig(), false);
  EXPECT_EQ(built.buffer_vars[0], kNoVar);
}

// Property sweep: random fleets, random reservation mixes (including
// storage quorums, affinity, restricted hardware, pre-existing bindings and
// failures) must always yield a feasible warm start — the invariant the
// whole softened-constraint design exists to guarantee.
class ModelBuilderPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelBuilderPropertyTest, WarmStartAlwaysFeasible) {
  Rng rng(7700 + GetParam());
  FleetOptions opts;
  opts.num_datacenters = 1 + static_cast<int>(rng.UniformInt(1, 2));
  opts.msbs_per_datacenter = static_cast<int>(rng.UniformInt(2, 4));
  opts.racks_per_msb = static_cast<int>(rng.UniformInt(2, 5));
  opts.servers_per_rack = static_cast<int>(rng.UniformInt(4, 8));
  opts.seed = 7000 + static_cast<uint64_t>(GetParam());
  Fleet fleet = GenerateFleet(opts);
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;

  int num_res = static_cast<int>(rng.UniformInt(1, 6));
  for (int i = 0; i < num_res; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    // Deliberately allow oversized requests: feasibility must hold anyway.
    spec.capacity_rru =
        rng.Uniform(1, 0.8 * static_cast<double>(fleet.topology.num_servers()));
    spec.rru_per_type.assign(fleet.catalog.size(), 0.0);
    int accepted = 0;
    for (size_t t = 0; t < fleet.catalog.size(); ++t) {
      if (rng.Bernoulli(0.5)) {
        spec.rru_per_type[t] = rng.Uniform(0.5, 3.0);
        ++accepted;
      }
    }
    if (accepted == 0) {
      spec.rru_per_type[0] = 1.0;
    }
    if (rng.Bernoulli(0.3)) {
      spec.dc_affinity[static_cast<DatacenterId>(
          rng.UniformInt(0, fleet.topology.num_datacenters() - 1))] = rng.Uniform(0.2, 1.3);
    }
    if (rng.Bernoulli(0.3)) {
      spec.max_msb_fraction_hard = rng.Uniform(0.15, 0.6);
      spec.is_storage = true;
    }
    auto id = registry.Create(spec);
    ASSERT_TRUE(id.ok());
    // Random pre-bindings and in-use flags.
    for (ServerId s = 0; s < broker.num_servers(); ++s) {
      if (broker.record(s).current == kUnassigned && rng.Bernoulli(0.1)) {
        broker.SetCurrent(s, *id);
        broker.SetHasContainers(s, rng.Bernoulli(0.5));
      }
    }
  }
  // Random failures and maintenance.
  for (ServerId s = 0; s < broker.num_servers(); ++s) {
    double draw = rng.NextDouble();
    if (draw < 0.05) {
      broker.SetUnavailability(s, Unavailability::kUnplannedHardware);
    } else if (draw < 0.12) {
      broker.SetUnavailability(s, Unavailability::kPlannedMaintenance);
    }
  }

  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  for (Scope scope : {Scope::kMsb, Scope::kRack}) {
    auto classes = BuildEquivalenceClasses(input, scope);
    SolverConfig config;
    BuiltModel built = BuildRasModel(input, classes, config, scope == Scope::kRack);
    auto counts = BuildInitialCounts(input, classes, built);
    auto warm = MakeWarmStart(input, classes, built, counts);
    EXPECT_TRUE(built.model.IsFeasible(warm, 1e-6))
        << "case " << GetParam() << " scope " << static_cast<int>(scope);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModelBuilderPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace ras
