#include "src/core/capacity_portal.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

struct PortalEnv {
  Fleet fleet;
  ReservationRegistry registry;
  std::unique_ptr<CapacityPortal> portal;

  PortalEnv() : fleet(GenerateFleet(Options())) {
    portal = std::make_unique<CapacityPortal>(&registry, &fleet.topology, &fleet.catalog);
  }

  static FleetOptions Options() {
    FleetOptions opts;
    opts.num_datacenters = 2;
    opts.msbs_per_datacenter = 3;
    opts.racks_per_msb = 5;
    opts.servers_per_rack = 8;
    return opts;  // 240 servers.
  }

  ReservationSpec AnySpec(const std::string& name, double capacity) {
    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    return spec;
  }
};

TEST(CapacityPortalTest, GrantsReasonableRequest) {
  PortalEnv env;
  auto id = env.portal->SubmitRequest(env.AnySpec("svc", 60));
  ASSERT_TRUE(id.ok());
  EXPECT_NE(env.registry.Find(*id), nullptr);
  ASSERT_EQ(env.portal->history().size(), 1u);
  EXPECT_EQ(env.portal->history()[0].kind, PortalEvent::Kind::kCreated);
}

TEST(CapacityPortalTest, RejectsImpossibleRequestWithReason) {
  PortalEnv env;
  auto id = env.portal->SubmitRequest(env.AnySpec("huge", 100000));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(id.status().message().find("region offers"), std::string::npos);
  EXPECT_EQ(env.registry.size(), 0u);  // Nothing created.
  ASSERT_EQ(env.portal->history().size(), 1u);
  EXPECT_EQ(env.portal->history()[0].kind, PortalEvent::Kind::kRejected);
}

TEST(CapacityPortalTest, ElasticSkipsAdmission) {
  PortalEnv env;
  ReservationSpec spec = env.AnySpec("batch", 0);
  spec.is_elastic = true;
  EXPECT_TRUE(env.portal->SubmitRequest(spec).ok());
}

TEST(CapacityPortalTest, ResizeShrinkAlwaysPasses) {
  PortalEnv env;
  auto id = env.portal->SubmitRequest(env.AnySpec("svc", 80));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(env.portal->ResizeRequest(*id, 40).ok());
  EXPECT_EQ(env.registry.Find(*id)->capacity_rru, 40.0);
}

TEST(CapacityPortalTest, ResizeGrowReAdmits) {
  PortalEnv env;
  auto id = env.portal->SubmitRequest(env.AnySpec("svc", 40));
  ASSERT_TRUE(id.ok());
  // A grow beyond the region must be rejected, leaving the old capacity.
  Status status = env.portal->ResizeRequest(*id, 100000);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(env.registry.Find(*id)->capacity_rru, 40.0);
  // A reasonable grow passes.
  EXPECT_TRUE(env.portal->ResizeRequest(*id, 60).ok());
  EXPECT_EQ(env.registry.Find(*id)->capacity_rru, 60.0);
}

TEST(CapacityPortalTest, DeleteRecordsHistory) {
  PortalEnv env;
  auto id = env.portal->SubmitRequest(env.AnySpec("svc", 30));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(env.portal->DeleteRequest(*id).ok());
  EXPECT_EQ(env.registry.Find(*id), nullptr);
  EXPECT_FALSE(env.portal->DeleteRequest(*id).ok());  // Already gone.
  ASSERT_EQ(env.portal->history().size(), 2u);
  EXPECT_EQ(env.portal->history()[1].kind, PortalEvent::Kind::kDeleted);
}

TEST(CapacityPortalTest, UpdateReAdmitsSpecChanges) {
  PortalEnv env;
  auto id = env.portal->SubmitRequest(env.AnySpec("svc", 40));
  ASSERT_TRUE(id.ok());
  // Restricting to a single rare SKU with the same capacity should be
  // rejected if that SKU cannot carry 40 RRU + buffer.
  ReservationSpec narrow = *env.registry.Find(*id);
  narrow.rru_per_type.assign(env.fleet.catalog.size(), 0.0);
  narrow.rru_per_type[env.fleet.catalog.FindByName("C7-S1")] = 1.0;  // GPU SKU, rare.
  Status status = env.portal->UpdateRequest(narrow);
  EXPECT_FALSE(status.ok());
  // Registry untouched by the failed update.
  EXPECT_GT(env.registry.Find(*id)->rru_per_type[0], 0.0);
}

TEST(CapacityPortalTest, UnknownIdsRejected) {
  PortalEnv env;
  EXPECT_EQ(env.portal->ResizeRequest(999, 10).code(), StatusCode::kNotFound);
  EXPECT_EQ(env.portal->DeleteRequest(999).code(), StatusCode::kNotFound);
  ReservationSpec ghost = env.AnySpec("ghost", 10);
  ghost.id = 999;
  EXPECT_EQ(env.portal->UpdateRequest(ghost).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ras
