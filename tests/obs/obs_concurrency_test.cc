// Hammers one MetricRegistry and one Tracer from ThreadPool workers. Run
// under TSan (the CI tsan job includes this test) to prove the sharded
// counter stripes, histogram stripes and span ring are race-free; the
// assertions prove no increments are lost.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace ras {
namespace obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 10000;

TEST(ObsConcurrencyTest, CountersLoseNothingUnderContention) {
  MetricRegistry reg;
  Counter& hot = reg.counter("ras_test_hot_total", "One counter, all threads.");
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&reg, &hot] {
      // Half the traffic through a shared handle, half through the registry
      // lookup path, so both the stripe atomics and the name map see load.
      for (int i = 0; i < kOpsPerThread; ++i) {
        hot.Add();
        reg.counter("ras_test_hot_total", "").Add();
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(hot.Value(), static_cast<uint64_t>(kThreads) * kOpsPerThread * 2);
}

TEST(ObsConcurrencyTest, HistogramCountAndSumAreExact) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("ras_test_latency_seconds", "Latency.", 0.0, 1.0, 10);
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&h, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Deterministic per-thread values: thread t observes t * 0.1 + 0.05,
        // landing every observation of thread t in bucket t.
        h.Observe(0.1 * t + 0.05);
      }
    });
  }
  pool.Wait();
  ras::Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.total(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.bucket(t), static_cast<uint64_t>(kOpsPerThread)) << "bucket " << t;
  }
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += kOpsPerThread * (0.1 * t + 0.05);
  }
  EXPECT_NEAR(h.Sum(), expected_sum, 1e-6 * expected_sum);
}

TEST(ObsConcurrencyTest, RegistrationRacesYieldOneInstance) {
  MetricRegistry reg;
  ThreadPool pool(kThreads);
  std::atomic<Counter*> seen[kThreads] = {};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&reg, &seen, t] {
      // All threads race to register the same 64 names.
      for (int i = 0; i < 64; ++i) {
        Counter& c = reg.counter("ras_test_race_" + std::to_string(i) + "_total", "");
        c.Add();
        if (i == 0) {
          seen[t].store(&c);
        }
      }
    });
  }
  pool.Wait();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].load(), seen[0].load());
  }
  EXPECT_EQ(reg.counter("ras_test_race_0_total", "").Value(),
            static_cast<uint64_t>(kThreads));
  EXPECT_EQ(reg.Counters().size(), 64u);
}

TEST(ObsConcurrencyTest, TracerSpansFromManyThreads) {
  // kThreads * 32 workers, each with one inner child, plus the root.
  Tracer tracer(/*capacity=*/kThreads * 64 + 1);
  uint64_t root_id = 0;
  {
    SpanScope root(tracer, "root");
    root_id = root.id();
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&tracer, root_id] {
        for (int i = 0; i < 32; ++i) {
          SpanScope worker(tracer, "worker", root_id);
          SpanScope inner(tracer, "inner");
        }
      });
    }
    pool.Wait();
  }
  std::vector<Span> spans = tracer.Completed();
  EXPECT_EQ(spans.size(), static_cast<size_t>(kThreads) * 32 * 2 + 1);
  EXPECT_EQ(tracer.dropped(), 0u);
  size_t workers = 0;
  for (const Span& s : spans) {
    if (s.name == "worker") {
      ++workers;
      EXPECT_EQ(s.parent, root_id);
    }
  }
  EXPECT_EQ(workers, static_cast<size_t>(kThreads) * 32);
  EXPECT_EQ(tracer.DumpTree(Tracer::Dump::kStructure),
            "root x1\n"
            "  worker x256\n"
            "    inner x256\n");
}

}  // namespace
}  // namespace obs
}  // namespace ras
