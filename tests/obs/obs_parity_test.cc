// Parity: observability must be record-only. Running the identical scenario
// with the metric registry + tracer enabled and disabled must produce
// bitwise-identical solver targets and region state — instrumentation that
// steers the solver would show up here as a digest mismatch.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/state_io.h"
#include "src/journal/checkpoint.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/scenario.h"

namespace ras {
namespace {

struct ScenarioRun {
  std::string state;       // Full serialized registry + broker bindings.
  uint32_t digest = 0;     // journal::StateDigest over the same.
  std::vector<LadderRung> rungs;  // Rung reached per round.
};

ScenarioRun RunDeterministicScenario(bool obs_enabled) {
  obs::MetricRegistry::Default().set_enabled(obs_enabled);
  obs::Tracer::Default().set_enabled(obs_enabled);

  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 2;
  options.fleet.racks_per_msb = 4;
  options.fleet.servers_per_rack = 6;
  options.fleet.seed = 1234;
  options.seed = 77;
  options.solver.phase1_mip.time_limit_seconds = 5.0;
  options.solver.phase2_mip.time_limit_seconds = 2.0;
  ScenarioRun run;
  {
    RegionScenario sim(options);
    auto profiles = MakePaperServiceProfiles();
    std::vector<ReservationId> services;
    const double capacity[3] = {30, 20, 12};
    for (int i = 0; i < 3; ++i) {
      ReservationSpec spec;
      spec.name = profiles[i].name;
      spec.capacity_rru = capacity[i];
      spec.rru_per_type = BuildRruVector(sim.fleet.catalog, profiles[i]);
      services.push_back(*sim.registry.Create(spec));
    }
    for (int round = 0; round < 3; ++round) {
      (void)sim.SolveRound();
      run.rungs.push_back(sim.supervisor->stats().rounds.back().rung);
      // Deterministic churn between rounds so re-solves have real deltas.
      ReservationSpec spec = *sim.registry.Find(services[round % services.size()]);
      spec.capacity_rru += 4.0;
      (void)sim.registry.Update(spec);
    }
    (void)sim.SolveRound();
    run.rungs.push_back(sim.supervisor->stats().rounds.back().rung);
    run.state = SerializeRegionState(*sim.broker, sim.registry);
    run.digest = journal::StateDigest(*sim.broker, sim.registry);
  }

  obs::MetricRegistry::Default().set_enabled(true);
  obs::Tracer::Default().set_enabled(true);
  return run;
}

TEST(ObsParityTest, StateIsBitwiseIdenticalWithObsOnAndOff) {
  ScenarioRun on = RunDeterministicScenario(/*obs_enabled=*/true);
  ScenarioRun off = RunDeterministicScenario(/*obs_enabled=*/false);
  EXPECT_EQ(on.rungs, off.rungs);
  EXPECT_EQ(on.digest, off.digest);
  ASSERT_EQ(on.state, off.state);
  // And the run itself is reproducible: a second enabled run matches too.
  ScenarioRun again = RunDeterministicScenario(/*obs_enabled=*/true);
  EXPECT_EQ(again.state, on.state);
}

TEST(ObsParityTest, DisabledRunRecordsNoMetrics) {
  obs::MetricRegistry::Default().ResetValues();
  obs::Tracer::Default().Clear();
  (void)RunDeterministicScenario(/*obs_enabled=*/false);
  for (const obs::Counter* c : obs::MetricRegistry::Default().Counters()) {
    EXPECT_EQ(c->Value(), 0u) << c->name();
  }
  EXPECT_TRUE(obs::Tracer::Default().Completed().empty());
}

TEST(ObsParityTest, EnabledRunRecordsRoundsAndSpans) {
  obs::MetricRegistry::Default().ResetValues();
  obs::Tracer::Default().Clear();
  (void)RunDeterministicScenario(/*obs_enabled=*/true);
  EXPECT_EQ(obs::MetricRegistry::Default()
                .counter("ras_supervisor_rounds_total", "")
                .Value(),
            4u);
  EXPECT_GT(obs::MetricRegistry::Default().counter("ras_solver_solves_total", "").Value(), 0u);
  bool saw_round_span = false;
  for (const obs::Span& s : obs::Tracer::Default().Completed()) {
    if (s.name == "round") {
      saw_round_span = true;
      // The scenario wires its event loop as the tracer's sim clock.
      EXPECT_GE(s.sim_seconds, 0);
    }
  }
  EXPECT_TRUE(saw_round_span);
}

}  // namespace
}  // namespace ras
