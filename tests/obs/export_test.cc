#include "src/obs/export.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/metrics.h"
#include "src/util/file_io.h"

namespace ras {
namespace obs {
namespace {

// Builds a small registry covering every exposition shape: plain counter,
// labelled counter family, gauge, histogram.
void FillDemoRegistry(MetricRegistry& reg) {
  reg.counter("ras_demo_events_total", "Demo events.").Add(3);
  reg.counter("ras_demo_rung_total{rung=\"FULL\"}", "Rounds per rung.").Add(2);
  reg.counter("ras_demo_rung_total{rung=\"PHASE1\"}", "Rounds per rung.").Add(1);
  reg.gauge("ras_demo_depth", "Queue depth.").Set(1.5);
  Histogram& h = reg.histogram("ras_demo_latency_seconds", "Solve latency.", 0.0, 10.0, 5);
  h.Observe(1.0);
  h.Observe(5.0);
  h.Observe(9.0);
}

TEST(PrometheusTextTest, GoldenExposition) {
  MetricRegistry reg;
  FillDemoRegistry(reg);
  const std::string expected =
      "# HELP ras_demo_events_total Demo events.\n"
      "# TYPE ras_demo_events_total counter\n"
      "ras_demo_events_total 3\n"
      "# HELP ras_demo_rung_total Rounds per rung.\n"
      "# TYPE ras_demo_rung_total counter\n"
      "ras_demo_rung_total{rung=\"FULL\"} 2\n"
      "ras_demo_rung_total{rung=\"PHASE1\"} 1\n"
      "# HELP ras_demo_depth Queue depth.\n"
      "# TYPE ras_demo_depth gauge\n"
      "ras_demo_depth 1.5\n"
      "# HELP ras_demo_latency_seconds Solve latency.\n"
      "# TYPE ras_demo_latency_seconds histogram\n"
      "ras_demo_latency_seconds_bucket{le=\"2\"} 1\n"
      "ras_demo_latency_seconds_bucket{le=\"4\"} 1\n"
      "ras_demo_latency_seconds_bucket{le=\"6\"} 2\n"
      "ras_demo_latency_seconds_bucket{le=\"8\"} 2\n"
      "ras_demo_latency_seconds_bucket{le=\"10\"} 3\n"
      "ras_demo_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "ras_demo_latency_seconds_sum 15\n"
      "ras_demo_latency_seconds_count 3\n";
  EXPECT_EQ(PrometheusText(reg), expected);
}

TEST(PrometheusTextTest, LabelledHistogramMergesLabelsWithLe) {
  MetricRegistry reg;
  Histogram& h =
      reg.histogram("ras_demo_wait_seconds{phase=\"p1\"}", "Waits.", 0.0, 2.0, 2);
  h.Observe(0.5);
  const std::string text = PrometheusText(reg);
  EXPECT_NE(text.find("ras_demo_wait_seconds_bucket{phase=\"p1\",le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ras_demo_wait_seconds_sum{phase=\"p1\"} 0.5\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ras_demo_wait_seconds_count{phase=\"p1\"} 1\n"), std::string::npos)
      << text;
}

TEST(PrometheusTextTest, EmptyRegistryIsEmptyText) {
  MetricRegistry reg;
  EXPECT_EQ(PrometheusText(reg), "");
}

TEST(JsonSnapshotTest, GoldenSnapshot) {
  MetricRegistry reg;
  FillDemoRegistry(reg);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"ras_demo_events_total\": 3,\n"
      "    \"ras_demo_rung_total{rung=\\\"FULL\\\"}\": 2,\n"
      "    \"ras_demo_rung_total{rung=\\\"PHASE1\\\"}\": 1\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"ras_demo_depth\": 1.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"ras_demo_latency_seconds\": {\"lo\": 0, \"hi\": 10, "
      "\"buckets\": [1, 0, 1, 0, 1], \"count\": 3, \"sum\": 15, "
      "\"p50\": 5, \"p95\": 9.7, \"p99\": 9.94}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(JsonSnapshot(reg), expected);
}

TEST(JsonSnapshotTest, EmptyRegistryIsValidShape) {
  MetricRegistry reg;
  EXPECT_EQ(JsonSnapshot(reg),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n");
}

TEST(WriteSnapshotFilesTest, WritesBothFormats) {
  MetricRegistry reg;
  FillDemoRegistry(reg);
  const std::string dir = ::testing::TempDir() + "/obs_export_test";
  ASSERT_TRUE(WriteSnapshotFiles(reg, dir).ok());
  auto prom = ReadFileToString(dir + "/metrics.prom");
  auto json = ReadFileToString(dir + "/metrics.json");
  ASSERT_TRUE(prom.ok());
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(*prom, PrometheusText(reg));
  EXPECT_EQ(*json, JsonSnapshot(reg));
}

}  // namespace
}  // namespace obs
}  // namespace ras
