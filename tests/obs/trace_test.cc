#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ras {
namespace obs {
namespace {

TEST(TracerTest, SpanScopeNestsImplicitly) {
  Tracer tracer;
  {
    SpanScope round(tracer, "round");
    EXPECT_EQ(CurrentSpanId(), round.id());
    {
      SpanScope phase(tracer, "phase1");
      EXPECT_EQ(CurrentSpanId(), phase.id());
    }
    EXPECT_EQ(CurrentSpanId(), round.id());
  }
  EXPECT_EQ(CurrentSpanId(), 0u);
  std::vector<Span> spans = tracer.Completed();
  ASSERT_EQ(spans.size(), 2u);
  // Inner span completes first; its parent is the outer span.
  EXPECT_EQ(spans[0].name, "phase1");
  EXPECT_EQ(spans[1].name, "round");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_GE(spans[0].wall_end_s, spans[0].wall_start_s);
}

TEST(TracerTest, ExplicitParentCrossesThreadBoundaryShape) {
  Tracer tracer;
  uint64_t fanout_id = 0;
  {
    SpanScope fanout(tracer, "shard_fanout");
    fanout_id = fanout.id();
    // A worker with no thread-local context attaches via the explicit parent.
    SpanScope shard(tracer, "shard", fanout_id);
    EXPECT_EQ(CurrentSpanId(), shard.id());
  }
  std::vector<Span> spans = tracer.Completed();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "shard");
  EXPECT_EQ(spans[0].parent, fanout_id);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  {
    SpanScope s(tracer, "round");
    EXPECT_EQ(s.id(), 0u);
    EXPECT_EQ(CurrentSpanId(), 0u);
  }
  EXPECT_TRUE(tracer.Completed().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, RingBufferDropsOldestAndCounts) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    SpanScope s(tracer, "span" + std::to_string(i));
  }
  std::vector<Span> spans = tracer.Completed();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Oldest-first view of the survivors.
  EXPECT_EQ(spans[0].name, "span6");
  EXPECT_EQ(spans[3].name, "span9");
}

TEST(TracerTest, SimClockStampsSpans) {
  Tracer tracer;
  int64_t now = 100;
  tracer.set_sim_clock([&now] { return now; });
  {
    SpanScope s(tracer, "round");
    now = 200;  // Moves while the span is open; the span records its start.
  }
  tracer.set_sim_clock(nullptr);
  {
    SpanScope s(tracer, "unclocked");
  }
  std::vector<Span> spans = tracer.Completed();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].sim_seconds, 100);
  EXPECT_EQ(spans[1].sim_seconds, -1);
}

TEST(TracerTest, DumpTreeAggregatesSiblingsByName) {
  Tracer tracer;
  {
    SpanScope round(tracer, "round");
    for (int phase = 0; phase < 2; ++phase) {
      SpanScope p(tracer, "phase");
      for (int shard = 0; shard < 3; ++shard) {
        SpanScope s(tracer, "shard");
      }
    }
  }
  std::string tree = tracer.DumpTree(Tracer::Dump::kStructure);
  EXPECT_EQ(tree,
            "round x1\n"
            "  phase x2\n"
            "    shard x6\n");
}

TEST(TracerTest, DumpTreeIsDeterministicAcrossCompletionOrder) {
  // Two tracers record the same logical tree; the second finishes children in
  // a different interleaving. The structure dump must match exactly.
  auto build = [](Tracer& tracer, bool reversed) {
    SpanScope round(tracer, "round");
    uint64_t parent = round.id();
    if (!reversed) {
      SpanScope a(tracer, "alpha", parent);
      SpanScope b(tracer, "beta", parent);
    } else {
      uint64_t a = tracer.StartSpan("alpha", parent);
      uint64_t b = tracer.StartSpan("beta", parent);
      tracer.EndSpan(a);  // Ends in start order this time, not reverse.
      tracer.EndSpan(b);
    }
  };
  Tracer one;
  Tracer two;
  build(one, false);
  build(two, true);
  EXPECT_EQ(one.DumpTree(Tracer::Dump::kStructure), two.DumpTree(Tracer::Dump::kStructure));
}

TEST(TracerTest, ClearResetsSpansAndDropCount) {
  Tracer tracer(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    SpanScope s(tracer, "s");
  }
  EXPECT_GT(tracer.dropped(), 0u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Completed().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace ras
