#include "src/obs/metrics.h"

#include <gtest/gtest.h>

namespace ras {
namespace obs {
namespace {

TEST(CounterTest, AddAndValue) {
  MetricRegistry reg;
  Counter& c = reg.counter("ras_test_events_total", "Test events.");
  EXPECT_EQ(c.Value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  EXPECT_EQ(c.name(), "ras_test_events_total");
  EXPECT_EQ(c.help(), "Test events.");
}

TEST(CounterTest, FindOrCreateReturnsSameInstance) {
  MetricRegistry reg;
  Counter& a = reg.counter("ras_test_events_total", "Test events.");
  Counter& b = reg.counter("ras_test_events_total", "ignored on re-request");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3);
}

TEST(GaugeTest, SetOverwrites) {
  MetricRegistry reg;
  Gauge& g = reg.gauge("ras_test_depth", "Queue depth.");
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(7.5);
  g.Set(2.25);
  EXPECT_EQ(g.Value(), 2.25);
}

TEST(HistogramTest, ObserveClampsLikeUtilHistogram) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("ras_test_latency_seconds", "Latency.", 0.0, 10.0, 5);
  h.Observe(0.5);    // Bucket 0.
  h.Observe(9.5);    // Bucket 4.
  h.Observe(-3.0);   // Clamps to bucket 0.
  h.Observe(42.0);   // Clamps to bucket 4.
  h.Observe(5.0);    // Bucket 2 (boundary goes up).
  ras::Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.total(), 5u);
  EXPECT_EQ(snap.bucket(0), 2u);
  EXPECT_EQ(snap.bucket(2), 1u);
  EXPECT_EQ(snap.bucket(4), 2u);
  EXPECT_EQ(h.Count(), 5u);
  // The sum tracks the raw observations, not the clamped buckets.
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 9.5 - 3.0 + 42.0 + 5.0);
}

TEST(HistogramTest, SnapshotAnswersPercentiles) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("ras_test_latency_seconds", "Latency.", 0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Observe(2.5);
  }
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(100), 3.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(50), 2.5);
}

TEST(MetricRegistryTest, DisabledMetricsFreeze) {
  MetricRegistry reg;
  Counter& c = reg.counter("ras_test_events_total", "Test events.");
  Gauge& g = reg.gauge("ras_test_depth", "Depth.");
  Histogram& h = reg.histogram("ras_test_latency_seconds", "Latency.", 0.0, 1.0, 4);
  c.Add(5);
  g.Set(1.0);
  h.Observe(0.5);
  reg.set_enabled(false);
  c.Add(100);
  g.Set(9.0);
  h.Observe(0.9);
  EXPECT_EQ(c.Value(), 5);
  EXPECT_EQ(g.Value(), 1.0);
  EXPECT_EQ(h.Count(), 1u);
  reg.set_enabled(true);
  c.Add(1);
  EXPECT_EQ(c.Value(), 6);
}

TEST(MetricRegistryTest, ResetValuesKeepsRegistrationsAndHandles) {
  MetricRegistry reg;
  Counter& c = reg.counter("ras_test_events_total", "Test events.");
  Histogram& h = reg.histogram("ras_test_latency_seconds", "Latency.", 0.0, 1.0, 4);
  c.Add(10);
  h.Observe(0.5);
  reg.ResetValues();
  // Outstanding references stay valid and read zero.
  EXPECT_EQ(c.Value(), 0);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  // The registration survived: re-requesting yields the same instance.
  EXPECT_EQ(&reg.counter("ras_test_events_total", ""), &c);
  c.Add(2);
  EXPECT_EQ(c.Value(), 2);
}

TEST(MetricRegistryTest, ViewsAreNameOrderedAndKindFiltered) {
  MetricRegistry reg;
  reg.counter("ras_b_total", "b");
  reg.counter("ras_a_total", "a");
  reg.gauge("ras_c_depth", "c");
  reg.histogram("ras_d_seconds", "d", 0.0, 1.0, 2);
  auto counters = reg.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0]->name(), "ras_a_total");
  EXPECT_EQ(counters[1]->name(), "ras_b_total");
  ASSERT_EQ(reg.Gauges().size(), 1u);
  EXPECT_EQ(reg.Gauges()[0]->name(), "ras_c_depth");
  ASSERT_EQ(reg.Histograms().size(), 1u);
  EXPECT_EQ(reg.Histograms()[0]->name(), "ras_d_seconds");
}

TEST(MetricRegistryTest, DefaultIsProcessWideSingleton) {
  MetricRegistry& a = MetricRegistry::Default();
  MetricRegistry& b = MetricRegistry::Default();
  EXPECT_EQ(&a, &b);
}

TEST(MetricRegistryTest, LabelledSeriesAreDistinctMetrics) {
  MetricRegistry reg;
  Counter& full = reg.counter("ras_test_rung_total{rung=\"FULL\"}", "Rounds per rung.");
  Counter& degraded = reg.counter("ras_test_rung_total{rung=\"PHASE1\"}", "Rounds per rung.");
  EXPECT_NE(&full, &degraded);
  full.Add(2);
  degraded.Add(1);
  EXPECT_EQ(full.Value(), 2);
  EXPECT_EQ(degraded.Value(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace ras
