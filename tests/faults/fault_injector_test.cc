#include "src/faults/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace ras {
namespace {

TEST(FaultPlanTest, BurstCoversExactWindow) {
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSolverCrash, 3, 4);
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_EQ(plan.rules[0].first_round, 3);
  EXPECT_EQ(plan.rules[0].last_round, 6);
  EXPECT_EQ(plan.rules[0].probability, 1.0);
}

TEST(FaultInjectorTest, CertainBurstFiresOnlyInsideWindow) {
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSolverCrash, 2, 3);
  FaultInjector injector(plan);
  for (int round = 0; round < 8; ++round) {
    injector.BeginRound(round, SimTime{round * 3600});
    bool inside = round >= 2 && round <= 4;
    EXPECT_EQ(injector.Armed(FaultKind::kSolverCrash), inside) << "round " << round;
    EXPECT_EQ(injector.Fires(FaultKind::kSolverCrash), inside) << "round " << round;
    EXPECT_FALSE(injector.Fires(FaultKind::kSolverTimeout)) << "round " << round;
  }
  EXPECT_EQ(injector.fired_count(FaultKind::kSolverCrash), 3u);
  EXPECT_EQ(injector.total_fired(), 3u);
}

TEST(FaultInjectorTest, ZeroProbabilityNeverFires) {
  FaultPlan plan;
  plan.AddBurst(FaultKind::kBrokerWriteFailure, 0, 1000, 0.0);
  FaultInjector injector(plan);
  for (int round = 0; round < 50; ++round) {
    injector.BeginRound(round, SimTime{0});
    EXPECT_TRUE(injector.Armed(FaultKind::kBrokerWriteFailure));
    EXPECT_FALSE(injector.Fires(FaultKind::kBrokerWriteFailure));
  }
}

TEST(FaultInjectorTest, TimeWindowGatesRules) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kSnapshotStale;
  rule.not_before = SimTime{Hours(2).seconds};
  rule.not_after = SimTime{Hours(4).seconds};
  plan.Add(rule);
  FaultInjector injector(plan);

  injector.BeginRound(0, SimTime{Hours(1).seconds});
  EXPECT_FALSE(injector.Fires(FaultKind::kSnapshotStale));
  injector.AdvanceTime(SimTime{Hours(3).seconds});
  EXPECT_TRUE(injector.Fires(FaultKind::kSnapshotStale));
  injector.AdvanceTime(SimTime{Hours(5).seconds});
  EXPECT_FALSE(injector.Fires(FaultKind::kSnapshotStale));
}

TEST(FaultInjectorTest, DeterministicAcrossInstances) {
  FaultPlan plan;
  plan.seed = 99;
  plan.AddBurst(FaultKind::kSolverTimeout, 0, 100, 0.4);
  plan.AddBurst(FaultKind::kSolverCrash, 0, 100, 0.15);

  auto draw_sequence = [&plan]() {
    FaultInjector injector(plan);
    std::vector<bool> fired;
    for (int round = 0; round < 100; ++round) {
      injector.BeginRound(round, SimTime{0});
      // Several queries per round, as retries would make.
      for (int attempt = 0; attempt < 3; ++attempt) {
        fired.push_back(injector.Fires(FaultKind::kSolverTimeout));
      }
      fired.push_back(injector.Fires(FaultKind::kSolverCrash));
    }
    return fired;
  };
  std::vector<bool> a = draw_sequence();
  std::vector<bool> b = draw_sequence();
  EXPECT_EQ(a, b);
  // Sanity: a 40% rule over 300 draws fires a plausible number of times.
  size_t timeouts = 0;
  for (size_t i = 0; i < a.size(); i += 4) {
    timeouts += a[i] + a[i + 1] + a[i + 2];
  }
  EXPECT_GT(timeouts, 60u);
  EXPECT_LT(timeouts, 180u);
}

TEST(FaultInjectorTest, KindStreamsAreIndependent) {
  // Querying one kind must not perturb another kind's draws in the round.
  FaultPlan plan;
  plan.seed = 7;
  plan.AddBurst(FaultKind::kSolverTimeout, 0, 50, 0.5);
  plan.AddBurst(FaultKind::kSolverCrash, 0, 50, 0.5);

  FaultInjector lone(plan);
  FaultInjector mixed(plan);
  for (int round = 0; round < 50; ++round) {
    lone.BeginRound(round, SimTime{0});
    mixed.BeginRound(round, SimTime{0});
    // `mixed` interleaves crash queries; `lone` does not.
    mixed.Fires(FaultKind::kSolverCrash);
    bool a = lone.Fires(FaultKind::kSolverTimeout);
    bool b = mixed.Fires(FaultKind::kSolverTimeout);
    EXPECT_EQ(a, b) << "round " << round;
    mixed.Fires(FaultKind::kSolverCrash);
  }
}

TEST(FaultInjectorTest, CorruptSnapshotIsDetectable) {
  // Build a minimal valid-shaped input; corruption must plant damage that
  // ValidateSolveInput rejects.
  FaultPlan plan;
  plan.AddBurst(FaultKind::kSnapshotCorruption, 0, 1);
  FaultInjector injector(plan);

  SolveInput input;
  ReservationSpec spec;
  spec.id = 1;
  spec.name = "svc";
  spec.capacity_rru = 10;
  spec.rru_per_type = {1.0};
  input.reservations.push_back(spec);
  input.servers.resize(16);
  injector.CorruptSnapshot(input);

  bool damaged = input.servers.size() != 16;
  for (const ServerSolveState& s : input.servers) {
    damaged = damaged || (s.current != kUnassigned && s.current != 1);
  }
  for (const ReservationSpec& r : input.reservations) {
    damaged = damaged || r.capacity_rru < 0.0;
  }
  EXPECT_TRUE(damaged);
}

TEST(FaultKindTest, NamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kSolverTimeout), "SOLVER_TIMEOUT");
  EXPECT_STREQ(FaultKindName(FaultKind::kSolverCrash), "SOLVER_CRASH");
  EXPECT_STREQ(FaultKindName(FaultKind::kSnapshotCorruption), "SNAPSHOT_CORRUPTION");
  EXPECT_STREQ(FaultKindName(FaultKind::kSnapshotStale), "SNAPSHOT_STALE");
  EXPECT_STREQ(FaultKindName(FaultKind::kBrokerWriteFailure), "BROKER_WRITE_FAILURE");
}

}  // namespace
}  // namespace ras
