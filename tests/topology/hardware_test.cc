#include "src/topology/hardware.h"

#include <gtest/gtest.h>

#include <set>

namespace ras {
namespace {

TEST(HardwareCatalogTest, AddAndLookup) {
  HardwareCatalog catalog;
  HardwareType t;
  t.name = "X1";
  t.compute_units = 2.0;
  auto id = catalog.Add(t);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.type(*id).name, "X1");
  EXPECT_EQ(catalog.FindByName("X1"), *id);
  EXPECT_EQ(catalog.FindByName("nope"), kInvalidHardwareType);
}

TEST(HardwareCatalogTest, RejectsDuplicateNames) {
  HardwareCatalog catalog;
  HardwareType t;
  t.name = "X1";
  ASSERT_TRUE(catalog.Add(t).ok());
  auto dup = catalog.Add(t);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(PaperCatalogTest, MatchesPaperShape) {
  HardwareCatalog catalog = MakePaperCatalog();
  // Figure 2: nine hardware categories, twelve subtypes total.
  std::set<uint16_t> categories;
  for (const HardwareType& t : catalog.types()) {
    categories.insert(t.category);
  }
  EXPECT_EQ(categories.size(), 8u);  // C1..C8 modeled (C9 of the figure folded into C8).
  EXPECT_EQ(catalog.size(), 12u);    // Twelve SKUs, as in the figure.
}

TEST(PaperCatalogTest, GenerationsSpanThree) {
  HardwareCatalog catalog = MakePaperCatalog();
  std::set<int> gens;
  for (const HardwareType& t : catalog.types()) {
    gens.insert(t.cpu_generation);
  }
  EXPECT_EQ(gens, (std::set<int>{1, 2, 3}));
}

TEST(PaperCatalogTest, NewerGenerationsFaster) {
  // Figure 3's premise: within the web-tier line, Gen III > Gen II > Gen I.
  HardwareCatalog catalog = MakePaperCatalog();
  double gen1 = catalog.type(catalog.FindByName("C1")).compute_units;
  double gen2 = catalog.type(catalog.FindByName("C2-S1")).compute_units;
  double gen3 = catalog.type(catalog.FindByName("C3")).compute_units;
  EXPECT_LT(gen1, gen2);
  EXPECT_LT(gen2, gen3);
}

TEST(PaperCatalogTest, HasGpuAndStorageSkus) {
  HardwareCatalog catalog = MakePaperCatalog();
  bool any_gpu = false;
  bool any_flash = false;
  for (const HardwareType& t : catalog.types()) {
    any_gpu |= t.has_gpu;
    any_flash |= t.flash_tb > 8;
  }
  EXPECT_TRUE(any_gpu);
  EXPECT_TRUE(any_flash);
}

}  // namespace
}  // namespace ras
