#include "src/topology/topology.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

RegionTopology MakeSmallRegion() {
  // 2 DCs x 2 MSBs x 2 racks x 3 servers = 24 servers.
  RegionTopology topo;
  for (int d = 0; d < 2; ++d) {
    DatacenterId dc = topo.AddDatacenter();
    for (int m = 0; m < 2; ++m) {
      MsbId msb = *topo.AddMsb(dc);
      for (int r = 0; r < 2; ++r) {
        RackId rack = *topo.AddRack(msb);
        for (int s = 0; s < 3; ++s) {
          (void)*topo.AddServer(rack, static_cast<HardwareTypeId>(s % 2));
        }
      }
    }
  }
  topo.Finalize();
  return topo;
}

TEST(TopologyTest, Counts) {
  RegionTopology topo = MakeSmallRegion();
  EXPECT_EQ(topo.num_datacenters(), 2u);
  EXPECT_EQ(topo.num_msbs(), 4u);
  EXPECT_EQ(topo.num_racks(), 8u);
  EXPECT_EQ(topo.num_servers(), 24u);
}

TEST(TopologyTest, ServerPlacementChain) {
  RegionTopology topo = MakeSmallRegion();
  for (const Server& s : topo.servers()) {
    EXPECT_EQ(s.msb, topo.rack_msb(s.rack));
    EXPECT_EQ(s.dc, topo.msb_datacenter(s.msb));
    EXPECT_EQ(s.dc, topo.rack_datacenter(s.rack));
  }
}

TEST(TopologyTest, InvalidParentsRejected) {
  RegionTopology topo;
  EXPECT_FALSE(topo.AddMsb(3).ok());
  DatacenterId dc = topo.AddDatacenter();
  (void)dc;
  EXPECT_FALSE(topo.AddRack(9).ok());
  EXPECT_FALSE(topo.AddServer(5, 0).ok());
}

TEST(TopologyTest, GroupOfMatchesScope) {
  RegionTopology topo = MakeSmallRegion();
  const Server& s = topo.server(13);
  EXPECT_EQ(topo.GroupOf(Scope::kRack, s.id), s.rack);
  EXPECT_EQ(topo.GroupOf(Scope::kMsb, s.id), s.msb);
  EXPECT_EQ(topo.GroupOf(Scope::kDatacenter, s.id), s.dc);
}

TEST(TopologyTest, GroupCounts) {
  RegionTopology topo = MakeSmallRegion();
  EXPECT_EQ(topo.GroupCount(Scope::kRack), 8u);
  EXPECT_EQ(topo.GroupCount(Scope::kMsb), 4u);
  EXPECT_EQ(topo.GroupCount(Scope::kDatacenter), 2u);
}

TEST(TopologyTest, MembershipIndexesCoverEveryServerOnce) {
  RegionTopology topo = MakeSmallRegion();
  size_t total = 0;
  for (MsbId m = 0; m < topo.num_msbs(); ++m) {
    for (ServerId id : topo.ServersInMsb(m)) {
      EXPECT_EQ(topo.server(id).msb, m);
      ++total;
    }
  }
  EXPECT_EQ(total, topo.num_servers());

  total = 0;
  for (RackId r = 0; r < topo.num_racks(); ++r) {
    total += topo.ServersInRack(r).size();
  }
  EXPECT_EQ(total, topo.num_servers());

  total = 0;
  for (DatacenterId d = 0; d < topo.num_datacenters(); ++d) {
    total += topo.ServersInDatacenter(d).size();
  }
  EXPECT_EQ(total, topo.num_servers());
}

TEST(TopologyTest, FinalizedFlag) {
  RegionTopology topo;
  EXPECT_FALSE(topo.finalized());
  topo.Finalize();
  EXPECT_TRUE(topo.finalized());
}

}  // namespace
}  // namespace ras
