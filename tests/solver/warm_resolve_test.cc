// Tests for SimplexSolver::ResolveWithBasis — the cross-node basis reuse
// that makes branch-and-bound children cheap.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/solver/simplex.h"
#include "src/util/rng.h"

namespace ras {
namespace {

constexpr double kTol = 1e-6;

// Random feasible-by-construction LP shared by the tests below.
Model RandomLp(uint64_t seed, int n, int rows, std::vector<double>* ref_out) {
  Rng rng(seed);
  Model m;
  std::vector<double> ref(n);
  for (int j = 0; j < n; ++j) {
    double lb = rng.Uniform(-4, 0);
    double ub = lb + rng.Uniform(2, 9);
    ref[j] = rng.Uniform(lb, ub);
    m.AddContinuous(lb, ub, rng.Uniform(-3, 3));
  }
  for (int i = 0; i < rows; ++i) {
    RowId r = m.AddRow(0, 0);
    double activity = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.5)) {
        double c = rng.Uniform(-2, 2);
        m.AddCoefficient(r, j, c);
        activity += c * ref[j];
      }
    }
    m.SetRowBounds(r, activity - rng.Uniform(0.5, 4), activity + rng.Uniform(0.5, 4));
  }
  if (ref_out != nullptr) {
    *ref_out = ref;
  }
  return m;
}

TEST(WarmResolveTest, MatchesColdSolveAfterBoundChange) {
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ref;
    Model m = RandomLp(7000 + static_cast<uint64_t>(trial), 10, 7, &ref);
    SimplexSolver warm_solver;
    LpResult base = warm_solver.Solve(m);
    ASSERT_EQ(base.status, LpStatus::kOptimal);

    // Tighten one variable's bounds around the reference point (guaranteed
    // to stay feasible) and compare warm vs cold resolves.
    Rng rng(7100 + static_cast<uint64_t>(trial));
    VarId var = static_cast<VarId>(rng.UniformInt(0, 9));
    double lo = std::max(ref[var] - 0.25, m.variable(var).lb);
    double hi = std::min(ref[var] + 0.25, m.variable(var).ub);
    std::vector<BoundOverride> overrides = {BoundOverride{var, lo, hi}};

    LpResult warm = warm_solver.ResolveWithBasis(m, overrides);
    SimplexSolver cold_solver;
    LpResult cold = cold_solver.Solve(m, overrides);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-5) << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(warm.x, 1e-5));
  }
}

TEST(WarmResolveTest, WarmIsCheaperThanCold) {
  std::vector<double> ref;
  Model m = RandomLp(8001, 40, 25, &ref);
  SimplexSolver solver;
  LpResult base = solver.Solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  LpResult warm = solver.ResolveWithBasis(m, {BoundOverride{0, ref[0] - 0.1, ref[0] + 0.1}});
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  // The warm resolve should take far fewer pivots than the cold solve.
  EXPECT_LT(warm.iterations, std::max<int64_t>(base.iterations / 2, 6));
}

TEST(WarmResolveTest, DetectsInfeasibleBoundsAndRecovers) {
  std::vector<double> ref;
  Model m = RandomLp(8002, 8, 5, &ref);
  SimplexSolver solver;
  ASSERT_EQ(solver.Solve(m).status, LpStatus::kOptimal);
  // Empty range: infeasible, without destroying the retained basis.
  LpResult bad = solver.ResolveWithBasis(m, {BoundOverride{0, 1.0, 0.5}});
  EXPECT_EQ(bad.status, LpStatus::kInfeasible);
  // The solver still warm-resolves correctly afterwards.
  LpResult good = solver.ResolveWithBasis(m, {});
  ASSERT_EQ(good.status, LpStatus::kOptimal);
  SimplexSolver cold;
  EXPECT_NEAR(good.objective, cold.Solve(m).objective, 1e-5);
}

TEST(WarmResolveTest, FallsBackToColdForDifferentModel) {
  std::vector<double> ref;
  Model a = RandomLp(8003, 6, 4, &ref);
  Model b = RandomLp(8004, 9, 5, &ref);
  SimplexSolver solver;
  ASSERT_EQ(solver.Solve(a).status, LpStatus::kOptimal);
  // Different shape: must not reuse the basis; result must match cold.
  LpResult warm_b = solver.ResolveWithBasis(b, {});
  SimplexSolver cold;
  LpResult cold_b = cold.Solve(b);
  ASSERT_EQ(warm_b.status, cold_b.status);
  if (warm_b.status == LpStatus::kOptimal) {
    EXPECT_NEAR(warm_b.objective, cold_b.objective, 1e-5);
  }
}

TEST(WarmResolveTest, MatchesColdSolveAfterRowBoundChange) {
  // Cross-round model patching changes RHS ranges in place
  // (Model::UpdateRowBounds); the retained basis must survive, because the
  // basis matrix depends only on the coefficients, and the warm resolve must
  // land on the same optimum as a cold solve of the patched model.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ref;
    Model m = RandomLp(7300 + static_cast<uint64_t>(trial), 10, 7, &ref);
    SimplexSolver warm_solver;
    LpResult base = warm_solver.Solve(m);
    ASSERT_EQ(base.status, LpStatus::kOptimal);

    // Widen or shift each row's range around its reference activity; the
    // reference point stays feasible, so the patched LP stays feasible.
    Rng rng(7400 + static_cast<uint64_t>(trial));
    for (size_t r = 0; r < m.num_rows(); ++r) {
      if (!rng.Bernoulli(0.5)) {
        continue;
      }
      double activity = 0.0;
      for (const RowEntry& e : m.row_entries(r)) {
        activity += e.coeff * ref[static_cast<size_t>(e.var)];
      }
      m.UpdateRowBounds(static_cast<RowId>(r), activity - rng.Uniform(0.3, 3),
                        activity + rng.Uniform(0.3, 3));
    }

    LpResult warm = warm_solver.ResolveWithBasis(m, {});
    SimplexSolver cold_solver;
    LpResult cold = cold_solver.Solve(m);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-5) << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(warm.x, 1e-5));
  }
}

TEST(WarmResolveTest, MatchesColdSolveAfterObjectiveChange) {
  // Acquire costs flip between 0 and config.acquire_cost when a class's
  // current holder changes round-over-round (Model::UpdateObjectiveCost);
  // bases stay primal-feasible under any cost change, so the warm resolve is
  // pure phase-2 pivoting and must match a cold solve.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ref;
    Model m = RandomLp(7500 + static_cast<uint64_t>(trial), 10, 7, &ref);
    SimplexSolver warm_solver;
    ASSERT_EQ(warm_solver.Solve(m).status, LpStatus::kOptimal);

    Rng rng(7600 + static_cast<uint64_t>(trial));
    for (size_t j = 0; j < m.num_variables(); ++j) {
      if (rng.Bernoulli(0.4)) {
        m.UpdateObjectiveCost(static_cast<VarId>(j), rng.Uniform(-3, 3));
      }
    }

    LpResult warm = warm_solver.ResolveWithBasis(m, {});
    SimplexSolver cold_solver;
    LpResult cold = cold_solver.Solve(m);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-5) << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(warm.x, 1e-5));
  }
}

TEST(WarmResolveTest, SingularStaleBasisDetectedOnImport) {
  // A stale cross-round basis can be singular against the current model
  // (e.g. coefficients changed underneath it). ImportBasis must detect this
  // during its from-scratch refactorization and refuse — leaving the solver
  // cold and correct — never install it and return garbage.
  Model m;
  m.AddContinuous(0, 10, -1.0);
  m.AddContinuous(0, 10, -1.0);
  RowId r0 = m.AddRow(0, 10);
  m.AddCoefficient(r0, 0, 1.0);
  m.AddCoefficient(r0, 1, 1.0);
  RowId r1 = m.AddRow(0, 20);
  m.AddCoefficient(r1, 0, 2.0);
  m.AddCoefficient(r1, 1, 2.0);

  // Both structural columns basic: (1,2) and (1,2) — a singular basis matrix
  // with a shape fingerprint that matches the model exactly.
  SimplexBasis stale;
  stale.basic = {0, 1};
  stale.status = {0, 0, 1, 1};  // kBasic, kBasic, kAtLower, kAtLower.
  stale.rows = m.num_rows();
  stale.vars = m.num_variables();
  stale.nonzeros = 4;

  SimplexSolver solver;
  EXPECT_FALSE(solver.ImportBasis(m, stale));

  // The refused import leaves the solver cold: the next resolve falls back
  // to a from-scratch solve and matches an independent cold solver.
  LpResult after = solver.ResolveWithBasis(m, {});
  SimplexSolver cold;
  LpResult reference = cold.Solve(m);
  ASSERT_EQ(after.status, LpStatus::kOptimal);
  ASSERT_EQ(reference.status, LpStatus::kOptimal);
  EXPECT_NEAR(after.objective, reference.objective, 1e-6);
  EXPECT_TRUE(m.IsFeasible(after.x, 1e-6));
}

TEST(WarmResolveTest, ExportedBasisRoundTripsThroughImport) {
  // The resolve cache's basis lifecycle: export after an optimal solve,
  // import into a fresh solver over the same model, and resolve — the warm
  // restart must reach the optimum in (nearly) zero pivots.
  std::vector<double> ref;
  Model m = RandomLp(7700, 24, 16, &ref);
  SimplexSolver first;
  LpResult base = first.Solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  SimplexBasis basis = first.ExportBasis();
  ASSERT_FALSE(basis.empty());

  SimplexSolver second;
  ASSERT_TRUE(second.ImportBasis(m, basis));
  LpResult warm = second.ResolveWithBasis(m, {});
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, base.objective, 1e-6);
  EXPECT_LE(warm.iterations, std::max<int64_t>(base.iterations / 4, 2));
}

TEST(WarmResolveTest, ChainOfResolves) {
  // Simulates a B&B dive: a chain of progressively tighter integer bounds.
  std::vector<double> ref;
  Model m = RandomLp(8005, 12, 8, &ref);
  SimplexSolver warm_solver;
  ASSERT_EQ(warm_solver.Solve(m).status, LpStatus::kOptimal);
  std::vector<BoundOverride> overrides;
  for (int step = 0; step < 6; ++step) {
    VarId var = static_cast<VarId>(step * 2 % 12);
    overrides.push_back(BoundOverride{var, ref[var] - 0.5, ref[var] + 0.5});
    LpResult warm = warm_solver.ResolveWithBasis(m, overrides);
    SimplexSolver cold;
    LpResult reference = cold.Solve(m, overrides);
    ASSERT_EQ(warm.status, reference.status) << "step " << step;
    if (warm.status == LpStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, reference.objective, 1e-5) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace ras
