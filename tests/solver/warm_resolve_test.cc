// Tests for SimplexSolver::ResolveWithBasis — the cross-node basis reuse
// that makes branch-and-bound children cheap.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/solver/simplex.h"
#include "src/util/rng.h"

namespace ras {
namespace {

constexpr double kTol = 1e-6;

// Random feasible-by-construction LP shared by the tests below.
Model RandomLp(uint64_t seed, int n, int rows, std::vector<double>* ref_out) {
  Rng rng(seed);
  Model m;
  std::vector<double> ref(n);
  for (int j = 0; j < n; ++j) {
    double lb = rng.Uniform(-4, 0);
    double ub = lb + rng.Uniform(2, 9);
    ref[j] = rng.Uniform(lb, ub);
    m.AddContinuous(lb, ub, rng.Uniform(-3, 3));
  }
  for (int i = 0; i < rows; ++i) {
    RowId r = m.AddRow(0, 0);
    double activity = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.5)) {
        double c = rng.Uniform(-2, 2);
        m.AddCoefficient(r, j, c);
        activity += c * ref[j];
      }
    }
    m.SetRowBounds(r, activity - rng.Uniform(0.5, 4), activity + rng.Uniform(0.5, 4));
  }
  if (ref_out != nullptr) {
    *ref_out = ref;
  }
  return m;
}

TEST(WarmResolveTest, MatchesColdSolveAfterBoundChange) {
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ref;
    Model m = RandomLp(7000 + static_cast<uint64_t>(trial), 10, 7, &ref);
    SimplexSolver warm_solver;
    LpResult base = warm_solver.Solve(m);
    ASSERT_EQ(base.status, LpStatus::kOptimal);

    // Tighten one variable's bounds around the reference point (guaranteed
    // to stay feasible) and compare warm vs cold resolves.
    Rng rng(7100 + static_cast<uint64_t>(trial));
    VarId var = static_cast<VarId>(rng.UniformInt(0, 9));
    double lo = std::max(ref[var] - 0.25, m.variable(var).lb);
    double hi = std::min(ref[var] + 0.25, m.variable(var).ub);
    std::vector<BoundOverride> overrides = {BoundOverride{var, lo, hi}};

    LpResult warm = warm_solver.ResolveWithBasis(m, overrides);
    SimplexSolver cold_solver;
    LpResult cold = cold_solver.Solve(m, overrides);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-5) << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(warm.x, 1e-5));
  }
}

TEST(WarmResolveTest, WarmIsCheaperThanCold) {
  std::vector<double> ref;
  Model m = RandomLp(8001, 40, 25, &ref);
  SimplexSolver solver;
  LpResult base = solver.Solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  LpResult warm = solver.ResolveWithBasis(m, {BoundOverride{0, ref[0] - 0.1, ref[0] + 0.1}});
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  // The warm resolve should take far fewer pivots than the cold solve.
  EXPECT_LT(warm.iterations, std::max<int64_t>(base.iterations / 2, 6));
}

TEST(WarmResolveTest, DetectsInfeasibleBoundsAndRecovers) {
  std::vector<double> ref;
  Model m = RandomLp(8002, 8, 5, &ref);
  SimplexSolver solver;
  ASSERT_EQ(solver.Solve(m).status, LpStatus::kOptimal);
  // Empty range: infeasible, without destroying the retained basis.
  LpResult bad = solver.ResolveWithBasis(m, {BoundOverride{0, 1.0, 0.5}});
  EXPECT_EQ(bad.status, LpStatus::kInfeasible);
  // The solver still warm-resolves correctly afterwards.
  LpResult good = solver.ResolveWithBasis(m, {});
  ASSERT_EQ(good.status, LpStatus::kOptimal);
  SimplexSolver cold;
  EXPECT_NEAR(good.objective, cold.Solve(m).objective, 1e-5);
}

TEST(WarmResolveTest, FallsBackToColdForDifferentModel) {
  std::vector<double> ref;
  Model a = RandomLp(8003, 6, 4, &ref);
  Model b = RandomLp(8004, 9, 5, &ref);
  SimplexSolver solver;
  ASSERT_EQ(solver.Solve(a).status, LpStatus::kOptimal);
  // Different shape: must not reuse the basis; result must match cold.
  LpResult warm_b = solver.ResolveWithBasis(b, {});
  SimplexSolver cold;
  LpResult cold_b = cold.Solve(b);
  ASSERT_EQ(warm_b.status, cold_b.status);
  if (warm_b.status == LpStatus::kOptimal) {
    EXPECT_NEAR(warm_b.objective, cold_b.objective, 1e-5);
  }
}

TEST(WarmResolveTest, MatchesColdSolveAfterRowBoundChange) {
  // Cross-round model patching changes RHS ranges in place
  // (Model::UpdateRowBounds); the retained basis must survive, because the
  // basis matrix depends only on the coefficients, and the warm resolve must
  // land on the same optimum as a cold solve of the patched model.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ref;
    Model m = RandomLp(7300 + static_cast<uint64_t>(trial), 10, 7, &ref);
    SimplexSolver warm_solver;
    LpResult base = warm_solver.Solve(m);
    ASSERT_EQ(base.status, LpStatus::kOptimal);

    // Widen or shift each row's range around its reference activity; the
    // reference point stays feasible, so the patched LP stays feasible.
    Rng rng(7400 + static_cast<uint64_t>(trial));
    for (size_t r = 0; r < m.num_rows(); ++r) {
      if (!rng.Bernoulli(0.5)) {
        continue;
      }
      double activity = 0.0;
      for (const RowEntry& e : m.row_entries(r)) {
        activity += e.coeff * ref[static_cast<size_t>(e.var)];
      }
      m.UpdateRowBounds(static_cast<RowId>(r), activity - rng.Uniform(0.3, 3),
                        activity + rng.Uniform(0.3, 3));
    }

    LpResult warm = warm_solver.ResolveWithBasis(m, {});
    SimplexSolver cold_solver;
    LpResult cold = cold_solver.Solve(m);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-5) << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(warm.x, 1e-5));
  }
}

TEST(WarmResolveTest, MatchesColdSolveAfterObjectiveChange) {
  // Acquire costs flip between 0 and config.acquire_cost when a class's
  // current holder changes round-over-round (Model::UpdateObjectiveCost);
  // bases stay primal-feasible under any cost change, so the warm resolve is
  // pure phase-2 pivoting and must match a cold solve.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ref;
    Model m = RandomLp(7500 + static_cast<uint64_t>(trial), 10, 7, &ref);
    SimplexSolver warm_solver;
    ASSERT_EQ(warm_solver.Solve(m).status, LpStatus::kOptimal);

    Rng rng(7600 + static_cast<uint64_t>(trial));
    for (size_t j = 0; j < m.num_variables(); ++j) {
      if (rng.Bernoulli(0.4)) {
        m.UpdateObjectiveCost(static_cast<VarId>(j), rng.Uniform(-3, 3));
      }
    }

    LpResult warm = warm_solver.ResolveWithBasis(m, {});
    SimplexSolver cold_solver;
    LpResult cold = cold_solver.Solve(m);
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-5) << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(warm.x, 1e-5));
  }
}

TEST(WarmResolveTest, SingularStaleBasisDetectedOnImport) {
  // A stale cross-round basis can be singular against the current model
  // (e.g. coefficients changed underneath it). ImportBasis must detect this
  // during its from-scratch refactorization and refuse — leaving the solver
  // cold and correct — never install it and return garbage.
  Model m;
  m.AddContinuous(0, 10, -1.0);
  m.AddContinuous(0, 10, -1.0);
  RowId r0 = m.AddRow(0, 10);
  m.AddCoefficient(r0, 0, 1.0);
  m.AddCoefficient(r0, 1, 1.0);
  RowId r1 = m.AddRow(0, 20);
  m.AddCoefficient(r1, 0, 2.0);
  m.AddCoefficient(r1, 1, 2.0);

  // Both structural columns basic: (1,2) and (1,2) — a singular basis matrix
  // with a shape fingerprint that matches the model exactly.
  SimplexBasis stale;
  stale.basic = {0, 1};
  stale.status = {0, 0, 1, 1};  // kBasic, kBasic, kAtLower, kAtLower.
  stale.rows = m.num_rows();
  stale.vars = m.num_variables();
  stale.nonzeros = 4;

  SimplexSolver solver;
  EXPECT_FALSE(solver.ImportBasis(m, stale));

  // The refused import leaves the solver cold: the next resolve falls back
  // to a from-scratch solve and matches an independent cold solver.
  LpResult after = solver.ResolveWithBasis(m, {});
  SimplexSolver cold;
  LpResult reference = cold.Solve(m);
  ASSERT_EQ(after.status, LpStatus::kOptimal);
  ASSERT_EQ(reference.status, LpStatus::kOptimal);
  EXPECT_NEAR(after.objective, reference.objective, 1e-6);
  EXPECT_TRUE(m.IsFeasible(after.x, 1e-6));
}

TEST(WarmResolveTest, ExportedBasisRoundTripsThroughImport) {
  // The resolve cache's basis lifecycle: export after an optimal solve,
  // import into a fresh solver over the same model, and resolve — the warm
  // restart must reach the optimum in (nearly) zero pivots.
  std::vector<double> ref;
  Model m = RandomLp(7700, 24, 16, &ref);
  SimplexSolver first;
  LpResult base = first.Solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  SimplexBasis basis = first.ExportBasis();
  ASSERT_FALSE(basis.empty());

  SimplexSolver second;
  ASSERT_TRUE(second.ImportBasis(m, basis));
  LpResult warm = second.ResolveWithBasis(m, {});
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, base.objective, 1e-6);
  EXPECT_LE(warm.iterations, std::max<int64_t>(base.iterations / 4, 2));
}

TEST(WarmResolveTest, ChainOfResolves) {
  // Simulates a B&B dive: a chain of progressively tighter integer bounds.
  std::vector<double> ref;
  Model m = RandomLp(8005, 12, 8, &ref);
  SimplexSolver warm_solver;
  ASSERT_EQ(warm_solver.Solve(m).status, LpStatus::kOptimal);
  std::vector<BoundOverride> overrides;
  for (int step = 0; step < 6; ++step) {
    VarId var = static_cast<VarId>(step * 2 % 12);
    overrides.push_back(BoundOverride{var, ref[var] - 0.5, ref[var] + 0.5});
    LpResult warm = warm_solver.ResolveWithBasis(m, overrides);
    SimplexSolver cold;
    LpResult reference = cold.Solve(m, overrides);
    ASSERT_EQ(warm.status, reference.status) << "step " << step;
    if (warm.status == LpStatus::kOptimal) {
      EXPECT_NEAR(warm.objective, reference.objective, 1e-5) << "step " << step;
    }
  }
}

TEST(WarmResolveTest, DualSimplexResolveMatchesFreshPrimalFieldForField) {
  // The PatchRasModel shape: solve, mutate row bounds in place (costs
  // untouched, so the optimal basis stays dual-feasible), warm-resolve. The
  // dual kernel must run, take pivots, and land on exactly the answer a
  // fresh primal solve of the patched model produces — status, objective,
  // every primal value, every dual.
  int dual_ran = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ref;
    Model m = RandomLp(9100 + static_cast<uint64_t>(trial), 12, 8, &ref);
    SimplexSolver warm_solver;
    ASSERT_EQ(warm_solver.Solve(m).status, LpStatus::kOptimal);

    // Shift every row's range toward a different interior point: enough
    // movement to knock basic slacks out of bounds (forcing actual dual
    // pivots) while keeping the reference point feasible.
    Rng rng(9200 + static_cast<uint64_t>(trial));
    for (size_t r = 0; r < m.num_rows(); ++r) {
      double activity = 0.0;
      for (const RowEntry& e : m.row_entries(r)) {
        activity += e.coeff * ref[static_cast<size_t>(e.var)];
      }
      m.UpdateRowBounds(static_cast<RowId>(r), activity - rng.Uniform(0.1, 0.8),
                        activity + rng.Uniform(0.1, 0.8));
    }

    LpResult warm = warm_solver.ResolveWithBasis(m, {});
    SimplexSolver fresh_solver;
    LpResult fresh = fresh_solver.Solve(m);
    ASSERT_EQ(warm.status, fresh.status) << "trial " << trial;
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, fresh.objective, 1e-5) << "trial " << trial;
    ASSERT_EQ(warm.x.size(), fresh.x.size());
    for (size_t j = 0; j < warm.x.size(); ++j) {
      EXPECT_NEAR(warm.x[j], fresh.x[j], 1e-5) << "trial " << trial << " x" << j;
    }
    ASSERT_EQ(warm.duals.size(), fresh.duals.size());
    for (size_t i = 0; i < warm.duals.size(); ++i) {
      EXPECT_NEAR(warm.duals[i], fresh.duals[i], 1e-5)
          << "trial " << trial << " dual" << i;
    }
    if (warm.used_dual_simplex) {
      ++dual_ran;
      EXPECT_GT(warm.dual_iterations, 0) << "trial " << trial;
    }
  }
  // The RHS shifts must actually exercise the dual kernel, not just the
  // primal fallback, or this test proves nothing about it.
  EXPECT_GE(dual_ran, 10);
}

TEST(WarmResolveTest, DualSimplexDeclinedAfterCostChangeYetCorrect) {
  // A cost change breaks dual feasibility of the retained basis, so the
  // dual-resolve gate must decline (used_dual_simplex stays false) and the
  // primal path must still produce the right answer.
  std::vector<double> ref;
  Model m = RandomLp(9300, 10, 7, &ref);
  SimplexSolver warm_solver;
  ASSERT_EQ(warm_solver.Solve(m).status, LpStatus::kOptimal);

  Rng rng(9301);
  for (size_t j = 0; j < m.num_variables(); ++j) {
    m.UpdateObjectiveCost(static_cast<VarId>(j), rng.Uniform(-3, 3));
  }
  // Also perturb one row so the basis is primal-infeasible too — the gate
  // must reject on dual-infeasibility even when a dual start is "needed".
  double activity = 0.0;
  for (const RowEntry& e : m.row_entries(0)) {
    activity += e.coeff * ref[static_cast<size_t>(e.var)];
  }
  m.UpdateRowBounds(0, activity - 0.2, activity + 0.2);

  LpResult warm = warm_solver.ResolveWithBasis(m, {});
  EXPECT_FALSE(warm.used_dual_simplex);
  EXPECT_EQ(warm.dual_iterations, 0);
  SimplexSolver fresh;
  LpResult cold = fresh.Solve(m);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-5);
  EXPECT_TRUE(m.IsFeasible(warm.x, 1e-5));
}

TEST(WarmResolveTest, DualResolveDisabledByOption) {
  // With the knob off the resolve must never enter the dual kernel, whatever
  // the patch looks like — the pre-PR behavior, bit for bit.
  std::vector<double> ref;
  LpOptions options;
  options.dual_resolve = false;
  Model m = RandomLp(9400, 10, 7, &ref);
  SimplexSolver solver(options);
  ASSERT_EQ(solver.Solve(m).status, LpStatus::kOptimal);
  for (size_t r = 0; r < m.num_rows(); ++r) {
    double activity = 0.0;
    for (const RowEntry& e : m.row_entries(r)) {
      activity += e.coeff * ref[static_cast<size_t>(e.var)];
    }
    m.UpdateRowBounds(static_cast<RowId>(r), activity - 0.3, activity + 0.3);
  }
  LpResult warm = solver.ResolveWithBasis(m, {});
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_FALSE(warm.used_dual_simplex);
  EXPECT_EQ(warm.dual_iterations, 0);
}

}  // namespace
}  // namespace ras
