#include "src/solver/model.h"

#include <gtest/gtest.h>

namespace ras {
namespace {

TEST(ModelTest, AddVariablesAndRows) {
  Model m;
  VarId x = m.AddContinuous(0, 10, 1.5, "x");
  VarId y = m.AddInteger(0, 5, -2.0, "y");
  RowId r = m.AddRow(-kInf, 8, "cap");
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 2.0);

  EXPECT_EQ(m.num_variables(), 2u);
  EXPECT_EQ(m.num_rows(), 1u);
  EXPECT_EQ(m.num_nonzeros(), 2u);
  EXPECT_EQ(m.num_integer_variables(), 1u);
  EXPECT_FALSE(m.variable(x).is_integer);
  EXPECT_TRUE(m.variable(y).is_integer);
  EXPECT_EQ(m.variable(y).name, "y");
  EXPECT_EQ(m.row(r).ub, 8.0);
}

TEST(ModelTest, ZeroCoefficientsDropped) {
  Model m;
  VarId x = m.AddContinuous(0, 1, 0);
  RowId r = m.AddRow(0, 1);
  m.AddCoefficient(r, x, 0.0);
  EXPECT_EQ(m.num_nonzeros(), 0u);
  EXPECT_TRUE(m.row_entries(r).empty());
}

TEST(ModelTest, ObjectiveEvaluation) {
  Model m;
  m.AddContinuous(0, 10, 2.0);
  m.AddContinuous(0, 10, -1.0);
  EXPECT_DOUBLE_EQ(m.Objective({3.0, 4.0}), 2.0);
}

TEST(ModelTest, SettersUpdate) {
  Model m;
  VarId x = m.AddContinuous(0, 1, 1.0);
  m.SetVariableBounds(x, -2, 3);
  m.SetObjectiveCost(x, 7.0);
  EXPECT_EQ(m.variable(x).lb, -2.0);
  EXPECT_EQ(m.variable(x).ub, 3.0);
  EXPECT_EQ(m.variable(x).cost, 7.0);
}

TEST(ModelTest, FeasibilityChecksBoundsRowsIntegrality) {
  Model m;
  VarId x = m.AddContinuous(0, 10, 0);
  VarId y = m.AddInteger(0, 10, 0);
  RowId r = m.AddRow(2, 6);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);

  EXPECT_TRUE(m.IsFeasible({1.0, 2.0}, 1e-6));
  EXPECT_FALSE(m.IsFeasible({1.0, 1.5}, 1e-6));   // y fractional.
  EXPECT_FALSE(m.IsFeasible({-1.0, 3.0}, 1e-6));  // x below lb.
  EXPECT_FALSE(m.IsFeasible({0.0, 1.0}, 1e-6));   // Row below lb.
  EXPECT_FALSE(m.IsFeasible({5.0, 5.0}, 1e-6));   // Row above ub.
  EXPECT_FALSE(m.IsFeasible({1.0}, 1e-6));        // Wrong arity.
}

TEST(ModelTest, MemoryBytesGrowsWithSize) {
  Model small;
  small.AddContinuous(0, 1, 0);
  Model big;
  for (int i = 0; i < 1000; ++i) {
    big.AddContinuous(0, 1, 0);
  }
  RowId r = big.AddRow(0, 1);
  for (int i = 0; i < 1000; ++i) {
    big.AddCoefficient(r, i, 1.0);
  }
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes() + 1000 * sizeof(RowEntry));
}

}  // namespace
}  // namespace ras
