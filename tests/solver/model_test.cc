#include "src/solver/model.h"

#include <gtest/gtest.h>

#include "src/solver/simplex.h"

namespace ras {
namespace {

TEST(ModelTest, AddVariablesAndRows) {
  Model m;
  VarId x = m.AddContinuous(0, 10, 1.5, "x");
  VarId y = m.AddInteger(0, 5, -2.0, "y");
  RowId r = m.AddRow(-kInf, 8, "cap");
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 2.0);

  EXPECT_EQ(m.num_variables(), 2u);
  EXPECT_EQ(m.num_rows(), 1u);
  EXPECT_EQ(m.num_nonzeros(), 2u);
  EXPECT_EQ(m.num_integer_variables(), 1u);
  EXPECT_FALSE(m.variable(x).is_integer);
  EXPECT_TRUE(m.variable(y).is_integer);
  EXPECT_EQ(m.variable(y).name, "y");
  EXPECT_EQ(m.row(r).ub, 8.0);
}

TEST(ModelTest, ZeroCoefficientsDropped) {
  Model m;
  VarId x = m.AddContinuous(0, 1, 0);
  RowId r = m.AddRow(0, 1);
  m.AddCoefficient(r, x, 0.0);
  EXPECT_EQ(m.num_nonzeros(), 0u);
  EXPECT_TRUE(m.row_entries(r).empty());
}

TEST(ModelTest, ObjectiveEvaluation) {
  Model m;
  m.AddContinuous(0, 10, 2.0);
  m.AddContinuous(0, 10, -1.0);
  EXPECT_DOUBLE_EQ(m.Objective({3.0, 4.0}), 2.0);
}

TEST(ModelTest, SettersUpdate) {
  Model m;
  VarId x = m.AddContinuous(0, 1, 1.0);
  m.SetVariableBounds(x, -2, 3);
  m.SetObjectiveCost(x, 7.0);
  EXPECT_EQ(m.variable(x).lb, -2.0);
  EXPECT_EQ(m.variable(x).ub, 3.0);
  EXPECT_EQ(m.variable(x).cost, 7.0);
}

TEST(ModelTest, FeasibilityChecksBoundsRowsIntegrality) {
  Model m;
  VarId x = m.AddContinuous(0, 10, 0);
  VarId y = m.AddInteger(0, 10, 0);
  RowId r = m.AddRow(2, 6);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);

  EXPECT_TRUE(m.IsFeasible({1.0, 2.0}, 1e-6));
  EXPECT_FALSE(m.IsFeasible({1.0, 1.5}, 1e-6));   // y fractional.
  EXPECT_FALSE(m.IsFeasible({-1.0, 3.0}, 1e-6));  // x below lb.
  EXPECT_FALSE(m.IsFeasible({0.0, 1.0}, 1e-6));   // Row below lb.
  EXPECT_FALSE(m.IsFeasible({5.0, 5.0}, 1e-6));   // Row above ub.
  EXPECT_FALSE(m.IsFeasible({1.0}, 1e-6));        // Wrong arity.
}

TEST(ModelTest, CompressedColumnsMatchesRowEntries) {
  Model m;
  VarId x = m.AddContinuous(0, 1, 0);
  VarId y = m.AddContinuous(0, 1, 0);
  VarId z = m.AddContinuous(0, 1, 0);
  RowId r0 = m.AddRow(0, 1);
  RowId r1 = m.AddRow(0, 1);
  // Deliberately out of row order within columns: CSC must sort ascending.
  m.AddCoefficient(r1, x, 2.0);
  m.AddCoefficient(r0, x, 1.0);
  m.AddCoefficient(r1, z, 5.0);
  m.AddCoefficient(r0, y, 3.0);

  CscMatrix csc = m.CompressedColumns();
  EXPECT_EQ(csc.num_cols(), 3u);
  EXPECT_EQ(csc.num_nonzeros(), 4u);
  ASSERT_EQ(csc.col_starts.size(), 4u);
  // Column x: rows 0 and 1, ascending.
  ASSERT_EQ(csc.col_starts[x + 1] - csc.col_starts[x], 2);
  EXPECT_EQ(csc.rows[csc.col_starts[x]], r0);
  EXPECT_DOUBLE_EQ(csc.values[csc.col_starts[x]], 1.0);
  EXPECT_EQ(csc.rows[csc.col_starts[x] + 1], r1);
  EXPECT_DOUBLE_EQ(csc.values[csc.col_starts[x] + 1], 2.0);
  // Column y: single entry in row 0.
  ASSERT_EQ(csc.col_starts[y + 1] - csc.col_starts[y], 1);
  EXPECT_EQ(csc.rows[csc.col_starts[y]], r0);
  EXPECT_DOUBLE_EQ(csc.values[csc.col_starts[y]], 3.0);
  // Column z: single entry in row 1.
  ASSERT_EQ(csc.col_starts[z + 1] - csc.col_starts[z], 1);
  EXPECT_EQ(csc.rows[csc.col_starts[z]], r1);
  EXPECT_DOUBLE_EQ(csc.values[csc.col_starts[z]], 5.0);
}

TEST(ModelTest, CompressedColumnsSumsDuplicatePairs) {
  Model m;
  VarId x = m.AddContinuous(0, 1, 0);
  VarId y = m.AddContinuous(0, 1, 0);
  RowId r = m.AddRow(0, 10);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 4.0);
  m.AddCoefficient(r, x, 2.5);  // Duplicate (r, x): must merge to 3.5.
  m.AddCoefficient(r, x, -0.5);

  CscMatrix csc = m.CompressedColumns();
  ASSERT_EQ(csc.num_nonzeros(), 2u);
  ASSERT_EQ(csc.col_starts[x + 1] - csc.col_starts[x], 1);
  EXPECT_DOUBLE_EQ(csc.values[csc.col_starts[x]], 3.0);
  EXPECT_DOUBLE_EQ(csc.values[csc.col_starts[y]], 4.0);
}

TEST(ModelTest, DuplicateCoefficientsSolveIdenticallyDenseAndSparse) {
  // min -x - y  s.t.  (1+1)x + y <= 4, y <= 2, with the x coefficient split
  // across two AddCoefficient calls. Dense and CSC paths must both see the
  // merged coefficient: optimum at x = 1, y = 2.
  auto build = [] {
    Model m;
    VarId x = m.AddContinuous(0, 10, -1.0);
    VarId y = m.AddContinuous(0, 2, -1.0);
    RowId r = m.AddRow(-kInf, 4);
    m.AddCoefficient(r, x, 1.0);
    m.AddCoefficient(r, y, 1.0);
    m.AddCoefficient(r, x, 1.0);  // Duplicate pair; row reads 2x + y <= 4.
    return m;
  };
  Model m = build();
  for (bool sparse : {false, true}) {
    LpOptions options;
    options.use_sparse_kernels = sparse;
    LpResult result = SimplexSolver(options).Solve(m);
    ASSERT_EQ(result.status, LpStatus::kOptimal) << "sparse=" << sparse;
    EXPECT_NEAR(result.x[0], 1.0, 1e-9) << "sparse=" << sparse;
    EXPECT_NEAR(result.x[1], 2.0, 1e-9) << "sparse=" << sparse;
    EXPECT_NEAR(result.objective, -3.0, 1e-9) << "sparse=" << sparse;
  }
}

TEST(ModelTest, MemoryBytesGrowsWithSize) {
  Model small;
  small.AddContinuous(0, 1, 0);
  Model big;
  for (int i = 0; i < 1000; ++i) {
    big.AddContinuous(0, 1, 0);
  }
  RowId r = big.AddRow(0, 1);
  for (int i = 0; i < 1000; ++i) {
    big.AddCoefficient(r, i, 1.0);
  }
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes() + 1000 * sizeof(RowEntry));
}

TEST(ModelTest, UpdateBoundsAfterCompressedCacheKeepsCacheAndSolverCurrent) {
  // PatchRasModel mutates bounds on a model whose CSC cache was already
  // built by a previous solve. The cache covers coefficients only, so it
  // must stay valid, and a fresh solve must see the new bounds.
  Model m;
  m.AddContinuous(0, 10, -1.0);
  m.AddContinuous(0, 10, -1.0);
  RowId r = m.AddRow(-kInf, 20);
  m.AddCoefficient(r, 0, 1.0);
  m.AddCoefficient(r, 1, 1.0);
  m.EnsureCompressedCache();
  ASSERT_TRUE(m.compressed_cache_valid());

  EXPECT_TRUE(m.UpdateVariableBounds(0, 0, 3));
  EXPECT_TRUE(m.UpdateRowBounds(r, -kInf, 5));
  EXPECT_TRUE(m.compressed_cache_valid());

  LpResult result = SimplexSolver().Solve(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  // x0 <= 3 (variable bound), x0 + x1 <= 5 (row bound): optimum 3 + 2.
  EXPECT_NEAR(result.x[0], 3.0, 1e-7);
  EXPECT_NEAR(result.x[1], 2.0, 1e-7);
}

TEST(ModelTest, UpdateBoundsRejectsCrossedRangeWithoutMutating) {
  Model m;
  m.AddContinuous(1, 4, -1.0);
  RowId r = m.AddRow(2, 8);
  m.AddCoefficient(r, 0, 1.0);

  EXPECT_FALSE(m.UpdateVariableBounds(0, 5, 3));
  EXPECT_EQ(m.variable(0).lb, 1);
  EXPECT_EQ(m.variable(0).ub, 4);

  EXPECT_FALSE(m.UpdateRowBounds(r, 9, 2));
  EXPECT_EQ(m.row(r).lb, 2);
  EXPECT_EQ(m.row(r).ub, 8);
}

}  // namespace
}  // namespace ras
