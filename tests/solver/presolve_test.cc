// Tests for the LP presolve/postsolve layer (src/solver/presolve): the exact
// unit reductions, the infeasibility proofs, and a randomized differential
// suite pitting presolve-on solves against the unreduced dense oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/solver/model.h"
#include "src/solver/presolve.h"
#include "src/solver/simplex.h"
#include "src/util/rng.h"

namespace ras {
namespace {

constexpr double kTol = 1e-6;

TEST(PresolveTest, FixedVariableSubstitutedIntoRows) {
  // min -x0 - x1 with x1 fixed at 2; row: x0 + x1 <= 5 => x0 <= 3.
  Model m;
  m.AddContinuous(0, 10, -1.0);
  m.AddContinuous(2, 2, -1.0);  // Fixed.
  RowId r = m.AddRow(-kInf, 5);
  m.AddCoefficient(r, 0, 1.0);
  m.AddCoefficient(r, 1, 1.0);

  PresolvedLp pre;
  ASSERT_TRUE(pre.Reduce(m, {}, PresolveOptions()));
  EXPECT_FALSE(pre.stats().infeasible);
  EXPECT_EQ(pre.stats().vars_removed, 1);
  ASSERT_EQ(pre.reduced().num_variables(), 1u);

  SimplexSolver solver;
  LpResult reduced = solver.Solve(pre.reduced());
  ASSERT_EQ(reduced.status, LpStatus::kOptimal);
  std::vector<double> full = pre.RestorePrimal(reduced.x);
  ASSERT_EQ(full.size(), 2u);
  EXPECT_NEAR(full[0], 3.0, kTol);
  EXPECT_NEAR(full[1], 2.0, kTol);
  EXPECT_TRUE(m.IsFeasible(full, kTol));
}

TEST(PresolveTest, EmptyRowDroppedWhenSlackCoversZero) {
  Model m;
  m.AddContinuous(0, 1, -1.0);
  m.AddRow(-1, 1);  // No entries; 0 lies inside the range: redundant.
  RowId r = m.AddRow(-kInf, 1);
  m.AddCoefficient(r, 0, 1.0);

  PresolvedLp pre;
  ASSERT_TRUE(pre.Reduce(m, {}, PresolveOptions()));
  EXPECT_FALSE(pre.stats().infeasible);
  EXPECT_GE(pre.stats().rows_removed, 1);
}

TEST(PresolveTest, EmptyRowProvesInfeasibility) {
  Model m;
  m.AddContinuous(0, 1, -1.0);
  m.AddRow(1, 2);  // No entries; needs 0 in [1,2]: impossible.
  RowId r = m.AddRow(-kInf, 1);
  m.AddCoefficient(r, 0, 1.0);

  PresolvedLp pre;
  ASSERT_TRUE(pre.Reduce(m, {}, PresolveOptions()));
  EXPECT_TRUE(pre.stats().infeasible);

  // The solver-level wrapper takes the same shortcut.
  SimplexSolver solver;
  EXPECT_EQ(solver.Solve(m).status, LpStatus::kInfeasible);
}

TEST(PresolveTest, CrossedVariableBoundsProveInfeasibility) {
  Model m;
  m.AddContinuous(0, 10, -1.0);
  RowId r = m.AddRow(-kInf, 5);
  m.AddCoefficient(r, 0, 1.0);

  // Branching-style override with an empty range.
  std::vector<BoundOverride> overrides = {BoundOverride{0, 3.0, 2.0}};
  PresolvedLp pre;
  ASSERT_TRUE(pre.Reduce(m, overrides, PresolveOptions()));
  EXPECT_TRUE(pre.stats().infeasible);
}

TEST(PresolveTest, SingletonRowFoldsIntoVariableBound) {
  // Row 2*x0 <= 8 is a bound x0 <= 4 in disguise; folding it removes the row.
  // x0 carries the better cost so the folded bound binds at the optimum.
  Model m;
  m.AddContinuous(0, 10, -2.0);
  m.AddContinuous(0, 10, -1.0);
  RowId s = m.AddRow(-kInf, 8);
  m.AddCoefficient(s, 0, 2.0);
  RowId r = m.AddRow(-kInf, 7);
  m.AddCoefficient(r, 0, 1.0);
  m.AddCoefficient(r, 1, 1.0);

  PresolvedLp pre;
  ASSERT_TRUE(pre.Reduce(m, {}, PresolveOptions()));
  EXPECT_GE(pre.stats().singleton_rows_folded, 1);
  EXPECT_GE(pre.stats().rows_removed, 1);

  SimplexSolver solver;
  LpResult reduced = solver.Solve(pre.reduced());
  ASSERT_EQ(reduced.status, LpStatus::kOptimal);
  std::vector<double> full = pre.RestorePrimal(reduced.x);
  EXPECT_TRUE(m.IsFeasible(full, kTol));
  // Optimum: x0 = 4 (folded bound binds), x1 = 3.
  EXPECT_NEAR(full[0], 4.0, kTol);
  EXPECT_NEAR(full[1], 3.0, kTol);
}

TEST(PresolveTest, MinReductionGateRefusesIrreducibleModel) {
  // Nothing fixed, no empty/singleton rows, no redundant activity: the gate
  // must report "no reduction" so the caller solves the original directly.
  Model m;
  m.AddContinuous(0, 10, -1.0);
  m.AddContinuous(0, 10, -1.0);
  RowId r0 = m.AddRow(2, 8);
  m.AddCoefficient(r0, 0, 1.0);
  m.AddCoefficient(r0, 1, 1.0);
  RowId r1 = m.AddRow(-4, 4);
  m.AddCoefficient(r1, 0, 1.0);
  m.AddCoefficient(r1, 1, -1.0);

  PresolvedLp pre;
  EXPECT_FALSE(pre.Reduce(m, {}, PresolveOptions()));
}

TEST(PresolveTest, RestoredBasisImportsAndVerifiesInFewPivots) {
  // Presolve -> solve reduced -> postsolve basis -> import on the full model:
  // the restored basis must be accepted and already (near) optimal, so the
  // verifying resolve takes almost no iterations.
  Model m;
  m.AddContinuous(0, 10, -1.0);
  m.AddContinuous(3, 3, -5.0);  // Fixed: removed by presolve.
  m.AddContinuous(0, 10, -2.0);
  RowId s = m.AddRow(-kInf, 12);  // Singleton: folds into x2 <= 6.
  m.AddCoefficient(s, 2, 2.0);
  RowId r = m.AddRow(-kInf, 9);
  m.AddCoefficient(r, 0, 1.0);
  m.AddCoefficient(r, 1, 1.0);
  m.AddCoefficient(r, 2, 1.0);

  PresolvedLp pre;
  ASSERT_TRUE(pre.Reduce(m, {}, PresolveOptions()));
  ASSERT_FALSE(pre.stats().infeasible);

  LpOptions no_presolve;
  no_presolve.presolve = false;
  SimplexSolver reduced_solver(no_presolve);
  LpResult reduced = reduced_solver.Solve(pre.reduced());
  ASSERT_EQ(reduced.status, LpStatus::kOptimal);

  SimplexBasis full_basis = pre.RestoreBasis(reduced_solver.ExportBasis());
  ASSERT_FALSE(full_basis.empty());
  SimplexSolver full_solver(no_presolve);
  ASSERT_TRUE(full_solver.ImportBasis(m, full_basis));
  LpResult verified = full_solver.ResolveWithBasis(m, {});
  ASSERT_EQ(verified.status, LpStatus::kOptimal);

  SimplexSolver oracle(no_presolve);
  LpResult cold = oracle.Solve(m);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(verified.objective, cold.objective, kTol);
  EXPECT_LE(verified.iterations, 2);
}

TEST(PresolveTest, RestoreBasisRejectsShapeMismatch) {
  Model m;
  m.AddContinuous(0, 1, -1.0);
  m.AddContinuous(2, 2, 0.0);
  RowId r = m.AddRow(-kInf, 1);
  m.AddCoefficient(r, 0, 1.0);

  PresolvedLp pre;
  ASSERT_TRUE(pre.Reduce(m, {}, PresolveOptions()));

  SimplexBasis wrong;  // Not a basis of the reduced model at all.
  wrong.basic = {0, 1, 2};
  wrong.status = {0, 0, 0, 0, 0, 0};
  wrong.rows = 3;
  wrong.vars = 3;
  wrong.nonzeros = 9;
  EXPECT_TRUE(pre.RestoreBasis(wrong).empty());
}

// Random LP with presolve-friendly structure: a mix of fixed variables,
// singleton rows, empty rows, and ordinary dense-ish constraints.
Model RandomReducibleLp(Rng& rng) {
  Model m;
  const int num_vars = 4 + static_cast<int>(rng.UniformInt(0, 10));
  for (int j = 0; j < num_vars; ++j) {
    double lb = rng.Uniform(-4.0, 0.0);
    if (rng.NextDouble() < 0.2) {
      double v = rng.Uniform(lb, lb + 3.0);
      m.AddContinuous(v, v, rng.Uniform(-5.0, 5.0));  // Fixed variable.
    } else {
      m.AddContinuous(lb, lb + rng.Uniform(1.0, 9.0), rng.Uniform(-5.0, 5.0));
    }
  }
  const int num_rows = 3 + static_cast<int>(rng.UniformInt(0, 8));
  for (int r = 0; r < num_rows; ++r) {
    double roll = rng.NextDouble();
    if (roll < 0.15) {
      m.AddRow(-rng.Uniform(0.0, 2.0), rng.Uniform(0.0, 2.0));  // Empty row.
      continue;
    }
    double a = rng.Uniform(-8.0, 8.0);
    double b = rng.Uniform(-8.0, 12.0);
    RowId row = m.AddRow(std::min(a, b), std::max(a, b) + 4.0);
    if (roll < 0.4) {
      // Singleton row (possibly negative coefficient).
      m.AddCoefficient(row, static_cast<VarId>(rng.UniformInt(0, num_vars - 1)),
                       rng.NextDouble() < 0.5 ? rng.Uniform(0.5, 3.0)
                                              : rng.Uniform(-3.0, -0.5));
      continue;
    }
    int entries = 0;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.NextDouble() < 0.4) {
        m.AddCoefficient(row, j, rng.Uniform(-3.0, 3.0));
        ++entries;
      }
    }
    if (entries == 0) {
      m.AddCoefficient(row, static_cast<VarId>(rng.UniformInt(0, num_vars - 1)),
                       rng.Uniform(0.5, 2.0));
    }
  }
  return m;
}

TEST(PresolveTest, FuzzPresolveMatchesUnreducedDenseOracle) {
  // >= 100 random LPs: the presolved sparse solve must agree with the
  // unreduced dense reference on status, on the objective, and produce a
  // primal-feasible full-length point.
  Rng rng(20260807);
  int optimal = 0;
  int infeasible = 0;
  int reduced_solves = 0;
  for (int trial = 0; trial < 140; ++trial) {
    Model m = RandomReducibleLp(rng);

    LpOptions oracle_options;
    oracle_options.use_sparse_kernels = false;
    oracle_options.presolve = false;
    oracle_options.dual_resolve = false;
    LpResult oracle = SimplexSolver(oracle_options).Solve(m);

    LpOptions pre_options;  // Defaults: sparse kernels + presolve on.
    LpResult pre = SimplexSolver(pre_options).Solve(m);

    ASSERT_EQ(oracle.status, pre.status)
        << "trial " << trial << ": oracle=" << LpStatusName(oracle.status)
        << " presolved=" << LpStatusName(pre.status);
    if (oracle.status == LpStatus::kOptimal) {
      ++optimal;
      EXPECT_NEAR(oracle.objective, pre.objective,
                  1e-6 * (1.0 + std::fabs(oracle.objective)))
          << "trial " << trial;
      ASSERT_EQ(pre.x.size(), m.num_variables()) << "trial " << trial;
      EXPECT_TRUE(m.IsFeasible(pre.x, 1e-6)) << "trial " << trial;
    } else if (oracle.status == LpStatus::kInfeasible) {
      ++infeasible;
    }
    if (pre.presolve_rows_removed > 0 || pre.presolve_vars_removed > 0) {
      ++reduced_solves;
    }
  }
  // The generator must exercise both outcomes and actually trigger presolve,
  // otherwise the differential is vacuous.
  EXPECT_GE(optimal, 40);
  EXPECT_GE(infeasible, 5);
  EXPECT_GE(reduced_solves, 60);
}

TEST(PresolveTest, FuzzRestorePrimalAndBasisRoundTrip) {
  // Direct PresolvedLp round trip on random instances: solve the reduction,
  // restore primal + basis, and verify on the full model.
  // 200 trials: roughly a third of the random instances survive the gate
  // (reducible, feasible, reduced solve optimal), so this clears the floor.
  Rng rng(991);
  int exercised = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Model m = RandomReducibleLp(rng);
    PresolvedLp pre;
    if (!pre.Reduce(m, {}, PresolveOptions()) || pre.stats().infeasible) {
      continue;
    }
    LpOptions no_presolve;
    no_presolve.presolve = false;
    SimplexSolver reduced_solver(no_presolve);
    LpResult reduced = reduced_solver.Solve(pre.reduced());
    if (reduced.status != LpStatus::kOptimal) {
      continue;
    }
    ++exercised;

    std::vector<double> full = pre.RestorePrimal(reduced.x);
    ASSERT_EQ(full.size(), m.num_variables()) << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(full, 1e-6)) << "trial " << trial;

    SimplexBasis full_basis = pre.RestoreBasis(reduced_solver.ExportBasis());
    ASSERT_FALSE(full_basis.empty()) << "trial " << trial;
    SimplexSolver full_solver(no_presolve);
    ASSERT_TRUE(full_solver.ImportBasis(m, full_basis)) << "trial " << trial;
    LpResult verified = full_solver.ResolveWithBasis(m, {});
    ASSERT_EQ(verified.status, LpStatus::kOptimal) << "trial " << trial;

    SimplexSolver oracle(no_presolve);
    LpResult cold = oracle.Solve(m);
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(verified.objective, cold.objective,
                1e-6 * (1.0 + std::fabs(cold.objective)))
        << "trial " << trial;
  }
  EXPECT_GE(exercised, 50);
}

}  // namespace
}  // namespace ras
