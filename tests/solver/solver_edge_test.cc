// Robustness tests: degenerate and pathological models that a production
// allocation pipeline will eventually feed its solver.

#include <gtest/gtest.h>

#include "src/solver/mip.h"
#include "src/solver/simplex.h"

namespace ras {
namespace {

TEST(SolverEdgeTest, EmptyModel) {
  Model m;
  LpResult lp = SimplexSolver().Solve(m);
  EXPECT_EQ(lp.status, LpStatus::kOptimal);
  EXPECT_EQ(lp.objective, 0.0);
  MipResult mip = MipSolver().Solve(m);
  EXPECT_EQ(mip.status, MipStatus::kOptimal);
}

TEST(SolverEdgeTest, VariablesWithoutRows) {
  Model m;
  m.AddContinuous(1, 5, 2.0);
  m.AddInteger(-3, 3, -1.0);
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.x[0], 1.0);
  EXPECT_DOUBLE_EQ(r.x[1], 3.0);
}

TEST(SolverEdgeTest, RowsWithoutVariables) {
  Model m;
  m.AddRow(-1, 1);  // 0 in [-1, 1]: trivially satisfied.
  EXPECT_EQ(SimplexSolver().Solve(m).status, LpStatus::kOptimal);
  Model infeasible;
  infeasible.AddRow(1, 2);  // 0 in [1, 2]: never.
  EXPECT_EQ(SimplexSolver().Solve(infeasible).status, LpStatus::kInfeasible);
}

TEST(SolverEdgeTest, FixedVariables) {
  Model m;
  VarId x = m.AddContinuous(4, 4, 1.0);  // Fixed.
  VarId y = m.AddInteger(0, 10, 1.0);
  RowId r = m.AddRow(7, kInf);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, y, 1.0);
  MipResult result = MipSolver().Solve(m);
  ASSERT_EQ(result.status, MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(result.x[x], 4.0);
  EXPECT_DOUBLE_EQ(result.x[y], 3.0);
}

TEST(SolverEdgeTest, DuplicateCoefficientsMerge) {
  Model m;
  VarId x = m.AddContinuous(0, 10, -1.0);
  RowId r = m.AddRow(-kInf, 9);
  m.AddCoefficient(r, x, 1.0);
  m.AddCoefficient(r, x, 2.0);  // Effective coefficient 3.
  LpResult result = SimplexSolver().Solve(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[x], 3.0, 1e-6);
}

TEST(SolverEdgeTest, WideCoefficientRange) {
  // 1e-4 .. 1e4 coefficient spread: tolerances must hold.
  Model m;
  VarId x = m.AddContinuous(0, kInf, 1.0);
  VarId y = m.AddContinuous(0, kInf, 1.0);
  RowId r1 = m.AddRow(1000, kInf);
  m.AddCoefficient(r1, x, 1e4);
  m.AddCoefficient(r1, y, 1e-4);
  LpResult result = SimplexSolver().Solve(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 0.1, 1e-5);  // x = 0.1, y = 0.
}

TEST(SolverEdgeTest, ManyRedundantRows) {
  Model m;
  VarId x = m.AddContinuous(0, kInf, -1.0);
  for (int i = 0; i < 60; ++i) {
    RowId r = m.AddRow(-kInf, 10 + i);  // Only the first binds.
    m.AddCoefficient(r, x, 1.0);
  }
  LpResult result = SimplexSolver().Solve(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[x], 10.0, 1e-6);
}

TEST(SolverEdgeTest, IntegerWithFractionalBounds) {
  Model m;
  VarId x = m.AddInteger(0.4, 3.7, -1.0);  // Integers in {1, 2, 3}.
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.x[x], 3.0);
}

TEST(SolverEdgeTest, IntegerBoundsExcludeAllIntegers) {
  Model m;
  (void)m.AddInteger(1.2, 1.8, 1.0);  // No integer in [1.2, 1.8].
  MipResult r = MipSolver().Solve(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(SolverEdgeTest, ZeroTimeLimitStillReturnsWarmStart) {
  Model m;
  VarId x = m.AddInteger(0, 10, -1.0);
  (void)x;
  MipOptions options;
  options.time_limit_seconds = 0.0;
  std::vector<double> warm = {4.0};
  MipResult r = MipSolver(options).Solve(m, &warm);
  EXPECT_EQ(r.status, MipStatus::kFeasible);
  EXPECT_DOUBLE_EQ(r.objective, -4.0);
}

TEST(SolverEdgeTest, EqualityChain) {
  // x1 = 2, x2 = x1 + 3, x3 = x2 + 3 ... chained equalities.
  Model m;
  std::vector<VarId> xs;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(m.AddContinuous(-kInf, kInf, i == 9 ? 1.0 : 0.0));
  }
  RowId first = m.AddRow(2, 2);
  m.AddCoefficient(first, xs[0], 1.0);
  for (int i = 1; i < 10; ++i) {
    RowId r = m.AddRow(3, 3);
    m.AddCoefficient(r, xs[i], 1.0);
    m.AddCoefficient(r, xs[i - 1], -1.0);
  }
  LpResult result = SimplexSolver().Solve(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[xs[9]], 2.0 + 9 * 3.0, 1e-6);
}

TEST(SolverEdgeTest, NegativeCostFreeVariableUnbounded) {
  Model m;
  (void)m.AddContinuous(-kInf, kInf, 1.0);  // min x, unbounded below.
  EXPECT_EQ(SimplexSolver().Solve(m).status, LpStatus::kUnbounded);
}

}  // namespace
}  // namespace ras
