#include "src/solver/mip.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace ras {
namespace {

constexpr double kTol = 1e-5;

TEST(MipTest, PureLpPassesThrough) {
  Model m;
  VarId x = m.AddContinuous(0, 4, -1.0);
  (void)x;
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, kTol);
}

TEST(MipTest, SimpleIntegerRounding) {
  // max x st 2x <= 7, x integer -> x = 3.
  Model m;
  VarId x = m.AddInteger(0, kInf, -1.0);
  RowId r1 = m.AddRow(-kInf, 7);
  m.AddCoefficient(r1, x, 2);
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 3.0, kTol);
  EXPECT_NEAR(r.objective, -3.0, kTol);
}

TEST(MipTest, KnapsackKnownOptimum) {
  // Classic: capacity 10; items (value, weight): (10,5) (40,4) (30,6) (50,3).
  // Optimum: items 2 and 4 -> value 90, weight 7.
  Model m;
  double values[] = {10, 40, 30, 50};
  double weights[] = {5, 4, 6, 3};
  RowId cap = m.AddRow(-kInf, 10);
  std::vector<VarId> x;
  for (int i = 0; i < 4; ++i) {
    VarId v = m.AddInteger(0, 1, -values[i]);
    m.AddCoefficient(cap, v, weights[i]);
    x.push_back(v);
  }
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -90.0, kTol);
  EXPECT_NEAR(r.x[x[1]], 1.0, kTol);
  EXPECT_NEAR(r.x[x[3]], 1.0, kTol);
  EXPECT_NEAR(r.x[x[0]], 0.0, kTol);
  EXPECT_NEAR(r.x[x[2]], 0.0, kTol);
}

TEST(MipTest, AssignmentProblemIsIntegralAtRoot) {
  // 3x3 assignment; LP relaxation of assignment is integral, so B&B should
  // finish in one node.
  Model m;
  double cost[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
  VarId x[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      x[i][j] = m.AddInteger(0, 1, cost[i][j]);
    }
  }
  for (int i = 0; i < 3; ++i) {
    RowId r = m.AddRow(1, 1);
    for (int j = 0; j < 3; ++j) {
      m.AddCoefficient(r, x[i][j], 1);
    }
  }
  for (int j = 0; j < 3; ++j) {
    RowId r = m.AddRow(1, 1);
    for (int i = 0; i < 3; ++i) {
      m.AddCoefficient(r, x[i][j], 1);
    }
  }
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  // Optimal: (0,1)+(1,2)+(2,0) = 2+7+3 = 12? Alternatives: (0,0)+(1,1)+(2,2)
  // = 4+3+6=13; (0,1)+(1,0)+(2,2)=2+4+6=12. Min is 12.
  EXPECT_NEAR(r.objective, 12.0, kTol);
  EXPECT_LE(r.nodes, 5);
}

TEST(MipTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6, x integer: no integer point.
  Model m;
  (void)m.AddInteger(0, 1, 1.0);
  RowId r1 = m.AddRow(0.4, 0.6);
  m.AddCoefficient(r1, 0, 1);
  MipResult r = MipSolver().Solve(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(MipTest, UnboundedProblem) {
  Model m;
  (void)m.AddInteger(0, kInf, -1.0);
  MipResult r = MipSolver().Solve(m);
  // A fully unbounded integer variable: the LP relaxation is unbounded.
  EXPECT_EQ(r.status, MipStatus::kUnbounded);
}

TEST(MipTest, WarmStartSeedsIncumbent) {
  Model m;
  VarId x = m.AddInteger(0, 10, -1.0);
  RowId r1 = m.AddRow(-kInf, 7.5);
  m.AddCoefficient(r1, x, 1);
  std::vector<double> warm = {5.0};
  MipOptions opts;
  opts.max_nodes = 0;  // No search at all; only the warm start survives.
  MipResult r = MipSolver(opts).Solve(m, &warm);
  EXPECT_EQ(r.status, MipStatus::kFeasible);
  EXPECT_NEAR(r.objective, -5.0, kTol);
}

TEST(MipTest, InfeasibleWarmStartIgnored) {
  Model m;
  VarId x = m.AddInteger(0, 10, -1.0);
  RowId r1 = m.AddRow(-kInf, 7.5);
  m.AddCoefficient(r1, x, 1);
  std::vector<double> warm = {9.0};  // Violates the row.
  MipResult r = MipSolver().Solve(m, &warm);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -7.0, kTol);
}

TEST(MipTest, MixedIntegerContinuous) {
  // min -x - 10y, x continuous in [0, 3.7], y integer, x + 2y <= 6.
  // y = 3 -> x = 0, obj -30; y = 2 -> x = 2 -> -22. Optimal y=3? x+2y<=6 ->
  // y=3 forces x=0 -> -30. Yes.
  Model m;
  VarId x = m.AddContinuous(0, 3.7, -1.0);
  VarId y = m.AddInteger(0, kInf, -10.0);
  RowId r1 = m.AddRow(-kInf, 6);
  m.AddCoefficient(r1, x, 1);
  m.AddCoefficient(r1, y, 2);
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[y], 3.0, kTol);
  EXPECT_NEAR(r.x[x], 0.0, kTol);
  EXPECT_NEAR(r.objective, -30.0, kTol);
}

TEST(MipTest, NodeLimitReportsFeasibleWithGap) {
  // A knapsack big enough to need several nodes; cap nodes at 1.
  Rng rng(99);
  Model m;
  RowId cap = m.AddRow(-kInf, 50);
  for (int i = 0; i < 20; ++i) {
    VarId v = m.AddInteger(0, 1, -rng.Uniform(1, 20));
    m.AddCoefficient(cap, v, rng.Uniform(1, 15));
  }
  MipOptions opts;
  opts.max_nodes = 1;
  MipResult r = MipSolver(opts).Solve(m);
  // One node: either optimal (integral root) or an early stop with a bound.
  if (r.status == MipStatus::kFeasible) {
    EXPECT_LE(r.best_bound, r.objective + kTol);
  } else {
    EXPECT_TRUE(r.status == MipStatus::kOptimal || r.status == MipStatus::kNoSolutionFound);
  }
}

TEST(MipTest, GapIsNonNegativeAndClosesAtOptimality) {
  Model m;
  VarId x = m.AddInteger(0, 10, -3.0);
  RowId r1 = m.AddRow(-kInf, 8.4);
  m.AddCoefficient(r1, x, 1);
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.gap(), 0.0, kTol);
}

// Property sweep: random knapsacks cross-checked against brute force.
class RandomKnapsackTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomKnapsackTest, MatchesBruteForce) {
  Rng rng(500 + GetParam());
  int n = static_cast<int>(rng.UniformInt(4, 12));
  std::vector<double> value(n), weight(n);
  double capacity = 0;
  for (int i = 0; i < n; ++i) {
    value[i] = rng.Uniform(1, 30);
    weight[i] = rng.Uniform(1, 10);
    capacity += weight[i];
  }
  capacity *= 0.4;

  Model m;
  RowId cap = m.AddRow(-kInf, capacity);
  for (int i = 0; i < n; ++i) {
    VarId v = m.AddInteger(0, 1, -value[i]);
    m.AddCoefficient(cap, v, weight[i]);
  }
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal) << "case " << GetParam();

  // Brute force over all subsets.
  double best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double v = 0, w = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        v += value[i];
        w += weight[i];
      }
    }
    if (w <= capacity + 1e-9) {
      best = std::max(best, v);
    }
  }
  EXPECT_NEAR(-r.objective, best, 1e-4) << "case " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomKnapsackTest, ::testing::Range(0, 30));

// Property sweep: random bounded integer programs where a feasible integer
// point is planted by construction; solver must find something at least as
// good and integral.
class RandomIntegerLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomIntegerLpTest, FindsFeasibleIntegerAtLeastAsGood) {
  Rng rng(9000 + GetParam());
  int n = static_cast<int>(rng.UniformInt(3, 8));
  int rows = static_cast<int>(rng.UniformInt(2, 6));
  Model m;
  std::vector<double> planted(n);
  for (int j = 0; j < n; ++j) {
    int64_t lb = rng.UniformInt(-3, 0);
    int64_t ub = lb + rng.UniformInt(2, 8);
    planted[j] = static_cast<double>(rng.UniformInt(lb, ub));
    m.AddInteger(static_cast<double>(lb), static_cast<double>(ub), rng.Uniform(-3, 3));
  }
  for (int i = 0; i < rows; ++i) {
    RowId r = m.AddRow(0, 0);
    double activity = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.5)) {
        double c = static_cast<double>(rng.UniformInt(-3, 3));
        m.AddCoefficient(r, j, c);
        activity += c * planted[j];
      }
    }
    m.SetRowBounds(r, activity - rng.Uniform(0, 4), activity + rng.Uniform(0, 4));
  }
  MipResult r = MipSolver().Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal) << "case " << GetParam();
  EXPECT_TRUE(m.IsFeasible(r.x, 1e-5));
  EXPECT_LE(r.objective, m.Objective(planted) + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomIntegerLpTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace ras
