#include "src/solver/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace ras {
namespace {

constexpr double kTol = 1e-6;

TEST(SimplexTest, UnconstrainedBoxMinimum) {
  // min 2x - 3y, x in [1,4], y in [0,5]: x=1, y=5, obj=-13.
  Model m;
  m.AddContinuous(1, 4, 2.0, "x");
  m.AddContinuous(0, 5, -3.0, "y");
  LpResult r = SimplexSolver().Solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, kTol);
  EXPECT_NEAR(r.x[1], 5.0, kTol);
  EXPECT_NEAR(r.objective, -13.0, kTol);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier-Lieberman).
  // Optimal: x=2, y=6, obj=36. We minimize the negation.
  Model m;
  VarId x = m.AddContinuous(0, kInf, -3.0, "x");
  VarId y = m.AddContinuous(0, kInf, -5.0, "y");
  RowId r1 = m.AddRow(-kInf, 4);
  m.AddCoefficient(r1, x, 1);
  RowId r2 = m.AddRow(-kInf, 12);
  m.AddCoefficient(r2, y, 2);
  RowId r3 = m.AddRow(-kInf, 18);
  m.AddCoefficient(r3, x, 3);
  m.AddCoefficient(r3, y, 2);
  LpResult r = SimplexSolver().Solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, kTol);
  EXPECT_NEAR(r.x[1], 6.0, kTol);
  EXPECT_NEAR(r.objective, -36.0, kTol);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y st x + y = 10, x in [0, 4] -> x=4, y=6 not needed: both cost 1,
  // any split is optimal with obj 10.
  Model m;
  VarId x = m.AddContinuous(0, 4, 1.0);
  VarId y = m.AddContinuous(0, kInf, 1.0);
  RowId r1 = m.AddRow(10, 10);
  m.AddCoefficient(r1, x, 1);
  m.AddCoefficient(r1, y, 1);
  LpResult r = SimplexSolver().Solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0] + r.x[1], 10.0, kTol);
  EXPECT_NEAR(r.objective, 10.0, kTol);
}

TEST(SimplexTest, GreaterEqualNeedsPhase1) {
  // min x + 2y st x + y >= 5, x - y >= -2, x,y >= 0.
  // Optimum: y as small as possible -> y = 0? x+0>=5, x-0>=-2 -> x=5 obj 5.
  Model m;
  VarId x = m.AddContinuous(0, kInf, 1.0);
  VarId y = m.AddContinuous(0, kInf, 2.0);
  RowId r1 = m.AddRow(5, kInf);
  m.AddCoefficient(r1, x, 1);
  m.AddCoefficient(r1, y, 1);
  RowId r2 = m.AddRow(-2, kInf);
  m.AddCoefficient(r2, x, 1);
  m.AddCoefficient(r2, y, -1);
  LpResult r = SimplexSolver().Solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, kTol);
  EXPECT_NEAR(r.x[0], 5.0, kTol);
  EXPECT_NEAR(r.x[1], 0.0, kTol);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 2 and x >= 5 simultaneously.
  Model m;
  VarId x = m.AddContinuous(0, kInf, 1.0);
  RowId r1 = m.AddRow(-kInf, 2);
  m.AddCoefficient(r1, x, 1);
  RowId r2 = m.AddRow(5, kInf);
  m.AddCoefficient(r2, x, 1);
  LpResult r = SimplexSolver().Solve(m);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, EmptyBoundRangeInfeasible) {
  Model m;
  (void)m.AddContinuous(0, 10, 1.0);
  SimplexSolver solver;
  LpResult r = solver.Solve(m, {BoundOverride{0, 5, 3}});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x with x >= 0 and no upper bound.
  Model m;
  VarId x = m.AddContinuous(0, kInf, -1.0);
  RowId r1 = m.AddRow(0, kInf);  // x >= 0, redundant.
  m.AddCoefficient(r1, x, 1);
  LpResult r = SimplexSolver().Solve(m);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, FreeVariable) {
  // min (x - 3)^ via |.|-free proxy: min y st y >= x - 3, y >= 3 - x, x free.
  // Optimal y = 0 at x = 3.
  Model m;
  VarId x = m.AddContinuous(-kInf, kInf, 0.0, "x");
  VarId y = m.AddContinuous(0, kInf, 1.0, "y");
  RowId r1 = m.AddRow(-3, kInf);  // y - x >= -3.
  m.AddCoefficient(r1, y, 1);
  m.AddCoefficient(r1, x, -1);
  RowId r2 = m.AddRow(3, kInf);  // y + x >= 3.
  m.AddCoefficient(r2, y, 1);
  m.AddCoefficient(r2, x, 1);
  LpResult r = SimplexSolver().Solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, kTol);
  EXPECT_NEAR(r.x[0], 3.0, kTol);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x + y, x in [-5, 5], y in [-3, 3], x + y >= -6 -> x=-5, y=-1? No:
  // x+y >= -6 binds: minimize x+y means x+y=-6, obj=-6.
  Model m;
  VarId x = m.AddContinuous(-5, 5, 1.0);
  VarId y = m.AddContinuous(-3, 3, 1.0);
  RowId r1 = m.AddRow(-6, kInf);
  m.AddCoefficient(r1, x, 1);
  m.AddCoefficient(r1, y, 1);
  LpResult r = SimplexSolver().Solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -6.0, kTol);
}

TEST(SimplexTest, BoundOverridesRespected) {
  Model m;
  VarId x = m.AddContinuous(0, 10, -1.0);
  RowId r1 = m.AddRow(-kInf, 100);
  m.AddCoefficient(r1, x, 1);
  SimplexSolver solver;
  LpResult base = solver.Solve(m);
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  EXPECT_NEAR(base.x[0], 10.0, kTol);
  LpResult tightened = solver.Solve(m, {BoundOverride{x, 0, 4}});
  ASSERT_EQ(tightened.status, LpStatus::kOptimal);
  EXPECT_NEAR(tightened.x[0], 4.0, kTol);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  Model m;
  VarId x = m.AddContinuous(0, kInf, -1.0);
  VarId y = m.AddContinuous(0, kInf, -1.0);
  for (int i = 1; i <= 8; ++i) {
    RowId r = m.AddRow(-kInf, 4);
    m.AddCoefficient(r, x, 1.0);
    m.AddCoefficient(r, y, static_cast<double>(i) / 8.0 * 0 + 1.0);
  }
  RowId r = m.AddRow(-kInf, 3);
  m.AddCoefficient(r, x, 1.0);
  LpResult result = SimplexSolver().Solve(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, -4.0, kTol);
}

TEST(SimplexTest, DualsSatisfyStrongDuality) {
  // For the classic LP, primal obj == dual obj: y.b with correct signs.
  Model m;
  VarId x = m.AddContinuous(0, kInf, -3.0);
  VarId y = m.AddContinuous(0, kInf, -5.0);
  RowId r1 = m.AddRow(-kInf, 4);
  m.AddCoefficient(r1, x, 1);
  RowId r2 = m.AddRow(-kInf, 12);
  m.AddCoefficient(r2, y, 2);
  RowId r3 = m.AddRow(-kInf, 18);
  m.AddCoefficient(r3, x, 3);
  m.AddCoefficient(r3, y, 2);
  LpResult r = SimplexSolver().Solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  ASSERT_EQ(r.duals.size(), 3u);
  double dual_obj = r.duals[0] * 4 + r.duals[1] * 12 + r.duals[2] * 18;
  EXPECT_NEAR(dual_obj, r.objective, 1e-5);
}

TEST(SimplexTest, TransportationProblem) {
  // 2 suppliers (10, 15) -> 3 consumers (8, 7, 10), unit costs:
  //   c = [[2, 4, 5], [3, 1, 7]]. Supply equals demand (25), so both
  // suppliers ship everything. Optimum: s0 -> C 10 units @5 (=50),
  // s1 -> A 8 @3 (=24), s1 -> B 7 @1 (=7), total 81.
  Model m;
  double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  double supply[2] = {10, 15};
  double demand[3] = {8, 7, 10};
  VarId x[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      x[i][j] = m.AddContinuous(0, kInf, cost[i][j]);
    }
  }
  for (int i = 0; i < 2; ++i) {
    RowId r = m.AddRow(-kInf, supply[i]);
    for (int j = 0; j < 3; ++j) {
      m.AddCoefficient(r, x[i][j], 1);
    }
  }
  for (int j = 0; j < 3; ++j) {
    RowId r = m.AddRow(demand[j], kInf);
    for (int i = 0; i < 2; ++i) {
      m.AddCoefficient(r, x[i][j], 1);
    }
  }
  LpResult r = SimplexSolver().Solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 81.0, kTol);
}

// Property sweep: random feasible-by-construction LPs; the simplex solution
// must be feasible and no worse than the construction point.
class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, FeasibleAndBeatsReferencePoint) {
  Rng rng(1000 + GetParam());
  int n = static_cast<int>(rng.UniformInt(3, 12));
  int rows = static_cast<int>(rng.UniformInt(2, 10));
  Model m;
  std::vector<double> ref(n);
  for (int j = 0; j < n; ++j) {
    double lb = rng.Uniform(-5, 0);
    double ub = lb + rng.Uniform(1, 10);
    ref[j] = rng.Uniform(lb, ub);
    m.AddContinuous(lb, ub, rng.Uniform(-3, 3));
  }
  for (int i = 0; i < rows; ++i) {
    RowId r = m.AddRow(0, 0);  // Placeholder bounds set below.
    double activity = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.6)) {
        double c = rng.Uniform(-2, 2);
        m.AddCoefficient(r, j, c);
        activity += c * ref[j];
      }
    }
    // Bounds that include the reference point's activity.
    double slack_lo = rng.Uniform(0.1, 5);
    double slack_hi = rng.Uniform(0.1, 5);
    m.SetRowBounds(r, activity - slack_lo, activity + slack_hi);
  }
  LpResult result = SimplexSolver().Solve(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal) << "case " << GetParam();
  EXPECT_TRUE(m.IsFeasible(result.x, 1e-5));
  EXPECT_LE(result.objective, m.Objective(ref) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace ras
