// Parallel branch-and-bound correctness.
//
// threads > 1 changes the node exploration order, not the mathematics: any
// proven-optimal objective must match the serial solver's, incumbents must be
// feasible, and threads = 1 must stay bit-deterministic. Exercised both on
// small random pure-integer models and on a real RAS phase-1 model (the
// Figure 9 workload shape).

#include "src/solver/mip.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/initial_assignment.h"
#include "src/core/lp_rounding.h"
#include "src/core/buffer_policy.h"
#include "src/core/rru.h"
#include "src/fleet/fleet_gen.h"
#include "src/fleet/service_profile.h"
#include "src/util/rng.h"

namespace ras {
namespace {

// Random bounded integer program: min c.x s.t. Ax <= b, x integer in [0, U].
// A >= 0 and b >= 0, so x = 0 is always feasible and the model never
// unbounded — every instance has a provable optimum.
Model RandomIp(Rng& rng) {
  Model m;
  const int num_vars = 3 + static_cast<int>(rng.UniformInt(0, 5));
  const int num_rows = 2 + static_cast<int>(rng.UniformInt(0, 3));
  for (int j = 0; j < num_vars; ++j) {
    m.AddInteger(0.0, 1.0 + static_cast<double>(rng.UniformInt(0, 4)),
                 rng.Uniform(-5.0, -0.5));
  }
  for (int r = 0; r < num_rows; ++r) {
    RowId row = m.AddRow(-kInf, rng.Uniform(3.0, 15.0));
    for (int j = 0; j < num_vars; ++j) {
      if (rng.NextDouble() < 0.6) {
        m.AddCoefficient(row, j, rng.Uniform(0.2, 3.0));
      }
    }
  }
  return m;
}

MipOptions TightOptions(int threads) {
  MipOptions options;
  options.threads = threads;
  options.absolute_gap = 1e-6;
  options.relative_gap = 1e-9;
  options.max_nodes = 200000;
  options.time_limit_seconds = 120.0;
  return options;
}

TEST(ParallelMipTest, RandomModelsMatchSerialObjective) {
  Rng rng(606);
  int64_t total_nodes = 0;
  for (int trial = 0; trial < 25; ++trial) {
    Model m = RandomIp(rng);
    MipResult serial = MipSolver(TightOptions(1)).Solve(m);
    MipResult parallel = MipSolver(TightOptions(4)).Solve(m);
    ASSERT_EQ(serial.status, MipStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(parallel.status, MipStatus::kOptimal) << "trial " << trial;
    // Both proved optimality, so the objectives must agree even though the
    // argmax vertices (and the node counts) may differ.
    EXPECT_NEAR(serial.objective, parallel.objective,
                1e-6 * (1.0 + std::fabs(serial.objective)))
        << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(parallel.x, 1e-6)) << "trial " << trial;
    EXPECT_LE(parallel.best_bound, parallel.objective + 1e-6) << "trial " << trial;
    total_nodes += serial.nodes;
  }
  // The generator must actually produce branching trees, or this test says
  // nothing about concurrent node exploration.
  EXPECT_GT(total_nodes, 100);
}

TEST(ParallelMipTest, SerialIsBitDeterministic) {
  Rng rng(707);
  for (int trial = 0; trial < 5; ++trial) {
    Model m = RandomIp(rng);
    MipResult a = MipSolver(TightOptions(1)).Solve(m);
    MipResult b = MipSolver(TightOptions(1)).Solve(m);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    EXPECT_EQ(a.x, b.x) << "trial " << trial;  // Bitwise, not approximate.
    EXPECT_EQ(a.nodes, b.nodes) << "trial " << trial;
    EXPECT_EQ(a.lp_iterations, b.lp_iterations) << "trial " << trial;
  }
}

TEST(ParallelMipTest, NodeLimitStillReturnsFeasibleIncumbent) {
  Rng rng(808);
  Model m = RandomIp(rng);
  MipOptions options = TightOptions(4);
  options.max_nodes = 2;  // Trip the limit almost immediately.
  MipResult r = MipSolver(options).Solve(m);
  ASSERT_TRUE(r.status == MipStatus::kOptimal || r.status == MipStatus::kFeasible);
  ASSERT_FALSE(r.x.empty());
  EXPECT_TRUE(m.IsFeasible(r.x, 1e-6));
  EXPECT_LE(r.best_bound, r.objective + 1e-6);
}

// The Figure 9 workload shape: a real phase-1 RAS model with the LP-guided
// rounding heuristic installed, solved to proven optimality by both the
// serial and the 4-worker search.
TEST(ParallelMipTest, RasPhase1ModelMatchesSerial) {
  FleetOptions fleet_options;
  fleet_options.num_datacenters = 2;
  fleet_options.msbs_per_datacenter = 2;
  fleet_options.racks_per_msb = 3;
  fleet_options.servers_per_rack = 6;
  fleet_options.seed = 2026;
  Fleet fleet = GenerateFleet(fleet_options);
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  // No shared buffers: the buffer piecewise-cost terms, like paper-profile
  // RRU vectors, carry a small inherent LP-IP gap that would keep both
  // searches from proving optimality (the property this test is about).
  // Count-based reservations with integer capacities: the LP bound is tight
  // (no fractional-coverage rounding gap), so branch-and-bound can prove
  // optimality — the property this test needs from both searches. Paper-
  // profile RRU vectors leave an inherent LP-IP gap no search can close
  // (fig09_quality_gap.cpp measures it); they are covered by the bench.
  for (int i = 0; i < 4; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = 6.0 + 2.0 * i;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    // The worst-MSB buffer variable (expression 4) rounds fractionally in the
    // LP, leaving the same kind of unclosable gap.
    spec.needs_correlated_buffer = false;
    ASSERT_TRUE(registry.Create(spec).ok());
  }

  // Concentrated pre-existing bindings (as in fig09_quality_gap.cpp) so the
  // search actually has to weigh stability against acquisition and branch.
  SolveInput probe = SnapshotSolveInput(broker, registry, fleet.catalog);
  for (size_t r = 0; r < probe.reservations.size() && r < 3; ++r) {
    for (ServerId id = static_cast<ServerId>(r * 12); id < (r + 1) * 12; ++id) {
      broker.SetCurrent(id, probe.reservations[r].id);
    }
  }

  SolverConfig config;
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
  auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built = BuildRasModel(input, classes, config, /*include_rack_spread=*/false);
  auto counts = BuildInitialCounts(input, classes, built);
  auto warm = MakeWarmStart(input, classes, built, counts);

  // Tight gap (phase1_mip's default gap would let the two runs stop at
  // different incumbents), generous budgets so both prove optimality.
  MipResult serial, parallel;
  for (int threads : {1, 4}) {
    MipOptions options = TightOptions(threads);
    options.absolute_gap = 1e-4;
    // No warm start and no LP-guided heuristic: they find the optimum at the
    // root on this workload, and the point here is to drive both searches
    // through a real branching tree.
    MipResult r = MipSolver(options).Solve(built.model);
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "threads=" << threads;
    EXPECT_TRUE(built.model.IsFeasible(r.x, 1e-5)) << "threads=" << threads;
    (threads == 1 ? serial : parallel) = r;
  }
  EXPECT_NEAR(serial.objective, parallel.objective,
              1e-4 * (1.0 + std::fabs(serial.objective)));
}

}  // namespace
}  // namespace ras
