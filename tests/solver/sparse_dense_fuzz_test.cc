// Randomized differential test: the sparse kernel path (CSC storage, partial
// pricing, adaptive refactorization) against the dense reference simplex.
// Both are exact algorithms over the same model, so on every instance they
// must agree on status, and on optimal instances on the objective to within
// numerical tolerance (the optimal vertex itself may differ under degeneracy).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/solver/model.h"
#include "src/solver/simplex.h"
#include "src/util/rng.h"

namespace ras {
namespace {

Model RandomLp(Rng& rng) {
  Model m;
  const int num_vars = 4 + static_cast<int>(rng.UniformInt(0, 12));
  const int num_rows = 3 + static_cast<int>(rng.UniformInt(0, 9));
  for (int j = 0; j < num_vars; ++j) {
    double ub = rng.Uniform(0.5, 10.0);
    double cost = rng.Uniform(-5.0, 5.0);
    m.AddContinuous(0.0, ub, cost);
  }
  for (int r = 0; r < num_rows; ++r) {
    // Row types: <= ub, >= lb, two-sided range, equality.
    double a = rng.Uniform(-8.0, 8.0);
    double b = rng.Uniform(-8.0, 12.0);
    RowId row;
    switch (rng.UniformInt(0, 3)) {
      case 0:
        row = m.AddRow(-kInf, std::max(a, b));
        break;
      case 1:
        row = m.AddRow(std::min(a, b), kInf);
        break;
      case 2:
        row = m.AddRow(std::min(a, b), std::max(a, b));
        break;
      default:
        row = m.AddRow(a, a);
        break;
    }
    int entries = 0;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.NextDouble() < 0.4) {
        m.AddCoefficient(row, j, rng.Uniform(-3.0, 3.0));
        ++entries;
      }
    }
    if (entries == 0) {
      // An empty row with lb > 0 would be trivially infeasible noise; give
      // every row at least one entry so infeasibility, when it happens, comes
      // from real constraint interaction.
      m.AddCoefficient(row, static_cast<VarId>(rng.UniformInt(0, num_vars - 1)),
                       rng.Uniform(0.5, 2.0));
    }
  }
  // Occasional duplicate (row, var) pairs: both paths must merge identically.
  if (m.num_rows() > 0 && rng.NextDouble() < 0.5) {
    m.AddCoefficient(0, 0, rng.Uniform(-1.0, 1.0));
    m.AddCoefficient(0, 0, rng.Uniform(-1.0, 1.0));
  }
  return m;
}

TEST(SparseDenseFuzzTest, SparseKernelsMatchDenseReference) {
  Rng rng(20260806);
  int optimal = 0;
  int infeasible = 0;
  for (int trial = 0; trial < 120; ++trial) {
    Model m = RandomLp(rng);

    LpOptions dense_options;
    dense_options.use_sparse_kernels = false;
    LpResult dense = SimplexSolver(dense_options).Solve(m);

    LpOptions sparse_options;
    sparse_options.use_sparse_kernels = true;
    // Tiny candidate list and frequent refresh: maximize partial-pricing
    // churn (stale candidates, forced full-scan fallbacks).
    sparse_options.pricing_candidates = 4;
    sparse_options.pricing_refresh_interval = 7;
    LpResult sparse = SimplexSolver(sparse_options).Solve(m);

    ASSERT_EQ(dense.status, sparse.status)
        << "trial " << trial << ": dense=" << LpStatusName(dense.status)
        << " sparse=" << LpStatusName(sparse.status);
    if (dense.status == LpStatus::kOptimal) {
      ++optimal;
      EXPECT_NEAR(dense.objective, sparse.objective, 1e-6 * (1.0 + std::fabs(dense.objective)))
          << "trial " << trial;
      // The sparse solution must satisfy the model exactly like the dense one.
      EXPECT_TRUE(m.IsFeasible(sparse.x, 1e-6)) << "trial " << trial;
      // Optimality is only ever declared after a full pricing scan.
      EXPECT_GE(sparse.full_pricing_scans, 1) << "trial " << trial;
    } else if (dense.status == LpStatus::kInfeasible) {
      ++infeasible;
    }
  }
  // The generator should produce a healthy mix; if not, the test is vacuous.
  EXPECT_GE(optimal, 30);
  EXPECT_GE(infeasible, 5);
}

TEST(SparseDenseFuzzTest, AdaptiveRefactorizationTriggersAndStaysCorrect) {
  // Force eta-fill refactorizations with a near-zero growth limit: every
  // pivot's eta exceeds the budget, so each iteration refactorizes. The
  // result must still match the dense reference, and the adaptive counter
  // must show the trigger fired.
  Rng rng(77);
  int64_t adaptive_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Model m = RandomLp(rng);

    LpOptions dense_options;
    dense_options.use_sparse_kernels = false;
    LpResult dense = SimplexSolver(dense_options).Solve(m);

    LpOptions tight;
    tight.use_sparse_kernels = true;
    tight.eta_growth_limit = 0.0;
    LpResult sparse = SimplexSolver(tight).Solve(m);

    ASSERT_EQ(dense.status, sparse.status) << "trial " << trial;
    if (dense.status == LpStatus::kOptimal) {
      EXPECT_NEAR(dense.objective, sparse.objective, 1e-6 * (1.0 + std::fabs(dense.objective)))
          << "trial " << trial;
    }
    adaptive_total += sparse.adaptive_refactorizations;
    EXPECT_GE(sparse.refactorizations, sparse.adaptive_refactorizations);
  }
  EXPECT_GT(adaptive_total, 0);
}

TEST(SparseDenseFuzzTest, InstrumentationCountersPopulated) {
  Rng rng(4242);
  Model m = RandomLp(rng);
  LpOptions options;
  options.use_sparse_kernels = true;
  LpResult result = SimplexSolver(options).Solve(m);
  if (result.status == LpStatus::kOptimal) {
    EXPECT_GE(result.refactorizations, 1);  // The initial factorization counts.
    EXPECT_GE(result.full_pricing_scans, 1);
    EXPECT_GE(result.eta_nonzeros, 0);
  }
}

}  // namespace
}  // namespace ras
