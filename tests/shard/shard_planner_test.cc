// Shard planner: rack-complete, balanced, deterministic partitions.

#include "src/shard/shard_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

Fleet TestFleet(uint64_t seed = 21) {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 6;
  opts.servers_per_rack = 8;
  opts.seed = seed;
  return GenerateFleet(opts);  // 288 servers, 36 racks.
}

TEST(ShardPlannerTest, RackCompleteAndCoversEveryServer) {
  Fleet fleet = TestFleet();
  ShardPlanOptions opts;
  opts.shard_count = 4;
  ShardPlan plan = PlanShards(fleet.topology, opts);
  ASSERT_EQ(plan.shard_count, 4);

  // Every rack's servers land in exactly the rack's shard.
  for (RackId rack = 0; rack < fleet.topology.num_racks(); ++rack) {
    for (ServerId id : fleet.topology.ServersInRack(rack)) {
      EXPECT_EQ(plan.shard_of_server[id], plan.shard_of_rack[rack]);
    }
  }

  // The shard server lists partition the fleet: disjoint and complete.
  std::set<ServerId> seen;
  size_t total = 0;
  for (const auto& shard : plan.servers) {
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
    for (ServerId id : shard) {
      EXPECT_TRUE(seen.insert(id).second) << "server " << id << " in two shards";
    }
    total += shard.size();
  }
  EXPECT_EQ(total, fleet.topology.num_servers());
}

TEST(ShardPlannerTest, BalancedWithinOneRack) {
  Fleet fleet = TestFleet();
  ShardPlanOptions opts;
  opts.shard_count = 4;
  ShardPlan plan = PlanShards(fleet.topology, opts);
  size_t min_size = fleet.topology.num_servers();
  size_t max_size = 0;
  for (const auto& shard : plan.servers) {
    min_size = std::min(min_size, shard.size());
    max_size = std::max(max_size, shard.size());
  }
  // Homogeneous 8-server racks: shard sizes differ by at most one rack.
  EXPECT_LE(max_size - min_size, 8u);
}

TEST(ShardPlannerTest, EveryShardSamplesEveryMsb) {
  // Stratified dealing: with racks_per_msb >= K, every shard draws at least
  // one rack from every MSB, so per-shard Ψ_F spread and buffer terms see
  // the full fault-domain structure.
  Fleet fleet = TestFleet();
  for (int k : {2, 4, 6}) {
    ShardPlanOptions opts;
    opts.shard_count = k;
    ShardPlan plan = PlanShards(fleet.topology, opts);
    std::vector<std::set<MsbId>> msbs(static_cast<size_t>(k));
    for (RackId rack = 0; rack < fleet.topology.num_racks(); ++rack) {
      msbs[static_cast<size_t>(plan.shard_of_rack[rack])].insert(fleet.topology.rack_msb(rack));
    }
    for (int shard = 0; shard < k; ++shard) {
      EXPECT_EQ(msbs[static_cast<size_t>(shard)].size(), fleet.topology.num_msbs())
          << "K=" << k << " shard " << shard << " missing an MSB";
    }
  }
}

TEST(ShardPlannerTest, DeterministicInSeedAndSensitiveToIt) {
  Fleet fleet = TestFleet();
  ShardPlanOptions opts;
  opts.shard_count = 4;
  opts.seed = 77;
  ShardPlan a = PlanShards(fleet.topology, opts);
  ShardPlan b = PlanShards(fleet.topology, opts);
  EXPECT_EQ(a.shard_of_rack, b.shard_of_rack);
  EXPECT_EQ(a.shard_of_server, b.shard_of_server);

  opts.seed = 78;
  ShardPlan c = PlanShards(fleet.topology, opts);
  EXPECT_NE(a.shard_of_rack, c.shard_of_rack) << "different seeds produced the same partition";
}

TEST(ShardPlannerTest, SingleShardTakesEverything) {
  Fleet fleet = TestFleet();
  ShardPlanOptions opts;
  opts.shard_count = 1;
  ShardPlan plan = PlanShards(fleet.topology, opts);
  ASSERT_EQ(plan.shard_count, 1);
  EXPECT_EQ(plan.servers[0].size(), fleet.topology.num_servers());
}

TEST(ShardPlannerTest, ShardCountClampedToRacks) {
  Fleet fleet = TestFleet();
  ShardPlanOptions opts;
  opts.shard_count = 1000;  // Far more than 36 racks.
  ShardPlan plan = PlanShards(fleet.topology, opts);
  EXPECT_EQ(plan.shard_count, static_cast<int>(fleet.topology.num_racks()));
  for (const auto& shard : plan.servers) {
    EXPECT_FALSE(shard.empty());
  }
}

TEST(ShardPlannerTest, AutoShardCountHeuristic) {
  // Small regions stay monolithic; big ones get ~one shard per target chunk,
  // capped. Hardware threads pinned to 8 so the parallelism knee (below)
  // never bites here regardless of the host running the test.
  EXPECT_EQ(AutoShardCount(288, 2500, 16, 8), 1);
  EXPECT_EQ(AutoShardCount(4999, 2500, 16, 8), 1);
  EXPECT_EQ(AutoShardCount(5000, 2500, 16, 8), 2);
  EXPECT_EQ(AutoShardCount(10000, 2500, 16, 8), 4);
  EXPECT_EQ(AutoShardCount(1000000, 2500, 16, 8), 16);
  EXPECT_EQ(AutoShardCount(1000000, 2500, 32, 8), 32);
}

TEST(ShardPlannerTest, AutoShardCountClampedByHardwareThreads) {
  // The measured over-decomposition knee (bench_shard_scaling: K=8 regresses
  // to 1.70x where K=4 reaches 2.41x on a 1-thread host): auto-K stops at 4
  // shards per hardware thread, however large the fleet.
  EXPECT_EQ(AutoShardCount(1000000, 2500, 16, 1), 4);
  EXPECT_EQ(AutoShardCount(1000000, 2500, 16, 2), 8);
  EXPECT_EQ(AutoShardCount(1000000, 2500, 16, 4), 16);  // Knee past the cap.
  // Small regions are unaffected: the monolithic floor still wins.
  EXPECT_EQ(AutoShardCount(4999, 2500, 16, 1), 1);
  // Default (0) queries the host; the result respects both cap and knee.
  int k = AutoShardCount(1000000);
  EXPECT_GE(k, 1);
  EXPECT_LE(k, 16);
}

TEST(ShardPlannerTest, EffectiveShardCountResolution) {
  EXPECT_EQ(EffectiveShardCount(1, 100000, 1000), 1);  // Monolithic stays monolithic.
  EXPECT_EQ(EffectiveShardCount(8, 100000, 1000), 8);  // Fixed K: never clamped by threads.
  EXPECT_EQ(EffectiveShardCount(8, 100000, 4), 4);     // Clamped to racks.
  // Auto-K: one shard per 2500 servers, capped at 16 and at the host knee.
  int auto_k = EffectiveShardCount(0, 100000, 1000);
  EXPECT_GE(auto_k, 4);  // Even a 1-thread host allows K=4.
  EXPECT_LE(auto_k, 16);
  EXPECT_EQ(EffectiveShardCount(0, 288, 36), 1);  // Auto-K, small region.
}

}  // namespace
}  // namespace ras
