// Demand splitting: property tests for exact conservation across shards —
// no RRU lost or duplicated — including heterogeneous-hardware RRU edge
// cases where some shards cannot serve a reservation at all.

#include "src/shard/demand_splitter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/fleet/fleet_gen.h"
#include "src/util/rng.h"

namespace ras {
namespace {

double Sum(const std::vector<double>& v) { return std::accumulate(v.begin(), v.end(), 0.0); }

TEST(SplitByLargestRemainderTest, IntegralTotalsConserveExactly) {
  Rng rng(4242);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t k = static_cast<size_t>(rng.UniformInt(1, 12));
    const double total = static_cast<double>(rng.LogUniformInt(1, 30000));
    std::vector<double> weights(k);
    for (double& w : weights) {
      // Mix of zero-weight shards (no usable hardware) and skewed positive
      // weights.
      w = rng.Bernoulli(0.25) ? 0.0 : rng.Uniform(0.1, 100.0);
    }
    std::vector<double> shares = SplitByLargestRemainder(total, weights);
    ASSERT_EQ(shares.size(), k);
    // Integral demand: pure integer largest-remainder, so the sum is *exactly*
    // the original — bit-for-bit, no tolerance.
    EXPECT_EQ(Sum(shares), total) << "trial " << trial;
    for (size_t i = 0; i < k; ++i) {
      EXPECT_GE(shares[i], 0.0);
      EXPECT_EQ(std::floor(shares[i]), shares[i]) << "integral demand split fractionally";
      if (weights[i] <= 0.0 && Sum(weights) > 0.0) {
        EXPECT_EQ(shares[i], 0.0) << "zero-weight shard received demand";
      }
    }
  }
}

TEST(SplitByLargestRemainderTest, FractionalTotalsConserveToWithinOneUlp) {
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t k = static_cast<size_t>(rng.UniformInt(1, 12));
    const double total = rng.Uniform(0.0, 20000.0);
    std::vector<double> weights(k);
    for (double& w : weights) {
      w = rng.Bernoulli(0.25) ? 0.0 : rng.Uniform(0.1, 100.0);
    }
    std::vector<double> shares = SplitByLargestRemainder(total, weights);
    EXPECT_NEAR(Sum(shares), total, 1e-9 * std::max(1.0, total)) << "trial " << trial;
  }
}

TEST(SplitByLargestRemainderTest, ProportionalityWithinOneUnit) {
  // Largest remainder never deviates from the exact quota by a full unit.
  std::vector<double> weights = {3.0, 1.0, 1.0, 1.0};
  std::vector<double> shares = SplitByLargestRemainder(600.0, weights);
  EXPECT_EQ(Sum(shares), 600.0);
  EXPECT_NEAR(shares[0], 300.0, 1.0);
  for (size_t i = 1; i < shares.size(); ++i) {
    EXPECT_NEAR(shares[i], 100.0, 1.0);
  }
}

TEST(SplitByLargestRemainderTest, AllZeroWeightsFallBackToShardZero) {
  std::vector<double> shares = SplitByLargestRemainder(42.0, {0.0, 0.0, 0.0});
  EXPECT_EQ(shares[0], 42.0);  // Demand is conserved, not dropped.
  EXPECT_EQ(shares[1], 0.0);
  EXPECT_EQ(shares[2], 0.0);
}

TEST(SplitByLargestRemainderTest, ZeroAndEmptyEdges) {
  EXPECT_TRUE(SplitByLargestRemainder(10.0, {}).empty());
  std::vector<double> shares = SplitByLargestRemainder(0.0, {1.0, 2.0});
  EXPECT_EQ(Sum(shares), 0.0);
}

// --- SplitDemand over real fleets (heterogeneous hardware) ---

SolveInput MakeInput(const Fleet& fleet, std::vector<ReservationSpec> specs) {
  SolveInput input;
  input.topology = &fleet.topology;
  input.catalog = &fleet.catalog;
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].id = static_cast<ReservationId>(i + 1);
    input.reservations.push_back(specs[i]);
  }
  input.servers.resize(fleet.topology.num_servers());
  return input;
}

TEST(SplitDemandTest, RandomizedReservationsConserveAcrossShards) {
  FleetOptions fleet_opts;
  fleet_opts.num_datacenters = 2;
  fleet_opts.msbs_per_datacenter = 3;
  fleet_opts.racks_per_msb = 6;
  fleet_opts.servers_per_rack = 8;
  fleet_opts.seed = 5;
  Fleet fleet = GenerateFleet(fleet_opts);

  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ReservationSpec> specs;
    const int num_res = static_cast<int>(rng.UniformInt(1, 8));
    for (int r = 0; r < num_res; ++r) {
      ReservationSpec spec;
      spec.name = "svc-" + std::to_string(r);
      spec.capacity_rru = static_cast<double>(rng.LogUniformInt(1, 200));
      // Heterogeneous RRU vectors: each type usable with probability 1/2 and
      // a non-unit conversion rate when it is.
      spec.rru_per_type.assign(fleet.catalog.size(), 0.0);
      for (double& v : spec.rru_per_type) {
        v = rng.Bernoulli(0.5) ? rng.Uniform(0.25, 4.0) : 0.0;
      }
      if (Sum(spec.rru_per_type) == 0.0) {
        spec.rru_per_type[0] = 1.0;  // Keep the spec servable somewhere.
      }
      specs.push_back(spec);
    }
    SolveInput input = MakeInput(fleet, specs);

    ShardPlanOptions plan_opts;
    plan_opts.shard_count = static_cast<int>(rng.UniformInt(2, 8));
    plan_opts.seed = 1000 + static_cast<uint64_t>(trial);
    ShardPlan plan = PlanShards(fleet.topology, plan_opts);
    ShardDemand demand = SplitDemand(input, plan);

    for (size_t r = 0; r < input.reservations.size(); ++r) {
      // Exact conservation: the shares sum to the original integral demand.
      EXPECT_EQ(Sum(demand.shares[r]), input.reservations[r].capacity_rru)
          << "trial " << trial << " reservation " << r;
      double from_specs = 0.0;
      for (int k = 0; k < plan.shard_count; ++k) {
        from_specs += demand.reservations[static_cast<size_t>(k)][r].capacity_rru;
        // A shard with no usable hardware for this reservation gets no share
        // of its demand (unless nothing in the region can serve it).
        if (demand.usable_rru[r][static_cast<size_t>(k)] <= 0.0 &&
            Sum(demand.usable_rru[r]) > 0.0) {
          EXPECT_EQ(demand.shares[r][static_cast<size_t>(k)], 0.0);
        }
      }
      EXPECT_EQ(from_specs, input.reservations[r].capacity_rru);
    }
  }
}

TEST(SplitDemandTest, SmallReservationsLandWholeOnOneShard) {
  FleetOptions fleet_opts;
  fleet_opts.num_datacenters = 2;
  fleet_opts.msbs_per_datacenter = 3;
  fleet_opts.racks_per_msb = 6;
  fleet_opts.servers_per_rack = 8;
  fleet_opts.seed = 7;
  Fleet fleet = GenerateFleet(fleet_opts);

  // Each reservation is tiny relative to a shard's capacity, so its span is
  // a single shard and its spread/buffer constraints run at full C_r scale.
  std::vector<ReservationSpec> specs;
  for (int r = 0; r < 6; ++r) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(r);
    spec.capacity_rru = 10.0;
    spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
    specs.push_back(spec);
  }
  SolveInput input = MakeInput(fleet, specs);

  ShardPlanOptions plan_opts;
  plan_opts.shard_count = 4;
  ShardPlan plan = PlanShards(fleet.topology, plan_opts);
  ShardDemand demand = SplitDemand(input, plan);

  std::vector<int> per_shard(4, 0);
  for (size_t r = 0; r < specs.size(); ++r) {
    ASSERT_EQ(demand.span[r].size(), 1u) << "small reservation " << r << " was fragmented";
    EXPECT_EQ(Sum(demand.shares[r]), 10.0);
    ++per_shard[static_cast<size_t>(demand.span[r][0])];
  }
  // Least-loaded placement spreads the six reservations over the four
  // shards instead of stacking them all on one.
  EXPECT_LE(*std::max_element(per_shard.begin(), per_shard.end()), 2);
}

TEST(SplitDemandTest, RegionSizedReservationSpansManyShards) {
  FleetOptions fleet_opts;
  fleet_opts.num_datacenters = 2;
  fleet_opts.msbs_per_datacenter = 3;
  fleet_opts.racks_per_msb = 6;
  fleet_opts.servers_per_rack = 8;
  fleet_opts.seed = 7;
  Fleet fleet = GenerateFleet(fleet_opts);  // 288 servers.

  ReservationSpec spec;
  spec.name = "huge";
  spec.capacity_rru = 200.0;  // ~70% of the region: no single shard can hold it.
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  SolveInput input = MakeInput(fleet, {spec});

  ShardPlanOptions plan_opts;
  plan_opts.shard_count = 4;
  ShardPlan plan = PlanShards(fleet.topology, plan_opts);
  ShardDemand demand = SplitDemand(input, plan);
  EXPECT_EQ(demand.span[0].size(), 4u);
  EXPECT_EQ(Sum(demand.shares[0]), 200.0);
  // Proportional within the span: every member carries a real piece.
  for (double share : demand.shares[0]) {
    EXPECT_GT(share, 20.0);
  }
}

TEST(SplitDemandTest, SpanDisabledSplitsAcrossAllShards) {
  FleetOptions fleet_opts;
  fleet_opts.seed = 7;
  Fleet fleet = GenerateFleet(fleet_opts);

  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 40.0;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  SolveInput input = MakeInput(fleet, {spec});

  ShardPlanOptions plan_opts;
  plan_opts.shard_count = 4;
  ShardPlan plan = PlanShards(fleet.topology, plan_opts);
  DemandSplitOptions split_opts;
  split_opts.span_max_fill = 0.0;  // Legacy: proportional across all K.
  ShardDemand demand = SplitDemand(input, plan, split_opts);
  EXPECT_EQ(demand.span[0].size(), 4u);
  EXPECT_EQ(Sum(demand.shares[0]), 40.0);
}

TEST(SplitDemandTest, SingleTypeReservationLandsWhereTheHardwareIs) {
  FleetOptions fleet_opts;
  fleet_opts.seed = 13;
  Fleet fleet = GenerateFleet(fleet_opts);

  // A reservation only the rarest SKU can serve: its demand must concentrate
  // on the shards that actually hold that SKU.
  std::vector<size_t> type_counts(fleet.catalog.size(), 0);
  for (const Server& s : fleet.topology.servers()) {
    ++type_counts[s.type];
  }
  HardwareTypeId rare = 0;
  for (HardwareTypeId t = 0; t < fleet.catalog.size(); ++t) {
    if (type_counts[t] > 0 && type_counts[t] < type_counts[rare]) {
      rare = t;
    }
  }
  ReservationSpec spec;
  spec.name = "rare-only";
  spec.capacity_rru = 10.0;
  spec.rru_per_type.assign(fleet.catalog.size(), 0.0);
  spec.rru_per_type[rare] = 1.0;
  SolveInput input = MakeInput(fleet, {spec});

  ShardPlanOptions plan_opts;
  plan_opts.shard_count = 6;
  ShardPlan plan = PlanShards(fleet.topology, plan_opts);
  ShardDemand demand = SplitDemand(input, plan);
  EXPECT_EQ(Sum(demand.shares[0]), 10.0);
  for (int k = 0; k < plan.shard_count; ++k) {
    if (demand.shares[0][static_cast<size_t>(k)] > 0.0) {
      EXPECT_GT(demand.usable_rru[0][static_cast<size_t>(k)], 0.0)
          << "demand sent to a shard with no rare-SKU servers";
    }
  }
}

TEST(SplitDemandTest, UnavailableServersSupplyNothing) {
  FleetOptions fleet_opts;
  fleet_opts.num_datacenters = 1;
  fleet_opts.msbs_per_datacenter = 2;
  fleet_opts.racks_per_msb = 4;
  fleet_opts.servers_per_rack = 4;
  fleet_opts.seed = 3;
  Fleet fleet = GenerateFleet(fleet_opts);

  ReservationSpec spec;
  spec.name = "svc";
  spec.capacity_rru = 16.0;
  spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
  SolveInput input = MakeInput(fleet, {spec});

  ShardPlanOptions plan_opts;
  plan_opts.shard_count = 2;
  ShardPlan plan = PlanShards(fleet.topology, plan_opts);

  // Kill every server in shard 0: its usable capacity must drop to zero and
  // the entire demand must shift to shard 1.
  for (ServerId id : plan.servers[0]) {
    input.servers[id].available = false;
  }
  ShardDemand demand = SplitDemand(input, plan);
  EXPECT_EQ(demand.usable_rru[0][0], 0.0);
  EXPECT_EQ(demand.shares[0][0], 0.0);
  EXPECT_EQ(demand.shares[0][1], 16.0);
}

}  // namespace
}  // namespace ras
