// Shard solve coordination + stitch repair + AsyncSolver/supervisor wiring.

#include "src/shard/shard_solve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "src/core/buffer_policy.h"
#include "src/core/solver_supervisor.h"
#include "src/fleet/fleet_gen.h"
#include "src/shard/stitch_repair.h"

namespace ras {
namespace {

FleetOptions SmallFleetOptions() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 6;
  opts.servers_per_rack = 8;
  opts.seed = 11;
  return opts;  // 288 servers, 36 racks.
}

ReservationSpec AnyTypeReservation(const HardwareCatalog& catalog, const std::string& name,
                                   double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(catalog.size(), 1.0);
  return spec;
}

struct TestRegion {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  explicit TestRegion(const FleetOptions& opts) : fleet(GenerateFleet(opts)) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
  }

  SolveInput Snapshot() const {
    return SnapshotSolveInput(*broker, registry, fleet.catalog);
  }
};

TEST(ShardSolveTest, MergedTargetsCoverEveryAvailableServerOnce) {
  TestRegion region(SmallFleetOptions());
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 50));
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "b", 40));
  SolveInput input = region.Snapshot();

  AsyncSolver solver;
  solver.mutable_config().shard_count = 3;
  DecodedAssignment decoded;
  auto stats = solver.SolveSnapshot(input, &decoded);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->shard_count, 3);
  EXPECT_EQ(stats->failed_shards, 0u);

  std::set<ServerId> seen;
  for (const auto& [server, res] : decoded.targets) {
    EXPECT_TRUE(seen.insert(server).second) << "server " << server << " targeted twice";
  }
  size_t available = 0;
  for (const auto& state : input.servers) {
    available += state.available ? 1 : 0;
  }
  EXPECT_EQ(seen.size(), available);
  EXPECT_TRUE(std::is_sorted(decoded.targets.begin(), decoded.targets.end()));
}

TEST(ShardSolveTest, ShardedSolveMeetsDemandAfterRepair) {
  TestRegion region(SmallFleetOptions());
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 60));
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "b", 45));
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "c", 30));
  SolveInput input = region.Snapshot();

  AsyncSolver solver;
  solver.mutable_config().shard_count = 4;
  DecodedAssignment decoded;
  auto stats = solver.SolveSnapshot(input, &decoded);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Plenty of spare capacity: after stitch repair nothing should be short.
  EXPECT_NEAR(stats->total_shortfall_rru, 0.0, 1e-6);
}

TEST(ShardSolveTest, ShardCountOneIsBitIdenticalToMonolithic) {
  TestRegion region(SmallFleetOptions());
  EnsureSharedBuffers(region.registry, region.fleet.topology, region.fleet.catalog, 0.02);
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 50));
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "b", 40));
  SolveInput input = region.Snapshot();

  // The monolithic reference: a solver predating any shard configuration
  // (default config), versus one with shard_count explicitly set to 1 plus
  // shard knobs that must be inert at K = 1.
  AsyncSolver reference;
  DecodedAssignment ref_decoded;
  auto ref_stats = reference.SolveSnapshot(input, &ref_decoded);
  ASSERT_TRUE(ref_stats.ok());

  AsyncSolver sharded;
  sharded.mutable_config().shard_count = 1;
  sharded.mutable_config().shard_seed = 999;
  sharded.mutable_config().shard_threads = 4;
  DecodedAssignment decoded;
  auto stats = sharded.SolveSnapshot(input, &decoded);
  ASSERT_TRUE(stats.ok());

  EXPECT_EQ(decoded.targets, ref_decoded.targets) << "shard_count=1 diverged from monolithic";
  EXPECT_EQ(stats->shard_count, 1);
  EXPECT_EQ(stats->repair_moves, 0u);
}

TEST(ShardSolveTest, ShardedSolveIsDeterministic) {
  TestRegion region(SmallFleetOptions());
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 50));
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "b", 40));
  SolveInput input = region.Snapshot();

  auto run = [&input]() {
    AsyncSolver solver;
    solver.mutable_config().shard_count = 4;
    DecodedAssignment decoded;
    auto stats = solver.SolveSnapshot(input, &decoded);
    EXPECT_TRUE(stats.ok());
    return decoded.targets;
  };
  EXPECT_EQ(run(), run()) << "same seed and K produced different assignments";
}

TEST(ShardSolveTest, FailedShardKeepsSnapshotBindingsAndRepairCovers) {
  TestRegion region(SmallFleetOptions());
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 30));
  SolveInput input = region.Snapshot();

  ShardPlanOptions plan_opts;
  plan_opts.shard_count = 3;
  ShardPlan plan = PlanShards(region.fleet.topology, plan_opts);
  ShardDemand demand = SplitDemand(input, plan);

  // The first shard carrying demand "crashes"; spanless shards never invoke
  // the solve function, so call order tracks the span in shard index order.
  ASSERT_FALSE(demand.span[0].empty());
  const int crashed = demand.span[0].front();
  int calls = 0;
  ShardSolveFn solve_shard = [&calls](int /*shard*/, const SolveInput& shard_input,
                                      DecodedAssignment* decoded) -> Result<SolveStats> {
    if (calls++ == 0) {
      return Status::Internal("injected shard crash");
    }
    AsyncSolver solver;
    return solver.SolveSnapshot(shard_input, decoded);
  };
  ShardSolveOptions opts;
  opts.threads = 1;  // Serial: `calls` needs no synchronization.
  ShardSolveOutcome outcome = SolveShards(input, plan, demand, solve_shard, opts);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.aggregate.failed_shards, 1u);
  EXPECT_FALSE(outcome.shards[static_cast<size_t>(crashed)].status.ok());

  // The failed shard's servers are still covered (at snapshot bindings).
  std::set<ServerId> covered;
  for (const auto& [server, res] : outcome.merged.targets) {
    covered.insert(server);
  }
  for (ServerId id : plan.servers[static_cast<size_t>(crashed)]) {
    EXPECT_TRUE(covered.count(id)) << "failed shard's server " << id << " dropped from merge";
  }

  // The crashed shard's demand share went unserved; stitch repair must pull
  // free servers from anywhere in the region to cover it.
  StitchRepairStats repair = RepairShortfalls(input, outcome.merged.targets);
  EXPECT_NEAR(repair.shortfall_after_rru, 0.0, 1e-6);
}

TEST(StitchRepairTest, FillsShortReservationFromFreePool) {
  TestRegion region(SmallFleetOptions());
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 24));
  SolveInput input = region.Snapshot();

  // An empty assignment: reservation "a" is fully short.
  std::vector<std::pair<ServerId, ReservationId>> targets;
  for (ServerId id = 0; id < input.servers.size(); ++id) {
    if (input.servers[id].available) {
      targets.emplace_back(id, kUnassigned);
    }
  }
  StitchRepairStats stats = RepairShortfalls(input, targets);
  EXPECT_EQ(stats.reservations_short, 1u);
  EXPECT_GT(stats.shortfall_before_rru, 0.0);
  EXPECT_NEAR(stats.shortfall_after_rru, 0.0, 1e-6);
  // Capacity + correlated buffer: strictly more than 24 servers, and spread
  // so that losing the worst MSB still leaves 24 RRUs.
  size_t assigned = 0;
  for (const auto& [server, res] : targets) {
    assigned += res != kUnassigned ? 1 : 0;
  }
  EXPECT_GT(assigned, 24u);
}

TEST(StitchRepairTest, TakesIdleDonorsButNeverInUseServers) {
  TestRegion region(SmallFleetOptions());
  auto a = *region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 20));
  auto b = *region.registry.Create(AnyTypeReservation(region.fleet.catalog, "b", 20));
  SolveInput input = region.Snapshot();

  // Hand *every* server to "a" (a hoarding donor), half of them in use.
  // "b" is fully short and the free pool is empty, so repair can only be
  // donor moves — and only of idle servers.
  std::vector<std::pair<ServerId, ReservationId>> targets;
  for (ServerId id = 0; id < input.servers.size(); ++id) {
    input.servers[id].current = a;
    input.servers[id].in_use = (id % 2 == 0);
    targets.emplace_back(id, a);
  }
  StitchRepairStats stats = RepairShortfalls(input, targets);
  EXPECT_GT(stats.moves_from_donors, 0u);
  EXPECT_EQ(stats.moves_from_free, 0u);
  EXPECT_NEAR(stats.shortfall_after_rru, 0.0, 1e-6);
  for (const auto& [server, res] : targets) {
    if (input.servers[server].in_use) {
      EXPECT_EQ(res, a) << "repair preempted in-use server " << server;
    }
  }
  size_t b_servers = 0;
  for (const auto& [server, res] : targets) {
    b_servers += res == b ? 1 : 0;
  }
  EXPECT_GT(b_servers, 0u);
}

TEST(StitchRepairTest, MoveBudgetIsRespected) {
  TestRegion region(SmallFleetOptions());
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 100));
  SolveInput input = region.Snapshot();

  std::vector<std::pair<ServerId, ReservationId>> targets;
  for (ServerId id = 0; id < input.servers.size(); ++id) {
    targets.emplace_back(id, kUnassigned);
  }
  StitchRepairOptions opts;
  opts.max_moves = 5;
  StitchRepairStats stats = RepairShortfalls(input, targets, opts);
  EXPECT_EQ(stats.moves(), 5u);
  EXPECT_GT(stats.shortfall_after_rru, 0.0);  // Budget too small to finish.
}

TEST(SupervisorShardTest, DegradedRungRaisesShardCountAndRestoresIt) {
  TestRegion region(SmallFleetOptions());
  (void)*region.registry.Create(AnyTypeReservation(region.fleet.catalog, "a", 40));

  AsyncSolver solver;
  SupervisorConfig config;
  config.max_retries = 0;
  config.degraded_shard_count = 3;
  SolverSupervisor supervisor(&solver, region.broker.get(), &region.registry,
                              &region.fleet.catalog, /*loop=*/nullptr, config);
  // Fail only the full-two-phase rung (installed after the supervisor so it
  // replaces the injector hook): the round must be served by the
  // phase-1-only rung, and that rung must have run with the degraded shard
  // count.
  solver.SetFaultHook([](SolveMode mode) {
    return mode == SolveMode::kFullTwoPhase
               ? Status::DeadlineExceeded("injected: full solve too slow")
               : Status::Ok();
  });

  SupervisedRound round = supervisor.RunRound();
  EXPECT_EQ(round.rung, LadderRung::kPhase1Only);
  EXPECT_EQ(round.stats.shard_count, 3) << "degraded rung did not shard the solve";
  EXPECT_EQ(solver.config().shard_count, 1) << "shard count not restored after the rung";

  // With the fault cleared the next round serves at the top rung, monolithic.
  solver.SetFaultHook(nullptr);
  SupervisedRound ok_round = supervisor.RunRound();
  EXPECT_EQ(ok_round.rung, LadderRung::kFullTwoPhase);
  EXPECT_EQ(ok_round.stats.shard_count, 1);
  EXPECT_EQ(solver.config().shard_count, 1);
}

}  // namespace
}  // namespace ras
