// raslint test suite: each rule fires at the lines its fixture marks, NOLINT
// suppression is honored, the JSON report matches the documented schema, and
// — the meta-test — a full scan of this repository is clean.
//
// Fixtures live in tests/raslint/fixtures/ with a .fixture extension so the
// repo-wide scan (which only collects .h/.hpp/.cc/.cpp) never lints them.
// Lines that must produce a diagnostic carry an EXPECT-LINT marker comment;
// the tests assert the diagnostic line set equals the marker line set, so a
// rule that stops firing or starts over-firing breaks the exact assertion.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/raslint/driver.h"
#include "tools/raslint/lexer.h"
#include "tools/raslint/report.h"
#include "tools/raslint/rules.h"

#ifndef RAS_SOURCE_DIR
#error "build must define RAS_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace ras {
namespace raslint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(RAS_SOURCE_DIR) + "/tests/raslint/fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// 1-based numbers of the lines containing `marker`.
std::set<int> MarkerLines(const std::string& content, const std::string& marker) {
  std::set<int> lines;
  std::istringstream in(content);
  std::string line;
  for (int n = 1; std::getline(in, line); ++n) {
    if (line.find(marker) != std::string::npos) lines.insert(n);
  }
  return lines;
}

std::set<int> DiagnosticLines(const FileLintResult& result, const std::string& rule) {
  std::set<int> lines;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule == rule) lines.insert(d.line);
  }
  return lines;
}

// Asserts `rule` (and only `rule`) fires exactly on the EXPECT-LINT lines.
void ExpectFiresOnMarkers(const std::string& fixture, const std::string& virtual_path,
                          const std::string& rule) {
  const std::string content = ReadFixture(fixture);
  FileLintResult result = AnalyzeSource(virtual_path, content);
  EXPECT_EQ(DiagnosticLines(result, rule), MarkerLines(content, "EXPECT-LINT"))
      << fixture << " as " << virtual_path;
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.rule, rule) << "unexpected " << d.rule << " at " << d.file << ":" << d.line
                            << ": " << d.message;
  }
}

// --- per-rule fixtures -------------------------------------------------------

TEST(RaslintRules, UnorderedIterationFiresAtMarkedLines) {
  ExpectFiresOnMarkers("unordered_iteration.cc.fixture", "src/core/unordered_iteration.cc",
                       "ras-unordered-iteration");
}

TEST(RaslintRules, UnorderedIterationOnlyGuardsSolverPathDirs) {
  const std::string content = ReadFixture("unordered_iteration.cc.fixture");
  FileLintResult result = AnalyzeSource("src/fleet/unordered_iteration.cc", content);
  EXPECT_TRUE(result.diagnostics.empty())
      << "iteration order is not solver-visible outside solver-path dirs";
}

TEST(RaslintRules, UnorderedIterationSeesCompanionHeaderMembers) {
  const std::string header =
      "#ifndef RAS_SRC_CORE_WIDGET_H_\n#define RAS_SRC_CORE_WIDGET_H_\n"
      "#include <unordered_map>\n"
      "struct Widget { std::unordered_map<int, int> table_; };\n"
      "#endif  // RAS_SRC_CORE_WIDGET_H_\n";
  const std::string source =
      "#include \"src/core/widget.h\"\n"
      "int Sum(Widget& w) {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : w.table_) s += v;\n"
      "  return s;\n"
      "}\n";
  FileLintResult result = AnalyzeSource("src/core/widget.cc", source, header);
  EXPECT_EQ(DiagnosticLines(result, "ras-unordered-iteration"), (std::set<int>{4}));
}

TEST(RaslintRules, WallClockFiresAtMarkedLines) {
  ExpectFiresOnMarkers("wall_clock.cc.fixture", "src/core/wall_clock.cc", "ras-wall-clock");
}

TEST(RaslintRules, WallClockSanctionedHelperIsExempt) {
  const std::string content = ReadFixture("wall_clock.cc.fixture");
  FileLintResult result = AnalyzeSource("src/util/monotonic_time.cc", content);
  EXPECT_TRUE(DiagnosticLines(result, "ras-wall-clock").empty())
      << "util::MonotonicSeconds() is the one sanctioned clock read";
}

TEST(RaslintRules, UnseededRngFiresAtMarkedLines) {
  ExpectFiresOnMarkers("unseeded_rng.cc.fixture", "src/sim/unseeded_rng.cc",
                       "ras-unseeded-rng");
}

TEST(RaslintRules, RasRngBareDeclarationIsNotFlagged) {
  // ras::Rng has no default constructor, so a bare member declaration can
  // only ever be seed-constructed in a ctor init list the token scan cannot
  // see. std engines default-construct to implementation state and do fire.
  FileLintResult result = AnalyzeSource("src/sim/x.h",
                                        "#ifndef RAS_SRC_SIM_X_H_\n#define RAS_SRC_SIM_X_H_\n"
                                        "struct S { Rng rng; };\n"
                                        "#endif  // RAS_SRC_SIM_X_H_\n");
  EXPECT_TRUE(DiagnosticLines(result, "ras-unseeded-rng").empty());
}

TEST(RaslintRules, NakedThreadFiresAtMarkedLines) {
  ExpectFiresOnMarkers("naked_thread.cc.fixture", "src/core/naked_thread.cc",
                       "ras-naked-thread");
}

TEST(RaslintRules, NakedThreadAllowsThreadPoolImplementation) {
  const std::string content = ReadFixture("naked_thread.cc.fixture");
  FileLintResult result = AnalyzeSource("src/util/thread_pool.cc", content);
  EXPECT_TRUE(DiagnosticLines(result, "ras-naked-thread").empty());
}

TEST(RaslintRules, FloatMoneyFiresAtMarkedLinesInLedgerDir) {
  ExpectFiresOnMarkers("float_money.cc.fixture", "src/shard/float_money.cc",
                       "ras-float-money");
}

TEST(RaslintRules, FloatMoneyOutsideLedgerDirOnlyFlagsFloatRru) {
  // RRU is double by design outside src/shard (compute_units throughput
  // scalars, fractional demand); only `float` on rru/capacity names fires.
  const std::string content = ReadFixture("float_money.cc.fixture");
  FileLintResult result = AnalyzeSource("src/sim/float_money.cc", content);
  EXPECT_EQ(DiagnosticLines(result, "ras-float-money"),
            MarkerLines(content, "EXPECT-LINT-ANYWHERE"));
}

TEST(RaslintRules, MetricNameFiresAtMarkedLines) {
  ExpectFiresOnMarkers("metric_name.cc.fixture", "src/core/metric_name.cc",
                       "ras-metric-name");
}

TEST(RaslintRules, MetricNameCountsSuppressedImport) {
  const std::string content = ReadFixture("metric_name.cc.fixture");
  FileLintResult result = AnalyzeSource("src/core/metric_name.cc", content);
  EXPECT_EQ(result.suppressed, 1) << "the NOLINTNEXTLINE'd legacy name must be counted";
}

TEST(RaslintRules, MetricNameChecksBenchAndTestCodeToo) {
  // The convention binds every caller of the registry, not just src/: a test
  // or bench that registers a misnamed series pollutes the same exposition.
  FileLintResult result = AnalyzeSource(
      "bench/bench_obs.cpp", "void F(ras::obs::MetricRegistry& r) { r.counter(\"bad\", \"\"); }");
  EXPECT_EQ(DiagnosticLines(result, "ras-metric-name"), (std::set<int>{1}));
}

TEST(RaslintRules, IncludeHygieneFiresAtMarkedLines) {
  ExpectFiresOnMarkers("include_hygiene.h.fixture", "src/solver/include_hygiene.h",
                       "ras-include-hygiene");
}

TEST(RaslintRules, IncludeHygieneAcceptsCanonicalGuard) {
  const std::string content =
      "#ifndef RAS_SRC_UTIL_OK_H_\n#define RAS_SRC_UTIL_OK_H_\n"
      "#include <vector>\n"
      "#endif  // RAS_SRC_UTIL_OK_H_\n";
  FileLintResult result = AnalyzeSource("src/util/ok.h", content);
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RaslintRules, CanonicalGuardFormat) {
  EXPECT_EQ(CanonicalGuard("src/util/mutex.h"), "RAS_SRC_UTIL_MUTEX_H_");
  EXPECT_EQ(CanonicalGuard("tools/raslint/rules.h"), "RAS_TOOLS_RASLINT_RULES_H_");
}

// --- semantic rules (v2) -----------------------------------------------------

TEST(RaslintSemantic, LockOrderFiresAtMarkedLines) {
  ExpectFiresOnMarkers("lock_order.cc.fixture", "src/core/lock_order.cc", "ras-lock-order");
}

TEST(RaslintSemantic, GuardedAccessFiresAtMarkedLines) {
  ExpectFiresOnMarkers("guarded_access.cc.fixture", "src/core/guarded_access.cc",
                       "ras-guarded-access");
}

TEST(RaslintSemantic, BlockingHotPathFiresAtMarkedLines) {
  ExpectFiresOnMarkers("blocking_hot_path.cc.fixture", "src/core/blocking_hot_path.cc",
                       "ras-blocking-in-hot-path");
}

TEST(RaslintSemantic, StatusDiscardFiresAtMarkedLines) {
  ExpectFiresOnMarkers("status_discard.cc.fixture", "src/core/status_discard.cc",
                       "ras-status-discard");
}

// The deadlock case the single-file fixture cannot model: each TU's order is
// locally consistent; only the cross-TU lock graph closes the cycle.
TEST(RaslintSemantic, LockOrderInversionAcrossTwoFiles) {
  const std::string first =
      "extern Mutex g_first;\n"
      "extern Mutex g_second;\n"
      "void AlphaPath() {\n"
      "  MutexLock f(&g_first);\n"
      "  MutexLock s(&g_second);\n"  // Line 5.
      "}\n";
  const std::string second =
      "extern Mutex g_first;\n"
      "extern Mutex g_second;\n"
      "void BetaPath() {\n"
      "  MutexLock s(&g_second);\n"
      "  MutexLock f(&g_first);\n"  // Line 5.
      "}\n";
  RunSummary summary =
      LintSources({{"src/core/alpha.cc", first}, {"src/core/beta.cc", second}});
  std::set<std::pair<std::string, int>> got;
  for (const Diagnostic& d : summary.diagnostics) {
    EXPECT_EQ(d.rule, "ras-lock-order") << d.message;
    got.insert({d.file, d.line});
  }
  EXPECT_EQ(got, (std::set<std::pair<std::string, int>>{{"src/core/alpha.cc", 5},
                                                        {"src/core/beta.cc", 5}}));
}

TEST(RaslintSemantic, BlockingReachedThroughCrossFileCallGraph) {
  const std::string hot =
      "void FlushJournal(int fd);\n"
      "// RASLINT-HOT: stand-in inner loop.\n"
      "void Tick() {\n"
      "  FlushJournal(3);\n"
      "}\n";
  const std::string impl =
      "void FlushJournal(int fd) {\n"
      "  fsync(fd);\n"  // Line 2: hot only via Tick -> FlushJournal.
      "}\n";
  RunSummary summary =
      LintSources({{"src/core/tick.cc", hot}, {"src/journal/flush.cc", impl}});
  ASSERT_EQ(summary.diagnostics.size(), 1u);
  const Diagnostic& d = summary.diagnostics[0];
  EXPECT_EQ(d.rule, "ras-blocking-in-hot-path");
  EXPECT_EQ(d.file, "src/journal/flush.cc");
  EXPECT_EQ(d.line, 2);
  EXPECT_NE(d.message.find("Tick"), std::string::npos) << d.message;
}

TEST(RaslintSemantic, GuardedAccessSeesCompanionHeaderFields) {
  const std::string header =
      "#ifndef RAS_SRC_CORE_COUNTED_H_\n#define RAS_SRC_CORE_COUNTED_H_\n"
      "class Counted {\n"
      " public:\n"
      "  long Get() const;\n"
      " private:\n"
      "  mutable Mutex mu_;\n"
      "  long n_ GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "#endif  // RAS_SRC_CORE_COUNTED_H_\n";
  const std::string source =
      "#include \"src/core/counted.h\"\n"
      "long Counted::Get() const {\n"
      "  return n_;\n"  // Line 3: mu_ not held.
      "}\n";
  FileLintResult result = AnalyzeSource("src/core/counted.cc", source, header);
  EXPECT_EQ(DiagnosticLines(result, "ras-guarded-access"), (std::set<int>{3}));
}

// --- lexer line accounting ---------------------------------------------------

// Regression: backslash continuations and `#` inside raw strings used to
// desynchronize token line numbers, which misplaces every diagnostic after
// them. The marker declaration must land on its physical line.

int MarkerLine(const FileScan& scan) {
  for (const Token& t : scan.tokens) {
    if (t.kind == Token::Kind::kIdentifier && t.text == "marker") return t.line;
  }
  return -1;
}

TEST(RaslintLexer, BackslashContinuationKeepsLineNumbers) {
  FileScan scan = Lex("src/core/x.cc",
                      "#define LONG_MACRO(x) \\\n"
                      "  do_something(x)\n"
                      "int marker = 7;\n");
  EXPECT_EQ(MarkerLine(scan), 3);
}

TEST(RaslintLexer, SplicedLineCommentSwallowsNextLine) {
  FileScan scan = Lex("src/core/x.cc",
                      "// comment continues \\\n"
                      "still the same comment\n"
                      "int marker = 1;\n");
  EXPECT_EQ(MarkerLine(scan), 3);
  // Nothing on line 2 survives as a token.
  for (const Token& t : scan.tokens) EXPECT_NE(t.line, 2) << t.text;
}

TEST(RaslintLexer, RawStringWithHashAndNewlinesKeepsLineNumbers) {
  FileScan scan = Lex("src/core/raw.cc",
                      "const char* kQuery = R\"(\n"
                      "# include \"not/an/include.h\"\n"
                      "second body line\n"
                      ")\";\n"
                      "int marker = 9;\n");
  EXPECT_EQ(MarkerLine(scan), 5);
  EXPECT_TRUE(scan.includes.empty()) << "a # inside a raw string is not a directive";
}

// --- suppression -------------------------------------------------------------

TEST(RaslintSuppression, NolintVariantsSuppressAndAreCounted) {
  const std::string content = ReadFixture("suppressed.cc.fixture");
  FileLintResult result = AnalyzeSource("src/core/suppressed.cc", content);
  // NOLINTNEXTLINE(rule), same-line NOLINT(rule), and bare NOLINT each
  // suppress one wall-clock read; the NOLINT naming a different rule does not.
  EXPECT_EQ(result.suppressed, 3);
  EXPECT_EQ(DiagnosticLines(result, "ras-wall-clock"),
            MarkerLines(content, "EXPECT-LINT"));
}

TEST(RaslintSuppression, SemanticRulesHonorNolint) {
  const std::string content =
      "Status Persist() { return Status::Ok(); }\n"
      "void F() {\n"
      "  Persist();  // NOLINT(ras-status-discard)\n"
      "}\n";
  FileLintResult result = AnalyzeSource("src/core/n.cc", content);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed, 1);
}

TEST(RaslintSuppression, EnabledRulesFilterRestrictsToRequestedRules) {
  LintConfig config;
  config.enabled_rules = {"ras-wall-clock"};
  const std::string content = ReadFixture("unordered_iteration.cc.fixture");
  FileLintResult result = AnalyzeSource("src/core/unordered_iteration.cc", content,
                                        std::string(), config);
  EXPECT_TRUE(result.diagnostics.empty())
      << "--rule=ras-wall-clock must disable the iteration rule";
}

// --- JSON report -------------------------------------------------------------

TEST(RaslintReport, JsonMatchesDocumentedSchema) {
  RunSummary summary;
  summary.files_scanned = 2;
  summary.suppressed = 1;
  summary.diagnostics.push_back(Diagnostic{"ras-wall-clock", Severity::kError, "src/a.cc", 7,
                                           "message with \"quotes\" and \\backslash"});
  summary.diagnostics.push_back(
      Diagnostic{"ras-include-hygiene", Severity::kWarning, "src/b.h", 1, "guard"});

  std::ostringstream os;
  WriteJson(summary, os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"tool\": \"raslint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("{\"file\": \"src/a.cc\", \"line\": 7, \"rule\": \"ras-wall-clock\", "
                      "\"severity\": \"error\", \"message\": \"message with \\\"quotes\\\" "
                      "and \\\\backslash\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
}

TEST(RaslintReport, EmptyRunProducesEmptyDiagnosticsArray) {
  RunSummary summary;
  std::ostringstream os;
  WriteJson(summary, os);
  EXPECT_NE(os.str().find("\"diagnostics\": []"), std::string::npos);
}

// --- SARIF report ------------------------------------------------------------

TEST(RaslintReport, SarifCarriesSchemaRuleCatalogueAndResults) {
  RunSummary summary;
  summary.files_scanned = 1;
  summary.diagnostics.push_back(Diagnostic{"ras-lock-order", Severity::kError, "src/a.cc",
                                           12, "cycle over \"g_alpha\""});
  std::ostringstream os;
  WriteSarif(summary, os);
  const std::string sarif = os.str();

  EXPECT_NE(sarif.find("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"raslint\""), std::string::npos);
  // Every catalogued rule appears in tool.driver.rules.
  for (const RuleMeta& rule : RuleCatalogue()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + std::string(rule.id) + "\""), std::string::npos)
        << rule.id;
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"ras-lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"text\": \"cycle over \\\"g_alpha\\\"\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
}

TEST(RaslintReport, SarifCatalogueListsElevenRules) {
  EXPECT_EQ(RuleCatalogue().size(), 11u);
}

TEST(RaslintReport, SarifClampsNonPositiveLines) {
  RunSummary summary;
  summary.diagnostics.push_back(Diagnostic{"ras-driver", Severity::kError, "src/gone.cc", 0,
                                           "cannot read file"});
  std::ostringstream os;
  WriteSarif(summary, os);
  EXPECT_NE(os.str().find("\"startLine\": 1"), std::string::npos)
      << "SARIF regions require startLine >= 1";
  EXPECT_EQ(os.str().find("\"ruleIndex\""), std::string::npos)
      << "uncatalogued rules must not claim a ruleIndex";
}

// --- driver + meta-scan ------------------------------------------------------

TEST(RaslintDriver, CollectFilesSkipsFixturesAndBuildTrees) {
  std::vector<std::string> files = CollectFiles(RAS_SOURCE_DIR, {"tests/raslint"});
  bool saw_this_test = false;
  for (const std::string& f : files) {
    EXPECT_EQ(f.find(".fixture"), std::string::npos) << f;
    EXPECT_EQ(f.find("build/"), std::string::npos) << f;
    if (f == "tests/raslint/raslint_test.cc") saw_this_test = true;
  }
  EXPECT_TRUE(saw_this_test);
}

// The scan must be deterministic at any worker count: one slot per file,
// merged in file order, with the cross-TU pass running serially after.
TEST(RaslintDriver, ParallelScanMatchesSerial) {
  std::vector<std::string> files = CollectFiles(RAS_SOURCE_DIR, {"src/journal", "src/obs"});
  LintConfig serial;
  serial.scan_threads = 1;
  LintConfig parallel;
  parallel.scan_threads = 4;
  RunSummary a = LintFiles(RAS_SOURCE_DIR, files, serial);
  RunSummary b = LintFiles(RAS_SOURCE_DIR, files, parallel);
  EXPECT_EQ(a.files_scanned, b.files_scanned);
  EXPECT_EQ(a.suppressed, b.suppressed);
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].rule, b.diagnostics[i].rule);
    EXPECT_EQ(a.diagnostics[i].file, b.diagnostics[i].file);
    EXPECT_EQ(a.diagnostics[i].line, b.diagnostics[i].line);
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
}

// The acceptance criterion for the whole lint pass: the repository's own
// sources are clean under all eleven rules. A regression anywhere in src/,
// tools/ or tests/ fails this test with the offending file:line.
TEST(RaslintMeta, FullRepoScanIsClean) {
  std::vector<std::string> files = CollectFiles(RAS_SOURCE_DIR, {"src", "tools", "tests"});
  RunSummary summary = LintFiles(RAS_SOURCE_DIR, files, LintConfig());
  std::ostringstream report;
  WriteText(summary, report);
  EXPECT_EQ(summary.errors(), 0) << report.str();
  EXPECT_GT(summary.files_scanned, 100) << "scan missed most of the tree";
}

}  // namespace
}  // namespace raslint
}  // namespace ras
