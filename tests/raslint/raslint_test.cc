// raslint test suite: each rule fires at the lines its fixture marks, NOLINT
// suppression is honored, the JSON report matches the documented schema, and
// — the meta-test — a full scan of this repository is clean.
//
// Fixtures live in tests/raslint/fixtures/ with a .fixture extension so the
// repo-wide scan (which only collects .h/.hpp/.cc/.cpp) never lints them.
// Lines that must produce a diagnostic carry an EXPECT-LINT marker comment;
// the tests assert the diagnostic line set equals the marker line set, so a
// rule that stops firing or starts over-firing breaks the exact assertion.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/raslint/driver.h"
#include "tools/raslint/report.h"
#include "tools/raslint/rules.h"

#ifndef RAS_SOURCE_DIR
#error "build must define RAS_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace ras {
namespace raslint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(RAS_SOURCE_DIR) + "/tests/raslint/fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// 1-based numbers of the lines containing `marker`.
std::set<int> MarkerLines(const std::string& content, const std::string& marker) {
  std::set<int> lines;
  std::istringstream in(content);
  std::string line;
  for (int n = 1; std::getline(in, line); ++n) {
    if (line.find(marker) != std::string::npos) lines.insert(n);
  }
  return lines;
}

std::set<int> DiagnosticLines(const FileLintResult& result, const std::string& rule) {
  std::set<int> lines;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule == rule) lines.insert(d.line);
  }
  return lines;
}

// Asserts `rule` (and only `rule`) fires exactly on the EXPECT-LINT lines.
void ExpectFiresOnMarkers(const std::string& fixture, const std::string& virtual_path,
                          const std::string& rule) {
  const std::string content = ReadFixture(fixture);
  FileLintResult result = AnalyzeSource(virtual_path, content);
  EXPECT_EQ(DiagnosticLines(result, rule), MarkerLines(content, "EXPECT-LINT"))
      << fixture << " as " << virtual_path;
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.rule, rule) << "unexpected " << d.rule << " at " << d.file << ":" << d.line
                            << ": " << d.message;
  }
}

// --- per-rule fixtures -------------------------------------------------------

TEST(RaslintRules, UnorderedIterationFiresAtMarkedLines) {
  ExpectFiresOnMarkers("unordered_iteration.cc.fixture", "src/core/unordered_iteration.cc",
                       "ras-unordered-iteration");
}

TEST(RaslintRules, UnorderedIterationOnlyGuardsSolverPathDirs) {
  const std::string content = ReadFixture("unordered_iteration.cc.fixture");
  FileLintResult result = AnalyzeSource("src/fleet/unordered_iteration.cc", content);
  EXPECT_TRUE(result.diagnostics.empty())
      << "iteration order is not solver-visible outside solver-path dirs";
}

TEST(RaslintRules, UnorderedIterationSeesCompanionHeaderMembers) {
  const std::string header =
      "#ifndef RAS_SRC_CORE_WIDGET_H_\n#define RAS_SRC_CORE_WIDGET_H_\n"
      "#include <unordered_map>\n"
      "struct Widget { std::unordered_map<int, int> table_; };\n"
      "#endif  // RAS_SRC_CORE_WIDGET_H_\n";
  const std::string source =
      "#include \"src/core/widget.h\"\n"
      "int Sum(Widget& w) {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : w.table_) s += v;\n"
      "  return s;\n"
      "}\n";
  FileLintResult result = AnalyzeSource("src/core/widget.cc", source, header);
  EXPECT_EQ(DiagnosticLines(result, "ras-unordered-iteration"), (std::set<int>{4}));
}

TEST(RaslintRules, WallClockFiresAtMarkedLines) {
  ExpectFiresOnMarkers("wall_clock.cc.fixture", "src/core/wall_clock.cc", "ras-wall-clock");
}

TEST(RaslintRules, WallClockSanctionedHelperIsExempt) {
  const std::string content = ReadFixture("wall_clock.cc.fixture");
  FileLintResult result = AnalyzeSource("src/util/monotonic_time.cc", content);
  EXPECT_TRUE(DiagnosticLines(result, "ras-wall-clock").empty())
      << "util::MonotonicSeconds() is the one sanctioned clock read";
}

TEST(RaslintRules, UnseededRngFiresAtMarkedLines) {
  ExpectFiresOnMarkers("unseeded_rng.cc.fixture", "src/sim/unseeded_rng.cc",
                       "ras-unseeded-rng");
}

TEST(RaslintRules, RasRngBareDeclarationIsNotFlagged) {
  // ras::Rng has no default constructor, so a bare member declaration can
  // only ever be seed-constructed in a ctor init list the token scan cannot
  // see. std engines default-construct to implementation state and do fire.
  FileLintResult result = AnalyzeSource("src/sim/x.h",
                                        "#ifndef RAS_SRC_SIM_X_H_\n#define RAS_SRC_SIM_X_H_\n"
                                        "struct S { Rng rng; };\n"
                                        "#endif  // RAS_SRC_SIM_X_H_\n");
  EXPECT_TRUE(DiagnosticLines(result, "ras-unseeded-rng").empty());
}

TEST(RaslintRules, NakedThreadFiresAtMarkedLines) {
  ExpectFiresOnMarkers("naked_thread.cc.fixture", "src/core/naked_thread.cc",
                       "ras-naked-thread");
}

TEST(RaslintRules, NakedThreadAllowsThreadPoolImplementation) {
  const std::string content = ReadFixture("naked_thread.cc.fixture");
  FileLintResult result = AnalyzeSource("src/util/thread_pool.cc", content);
  EXPECT_TRUE(DiagnosticLines(result, "ras-naked-thread").empty());
}

TEST(RaslintRules, FloatMoneyFiresAtMarkedLinesInLedgerDir) {
  ExpectFiresOnMarkers("float_money.cc.fixture", "src/shard/float_money.cc",
                       "ras-float-money");
}

TEST(RaslintRules, FloatMoneyOutsideLedgerDirOnlyFlagsFloatRru) {
  // RRU is double by design outside src/shard (compute_units throughput
  // scalars, fractional demand); only `float` on rru/capacity names fires.
  const std::string content = ReadFixture("float_money.cc.fixture");
  FileLintResult result = AnalyzeSource("src/sim/float_money.cc", content);
  EXPECT_EQ(DiagnosticLines(result, "ras-float-money"),
            MarkerLines(content, "EXPECT-LINT-ANYWHERE"));
}

TEST(RaslintRules, MetricNameFiresAtMarkedLines) {
  ExpectFiresOnMarkers("metric_name.cc.fixture", "src/core/metric_name.cc",
                       "ras-metric-name");
}

TEST(RaslintRules, MetricNameCountsSuppressedImport) {
  const std::string content = ReadFixture("metric_name.cc.fixture");
  FileLintResult result = AnalyzeSource("src/core/metric_name.cc", content);
  EXPECT_EQ(result.suppressed, 1) << "the NOLINTNEXTLINE'd legacy name must be counted";
}

TEST(RaslintRules, MetricNameChecksBenchAndTestCodeToo) {
  // The convention binds every caller of the registry, not just src/: a test
  // or bench that registers a misnamed series pollutes the same exposition.
  FileLintResult result = AnalyzeSource(
      "bench/bench_obs.cpp", "void F(ras::obs::MetricRegistry& r) { r.counter(\"bad\", \"\"); }");
  EXPECT_EQ(DiagnosticLines(result, "ras-metric-name"), (std::set<int>{1}));
}

TEST(RaslintRules, IncludeHygieneFiresAtMarkedLines) {
  ExpectFiresOnMarkers("include_hygiene.h.fixture", "src/solver/include_hygiene.h",
                       "ras-include-hygiene");
}

TEST(RaslintRules, IncludeHygieneAcceptsCanonicalGuard) {
  const std::string content =
      "#ifndef RAS_SRC_UTIL_OK_H_\n#define RAS_SRC_UTIL_OK_H_\n"
      "#include <vector>\n"
      "#endif  // RAS_SRC_UTIL_OK_H_\n";
  FileLintResult result = AnalyzeSource("src/util/ok.h", content);
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RaslintRules, CanonicalGuardFormat) {
  EXPECT_EQ(CanonicalGuard("src/util/mutex.h"), "RAS_SRC_UTIL_MUTEX_H_");
  EXPECT_EQ(CanonicalGuard("tools/raslint/rules.h"), "RAS_TOOLS_RASLINT_RULES_H_");
}

// --- suppression -------------------------------------------------------------

TEST(RaslintSuppression, NolintVariantsSuppressAndAreCounted) {
  const std::string content = ReadFixture("suppressed.cc.fixture");
  FileLintResult result = AnalyzeSource("src/core/suppressed.cc", content);
  // NOLINTNEXTLINE(rule), same-line NOLINT(rule), and bare NOLINT each
  // suppress one wall-clock read; the NOLINT naming a different rule does not.
  EXPECT_EQ(result.suppressed, 3);
  EXPECT_EQ(DiagnosticLines(result, "ras-wall-clock"),
            MarkerLines(content, "EXPECT-LINT"));
}

TEST(RaslintSuppression, EnabledRulesFilterRestrictsToRequestedRules) {
  LintConfig config;
  config.enabled_rules = {"ras-wall-clock"};
  const std::string content = ReadFixture("unordered_iteration.cc.fixture");
  FileLintResult result = AnalyzeSource("src/core/unordered_iteration.cc", content,
                                        std::string(), config);
  EXPECT_TRUE(result.diagnostics.empty())
      << "--rule=ras-wall-clock must disable the iteration rule";
}

// --- JSON report -------------------------------------------------------------

TEST(RaslintReport, JsonMatchesDocumentedSchema) {
  RunSummary summary;
  summary.files_scanned = 2;
  summary.suppressed = 1;
  summary.diagnostics.push_back(Diagnostic{"ras-wall-clock", Severity::kError, "src/a.cc", 7,
                                           "message with \"quotes\" and \\backslash"});
  summary.diagnostics.push_back(
      Diagnostic{"ras-include-hygiene", Severity::kWarning, "src/b.h", 1, "guard"});

  std::ostringstream os;
  WriteJson(summary, os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"tool\": \"raslint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("{\"file\": \"src/a.cc\", \"line\": 7, \"rule\": \"ras-wall-clock\", "
                      "\"severity\": \"error\", \"message\": \"message with \\\"quotes\\\" "
                      "and \\\\backslash\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
}

TEST(RaslintReport, EmptyRunProducesEmptyDiagnosticsArray) {
  RunSummary summary;
  std::ostringstream os;
  WriteJson(summary, os);
  EXPECT_NE(os.str().find("\"diagnostics\": []"), std::string::npos);
}

// --- driver + meta-scan ------------------------------------------------------

TEST(RaslintDriver, CollectFilesSkipsFixturesAndBuildTrees) {
  std::vector<std::string> files = CollectFiles(RAS_SOURCE_DIR, {"tests/raslint"});
  bool saw_this_test = false;
  for (const std::string& f : files) {
    EXPECT_EQ(f.find(".fixture"), std::string::npos) << f;
    EXPECT_EQ(f.find("build/"), std::string::npos) << f;
    if (f == "tests/raslint/raslint_test.cc") saw_this_test = true;
  }
  EXPECT_TRUE(saw_this_test);
}

// The acceptance criterion for the whole lint pass: the repository's own
// sources are clean under all seven rules. A regression anywhere in src/,
// tools/ or tests/ fails this test with the offending file:line.
TEST(RaslintMeta, FullRepoScanIsClean) {
  std::vector<std::string> files = CollectFiles(RAS_SOURCE_DIR, {"src", "tools", "tests"});
  RunSummary summary = LintFiles(RAS_SOURCE_DIR, files, LintConfig());
  std::ostringstream report;
  WriteText(summary, report);
  EXPECT_EQ(summary.errors(), 0) << report.str();
  EXPECT_GT(summary.files_scanned, 100) << "scan missed most of the tree";
}

}  // namespace
}  // namespace raslint
}  // namespace ras
