#include "src/fleet/service_profile.h"

#include <gtest/gtest.h>

#include "src/topology/hardware.h"

namespace ras {
namespace {

TEST(ServiceProfileTest, PaperProfilesPresent) {
  auto profiles = MakePaperServiceProfiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "DataStore");
  EXPECT_EQ(profiles[3].name, "Web");
  EXPECT_EQ(profiles[4].name, "FleetAvg");
}

TEST(ServiceProfileTest, WebHeadlineNumbers) {
  // Figure 3: Web gains 1.47x on gen 2 and 1.82x on gen 3.
  auto profiles = MakePaperServiceProfiles();
  const ServiceProfile& web = profiles[3];
  EXPECT_DOUBLE_EQ(web.relative_value[2], 1.47);
  EXPECT_DOUBLE_EQ(web.relative_value[3], 1.82);
}

TEST(ServiceProfileTest, DataStoreGainsNothing) {
  auto profiles = MakePaperServiceProfiles();
  const ServiceProfile& ds = profiles[0];
  EXPECT_DOUBLE_EQ(ds.relative_value[1], 1.0);
  EXPECT_DOUBLE_EQ(ds.relative_value[2], 1.0);
  EXPECT_DOUBLE_EQ(ds.relative_value[3], 1.0);
  EXPECT_TRUE(ds.is_storage);
}

TEST(ServiceProfileTest, ValueOfRespectsGeneration) {
  HardwareCatalog catalog = MakePaperCatalog();
  auto profiles = MakePaperServiceProfiles();
  const ServiceProfile& web = profiles[3];
  const HardwareType& gen1 = catalog.type(catalog.FindByName("C1"));
  const HardwareType& gen3 = catalog.type(catalog.FindByName("C3"));
  EXPECT_DOUBLE_EQ(web.ValueOf(gen1), 1.0);
  EXPECT_DOUBLE_EQ(web.ValueOf(gen3), 1.82);
}

TEST(ServiceProfileTest, ExclusionsAndGpuRequirement) {
  HardwareCatalog catalog = MakePaperCatalog();
  ServiceProfile p;
  p.relative_value = {0, 1, 1, 1};
  p.excluded_categories = {4};  // No storage SKUs.
  EXPECT_EQ(p.ValueOf(catalog.type(catalog.FindByName("C4-S2"))), 0.0);
  EXPECT_GT(p.ValueOf(catalog.type(catalog.FindByName("C1"))), 0.0);

  ServiceProfile ml;
  ml.relative_value = {0, 1, 1, 1};
  ml.requires_gpu = true;
  EXPECT_EQ(ml.ValueOf(catalog.type(catalog.FindByName("C3"))), 0.0);
  EXPECT_GT(ml.ValueOf(catalog.type(catalog.FindByName("C7-S1"))), 0.0);
}

TEST(ServiceProfileTest, ZeroGenerationValueBlocksType) {
  HardwareCatalog catalog = MakePaperCatalog();
  ServiceProfile p;
  p.relative_value = {0, 0, 1, 1};  // Cannot run on generation 1 at all.
  EXPECT_EQ(p.ValueOf(catalog.type(catalog.FindByName("C1"))), 0.0);
  EXPECT_GT(p.ValueOf(catalog.type(catalog.FindByName("C2-S1"))), 0.0);
}

}  // namespace
}  // namespace ras
