#include "src/fleet/request_gen.h"

#include <gtest/gtest.h>

#include <map>

namespace ras {
namespace {

TEST(RequestGenTest, CountAndRanges) {
  HardwareCatalog catalog = MakePaperCatalog();
  RequestGenOptions opts;
  opts.count = 500;
  auto requests = GenerateRequests(catalog, opts);
  ASSERT_EQ(requests.size(), 500u);
  for (const auto& r : requests) {
    EXPECT_GE(r.units, 1.0);
    EXPECT_LE(r.units, 30000.0);
    EXPECT_FALSE(r.acceptable_types.empty());
    EXPECT_LE(r.acceptable_types.size(), catalog.size());
  }
}

TEST(RequestGenTest, Deterministic) {
  HardwareCatalog catalog = MakePaperCatalog();
  RequestGenOptions opts;
  opts.count = 50;
  auto a = GenerateRequests(catalog, opts);
  auto b = GenerateRequests(catalog, opts);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].units, b[i].units);
    EXPECT_EQ(a[i].acceptable_types, b[i].acceptable_types);
  }
}

TEST(RequestGenTest, TrimodalTypeFanout) {
  // Figure 4: a large single-type mode, a dominant ~8-type mode, and a small
  // 10+-type tail.
  HardwareCatalog catalog = MakePaperCatalog();
  RequestGenOptions opts;
  opts.count = 3000;
  auto requests = GenerateRequests(catalog, opts);
  std::map<size_t, int> fanout;
  for (const auto& r : requests) {
    fanout[r.acceptable_types.size()]++;
  }
  EXPECT_GT(fanout[1], 600);  // ~35%.
  int mid = 0;
  for (size_t k = 6; k <= 9; ++k) {
    mid += fanout[k];
  }
  EXPECT_GT(mid, 1000);  // ~50%.
  int wide = 0;
  for (size_t k = 10; k <= 12; ++k) {
    wide += fanout[k];
  }
  EXPECT_GT(wide, 200);  // ~15%.
}

TEST(RequestGenTest, SingleTypeRequestsUseLatestGeneration) {
  HardwareCatalog catalog = MakePaperCatalog();
  RequestGenOptions opts;
  opts.count = 500;
  auto requests = GenerateRequests(catalog, opts);
  for (const auto& r : requests) {
    if (r.acceptable_types.size() == 1) {
      EXPECT_EQ(catalog.type(r.acceptable_types[0]).cpu_generation, 3);
    }
  }
}

TEST(RequestGenTest, MajorityInMidBand) {
  // "The majority of requests range from a few hundred to a few thousand."
  HardwareCatalog catalog = MakePaperCatalog();
  RequestGenOptions opts;
  opts.count = 2000;
  auto requests = GenerateRequests(catalog, opts);
  int mid_band = 0;
  for (const auto& r : requests) {
    if (r.units >= 100 && r.units <= 5000) {
      ++mid_band;
    }
  }
  EXPECT_GT(mid_band, 1000);
}

}  // namespace
}  // namespace ras
