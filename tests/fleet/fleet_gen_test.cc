#include "src/fleet/fleet_gen.h"

#include <gtest/gtest.h>

#include <set>

namespace ras {
namespace {

TEST(FleetGenTest, SizesMatchOptions) {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 4;
  opts.servers_per_rack = 5;
  Fleet fleet = GenerateFleet(opts);
  EXPECT_EQ(fleet.topology.num_datacenters(), 2u);
  EXPECT_EQ(fleet.topology.num_msbs(), 6u);
  EXPECT_EQ(fleet.topology.num_racks(), 24u);
  EXPECT_EQ(fleet.topology.num_servers(), 120u);
  EXPECT_TRUE(fleet.topology.finalized());
}

TEST(FleetGenTest, DeterministicInSeed) {
  FleetOptions opts;
  opts.seed = 77;
  Fleet a = GenerateFleet(opts);
  Fleet b = GenerateFleet(opts);
  ASSERT_EQ(a.topology.num_servers(), b.topology.num_servers());
  for (ServerId id = 0; id < a.topology.num_servers(); ++id) {
    EXPECT_EQ(a.topology.server(id).type, b.topology.server(id).type);
  }
}

TEST(FleetGenTest, DifferentSeedsDiffer) {
  FleetOptions opts;
  opts.seed = 1;
  Fleet a = GenerateFleet(opts);
  opts.seed = 2;
  Fleet b = GenerateFleet(opts);
  size_t diff = 0;
  for (ServerId id = 0; id < a.topology.num_servers(); ++id) {
    diff += a.topology.server(id).type != b.topology.server(id).type;
  }
  EXPECT_GT(diff, 0u);
}

TEST(FleetGenTest, RacksAreHomogeneous) {
  Fleet fleet = GenerateFleet(FleetOptions{});
  for (RackId r = 0; r < fleet.topology.num_racks(); ++r) {
    const auto& servers = fleet.topology.ServersInRack(r);
    ASSERT_FALSE(servers.empty());
    HardwareTypeId type = fleet.topology.server(servers[0]).type;
    for (ServerId id : servers) {
      EXPECT_EQ(fleet.topology.server(id).type, type);
    }
  }
}

TEST(FleetGenTest, MixtureVariesAcrossMsbs) {
  // The Figure 2 property: different MSBs carry different SKU subsets.
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 7;
  opts.racks_per_msb = 12;
  Fleet fleet = GenerateFleet(opts);
  std::set<std::vector<bool>> signatures;
  for (MsbId m = 0; m < fleet.topology.num_msbs(); ++m) {
    std::vector<double> mix = fleet.TypeMixInMsb(m);
    std::vector<bool> present;
    for (double v : mix) {
      present.push_back(v > 0);
    }
    signatures.insert(present);
  }
  EXPECT_GT(signatures.size(), 2u);
}

TEST(FleetGenTest, OldMsbsLackGen3NewMsbsLackGen1) {
  FleetOptions opts;
  opts.num_datacenters = 3;
  opts.msbs_per_datacenter = 6;
  opts.racks_per_msb = 15;
  Fleet fleet = GenerateFleet(opts);
  const HardwareCatalog& catalog = fleet.catalog;
  auto gen_fraction = [&](MsbId m, int gen) {
    std::vector<double> mix = fleet.TypeMixInMsb(m);
    double f = 0;
    for (size_t t = 0; t < mix.size(); ++t) {
      if (catalog.type(static_cast<HardwareTypeId>(t)).cpu_generation == gen) {
        f += mix[t];
      }
    }
    return f;
  };
  // MSB 0 is the oldest (age 1.0): no generation-3 hardware.
  EXPECT_EQ(gen_fraction(0, 3), 0.0);
  // The newest MSB (last index): no generation-1 hardware.
  MsbId newest = static_cast<MsbId>(fleet.topology.num_msbs() - 1);
  EXPECT_EQ(gen_fraction(newest, 1), 0.0);
}

TEST(FleetGenTest, GpuOnlyInNewestQuarter) {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 8;
  opts.racks_per_msb = 20;
  Fleet fleet = GenerateFleet(opts);
  HardwareTypeId gpu = fleet.catalog.FindByName("C7-S1");
  ASSERT_NE(gpu, kInvalidHardwareType);
  size_t total_msbs = fleet.topology.num_msbs();
  for (MsbId m = 0; m < total_msbs; ++m) {
    if (fleet.CountInMsb(m, gpu) > 0) {
      double age = 1.0 - static_cast<double>(m) / static_cast<double>(total_msbs - 1);
      EXPECT_LE(age, 0.25) << "GPU SKU found in old MSB " << m;
    }
  }
}

TEST(FleetGenTest, TypeMixSumsToOne) {
  Fleet fleet = GenerateFleet(FleetOptions{});
  double sum = 0;
  for (double v : fleet.TypeMix()) {
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (MsbId m = 0; m < fleet.topology.num_msbs(); ++m) {
    double msb_sum = 0;
    for (double v : fleet.TypeMixInMsb(m)) {
      msb_sum += v;
    }
    EXPECT_NEAR(msb_sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace ras
