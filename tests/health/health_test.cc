#include "src/health/health.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

FleetOptions MediumOptions() {
  FleetOptions opts;
  opts.num_datacenters = 2;
  opts.msbs_per_datacenter = 3;
  opts.racks_per_msb = 5;
  opts.servers_per_rack = 10;
  return opts;  // 300 servers.
}

TEST(HealthGeneratorTest, ScheduleSortedAndWithinHorizon) {
  Fleet fleet = GenerateFleet(MediumOptions());
  HealthEventGenerator gen(&fleet.topology, HealthRates());
  Rng rng(3);
  auto schedule = gen.GenerateSchedule(SimTime{0}, Days(30), rng);
  ASSERT_FALSE(schedule.empty());
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].start, schedule[i].start);
  }
  for (const auto& e : schedule) {
    EXPECT_GE(e.start.seconds, 0);
    EXPECT_LT(e.start.seconds, Days(30).seconds);
    EXPECT_GE(e.duration.seconds, 60);
    EXPECT_FALSE(e.servers.empty());
  }
}

TEST(HealthGeneratorTest, EventMixMatchesRates) {
  Fleet fleet = GenerateFleet(MediumOptions());
  HealthEventGenerator gen(&fleet.topology, HealthRates());
  Rng rng(5);
  auto schedule = gen.GenerateSchedule(SimTime{0}, Days(90), rng);
  size_t counts[5] = {0, 0, 0, 0, 0};
  for (const auto& e : schedule) {
    counts[static_cast<int>(e.kind)]++;
  }
  // Software failures are ~10x hardware failures per the default rates.
  EXPECT_GT(counts[static_cast<int>(HealthEventKind::kServerSoftware)],
            counts[static_cast<int>(HealthEventKind::kServerHardware)]);
  // Maintenance waves: ~6 per MSB-month x 6 MSBs x 3 months = ~108.
  size_t maint = counts[static_cast<int>(HealthEventKind::kPlannedMaintenance)];
  EXPECT_GT(maint, 60u);
  EXPECT_LT(maint, 200u);
}

TEST(HealthGeneratorTest, MaintenanceChunksCapped) {
  Fleet fleet = GenerateFleet(MediumOptions());
  HealthRates rates;
  HealthEventGenerator gen(&fleet.topology, rates);
  Rng rng(7);
  auto schedule = gen.GenerateSchedule(SimTime{0}, Days(120), rng);
  for (const auto& e : schedule) {
    if (e.kind == HealthEventKind::kPlannedMaintenance) {
      // <= 25% of an MSB concurrently (Section 3.3.1).
      MsbId msb = fleet.topology.server(e.servers[0]).msb;
      size_t msb_size = fleet.topology.ServersInMsb(msb).size();
      EXPECT_LE(e.servers.size(),
                static_cast<size_t>(static_cast<double>(msb_size) * rates.maintenance_chunk_fraction) + 1);
    }
  }
}

TEST(HealthServiceTest, AppliesAndClearsEvents) {
  Fleet fleet = GenerateFleet(MediumOptions());
  ResourceBroker broker(&fleet.topology);
  HealthCheckService health(&broker);

  HealthEvent e;
  e.kind = HealthEventKind::kServerHardware;
  e.start = SimTime{100};
  e.duration = Seconds(500);
  e.servers = {7};
  health.Inject(e);

  health.AdvanceTo(SimTime{50});
  EXPECT_EQ(broker.record(7).unavailability, Unavailability::kNone);
  health.AdvanceTo(SimTime{100});
  EXPECT_EQ(broker.record(7).unavailability, Unavailability::kUnplannedHardware);
  EXPECT_EQ(health.ActiveCount(HealthEventKind::kServerHardware), 1u);
  health.AdvanceTo(SimTime{600});
  EXPECT_EQ(broker.record(7).unavailability, Unavailability::kNone);
  EXPECT_EQ(health.ActiveCount(HealthEventKind::kServerHardware), 0u);
}

TEST(HealthServiceTest, SeverityComposition) {
  Fleet fleet = GenerateFleet(MediumOptions());
  ResourceBroker broker(&fleet.topology);
  HealthCheckService health(&broker);

  HealthEvent maint;
  maint.kind = HealthEventKind::kPlannedMaintenance;
  maint.start = SimTime{0};
  maint.duration = Seconds(1000);
  maint.servers = {3};
  health.Inject(maint);

  HealthEvent hw;
  hw.kind = HealthEventKind::kServerHardware;
  hw.start = SimTime{100};
  hw.duration = Seconds(100);
  hw.servers = {3};
  health.Inject(hw);

  health.AdvanceTo(SimTime{50});
  EXPECT_EQ(broker.record(3).unavailability, Unavailability::kPlannedMaintenance);
  health.AdvanceTo(SimTime{150});
  EXPECT_EQ(broker.record(3).unavailability, Unavailability::kUnplannedHardware);
  health.AdvanceTo(SimTime{250});
  // Hardware repair finished; maintenance still active.
  EXPECT_EQ(broker.record(3).unavailability, Unavailability::kPlannedMaintenance);
  health.AdvanceTo(SimTime{1100});
  EXPECT_EQ(broker.record(3).unavailability, Unavailability::kNone);
}

TEST(HealthServiceTest, FailureAndRecoveryCallbacks) {
  Fleet fleet = GenerateFleet(MediumOptions());
  ResourceBroker broker(&fleet.topology);
  HealthCheckService health(&broker);
  std::vector<ServerId> failed, recovered;
  health.SetFailureCallback([&](ServerId id, HealthEventKind) { failed.push_back(id); });
  health.SetRecoveryCallback([&](ServerId id) { recovered.push_back(id); });

  HealthEvent e;
  e.kind = HealthEventKind::kServerSoftware;
  e.start = SimTime{10};
  e.duration = Seconds(100);
  e.servers = {4, 9};
  health.Inject(e);
  health.AdvanceTo(SimTime{20});
  EXPECT_EQ(failed, (std::vector<ServerId>{4, 9}));
  health.AdvanceTo(SimTime{200});
  EXPECT_EQ(recovered, (std::vector<ServerId>{4, 9}));
}

TEST(HealthServiceTest, MaintenanceDoesNotFireFailureCallback) {
  Fleet fleet = GenerateFleet(MediumOptions());
  ResourceBroker broker(&fleet.topology);
  HealthCheckService health(&broker);
  int failures = 0;
  health.SetFailureCallback([&](ServerId, HealthEventKind) { ++failures; });

  HealthEvent e;
  e.kind = HealthEventKind::kPlannedMaintenance;
  e.start = SimTime{0};
  e.duration = Seconds(100);
  e.servers = {1};
  health.Inject(e);
  health.AdvanceTo(SimTime{50});
  EXPECT_EQ(failures, 0);
}

TEST(HealthServiceTest, CorrelatedFailureTakesWholeMsb) {
  Fleet fleet = GenerateFleet(MediumOptions());
  ResourceBroker broker(&fleet.topology);
  HealthCheckService health(&broker);

  HealthEvent e;
  e.kind = HealthEventKind::kMsbCorrelatedFailure;
  e.start = SimTime{0};
  e.duration = Hours(8);
  e.servers = fleet.topology.ServersInMsb(2);
  health.Inject(e);
  health.AdvanceTo(SimTime{1});
  for (ServerId id : fleet.topology.ServersInMsb(2)) {
    EXPECT_TRUE(IsUnplanned(broker.record(id).unavailability));
  }
  for (ServerId id : fleet.topology.ServersInMsb(0)) {
    EXPECT_FALSE(IsUnplanned(broker.record(id).unavailability));
  }
}

}  // namespace
}  // namespace ras
