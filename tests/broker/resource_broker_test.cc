#include "src/broker/resource_broker.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

class ResourceBrokerTest : public ::testing::Test {
 protected:
  ResourceBrokerTest() : fleet_(GenerateFleet(SmallOptions())), broker_(&fleet_.topology) {}

  static FleetOptions SmallOptions() {
    FleetOptions opts;
    opts.num_datacenters = 1;
    opts.msbs_per_datacenter = 2;
    opts.racks_per_msb = 2;
    opts.servers_per_rack = 5;
    return opts;  // 20 servers.
  }

  Fleet fleet_;
  ResourceBroker broker_;
};

TEST_F(ResourceBrokerTest, AllServersStartFree) {
  EXPECT_EQ(broker_.num_servers(), 20u);
  EXPECT_EQ(broker_.CountInReservation(kUnassigned), 20u);
  for (ServerId id = 0; id < broker_.num_servers(); ++id) {
    const ServerRecord& rec = broker_.record(id);
    EXPECT_EQ(rec.current, kUnassigned);
    EXPECT_EQ(rec.target, kUnassigned);
    EXPECT_EQ(rec.unavailability, Unavailability::kNone);
    EXPECT_FALSE(rec.has_containers);
  }
}

TEST_F(ResourceBrokerTest, SetCurrentMaintainsIndex) {
  broker_.SetCurrent(3, 100);
  broker_.SetCurrent(7, 100);
  EXPECT_EQ(broker_.CountInReservation(100), 2u);
  EXPECT_EQ(broker_.CountInReservation(kUnassigned), 18u);
  broker_.SetCurrent(3, kUnassigned);
  EXPECT_EQ(broker_.CountInReservation(100), 1u);
  EXPECT_EQ(broker_.ServersInReservation(100)[0], 7u);
}

TEST_F(ResourceBrokerTest, VersionBumpsOnChange) {
  uint64_t v0 = broker_.record(5).version;
  broker_.SetTarget(5, 9);
  EXPECT_GT(broker_.record(5).version, v0);
  uint64_t v1 = broker_.record(5).version;
  broker_.SetTarget(5, 9);  // No-op: same value.
  EXPECT_EQ(broker_.record(5).version, v1);
}

TEST_F(ResourceBrokerTest, PendingMoves) {
  EXPECT_TRUE(broker_.PendingMoves().empty());
  broker_.SetTarget(2, 50);
  broker_.SetTarget(4, 50);
  auto pending = broker_.PendingMoves();
  ASSERT_EQ(pending.size(), 2u);
  broker_.SetCurrent(2, 50);
  EXPECT_EQ(broker_.PendingMoves().size(), 1u);
}

TEST_F(ResourceBrokerTest, WatchersFireOnChange) {
  int calls = 0;
  ServerId last = kInvalidServer;
  int handle = broker_.Subscribe([&](const ServerRecord& rec) {
    ++calls;
    last = rec.server;
  });
  broker_.SetUnavailability(6, Unavailability::kUnplannedHardware);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last, 6u);
  broker_.SetUnavailability(6, Unavailability::kUnplannedHardware);  // No-op.
  EXPECT_EQ(calls, 1);
  broker_.Unsubscribe(handle);
  broker_.SetUnavailability(6, Unavailability::kNone);
  EXPECT_EQ(calls, 1);
}

TEST_F(ResourceBrokerTest, ElasticLoanFields) {
  broker_.SetElasticLoan(9, 42, true);
  EXPECT_TRUE(broker_.record(9).elastic_loan);
  EXPECT_EQ(broker_.record(9).home, 42u);
  broker_.SetElasticLoan(9, kUnassigned, false);
  EXPECT_FALSE(broker_.record(9).elastic_loan);
}

TEST_F(ResourceBrokerTest, IsUnplannedClassification) {
  EXPECT_FALSE(IsUnplanned(Unavailability::kNone));
  EXPECT_FALSE(IsUnplanned(Unavailability::kPlannedMaintenance));
  EXPECT_TRUE(IsUnplanned(Unavailability::kUnplannedSoftware));
  EXPECT_TRUE(IsUnplanned(Unavailability::kUnplannedHardware));
}

TEST_F(ResourceBrokerTest, HasContainersFlag) {
  broker_.SetHasContainers(1, true);
  EXPECT_TRUE(broker_.record(1).has_containers);
  broker_.SetHasContainers(1, false);
  EXPECT_FALSE(broker_.record(1).has_containers);
}

}  // namespace
}  // namespace ras
