#include "src/broker/resource_broker.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_gen.h"

namespace ras {
namespace {

class ResourceBrokerTest : public ::testing::Test {
 protected:
  ResourceBrokerTest() : fleet_(GenerateFleet(SmallOptions())), broker_(&fleet_.topology) {}

  static FleetOptions SmallOptions() {
    FleetOptions opts;
    opts.num_datacenters = 1;
    opts.msbs_per_datacenter = 2;
    opts.racks_per_msb = 2;
    opts.servers_per_rack = 5;
    return opts;  // 20 servers.
  }

  Fleet fleet_;
  ResourceBroker broker_;
};

TEST_F(ResourceBrokerTest, AllServersStartFree) {
  EXPECT_EQ(broker_.num_servers(), 20u);
  EXPECT_EQ(broker_.CountInReservation(kUnassigned), 20u);
  for (ServerId id = 0; id < broker_.num_servers(); ++id) {
    const ServerRecord& rec = broker_.record(id);
    EXPECT_EQ(rec.current, kUnassigned);
    EXPECT_EQ(rec.target, kUnassigned);
    EXPECT_EQ(rec.unavailability, Unavailability::kNone);
    EXPECT_FALSE(rec.has_containers);
  }
}

TEST_F(ResourceBrokerTest, SetCurrentMaintainsIndex) {
  broker_.SetCurrent(3, 100);
  broker_.SetCurrent(7, 100);
  EXPECT_EQ(broker_.CountInReservation(100), 2u);
  EXPECT_EQ(broker_.CountInReservation(kUnassigned), 18u);
  broker_.SetCurrent(3, kUnassigned);
  EXPECT_EQ(broker_.CountInReservation(100), 1u);
  EXPECT_EQ(broker_.ServersInReservation(100)[0], 7u);
}

TEST_F(ResourceBrokerTest, VersionBumpsOnChange) {
  uint64_t v0 = broker_.record(5).version;
  broker_.SetTarget(5, 9);
  EXPECT_GT(broker_.record(5).version, v0);
  uint64_t v1 = broker_.record(5).version;
  broker_.SetTarget(5, 9);  // No-op: same value.
  EXPECT_EQ(broker_.record(5).version, v1);
}

TEST_F(ResourceBrokerTest, PendingMoves) {
  EXPECT_TRUE(broker_.PendingMoves().empty());
  broker_.SetTarget(2, 50);
  broker_.SetTarget(4, 50);
  auto pending = broker_.PendingMoves();
  ASSERT_EQ(pending.size(), 2u);
  broker_.SetCurrent(2, 50);
  EXPECT_EQ(broker_.PendingMoves().size(), 1u);
}

TEST_F(ResourceBrokerTest, WatchersFireOnChange) {
  int calls = 0;
  ServerId last = kInvalidServer;
  int handle = broker_.Subscribe([&](const ServerRecord& rec) {
    ++calls;
    last = rec.server;
  });
  broker_.SetUnavailability(6, Unavailability::kUnplannedHardware);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last, 6u);
  broker_.SetUnavailability(6, Unavailability::kUnplannedHardware);  // No-op.
  EXPECT_EQ(calls, 1);
  broker_.Unsubscribe(handle);
  broker_.SetUnavailability(6, Unavailability::kNone);
  EXPECT_EQ(calls, 1);
}

TEST_F(ResourceBrokerTest, ElasticLoanFields) {
  broker_.SetElasticLoan(9, 42, true);
  EXPECT_TRUE(broker_.record(9).elastic_loan);
  EXPECT_EQ(broker_.record(9).home, 42u);
  broker_.SetElasticLoan(9, kUnassigned, false);
  EXPECT_FALSE(broker_.record(9).elastic_loan);
}

TEST_F(ResourceBrokerTest, IsUnplannedClassification) {
  EXPECT_FALSE(IsUnplanned(Unavailability::kNone));
  EXPECT_FALSE(IsUnplanned(Unavailability::kPlannedMaintenance));
  EXPECT_TRUE(IsUnplanned(Unavailability::kUnplannedSoftware));
  EXPECT_TRUE(IsUnplanned(Unavailability::kUnplannedHardware));
}

TEST_F(ResourceBrokerTest, HasContainersFlag) {
  broker_.SetHasContainers(1, true);
  EXPECT_TRUE(broker_.record(1).has_containers);
  broker_.SetHasContainers(1, false);
  EXPECT_FALSE(broker_.record(1).has_containers);
}

TEST_F(ResourceBrokerTest, GenerationBumpsOnEveryMutation) {
  uint64_t g0 = broker_.generation();
  broker_.SetCurrent(3, 100);
  EXPECT_GT(broker_.generation(), g0);
  uint64_t g1 = broker_.generation();
  broker_.SetTarget(3, 100);
  EXPECT_GT(broker_.generation(), g1);
  uint64_t g2 = broker_.generation();
  broker_.MarkExternalMutation();
  EXPECT_EQ(broker_.generation(), g2 + 1);
  // The external mutation touched no record.
  EXPECT_EQ(broker_.record(3).current, 100u);
  EXPECT_EQ(broker_.record(3).target, 100u);
}

TEST_F(ResourceBrokerTest, TrySetTargetHonorsWriteFaultHook) {
  broker_.SetWriteFaultHook([](ServerId id, ReservationId) { return id == 5; });
  EXPECT_TRUE(broker_.TrySetTarget(4, 100).ok());
  Status rejected = broker_.TrySetTarget(5, 100);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(broker_.record(4).target, 100u);
  EXPECT_EQ(broker_.record(5).target, kUnassigned);
  EXPECT_EQ(broker_.failed_writes(), 1u);
  broker_.SetWriteFaultHook(nullptr);
  EXPECT_TRUE(broker_.TrySetTarget(5, 100).ok());
}

TEST_F(ResourceBrokerTest, ApplyTargetsRollsBackMidBatchFailure) {
  broker_.SetTarget(0, 200);  // Pre-existing intent that must be restored.
  int writes = 0;
  broker_.SetWriteFaultHook([&writes](ServerId, ReservationId) { return ++writes == 3; });

  std::vector<std::pair<ServerId, ReservationId>> batch = {
      {0, 100}, {1, 100}, {2, 100}, {3, 100}};
  Status status = broker_.ApplyTargets(batch);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // The first two writes landed and were rolled back; the rest never ran.
  EXPECT_EQ(broker_.record(0).target, 200u);
  EXPECT_EQ(broker_.record(1).target, kUnassigned);
  EXPECT_EQ(broker_.record(2).target, kUnassigned);
  EXPECT_EQ(broker_.record(3).target, kUnassigned);
  EXPECT_EQ(broker_.failed_writes(), 1u);

  // Without the hook the same batch applies in full.
  broker_.SetWriteFaultHook(nullptr);
  EXPECT_TRUE(broker_.ApplyTargets(batch).ok());
  for (ServerId id = 0; id < 4; ++id) {
    EXPECT_EQ(broker_.record(id).target, 100u);
  }
}

}  // namespace
}  // namespace ras
