#include "src/twine/greedy_assigner.h"

#include <algorithm>
#include <cassert>

namespace ras {

GreedyAssigner::GreedyAssigner(const HardwareCatalog* catalog, ResourceBroker* broker)
    : catalog_(catalog), broker_(broker) {
  assert(catalog != nullptr && broker != nullptr);
}

size_t GreedyAssigner::Grow(ReservationId reservation,
                            const std::vector<HardwareTypeId>& acceptable_types, size_t count) {
  const RegionTopology& topo = broker_->topology();
  std::vector<ServerId> pool = broker_->ServersInReservation(kUnassigned);
  // Deployment order: oldest MSB first, then server id for determinism.
  std::sort(pool.begin(), pool.end(), [&topo](ServerId a, ServerId b) {
    const Server& sa = topo.server(a);
    const Server& sb = topo.server(b);
    if (sa.msb != sb.msb) {
      return sa.msb < sb.msb;
    }
    return a < b;
  });

  size_t acquired = 0;
  for (ServerId sid : pool) {
    if (acquired >= count) {
      break;
    }
    const ServerRecord& rec = broker_->record(sid);
    if (IsUnplanned(rec.unavailability)) {
      continue;
    }
    HardwareTypeId type = topo.server(sid).type;
    if (!acceptable_types.empty() &&
        std::find(acceptable_types.begin(), acceptable_types.end(), type) ==
            acceptable_types.end()) {
      continue;
    }
    broker_->SetCurrent(sid, reservation);
    broker_->SetTarget(sid, reservation);
    ++acquired;
  }
  return acquired;
}

size_t GreedyAssigner::Shrink(ReservationId reservation, size_t count) {
  std::vector<ServerId> members = broker_->ServersInReservation(reservation);
  std::sort(members.begin(), members.end());
  size_t released = 0;
  for (ServerId sid : members) {
    if (released >= count) {
      break;
    }
    if (broker_->record(sid).has_containers) {
      continue;  // Greedy Twine only returns empty servers.
    }
    broker_->SetCurrent(sid, kUnassigned);
    broker_->SetTarget(sid, kUnassigned);
    ++released;
  }
  return released;
}

}  // namespace ras
