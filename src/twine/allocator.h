// Twine Allocator: real-time container placement inside a reservation.
//
// The allocator only ever considers servers whose *current* binding is the
// job's reservation (the rigid capacity boundary of Section 5.4) and that are
// not unplanned-unavailable. Within those, placement prefers spreading a
// job's replicas across MSBs, then best-fit packs by remaining CPU so that
// containers from different jobs stack on shared servers (Section 3.1).

#ifndef RAS_SRC_TWINE_ALLOCATOR_H_
#define RAS_SRC_TWINE_ALLOCATOR_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "src/broker/resource_broker.h"
#include "src/twine/container.h"
#include "src/util/status.h"

namespace ras {

struct JobState {
  JobSpec spec;
  std::vector<ContainerId> running;
  int pending = 0;  // Replicas that could not be placed yet.
};

class TwineAllocator {
 public:
  TwineAllocator(const HardwareCatalog* catalog, ResourceBroker* broker);

  // Submits a job; places as many replicas as fit immediately, the rest stay
  // pending and are retried by RetryPending(). Fails on invalid specs only —
  // lack of capacity is not an error, it is pending work.
  Result<JobId> SubmitJob(const JobSpec& spec);
  Status StopJob(JobId job);
  // Adjusts the replica count of a running job up or down.
  Status ResizeJob(JobId job, int replicas);

  // Evicts every container on `server` (server moved out of the reservation,
  // or failed) and — unless `replace_now` is false — immediately tries to
  // re-place them elsewhere in their reservation; otherwise they go pending
  // for a later RetryPending (used when many servers move in one batch).
  // Returns the number of containers that were displaced.
  size_t EvictServer(ServerId server, bool replace_now = true);

  // Attempts to place all pending replicas; returns how many were placed.
  // Called after capacity arrives (Online Mover replacement, solver round).
  size_t RetryPending();

  // --- Introspection ---
  const JobState* job(JobId id) const;
  size_t running_containers(JobId id) const;
  int pending_containers(JobId id) const;
  size_t total_pending() const;
  size_t containers_on(ServerId server) const;
  // Replicas of `job` per MSB (spread diagnostics).
  std::vector<size_t> ReplicasPerMsb(JobId id) const;

 private:
  struct ServerUsage {
    double cpu_used = 0.0;
    double mem_used = 0.0;
    std::vector<ContainerId> containers;
  };
  struct ContainerState {
    JobId job;
    ServerId server;
  };

  // Places one replica of `job_state`; returns false if nothing fits.
  // `exclude` is skipped as a candidate (used during eviction).
  bool PlaceOne(JobId id, JobState& job_state, ServerId exclude = kInvalidServer);
  void RemoveContainer(ContainerId cid);
  void UpdateHasContainers(ServerId server);

  const HardwareCatalog* catalog_;
  ResourceBroker* broker_;
  // Ordered by JobId: RetryPending() and the eviction paths iterate jobs_,
  // and placement order decides which job wins contended capacity — hash
  // order here would leak into allocation outcomes run-to-run.
  std::map<JobId, JobState> jobs_;
  // Lookup-only (never iterated); hash ordering cannot leak.
  std::unordered_map<ContainerId, ContainerState> containers_;
  std::vector<ServerUsage> usage_;
  JobId next_job_ = 1;
  ContainerId next_container_ = 1;
};

}  // namespace ras

#endif  // RAS_SRC_TWINE_ALLOCATOR_H_
