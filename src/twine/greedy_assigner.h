// Greedy region-pool server assignment: Twine's pre-RAS approach
// (Section 1.1) and the comparison baseline of Figures 12 and 14.
//
// When an entitlement needs capacity, a free server is acquired greedily from
// the shared region pool in deployment order (oldest MSBs first, which is how
// free capacity accumulates in practice), with no fault-domain spread, power
// balance, or buffer reasoning. This concentrates entitlements in a few MSBs
// — exactly the pathology RAS's MIP optimization removes.

#ifndef RAS_SRC_TWINE_GREEDY_ASSIGNER_H_
#define RAS_SRC_TWINE_GREEDY_ASSIGNER_H_

#include <vector>

#include "src/broker/resource_broker.h"
#include "src/topology/hardware.h"

namespace ras {

class GreedyAssigner {
 public:
  GreedyAssigner(const HardwareCatalog* catalog, ResourceBroker* broker);

  // Moves up to `count` free, healthy servers of an acceptable type into
  // `reservation` (sets both current and target — the greedy path has no
  // separate solve step). Returns how many were acquired.
  size_t Grow(ReservationId reservation, const std::vector<HardwareTypeId>& acceptable_types,
              size_t count);

  // Returns up to `count` container-free servers of `reservation` to the
  // region pool. Returns how many were released.
  size_t Shrink(ReservationId reservation, size_t count);

 private:
  const HardwareCatalog* catalog_;
  ResourceBroker* broker_;
};

}  // namespace ras

#endif  // RAS_SRC_TWINE_GREEDY_ASSIGNER_H_
