#include "src/twine/allocator.h"

#include <algorithm>
#include <cassert>

namespace ras {

ServerResources CapacityOf(const HardwareType& type) {
  return ServerResources{type.compute_units * kCoresPerComputeUnit, type.memory_gb};
}

TwineAllocator::TwineAllocator(const HardwareCatalog* catalog, ResourceBroker* broker)
    : catalog_(catalog), broker_(broker) {
  assert(catalog != nullptr && broker != nullptr);
  usage_.resize(broker->num_servers());
}

Result<JobId> TwineAllocator::SubmitJob(const JobSpec& spec) {
  if (spec.replicas < 0) {
    return Status::InvalidArgument("negative replica count");
  }
  if (spec.container.cpu <= 0 || spec.container.memory_gb <= 0) {
    return Status::InvalidArgument("container demands must be positive");
  }
  if (spec.reservation == kUnassigned) {
    return Status::InvalidArgument("job must reference a reservation");
  }
  JobId id = next_job_++;
  JobState& state = jobs_[id];
  state.spec = spec;
  state.pending = spec.replicas;
  while (state.pending > 0 && PlaceOne(id, state)) {
    --state.pending;
  }
  return id;
}

Status TwineAllocator::StopJob(JobId job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job");
  }
  // Copy: RemoveContainer mutates the running list.
  std::vector<ContainerId> running = it->second.running;
  for (ContainerId cid : running) {
    RemoveContainer(cid);
  }
  jobs_.erase(it);
  return Status::Ok();
}

Status TwineAllocator::ResizeJob(JobId job, int replicas) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job");
  }
  if (replicas < 0) {
    return Status::InvalidArgument("negative replica count");
  }
  JobState& state = it->second;
  int current_total = static_cast<int>(state.running.size()) + state.pending;
  if (replicas >= current_total) {
    state.pending += replicas - current_total;
    while (state.pending > 0 && PlaceOne(job, state)) {
      --state.pending;
    }
    state.spec.replicas = replicas;
    return Status::Ok();
  }
  int to_remove = current_total - replicas;
  // Drop pending first, then tear down running replicas (newest first).
  int from_pending = std::min(to_remove, state.pending);
  state.pending -= from_pending;
  to_remove -= from_pending;
  while (to_remove > 0 && !state.running.empty()) {
    RemoveContainer(state.running.back());
    --to_remove;
  }
  state.spec.replicas = replicas;
  return Status::Ok();
}

bool TwineAllocator::PlaceOne(JobId id, JobState& job_state, ServerId exclude) {
  const ContainerSpec& demand = job_state.spec.container;
  const auto& candidates = broker_->ServersInReservation(job_state.spec.reservation);
  const RegionTopology& topo = broker_->topology();

  // Spread preference: replicas of this job already per MSB.
  std::vector<size_t> replicas_per_msb(topo.num_msbs(), 0);
  for (ContainerId cid : job_state.running) {
    replicas_per_msb[topo.server(containers_[cid].server).msb]++;
  }

  ServerId best = kInvalidServer;
  size_t best_msb_load = SIZE_MAX;
  double best_remaining_cpu = 0.0;
  for (ServerId sid : candidates) {
    if (sid == exclude) {
      continue;
    }
    const ServerRecord& rec = broker_->record(sid);
    // No new placements on any unavailable server. (The solver counts
    // planned-maintenance servers as capacity — Section 3.5.1 — because the
    // embedded buffer covers the window; the real-time allocator still must
    // not land fresh containers on a host about to be worked on.)
    if (rec.unavailability != Unavailability::kNone) {
      continue;
    }
    ServerResources cap = CapacityOf(catalog_->type(topo.server(sid).type));
    const ServerUsage& u = usage_[sid];
    double cpu_left = cap.cpu - u.cpu_used;
    double mem_left = cap.memory_gb - u.mem_used;
    if (cpu_left < demand.cpu || mem_left < demand.memory_gb) {
      continue;
    }
    size_t msb_load = replicas_per_msb[topo.server(sid).msb];
    // Prefer the least-loaded MSB (spread), then the fullest server that
    // still fits (best-fit packing for stacking efficiency).
    if (msb_load < best_msb_load ||
        (msb_load == best_msb_load && (best == kInvalidServer || cpu_left < best_remaining_cpu))) {
      best = sid;
      best_msb_load = msb_load;
      best_remaining_cpu = cpu_left;
    }
  }
  if (best == kInvalidServer) {
    return false;
  }

  ContainerId cid = next_container_++;
  containers_[cid] = ContainerState{id, best};
  ServerUsage& u = usage_[best];
  u.cpu_used += demand.cpu;
  u.mem_used += demand.memory_gb;
  u.containers.push_back(cid);
  job_state.running.push_back(cid);
  UpdateHasContainers(best);
  return true;
}

void TwineAllocator::RemoveContainer(ContainerId cid) {
  auto it = containers_.find(cid);
  if (it == containers_.end()) {
    return;
  }
  ContainerState state = it->second;
  containers_.erase(it);

  JobState& job_state = jobs_[state.job];
  auto& running = job_state.running;
  running.erase(std::remove(running.begin(), running.end(), cid), running.end());

  ServerUsage& u = usage_[state.server];
  u.containers.erase(std::remove(u.containers.begin(), u.containers.end(), cid),
                     u.containers.end());
  u.cpu_used -= job_state.spec.container.cpu;
  u.mem_used -= job_state.spec.container.memory_gb;
  if (u.containers.empty()) {
    u.cpu_used = 0.0;  // Wash out float residue on empty servers.
    u.mem_used = 0.0;
  }
  UpdateHasContainers(state.server);
}

size_t TwineAllocator::EvictServer(ServerId server, bool replace_now) {
  std::vector<ContainerId> evicted = usage_[server].containers;
  std::vector<JobId> owners;
  owners.reserve(evicted.size());
  for (ContainerId cid : evicted) {
    owners.push_back(containers_[cid].job);
    RemoveContainer(cid);
  }
  // Re-place displaced replicas wherever their reservation has room — but
  // never back onto the server being evicted.
  for (JobId jid : owners) {
    JobState& state = jobs_[jid];
    if (!replace_now || !PlaceOne(jid, state, server)) {
      ++state.pending;
    }
  }
  return evicted.size();
}

size_t TwineAllocator::RetryPending() {
  size_t placed = 0;
  for (auto& [id, state] : jobs_) {
    while (state.pending > 0 && PlaceOne(id, state)) {
      --state.pending;
      ++placed;
    }
  }
  return placed;
}

const JobState* TwineAllocator::job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

size_t TwineAllocator::running_containers(JobId id) const {
  const JobState* state = job(id);
  return state == nullptr ? 0 : state->running.size();
}

int TwineAllocator::pending_containers(JobId id) const {
  const JobState* state = job(id);
  return state == nullptr ? 0 : state->pending;
}

size_t TwineAllocator::total_pending() const {
  size_t total = 0;
  for (const auto& [id, state] : jobs_) {
    total += static_cast<size_t>(state.pending);
  }
  return total;
}

size_t TwineAllocator::containers_on(ServerId server) const {
  return usage_[server].containers.size();
}

std::vector<size_t> TwineAllocator::ReplicasPerMsb(JobId id) const {
  const RegionTopology& topo = broker_->topology();
  std::vector<size_t> out(topo.num_msbs(), 0);
  const JobState* state = job(id);
  if (state == nullptr) {
    return out;
  }
  for (ContainerId cid : state->running) {
    out[topo.server(containers_.at(cid).server).msb]++;
  }
  return out;
}

void TwineAllocator::UpdateHasContainers(ServerId server) {
  broker_->SetHasContainers(server, !usage_[server].containers.empty());
}

}  // namespace ras
