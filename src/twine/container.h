// Container and job model for the second level of the two-level architecture:
// the Twine Allocator places containers on servers *within* a reservation
// (Figure 6, right side), on the critical path, in real time.

#ifndef RAS_SRC_TWINE_CONTAINER_H_
#define RAS_SRC_TWINE_CONTAINER_H_

#include <cstdint>
#include <string>

#include "src/broker/resource_broker.h"

namespace ras {

using JobId = uint32_t;
using ContainerId = uint64_t;
inline constexpr JobId kInvalidJob = 0xffffffff;

// Per-container resource demand. CPU is in abstract core-units scaled so a
// generation-1 baseline server offers kCoresPerComputeUnit * compute_units.
struct ContainerSpec {
  double cpu = 1.0;
  double memory_gb = 4.0;
};

struct JobSpec {
  std::string name;
  ReservationId reservation = kUnassigned;
  ContainerSpec container;
  int replicas = 1;
};

// Scale factor from a SKU's compute_units to schedulable CPU capacity.
inline constexpr double kCoresPerComputeUnit = 32.0;

struct ServerResources {
  double cpu = 0.0;
  double memory_gb = 0.0;
};

// Schedulable capacity of one server of `type`.
ServerResources CapacityOf(const HardwareType& type);

}  // namespace ras

#endif  // RAS_SRC_TWINE_CONTAINER_H_
