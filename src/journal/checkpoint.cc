#include "src/journal/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <unistd.h>

#include "src/core/state_io.h"
#include "src/journal/crc32.h"
#include "src/util/file_io.h"

namespace ras {
namespace journal {
namespace {

constexpr char kHeaderPrefix[] = "ras-checkpoint v1|";
constexpr char kFilePrefix[] = "checkpoint-";
constexpr char kFileSuffix[] = ".ras";

std::string CheckpointPath(const std::string& dir, uint64_t generation) {
  char name[64];
  // Zero-padded so lexicographic file order matches generation order.
  std::snprintf(name, sizeof(name), "%s%020llu%s", kFilePrefix,
                static_cast<unsigned long long>(generation), kFileSuffix);
  return dir + "/" + name;
}

}  // namespace

uint32_t StateDigest(const ResourceBroker& broker, const ReservationRegistry& registry) {
  return Crc32(SerializeRegionState(broker, registry));
}

Status WriteCheckpoint(const std::string& dir, uint64_t generation,
                       const ResourceBroker& broker, const ReservationRegistry& registry) {
  std::string body = SerializeRegionState(broker, registry);
  // The CRC chains over "<generation>|<bytes>" and then the body, so a flip
  // in any header field is as detectable as one in the body.
  char meta[64];
  std::snprintf(meta, sizeof(meta), "%llu|%zu", static_cast<unsigned long long>(generation),
                body.size());
  char header[128];
  std::snprintf(header, sizeof(header), "%s%s|%08x\n", kHeaderPrefix, meta,
                Crc32(body, Crc32(meta)));
  return AtomicWriteFile(CheckpointPath(dir, generation), header + body);
}

std::vector<CheckpointInfo> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointInfo> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return out;
  }
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind(kFilePrefix, 0) != 0 || name.size() <= std::strlen(kFileSuffix) ||
        name.compare(name.size() - std::strlen(kFileSuffix), std::strlen(kFileSuffix),
                     kFileSuffix) != 0) {
      continue;
    }
    std::string digits =
        name.substr(std::strlen(kFilePrefix),
                    name.size() - std::strlen(kFilePrefix) - std::strlen(kFileSuffix));
    char* end = nullptr;
    errno = 0;
    unsigned long long generation = std::strtoull(digits.c_str(), &end, 10);
    if (digits.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
      continue;
    }
    out.push_back({dir + "/" + name, generation});
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.generation > b.generation;
            });
  return out;
}

Result<std::string> LoadCheckpointBody(const std::string& path, uint64_t* generation) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) {
    return content.status();
  }
  const std::string& text = *content;
  if (text.rfind(kHeaderPrefix, 0) != 0) {
    return Status::InvalidArgument("bad checkpoint header: " + path);
  }
  size_t newline = text.find('\n');
  if (newline == std::string::npos) {
    return Status::InvalidArgument("checkpoint header unterminated: " + path);
  }
  std::string header = text.substr(std::strlen(kHeaderPrefix), newline - std::strlen(kHeaderPrefix));
  // Strict field split: "<generation>|<bytes>|<crc, exactly 8 hex>".
  size_t p1 = header.find('|');
  size_t p2 = p1 == std::string::npos ? p1 : header.find('|', p1 + 1);
  if (p2 == std::string::npos || header.find('|', p2 + 1) != std::string::npos) {
    return Status::InvalidArgument("unparsable checkpoint header: " + path);
  }
  std::string meta = header.substr(0, p2);
  std::string crc_text = header.substr(p2 + 1);
  char* end = nullptr;
  errno = 0;
  unsigned long long gen = std::strtoull(header.c_str(), &end, 10);
  if (end == nullptr || static_cast<size_t>(end - header.c_str()) != p1 || errno == ERANGE) {
    return Status::InvalidArgument("bad checkpoint generation: " + path);
  }
  std::string bytes_text = header.substr(p1 + 1, p2 - p1 - 1);
  errno = 0;
  unsigned long long body_bytes = std::strtoull(bytes_text.c_str(), &end, 10);
  if (bytes_text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("bad checkpoint body length: " + path);
  }
  std::string body = text.substr(newline + 1);
  if (body.size() != body_bytes) {
    return Status::InvalidArgument("checkpoint body truncated: " + path + " (" +
                                   std::to_string(body.size()) + " of " +
                                   std::to_string(body_bytes) + " bytes)");
  }
  char expected[16];
  std::snprintf(expected, sizeof(expected), "%08x", Crc32(body, Crc32(meta)));
  if (crc_text != expected) {
    return Status::InvalidArgument("checkpoint CRC mismatch: " + path);
  }
  *generation = gen;
  return body;
}

Status PruneCheckpoints(const std::string& dir, size_t keep) {
  std::vector<CheckpointInfo> all = ListCheckpoints(dir);
  Status first_error = Status::Ok();
  for (size_t i = keep; i < all.size(); ++i) {
    if (::unlink(all[i].path.c_str()) != 0 && first_error.ok()) {
      first_error = Status::Internal("unlink " + all[i].path + ": " + std::strerror(errno));
    }
  }
  return first_error;
}

}  // namespace journal
}  // namespace ras
