#include "src/journal/wal.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "src/core/state_io.h"
#include "src/journal/crc32.h"
#include "src/obs/metrics.h"
#include "src/util/file_io.h"
#include "src/util/monotonic_time.h"

namespace ras {
namespace journal {
namespace {

const char* const kKindNames[kNumRecordKinds] = {
    "admit", "update", "remove", "targets", "abort", "server", "digest",
};

std::string CrcHex(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

// The byte sequence of one complete record, trailing newline included.
std::string FrameRecord(uint64_t generation, RecordKind kind, const std::string& payload) {
  std::string body = std::to_string(generation) + "|" + RecordKindName(kind) + "|" +
                     EscapeStateField(payload);
  return "w|" + body + "|" + CrcHex(Crc32(body)) + "\n";
}

// Parses one line (no newline). Returns false with `why` set on any damage.
bool ParseRecord(const std::string& line, uint64_t min_generation, JournalRecord* out,
                 std::string* why) {
  if (line.rfind("w|", 0) != 0) {
    *why = "bad record prefix";
    return false;
  }
  // Fields: "w", generation, kind, payload, crc. Payload is escaped, so the
  // split is unambiguous.
  size_t p1 = line.find('|', 2);
  size_t p2 = p1 == std::string::npos ? p1 : line.find('|', p1 + 1);
  size_t p3 = p2 == std::string::npos ? p2 : line.find('|', p2 + 1);
  if (p3 == std::string::npos || line.find('|', p3 + 1) != std::string::npos) {
    *why = "bad field count";
    return false;
  }
  std::string gen_text = line.substr(2, p1 - 2);
  std::string kind_text = line.substr(p1 + 1, p2 - p1 - 1);
  std::string payload_text = line.substr(p2 + 1, p3 - p2 - 1);
  std::string crc_text = line.substr(p3 + 1);

  char* end = nullptr;
  errno = 0;
  unsigned long long generation = std::strtoull(gen_text.c_str(), &end, 10);
  if (gen_text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    *why = "bad generation";
    return false;
  }
  Result<RecordKind> kind = RecordKindFromName(kind_text);
  if (!kind.ok()) {
    *why = "unknown record kind: " + kind_text;
    return false;
  }
  uint32_t expected = Crc32(gen_text + "|" + kind_text + "|" + payload_text);
  if (crc_text != CrcHex(expected)) {
    *why = "CRC mismatch";
    return false;
  }
  if (generation < min_generation) {
    *why = "generation went backwards";
    return false;
  }
  out->generation = generation;
  out->kind = *kind;
  out->payload = UnescapeStateField(payload_text);
  return true;
}

}  // namespace

const char* RecordKindName(RecordKind kind) { return kKindNames[static_cast<int>(kind)]; }

Result<RecordKind> RecordKindFromName(const std::string& name) {
  for (int k = 0; k < kNumRecordKinds; ++k) {
    if (name == kKindNames[k]) {
      return static_cast<RecordKind>(k);
    }
  }
  return Status::NotFound("unknown journal record kind: " + name);
}

WriteAheadJournal::WriteAheadJournal(std::string path) : path_(std::move(path)) {}

WriteAheadJournal::~WriteAheadJournal() { Close(); }

Result<JournalScan> WriteAheadJournal::Scan(const std::string& path) {
  JournalScan scan;
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) {
    if (content.status().code() == StatusCode::kNotFound) {
      return scan;  // No journal yet: empty history.
    }
    return content.status();
  }
  const std::string& text = *content;
  size_t offset = 0;
  uint64_t min_generation = 1;
  while (offset < text.size()) {
    size_t newline = text.find('\n', offset);
    if (newline == std::string::npos) {
      // A final line without its newline is a record whose write never
      // finished — the canonical torn tail.
      scan.torn_reason = "record missing trailing newline";
      break;
    }
    JournalRecord record;
    std::string why;
    if (!ParseRecord(text.substr(offset, newline - offset), min_generation, &record, &why)) {
      scan.torn_reason = why;
      break;
    }
    min_generation = record.generation + 1;
    scan.records.push_back(std::move(record));
    offset = newline + 1;
    scan.valid_bytes = offset;
  }
  scan.torn_bytes = text.size() - scan.valid_bytes;
  return scan;
}

Status WriteAheadJournal::OpenAppend(uint64_t next_generation) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("journal already open: " + path_);
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("open journal " + path_ + ": " + std::strerror(errno));
  }
  next_generation_ = next_generation;
  return Status::Ok();
}

Result<uint64_t> WriteAheadJournal::Append(RecordKind kind, const std::string& payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal not open for append: " + path_);
  }
  uint64_t generation = next_generation_;
  std::string frame = FrameRecord(generation, kind, payload);
  const double t0 = util::MonotonicSeconds();
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    return Status::Internal("journal append failed: " + path_);
  }
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  static obs::Counter& appends =
      reg.counter("ras_journal_appends_total", "Records durably appended to the WAL.");
  static obs::Histogram& append_seconds = reg.histogram(
      "ras_journal_append_seconds", "Write + fsync latency of one WAL append.", 0.0, 0.1, 100);
  appends.Add();
  append_seconds.Observe(util::MonotonicSeconds() - t0);
  ++next_generation_;
  ++records_appended_;
  return generation;
}

Status WriteAheadJournal::AppendTorn(RecordKind kind, const std::string& payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal not open for append: " + path_);
  }
  std::string frame = FrameRecord(next_generation_, kind, payload);
  size_t half = frame.size() / 2;
  if (std::fwrite(frame.data(), 1, half, file_) != half || std::fflush(file_) != 0) {
    return Status::Internal("journal torn append failed: " + path_);
  }
  ::fsync(fileno(file_));
  Close();
  return Status::Ok();
}

Status WriteAheadJournal::TruncateTo(size_t valid_bytes) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("cannot truncate an open journal: " + path_);
  }
  if (::truncate(path_.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::Internal("truncate journal " + path_ + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status WriteAheadJournal::Reset() {
  if (file_ != nullptr && std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::Internal("close journal " + path_ + ": " + std::strerror(errno));
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("reset journal " + path_ + ": " + std::strerror(errno));
  }
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    return Status::Internal("sync reset journal " + path_);
  }
  return Status::Ok();
}

void WriteAheadJournal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace journal
}  // namespace ras
