#include "src/journal/durable_control_plane.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "src/core/state_io.h"
#include "src/obs/metrics.h"
#include "src/util/file_io.h"
#include "src/util/logging.h"
#include "src/util/monotonic_time.h"

namespace ras {
namespace journal {
namespace {

constexpr char kJournalFile[] = "journal.wal";
constexpr char kRecoveryLogFile[] = "recovery.log";

std::string DigestHex(uint32_t digest) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", digest);
  return buf;
}

std::string EncodeTargets(const std::vector<std::pair<ServerId, ReservationId>>& targets) {
  std::ostringstream out;
  for (size_t i = 0; i < targets.size(); ++i) {
    out << (i == 0 ? "" : ",") << targets[i].first << "=";
    if (targets[i].second == kUnassigned) {
      out << "-";
    } else {
      out << targets[i].second;
    }
  }
  return out.str();
}

Status DecodeTargets(const std::string& payload, size_t num_servers,
                     std::vector<std::pair<ServerId, ReservationId>>* out) {
  out->clear();
  if (payload.empty()) {
    return Status::Ok();
  }
  size_t start = 0;
  while (start <= payload.size()) {
    size_t comma = payload.find(',', start);
    std::string pair =
        payload.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad target pair: " + pair);
    }
    char* end = nullptr;
    unsigned long server = std::strtoul(pair.c_str(), &end, 10);
    if (end == nullptr || static_cast<size_t>(end - pair.c_str()) != eq || server >= num_servers) {
      return Status::InvalidArgument("bad target server id: " + pair);
    }
    std::string res = pair.substr(eq + 1);
    ReservationId reservation = kUnassigned;
    if (res != "-") {
      errno = 0;
      unsigned long value = std::strtoul(res.c_str(), &end, 10);
      if (res.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
        return Status::InvalidArgument("bad target reservation id: " + pair);
      }
      reservation = static_cast<ReservationId>(value);
    }
    out->emplace_back(static_cast<ServerId>(server), reservation);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return Status::Ok();
}

}  // namespace

DurableControlPlane::DurableControlPlane(std::string dir, DurableOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.checkpoints_to_keep < 2) {
    options_.checkpoints_to_keep = 2;  // Never prune away the only fallback.
  }
}

DurableControlPlane::~DurableControlPlane() {
  if (watcher_handle_ >= 0 && broker_ != nullptr) {
    broker_->Unsubscribe(watcher_handle_);
  }
}

bool DurableControlPlane::HasState(const std::string& dir) {
  if (!ListCheckpoints(dir).empty()) {
    return true;
  }
  Result<std::string> content = ReadFileToString(dir + "/" + kJournalFile);
  return content.ok() && !content->empty();
}

Status DurableControlPlane::Attach(ResourceBroker* broker, ReservationRegistry* registry) {
  if (broker_ != nullptr) {
    return Status::FailedPrecondition("durable control plane already attached");
  }
  broker_ = broker;
  registry_ = registry;
  watcher_handle_ =
      broker_->Subscribe([this](const ServerRecord& record) { OnBrokerChange(record); });
  return Status::Ok();
}

Status DurableControlPlane::DeadStatus() const {
  return Status::Unavailable("control plane process is dead (injected crash)");
}

bool DurableControlPlane::Crashed(CrashPoint point, Status* out) {
  if (crash_ == nullptr || !crash_->ShouldCrash(point)) {
    return false;
  }
  dead_ = true;
  RAS_LOG(kWarning) << "crash point " << CrashPointName(point)
                    << " fired; control plane presumed dead";
  *out = DeadStatus();
  return true;
}

Status DurableControlPlane::Append(RecordKind kind, const std::string& payload) {
  Result<uint64_t> appended = wal_->Append(kind, payload);
  if (!appended.ok()) {
    return appended.status();
  }
  ++records_since_compact_;
  return Status::Ok();
}

void DurableControlPlane::OnBrokerChange(const ServerRecord& record) {
  if (!opened_ || dead_ || suppress_deltas_) {
    return;
  }
  Status appended = Append(RecordKind::kServerDelta, SerializeServerRecord(record));
  if (!appended.ok()) {
    // A control plane that cannot journal must stop acknowledging work:
    // going dead here means recovery serves the last durable state instead
    // of silently diverging from the journal.
    RAS_LOG(kWarning) << "journal append failed (" << appended.ToString()
                      << "); control plane going dead";
    dead_ = true;
  }
}

RecoveryReport DurableControlPlane::OpenOrRecover() {
  RecoveryReport report;
  std::ostringstream log;
  if (broker_ == nullptr || registry_ == nullptr) {
    report.status = Status::FailedPrecondition("OpenOrRecover before Attach");
    return report;
  }
  Status dir_ok = EnsureDirectory(dir_);
  if (!dir_ok.ok()) {
    report.status = dir_ok;
    return report;
  }
  const std::string journal_path = dir_ + "/" + kJournalFile;
  wal_ = std::make_unique<WriteAheadJournal>(journal_path);

  if (!HasState(dir_)) {
    // Bootstrap: the attached pair's current contents become checkpoint 0.
    report.status = WriteCheckpoint(dir_, 0, *broker_, *registry_);
    if (report.status.ok()) {
      report.status = wal_->OpenAppend(1);
    }
    if (report.status.ok()) {
      opened_ = true;
      report.next_generation = wal_->next_generation();
      log << "bootstrap: new durable dir, checkpoint 0 written\n";
      report.log = log.str();
      // Best-effort: the recovery log is an operator breadcrumb, and the
      // bootstrap itself already succeeded; failing it must not fail Open.
      (void)AtomicWriteFile(dir_ + "/" + kRecoveryLogFile, report.log);
    }
    return report;
  }

  report.recovered_state = true;

  // 1. Scan the journal once; the same scan serves every checkpoint
  // candidate.
  Result<JournalScan> scanned = WriteAheadJournal::Scan(journal_path);
  if (!scanned.ok()) {
    report.status = scanned.status();
    return report;
  }
  const JournalScan& scan = *scanned;
  if (scan.torn()) {
    log << "torn tail: " << scan.torn_bytes << " bytes dropped (" << scan.torn_reason << ")\n";
  }

  // 2. Newest checkpoint that both validates and deserializes wins.
  // DeserializeRegionState has no partial effects, so a failed candidate
  // leaves the attached pair clean for the next one.
  std::vector<CheckpointInfo> candidates = ListCheckpoints(dir_);
  bool loaded = false;
  uint64_t checkpoint_generation = 0;
  for (const CheckpointInfo& candidate : candidates) {
    ++report.checkpoints_tried;
    uint64_t generation = 0;
    Result<std::string> body = LoadCheckpointBody(candidate.path, &generation);
    if (!body.ok()) {
      log << "checkpoint " << candidate.path << " rejected: " << body.status().ToString() << "\n";
      continue;
    }
    Status restored = DeserializeRegionState(*body, *broker_, *registry_);
    if (!restored.ok()) {
      log << "checkpoint " << candidate.path << " undeserializable: " << restored.ToString()
          << "\n";
      continue;
    }
    checkpoint_generation = generation;
    loaded = true;
    log << "checkpoint generation " << generation << " loaded (" << candidate.path << ")\n";
    break;
  }
  if (!loaded) {
    report.status = Status::Internal("no valid checkpoint among " +
                                     std::to_string(candidates.size()) + " candidates");
    report.log = log.str();
    return report;
  }
  report.checkpoint_generation = checkpoint_generation;

  // 3. Replay the journal past the checkpoint.
  suppress_deltas_ = true;
  Status replayed = Replay(scan, checkpoint_generation, &report);
  suppress_deltas_ = false;
  if (!replayed.ok()) {
    report.status = replayed;
    report.log = log.str();
    return report;
  }
  report.digest_verified = true;
  log << "replayed " << report.records_replayed << " journal records, "
      << report.digests_checked << " digests verified, " << report.aborted_batches_skipped
      << " aborted batches skipped\n";

  // 4. Drop the torn tail on disk, then continue the generation sequence.
  if (scan.torn()) {
    report.torn_records_dropped = 1;
    report.torn_bytes_dropped = scan.torn_bytes;
    Status truncated = wal_->TruncateTo(scan.valid_bytes);
    if (!truncated.ok()) {
      report.status = truncated;
      report.log = log.str();
      return report;
    }
  }
  uint64_t next_generation = checkpoint_generation + 1;
  if (!scan.records.empty()) {
    next_generation = std::max(next_generation, scan.records.back().generation + 1);
  }
  Status open = wal_->OpenAppend(next_generation);
  if (!open.ok()) {
    report.status = open;
    report.log = log.str();
    return report;
  }
  opened_ = true;

  // 5. Compact immediately: the next crash replays from here, not from the
  // pre-crash checkpoint plus the whole replayed journal.
  Status compacted = Compact();
  if (!compacted.ok()) {
    report.status = compacted;
    report.log = log.str();
    return report;
  }
  report.next_generation = wal_->next_generation();
  log << "recovered to generation " << report.next_generation << ", state digest "
      << DigestHex(StateDigest(*broker_, *registry_)) << "\n";
  report.log = log.str();
  // Best-effort, as in the bootstrap path: recovery already committed; a
  // failed breadcrumb write is not a recovery failure.
  (void)AtomicWriteFile(dir_ + "/" + kRecoveryLogFile, report.log);
  return report;
}

Status DurableControlPlane::Replay(const JournalScan& scan, uint64_t checkpoint_generation,
                                   RecoveryReport* report) {
  // Pre-scan abort records: an intent whose batch was rolled back by the
  // live broker must not be redone.
  std::set<uint64_t> aborted;
  for (const JournalRecord& record : scan.records) {
    if (record.kind != RecordKind::kApplyAbort) {
      continue;
    }
    char* end = nullptr;
    aborted.insert(std::strtoull(record.payload.c_str(), &end, 10));
  }

  for (const JournalRecord& record : scan.records) {
    if (record.generation <= checkpoint_generation) {
      continue;  // Already reflected in the checkpoint.
    }
    auto bad = [&record](const std::string& why) {
      return Status::Internal("journal generation " + std::to_string(record.generation) + ": " +
                              why);
    };
    switch (record.kind) {
      case RecordKind::kReservationAdmit: {
        ReservationSpec spec;
        Status parsed = ParseReservationRecord(record.payload, &spec);
        if (!parsed.ok()) {
          return bad(parsed.message());
        }
        Result<ReservationId> restored = registry_->Restore(std::move(spec));
        if (!restored.ok()) {
          return bad(restored.status().message());
        }
        break;
      }
      case RecordKind::kReservationUpdate: {
        ReservationSpec spec;
        Status parsed = ParseReservationRecord(record.payload, &spec);
        if (!parsed.ok()) {
          return bad(parsed.message());
        }
        Status updated = registry_->Update(spec);
        if (!updated.ok()) {
          return bad(updated.message());
        }
        break;
      }
      case RecordKind::kReservationRemove: {
        char* end = nullptr;
        unsigned long id = std::strtoul(record.payload.c_str(), &end, 10);
        Status removed = registry_->Remove(static_cast<ReservationId>(id));
        if (!removed.ok()) {
          return bad(removed.message());
        }
        break;
      }
      case RecordKind::kApplyTargets: {
        if (aborted.count(record.generation) != 0) {
          ++report->aborted_batches_skipped;
          break;
        }
        std::vector<std::pair<ServerId, ReservationId>> targets;
        Status decoded = DecodeTargets(record.payload, broker_->num_servers(), &targets);
        if (!decoded.ok()) {
          return bad(decoded.message());
        }
        // Redo directly: replay must not consult the write-fault hook — the
        // batch already committed (or was intended) on the dead process.
        for (const auto& [server, reservation] : targets) {
          broker_->SetTarget(server, reservation);
        }
        break;
      }
      case RecordKind::kApplyAbort:
        break;
      case RecordKind::kServerDelta: {
        ServerStateRecord server;
        Status parsed = ParseServerRecord(record.payload, broker_->num_servers(), &server);
        if (!parsed.ok()) {
          return bad(parsed.message());
        }
        ApplyServerRecord(server, *broker_);
        break;
      }
      case RecordKind::kDigest: {
        ++report->digests_checked;
        std::string actual = DigestHex(StateDigest(*broker_, *registry_));
        if (actual != record.payload) {
          return bad("state digest mismatch: journaled " + record.payload + ", replayed " +
                     actual);
        }
        break;
      }
    }
    ++report->records_replayed;
  }
  return Status::Ok();
}

Result<ReservationId> DurableControlPlane::AdmitReservation(ReservationSpec spec) {
  if (dead_) {
    return DeadStatus();
  }
  if (!opened_) {
    return Status::FailedPrecondition("durable control plane not open");
  }
  Result<ReservationId> created = registry_->Create(spec);
  if (!created.ok()) {
    return created.status();
  }
  spec.id = *created;
  Status crash_status;
  if (Crashed(CrashPoint::kAfterAdmitApply, &crash_status)) {
    // The reservation exists in memory but was never journaled: the caller
    // is never acknowledged, and recovery will not know the id.
    return crash_status;
  }
  Status appended = Append(RecordKind::kReservationAdmit, SerializeReservationRecord(spec));
  if (!appended.ok()) {
    return appended;
  }
  return *created;
}

Status DurableControlPlane::UpdateReservation(const ReservationSpec& spec) {
  if (dead_) {
    return DeadStatus();
  }
  Status updated = registry_->Update(spec);
  if (!updated.ok()) {
    return updated;
  }
  return Append(RecordKind::kReservationUpdate, SerializeReservationRecord(spec));
}

Status DurableControlPlane::RemoveReservation(ReservationId id) {
  if (dead_) {
    return DeadStatus();
  }
  Status removed = registry_->Remove(id);
  if (!removed.ok()) {
    return removed;
  }
  return Append(RecordKind::kReservationRemove, std::to_string(id));
}

Status DurableControlPlane::PersistTargets(
    ResourceBroker& broker, const std::vector<std::pair<ServerId, ReservationId>>& targets) {
  if (dead_) {
    return DeadStatus();
  }
  if (!opened_) {
    return Status::FailedPrecondition("durable control plane not open");
  }
  Status crash_status;
  if (Crashed(CrashPoint::kBeforeJournalAppend, &crash_status)) {
    return crash_status;
  }
  std::string payload = EncodeTargets(targets);
  if (Crashed(CrashPoint::kTornJournalAppend, &crash_status)) {
    // Crash injection: the append is *supposed* to be damaged, and the fault
    // we return is the simulated crash, not the write's own status.
    (void)wal_->AppendTorn(RecordKind::kApplyTargets, payload);
    return crash_status;
  }
  uint64_t intent_generation = wal_->next_generation();
  Status appended = Append(RecordKind::kApplyTargets, payload);
  if (!appended.ok()) {
    return appended;
  }
  if (Crashed(CrashPoint::kAfterJournalAppend, &crash_status)) {
    return crash_status;
  }

  // The intent record already carries the whole batch; per-server watcher
  // deltas inside the apply would only duplicate it (and a rolled-back
  // batch is handled by the abort record, not by delta replay).
  suppress_deltas_ = true;
  if (Crashed(CrashPoint::kMidApply, &crash_status)) {
    // The process dies halfway through the broker writes: apply a prefix and
    // leave no abort record. Recovery redoes the full batch from the intent.
    std::vector<std::pair<ServerId, ReservationId>> half(targets.begin(),
                                                         targets.begin() + targets.size() / 2);
    // Crash injection: the half-applied batch models a process death, so its
    // status is intentionally unobserved — recovery redoes the full intent.
    (void)broker.ApplyTargets(half);
    suppress_deltas_ = false;
    return crash_status;
  }
  Status applied = broker.ApplyTargets(targets);
  suppress_deltas_ = false;
  if (!applied.ok()) {
    Status abort = Append(RecordKind::kApplyAbort, std::to_string(intent_generation));
    if (!abort.ok()) {
      return abort;
    }
    return applied;
  }
  if (Crashed(CrashPoint::kAfterApply, &crash_status)) {
    return crash_status;
  }
  uint32_t digest = StateDigest(broker, *registry_);
  Status digested = Append(RecordKind::kDigest, DigestHex(digest));
  if (!digested.ok()) {
    return digested;
  }
  last_persist_digest_ = digest;
  if (Crashed(CrashPoint::kAfterDigest, &crash_status)) {
    return crash_status;
  }
  if (records_since_compact_ >= options_.compact_every_records) {
    return Compact();
  }
  return Status::Ok();
}

Status DurableControlPlane::RoundBarrier() {
  if (dead_) {
    return DeadStatus();
  }
  if (!opened_) {
    return Status::FailedPrecondition("durable control plane not open");
  }
  Status appended =
      Append(RecordKind::kDigest, DigestHex(StateDigest(*broker_, *registry_)));
  if (!appended.ok()) {
    return appended;
  }
  if (records_since_compact_ >= options_.compact_every_records) {
    return Compact();
  }
  return Status::Ok();
}

Status DurableControlPlane::Compact() {
  if (dead_) {
    return DeadStatus();
  }
  if (!opened_) {
    return Status::FailedPrecondition("durable control plane not open");
  }
  Status crash_status;
  if (Crashed(CrashPoint::kBeforeCheckpointWrite, &crash_status)) {
    return crash_status;
  }
  // Every record numbered up to next_generation - 1 is reflected in the
  // attached state; the checkpoint absorbs them all.
  uint64_t generation = wal_->next_generation() - 1;
  const double t0 = util::MonotonicSeconds();
  Status written = WriteCheckpoint(dir_, generation, *broker_, *registry_);
  if (!written.ok()) {
    return written;
  }
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  static obs::Counter& compactions =
      reg.counter("ras_journal_compactions_total", "Checkpoint-compactions of the WAL.");
  static obs::Histogram& checkpoint_seconds = reg.histogram(
      "ras_journal_checkpoint_seconds", "Wall time of one checkpoint write.", 0.0, 1.0, 100);
  compactions.Add();
  checkpoint_seconds.Observe(util::MonotonicSeconds() - t0);
  if (Crashed(CrashPoint::kAfterCheckpointWrite, &crash_status)) {
    return crash_status;
  }
  Status reset = wal_->Reset();
  if (!reset.ok()) {
    return reset;
  }
  records_since_compact_ = 0;
  if (Crashed(CrashPoint::kAfterJournalTruncate, &crash_status)) {
    return crash_status;
  }
  return PruneCheckpoints(dir_, options_.checkpoints_to_keep);
}

}  // namespace journal
}  // namespace ras
