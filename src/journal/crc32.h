// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//
// Every journal record and checkpoint body carries a CRC so recovery can
// tell a torn or bit-flipped tail from valid history. Implemented here
// rather than pulled from zlib: the journal must not grow a dependency for
// 30 lines of table lookup.

#ifndef RAS_SRC_JOURNAL_CRC32_H_
#define RAS_SRC_JOURNAL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace ras {

// CRC of `data` continuing from `seed` (pass the previous result to chain
// buffers). The default seed is the standard initial value.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace ras

#endif  // RAS_SRC_JOURNAL_CRC32_H_
