// Checkpoint files: whole-state snapshots that bound journal replay.
//
// A checkpoint is the state_io serialization of the region (registry +
// broker bindings) wrapped in a self-validating header:
//
//   ras-checkpoint v1|<generation>|<body crc32 hex>|<body bytes>
//   <ras-state v1 text...>
//
// `generation` is the journal generation as of the snapshot: recovery loads
// the newest valid checkpoint and replays only journal records with a
// greater generation. Files are named checkpoint-<generation>.ras and
// written with AtomicWriteFile (temp + fsync + rename), so a crash during
// compaction leaves either the old set of checkpoints or the old set plus
// one complete new file — never a half-written snapshot. Compaction keeps
// the newest few files so recovery can fall back when the latest is damaged.

#ifndef RAS_SRC_JOURNAL_CHECKPOINT_H_
#define RAS_SRC_JOURNAL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/broker/resource_broker.h"
#include "src/core/reservation.h"
#include "src/util/status.h"

namespace ras {
namespace journal {

// CRC32 of the canonical serialized region state. Both the live control
// plane (when it journals a digest record) and recovery (when it verifies
// one) compute digests through this single function, so equality means the
// replayed state serializes byte-identically to what the live process saw.
uint32_t StateDigest(const ResourceBroker& broker, const ReservationRegistry& registry);

struct CheckpointInfo {
  std::string path;
  uint64_t generation = 0;
};

// Atomically writes checkpoint-<generation>.ras under `dir`.
Status WriteCheckpoint(const std::string& dir, uint64_t generation,
                       const ResourceBroker& broker, const ReservationRegistry& registry);

// All checkpoint files under `dir`, newest (highest generation) first. Files
// whose names do not parse are ignored.
std::vector<CheckpointInfo> ListCheckpoints(const std::string& dir);

// Loads and validates one checkpoint file: header shape, body length, body
// CRC. Returns the state_io body text.
Result<std::string> LoadCheckpointBody(const std::string& path, uint64_t* generation);

// Deletes all but the newest `keep` checkpoints under `dir`. Best-effort:
// returns the first error but keeps deleting.
Status PruneCheckpoints(const std::string& dir, size_t keep);

}  // namespace journal
}  // namespace ras

#endif  // RAS_SRC_JOURNAL_CHECKPOINT_H_
