// Append-only write-ahead journal of control-plane mutations.
//
// One record per line:
//
//   w|<generation>|<kind>|<payload-escaped>|<crc32 hex>
//
// The CRC covers "<generation>|<kind>|<payload>" exactly as written, so a
// flipped byte anywhere in a record fails verification. Generations are
// strictly monotonic across the journal's whole lifetime — they continue
// from the last checkpoint rather than restarting — which is what lets
// recovery order journal records against checkpoints and lets tests assert
// that a restarted control plane never moves backwards.
//
// Scanning tolerates exactly one kind of damage silently: a *torn tail*. A
// crash mid-append leaves a final record that is short, unparsable, or
// CRC-mismatched; Scan() stops at the first bad record and reports how many
// bytes/records it dropped. Anything after the first bad record is
// unreachable by design — a journal is only ever appended to, so valid
// records cannot follow damage except through corruption, and corrupted
// history must not be replayed.

#ifndef RAS_SRC_JOURNAL_WAL_H_
#define RAS_SRC_JOURNAL_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace ras {
namespace journal {

enum class RecordKind : uint8_t {
  kReservationAdmit = 0,  // Payload: one state_io "reservation|..." line.
  kReservationUpdate,     // Payload: one state_io "reservation|..." line.
  kReservationRemove,     // Payload: decimal reservation id.
  kApplyTargets,          // Payload: "<server>=<reservation>,..." intent batch.
  kApplyAbort,            // Payload: generation of the rolled-back intent.
  kServerDelta,           // Payload: one state_io "server|..." line.
  kDigest,                // Payload: 8-hex CRC32 of the serialized region state.
};

inline constexpr int kNumRecordKinds = 7;

const char* RecordKindName(RecordKind kind);
// NOT_FOUND for names no writer ever produced.
Result<RecordKind> RecordKindFromName(const std::string& name);

struct JournalRecord {
  uint64_t generation = 0;
  RecordKind kind = RecordKind::kServerDelta;
  std::string payload;
};

// Result of scanning a journal file from disk.
struct JournalScan {
  std::vector<JournalRecord> records;
  // Length of the valid prefix; bytes past this are the torn tail.
  size_t valid_bytes = 0;
  size_t torn_bytes = 0;
  // Why the scan stopped early (empty when the whole file was valid).
  std::string torn_reason;

  bool torn() const { return torn_bytes > 0; }
};

class WriteAheadJournal {
 public:
  explicit WriteAheadJournal(std::string path);
  ~WriteAheadJournal();

  WriteAheadJournal(const WriteAheadJournal&) = delete;
  WriteAheadJournal& operator=(const WriteAheadJournal&) = delete;

  // Reads every valid record of the file at `path`, stopping at the first
  // record with a bad CRC, unparsable framing, or a non-increasing
  // generation. A missing file scans as empty. Only irrecoverable IO errors
  // fail.
  static Result<JournalScan> Scan(const std::string& path);

  // Opens for appending; subsequent records are numbered from
  // `next_generation` up. Creates the file if missing.
  Status OpenAppend(uint64_t next_generation);

  // Appends one record, flushes, and fsyncs. Returns the record's generation.
  Result<uint64_t> Append(RecordKind kind, const std::string& payload);

  // Crash simulation: writes only the first half of the record's bytes (no
  // trailing newline), flushes, and closes the journal — the on-disk state a
  // process death mid-write leaves behind. The journal is unusable after.
  Status AppendTorn(RecordKind kind, const std::string& payload);

  // Truncates the file to `valid_bytes` (drops a torn tail in place).
  // The journal must not be open for append.
  Status TruncateTo(size_t valid_bytes);

  // Empties the journal (after checkpoint compaction). Keeps the append
  // handle usable; generations continue, they do not restart.
  Status Reset();

  void Close();

  bool open() const { return file_ != nullptr; }
  uint64_t next_generation() const { return next_generation_; }
  size_t records_appended() const { return records_appended_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t next_generation_ = 1;
  size_t records_appended_ = 0;
};

}  // namespace journal
}  // namespace ras

#endif  // RAS_SRC_JOURNAL_WAL_H_
