#include "src/journal/crc32.h"

#include <array>

namespace ras {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // Reflected IEEE 802.3.

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ c) & 0xFFu];
  }
  return ~crc;
}

}  // namespace ras
