// Durable control plane: the write-ahead journal + checkpoint + recovery
// layer for the region's control-plane state.
//
// The RAS paper gets durability for free from a highly-available replicated
// Resource Broker; this reproduction's broker is in-memory, so durability is
// reconstructed here the way single-node allocation engines do it: every
// control-plane mutation — reservation admit/update/remove, the Async
// Solver's ApplyTargets batches, and the per-server deltas made by the
// Online Mover / Twine allocator / Health Check Service — is journaled to an
// append-only file with per-record CRCs and monotonic generation numbers,
// and periodically compacted into an atomic checkpoint.
//
// Protocols:
//
//  - ApplyTargets is *journal-then-apply*: the full target batch is appended
//    (and fsynced) as an intent record before the broker sees a single
//    write. A crash between append and apply therefore loses nothing — the
//    continuously-optimized assignment is redone from the intent at
//    recovery. A broker write failure after append produces an abort record
//    so replay skips the rolled-back batch. Per-server watcher deltas are
//    suppressed inside the barrier (the intent record already carries the
//    batch).
//  - Registry mutations are *apply-then-journal-then-acknowledge*: the
//    registry assigns the id, the admit record is fsynced, and only then
//    does the caller learn the id. A crash in the window loses a mutation
//    the caller was never told succeeded.
//  - Every other broker mutation is captured post-hoc as a server-delta
//    record through a broker watcher.
//  - A digest record (CRC32 of the canonical serialized state) is appended
//    after every applied batch and at every round barrier; recovery verifies
//    each one against the replayed state.
//
// Recovery: load the newest checkpoint that validates (falling back to older
// ones — DeserializeRegionState has no partial effects, so a failed
// candidate leaves the state clean), replay journal records with generations
// past the checkpoint's, truncate the torn tail at the first bad CRC,
// verify every digest record passed, then write a fresh checkpoint so the
// next crash replays from here.
//
// Crash injection: a CrashPointInjector (src/faults/crash_points.h) can arm
// any named site; when it fires, the instance goes permanently dead —
// every later operation returns UNAVAILABLE without touching disk, exactly
// like a process that no longer exists.

#ifndef RAS_SRC_JOURNAL_DURABLE_CONTROL_PLANE_H_
#define RAS_SRC_JOURNAL_DURABLE_CONTROL_PLANE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/solver_supervisor.h"
#include "src/faults/crash_points.h"
#include "src/journal/checkpoint.h"
#include "src/journal/wal.h"

namespace ras {
namespace journal {

struct DurableOptions {
  // Checkpoint + truncate the journal once this many records accumulate
  // since the last compaction (checked at round barriers).
  size_t compact_every_records = 512;
  // Checkpoints retained after compaction; older ones are pruned. At least
  // 2, so a corrupt newest checkpoint still leaves a fallback.
  size_t checkpoints_to_keep = 2;
};

struct RecoveryReport {
  Status status;  // Overall recovery outcome.
  bool recovered_state = false;   // False when the directory was empty (bootstrap).
  uint64_t checkpoint_generation = 0;
  int checkpoints_tried = 0;      // Candidates inspected before one validated.
  size_t records_replayed = 0;
  size_t torn_records_dropped = 0;  // 1 when a torn tail was truncated.
  size_t torn_bytes_dropped = 0;
  size_t aborted_batches_skipped = 0;
  size_t digests_checked = 0;
  bool digest_verified = false;   // Every digest record matched the replay.
  uint64_t next_generation = 1;
  std::string log;  // Human-readable drill log, also written to recovery.log.
};

class DurableControlPlane final : public TargetPersistence {
 public:
  explicit DurableControlPlane(std::string dir, DurableOptions options = DurableOptions());
  ~DurableControlPlane() override;

  DurableControlPlane(const DurableControlPlane&) = delete;
  DurableControlPlane& operator=(const DurableControlPlane&) = delete;

  // True when `dir` holds any checkpoint or a non-empty journal — i.e. a
  // restart should recover rather than bootstrap.
  static bool HasState(const std::string& dir);

  // Wires the instance to the region's broker + registry and subscribes the
  // server-delta watcher. Must be called exactly once, before OpenOrRecover.
  Status Attach(ResourceBroker* broker, ReservationRegistry* registry);

  // Recovers from `dir` into the attached (empty) broker/registry when the
  // directory holds state; otherwise bootstraps by writing an initial
  // checkpoint of whatever the attached pair already contains. Either way
  // the journal is open for append afterwards. The report's `status` is
  // also the returned status — a failed recovery leaves the attached pair
  // partially mutated and the caller must discard it.
  RecoveryReport OpenOrRecover();

  // --- Journaled registry mutations ---
  Result<ReservationId> AdmitReservation(ReservationSpec spec);
  Status UpdateReservation(const ReservationSpec& spec);
  Status RemoveReservation(ReservationId id);

  // TargetPersistence: the journal-then-apply barrier used by the
  // SolverSupervisor in place of a bare broker ApplyTargets.
  Status PersistTargets(ResourceBroker& broker,
                        const std::vector<std::pair<ServerId, ReservationId>>& targets) override;

  // End-of-round barrier: appends a digest record and compacts if due.
  // Called by RegionScenario::SolveRound after the Online Mover reconciles.
  Status RoundBarrier();

  // Forces checkpoint compaction now (also used by RoundBarrier).
  Status Compact();

  // Crash injection; not owned. Pass nullptr to clear.
  void SetCrashInjector(CrashPointInjector* injector) { crash_ = injector; }

  // True once a crash point fired: the "process" is gone and every
  // operation returns UNAVAILABLE.
  bool dead() const { return dead_; }
  const std::string& dir() const { return dir_; }
  // Next journal generation: strictly monotonic across restarts.
  uint64_t generation() const { return wal_ != nullptr ? wal_->next_generation() : 0; }
  // Digest appended by the most recent successful PersistTargets.
  uint32_t last_persist_digest() const { return last_persist_digest_; }
  size_t records_since_compact() const { return records_since_compact_; }

 private:
  Status Append(RecordKind kind, const std::string& payload);
  // Consults the injector; on fire, marks the instance dead and returns the
  // UNAVAILABLE "process died" status.
  bool Crashed(CrashPoint point, Status* out);
  Status DeadStatus() const;
  void OnBrokerChange(const ServerRecord& record);
  // Replays one journal scan on top of the attached state; fills `report`.
  Status Replay(const JournalScan& scan, uint64_t checkpoint_generation,
                RecoveryReport* report);

  std::string dir_;
  DurableOptions options_;
  ResourceBroker* broker_ = nullptr;
  ReservationRegistry* registry_ = nullptr;
  std::unique_ptr<WriteAheadJournal> wal_;
  CrashPointInjector* crash_ = nullptr;
  int watcher_handle_ = -1;
  bool opened_ = false;
  bool dead_ = false;
  // Watcher suppression: inside the targets barrier the intent record
  // already covers the batch; during replay the journal must not re-ingest
  // its own history.
  bool suppress_deltas_ = false;
  size_t records_since_compact_ = 0;
  uint32_t last_persist_digest_ = 0;
};

}  // namespace journal
}  // namespace ras

#endif  // RAS_SRC_JOURNAL_DURABLE_CONTROL_PLANE_H_
