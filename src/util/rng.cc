#include "src/util/rng.h"

#include <cassert>
#include <cmath>

namespace ras {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) {
    lane = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; draw u1 away from zero to keep log() finite.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean <= 0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth's multiplication method.
    double limit = std::exp(-mean);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  double draw = Normal(mean, std::sqrt(mean));
  return draw < 0 ? 0 : static_cast<int64_t>(draw + 0.5);
}

int64_t Rng::LogUniformInt(int64_t lo, int64_t hi) {
  assert(lo >= 1 && lo <= hi);
  double log_lo = std::log(static_cast<double>(lo));
  double log_hi = std::log(static_cast<double>(hi) + 1.0);
  double draw = std::exp(Uniform(log_lo, log_hi));
  int64_t value = static_cast<int64_t>(draw);
  if (value < lo) {
    value = lo;
  }
  if (value > hi) {
    value = hi;
  }
  return value;
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double draw = Uniform(0, total);
  double cumulative = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (draw < cumulative && weights[i] > 0) {
      return i;
    }
  }
  // Numerical fall-through: return the last positive-weight entry.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0) {
      return i - 1;
    }
  }
  return 0;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace ras
