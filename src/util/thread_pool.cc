#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ras {

ThreadPool::ThreadPool(int num_threads) {
  int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  task_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!tasks_.empty() || running_ != 0) {
    idle_cv_.Wait(mu_);
  }
}

void ThreadPool::WorkerLoop() {
  mu_.Lock();
  for (;;) {
    while (!shutdown_ && tasks_.empty()) {
      task_cv_.Wait(mu_);
    }
    if (tasks_.empty()) {
      mu_.Unlock();
      return;  // Shutdown with nothing left to run.
    }
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    ++running_;
    mu_.Unlock();
    task();
    mu_.Lock();
    --running_;
    if (tasks_.empty() && running_ == 0) {
      idle_cv_.NotifyAll();
    }
  }
}

}  // namespace ras
