#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ras {

ThreadPool::ThreadPool(int num_threads) {
  int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && running_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
    if (tasks_.empty()) {
      return;  // Shutdown with nothing left to run.
    }
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
    if (tasks_.empty() && running_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace ras
