// The single sanctioned wall-clock read.
//
// Everything outside this helper is either simulated time (src/util/sim_time)
// or pure computation, so solver *output* can never depend on the host clock;
// MonotonicSeconds() exists only to measure elapsed time for stats, time
// limits, and benchmarks. raslint's ras-wall-clock rule enforces this: any
// other `std::chrono::*_clock` / `time()` / `std::random_device` use in
// src/, tools/, or tests/ is a lint error.

#ifndef RAS_SRC_UTIL_MONOTONIC_TIME_H_
#define RAS_SRC_UTIL_MONOTONIC_TIME_H_

namespace ras {
namespace util {

// Seconds on a monotonic clock with an arbitrary epoch. Only differences are
// meaningful.
double MonotonicSeconds();

}  // namespace util
}  // namespace ras

#endif  // RAS_SRC_UTIL_MONOTONIC_TIME_H_
