#include "src/util/sim_time.h"

#include <cstdio>

namespace ras {

std::string FormatSimTime(SimTime t) {
  int64_t s = t.seconds;
  bool negative = s < 0;
  if (negative) {
    s = -s;
  }
  int64_t days = s / 86400;
  s %= 86400;
  int64_t hours = s / 3600;
  s %= 3600;
  int64_t minutes = s / 60;
  s %= 60;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld", negative ? "-" : "",
                static_cast<long long>(days), static_cast<long long>(hours),
                static_cast<long long>(minutes), static_cast<long long>(s));
  return buf;
}

}  // namespace ras
