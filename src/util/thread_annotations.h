// Clang thread-safety annotation macros (ABSL style, unprefixed).
//
// These expand to Clang's `-Wthread-safety` attributes so the compiler can
// statically check that every access to a GUARDED_BY member happens with the
// guarding mutex held. Under GCC (and any compiler without the attributes)
// they expand to nothing, so annotated code builds everywhere while the Clang
// CI job enforces `-Werror=thread-safety`.
//
// The annotations only understand capability-aware lock types; std::mutex and
// std::unique_lock in libstdc++ carry no attributes, so annotated code must
// use the ras::Mutex / ras::MutexLock / ras::CondVar wrappers from
// src/util/mutex.h.

#ifndef RAS_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define RAS_SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define RAS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RAS_THREAD_ANNOTATION_(x)  // no-op
#endif

// Data members: which mutex guards them.
#define GUARDED_BY(x) RAS_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) RAS_THREAD_ANNOTATION_(pt_guarded_by(x))

// Functions: locks they require, acquire, release, or must not hold.
#define REQUIRES(...) RAS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) RAS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) RAS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) RAS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) RAS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) RAS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) RAS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) RAS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) RAS_THREAD_ANNOTATION_(assert_capability(x))
#define RETURN_CAPABILITY(x) RAS_THREAD_ANNOTATION_(lock_returned(x))

// Types: lock-like classes and RAII scopes.
#define CAPABILITY(x) RAS_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY RAS_THREAD_ANNOTATION_(scoped_lockable)

// Escape hatch for code the analysis cannot follow (deliberate lock juggling).
#define NO_THREAD_SAFETY_ANALYSIS RAS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // RAS_SRC_UTIL_THREAD_ANNOTATIONS_H_
