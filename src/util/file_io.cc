#include "src/util/file_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace ras {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

// fsync the directory containing `path` so the rename itself is durable.
Status SyncParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) {
    dir = "/";
  }
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Errno("open dir", dir);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Errno("fsync dir", dir);
  }
  return Status::Ok();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Errno("open", tmp);
  }
  const char* data = content.data();
  size_t remaining = content.size();
  while (remaining > 0) {
    ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("write", tmp);
    }
    data += written;
    remaining -= static_cast<size_t>(written);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Errno("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Errno("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path);
  }
  return SyncParentDirectory(path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("read " + path + " failed");
  }
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) {
    return Status::Ok();
  }
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::Ok();
    }
    return Status::FailedPrecondition(path + " exists and is not a directory");
  }
  return Errno("mkdir", path);
}

}  // namespace ras
