#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ras {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  assert(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples[0];
  }
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double sum = 0;
  for (double s : samples) {
    sum += s;
  }
  return sum / static_cast<double>(samples.size());
}

double Variance(const std::vector<double>& samples) {
  if (samples.size() < 2) {
    return 0.0;
  }
  double mean = Mean(samples);
  double m2 = 0;
  for (double s : samples) {
    m2 += (s - mean) * (s - mean);
  }
  return m2 / static_cast<double>(samples.size());
}

Histogram::Histogram(double lo, double hi, size_t buckets) : lo_(lo), hi_(hi) {
  assert(hi > lo && buckets > 0);
  width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  double offset = (x - lo_) / width_;
  int64_t index = static_cast<int64_t>(std::floor(offset));
  if (index < 0) {
    index = 0;
  }
  if (index >= static_cast<int64_t>(counts_.size())) {
    index = static_cast<int64_t>(counts_.size()) - 1;
  }
  ++counts_[static_cast<size_t>(index)];
  ++total_;
}

void Histogram::AddCount(size_t i, uint64_t n) {
  assert(i < counts_.size());
  counts_[i] += n;
  total_ += n;
}

bool Histogram::MergeableWith(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ && counts_.size() == other.counts_.size();
}

bool Histogram::Merge(const Histogram& other) {
  if (!MergeableWith(other)) {
    return false;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  return true;
}

double Histogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0.0;
  }
  assert(p >= 0.0 && p <= 100.0);
  // Rank in [0, total]: the number of samples at or below the answer. Walking
  // cumulative counts, the rank falls inside exactly one nonempty bucket
  // (or on its boundary); interpolate linearly within that bucket's width.
  const double rank = p / 100.0 * static_cast<double>(total_);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cum);
    cum += counts_[i];
    if (rank <= static_cast<double>(cum)) {
      // p = 0 lands here with rank == before on the first nonempty bucket and
      // returns its lower edge; a rank exactly at `cum` returns the upper
      // edge. Both ends of the interpolation are bucket boundaries, so edge
      // values are exact, not epsilon-dependent.
      const double frac = (rank - before) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + width_ * frac;
    }
  }
  // p = 100 (rank == total): upper edge of the last nonempty bucket.
  for (size_t i = counts_.size(); i-- > 0;) {
    if (counts_[i] > 0) {
      return bucket_hi(i);
    }
  }
  return 0.0;
}

double Histogram::bucket_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::bucket_hi(size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

std::string Histogram::ToString(size_t max_bar_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    size_t bar = peak == 0 ? 0 : static_cast<size_t>(counts_[i] * max_bar_width / peak);
    std::snprintf(line, sizeof(line), "%12.2f..%-12.2f %8llu  ", bucket_lo(i), bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace ras
