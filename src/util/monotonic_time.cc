#include "src/util/monotonic_time.h"

#include <chrono>

namespace ras {
namespace util {

double MonotonicSeconds() {
  // The one wall-clock read in the repository (see header). NOLINT justifies
  // itself: this file is the ras-wall-clock allowlist.
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())  // NOLINT(ras-wall-clock)
      .count();
}

}  // namespace util
}  // namespace ras
