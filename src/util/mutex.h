// Capability-annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// Clang thread-safety attributes from src/util/thread_annotations.h. The
// standard-library types in libstdc++ have no annotations, so Clang's
// `-Wthread-safety` analysis cannot see their acquisitions; everything in
// this repository that guards shared state uses these wrappers instead
// (ThreadPool's queue, the parallel branch-and-bound search state, the shard
// coordinator's merge slots, the broker's generation counter).

#ifndef RAS_SRC_UTIL_MUTEX_H_
#define RAS_SRC_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace ras {

class CondVar;

// Exclusive mutex. Prefer the RAII MutexLock; explicit Lock()/Unlock() pairs
// are for code that drops the lock mid-scope (worker loops), which the
// analysis follows as long as every path rebalances.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scope holding a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable usable with ras::Mutex. Wait() atomically releases the
// mutex while blocked and reacquires it before returning, so from the
// analysis's point of view the caller holds the mutex throughout.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership stays with the caller's Lock()/Unlock() pair.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ras

#endif  // RAS_SRC_UTIL_MUTEX_H_
