#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace ras {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line, message.c_str());
}

}  // namespace ras
