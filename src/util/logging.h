// Minimal leveled logging to stderr. The default level is WARNING so tests
// and benchmarks stay quiet; simulations raise it for progress output.

#ifndef RAS_SRC_UTIL_LOGGING_H_
#define RAS_SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ras {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Process-global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr (thread-safe at line granularity).
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace ras

#define RAS_LOG(level)                                          \
  if (::ras::LogLevel::level < ::ras::GetLogLevel()) {          \
  } else                                                        \
    ::ras::LogLine(::ras::LogLevel::level, __FILE__, __LINE__)

#endif  // RAS_SRC_UTIL_LOGGING_H_
