// Lightweight status / result types used across the RAS libraries.
//
// Library code does not throw across module boundaries; fallible operations
// return `Status` or `Result<T>` instead.

#ifndef RAS_SRC_UTIL_STATUS_H_
#define RAS_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ras {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kInternal,
  kUnavailable,
};

// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// A status is either OK or a (code, message) pair describing the failure.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-status union. `value()` asserts that the result holds a value;
// callers are expected to check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(value_.has_value());
    return *value_;
  }
  const T& value() const {
    assert(value_.has_value());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ras

#endif  // RAS_SRC_UTIL_STATUS_H_
