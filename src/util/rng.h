// Deterministic pseudo-random number generation for simulations and tests.
//
// Everything in this repository that needs randomness takes an explicit `Rng`
// (or a seed) so that fleet generation, failure injection, and benchmarks are
// reproducible run-to-run.

#ifndef RAS_SRC_UTIL_RNG_H_
#define RAS_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ras {

// xoshiro256** seeded via splitmix64. Fast, high-quality, and deterministic
// across platforms (unlike std::mt19937 + std::distributions, whose outputs
// are not specified identically everywhere).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (no cached spare; deterministic).
  double Normal(double mean, double stddev);

  // Exponential with the given rate (mean 1/rate). Used for Poisson arrival
  // processes in the health-event simulator.
  double Exponential(double rate);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation for large ones).
  int64_t Poisson(double mean);

  // Log-uniform integer in [lo, hi]: uniform in log-space, matching the
  // heavy-tailed capacity-request sizes of the paper's Figure 4.
  int64_t LogUniformInt(int64_t lo, int64_t hi);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Zero-weight entries are never selected. Requires a positive total weight.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Derives an independent child generator; useful to give each subsystem its
  // own stream so adding draws in one place does not perturb another.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace ras

#endif  // RAS_SRC_UTIL_RNG_H_
