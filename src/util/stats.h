// Small statistics helpers shared by the simulator, benchmarks and tests:
// online mean/variance, percentiles, and fixed-width histograms.

#ifndef RAS_SRC_UTIL_STATS_H_
#define RAS_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ras {

// Welford online mean / variance accumulator.
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance (divides by N). Returns 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Returns the p-th percentile (p in [0, 100]) with linear interpolation.
// Copies and sorts internally; fine for benchmark-sized sample sets.
double Percentile(std::vector<double> samples, double p);

// Population variance of a sample vector (divides by N).
double Variance(const std::vector<double>& samples);

double Mean(const std::vector<double>& samples);

// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
// first/last bucket. Used by the figure benches to print distributions and by
// the observability registry (src/obs) as the snapshot/merge representation
// of its sharded latency histograms.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  // Bulk-adds `n` samples into bucket `i` (the merge/snapshot path: callers
  // that already hold per-bucket counts, like obs::Histogram shards).
  void AddCount(size_t i, uint64_t n);

  // True when `other` has identical bucket boundaries (same lo, hi, count) so
  // the two can be merged bucket-for-bucket.
  bool MergeableWith(const Histogram& other) const;
  // Adds `other`'s counts into this histogram. Returns false (and leaves this
  // histogram untouched) when the bucket boundaries differ.
  bool Merge(const Histogram& other);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bucket_width() const { return width_; }
  uint64_t total() const { return total_; }

  // The p-th percentile (p in [0, 100]) estimated from bucket counts with
  // linear interpolation inside the bucket. Edge semantics are exact and
  // unit-tested:
  //   - empty histogram           -> 0.0
  //   - p = 0                     -> lower edge of the first nonempty bucket
  //   - p = 100                   -> upper edge of the last nonempty bucket
  //   - the rank landing exactly on a bucket boundary returns that boundary
  // (Out-of-range samples were clamped at Add() time, so the estimate is
  // bounded by [lo, hi] by construction.)
  double Percentile(double p) const;

  // Multi-line "lo..hi  count  ####" rendering for harness output.
  std::string ToString(size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace ras

#endif  // RAS_SRC_UTIL_STATS_H_
