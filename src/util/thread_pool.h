// Small joinable thread pool.
//
// Fixed worker count, FIFO task queue, and a Wait() barrier that blocks until
// every submitted task has finished. Used by the parallel branch-and-bound
// (src/solver/mip): the MIP submits one long-running worker loop per thread
// and the workers coordinate over their own shared node queue, so the pool
// only needs to guarantee that all submitted tasks run concurrently when
// their count does not exceed the pool size.

#ifndef RAS_SRC_UTIL_THREAD_POOL_H_
#define RAS_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ras {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  // Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not call Submit/Wait on their own pool's
  // destructor path; submitting from within a task is allowed.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;  // Signals workers: task available / shutdown.
  std::condition_variable idle_cv_;  // Signals Wait(): queue drained and idle.
  int running_ = 0;
  bool shutdown_ = false;
};

}  // namespace ras

#endif  // RAS_SRC_UTIL_THREAD_POOL_H_
