// Small joinable thread pool.
//
// Fixed worker count, FIFO task queue, and a Wait() barrier that blocks until
// every submitted task has finished. Used by the parallel branch-and-bound
// (src/solver/mip) and the shard solve coordinator (src/shard/shard_solve):
// both submit one long-running worker loop per thread and coordinate over
// their own shared state, so the pool only needs to guarantee that all
// submitted tasks run concurrently when their count does not exceed the pool
// size.
//
// This is the sanctioned home for raw std::thread in the repository
// (raslint's ras-naked-thread rule); all other concurrency rides on it.

#ifndef RAS_SRC_UTIL_THREAD_POOL_H_
#define RAS_SRC_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace ras {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  // Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not call Submit/Wait on their own pool's
  // destructor path; submitting from within a task is allowed.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar task_cv_;  // Signals workers: task available / shutdown.
  CondVar idle_cv_;  // Signals Wait(): queue drained and idle.
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  int running_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace ras

#endif  // RAS_SRC_UTIL_THREAD_POOL_H_
