// Simulated wall-clock time for the discrete-event simulator.
//
// Times are integral seconds since the start of a scenario. Using a plain
// strong type (rather than std::chrono) keeps event ordering and arithmetic
// trivially deterministic.

#ifndef RAS_SRC_UTIL_SIM_TIME_H_
#define RAS_SRC_UTIL_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace ras {

// A point in simulated time, in seconds since scenario start.
struct SimTime {
  int64_t seconds = 0;

  constexpr bool operator==(const SimTime&) const = default;
  constexpr auto operator<=>(const SimTime&) const = default;
};

// A span of simulated time, in seconds.
struct SimDuration {
  int64_t seconds = 0;

  constexpr bool operator==(const SimDuration&) const = default;
  constexpr auto operator<=>(const SimDuration&) const = default;
};

constexpr SimDuration Seconds(int64_t s) { return SimDuration{s}; }
constexpr SimDuration Minutes(int64_t m) { return SimDuration{m * 60}; }
constexpr SimDuration Hours(int64_t h) { return SimDuration{h * 3600}; }
constexpr SimDuration Days(int64_t d) { return SimDuration{d * 86400}; }
constexpr SimDuration Weeks(int64_t w) { return SimDuration{w * 7 * 86400}; }

constexpr SimTime operator+(SimTime t, SimDuration d) { return SimTime{t.seconds + d.seconds}; }
constexpr SimTime operator-(SimTime t, SimDuration d) { return SimTime{t.seconds - d.seconds}; }
constexpr SimDuration operator-(SimTime a, SimTime b) { return SimDuration{a.seconds - b.seconds}; }
constexpr SimDuration operator+(SimDuration a, SimDuration b) {
  return SimDuration{a.seconds + b.seconds};
}
constexpr SimDuration operator*(SimDuration d, int64_t k) { return SimDuration{d.seconds * k}; }

// "3d 04:05:06"-style rendering for logs and harness output.
std::string FormatSimTime(SimTime t);

}  // namespace ras

#endif  // RAS_SRC_UTIL_SIM_TIME_H_
