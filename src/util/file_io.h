// Crash-safe file IO helpers.
//
// Every on-disk artifact the control plane cares about (checkpoints, bench
// regression JSON, recovery logs) is written with the same discipline: write
// to a temp file in the destination directory, fsync it, rename over the
// final path, then fsync the directory. A reader therefore observes either
// the previous complete file or the new complete file — never a torn mix —
// regardless of where a crash lands.

#ifndef RAS_SRC_UTIL_FILE_IO_H_
#define RAS_SRC_UTIL_FILE_IO_H_

#include <string>
#include <string_view>

#include "src/util/status.h"

namespace ras {

// Atomically replaces `path` with `content` (temp file + fsync + rename +
// directory fsync). The temp file lives next to `path` so the rename never
// crosses filesystems; it is unlinked on any failure.
Status AtomicWriteFile(const std::string& path, std::string_view content);

// Reads a whole file. NOT_FOUND when it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

bool FileExists(const std::string& path);

// Creates `path` (one level) if missing; OK when it already exists as a
// directory.
Status EnsureDirectory(const std::string& path);

}  // namespace ras

#endif  // RAS_SRC_UTIL_FILE_IO_H_
