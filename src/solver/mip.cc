#include "src/solver/mip.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "src/obs/metrics.h"
#include "src/util/monotonic_time.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace ras {

const char* MipStatusName(MipStatus status) {
  switch (status) {
    case MipStatus::kOptimal:
      return "OPTIMAL";
    case MipStatus::kFeasible:
      return "FEASIBLE";
    case MipStatus::kInfeasible:
      return "INFEASIBLE";
    case MipStatus::kUnbounded:
      return "UNBOUNDED";
    case MipStatus::kNoSolutionFound:
      return "NO_SOLUTION_FOUND";
    case MipStatus::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

namespace {

struct Node {
  std::vector<BoundOverride> overrides;
  double parent_bound;  // LP objective of the parent; used for best-bound pruning.
  int depth;
};

// Picks the integer variable whose LP value is farthest from integral.
int32_t MostFractional(const Model& model, const std::vector<double>& x, double tol) {
  int32_t best = -1;
  double best_frac = tol;
  for (size_t j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) {
      continue;
    }
    double frac = std::fabs(x[j] - std::round(x[j]));
    // Distance from the nearest half-integer measures branching value.
    double score = 0.5 - std::fabs(frac - 0.5);
    (void)score;
    if (frac > best_frac) {
      best_frac = frac;
      best = static_cast<int32_t>(j);
    }
  }
  return best;
}

// Applies node overrides on top of model bounds for one variable.
void EffectiveBounds(const Model& model, const std::vector<BoundOverride>& overrides, VarId var,
                     double* lb, double* ub) {
  *lb = model.variable(var).lb;
  *ub = model.variable(var).ub;
  for (const BoundOverride& o : overrides) {
    if (o.var == var) {
      *lb = o.lb;
      *ub = o.ub;
    }
  }
}

// Fix-and-solve rounding heuristic: round every integer variable of an LP
// point to the nearest integer (within the node's bounds), fix them there,
// and re-solve the LP over the remaining continuous variables. In models
// whose hard constraints are softened by slack variables (like the RAS
// model), the restricted LP is almost always feasible, which turns nearly
// every fractional LP optimum into a genuine incumbent.
bool TryFixAndSolve(const Model& model, const std::vector<BoundOverride>& node_overrides,
                    const std::vector<double>& x_lp, SimplexSolver& lp_solver,
                    std::vector<double>* candidate) {
  const size_t n = model.num_variables();
  std::vector<double> lo(n), hi(n);
  for (size_t j = 0; j < n; ++j) {
    lo[j] = model.variable(j).lb;
    hi[j] = model.variable(j).ub;
  }
  for (const BoundOverride& o : node_overrides) {
    lo[static_cast<size_t>(o.var)] = o.lb;
    hi[static_cast<size_t>(o.var)] = o.ub;
  }
  std::vector<double> rounded_value(n);
  for (size_t j = 0; j < n; ++j) {
    rounded_value[j] = model.variable(j).is_integer
                           ? std::clamp(std::round(x_lp[j]), lo[j], hi[j])
                           : x_lp[j];
  }

  // Repair pass: nearest-rounding can push a row past its bound when several
  // fractional variables share it (e.g. two 0.5s on a tight supply row both
  // rounding up). Walk each violated row and undo the cheapest roundings —
  // the ones that moved least from the LP value — until the row fits again.
  for (size_t r = 0; r < model.num_rows(); ++r) {
    const ModelRow& row = model.row(r);
    double activity = 0.0;
    for (const RowEntry& e : model.row_entries(r)) {
      activity += e.coeff * rounded_value[e.var];
    }
    for (int direction = 0; direction < 2; ++direction) {
      bool over = direction == 0;
      while (over ? activity > row.ub + 1e-9 : activity < row.lb - 1e-9) {
        // Find the integer var whose unit step toward the LP value best
        // reduces the violation, breaking ties by smallest rounding delta.
        VarId best = -1;
        double best_tie = kInf;
        int best_step = 0;
        for (const RowEntry& e : model.row_entries(r)) {
          if (!model.variable(e.var).is_integer || e.coeff == 0.0) {
            continue;
          }
          // Step that reduces activity when over, increases when under.
          int step = (over == (e.coeff > 0)) ? -1 : +1;
          double next = rounded_value[e.var] + step;
          if (next < lo[e.var] - 1e-9 || next > hi[e.var] + 1e-9) {
            continue;
          }
          double tie = std::fabs(next - x_lp[e.var]);
          if (tie < best_tie) {
            best_tie = tie;
            best = e.var;
            best_step = step;
          }
        }
        if (best < 0) {
          break;  // Row not repairable by integer steps; let the LP decide.
        }
        double coeff = 0.0;
        for (const RowEntry& e : model.row_entries(r)) {
          if (e.var == best) {
            coeff += e.coeff;
          }
        }
        rounded_value[static_cast<size_t>(best)] += best_step;
        activity += coeff * best_step;
      }
    }
  }

  std::vector<BoundOverride> overrides = node_overrides;
  for (size_t j = 0; j < n; ++j) {
    if (model.variable(j).is_integer) {
      overrides.push_back(
          BoundOverride{static_cast<VarId>(j), rounded_value[j], rounded_value[j]});
    }
  }
  LpResult fixed = lp_solver.ResolveWithBasis(model, overrides);
  if (fixed.status != LpStatus::kOptimal) {
    return false;
  }
  *candidate = std::move(fixed.x);
  // Snap the fixed integers exactly (the LP reports them to tolerance).
  for (size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).is_integer) {
      (*candidate)[j] = std::round((*candidate)[j]);
    }
  }
  return true;
}

}  // namespace

MipResult MipSolver::Solve(const Model& model, const std::vector<double>* warm_start) {
  MipResult result = options_.threads > 1 ? SolveParallel(model, warm_start)
                                          : SolveSerial(model, warm_start);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  static obs::Counter& solves = reg.counter("ras_mip_solves_total", "Branch-and-bound runs.");
  static obs::Counter& nodes =
      reg.counter("ras_mip_nodes_total", "Nodes explored across branch-and-bound runs.");
  static obs::Counter& lp_iterations =
      reg.counter("ras_mip_lp_iterations_total", "Simplex iterations summed over node LPs.");
  static obs::Counter& root_basis =
      reg.counter("ras_mip_root_basis_used_total", "Runs that imported a cached root basis.");
  static obs::Counter& time_limit =
      reg.counter("ras_mip_time_limit_hits_total", "Runs cut off by their time limit.");
  static obs::Counter& dual_resolves = reg.counter(
      "ras_mip_dual_resolves_total", "Node LPs re-optimized by the dual simplex kernel.");
  static obs::Counter& presolve_rows = reg.counter(
      "ras_mip_presolve_rows_removed_total", "Rows removed by presolve across node LPs.");
  static obs::Histogram& seconds =
      reg.histogram("ras_mip_solve_seconds", "Wall time of one branch-and-bound run.", 0.0, 30.0,
                    120);
  solves.Add();
  nodes.Add(result.nodes);
  lp_iterations.Add(result.lp_iterations);
  dual_resolves.Add(result.dual_resolves);
  presolve_rows.Add(result.presolve_rows_removed);
  if (result.root_basis_used) {
    root_basis.Add();
  }
  if (result.hit_time_limit) {
    time_limit.Add();
  }
  seconds.Observe(result.solve_seconds);
  return result;
}

MipResult MipSolver::SolveSerial(const Model& model, const std::vector<double>* warm_start) {
  const double start_time = util::MonotonicSeconds();
  auto elapsed = [start_time]() { return util::MonotonicSeconds() - start_time; };

  MipResult result;
  result.best_bound = -kInf;

  bool have_incumbent = false;
  std::vector<double> incumbent;
  double incumbent_obj = kInf;
  if (warm_start != nullptr && model.IsFeasible(*warm_start, options_.integrality_tol * 10)) {
    incumbent = *warm_start;
    incumbent_obj = model.Objective(incumbent);
    have_incumbent = true;
  }

  SimplexSolver lp_solver(options_.lp);
  // Separate solver for the fix-and-solve heuristic: consecutive heuristic
  // LPs have near-identical bounds, so they warm-start each other, and the
  // node chain's basis in lp_solver is never disturbed.
  SimplexSolver heuristic_solver(options_.lp);
  // Cross-round seed: start the root LP from the cached basis when it still
  // fits this model; otherwise the root solves cold as before.
  const bool root_seeded =
      !options_.root_basis.empty() && lp_solver.ImportBasis(model, options_.root_basis);
  result.root_basis_used = root_seeded;

  // Depth-first with a deque: children of the most recent node are explored
  // first (good for finding incumbents fast), while `parent_bound` prunes
  // against the incumbent. Root node has no overrides.
  std::deque<Node> open;
  open.push_back(Node{{}, -kInf, 0});
  double best_open_bound = -kInf;  // Root LP bound once known.
  bool root_solved = false;
  bool unbounded = false;
  int64_t nodes_since_improve = 0;

  while (!open.empty()) {
    if (result.nodes >= options_.max_nodes || elapsed() > options_.time_limit_seconds) {
      result.hit_time_limit = elapsed() > options_.time_limit_seconds;
      break;
    }
    // Stall patience: with an incumbent in hand and a long run of nodes that
    // failed to improve it, stop searching instead of draining max_nodes.
    if (options_.stall_node_limit > 0 && have_incumbent &&
        nodes_since_improve >= options_.stall_node_limit) {
      break;
    }
    Node node = std::move(open.back());
    open.pop_back();

    // Prune by parent bound before paying for an LP solve.
    if (have_incumbent && node.parent_bound > incumbent_obj - options_.absolute_gap) {
      continue;
    }

    ++result.nodes;
    ++nodes_since_improve;
    // Children differ from their parent by one bound; reuse the last basis.
    // A seeded root also goes through the warm path (the imported basis is
    // exactly "the last basis").
    LpResult lp = result.nodes == 1 && !root_seeded
                      ? lp_solver.Solve(model, node.overrides)
                      : lp_solver.ResolveWithBasis(model, node.overrides);
    result.lp_iterations += lp.iterations;
    result.lp_dual_iterations += lp.dual_iterations;
    result.presolve_rows_removed += lp.presolve_rows_removed;
    if (lp.used_dual_simplex) {
      ++result.dual_resolves;
    }
    if (lp.status == LpStatus::kInfeasible) {
      continue;
    }
    if (lp.status == LpStatus::kUnbounded) {
      unbounded = true;
      break;
    }
    if (lp.status != LpStatus::kOptimal) {
      // Numerical trouble or iteration limit on one node: skip it. The
      // incumbent (if any) remains valid; the bound becomes approximate.
      continue;
    }
    if (!root_solved) {
      best_open_bound = lp.objective;
      root_solved = true;
      result.root_basis = lp_solver.ExportBasis();
    }
    if (have_incumbent && lp.objective > incumbent_obj - options_.absolute_gap) {
      continue;  // Bound prune.
    }

    int32_t branch_var = MostFractional(model, lp.x, options_.integrality_tol);
    if (branch_var < 0) {
      // Integer feasible.
      double obj = lp.objective;
      if (!have_incumbent || obj < incumbent_obj) {
        incumbent = lp.x;
        // Snap integers exactly.
        for (size_t j = 0; j < model.num_variables(); ++j) {
          if (model.variable(j).is_integer) {
            incumbent[j] = std::round(incumbent[j]);
          }
        }
        incumbent_obj = model.Objective(incumbent);
        have_incumbent = true;
        nodes_since_improve = 0;
      }
      continue;
    }

    // Fix-and-solve heuristic at shallow depths and periodically deeper in
    // the tree: turns the fractional LP point into a feasible incumbent.
    if (node.depth <= 2 || result.nodes % 16 == 0) {
      std::vector<double> rounded;
      bool produced =
          options_.heuristic
              ? options_.heuristic(model, lp.x, &rounded)
              : TryFixAndSolve(model, node.overrides, lp.x, heuristic_solver, &rounded);
      if (produced && model.IsFeasible(rounded, options_.integrality_tol * 100)) {
        double obj = model.Objective(rounded);
        if (!have_incumbent || obj < incumbent_obj) {
          incumbent = std::move(rounded);
          incumbent_obj = obj;
          have_incumbent = true;
          nodes_since_improve = 0;
        }
      }
    }

    double lp_value = lp.x[branch_var];
    double floor_val = std::floor(lp_value);
    double lb, ub;
    EffectiveBounds(model, node.overrides, branch_var, &lb, &ub);

    Node down{node.overrides, lp.objective, node.depth + 1};
    down.overrides.push_back(BoundOverride{branch_var, lb, floor_val});
    Node up{node.overrides, lp.objective, node.depth + 1};
    up.overrides.push_back(BoundOverride{branch_var, floor_val + 1.0, ub});

    // Explore the child nearest the LP value first (pushed last => popped first).
    if (lp_value - floor_val > 0.5) {
      open.push_back(std::move(down));
      open.push_back(std::move(up));
    } else {
      open.push_back(std::move(up));
      open.push_back(std::move(down));
    }
  }

  result.solve_seconds = elapsed();

  if (unbounded) {
    result.status = MipStatus::kUnbounded;
    return result;
  }

  // Best proven bound: min over open nodes' parent bounds and the incumbent.
  double open_bound = kInf;
  for (const Node& n : open) {
    open_bound = std::min(open_bound, n.parent_bound);
  }
  if (open.empty()) {
    result.best_bound = have_incumbent ? incumbent_obj : kInf;
  } else {
    // Unexplored nodes with unknown bounds inherit the root bound.
    if (open_bound == -kInf) {
      open_bound = root_solved ? best_open_bound : -kInf;
    }
    result.best_bound = have_incumbent ? std::min(open_bound, incumbent_obj) : open_bound;
  }

  if (have_incumbent) {
    result.x = std::move(incumbent);
    result.objective = incumbent_obj;
    bool proven = open.empty() ||
                  result.objective - result.best_bound <= options_.absolute_gap ||
                  (std::fabs(result.objective) > 1 &&
                   (result.objective - result.best_bound) / std::fabs(result.objective) <=
                       options_.relative_gap);
    result.status = proven ? MipStatus::kOptimal : MipStatus::kFeasible;
    if (proven) {
      result.best_bound = result.objective;
    }
  } else if (open.empty() && result.nodes > 0 && !result.hit_time_limit &&
             result.nodes < options_.max_nodes) {
    result.status = MipStatus::kInfeasible;
  } else {
    result.status = MipStatus::kNoSolutionFound;
  }
  return result;
}

MipResult MipSolver::SolveParallel(const Model& model, const std::vector<double>* warm_start) {
  const double start_time = util::MonotonicSeconds();
  auto elapsed = [start_time]() { return util::MonotonicSeconds() - start_time; };

  // All search state shared by the workers lives behind one mutex; node LP
  // solves (the expensive part) run outside it, each on the worker's own
  // SimplexSolver so warm starts chain along each worker's node sequence.
  struct Shared {
    Mutex mu;
    CondVar cv;
    std::deque<Node> open GUARDED_BY(mu);
    int busy GUARDED_BY(mu) = 0;       // Workers currently expanding a node.
    bool stop GUARDED_BY(mu) = false;  // Limit hit or unbounded: wind down.
    bool unbounded GUARDED_BY(mu) = false;
    bool hit_time_limit GUARDED_BY(mu) = false;
    int64_t nodes GUARDED_BY(mu) = 0;
    int64_t lp_iterations GUARDED_BY(mu) = 0;
    int64_t lp_dual_iterations GUARDED_BY(mu) = 0;
    int64_t dual_resolves GUARDED_BY(mu) = 0;
    int64_t presolve_rows_removed GUARDED_BY(mu) = 0;
    int64_t nodes_since_improve GUARDED_BY(mu) = 0;
    bool have_incumbent GUARDED_BY(mu) = false;
    std::vector<double> incumbent GUARDED_BY(mu);
    double incumbent_obj GUARDED_BY(mu) = kInf;
    bool root_solved GUARDED_BY(mu) = false;
    double root_bound GUARDED_BY(mu) = -kInf;
    SimplexBasis root_basis GUARDED_BY(mu);
    bool root_basis_used GUARDED_BY(mu) = false;
  } sh;

  {
    MutexLock lock(&sh.mu);  // No workers yet; satisfies the static analysis.
    if (warm_start != nullptr && model.IsFeasible(*warm_start, options_.integrality_tol * 10)) {
      sh.incumbent = *warm_start;
      sh.incumbent_obj = model.Objective(sh.incumbent);
      sh.have_incumbent = true;
    }
    sh.open.push_back(Node{{}, -kInf, 0});
  }

  auto worker = [&]() {
    SimplexSolver lp_solver(options_.lp);
    // Separate solver for the fix-and-solve heuristic (same rationale as the
    // serial path: heuristic LPs warm-start each other and never disturb the
    // node chain's basis).
    SimplexSolver heuristic_solver(options_.lp);
    // Cross-round seed: each worker's chain starts from the cached root
    // basis when it imports cleanly (ResolveWithBasis then warm-starts the
    // worker's first node); failures just leave that worker cold.
    const bool seeded =
        !options_.root_basis.empty() && lp_solver.ImportBasis(model, options_.root_basis);

    sh.mu.Lock();
    if (seeded) {
      sh.root_basis_used = true;
    }
    for (;;) {
      while (sh.open.empty() && !sh.stop && sh.busy > 0) {
        sh.cv.Wait(sh.mu);
      }
      if (sh.stop || sh.open.empty()) {
        // Done: budget exhausted, or no open nodes and nobody is expanding
        // one (an expanding worker could still push children, so an empty
        // queue alone is not termination).
        break;
      }
      if (sh.nodes >= options_.max_nodes || elapsed() > options_.time_limit_seconds) {
        sh.hit_time_limit = elapsed() > options_.time_limit_seconds;
        sh.stop = true;  // Leave remaining nodes queued: they price the bound.
        sh.cv.NotifyAll();
        break;
      }
      // Stall patience (same semantics as the serial search, best-effort
      // across workers: in-flight nodes may still land an improvement).
      if (options_.stall_node_limit > 0 && sh.have_incumbent &&
          sh.nodes_since_improve >= options_.stall_node_limit) {
        sh.stop = true;
        sh.cv.NotifyAll();
        break;
      }
      Node node = std::move(sh.open.back());
      sh.open.pop_back();

      // Prune by parent bound before paying for an LP solve.
      if (sh.have_incumbent && node.parent_bound > sh.incumbent_obj - options_.absolute_gap) {
        continue;
      }
      ++sh.nodes;
      ++sh.nodes_since_improve;
      int64_t node_id = sh.nodes;
      ++sh.busy;
      sh.mu.Unlock();

      // ResolveWithBasis falls back to a cold solve on each worker's first
      // node, then warm-starts down that worker's chain.
      LpResult lp = lp_solver.ResolveWithBasis(model, node.overrides);

      bool push_children = false;
      int32_t branch_var = -1;
      if (lp.status == LpStatus::kOptimal) {
        branch_var = MostFractional(model, lp.x, options_.integrality_tol);
        push_children = branch_var >= 0;
      }

      // Run the (expensive) primal heuristic outside the lock; incumbent
      // acceptance happens under it afterwards.
      bool have_candidate = false;
      std::vector<double> candidate;
      if (push_children && (node.depth <= 2 || node_id % 16 == 0)) {
        bool produced =
            options_.heuristic
                ? options_.heuristic(model, lp.x, &candidate)
                : TryFixAndSolve(model, node.overrides, lp.x, heuristic_solver, &candidate);
        have_candidate = produced && model.IsFeasible(candidate, options_.integrality_tol * 100);
      }

      sh.mu.Lock();
      --sh.busy;
      sh.lp_iterations += lp.iterations;
      sh.lp_dual_iterations += lp.dual_iterations;
      sh.presolve_rows_removed += lp.presolve_rows_removed;
      if (lp.used_dual_simplex) {
        ++sh.dual_resolves;
      }
      if (lp.status == LpStatus::kUnbounded) {
        sh.unbounded = true;
        sh.stop = true;
        sh.cv.NotifyAll();
        continue;  // Loop exits via stop.
      }
      if (lp.status != LpStatus::kOptimal) {
        // Infeasible, or numerical trouble / iteration limit: drop the node
        // (same posture as the serial search).
        sh.cv.NotifyAll();
        continue;
      }
      if (node.depth == 0) {
        sh.root_bound = lp.objective;
        sh.root_solved = true;
        sh.root_basis = lp_solver.ExportBasis();
      }
      if (have_candidate) {
        double obj = model.Objective(candidate);
        if (!sh.have_incumbent || obj < sh.incumbent_obj) {
          sh.incumbent = std::move(candidate);
          sh.incumbent_obj = obj;
          sh.have_incumbent = true;
          sh.nodes_since_improve = 0;
        }
      }
      if (sh.have_incumbent && lp.objective > sh.incumbent_obj - options_.absolute_gap) {
        sh.cv.NotifyAll();
        continue;  // Bound prune.
      }
      if (branch_var < 0) {
        // Integer feasible.
        std::vector<double> point = std::move(lp.x);
        for (size_t j = 0; j < model.num_variables(); ++j) {
          if (model.variable(j).is_integer) {
            point[j] = std::round(point[j]);
          }
        }
        double obj = model.Objective(point);
        if (!sh.have_incumbent || obj < sh.incumbent_obj) {
          sh.incumbent = std::move(point);
          sh.incumbent_obj = obj;
          sh.have_incumbent = true;
          sh.nodes_since_improve = 0;
        }
        sh.cv.NotifyAll();
        continue;
      }

      double lp_value = lp.x[branch_var];
      double floor_val = std::floor(lp_value);
      double lb, ub;
      EffectiveBounds(model, node.overrides, branch_var, &lb, &ub);
      Node down{node.overrides, lp.objective, node.depth + 1};
      down.overrides.push_back(BoundOverride{branch_var, lb, floor_val});
      Node up{node.overrides, lp.objective, node.depth + 1};
      up.overrides.push_back(BoundOverride{branch_var, floor_val + 1.0, ub});
      // The child nearest the LP value is pushed last => popped first.
      if (lp_value - floor_val > 0.5) {
        sh.open.push_back(std::move(down));
        sh.open.push_back(std::move(up));
      } else {
        sh.open.push_back(std::move(up));
        sh.open.push_back(std::move(down));
      }
      sh.cv.NotifyAll();
    }
    sh.cv.NotifyAll();
    sh.mu.Unlock();
  };

  {
    ThreadPool pool(options_.threads);
    for (int t = 0; t < options_.threads; ++t) {
      pool.Submit(worker);
    }
    pool.Wait();
  }

  MutexLock lock(&sh.mu);  // Workers are joined; reads would race otherwise anyway.
  MipResult result;
  result.best_bound = -kInf;
  result.nodes = sh.nodes;
  result.lp_iterations = sh.lp_iterations;
  result.lp_dual_iterations = sh.lp_dual_iterations;
  result.dual_resolves = sh.dual_resolves;
  result.presolve_rows_removed = sh.presolve_rows_removed;
  result.hit_time_limit = sh.hit_time_limit;
  result.solve_seconds = elapsed();
  result.root_basis = std::move(sh.root_basis);
  result.root_basis_used = sh.root_basis_used;

  if (sh.unbounded) {
    result.status = MipStatus::kUnbounded;
    return result;
  }

  // Best proven bound: min over open nodes' parent bounds and the incumbent
  // (identical accounting to the serial search; nodes in flight when a limit
  // tripped were left on the queue).
  double open_bound = kInf;
  for (const Node& n : sh.open) {
    open_bound = std::min(open_bound, n.parent_bound);
  }
  if (sh.open.empty()) {
    result.best_bound = sh.have_incumbent ? sh.incumbent_obj : kInf;
  } else {
    if (open_bound == -kInf) {
      open_bound = sh.root_solved ? sh.root_bound : -kInf;
    }
    result.best_bound =
        sh.have_incumbent ? std::min(open_bound, sh.incumbent_obj) : open_bound;
  }

  if (sh.have_incumbent) {
    result.x = std::move(sh.incumbent);
    result.objective = sh.incumbent_obj;
    bool proven = sh.open.empty() ||
                  result.objective - result.best_bound <= options_.absolute_gap ||
                  (std::fabs(result.objective) > 1 &&
                   (result.objective - result.best_bound) / std::fabs(result.objective) <=
                       options_.relative_gap);
    result.status = proven ? MipStatus::kOptimal : MipStatus::kFeasible;
    if (proven) {
      result.best_bound = result.objective;
    }
  } else if (sh.open.empty() && sh.nodes > 0 && !sh.hit_time_limit &&
             sh.nodes < options_.max_nodes) {
    result.status = MipStatus::kInfeasible;
  } else {
    result.status = MipStatus::kNoSolutionFound;
  }
  return result;
}

}  // namespace ras
