// Linear / mixed-integer model container.
//
// A model is a set of variables with bounds and objective costs, and a set of
// rows of the form `row_lb <= a.x <= row_ub`. The solver minimizes. Rows are
// built row-wise (the natural order for the RAS model builder) and the
// simplex transposes into column-major form internally.

#ifndef RAS_SRC_SOLVER_MODEL_H_
#define RAS_SRC_SOLVER_MODEL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ras {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

using VarId = int32_t;
using RowId = int32_t;

struct ModelVariable {
  double lb = 0.0;
  double ub = kInf;
  double cost = 0.0;
  bool is_integer = false;
  std::string name;
};

struct ModelRow {
  double lb = -kInf;
  double ub = kInf;
  std::string name;
};

struct RowEntry {
  VarId var;
  double coeff;
};

// Column-compressed (CSC) copy of the row-wise constraint matrix. Row indices
// are ascending within each column and duplicate (row, var) pairs from
// AddCoefficient are summed into a single entry — the canonical form consumed
// by the simplex's sparse kernels.
struct CscMatrix {
  std::vector<int32_t> col_starts;  // Size num_cols() + 1.
  std::vector<int32_t> rows;
  std::vector<double> values;

  size_t num_cols() const { return col_starts.empty() ? 0 : col_starts.size() - 1; }
  size_t num_nonzeros() const { return rows.size(); }
};

class Model {
 public:
  VarId AddVariable(double lb, double ub, double cost, bool is_integer, std::string name = "");
  // Convenience wrappers.
  VarId AddContinuous(double lb, double ub, double cost, std::string name = "") {
    return AddVariable(lb, ub, cost, /*is_integer=*/false, std::move(name));
  }
  VarId AddInteger(double lb, double ub, double cost, std::string name = "") {
    return AddVariable(lb, ub, cost, /*is_integer=*/true, std::move(name));
  }

  RowId AddRow(double lb, double ub, std::string name = "");
  // Appends a coefficient to a row. Duplicate (row, var) pairs are summed
  // when the column-major form is built.
  void AddCoefficient(RowId row, VarId var, double coeff);

  void SetVariableBounds(VarId var, double lb, double ub);
  void SetRowBounds(RowId row, double lb, double ub);
  void SetObjectiveCost(VarId var, double cost);

  // In-place patch mutators for cross-round model reuse. They are the same
  // operations as the Set* calls above but carry an API contract: they never
  // touch the constraint matrix, so the cached column-major form (see
  // EnsureCompressedCache) stays valid across any number of them. The model
  // patcher (PatchRasModel) uses only these between rounds. Unlike the Set*
  // calls (which assert), a crossed range (lb > ub) is rejected — the model
  // is left untouched and false is returned — so a bad patch from corrupted
  // round input cannot poison the cached model.
  bool UpdateVariableBounds(VarId var, double lb, double ub) {
    if (lb > ub) {
      return false;
    }
    variables_[var].lb = lb;
    variables_[var].ub = ub;
    return true;
  }
  bool UpdateRowBounds(RowId row, double lb, double ub) {
    if (lb > ub) {
      return false;
    }
    rows_[row].lb = lb;
    rows_[row].ub = ub;
    return true;
  }
  void UpdateObjectiveCost(VarId var, double cost) { SetObjectiveCost(var, cost); }

  size_t num_variables() const { return variables_.size(); }
  size_t num_rows() const { return rows_.size(); }
  size_t num_nonzeros() const { return nonzeros_; }
  const ModelVariable& variable(VarId v) const { return variables_[v]; }
  const ModelRow& row(RowId r) const { return rows_[r]; }
  const std::vector<RowEntry>& row_entries(RowId r) const { return entries_[r]; }
  size_t num_integer_variables() const { return num_integers_; }

  // Builds the column-major (CSC) form of the constraint matrix. Duplicate
  // (row, var) pairs are summed; rows are ascending within each column.
  // Returns a copy of the cached form when one is valid (see
  // EnsureCompressedCache); otherwise computes it fresh without caching, so
  // concurrent callers on a shared const Model never race.
  CscMatrix CompressedColumns() const;

  // Builds (or rebuilds) the cached CSC form. Structural edits (AddVariable /
  // AddRow / AddCoefficient) drop the cache; the Update* mutators keep it
  // valid. Not thread-safe — call after the model is fully built and before
  // handing it to concurrent solvers.
  void EnsureCompressedCache();
  bool compressed_cache_valid() const { return csc_cache_valid_; }

  // Evaluates the objective at a point.
  double Objective(const std::vector<double>& x) const;

  // Checks that `x` satisfies variable bounds, row bounds, and integrality,
  // within `tol`. Used to validate warm starts and MIP incumbents.
  bool IsFeasible(const std::vector<double>& x, double tol) const;

  // Rough accounting of the model's heap footprint, for the Figure 11 bench.
  size_t MemoryBytes() const;

 private:
  std::vector<ModelVariable> variables_;
  std::vector<ModelRow> rows_;
  std::vector<std::vector<RowEntry>> entries_;
  size_t nonzeros_ = 0;
  size_t num_integers_ = 0;

  CscMatrix BuildCompressedColumns() const;

  CscMatrix csc_cache_;
  bool csc_cache_valid_ = false;
};

}  // namespace ras

#endif  // RAS_SRC_SOLVER_MODEL_H_
