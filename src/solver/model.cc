#include "src/solver/model.h"

#include <cassert>
#include <cmath>

namespace ras {

VarId Model::AddVariable(double lb, double ub, double cost, bool is_integer, std::string name) {
  assert(lb <= ub);
  ModelVariable v;
  v.lb = lb;
  v.ub = ub;
  v.cost = cost;
  v.is_integer = is_integer;
  v.name = std::move(name);
  variables_.push_back(std::move(v));
  if (is_integer) {
    ++num_integers_;
  }
  csc_cache_valid_ = false;
  return static_cast<VarId>(variables_.size() - 1);
}

RowId Model::AddRow(double lb, double ub, std::string name) {
  assert(lb <= ub);
  ModelRow r;
  r.lb = lb;
  r.ub = ub;
  r.name = std::move(name);
  rows_.push_back(std::move(r));
  entries_.emplace_back();
  csc_cache_valid_ = false;
  return static_cast<RowId>(rows_.size() - 1);
}

void Model::AddCoefficient(RowId row, VarId var, double coeff) {
  assert(row >= 0 && static_cast<size_t>(row) < rows_.size());
  assert(var >= 0 && static_cast<size_t>(var) < variables_.size());
  if (coeff == 0.0) {
    return;
  }
  entries_[row].push_back(RowEntry{var, coeff});
  ++nonzeros_;
  csc_cache_valid_ = false;
}

void Model::SetVariableBounds(VarId var, double lb, double ub) {
  assert(lb <= ub);
  variables_[var].lb = lb;
  variables_[var].ub = ub;
}

void Model::SetRowBounds(RowId row, double lb, double ub) {
  assert(lb <= ub);
  rows_[row].lb = lb;
  rows_[row].ub = ub;
}

void Model::SetObjectiveCost(VarId var, double cost) { variables_[var].cost = cost; }

CscMatrix Model::CompressedColumns() const {
  if (csc_cache_valid_) {
    return csc_cache_;
  }
  return BuildCompressedColumns();
}

void Model::EnsureCompressedCache() {
  if (csc_cache_valid_) {
    return;
  }
  csc_cache_ = BuildCompressedColumns();
  csc_cache_valid_ = true;
}

CscMatrix Model::BuildCompressedColumns() const {
  CscMatrix csc;
  const size_t n = variables_.size();
  const size_t m = rows_.size();
  std::vector<int32_t> counts(n, 0);
  for (size_t r = 0; r < m; ++r) {
    for (const RowEntry& e : entries_[r]) {
      ++counts[static_cast<size_t>(e.var)];
    }
  }
  csc.col_starts.assign(n + 1, 0);
  for (size_t j = 0; j < n; ++j) {
    csc.col_starts[j + 1] = csc.col_starts[j] + counts[j];
  }
  csc.rows.assign(static_cast<size_t>(csc.col_starts[n]), 0);
  csc.values.assign(static_cast<size_t>(csc.col_starts[n]), 0.0);

  // Fill in row order so rows are ascending per column; duplicates within a
  // row land adjacently and are merged in place.
  std::vector<int32_t> cursor(csc.col_starts.begin(), csc.col_starts.end() - 1);
  for (size_t r = 0; r < m; ++r) {
    for (const RowEntry& e : entries_[r]) {
      size_t j = static_cast<size_t>(e.var);
      int32_t& cur = cursor[j];
      if (cur > csc.col_starts[j] &&
          csc.rows[static_cast<size_t>(cur - 1)] == static_cast<int32_t>(r)) {
        csc.values[static_cast<size_t>(cur - 1)] += e.coeff;
      } else {
        csc.rows[static_cast<size_t>(cur)] = static_cast<int32_t>(r);
        csc.values[static_cast<size_t>(cur)] = e.coeff;
        ++cur;
      }
    }
  }

  // Merging left gaps at the tail of columns that had duplicates; compact.
  int32_t write = 0;
  std::vector<int32_t> compact_starts(n + 1, 0);
  for (size_t j = 0; j < n; ++j) {
    compact_starts[j] = write;
    for (int32_t k = csc.col_starts[j]; k < cursor[j]; ++k) {
      csc.rows[static_cast<size_t>(write)] = csc.rows[static_cast<size_t>(k)];
      csc.values[static_cast<size_t>(write)] = csc.values[static_cast<size_t>(k)];
      ++write;
    }
  }
  compact_starts[n] = write;
  csc.col_starts = std::move(compact_starts);
  csc.rows.resize(static_cast<size_t>(write));
  csc.values.resize(static_cast<size_t>(write));
  return csc;
}

double Model::Objective(const std::vector<double>& x) const {
  assert(x.size() == variables_.size());
  double obj = 0.0;
  for (size_t j = 0; j < variables_.size(); ++j) {
    obj += variables_[j].cost * x[j];
  }
  return obj;
}

bool Model::IsFeasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) {
    return false;
  }
  for (size_t j = 0; j < variables_.size(); ++j) {
    const ModelVariable& v = variables_[j];
    if (x[j] < v.lb - tol || x[j] > v.ub + tol) {
      return false;
    }
    if (v.is_integer && std::fabs(x[j] - std::round(x[j])) > tol) {
      return false;
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    double activity = 0.0;
    for (const RowEntry& e : entries_[r]) {
      activity += e.coeff * x[e.var];
    }
    // Scale the tolerance mildly with activity magnitude for long rows.
    double row_tol = tol * (1.0 + std::fabs(activity));
    if (activity < rows_[r].lb - row_tol || activity > rows_[r].ub + row_tol) {
      return false;
    }
  }
  return true;
}

size_t Model::MemoryBytes() const {
  size_t bytes = variables_.capacity() * sizeof(ModelVariable) +
                 rows_.capacity() * sizeof(ModelRow) +
                 entries_.capacity() * sizeof(std::vector<RowEntry>);
  for (const auto& row : entries_) {
    bytes += row.capacity() * sizeof(RowEntry);
  }
  for (const auto& v : variables_) {
    bytes += v.name.capacity();
  }
  for (const auto& r : rows_) {
    bytes += r.name.capacity();
  }
  return bytes;
}

}  // namespace ras
