// Bounded-variable primal simplex.
//
// Solves  min c.x  s.t.  row_lb <= Ax <= row_ub,  lb <= x <= ub
// by introducing one slack per row (Ax - s = 0, s in [row_lb, row_ub]) so the
// right-hand side is identically zero and the all-slack basis is trivially
// invertible. Infeasibility is driven out with a composite phase-1 objective
// (unit cost per violated basic bound), then phase 2 minimizes the true
// objective. The basis inverse is kept as a dense matrix with product-form
// row updates and periodic refactorization; Dantzig pricing with a Bland
// fallback guards against cycling.
//
// This is the LP engine underneath the branch-and-bound MIP solver
// (src/solver/mip.h), which together substitute for the commercial MIP
// solver used by the paper (Section 3.5).

#ifndef RAS_SRC_SOLVER_SIMPLEX_H_
#define RAS_SRC_SOLVER_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "src/solver/model.h"

namespace ras {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

const char* LpStatusName(LpStatus status);

struct LpOptions {
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  double pivot_tol = 1e-9;
  // 0 means "choose automatically from the problem size".
  int64_t max_iterations = 0;
  int refactor_interval = 256;
  // Consecutive degenerate pivots before switching to Bland's rule.
  int bland_trigger = 60;

  // Sparse kernel path (the default): CSC column storage, zero-skipping
  // BTRAN/eta updates, partial pricing over a candidate list, and adaptive
  // refactorization. `false` selects the original dense reference
  // implementation: full Dantzig pricing every iteration and a fixed
  // refactor_interval cadence.
  bool use_sparse_kernels = true;
  // Partial pricing: size of the candidate list kept from each full scan.
  int pricing_candidates = 64;
  // Periodic full Dantzig scan cadence (iterations); keeps the candidate list
  // from going stale. Optimality is only ever declared after a full scan, so
  // this is a quality knob, not a correctness one. <= 0 disables the refresh.
  int pricing_refresh_interval = 100;
  // Adaptive refactorization (sparse path): rebuild the inverse early when the
  // accumulated product-form eta nonzeros exceed eta_growth_limit * m —
  // product-form updates smear numerical dust through the inverse, densifying
  // every later FTRAN — or when a pivot magnitude falls below
  // drift_refactor_tol relative to its column, a numerical-drift red flag.
  double eta_growth_limit = 8.0;
  double drift_refactor_tol = 1e-8;
  // The optimality clean pass rebuilds the inverse to wash out eta drift
  // before declaring the optimum. A warm re-solve that took at most this many
  // pivots since the last rebuild skips the O(m^3) refactorization — the same
  // drift budget the in-loop adaptive cadence prices dozens of pivots through
  // — provided the feasibility check passes on the current inverse (when it
  // does not, the full clean pass runs after all). 0 restores the
  // unconditional rebuild.
  int clean_pass_eta_limit = 8;

  // Dual simplex warm re-solve: when ResolveWithBasis holds a basis that is
  // still dual-feasible under the current costs (exactly the case after a
  // bound/RHS-only model patch or a branch-and-bound bound change — the
  // costs, and therefore the duals, did not move), re-optimize with dual
  // pivots from that basis instead of driving the primal phase-1/phase-2
  // machinery from scratch. The primal loop still runs afterwards as the
  // optimality verifier, so this is purely an accelerator: any dual-side
  // stall or numerical doubt falls through to the unchanged primal path.
  bool dual_resolve = true;

  // Presolve on cold solves: reduce the model (fixed variables, empty rows,
  // singleton-row bound folds, conservative bound tightening), solve the
  // reduction, and postsolve the basis back onto the full model, where the
  // primal loop verifies it. Falls back to the plain cold path whenever no
  // reduction applies or the postsolved basis fails to import.
  bool presolve = true;
};

struct LpResult {
  LpStatus status = LpStatus::kNumericalFailure;
  // Structural variable values (size = model.num_variables()).
  std::vector<double> x;
  double objective = 0.0;
  int64_t iterations = 0;
  // Duals (one per row) from the final pricing pass; valid when optimal.
  std::vector<double> duals;

  // --- Kernel instrumentation (reset every solve) ---
  // Basis inverse rebuilds, total and the subset forced by numerical drift
  // or eta fill-in rather than the fixed pivot cadence.
  int refactorizations = 0;
  int adaptive_refactorizations = 0;
  // Accumulated nonzeros pushed through product-form eta updates.
  int64_t eta_nonzeros = 0;
  // Full Dantzig pricing scans (every iteration on the dense path; only
  // refresh/verification scans under partial pricing).
  int64_t full_pricing_scans = 0;
  // Dual simplex warm re-solve (LpOptions::dual_resolve): pivots taken by the
  // dual kernel before the primal verifier ran, and whether it ran at all.
  int64_t dual_iterations = 0;
  bool used_dual_simplex = false;
  // Presolve accounting (LpOptions::presolve; zero when the reduction did not
  // apply): rows and variables removed from the model the iterations ran on.
  int32_t presolve_rows_removed = 0;
  int32_t presolve_vars_removed = 0;
};

// Overrides for variable bounds, used by branch-and-bound to tighten integer
// variables without copying the whole model. Entries replace the model's
// bounds for that variable.
struct BoundOverride {
  VarId var;
  double lb;
  double ub;
};

// A portable snapshot of a simplex basis: the basic column in each row
// position plus every column's status, with the model shape it belongs to.
// Exported from one solver after an optimal solve and imported into another
// (possibly freshly constructed) solver over a structurally identical model —
// the cross-round resolve cache persists one per (phase, shard) so the next
// round's root LP restarts from the previous optimum instead of the all-slack
// basis.
struct SimplexBasis {
  std::vector<int32_t> basic;   // Row position -> column (structural or slack).
  std::vector<uint8_t> status;  // Per column; values from SimplexSolver's ColStatus.
  size_t rows = 0;
  size_t vars = 0;
  size_t nonzeros = 0;
  bool empty() const { return basic.empty(); }
};

class SimplexSolver {
 public:
  explicit SimplexSolver(const LpOptions& options = LpOptions()) : options_(options) {}

  LpResult Solve(const Model& model) { return Solve(model, {}); }
  LpResult Solve(const Model& model, const std::vector<BoundOverride>& overrides);

  // Re-solves the SAME model with different bound overrides, starting from
  // the final basis of the previous call. Bound changes leave the basis
  // matrix (and its inverse) valid; only primal values shift, and the
  // composite phase 1 drives out any new violations in a few pivots. This is
  // what makes branch-and-bound nodes cheap: each child differs from its
  // parent by one integer bound. Falls back to a cold solve when no
  // compatible basis is available.
  LpResult ResolveWithBasis(const Model& model, const std::vector<BoundOverride>& overrides);

  // Snapshot of the retained warm-start basis; empty when no valid basis is
  // held (no solve yet, or the last solve did not end optimal).
  SimplexBasis ExportBasis() const;

  // Installs `basis` as the retained warm-start basis for `model`, as if this
  // solver had just solved it: builds the column structure, refactorizes the
  // basis inverse from scratch, and validates it. Returns false — leaving the
  // solver cold, so the next call simply solves from scratch — when the shape
  // fingerprint mismatches, the snapshot is malformed, or the basis matrix is
  // singular against the current model (a stale basis must be detected here,
  // never allowed to produce garbage). On success the next ResolveWithBasis
  // starts warm from this basis.
  bool ImportBasis(const Model& model, const SimplexBasis& basis);

 private:
  enum class ColStatus : uint8_t { kBasic, kAtLower, kAtUpper, kFree };

  // --- One solve's working state ---
  void BuildColumns(const Model& model, const std::vector<BoundOverride>& overrides);
  // Refreshes lb_/ub_/cost_ from the model + overrides without rebuilding
  // the column structure (warm path).
  void RefreshBounds(const Model& model, const std::vector<BoundOverride>& overrides);
  void InitializeBasis();
  bool Refactorize();  // Rebuilds binv_ from basis_; false if singular.
  void ComputeBasicValues();
  // alpha = B^-1 A_col. When `nz` is non-null it receives the positions of
  // the nonzero entries (the sparse path's ratio test and eta update iterate
  // this list instead of scanning all m rows).
  void Ftran(int32_t col, std::vector<double>& alpha, std::vector<int32_t>* nz = nullptr) const;
  double TotalInfeasibility() const;

  LpResult RunSimplex(const Model& model);

  // ImportBasis over a model viewed through bound overrides (the presolve
  // postsolve path re-imports under the same overrides the solve ran with).
  bool ImportBasisInternal(const Model& model, const SimplexBasis& basis,
                           const std::vector<BoundOverride>& overrides);
  // Cold solve without the presolve reduction (the presolve path's fallback
  // and the reduced model's inner solve both use it).
  LpResult SolveDirect(const Model& model, const std::vector<BoundOverride>& overrides);

  // True when every nonbasic column's reduced cost, priced with the true
  // objective, has the sign its status requires (within tol): the retained
  // basis can be re-optimized with dual pivots.
  bool DualFeasibleBasis(double tol) const;
  // Bounded-variable dual simplex from the current (dual-feasible) basis:
  // picks the most-violated basic variable, prices its BTRAN row against all
  // nonbasic columns with the dual ratio test, and pivots until primal
  // feasibility or a conservative iteration budget. Counters accumulate into
  // `accum`. Returns false only when the basis inverse broke down
  // mid-flight (the caller must fall back to a cold solve); early exits for
  // budget/stall reasons return true and leave a valid basis for the primal
  // verifier to finish from.
  bool RunDualSimplex(LpResult* accum);

  LpOptions options_;

  // Problem dimensions: m_ rows, n_ structural columns, total_ = n_ + m_.
  int32_t m_ = 0;
  int32_t n_ = 0;
  int32_t total_ = 0;

  // Structural columns in CSC form (slacks implicit): column j's nonzeros
  // live in csc_rows_/csc_values_[csc_starts_[j] .. csc_starts_[j+1]).
  std::vector<int32_t> csc_starts_;
  std::vector<int32_t> csc_rows_;
  std::vector<double> csc_values_;

  std::vector<double> lb_;             // Per column (structural + slack).
  std::vector<double> ub_;
  std::vector<double> cost_;  // True objective costs (slacks: 0).

  std::vector<int32_t> basis_;      // Column basic in each row position.
  std::vector<ColStatus> status_;   // Per column.
  std::vector<int32_t> basis_pos_;  // Column -> row position (or -1).
  std::vector<double> value_;       // Current value per column.
  std::vector<double> binv_;        // Dense m_ x m_ row-major basis inverse.
  // Product-form eta updates applied to binv_ since its last full rebuild
  // (across calls — a warm resolve inherits the previous solve's drift).
  // Drives the clean-pass skip (LpOptions::clean_pass_eta_limit).
  int64_t etas_since_refactor_ = 0;

  // Warm-start validity: set after a successful solve; identifies the model
  // shape the retained basis belongs to.
  bool basis_valid_ = false;
  size_t prepared_rows_ = 0;
  size_t prepared_vars_ = 0;
  size_t prepared_nonzeros_ = 0;
};

}  // namespace ras

#endif  // RAS_SRC_SOLVER_SIMPLEX_H_
