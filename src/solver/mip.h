// Branch-and-bound mixed-integer solver on top of the bounded simplex.
//
// Features used by RAS (Section 3.5): warm starting from a known feasible
// assignment (the "initial state" step), a hard time limit with best-incumbent
// return (the paper's phase-1 timeout), and reporting of the remaining
// optimality gap (Figure 9 measures solution quality in units of the model's
// move / constraint-fix costs).

#ifndef RAS_SRC_SOLVER_MIP_H_
#define RAS_SRC_SOLVER_MIP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/solver/model.h"
#include "src/solver/simplex.h"

namespace ras {

enum class MipStatus {
  kOptimal,          // Incumbent proven optimal within gap tolerances.
  kFeasible,         // Incumbent found but search stopped early (time/nodes).
  kInfeasible,       // No integer-feasible point exists.
  kUnbounded,
  kNoSolutionFound,  // Search stopped early with no incumbent.
  kError,
};

const char* MipStatusName(MipStatus status);

// Problem-specific primal heuristic: turn a (fractional) LP point into a
// feasible integer candidate. Return false if no candidate was produced.
// The caller validates feasibility and objective before accepting it.
using MipHeuristic =
    std::function<bool(const Model& model, const std::vector<double>& lp_x,
                       std::vector<double>* candidate)>;

struct MipOptions {
  double time_limit_seconds = 120.0;
  int64_t max_nodes = 200000;
  double integrality_tol = 1e-6;
  double absolute_gap = 1e-6;
  double relative_gap = 1e-6;
  // Branch-and-bound worker threads. 1 (the default) runs the deterministic
  // serial search. Higher values explore open nodes concurrently: each worker
  // owns its own SimplexSolver (warm-started along its own node chain) and
  // shares the open-node queue, incumbent, and node/time budgets. The
  // returned incumbent can differ between runs (whichever worker improves it
  // first wins ties), but any proven-optimal objective is the same.
  int threads = 1;
  LpOptions lp;
  // When set, used instead of the built-in generic fix-and-solve rounding.
  // RAS installs an LP-guided greedy that understands the assignment
  // structure (src/core/lp_rounding). Must be thread-safe when threads > 1;
  // the LP-rounding heuristic is (it only reads its captured model state).
  MipHeuristic heuristic;
  // Cross-round warm start (resolve cache): when non-empty, each node-chain
  // solver tries to import this basis before its first LP, so the root solve
  // restarts from the previous round's optimum instead of the all-slack
  // basis. A basis that fails to import (shape mismatch, singular against
  // the current model) is ignored and the solve proceeds cold.
  SimplexBasis root_basis;
  // Stop the search once this many consecutive nodes have been explored
  // without improving the incumbent, provided an incumbent exists. The RAS
  // models sit in a regime where the LP relaxation keeps a structural
  // integer-ceil gap to any incumbent, so unlimited patience burns the whole
  // node budget proving nothing; a bounded stall cuts that tail. 0 disables.
  int64_t stall_node_limit = 0;
};

struct MipResult {
  MipStatus status = MipStatus::kError;
  std::vector<double> x;      // Best incumbent (empty if none).
  double objective = 0.0;     // Incumbent objective.
  double best_bound = 0.0;    // Proven lower bound on the optimum.
  int64_t nodes = 0;
  // Simplex iterations summed over every node LP (all workers).
  int64_t lp_iterations = 0;
  double solve_seconds = 0.0;
  bool hit_time_limit = false;
  // Basis at the root LP optimum (empty when the root never solved to
  // optimality). The resolve cache persists it to seed the next round via
  // MipOptions::root_basis.
  SimplexBasis root_basis;
  // Whether MipOptions::root_basis was successfully imported by at least one
  // node-chain solver.
  bool root_basis_used = false;
  // Solver-layer re-optimization telemetry summed over every node LP: warm
  // resolves served by the dual simplex kernel, the dual pivots they took,
  // and rows presolve removed from cold solves.
  int64_t dual_resolves = 0;
  int64_t lp_dual_iterations = 0;
  int64_t presolve_rows_removed = 0;

  double gap() const { return objective - best_bound; }
};

class MipSolver {
 public:
  explicit MipSolver(const MipOptions& options = MipOptions()) : options_(options) {}

  // `warm_start`, if provided and feasible for `model`, seeds the incumbent;
  // infeasible warm starts are ignored.
  MipResult Solve(const Model& model, const std::vector<double>* warm_start = nullptr);

 private:
  MipResult SolveSerial(const Model& model, const std::vector<double>* warm_start);
  MipResult SolveParallel(const Model& model, const std::vector<double>* warm_start);

  MipOptions options_;
};

}  // namespace ras

#endif  // RAS_SRC_SOLVER_MIP_H_
