#include "src/solver/presolve.h"

#include <algorithm>
#include <cmath>

namespace ras {
namespace {

// SimplexBasis status byte values; must match SimplexSolver::ColStatus order.
constexpr uint8_t kStBasic = 0;
constexpr uint8_t kStAtLower = 1;
constexpr uint8_t kStAtUpper = 2;

// Looser margin for declaring infeasibility from accumulated activity
// arithmetic: substitution error compounds across passes, so an exact-tol
// verdict here would be a false positive waiting to happen.
constexpr double kFeasMargin = 1e-6;

}  // namespace

bool PresolvedLp::Reduce(const Model& model, const std::vector<BoundOverride>& overrides,
                         const PresolveOptions& options) {
  tol_ = options.tol;
  n0_ = static_cast<int32_t>(model.num_variables());
  m0_ = static_cast<int32_t>(model.num_rows());
  nnz0_ = model.num_nonzeros();
  const int32_t n = n0_;
  const int32_t m = m0_;
  stats_ = PresolveStats();
  folds_.clear();
  if (n == 0 || m == 0) {
    return false;
  }

  vlb0_.resize(n);
  vub0_.resize(n);
  std::vector<double> cost(n);
  for (int32_t j = 0; j < n; ++j) {
    const ModelVariable& v = model.variable(j);
    vlb0_[j] = v.lb;
    vub0_[j] = v.ub;
    cost[j] = v.cost;
  }
  for (const BoundOverride& o : overrides) {
    vlb0_[o.var] = o.lb;
    vub0_[o.var] = o.ub;
  }
  vlbf_ = vlb0_;
  vubf_ = vub0_;

  std::vector<double> rlb(m), rub(m);
  for (int32_t i = 0; i < m; ++i) {
    rlb[i] = model.row(i).lb;
    rub[i] = model.row(i).ub;
  }

  // Working rows with duplicate (row, var) entries merged and zero
  // coefficients dropped — singleton detection needs true support counts.
  std::vector<std::vector<RowEntry>> rows(m);
  {
    std::vector<double> acc(n, 0.0);
    std::vector<bool> seen(n, false);
    std::vector<int32_t> touched;
    for (int32_t i = 0; i < m; ++i) {
      touched.clear();
      for (const RowEntry& e : model.row_entries(i)) {
        if (!seen[e.var]) {
          seen[e.var] = true;
          touched.push_back(e.var);
        }
        acc[e.var] += e.coeff;
      }
      std::sort(touched.begin(), touched.end());
      for (int32_t v : touched) {
        if (acc[v] != 0.0) {
          rows[i].push_back({v, acc[v]});
        }
        acc[v] = 0.0;
        seen[v] = false;
      }
    }
  }

  std::vector<bool> var_alive(n, true);
  std::vector<bool> row_alive(m, true);
  fixed_value_.assign(n, 0.0);
  fixed_status_.assign(n, kStAtLower);
  std::vector<int32_t> row_nnz(m, 0);
  // Column view of the working rows; RowEntry is reused as (row, coeff).
  std::vector<std::vector<RowEntry>> cols(n);
  for (int32_t i = 0; i < m; ++i) {
    row_nnz[i] = static_cast<int32_t>(rows[i].size());
    for (const RowEntry& e : rows[i]) {
      cols[e.var].push_back({i, e.coeff});
    }
  }

  const double ftol = std::max(tol_, 1e-9);

  // Removes var j from the problem at value v, substituting it into every
  // row it appears in (the row's constant moves into its bounds).
  auto fix_var = [&](int32_t j, double v, uint8_t st) {
    var_alive[j] = false;
    fixed_value_[j] = v;
    fixed_status_[j] = st;
    vlbf_[j] = vubf_[j] = v;
    ++stats_.vars_removed;
    for (const RowEntry& rc : cols[j]) {
      int32_t r = rc.var;  // Row id in the column view.
      if (!row_alive[r]) {
        continue;
      }
      if (std::isfinite(rlb[r])) {
        rlb[r] -= rc.coeff * v;
      }
      if (std::isfinite(rub[r])) {
        rub[r] -= rc.coeff * v;
      }
      --row_nnz[r];
    }
  };

  bool infeasible = false;
  bool changed = true;
  int pass = 0;
  while (changed && !infeasible && pass < options.max_passes) {
    changed = false;
    ++pass;

    // --- Fixed (and crossed) variables. ---
    if (options.remove_fixed_variables) {
      for (int32_t j = 0; j < n; ++j) {
        if (!var_alive[j]) {
          continue;
        }
        if (vlbf_[j] > vubf_[j] + ftol) {
          infeasible = true;
          break;
        }
        if (std::isfinite(vlbf_[j]) && std::isfinite(vubf_[j]) &&
            vubf_[j] - vlbf_[j] <= ftol) {
          double v = 0.5 * (vlbf_[j] + vubf_[j]);
          uint8_t st = kStAtLower;
          // Snap to an original bound when possible: the basis import on the
          // full model places the variable exactly there.
          if (std::fabs(v - vlb0_[j]) <= ftol) {
            v = vlb0_[j];
            st = kStAtLower;
          } else if (std::fabs(v - vub0_[j]) <= ftol) {
            v = vub0_[j];
            st = kStAtUpper;
          }
          fix_var(j, v, st);
          changed = true;
        }
      }
    }
    if (infeasible) {
      break;
    }

    // --- Empty rows: constraint collapsed to rlb' <= 0 <= rub'. ---
    if (options.remove_empty_rows) {
      for (int32_t i = 0; i < m; ++i) {
        if (!row_alive[i] || row_nnz[i] != 0) {
          continue;
        }
        if (rlb[i] > kFeasMargin || rub[i] < -kFeasMargin) {
          infeasible = true;
          break;
        }
        row_alive[i] = false;
        ++stats_.rows_removed;
        changed = true;
      }
    }
    if (infeasible) {
      break;
    }

    // --- Singleton rows: a * x[j] in [rlb, rub] folds into x[j]'s bounds. ---
    if (options.fold_singleton_rows) {
      for (int32_t i = 0; i < m; ++i) {
        if (!row_alive[i] || row_nnz[i] != 1) {
          continue;
        }
        int32_t j = -1;
        double a = 0.0;
        for (const RowEntry& e : rows[i]) {
          if (var_alive[e.var]) {
            j = e.var;
            a = e.coeff;
            break;
          }
        }
        if (j < 0) {
          continue;
        }
        double lo, hi;
        if (a > 0) {
          lo = rlb[i] / a;
          hi = rub[i] / a;
        } else {
          lo = rub[i] / a;
          hi = rlb[i] / a;
        }
        folds_.push_back({i, j, a, lo, hi});
        if (lo > vlbf_[j]) {
          vlbf_[j] = lo;
          ++stats_.bounds_tightened;
        }
        if (hi < vubf_[j]) {
          vubf_[j] = hi;
          ++stats_.bounds_tightened;
        }
        row_alive[i] = false;
        ++stats_.rows_removed;
        ++stats_.singleton_rows_folded;
        changed = true;
        if (vlbf_[j] > vubf_[j] + ftol) {
          infeasible = true;
          break;
        }
      }
    }
    if (infeasible) {
      break;
    }

    // --- Activity-based pass: exact reductions only. ---
    if (options.tighten_bounds) {
      for (int32_t i = 0; i < m && !infeasible; ++i) {
        if (!row_alive[i] || row_nnz[i] == 0) {
          continue;
        }
        // Activity range with explicit infinity counting so removing one
        // term never produces inf - inf.
        double fin_min = 0.0, fin_max = 0.0;
        int inf_min = 0, inf_max = 0;
        for (const RowEntry& e : rows[i]) {
          if (!var_alive[e.var]) {
            continue;
          }
          double tmin = e.coeff > 0 ? e.coeff * vlbf_[e.var] : e.coeff * vubf_[e.var];
          double tmax = e.coeff > 0 ? e.coeff * vubf_[e.var] : e.coeff * vlbf_[e.var];
          if (std::isfinite(tmin)) {
            fin_min += tmin;
          } else {
            ++inf_min;
          }
          if (std::isfinite(tmax)) {
            fin_max += tmax;
          } else {
            ++inf_max;
          }
        }
        double min_act = inf_min > 0 ? -kInf : fin_min;
        double max_act = inf_max > 0 ? kInf : fin_max;
        if (min_act > rub[i] + kFeasMargin || max_act < rlb[i] - kFeasMargin) {
          infeasible = true;
          break;
        }
        // Redundant row: the variable bounds alone imply both row bounds.
        // Its slack goes basic in postsolve — an exact reduction.
        if (min_act >= rlb[i] - ftol && max_act <= rub[i] + ftol) {
          row_alive[i] = false;
          ++stats_.rows_removed;
          changed = true;
          continue;
        }
        // Pin a variable to one of its ORIGINAL bounds when the other terms
        // force it there; the postsolve status is then exact.
        for (const RowEntry& e : rows[i]) {
          int32_t j = e.var;
          if (!var_alive[j] || std::fabs(e.coeff) < 1e-12) {
            continue;
          }
          double tmin = e.coeff > 0 ? e.coeff * vlbf_[j] : e.coeff * vubf_[j];
          double tmax = e.coeff > 0 ? e.coeff * vubf_[j] : e.coeff * vlbf_[j];
          double omin = std::isfinite(tmin) ? (inf_min > 0 ? -kInf : fin_min - tmin)
                                            : (inf_min > 1 ? -kInf : fin_min);
          double omax = std::isfinite(tmax) ? (inf_max > 0 ? kInf : fin_max - tmax)
                                            : (inf_max > 1 ? kInf : fin_max);
          // rlb - omax <= coeff * x[j] <= rub - omin.
          double blo =
              (std::isfinite(rlb[i]) && std::isfinite(omax)) ? rlb[i] - omax : -kInf;
          double bhi =
              (std::isfinite(rub[i]) && std::isfinite(omin)) ? rub[i] - omin : kInf;
          double ilo = e.coeff > 0 ? blo / e.coeff : bhi / e.coeff;
          double ihi = e.coeff > 0 ? bhi / e.coeff : blo / e.coeff;
          if (std::isfinite(vubf_[j]) && vubf_[j] == vub0_[j]) {
            if (ilo > vubf_[j] + kFeasMargin) {
              infeasible = true;
              break;
            }
            if (ilo >= vubf_[j] - ftol) {
              fix_var(j, vub0_[j], kStAtUpper);
              ++stats_.bounds_tightened;
              changed = true;
              break;  // Row activity is stale now; next pass rescans.
            }
          }
          if (std::isfinite(vlbf_[j]) && vlbf_[j] == vlb0_[j]) {
            if (ihi < vlbf_[j] - kFeasMargin) {
              infeasible = true;
              break;
            }
            if (ihi <= vlbf_[j] + ftol) {
              fix_var(j, vlb0_[j], kStAtLower);
              ++stats_.bounds_tightened;
              changed = true;
              break;
            }
          }
        }
      }
    }
  }

  stats_.infeasible = infeasible;
  if (infeasible) {
    return true;
  }
  if (stats_.rows_removed + stats_.vars_removed < options.min_reduction) {
    return false;
  }

  // --- Build the reduced model. ---
  var_map_.assign(n, -1);
  row_map_.assign(m, -1);
  alive_vars_.clear();
  alive_rows_.clear();
  for (int32_t j = 0; j < n; ++j) {
    if (var_alive[j]) {
      var_map_[j] = static_cast<int32_t>(alive_vars_.size());
      alive_vars_.push_back(j);
    }
  }
  for (int32_t i = 0; i < m; ++i) {
    if (row_alive[i]) {
      row_map_[i] = static_cast<int32_t>(alive_rows_.size());
      alive_rows_.push_back(i);
    }
  }
  reduced_n_ = static_cast<int32_t>(alive_vars_.size());
  reduced_m_ = static_cast<int32_t>(alive_rows_.size());
  reduced_ = Model();
  for (int32_t j : alive_vars_) {
    double lo = vlbf_[j];
    double hi = vubf_[j];
    if (lo > hi) {  // Within ftol by the checks above; collapse exactly.
      lo = hi = 0.5 * (lo + hi);
      vlbf_[j] = vubf_[j] = lo;
    }
    reduced_.AddVariable(lo, hi, cost[j], model.variable(j).is_integer);
  }
  for (int32_t i : alive_rows_) {
    RowId r = reduced_.AddRow(rlb[i], rub[i]);
    for (const RowEntry& e : rows[i]) {
      if (var_alive[e.var]) {
        reduced_.AddCoefficient(r, var_map_[e.var], e.coeff);
      }
    }
  }
  reduced_.EnsureCompressedCache();
  return true;
}

std::vector<double> PresolvedLp::RestorePrimal(const std::vector<double>& reduced_x) const {
  std::vector<double> x(n0_, 0.0);
  for (int32_t j = 0; j < n0_; ++j) {
    if (var_map_[j] >= 0) {
      x[j] = static_cast<size_t>(var_map_[j]) < reduced_x.size() ? reduced_x[var_map_[j]] : 0.0;
    } else {
      x[j] = fixed_value_[j];
    }
  }
  return x;
}

SimplexBasis PresolvedLp::RestoreBasis(const SimplexBasis& reduced_basis) const {
  SimplexBasis out;
  if (reduced_basis.basic.size() != static_cast<size_t>(reduced_m_) ||
      reduced_basis.status.size() != static_cast<size_t>(reduced_n_ + reduced_m_)) {
    return out;  // Shape mismatch: empty basis, import fails, caller re-solves.
  }
  const int32_t n = n0_;
  const int32_t m = m0_;
  out.basic.assign(m, 0);
  out.status.assign(static_cast<size_t>(n) + m, kStAtLower);
  for (int32_t j = 0; j < n; ++j) {
    out.status[j] = var_map_[j] >= 0 ? reduced_basis.status[var_map_[j]] : fixed_status_[j];
  }
  for (int32_t i = 0; i < m; ++i) {
    if (row_map_[i] >= 0) {
      out.status[n + i] = reduced_basis.status[reduced_n_ + row_map_[i]];
      int32_t rb = reduced_basis.basic[row_map_[i]];
      out.basic[i] = rb < reduced_n_ ? alive_vars_[rb] : n + alive_rows_[rb - reduced_n_];
    } else {
      // Dropped row (empty, redundant, or folded): its slack goes basic and
      // simply takes whatever activity the other columns give it.
      out.basic[i] = n + i;
      out.status[n + i] = kStBasic;
    }
  }
  // Singleton-fold fix-up: a column resting on a bound that exists only in
  // the folded model pivots into its fold row; the row's slack takes the
  // matching original row bound. The pair swap keeps the basis nonsingular —
  // the fold row's only surviving column is the folded variable itself.
  for (const SingletonFold& f : folds_) {
    int32_t j = f.var;
    uint8_t st = out.status[j];
    if (st != kStAtLower && st != kStAtUpper) {
      continue;
    }
    if (out.basic[f.row] != n + f.row) {
      continue;  // Fold row already consumed by an earlier fix-up.
    }
    double rv, ob, fb;
    if (st == kStAtLower) {
      rv = var_map_[j] >= 0 ? vlbf_[j] : fixed_value_[j];
      ob = vlb0_[j];
      fb = f.lo;
    } else {
      rv = var_map_[j] >= 0 ? vubf_[j] : fixed_value_[j];
      ob = vub0_[j];
      fb = f.hi;
    }
    if (!std::isfinite(rv)) {
      continue;
    }
    double match_tol = 1e-7 * (1.0 + std::fabs(rv));
    if (std::isfinite(ob) && std::fabs(rv - ob) <= match_tol) {
      continue;  // Resting on an original bound: status already exact.
    }
    if (!std::isfinite(fb) || std::fabs(fb - rv) > match_tol) {
      continue;  // This fold is not the one that set the resting bound.
    }
    out.basic[f.row] = j;
    out.status[j] = kStBasic;
    bool slack_low = (st == kStAtLower) == (f.coeff > 0);
    out.status[n + f.row] = slack_low ? kStAtLower : kStAtUpper;
  }
  out.rows = m;
  out.vars = n;
  out.nonzeros = nnz0_;
  return out;
}

}  // namespace ras
