#include "src/solver/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/solver/presolve.h"

namespace ras {
namespace {

// Recorded once per LP solve (including node LPs inside branch-and-bound):
// a handful of relaxed atomic adds against the work of the solve itself.
void RecordLpMetrics(const LpResult& result) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  static obs::Counter& solves =
      reg.counter("ras_simplex_solves_total", "LP solves, cold starts and basis resolves.");
  static obs::Counter& iterations =
      reg.counter("ras_simplex_iterations_total", "Simplex pivots across all solves.");
  static obs::Counter& refactorizations = reg.counter(
      "ras_simplex_refactorizations_total", "Basis inverse rebuilds across all solves.");
  static obs::Counter& dual_resolves = reg.counter(
      "ras_simplex_dual_resolves_total", "Warm resolves served by the dual simplex kernel.");
  static obs::Counter& dual_iterations =
      reg.counter("ras_simplex_dual_iterations_total", "Dual simplex pivots across all solves.");
  static obs::Counter& presolve_rows = reg.counter(
      "ras_simplex_presolve_rows_removed_total", "Rows removed by presolve across cold solves.");
  solves.Add();
  iterations.Add(result.iterations);
  refactorizations.Add(result.refactorizations);
  if (result.used_dual_simplex) {
    dual_resolves.Add();
  }
  dual_iterations.Add(result.dual_iterations);
  presolve_rows.Add(result.presolve_rows_removed);
}

}  // namespace

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "OPTIMAL";
    case LpStatus::kInfeasible:
      return "INFEASIBLE";
    case LpStatus::kUnbounded:
      return "UNBOUNDED";
    case LpStatus::kIterationLimit:
      return "ITERATION_LIMIT";
    case LpStatus::kNumericalFailure:
      return "NUMERICAL_FAILURE";
  }
  return "UNKNOWN";
}

void SimplexSolver::BuildColumns(const Model& model, const std::vector<BoundOverride>& overrides) {
  m_ = static_cast<int32_t>(model.num_rows());
  n_ = static_cast<int32_t>(model.num_variables());
  total_ = n_ + m_;

  // Column-major structural matrix; duplicate (row, var) entries are summed
  // by the CSC build.
  CscMatrix csc = model.CompressedColumns();
  csc_starts_ = std::move(csc.col_starts);
  csc_rows_ = std::move(csc.rows);
  csc_values_ = std::move(csc.values);

  lb_.resize(total_);
  ub_.resize(total_);
  cost_.assign(total_, 0.0);
  for (int32_t j = 0; j < n_; ++j) {
    const ModelVariable& v = model.variable(j);
    lb_[j] = v.lb;
    ub_[j] = v.ub;
    cost_[j] = v.cost;
  }
  for (const BoundOverride& o : overrides) {
    assert(o.var >= 0 && o.var < n_);
    lb_[o.var] = o.lb;
    ub_[o.var] = o.ub;
  }
  for (int32_t i = 0; i < m_; ++i) {
    const ModelRow& row = model.row(i);
    lb_[n_ + i] = row.lb;
    ub_[n_ + i] = row.ub;
  }
}

void SimplexSolver::InitializeBasis() {
  basis_.resize(m_);
  status_.assign(total_, ColStatus::kAtLower);
  basis_pos_.assign(total_, -1);
  value_.assign(total_, 0.0);

  for (int32_t j = 0; j < total_; ++j) {
    if (std::isfinite(lb_[j])) {
      status_[j] = ColStatus::kAtLower;
      value_[j] = lb_[j];
    } else if (std::isfinite(ub_[j])) {
      status_[j] = ColStatus::kAtUpper;
      value_[j] = ub_[j];
    } else {
      status_[j] = ColStatus::kFree;
      value_[j] = 0.0;
    }
  }
  // All-slack basis. B = -I so B^-1 = -I.
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
  for (int32_t i = 0; i < m_; ++i) {
    int32_t col = n_ + i;
    basis_[i] = col;
    basis_pos_[col] = i;
    status_[col] = ColStatus::kBasic;
    binv_[static_cast<size_t>(i) * m_ + i] = -1.0;
  }
  ComputeBasicValues();
}

bool SimplexSolver::Refactorize() {
  // Dense Gauss-Jordan inversion of the basis matrix with partial pivoting.
  // O(m^3); called periodically to cap inverse drift.
  std::vector<double> mat(static_cast<size_t>(m_) * m_, 0.0);
  for (int32_t pos = 0; pos < m_; ++pos) {
    int32_t col = basis_[pos];
    if (col >= n_) {
      mat[static_cast<size_t>(col - n_) * m_ + pos] = -1.0;  // Slack column -e_i.
    } else {
      for (int32_t k = csc_starts_[col]; k < csc_starts_[col + 1]; ++k) {
        mat[static_cast<size_t>(csc_rows_[k]) * m_ + pos] = csc_values_[k];
      }
    }
  }
  std::vector<double> inv(static_cast<size_t>(m_) * m_, 0.0);
  for (int32_t i = 0; i < m_; ++i) {
    inv[static_cast<size_t>(i) * m_ + i] = 1.0;
  }
  for (int32_t col = 0; col < m_; ++col) {
    // Pivot search in column `col` at or below the diagonal.
    int32_t pivot_row = -1;
    double best = 1e-11;
    for (int32_t r = col; r < m_; ++r) {
      double v = std::fabs(mat[static_cast<size_t>(r) * m_ + col]);
      if (v > best) {
        best = v;
        pivot_row = r;
      }
    }
    if (pivot_row < 0) {
      return false;  // Singular basis.
    }
    if (pivot_row != col) {
      for (int32_t c = 0; c < m_; ++c) {
        std::swap(mat[static_cast<size_t>(pivot_row) * m_ + c],
                  mat[static_cast<size_t>(col) * m_ + c]);
        std::swap(inv[static_cast<size_t>(pivot_row) * m_ + c],
                  inv[static_cast<size_t>(col) * m_ + c]);
      }
    }
    double pivot = mat[static_cast<size_t>(col) * m_ + col];
    double inv_pivot = 1.0 / pivot;
    double* mat_row = &mat[static_cast<size_t>(col) * m_];
    double* inv_row = &inv[static_cast<size_t>(col) * m_];
    for (int32_t c = 0; c < m_; ++c) {
      mat_row[c] *= inv_pivot;
      inv_row[c] *= inv_pivot;
    }
    for (int32_t r = 0; r < m_; ++r) {
      if (r == col) {
        continue;
      }
      double factor = mat[static_cast<size_t>(r) * m_ + col];
      if (factor == 0.0) {
        continue;
      }
      double* mr = &mat[static_cast<size_t>(r) * m_];
      double* ir = &inv[static_cast<size_t>(r) * m_];
      for (int32_t c = 0; c < m_; ++c) {
        mr[c] -= factor * mat_row[c];
        ir[c] -= factor * inv_row[c];
      }
    }
  }
  binv_ = std::move(inv);
  etas_since_refactor_ = 0;
  return true;
}

void SimplexSolver::ComputeBasicValues() {
  // x_B = B^-1 * r where r_i = -(sum over nonbasic j of a_ij x_j). The rhs is
  // zero because every row's constant lives in its slack bounds.
  std::vector<double> r(m_, 0.0);
  for (int32_t j = 0; j < n_; ++j) {
    if (status_[j] == ColStatus::kBasic || value_[j] == 0.0) {
      continue;
    }
    double xj = value_[j];
    for (int32_t k = csc_starts_[j]; k < csc_starts_[j + 1]; ++k) {
      r[csc_rows_[k]] -= csc_values_[k] * xj;
    }
  }
  for (int32_t i = 0; i < m_; ++i) {
    int32_t col = n_ + i;
    if (status_[col] != ColStatus::kBasic && value_[col] != 0.0) {
      r[i] += value_[col];  // Slack column is -e_i, so -(-1 * x) = +x.
    }
  }
  for (int32_t pos = 0; pos < m_; ++pos) {
    const double* row = &binv_[static_cast<size_t>(pos) * m_];
    double sum = 0.0;
    for (int32_t i = 0; i < m_; ++i) {
      sum += row[i] * r[i];
    }
    value_[basis_[pos]] = sum;
  }
}

void SimplexSolver::Ftran(int32_t col, std::vector<double>& alpha,
                          std::vector<int32_t>* nz) const {
  // alpha = B^-1 * A_col.
  alpha.assign(m_, 0.0);
  if (col >= n_) {
    int32_t r = col - n_;
    for (int32_t pos = 0; pos < m_; ++pos) {
      alpha[pos] = -binv_[static_cast<size_t>(pos) * m_ + r];
    }
  } else {
    for (int32_t k = csc_starts_[col]; k < csc_starts_[col + 1]; ++k) {
      int32_t r = csc_rows_[k];
      double v = csc_values_[k];
      for (int32_t pos = 0; pos < m_; ++pos) {
        alpha[pos] += binv_[static_cast<size_t>(pos) * m_ + r] * v;
      }
    }
  }
  if (nz != nullptr) {
    nz->clear();
    for (int32_t pos = 0; pos < m_; ++pos) {
      if (alpha[pos] != 0.0) {
        nz->push_back(pos);
      }
    }
  }
}

double SimplexSolver::TotalInfeasibility() const {
  double total = 0.0;
  for (int32_t pos = 0; pos < m_; ++pos) {
    int32_t col = basis_[pos];
    double x = value_[col];
    if (x < lb_[col]) {
      total += lb_[col] - x;
    } else if (x > ub_[col]) {
      total += x - ub_[col];
    }
  }
  return total;
}

void SimplexSolver::RefreshBounds(const Model& model, const std::vector<BoundOverride>& overrides) {
  for (int32_t j = 0; j < n_; ++j) {
    const ModelVariable& v = model.variable(j);
    lb_[j] = v.lb;
    ub_[j] = v.ub;
    cost_[j] = v.cost;
  }
  for (const BoundOverride& o : overrides) {
    lb_[o.var] = o.lb;
    ub_[o.var] = o.ub;
  }
  for (int32_t i = 0; i < m_; ++i) {
    const ModelRow& row = model.row(i);
    lb_[n_ + i] = row.lb;
    ub_[n_ + i] = row.ub;
  }
}

LpResult SimplexSolver::Solve(const Model& model, const std::vector<BoundOverride>& overrides) {
  LpResult result;
  bool solved = false;
  if (options_.presolve && model.num_rows() > 0) {
    PresolveOptions popts;
    PresolvedLp pre;
    if (pre.Reduce(model, overrides, popts)) {
      if (pre.stats().infeasible) {
        // An exact reduction (empty-row range check, crossed bounds after a
        // fold) proved infeasibility without a single pivot.
        basis_valid_ = false;
        result.status = LpStatus::kInfeasible;
        result.presolve_rows_removed = pre.stats().rows_removed;
        result.presolve_vars_removed = pre.stats().vars_removed;
        solved = true;
      } else {
        LpResult reduced = SolveDirect(pre.reduced(), {});
        if (reduced.status == LpStatus::kInfeasible || reduced.status == LpStatus::kUnbounded) {
          // Every reduction is feasibility- and boundedness-preserving in both
          // directions, so the reduced verdict transfers to the full model.
          basis_valid_ = false;
          result = reduced;
          result.x.clear();
          result.duals.clear();
          result.presolve_rows_removed = pre.stats().rows_removed;
          result.presolve_vars_removed = pre.stats().vars_removed;
          solved = true;
        } else if (reduced.status == LpStatus::kOptimal) {
          // Postsolve the reduced basis onto the full model and let the
          // primal loop verify it (typically zero pivots plus one clean
          // refactorization); it also produces the full-length x and duals.
          SimplexBasis full_basis = pre.RestoreBasis(ExportBasis());
          if (ImportBasisInternal(model, full_basis, overrides)) {
            LpResult verified = RunSimplex(model);
            if (verified.status == LpStatus::kOptimal) {
              verified.iterations += reduced.iterations;
              verified.refactorizations += reduced.refactorizations;
              verified.adaptive_refactorizations += reduced.adaptive_refactorizations;
              verified.eta_nonzeros += reduced.eta_nonzeros;
              verified.full_pricing_scans += reduced.full_pricing_scans;
              verified.presolve_rows_removed = pre.stats().rows_removed;
              verified.presolve_vars_removed = pre.stats().vars_removed;
              result = std::move(verified);
              solved = true;
            } else {
              basis_valid_ = false;  // Fall through to the plain cold solve.
            }
          }
        }
        // Iteration-limit / numerical verdicts on the reduction fall through
        // to the plain cold path rather than guessing.
      }
    }
  }
  if (!solved) {
    result = SolveDirect(model, overrides);
  }
  RecordLpMetrics(result);
  return result;
}

LpResult SimplexSolver::SolveDirect(const Model& model,
                                    const std::vector<BoundOverride>& overrides) {
  basis_valid_ = false;
  BuildColumns(model, overrides);
  // Reject empty-range variables early (branching can create lb > ub).
  for (int32_t j = 0; j < total_; ++j) {
    if (lb_[j] > ub_[j]) {
      LpResult result;
      result.status = LpStatus::kInfeasible;
      return result;
    }
  }
  InitializeBasis();
  LpResult result = RunSimplex(model);
  if (result.status == LpStatus::kOptimal) {
    basis_valid_ = true;
    prepared_rows_ = model.num_rows();
    prepared_vars_ = model.num_variables();
    prepared_nonzeros_ = model.num_nonzeros();
  }
  return result;
}

LpResult SimplexSolver::ResolveWithBasis(const Model& model,
                                         const std::vector<BoundOverride>& overrides) {
  if (!basis_valid_ || prepared_rows_ != model.num_rows() ||
      prepared_vars_ != model.num_variables() || prepared_nonzeros_ != model.num_nonzeros()) {
    return Solve(model, overrides);
  }
  RefreshBounds(model, overrides);
  for (int32_t j = 0; j < total_; ++j) {
    if (lb_[j] > ub_[j]) {
      LpResult result;
      result.status = LpStatus::kInfeasible;
      return result;  // Retained basis stays valid for the next resolve.
    }
  }
  // Re-snap nonbasic variables onto their (possibly moved) bounds; the basis
  // matrix is untouched, so binv_ remains exact.
  for (int32_t j = 0; j < total_; ++j) {
    switch (status_[j]) {
      case ColStatus::kBasic:
        break;
      case ColStatus::kAtLower:
        if (std::isfinite(lb_[j])) {
          value_[j] = lb_[j];
        } else if (std::isfinite(ub_[j])) {
          status_[j] = ColStatus::kAtUpper;
          value_[j] = ub_[j];
        } else {
          status_[j] = ColStatus::kFree;
          value_[j] = 0.0;
        }
        break;
      case ColStatus::kAtUpper:
        if (std::isfinite(ub_[j])) {
          value_[j] = ub_[j];
        } else if (std::isfinite(lb_[j])) {
          status_[j] = ColStatus::kAtLower;
          value_[j] = lb_[j];
        } else {
          status_[j] = ColStatus::kFree;
          value_[j] = 0.0;
        }
        break;
      case ColStatus::kFree:
        break;
    }
  }
  ComputeBasicValues();
  // Dual warm re-solve: a bound/RHS-only change leaves the old optimal basis
  // dual-feasible (costs did not move, so neither did the duals), and the
  // dual kernel restores primal feasibility in a handful of pivots instead of
  // the primal phase-1/phase-2 grind. The primal loop below still runs as the
  // verifier — from a dual-optimal basis it terminates after one full pricing
  // scan — so a dual-side stall or budget exhaustion costs nothing but the
  // pivots already taken.
  LpResult dual_accum;
  bool used_dual = false;
  if (options_.dual_resolve && TotalInfeasibility() > options_.feasibility_tol &&
      DualFeasibleBasis(options_.optimality_tol)) {
    used_dual = true;
    if (!RunDualSimplex(&dual_accum)) {
      // Basis inverse broke down mid-flight: rebuild from scratch.
      return Solve(model, overrides);
    }
  }
  LpResult result = RunSimplex(model);
  result.used_dual_simplex = used_dual;
  result.dual_iterations += dual_accum.dual_iterations;
  result.refactorizations += dual_accum.refactorizations;
  result.adaptive_refactorizations += dual_accum.adaptive_refactorizations;
  result.eta_nonzeros += dual_accum.eta_nonzeros;
  basis_valid_ = result.status == LpStatus::kOptimal;
  RecordLpMetrics(result);
  return result;
}

SimplexBasis SimplexSolver::ExportBasis() const {
  SimplexBasis out;
  if (!basis_valid_) {
    return out;
  }
  out.basic = basis_;
  out.status.resize(status_.size());
  for (size_t j = 0; j < status_.size(); ++j) {
    out.status[j] = static_cast<uint8_t>(status_[j]);
  }
  out.rows = prepared_rows_;
  out.vars = prepared_vars_;
  out.nonzeros = prepared_nonzeros_;
  return out;
}

bool SimplexSolver::ImportBasis(const Model& model, const SimplexBasis& basis) {
  return ImportBasisInternal(model, basis, {});
}

bool SimplexSolver::ImportBasisInternal(const Model& model, const SimplexBasis& basis,
                                        const std::vector<BoundOverride>& overrides) {
  basis_valid_ = false;
  if (basis.empty() || basis.rows != model.num_rows() || basis.vars != model.num_variables() ||
      basis.nonzeros != model.num_nonzeros()) {
    return false;
  }
  BuildColumns(model, overrides);
  if (basis.basic.size() != static_cast<size_t>(m_) ||
      basis.status.size() != static_cast<size_t>(total_)) {
    return false;
  }
  status_.resize(total_);
  for (int32_t j = 0; j < total_; ++j) {
    if (basis.status[j] > static_cast<uint8_t>(ColStatus::kFree)) {
      return false;
    }
    status_[j] = static_cast<ColStatus>(basis.status[j]);
  }
  basis_ = basis.basic;
  basis_pos_.assign(total_, -1);
  for (int32_t pos = 0; pos < m_; ++pos) {
    int32_t col = basis_[pos];
    if (col < 0 || col >= total_ || basis_pos_[col] != -1 || status_[col] != ColStatus::kBasic) {
      return false;  // Out-of-range, duplicate, or status-inconsistent entry.
    }
    basis_pos_[col] = pos;
  }
  // Nonbasic columns sit on the bound their status claims; statuses pointing
  // at an infinite bound (the model's bounds moved under the snapshot) are
  // re-snapped the same way a cold start would place them.
  value_.assign(total_, 0.0);
  for (int32_t j = 0; j < total_; ++j) {
    switch (status_[j]) {
      case ColStatus::kBasic:
        break;
      case ColStatus::kAtLower:
        if (std::isfinite(lb_[j])) {
          value_[j] = lb_[j];
        } else if (std::isfinite(ub_[j])) {
          status_[j] = ColStatus::kAtUpper;
          value_[j] = ub_[j];
        } else {
          status_[j] = ColStatus::kFree;
        }
        break;
      case ColStatus::kAtUpper:
        if (std::isfinite(ub_[j])) {
          value_[j] = ub_[j];
        } else if (std::isfinite(lb_[j])) {
          status_[j] = ColStatus::kAtLower;
          value_[j] = lb_[j];
        } else {
          status_[j] = ColStatus::kFree;
        }
        break;
      case ColStatus::kFree:
        break;
    }
  }
  if (!Refactorize()) {
    return false;  // Singular against this model: stay cold, caller re-solves.
  }
  ComputeBasicValues();
  basis_valid_ = true;
  prepared_rows_ = model.num_rows();
  prepared_vars_ = model.num_variables();
  prepared_nonzeros_ = model.num_nonzeros();
  return true;
}

bool SimplexSolver::DualFeasibleBasis(double tol) const {
  // y = cB^T B^-1 with the TRUE costs (row-axpy skipping zero basic costs).
  std::vector<double> y(m_, 0.0);
  for (int32_t pos = 0; pos < m_; ++pos) {
    double c = cost_[basis_[pos]];
    if (c == 0.0) {
      continue;
    }
    const double* row = &binv_[static_cast<size_t>(pos) * m_];
    for (int32_t i = 0; i < m_; ++i) {
      y[i] += c * row[i];
    }
  }
  for (int32_t j = 0; j < total_; ++j) {
    if (status_[j] == ColStatus::kBasic || lb_[j] == ub_[j]) {
      continue;  // Fixed columns cannot move: any reduced-cost sign is fine.
    }
    double yaj;
    if (j >= n_) {
      yaj = -y[j - n_];
    } else {
      yaj = 0.0;
      for (int32_t k = csc_starts_[j]; k < csc_starts_[j + 1]; ++k) {
        yaj += y[csc_rows_[k]] * csc_values_[k];
      }
    }
    double d = cost_[j] - yaj;
    switch (status_[j]) {
      case ColStatus::kAtLower:
        if (d < -tol) {
          return false;
        }
        break;
      case ColStatus::kAtUpper:
        if (d > tol) {
          return false;
        }
        break;
      case ColStatus::kFree:
        if (std::fabs(d) > tol) {
          return false;
        }
        break;
      case ColStatus::kBasic:
        break;
    }
  }
  return true;
}

// RASLINT-HOT: the dual simplex pivot loop — nothing here may block.
bool SimplexSolver::RunDualSimplex(LpResult* accum) {
  const double ftol = options_.feasibility_tol;
  const double ptol = std::max(options_.pivot_tol, 1e-10);
  // A bound-only patch perturbs few basic values, so primal feasibility is a
  // few pivots away; a conservative budget keeps a degenerate tail from ever
  // costing more than the cold solve the caller would otherwise run.
  const int64_t max_iters = 50 + 2LL * m_;

  std::vector<double> y(m_);
  std::vector<double> alpha_col(m_);
  std::vector<int32_t> alpha_nz;
  alpha_nz.reserve(m_);
  int pivots_since_refactor = 0;
  double eta_fill = 0.0;

  for (int64_t iter = 0; iter < max_iters; ++iter) {
    // --- Leaving: the most primal-violated basic position. ---
    int32_t leaving_pos = -1;
    double worst = ftol;
    bool above = false;
    for (int32_t pos = 0; pos < m_; ++pos) {
      int32_t col = basis_[pos];
      double x = value_[col];
      if (lb_[col] - x > worst) {
        worst = lb_[col] - x;
        leaving_pos = pos;
        above = false;
      }
      if (x - ub_[col] > worst) {
        worst = x - ub_[col];
        leaving_pos = pos;
        above = true;
      }
    }
    if (leaving_pos < 0) {
      return true;  // Primal feasible: the primal verifier finishes from here.
    }
    ++accum->dual_iterations;

    // The BTRAN row for the leaving position is a row of the dense inverse —
    // free with an explicit B^-1. Reduced costs are re-priced from scratch
    // each pivot (same row-axpy as the primal loop) rather than updated
    // incrementally; at this iteration budget, exactness beats bookkeeping.
    const double* rho_row = &binv_[static_cast<size_t>(leaving_pos) * m_];
    std::fill(y.begin(), y.end(), 0.0);
    for (int32_t pos = 0; pos < m_; ++pos) {
      double c = cost_[basis_[pos]];
      if (c == 0.0) {
        continue;
      }
      const double* row = &binv_[static_cast<size_t>(pos) * m_];
      for (int32_t i = 0; i < m_; ++i) {
        y[i] += c * row[i];
      }
    }

    // --- Bounded-variable dual ratio test. The leaving variable moves to its
    // violated bound; entering j must move the right way, which fixes the
    // sign of alpha_rj per status. Min |d_j / alpha_rj| keeps every other
    // reduced cost on the legal side; ties prefer the larger pivot. ---
    int32_t entering = -1;
    double best_ratio = kInf;
    double best_mag = 0.0;
    for (int32_t j = 0; j < total_; ++j) {
      if (status_[j] == ColStatus::kBasic || lb_[j] == ub_[j]) {
        continue;
      }
      double arj;
      double yaj;
      if (j >= n_) {
        arj = -rho_row[j - n_];
        yaj = -y[j - n_];
      } else {
        arj = 0.0;
        yaj = 0.0;
        for (int32_t k = csc_starts_[j]; k < csc_starts_[j + 1]; ++k) {
          int32_t r = csc_rows_[k];
          double v = csc_values_[k];
          arj += rho_row[r] * v;
          yaj += y[r] * v;
        }
      }
      double a_t = above ? arj : -arj;
      bool eligible = (status_[j] == ColStatus::kAtLower && a_t > ptol) ||
                      (status_[j] == ColStatus::kAtUpper && a_t < -ptol) ||
                      (status_[j] == ColStatus::kFree && std::fabs(a_t) > ptol);
      if (!eligible) {
        continue;
      }
      double ratio = (cost_[j] - yaj) / a_t;
      if (ratio < 0.0) {
        ratio = 0.0;  // Tolerance dust on a dual-degenerate column.
      }
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && std::fabs(arj) > best_mag)) {
        best_ratio = ratio;
        best_mag = std::fabs(arj);
        entering = j;
      }
    }
    if (entering < 0) {
      // No column can absorb the violation. Keep the basis untouched and let
      // the primal phase 1 certify infeasibility (or finish) properly.
      return true;
    }

    Ftran(entering, alpha_col, &alpha_nz);
    double pivot = alpha_col[leaving_pos];
    if (std::fabs(pivot) < ptol) {
      // FTRAN disagrees with the BTRAN row: the inverse has drifted. Bail to
      // the primal verifier, which starts with its own clean refactorization.
      return true;
    }

    // --- Primal step: leaving lands exactly on its violated bound; the
    // entering variable may overshoot its own far bound and stay basic there
    // (the simple variant — later pivots or the verifier clean it up). ---
    int32_t leaving_col = basis_[leaving_pos];
    double target = above ? ub_[leaving_col] : lb_[leaving_col];
    double delta = (value_[leaving_col] - target) / pivot;
    for (int32_t pos : alpha_nz) {
      value_[basis_[pos]] -= alpha_col[pos] * delta;
    }
    value_[entering] += delta;
    value_[leaving_col] = target;

    status_[leaving_col] = above ? ColStatus::kAtUpper : ColStatus::kAtLower;
    basis_pos_[leaving_col] = -1;
    basis_[leaving_pos] = entering;
    basis_pos_[entering] = leaving_pos;
    status_[entering] = ColStatus::kBasic;

    // Product-form eta update, identical cadence to the primal loop.
    double* pivot_row = &binv_[static_cast<size_t>(leaving_pos) * m_];
    double inv_pivot = 1.0 / pivot;
    for (int32_t i = 0; i < m_; ++i) {
      pivot_row[i] *= inv_pivot;
    }
    for (int32_t pos : alpha_nz) {
      if (pos == leaving_pos) {
        continue;
      }
      double factor = alpha_col[pos];
      double* row = &binv_[static_cast<size_t>(pos) * m_];
      for (int32_t i = 0; i < m_; ++i) {
        row[i] -= factor * pivot_row[i];
      }
    }
    eta_fill += static_cast<double>(alpha_nz.size());
    accum->eta_nonzeros += static_cast<int64_t>(alpha_nz.size());
    ++etas_since_refactor_;

    bool need_refactor = ++pivots_since_refactor >= options_.refactor_interval;
    bool adaptive = false;
    if (!need_refactor) {
      if (eta_fill > options_.eta_growth_limit * static_cast<double>(m_)) {
        need_refactor = true;
        adaptive = true;
      } else if (std::fabs(pivot) < options_.drift_refactor_tol * (1.0 + best_mag)) {
        need_refactor = true;
        adaptive = true;
      }
    }
    if (need_refactor) {
      pivots_since_refactor = 0;
      eta_fill = 0.0;
      ++accum->refactorizations;
      if (adaptive) {
        ++accum->adaptive_refactorizations;
      }
      if (!Refactorize()) {
        return false;  // Caller falls back to a cold solve.
      }
      ComputeBasicValues();
    }
  }
  return true;  // Budget exhausted; the primal verifier finishes the job.
}

// RASLINT-HOT: the simplex inner iteration — nothing here may block.
LpResult SimplexSolver::RunSimplex(const Model& model) {
  LpResult result;
  const double ftol = options_.feasibility_tol;
  const double dtol = options_.optimality_tol;
  const bool sparse = options_.use_sparse_kernels;
  int64_t max_iters = options_.max_iterations > 0
                          ? options_.max_iterations
                          : 200 + 40LL * (static_cast<int64_t>(m_) + total_);

  std::vector<double> y(m_);        // Pricing duals.
  std::vector<double> alpha(m_);    // FTRAN result.
  std::vector<int32_t> alpha_nz;    // FTRAN nonzero positions (sparse path).
  alpha_nz.reserve(m_);
  std::vector<double> cb(m_);       // Basic costs for the current phase.
  std::vector<int32_t> candidates;  // Partial-pricing candidate list.
  std::vector<std::pair<double, int32_t>> scored;  // Full-scan scratch.
  bool refresh_candidates = true;
  bool have_phase = false;
  bool last_phase1 = false;
  int degenerate_run = 0;
  bool bland = false;
  int pivots_since_refactor = 0;
  double eta_fill = 0.0;  // Nonzeros pushed through eta updates since refactor.

  int64_t iter = 0;
  for (; iter < max_iters; ++iter) {
    // --- Phase selection: any basic bound violation => phase 1 pricing. ---
    bool phase1 = false;
    for (int32_t pos = 0; pos < m_; ++pos) {
      int32_t col = basis_[pos];
      double x = value_[col];
      if (x < lb_[col] - ftol || x > ub_[col] + ftol) {
        phase1 = true;
        break;
      }
    }
    if (!have_phase || phase1 != last_phase1) {
      // The phase objective changed; candidate reduced costs are stale.
      refresh_candidates = true;
      have_phase = true;
      last_phase1 = phase1;
    }

    // --- Pricing: y = cB^T B^-1, then reduced costs per nonbasic column. ---
    for (int32_t pos = 0; pos < m_; ++pos) {
      int32_t col = basis_[pos];
      if (phase1) {
        double x = value_[col];
        if (x > ub_[col] + ftol) {
          cb[pos] = 1.0;
        } else if (x < lb_[col] - ftol) {
          cb[pos] = -1.0;
        } else {
          cb[pos] = 0.0;
        }
      } else {
        cb[pos] = cost_[col];
      }
    }
    if (sparse) {
      // BTRAN as row-axpy: skip every basic position with zero phase cost. In
      // phase 2, most basic columns are zero-cost slacks/auxiliaries, so this
      // is O(nnz(cb) * m) instead of O(m^2).
      std::fill(y.begin(), y.end(), 0.0);
      for (int32_t pos = 0; pos < m_; ++pos) {
        double c = cb[pos];
        if (c == 0.0) {
          continue;
        }
        const double* row = &binv_[static_cast<size_t>(pos) * m_];
        for (int32_t i = 0; i < m_; ++i) {
          y[i] += c * row[i];
        }
      }
    } else {
      for (int32_t i = 0; i < m_; ++i) {
        double sum = 0.0;
        for (int32_t pos = 0; pos < m_; ++pos) {
          if (cb[pos] != 0.0) {
            sum += cb[pos] * binv_[static_cast<size_t>(pos) * m_ + i];
          }
        }
        y[i] = sum;
      }
    }

    // Reduced-cost pricing of one column: returns its violation (0 when not
    // an improving direction) and the movement direction.
    auto price = [&](int32_t j, int* dir) -> double {
      double cj = phase1 ? 0.0 : cost_[j];
      double yaj;
      if (j >= n_) {
        yaj = -y[j - n_];
      } else {
        yaj = 0.0;
        for (int32_t k = csc_starts_[j]; k < csc_starts_[j + 1]; ++k) {
          yaj += y[csc_rows_[k]] * csc_values_[k];
        }
      }
      double d = cj - yaj;
      *dir = 0;
      if (status_[j] == ColStatus::kAtLower && d < -dtol) {
        *dir = +1;
        return -d;
      }
      if (status_[j] == ColStatus::kAtUpper && d > dtol) {
        *dir = -1;
        return d;
      }
      if (status_[j] == ColStatus::kFree && std::fabs(d) > dtol) {
        *dir = d < 0 ? +1 : -1;
        return std::fabs(d);
      }
      return 0.0;
    };

    int32_t entering = -1;
    int entering_dir = 0;

    auto full_scan = [&]() {
      ++result.full_pricing_scans;
      double best_violation = dtol;
      scored.clear();
      for (int32_t j = 0; j < total_; ++j) {
        if (status_[j] == ColStatus::kBasic || lb_[j] == ub_[j]) {
          continue;
        }
        int dir = 0;
        double violation = price(j, &dir);
        if (dir == 0) {
          continue;
        }
        if (bland) {
          entering = j;  // Bland: first eligible index.
          entering_dir = dir;
          return;
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = j;
          entering_dir = dir;
        }
        if (sparse) {
          scored.push_back({violation, j});
        }
      }
      if (sparse && !bland) {
        // Keep the most violated columns as the next candidate list.
        size_t keep = std::min(scored.size(),
                               static_cast<size_t>(std::max(1, options_.pricing_candidates)));
        std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                          [](const auto& a, const auto& b) { return a.first > b.first; });
        candidates.clear();
        for (size_t k = 0; k < keep; ++k) {
          candidates.push_back(scored[k].second);
        }
      }
    };

    if (!sparse || bland) {
      full_scan();
    } else if (refresh_candidates || candidates.empty() ||
               (options_.pricing_refresh_interval > 0 &&
                iter % options_.pricing_refresh_interval == 0)) {
      full_scan();
      refresh_candidates = false;
    } else {
      // Partial pricing: re-price only the candidate list, dropping entries
      // that stopped being improving directions.
      double best_violation = dtol;
      size_t w = 0;
      for (int32_t j : candidates) {
        if (status_[j] == ColStatus::kBasic || lb_[j] == ub_[j]) {
          continue;
        }
        int dir = 0;
        double violation = price(j, &dir);
        if (dir == 0) {
          continue;
        }
        candidates[w++] = j;
        if (violation > best_violation) {
          best_violation = violation;
          entering = j;
          entering_dir = dir;
        }
      }
      candidates.resize(w);
      if (entering < 0) {
        // Candidates exhausted; only a full scan may declare optimality.
        full_scan();
        refresh_candidates = false;
      }
    }

    if (entering < 0) {
      // No improving direction for the current phase objective. On the sparse
      // path this is only ever reached after a full scan, so the optimality /
      // infeasibility claim has the same strength as the dense reference.
      if (phase1) {
        result.status = LpStatus::kInfeasible;
        result.iterations = iter;
        return result;
      }
      break;  // Optimal.
    }

    Ftran(entering, alpha, sparse ? &alpha_nz : nullptr);

    // --- Ratio test. Basic k changes at rate -dir * alpha_k per unit of the
    // entering variable's movement. In phase 1, an infeasible basic blocks
    // only when it reaches the bound it is violating (a gradient breakpoint);
    // a feasible basic blocks at whichever bound it is moving toward. ---
    double best_step = kInf;
    int32_t leaving_pos = -1;
    double leaving_target = 0.0;
    double best_pivot_mag = 0.0;
    auto ratio_test = [&](int32_t pos) {
      double a = alpha[pos];
      if (std::fabs(a) < options_.pivot_tol) {
        return;
      }
      double rate = -static_cast<double>(entering_dir) * a;
      int32_t col = basis_[pos];
      double x = value_[col];
      bool below = x < lb_[col] - ftol;
      bool above = x > ub_[col] + ftol;
      double target;
      if (rate > 0) {
        if (below) {
          target = lb_[col];
        } else if (above) {
          return;  // Moving further above; linear phase-1 cost, no breakpoint.
        } else if (std::isfinite(ub_[col])) {
          target = ub_[col];
        } else {
          return;
        }
      } else {
        if (above) {
          target = ub_[col];
        } else if (below) {
          return;
        } else if (std::isfinite(lb_[col])) {
          target = lb_[col];
        } else {
          return;
        }
      }
      double step = (target - x) / rate;
      if (step < -ftol) {
        step = 0.0;  // Tolerance-degenerate blocker.
      }
      if (step < best_step - 1e-12 ||
          (step < best_step + 1e-12 && std::fabs(a) > best_pivot_mag)) {
        best_step = std::max(step, 0.0);
        leaving_pos = pos;
        leaving_target = target;
        best_pivot_mag = std::fabs(a);
      }
    };
    if (sparse) {
      for (int32_t pos : alpha_nz) {
        ratio_test(pos);
      }
    } else {
      for (int32_t pos = 0; pos < m_; ++pos) {
        ratio_test(pos);
      }
    }

    // Entering variable's own bound range can also limit the step.
    double own_range = ub_[entering] - lb_[entering];
    bool own_blocks = false;
    if (std::isfinite(own_range) && own_range < best_step) {
      best_step = own_range;
      own_blocks = true;
    }

    if (!own_blocks && leaving_pos < 0) {
      result.status = phase1 ? LpStatus::kNumericalFailure : LpStatus::kUnbounded;
      result.iterations = iter;
      return result;
    }

    double step = best_step;
    if (step < ftol) {
      ++degenerate_run;
      if (degenerate_run > options_.bland_trigger) {
        bland = true;
      }
    } else {
      degenerate_run = 0;
      bland = false;
    }

    // --- Apply the move. ---
    double delta = static_cast<double>(entering_dir) * step;
    if (delta != 0.0) {
      if (sparse) {
        for (int32_t pos : alpha_nz) {
          value_[basis_[pos]] -= alpha[pos] * delta;
        }
      } else {
        for (int32_t pos = 0; pos < m_; ++pos) {
          if (alpha[pos] != 0.0) {
            value_[basis_[pos]] -= alpha[pos] * delta;
          }
        }
      }
      value_[entering] += delta;
    }

    if (own_blocks) {
      // Bound flip: the entering variable traverses its whole range; the
      // basis is unchanged.
      status_[entering] =
          entering_dir > 0 ? ColStatus::kAtUpper : ColStatus::kAtLower;
      value_[entering] = entering_dir > 0 ? ub_[entering] : lb_[entering];
      continue;
    }

    // Pivot: basic at leaving_pos leaves at its blocking bound.
    int32_t leaving_col = basis_[leaving_pos];
    value_[leaving_col] = leaving_target;
    status_[leaving_col] =
        (leaving_target == lb_[leaving_col]) ? ColStatus::kAtLower : ColStatus::kAtUpper;
    basis_pos_[leaving_col] = -1;

    basis_[leaving_pos] = entering;
    basis_pos_[entering] = leaving_pos;
    status_[entering] = ColStatus::kBasic;

    // Product-form update of the dense inverse: row ops with the eta column.
    double pivot = alpha[leaving_pos];
    double* pivot_row = &binv_[static_cast<size_t>(leaving_pos) * m_];
    double inv_pivot = 1.0 / pivot;
    for (int32_t i = 0; i < m_; ++i) {
      pivot_row[i] *= inv_pivot;
    }
    if (sparse) {
      for (int32_t pos : alpha_nz) {
        if (pos == leaving_pos) {
          continue;
        }
        double factor = alpha[pos];
        double* row = &binv_[static_cast<size_t>(pos) * m_];
        for (int32_t i = 0; i < m_; ++i) {
          row[i] -= factor * pivot_row[i];
        }
      }
      eta_fill += static_cast<double>(alpha_nz.size());
      result.eta_nonzeros += static_cast<int64_t>(alpha_nz.size());
    } else {
      int64_t touched = 0;
      for (int32_t pos = 0; pos < m_; ++pos) {
        if (pos == leaving_pos || alpha[pos] == 0.0) {
          continue;
        }
        double factor = alpha[pos];
        double* row = &binv_[static_cast<size_t>(pos) * m_];
        for (int32_t i = 0; i < m_; ++i) {
          row[i] -= factor * pivot_row[i];
        }
        ++touched;
      }
      eta_fill += static_cast<double>(touched + 1);
      result.eta_nonzeros += touched + 1;
    }
    ++etas_since_refactor_;

    bool need_refactor = ++pivots_since_refactor >= options_.refactor_interval;
    bool adaptive = false;
    if (sparse && !need_refactor) {
      // Adaptive cadence: refactor early once the accumulated eta fill-in
      // rivals the O(m^2) of a rebuild's payoff, or when a small pivot
      // (relative to its column) signals the inverse is drifting.
      if (eta_fill > options_.eta_growth_limit * static_cast<double>(m_)) {
        need_refactor = true;
        adaptive = true;
      } else if (std::fabs(pivot) <
                 options_.drift_refactor_tol * (1.0 + best_pivot_mag)) {
        need_refactor = true;
        adaptive = true;
      }
    }
    if (need_refactor) {
      pivots_since_refactor = 0;
      eta_fill = 0.0;
      ++result.refactorizations;
      if (adaptive) {
        ++result.adaptive_refactorizations;
      }
      if (!Refactorize()) {
        result.status = LpStatus::kNumericalFailure;
        result.iterations = iter;
        return result;
      }
      ComputeBasicValues();
    }
  }

  if (iter >= max_iters) {
    result.status = LpStatus::kIterationLimit;
    result.iterations = iter;
    return result;
  }

  // Clean pass: refactorize and recompute values to wash out inverse drift,
  // then verify primal feasibility of the claimed optimum. A warm re-solve
  // that took only a handful of pivots since the last rebuild carries
  // negligible drift — far under what the in-loop adaptive cadence tolerates
  // between rebuilds — so the O(m^3) refactorization is skipped when the
  // feasibility check already passes on the current inverse. This is what
  // keeps a one-pivot dual re-solve cheaper than the model rebuild it avoids.
  bool clean = options_.clean_pass_eta_limit > 0 &&
               etas_since_refactor_ <= options_.clean_pass_eta_limit &&
               TotalInfeasibility() <= 1e-5;
  if (!clean) {
    ++result.refactorizations;
    if (!Refactorize()) {
      result.status = LpStatus::kNumericalFailure;
      result.iterations = iter;
      return result;
    }
    ComputeBasicValues();
    if (TotalInfeasibility() > 1e-5) {
      result.status = LpStatus::kNumericalFailure;
      result.iterations = iter;
      return result;
    }
  }

  result.status = LpStatus::kOptimal;
  result.iterations = iter;
  result.x.resize(n_);
  for (int32_t j = 0; j < n_; ++j) {
    result.x[j] = value_[j];
  }
  result.objective = model.Objective(result.x);
  // Final duals priced with the true costs (row-axpy; cost_ is sparse over
  // the basis in both kernel modes).
  result.duals.assign(m_, 0.0);
  for (int32_t pos = 0; pos < m_; ++pos) {
    double c = cost_[basis_[pos]];
    if (c == 0.0) {
      continue;
    }
    const double* row = &binv_[static_cast<size_t>(pos) * m_];
    for (int32_t i = 0; i < m_; ++i) {
      result.duals[i] += c * row[i];
    }
  }
  return result;
}

}  // namespace ras
