// LP presolve / postsolve.
//
// Shrinks a Model before the simplex runs — removing fixed variables and
// empty rows, folding singleton rows into variable bounds, and doing
// conservative activity-based tightening — then maps the reduced solution
// and basis back onto the original model. The reductions are chosen so the
// postsolved basis is exact in the common cases (variables resting on
// original bounds, redundant rows' slacks basic) and merely *good* in the
// rest: SimplexSolver always re-verifies the postsolved basis with a primal
// pass on the full model, so an imperfect postsolve costs pivots, never
// correctness.
//
// The classic reference for this layering is the Andersen & Andersen
// presolve; POP-style model shrinking is what the paper's re-solve loop
// leans on for round-over-round speed.

#ifndef RAS_SRC_SOLVER_PRESOLVE_H_
#define RAS_SRC_SOLVER_PRESOLVE_H_

#include <cstdint>
#include <vector>

#include "src/solver/model.h"
#include "src/solver/simplex.h"

namespace ras {

struct PresolveOptions {
  bool remove_fixed_variables = true;
  bool remove_empty_rows = true;
  bool fold_singleton_rows = true;
  // Activity-based pass, used only for exact reductions: infeasibility
  // detection, redundant-row removal, and pinning a variable to one of its
  // ORIGINAL bounds. Non-pinning tightened bounds are not adopted — they
  // would make the postsolved basis inexact for no model-size gain.
  bool tighten_bounds = true;
  double tol = 1e-9;
  int max_passes = 4;
  // Reduce() reports failure (caller solves the original model) unless at
  // least this many rows + variables were removed.
  int min_reduction = 1;
};

struct PresolveStats {
  int32_t rows_removed = 0;
  int32_t vars_removed = 0;
  int32_t singleton_rows_folded = 0;
  int32_t bounds_tightened = 0;
  // Proven infeasible by an exact reduction (crossed bounds, empty row with
  // 0 outside its range, conflicting activity bounds) — no pivots needed.
  bool infeasible = false;
};

// One Reduce() call's worth of presolve state: the reduced model plus the
// maps needed to restore full-length primal points and bases.
class PresolvedLp {
 public:
  // Reduces `model` viewed through `overrides`. Returns true when the caller
  // should act on the reduction: either stats().infeasible is set, or
  // reduced() holds a strictly smaller model. Returns false when nothing
  // (or too little, per min_reduction) could be removed.
  bool Reduce(const Model& model, const std::vector<BoundOverride>& overrides,
              const PresolveOptions& options);

  const Model& reduced() const { return reduced_; }
  const PresolveStats& stats() const { return stats_; }

  // Full-length primal point: reduced values for surviving variables, the
  // substituted value for removed ones.
  std::vector<double> RestorePrimal(const std::vector<double>& reduced_x) const;

  // Full-model basis from a reduced-model basis: surviving columns copy
  // their status, removed variables rest at their substitution bound,
  // dropped rows' slacks go basic, and singleton folds pivot the folded
  // variable into the fold row when it rests on a bound the original model
  // does not have. Returns an empty basis (import will fail, caller falls
  // back) when the reduced basis does not match the reduction's shape.
  SimplexBasis RestoreBasis(const SimplexBasis& reduced_basis) const;

 private:
  // A singleton row a * x[var] in [row_lb, row_ub], folded into x's bounds
  // as [lo, hi] (the implied interval at fold time, after any earlier
  // fixed-variable substitutions into that row's bounds).
  struct SingletonFold {
    int32_t row;
    int32_t var;
    double coeff;
    double lo;
    double hi;
  };

  Model reduced_;
  PresolveStats stats_;

  int32_t n0_ = 0;  // Full model dimensions (fingerprint for RestoreBasis).
  int32_t m0_ = 0;
  size_t nnz0_ = 0;
  int32_t reduced_n_ = 0;
  int32_t reduced_m_ = 0;

  std::vector<int32_t> var_map_;      // Full var -> reduced var, or -1.
  std::vector<int32_t> row_map_;      // Full row -> reduced row, or -1.
  std::vector<int32_t> alive_vars_;   // Reduced var -> full var.
  std::vector<int32_t> alive_rows_;   // Reduced row -> full row.
  std::vector<double> fixed_value_;   // Removed vars' substituted value.
  std::vector<uint8_t> fixed_status_;  // Removed vars' postsolve status.
  std::vector<double> vlb0_, vub0_;   // Original (override-applied) bounds.
  std::vector<double> vlbf_, vubf_;   // Final bounds after folds/pins.
  std::vector<SingletonFold> folds_;
  double tol_ = 1e-9;
};

}  // namespace ras

#endif  // RAS_SRC_SOLVER_PRESOLVE_H_
