#include "src/broker/resource_broker.h"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.h"

namespace ras {

bool IsUnplanned(Unavailability u) {
  return u == Unavailability::kUnplannedSoftware || u == Unavailability::kUnplannedHardware;
}

ResourceBroker::ResourceBroker(const RegionTopology* topology) : topology_(topology) {
  assert(topology != nullptr && topology->finalized());
  records_.resize(topology->num_servers());
  auto& free_pool = by_reservation_[kUnassigned];
  free_pool.reserve(records_.size());
  for (ServerId id = 0; id < records_.size(); ++id) {
    records_[id].server = id;
    free_pool.push_back(id);
  }
}

void ResourceBroker::SetTarget(ServerId id, ReservationId target) {
  ServerRecord& r = records_[id];
  if (r.target == target) {
    return;
  }
  r.target = target;
  ++r.version;
  Notify(id);
}

Status ResourceBroker::TrySetTarget(ServerId id, ReservationId target) {
  if (write_fault_hook_ && write_fault_hook_(id, target)) {
    ++failed_writes_;
    static obs::Counter& failed = obs::MetricRegistry::Default().counter(
        "ras_broker_failed_writes_total", "Target writes rejected by the (simulated) store.");
    failed.Add();
    return Status::Unavailable("broker target write failed for server " + std::to_string(id));
  }
  SetTarget(id, target);
  return Status::Ok();
}

Status ResourceBroker::ApplyTargets(
    const std::vector<std::pair<ServerId, ReservationId>>& targets) {
  std::vector<std::pair<ServerId, ReservationId>> undo;
  undo.reserve(targets.size());
  for (const auto& [server, res] : targets) {
    ReservationId previous = records_[server].target;
    Status status = TrySetTarget(server, res);
    if (!status.ok()) {
      // Roll back what this batch already wrote. The rollback itself is a
      // local undo of uncommitted state, not a replicated write, so it
      // bypasses the fault hook and cannot fail.
      for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        SetTarget(it->first, it->second);
      }
      static obs::Counter& rollbacks = obs::MetricRegistry::Default().counter(
          "ras_broker_rollbacks_total", "Target batches rolled back on a failed write.");
      rollbacks.Add();
      return status;
    }
    undo.emplace_back(server, previous);
  }
  return Status::Ok();
}

void ResourceBroker::SetCurrent(ServerId id, ReservationId current) {
  ServerRecord& r = records_[id];
  if (r.current == current) {
    return;
  }
  IndexRemove(r.current, id);
  r.current = current;
  IndexAdd(current, id);
  ++r.version;
  Notify(id);
}

void ResourceBroker::SetElasticLoan(ServerId id, ReservationId home, bool loaned) {
  ServerRecord& r = records_[id];
  r.home = home;
  r.elastic_loan = loaned;
  ++r.version;
  Notify(id);
}

void ResourceBroker::SetUnavailability(ServerId id, Unavailability u) {
  ServerRecord& r = records_[id];
  if (r.unavailability == u) {
    return;
  }
  r.unavailability = u;
  ++r.version;
  Notify(id);
}

void ResourceBroker::SetHasContainers(ServerId id, bool has) {
  ServerRecord& r = records_[id];
  if (r.has_containers == has) {
    return;
  }
  r.has_containers = has;
  ++r.version;
  Notify(id);
}

const std::vector<ServerId>& ResourceBroker::ServersInReservation(
    ReservationId reservation) const {
  auto it = by_reservation_.find(reservation);
  return it == by_reservation_.end() ? empty_ : it->second;
}

size_t ResourceBroker::CountInReservation(ReservationId reservation) const {
  return ServersInReservation(reservation).size();
}

std::vector<ServerId> ResourceBroker::PendingMoves() const {
  std::vector<ServerId> pending;
  for (const ServerRecord& r : records_) {
    if (r.current != r.target) {
      pending.push_back(r.server);
    }
  }
  return pending;
}

int ResourceBroker::Subscribe(Watcher watcher) {
  int handle = next_watcher_++;
  watchers_[handle] = std::move(watcher);
  return handle;
}

void ResourceBroker::Unsubscribe(int handle) { watchers_.erase(handle); }

void ResourceBroker::Notify(ServerId id) {
  BumpGeneration();
  {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    static obs::Counter& bumps = reg.counter("ras_broker_generation_bumps_total",
                                             "Store-wide generation bumps (record mutations).");
    static obs::Gauge& generation_gauge =
        reg.gauge("ras_broker_generation", "Current broker generation.");
    bumps.Add();
    generation_gauge.Set(static_cast<double>(generation()));
  }
  // watchers_ is an ordered map: independent watchers see changes in handle
  // order, so replaying a scenario notifies them identically every run.
  for (auto& [handle, watcher] : watchers_) {
    watcher(records_[id]);
  }
}

void ResourceBroker::IndexRemove(ReservationId reservation, ServerId id) {
  auto it = by_reservation_.find(reservation);
  if (it == by_reservation_.end()) {
    return;
  }
  auto& vec = it->second;
  auto pos = std::find(vec.begin(), vec.end(), id);
  if (pos != vec.end()) {
    *pos = vec.back();
    vec.pop_back();
  }
}

void ResourceBroker::IndexAdd(ReservationId reservation, ServerId id) {
  by_reservation_[reservation].push_back(id);
}

}  // namespace ras
