// Resource Broker: the region's source of truth for server-to-reservation
// bindings (Figure 6, bottom).
//
// Each server carries a *current* binding (what the Online Mover has
// materialized), a *target* binding (the Async Solver's latest intent), an
// unavailability field maintained by the Health Check Service, and elastic
// loan state. Watchers (the Twine allocator and Online Mover in production)
// subscribe to record changes.
//
// The production broker is highly-available replicated storage; durability is
// orthogonal to the allocation behaviour reproduced here, so this is a
// versioned in-memory store with the same interface shape.

#ifndef RAS_SRC_BROKER_RESOURCE_BROKER_H_
#define RAS_SRC_BROKER_RESOURCE_BROKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/topology/topology.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace ras {

using ReservationId = uint32_t;
inline constexpr ReservationId kUnassigned = 0xffffffff;

enum class Unavailability : uint8_t {
  kNone = 0,
  kPlannedMaintenance,   // Usable capacity for solver purposes (Section 3.5.1).
  kUnplannedSoftware,    // Short-lived software failure.
  kUnplannedHardware,    // Long-lived hardware failure / repair.
};

bool IsUnplanned(Unavailability u);

struct ServerRecord {
  ServerId server = kInvalidServer;
  // Materialized binding: the reservation whose containers may use this
  // server right now. kUnassigned = region free pool.
  ReservationId current = kUnassigned;
  // Solver intent; the Online Mover converges current toward target.
  ReservationId target = kUnassigned;
  // When this server is loaned out as elastic capacity, `home` remembers the
  // guaranteed reservation it must be returned to on revocation.
  ReservationId home = kUnassigned;
  bool elastic_loan = false;
  Unavailability unavailability = Unavailability::kNone;
  // Maintained by the container allocator; feeds the stability objective's
  // in-use / idle movement-cost tiers.
  bool has_containers = false;
  uint64_t version = 0;
};

class ResourceBroker {
 public:
  explicit ResourceBroker(const RegionTopology* topology);

  const RegionTopology& topology() const { return *topology_; }
  size_t num_servers() const { return records_.size(); }
  const ServerRecord& record(ServerId id) const { return records_[id]; }

  // Store-wide mutation counter: bumped on every record change. Snapshot
  // consumers (the solver supervisor) compare generations to detect that the
  // world moved while a solve was in flight. The counter has its own mutex —
  // it is the one broker field a supervisor may poll from another thread
  // while a solve mutates records.
  uint64_t generation() const EXCLUDES(gen_mu_) {
    MutexLock lock(&gen_mu_);
    return generation_;
  }
  // Models an out-of-band mutation (an emergency operator write, a replica
  // catching up) without changing any record; invalidates open snapshots.
  void MarkExternalMutation() EXCLUDES(gen_mu_) { BumpGeneration(); }

  // --- Mutations (bump the record version and notify watchers) ---
  void SetTarget(ServerId id, ReservationId target);
  void SetCurrent(ServerId id, ReservationId current);
  void SetElasticLoan(ServerId id, ReservationId home, bool loaned);
  void SetUnavailability(ServerId id, Unavailability u);
  void SetHasContainers(ServerId id, bool has);

  // --- Fallible target writes (the production broker is replicated storage;
  // --- a write can fail on quorum loss) ---
  // Like SetTarget but subject to the write-fault hook; UNAVAILABLE when the
  // write is rejected, in which case the record is untouched.
  Status TrySetTarget(ServerId id, ReservationId target);
  // Persists a whole solve result atomically with respect to failure: on the
  // first rejected write, every earlier write of this batch is rolled back
  // and UNAVAILABLE is returned — the broker never holds a half-applied
  // target set.
  Status ApplyTargets(const std::vector<std::pair<ServerId, ReservationId>>& targets);

  // Fault injection: when set, TrySetTarget/ApplyTargets consult the hook and
  // fail the write when it returns true. `failed_writes()` counts rejections.
  using WriteFaultHook = std::function<bool(ServerId, ReservationId)>;
  void SetWriteFaultHook(WriteFaultHook hook) { write_fault_hook_ = std::move(hook); }
  size_t failed_writes() const { return failed_writes_; }

  // --- Queries ---
  // Servers currently bound to `reservation` (kUnassigned = free pool).
  const std::vector<ServerId>& ServersInReservation(ReservationId reservation) const;
  size_t CountInReservation(ReservationId reservation) const;
  // All servers whose current != target, i.e. pending Online Mover work.
  std::vector<ServerId> PendingMoves() const;

  // --- Watchers ---
  using Watcher = std::function<void(const ServerRecord&)>;
  int Subscribe(Watcher watcher);
  void Unsubscribe(int handle);

 private:
  void Notify(ServerId id);
  void BumpGeneration() EXCLUDES(gen_mu_) {
    MutexLock lock(&gen_mu_);
    ++generation_;
  }
  void IndexRemove(ReservationId reservation, ServerId id);
  void IndexAdd(ReservationId reservation, ServerId id);

  const RegionTopology* topology_;
  std::vector<ServerRecord> records_;
  // current-binding index; key kUnassigned holds the free pool. Lookup-only
  // (never iterated), so hash ordering cannot leak into any output.
  std::unordered_map<ReservationId, std::vector<ServerId>> by_reservation_;
  // Ordered by handle: Notify() walks this map, and watcher callbacks have
  // side effects (Twine allocator, Online Mover), so the walk order must be
  // deterministic.
  std::map<int, Watcher> watchers_;
  int next_watcher_ = 1;
  std::vector<ServerId> empty_;
  mutable Mutex gen_mu_;
  uint64_t generation_ GUARDED_BY(gen_mu_) = 0;
  WriteFaultHook write_fault_hook_;
  size_t failed_writes_ = 0;
};

}  // namespace ras

#endif  // RAS_SRC_BROKER_RESOURCE_BROKER_H_
