#include "src/obs/metrics.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ras {
namespace obs {

size_t ThisThreadShard() {
  // Round-robin stripe assignment on first use per thread. The counter only
  // moves when a new thread first touches a metric, so the modulo pattern is
  // stable and spreads the pool's workers evenly.
  static std::atomic<size_t> next_slot{0};
  thread_local size_t slot = next_slot.fetch_add(1, std::memory_order_relaxed) % kValueShards;
  return slot;
}

// --- Histogram ---------------------------------------------------------------

namespace {
// Pads a stripe to whole cache lines so two stripes never share one.
size_t StripeStride(size_t buckets) {
  constexpr size_t kPerLine = 64 / sizeof(std::atomic<uint64_t>);
  return (buckets + kPerLine - 1) / kPerLine * kPerLine;
}

[[noreturn]] void DieKindMismatch(const std::string& name, const char* requested) {
  // The write to stderr is the last thing this process does before abort();
  // "blocking on a hot path" is moot when the path ends here.
  std::fprintf(stderr,  // NOLINT(ras-blocking-in-hot-path)
               "MetricRegistry: metric '%s' already registered with a different kind/shape "
               "(requested %s); call sites must agree\n",
               name.c_str(), requested);
  std::abort();
}
}  // namespace

Histogram::Histogram(std::string name, std::string help, double lo, double hi, size_t buckets,
                     const std::atomic<bool>* enabled)
    : name_(std::move(name)),
      help_(std::move(help)),
      lo_(lo),
      hi_(hi),
      buckets_(buckets),
      enabled_(enabled),
      counts_(StripeStride(buckets) * kValueShards),
      stripe_stride_(StripeStride(buckets)) {
  assert(hi > lo && buckets > 0);
  width_ = (hi - lo) / static_cast<double>(buckets);
}

// RASLINT-HOT: record path — called from solver inner loops.
void Histogram::Observe(double x) {
  if (!enabled_->load(std::memory_order_relaxed)) {
    return;
  }
  double offset = (x - lo_) / width_;
  int64_t index = static_cast<int64_t>(std::floor(offset));
  if (index < 0) {
    index = 0;
  }
  if (index >= static_cast<int64_t>(buckets_)) {
    index = static_cast<int64_t>(buckets_) - 1;
  }
  const size_t shard = ThisThreadShard();
  counts_[shard * stripe_stride_ + static_cast<size_t>(index)].fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].value.fetch_add(x, std::memory_order_relaxed);
}

ras::Histogram Histogram::Snapshot() const {
  ras::Histogram merged(lo_, hi_, buckets_);
  for (size_t shard = 0; shard < kValueShards; ++shard) {
    for (size_t b = 0; b < buckets_; ++b) {
      uint64_t n = counts_[shard * stripe_stride_ + b].load(std::memory_order_relaxed);
      if (n > 0) {
        merged.AddCount(b, n);
      }
    }
  }
  return merged;
}

double Histogram::Sum() const {
  double sum = 0.0;
  for (const auto& cell : sums_) {
    sum += cell.value.load(std::memory_order_relaxed);
  }
  return sum;
}

uint64_t Histogram::Count() const {
  uint64_t n = 0;
  for (size_t shard = 0; shard < kValueShards; ++shard) {
    for (size_t b = 0; b < buckets_; ++b) {
      n += counts_[shard * stripe_stride_ + b].load(std::memory_order_relaxed);
    }
  }
  return n;
}

void Histogram::Reset() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  for (auto& s : sums_) {
    s.value.store(0.0, std::memory_order_relaxed);
  }
}

// --- MetricRegistry ----------------------------------------------------------

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();  // Leaked: see header.
  return *registry;
}

Counter& MetricRegistry::counter(const std::string& name, const std::string& help) {
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.counter.reset(new Counter(name, help, &enabled_));
    it = metrics_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kCounter) {
    // [[noreturn]] abort path — blocking on stderr while holding mu_ is fine
    // when the next instruction is std::abort().
    DieKindMismatch(name, "counter");  // NOLINT(ras-blocking-in-hot-path)
  }
  return *it->second.counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, const std::string& help) {
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.gauge.reset(new Gauge(name, help, &enabled_));
    it = metrics_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kGauge) {
    // [[noreturn]] abort path, as above.
    DieKindMismatch(name, "gauge");  // NOLINT(ras-blocking-in-hot-path)
  }
  return *it->second.gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name, const std::string& help, double lo,
                                     double hi, size_t buckets) {
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.histogram.reset(new Histogram(name, help, lo, hi, buckets, &enabled_));
    it = metrics_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kHistogram || it->second.histogram->lo() != lo ||
             it->second.histogram->hi() != hi || it->second.histogram->bucket_count() != buckets) {
    // [[noreturn]] abort path, as above.
    DieKindMismatch(name, "histogram");  // NOLINT(ras-blocking-in-hot-path)
  }
  return *it->second.histogram;
}

void MetricRegistry::ResetValues() {
  MutexLock lock(&mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

std::vector<const Counter*> MetricRegistry::Counters() const {
  MutexLock lock(&mu_);
  std::vector<const Counter*> out;
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind == Kind::kCounter) {
      out.push_back(entry.counter.get());
    }
  }
  return out;
}

std::vector<const Gauge*> MetricRegistry::Gauges() const {
  MutexLock lock(&mu_);
  std::vector<const Gauge*> out;
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind == Kind::kGauge) {
      out.push_back(entry.gauge.get());
    }
  }
  return out;
}

std::vector<const Histogram*> MetricRegistry::Histograms() const {
  MutexLock lock(&mu_);
  std::vector<const Histogram*> out;
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind == Kind::kHistogram) {
      out.push_back(entry.histogram.get());
    }
  }
  return out;
}

}  // namespace obs
}  // namespace ras
