#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/util/monotonic_time.h"

namespace ras {
namespace obs {

namespace {
// The calling thread's innermost open span (0 = none). SpanScope maintains
// this; cross-thread fan-out passes the parent explicitly instead.
thread_local uint64_t tls_current_span = 0;
}  // namespace

uint64_t CurrentSpanId() { return tls_current_span; }

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // Leaked: see header.
  return *tracer;
}

uint64_t Tracer::StartSpan(const std::string& name, uint64_t parent) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return 0;
  }
  OpenSpan span;
  span.parent = parent;
  span.name = name;
  span.wall_start_s = util::MonotonicSeconds();
  if (sim_clock_) {
    span.sim_seconds = sim_clock_();
  }
  MutexLock lock(&mu_);
  const uint64_t id = next_id_++;
  open_.emplace_back(id, std::move(span));  // Ids ascend, so the vector stays sorted.
  return id;
}

void Tracer::EndSpan(uint64_t id, int64_t value) {
  if (id == 0) {
    return;
  }
  const double wall_end = util::MonotonicSeconds();
  MutexLock lock(&mu_);
  auto it = std::lower_bound(open_.begin(), open_.end(), id,
                             [](const auto& entry, uint64_t key) { return entry.first < key; });
  if (it == open_.end() || it->first != id) {
    return;  // Already ended (or Clear raced a stale id); ignore.
  }
  Span done;
  done.id = id;
  done.parent = it->second.parent;
  done.name = std::move(it->second.name);
  done.wall_start_s = it->second.wall_start_s;
  done.wall_end_s = wall_end;
  done.sim_seconds = it->second.sim_seconds;
  done.value = value;
  open_.erase(it);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(done));
    ring_size_ = ring_.size();
    ring_next_ = ring_size_ % capacity_;
  } else {
    ring_[ring_next_] = std::move(done);
    ring_next_ = (ring_next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<Span> Tracer::Completed() const {
  MutexLock lock(&mu_);
  std::vector<Span> out;
  out.reserve(ring_size_);
  if (ring_size_ < capacity_) {
    out = ring_;
  } else {
    // Full ring: oldest entry sits at the overwrite cursor.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(ring_next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t Tracer::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  ring_next_ = 0;
  ring_size_ = 0;
  dropped_ = 0;
}

std::string Tracer::DumpTree(Dump mode) const {
  const std::vector<Span> spans = Completed();

  // Aggregate by (parent group, name). Groups form a tree: a span's group key
  // is its parent's group, so N sibling "shard" spans under the same phase
  // collapse into one "shard xN" line regardless of completion order.
  struct Group {
    uint64_t count = 0;
    double wall_total_s = 0.0;
    std::map<std::string, size_t> children;  // name -> group index (sorted).
  };
  std::vector<Group> groups(1);  // groups[0] = synthetic root.
  std::map<uint64_t, size_t> span_group;  // span id -> its group index.

  // A parent always starts (and gets its id) before its children, but it
  // *completes* after them, so children can precede parents in the ring.
  // Sorting by id restores start order... except that a parent may have been
  // overwritten by ring wrap while its children survived; those children
  // aggregate under the root with their own name (still deterministic for a
  // given capacity/workload).
  std::vector<const Span*> by_id;
  by_id.reserve(spans.size());
  for (const Span& s : spans) {
    by_id.push_back(&s);
  }
  std::sort(by_id.begin(), by_id.end(),
            [](const Span* a, const Span* b) { return a->id < b->id; });

  for (const Span* s : by_id) {
    size_t parent_group = 0;
    auto pit = span_group.find(s->parent);
    if (pit != span_group.end()) {
      parent_group = pit->second;
    }
    auto [cit, inserted] = groups[parent_group].children.emplace(s->name, groups.size());
    if (inserted) {
      groups.emplace_back();
    }
    const size_t g = cit->second;
    ++groups[g].count;
    groups[g].wall_total_s += s->wall_seconds();
    span_group[s->id] = g;
  }

  std::string out;
  // Recursive render without actual recursion (explicit stack), children in
  // name order at every level.
  struct Frame {
    size_t group;
    int depth;
    const std::string* name;
  };
  std::vector<Frame> stack;
  for (auto it = groups[0].children.rbegin(); it != groups[0].children.rend(); ++it) {
    stack.push_back({it->second, 0, &it->first});
  }
  char line[256];
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Group& g = groups[f.group];
    out.append(static_cast<size_t>(f.depth) * 2, ' ');
    if (mode == Dump::kTimings) {
      std::snprintf(line, sizeof(line), "%s x%llu total=%.6fs mean=%.6fs\n", f.name->c_str(),
                    static_cast<unsigned long long>(g.count), g.wall_total_s,
                    g.count == 0 ? 0.0 : g.wall_total_s / static_cast<double>(g.count));
    } else {
      std::snprintf(line, sizeof(line), "%s x%llu\n", f.name->c_str(),
                    static_cast<unsigned long long>(g.count));
    }
    out += line;
    for (auto it = g.children.rbegin(); it != g.children.rend(); ++it) {
      stack.push_back({it->second, f.depth + 1, &it->first});
    }
  }
  return out;
}

SpanScope::SpanScope(Tracer& tracer, const std::string& name)
    : tracer_(tracer),
      id_(tracer.StartSpan(name, tls_current_span)),
      prev_current_(tls_current_span) {
  if (id_ != 0) {
    tls_current_span = id_;
  }
}

SpanScope::SpanScope(Tracer& tracer, const std::string& name, uint64_t parent)
    : tracer_(tracer), id_(tracer.StartSpan(name, parent)), prev_current_(tls_current_span) {
  if (id_ != 0) {
    tls_current_span = id_;
  }
}

SpanScope::~SpanScope() {
  if (id_ != 0) {
    tls_current_span = prev_current_;
    tracer_.EndSpan(id_, value_);
  }
}

}  // namespace obs
}  // namespace ras
