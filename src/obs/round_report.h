// Per-round operator report.
//
// One struct per supervised solve round, carrying only primitive fields so
// src/obs stays below the solver layers: the core side fills it from
// RoundOutcome + SolveStats (MakeRoundReport in src/core/solver_supervisor.h)
// and the examples render it with FormatRoundReport instead of each
// hand-rolling its own printf. The single-line format is stable — harness
// transcripts diff cleanly across runs and releases.

#ifndef RAS_SRC_OBS_ROUND_REPORT_H_
#define RAS_SRC_OBS_ROUND_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ras {
namespace obs {

struct RoundReport {
  int round = 0;
  int64_t sim_seconds = 0;
  // LadderRungName of the rung that served, e.g. "FULL_TWO_PHASE".
  std::string rung;
  int retries = 0;
  // The failure that forced degradation; empty when the top rung served.
  std::string error;
  // False for rungs that kept the previous assignment (LAST_GOOD, EMERGENCY);
  // the solve-shape fields below are only meaningful when true.
  bool produced_assignment = false;

  size_t assignment_variables = 0;
  size_t moves_total = 0;
  size_t moves_in_use = 0;
  double shortfall_rru = 0.0;
  double wall_seconds = 0.0;

  // Cross-round reuse: "cold", "patched", "patched+basis", or "skipped".
  std::string reuse = "cold";
  int delta_servers = -1;

  int shard_count = 1;
  size_t failed_shards = 0;
  size_t repair_moves = 0;

  bool emergency_armed = false;
};

// One line, no trailing newline:
//   [round 3] rung=FULL_TWO_PHASE vars=512 moves=37 (in-use 12) shortfall=0.0
//   reuse=patched delta=14 wall=0.021s
// Degraded rounds append retries=N error=<...>; sharded rounds append
// shards=K (failed F, repair R); an armed emergency appends EMERGENCY.
std::string FormatRoundReport(const RoundReport& report);

}  // namespace obs
}  // namespace ras

#endif  // RAS_SRC_OBS_ROUND_REPORT_H_
