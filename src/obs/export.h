// Exporters: render the metric registry into machine-readable forms.
//
// Two formats, both deterministic (metrics in name order, fixed float
// formatting) so tests can golden-diff them:
//
//   PrometheusText   the text exposition format scrapers expect — one
//                    # HELP / # TYPE pair per family, cumulative `_bucket`
//                    lines with `le` labels for histograms, plus `_sum` and
//                    `_count`;
//   JsonSnapshot     a nested JSON object carrying the same data plus
//                    derived p50/p95/p99 (via ras::Histogram::Percentile),
//                    convenient for bench tooling and offline diffing.
//
// Writes go through util AtomicWriteFile, so a scraper tailing the snapshot
// path never reads a torn file.

#ifndef RAS_SRC_OBS_EXPORT_H_
#define RAS_SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace ras {
namespace obs {

// Prometheus text exposition of every metric in `registry`, name-ordered.
// Metric names may carry a `{label="value"}` suffix; families sharing a base
// name emit one HELP/TYPE header (first-registered help wins).
std::string PrometheusText(const MetricRegistry& registry);

// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
// Histogram entries include lo/hi/buckets/count/sum/p50/p95/p99 and the raw
// bucket counts.
std::string JsonSnapshot(const MetricRegistry& registry);

// Writes `<dir>/metrics.prom` and `<dir>/metrics.json` atomically, creating
// `dir` (one level) if needed.
Status WriteSnapshotFiles(const MetricRegistry& registry, const std::string& dir);

}  // namespace obs
}  // namespace ras

#endif  // RAS_SRC_OBS_EXPORT_H_
