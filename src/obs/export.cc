#include "src/obs/export.h"

#include <cstdio>

#include "src/util/file_io.h"

namespace ras {
namespace obs {

namespace {

// Splits `ras_x_total{rung="FULL"}` into base `ras_x_total` and inner labels
// `rung="FULL"` (empty when the name carries no label set).
void SplitName(const std::string& name, std::string* base, std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  size_t close = name.rfind('}');
  if (close == std::string::npos || close <= brace) {
    close = name.size();
  }
  *labels = name.substr(brace + 1, close - brace - 1);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Emits the # HELP / # TYPE header once per family (labelled series of one
// family are adjacent in the name-ordered views, so tracking the previous
// family suffices).
void MaybeHeader(const std::string& family, const std::string& help, const char* type,
                 std::string* last_family, std::string* out) {
  if (family == *last_family) {
    return;
  }
  *last_family = family;
  out->append("# HELP ").append(family).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(family).append(" ").append(type).append("\n");
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string PrometheusText(const MetricRegistry& registry) {
  std::string out;
  std::string base;
  std::string labels;
  std::string last_family;

  for (const Counter* c : registry.Counters()) {
    SplitName(c->name(), &base, &labels);
    MaybeHeader(base, c->help(), "counter", &last_family, &out);
    out.append(c->name()).append(" ").append(std::to_string(c->Value())).append("\n");
  }
  last_family.clear();
  for (const Gauge* g : registry.Gauges()) {
    SplitName(g->name(), &base, &labels);
    MaybeHeader(base, g->help(), "gauge", &last_family, &out);
    out.append(g->name()).append(" ").append(FormatDouble(g->Value())).append("\n");
  }
  last_family.clear();
  for (const Histogram* h : registry.Histograms()) {
    SplitName(h->name(), &base, &labels);
    MaybeHeader(base, h->help(), "histogram", &last_family, &out);
    const ras::Histogram snap = h->Snapshot();
    uint64_t cum = 0;
    for (size_t b = 0; b < snap.bucket_count(); ++b) {
      cum += snap.bucket(b);
      out.append(base).append("_bucket{");
      if (!labels.empty()) {
        out.append(labels).append(",");
      }
      out.append("le=\"").append(FormatDouble(snap.bucket_hi(b))).append("\"} ");
      out.append(std::to_string(cum)).append("\n");
    }
    // Observations clamp into the edge buckets, so +Inf equals the total.
    out.append(base).append("_bucket{");
    if (!labels.empty()) {
      out.append(labels).append(",");
    }
    out.append("le=\"+Inf\"} ").append(std::to_string(snap.total())).append("\n");
    out.append(base).append("_sum");
    if (!labels.empty()) {
      out.append("{").append(labels).append("}");
    }
    out.append(" ").append(FormatDouble(h->Sum())).append("\n");
    out.append(base).append("_count");
    if (!labels.empty()) {
      out.append("{").append(labels).append("}");
    }
    out.append(" ").append(std::to_string(snap.total())).append("\n");
  }
  return out;
}

std::string JsonSnapshot(const MetricRegistry& registry) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const Counter* c : registry.Counters()) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    \"").append(JsonEscape(c->name())).append("\": ");
    out.append(std::to_string(c->Value()));
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"gauges\": {");
  first = true;
  for (const Gauge* g : registry.Gauges()) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    \"").append(JsonEscape(g->name())).append("\": ");
    out.append(FormatDouble(g->Value()));
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"histograms\": {");
  first = true;
  for (const Histogram* h : registry.Histograms()) {
    out.append(first ? "\n" : ",\n");
    first = false;
    const ras::Histogram snap = h->Snapshot();
    out.append("    \"").append(JsonEscape(h->name())).append("\": {");
    out.append("\"lo\": ").append(FormatDouble(h->lo()));
    out.append(", \"hi\": ").append(FormatDouble(h->hi()));
    out.append(", \"buckets\": [");
    for (size_t b = 0; b < snap.bucket_count(); ++b) {
      if (b > 0) {
        out.append(", ");
      }
      out.append(std::to_string(snap.bucket(b)));
    }
    out.append("], \"count\": ").append(std::to_string(snap.total()));
    out.append(", \"sum\": ").append(FormatDouble(h->Sum()));
    out.append(", \"p50\": ").append(FormatDouble(snap.Percentile(50)));
    out.append(", \"p95\": ").append(FormatDouble(snap.Percentile(95)));
    out.append(", \"p99\": ").append(FormatDouble(snap.Percentile(99)));
    out.append("}");
  }
  out.append(first ? "}\n" : "\n  }\n");
  out.append("}\n");
  return out;
}

Status WriteSnapshotFiles(const MetricRegistry& registry, const std::string& dir) {
  Status st = EnsureDirectory(dir);
  if (!st.ok()) {
    return st;
  }
  st = AtomicWriteFile(dir + "/metrics.prom", PrometheusText(registry));
  if (!st.ok()) {
    return st;
  }
  return AtomicWriteFile(dir + "/metrics.json", JsonSnapshot(registry));
}

}  // namespace obs
}  // namespace ras
