// Typed metric registry for the continuous solve loop.
//
// Three metric kinds, Prometheus-shaped:
//
//   Counter    monotonically increasing int64 (events, iterations, nodes);
//   Gauge      last-written double (generation numbers, queue depths);
//   Histogram  fixed-bucket latency/size distribution, snapshotted into the
//              mergeable ras::Histogram from src/util/stats for p50/p95/p99.
//
// Design constraints, in order:
//
//   1. *Parity-safe.* Metrics only record; nothing in this file feeds back
//      into solver decisions, so solver targets are bitwise identical with
//      the registry enabled or disabled (tests/obs/obs_parity_test.cc).
//   2. *Never contend on the hot path.* Counter::Add / Histogram::Observe
//      are one relaxed atomic add on a thread-sharded, cache-line-padded
//      cell; solver workers (parallel branch-and-bound, shard fan-out)
//      touching the same metric never share a cache line. The registry's
//      util::Mutex guards only registration and snapshotting.
//   3. *Handles are forever.* counter()/gauge()/histogram() return stable
//      references; ResetValues() zeroes values but never unregisters, so
//      function-local static handles at instrumentation sites stay valid
//      across test resets.
//
// Naming convention (enforced by raslint's ras-metric-name rule):
// `ras_<subsystem>_<name>`, counters suffixed `_total`, time-valued
// histograms suffixed `_seconds`. An optional Prometheus label set may
// follow the name: `ras_supervisor_rung_total{rung="FULL_TWO_PHASE"}`.

#ifndef RAS_SRC_OBS_METRICS_H_
#define RAS_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/stats.h"
#include "src/util/thread_annotations.h"

namespace ras {
namespace obs {

// Number of independent cells each hot metric is striped across. Power of
// two; the per-thread slot is assigned round-robin on first use.
inline constexpr size_t kValueShards = 8;

// Index of this thread's stripe. Stable for the thread's lifetime.
size_t ThisThreadShard();

namespace internal {
struct alignas(64) PaddedCell {
  std::atomic<int64_t> value{0};
};
struct alignas(64) PaddedDoubleCell {
  std::atomic<double> value{0.0};
};
}  // namespace internal

class MetricRegistry;

// Monotonic event counter.
class Counter {
 public:
  // RASLINT-HOT: record path — called from solver inner loops.
  void Add(int64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    cells_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t sum = 0;
    for (const auto& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricRegistry;
  Counter(std::string name, std::string help, const std::atomic<bool>* enabled)
      : name_(std::move(name)), help_(std::move(help)), enabled_(enabled) {}
  void Reset() {
    for (auto& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

  std::string name_;
  std::string help_;
  const std::atomic<bool>* enabled_;
  internal::PaddedCell cells_[kValueShards];
};

// Last-written value. Set() races are benign (last writer wins); gauges are
// written from one site at a time in practice.
class Gauge {
 public:
  // RASLINT-HOT: record path — called from solver inner loops.
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricRegistry;
  Gauge(std::string name, std::string help, const std::atomic<bool>* enabled)
      : name_(std::move(name)), help_(std::move(help)), enabled_(enabled) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::string help_;
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram over [lo, hi); out-of-range observations clamp into
// the edge buckets, matching ras::Histogram. Bucket counts and the running
// sum are striped like Counter cells.
class Histogram {
 public:
  void Observe(double x);

  // Merged snapshot of all stripes as the util::stats histogram (which then
  // answers Percentile/Merge/ToString).
  ras::Histogram Snapshot() const;
  // Sum and count across stripes (sum is not derivable from buckets since
  // observations are clamped, so it is tracked exactly).
  double Sum() const;
  uint64_t Count() const;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t bucket_count() const { return buckets_; }

 private:
  friend class MetricRegistry;
  Histogram(std::string name, std::string help, double lo, double hi, size_t buckets,
            const std::atomic<bool>* enabled);
  void Reset();

  std::string name_;
  std::string help_;
  double lo_;
  double hi_;
  double width_;
  size_t buckets_;
  const std::atomic<bool>* enabled_;
  // Stripe-major: counts_[shard * buckets_ + bucket]. Each stripe begins on
  // its own cache line (the stripe stride is padded up to 64 bytes).
  std::vector<std::atomic<uint64_t>> counts_;
  size_t stripe_stride_;
  internal::PaddedDoubleCell sums_[kValueShards];
};

// Owner of every metric. Thread-safe; see the file comment for the contract.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide registry all built-in instrumentation records into.
  // Never destroyed (function-local statics at instrumentation sites hold
  // references across the whole process lifetime).
  static MetricRegistry& Default();

  // Find-or-create. The returned reference is valid for the registry's
  // lifetime. Requesting an existing name with a different metric kind or
  // histogram shape aborts: two call sites disagreeing about a metric's type
  // is a programming error, not a runtime condition.
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help, double lo, double hi,
                       size_t buckets);

  // Recording on/off. Disabled metrics early-out on one relaxed bool load;
  // values freeze at whatever they held. Enabled by default.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Zeroes every value; registrations (and outstanding references) survive.
  void ResetValues();

  // Deterministically ordered (by name) views for the exporters. The
  // pointers are stable; values read through them are live.
  std::vector<const Counter*> Counters() const;
  std::vector<const Gauge*> Gauges() const;
  std::vector<const Histogram*> Histograms() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::atomic<bool> enabled_{true};
  mutable Mutex mu_;
  std::map<std::string, Entry> metrics_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace ras

#endif  // RAS_SRC_OBS_METRICS_H_
