#include "src/obs/round_report.h"

#include <cstdio>

namespace ras {
namespace obs {

std::string FormatRoundReport(const RoundReport& report) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "[round %d] rung=%s", report.round, report.rung.c_str());
  std::string out = buf;

  if (report.produced_assignment) {
    std::snprintf(buf, sizeof(buf),
                  " vars=%zu moves=%zu (in-use %zu) shortfall=%.1f reuse=%s delta=%d wall=%.3fs",
                  report.assignment_variables, report.moves_total, report.moves_in_use,
                  report.shortfall_rru, report.reuse.c_str(), report.delta_servers,
                  report.wall_seconds);
    out += buf;
    if (report.shard_count > 1) {
      std::snprintf(buf, sizeof(buf), " shards=%d (failed %zu, repair %zu)", report.shard_count,
                    report.failed_shards, report.repair_moves);
      out += buf;
    }
  } else {
    out += " kept previous assignment";
  }
  if (report.retries > 0) {
    std::snprintf(buf, sizeof(buf), " retries=%d", report.retries);
    out += buf;
  }
  if (!report.error.empty()) {
    out += " error=";
    out += report.error;
  }
  if (report.emergency_armed) {
    out += " EMERGENCY";
  }
  return out;
}

}  // namespace obs
}  // namespace ras
