// Span-based tracing of the solve pipeline.
//
// The continuous loop nests cleanly — round -> supervisor attempt -> phase ->
// shard -> simplex/branch-and-bound — and each level is worth timing on its
// own, so the tracer records *spans*: named intervals with a parent, the
// util::MonotonicSeconds wall-clock interval, and (when a sim clock is
// wired) the simulated time at which the span opened. Completed spans land in
// a fixed-capacity ring buffer: steady-state operation keeps the most recent
// window, and the oldest spans are overwritten (counted, never silently).
//
// Nesting is implicit within a thread: SpanScope pushes itself as the
// thread's current span, so spans opened inside it become children. Fan-out
// onto ThreadPool workers crosses threads, so the coordinator passes the
// parent span id explicitly (the SpanScope overload with `parent`).
//
// Determinism: wall times are nondeterministic, but span *structure* (names,
// nesting, counts) is a pure function of the deterministic pipeline. The
// aggregated DumpTree(kStructure) rendering therefore sorts children by name
// and omits timing fields — a goldenable, run-stable view that tests diff
// exactly. DumpTree(kTimings) adds wall-time totals for humans.
//
// Parity-safe like the metric registry: spans record, never steer.

#ifndef RAS_SRC_OBS_TRACE_H_
#define RAS_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace ras {
namespace obs {

// The calling thread's innermost open span id (0 = none): the explicit
// parent to capture before handing work to another thread.
uint64_t CurrentSpanId();

// One completed span. Ids are assigned in StartSpan order, 1-based; parent 0
// means "root" (no enclosing span).
struct Span {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;
  double wall_start_s = 0.0;  // util::MonotonicSeconds at open/close.
  double wall_end_s = 0.0;
  int64_t sim_seconds = -1;  // Simulated time at open; -1 = no sim clock wired.
  int64_t value = 0;         // Optional numeric annotation (delta size, nodes, ...).

  double wall_seconds() const { return wall_end_s - wall_start_s; }
};

class Tracer {
 public:
  // `capacity` bounds the completed-span ring; the default holds several
  // hundred rounds of the instrumented pipeline.
  explicit Tracer(size_t capacity = 4096);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer the built-in instrumentation records into.
  // Never destroyed.
  static Tracer& Default();

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Optional simulated-time source (e.g. the scenario's EventLoop). Read at
  // span open. Not thread-safe to swap while spans are being recorded.
  using SimClock = std::function<int64_t()>;
  void set_sim_clock(SimClock clock) { sim_clock_ = std::move(clock); }

  // Raw span API (SpanScope is the normal entry point). StartSpan returns 0
  // when the tracer is disabled; EndSpan(0) is a no-op, so naked pairs stay
  // balanced without checking.
  uint64_t StartSpan(const std::string& name, uint64_t parent = 0);
  void EndSpan(uint64_t id, int64_t value = 0);

  // Completed spans, oldest first. (Open spans are not included.)
  std::vector<Span> Completed() const;
  // Completed spans overwritten by ring wrap-around since the last Clear.
  uint64_t dropped() const;
  // Drops all completed spans and resets the drop counter; open spans (and
  // the id counter) survive, so a Clear mid-round stays balanced.
  void Clear();

  enum class Dump {
    kStructure,  // Deterministic: name, count, nesting. Golden-testable.
    kTimings,    // Adds total wall seconds and mean per span name.
  };
  // Aggregated span tree over the completed ring: children grouped by name
  // under their parent's path, sorted by name, one "name xN" line per group.
  std::string DumpTree(Dump mode = Dump::kStructure) const;

 private:
  struct OpenSpan {
    uint64_t parent = 0;
    std::string name;
    double wall_start_s = 0.0;
    int64_t sim_seconds = -1;
  };

  std::atomic<bool> enabled_{true};
  SimClock sim_clock_;
  mutable Mutex mu_;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  // Open spans keyed by id (kept sorted; lookups are by exact id).
  std::vector<std::pair<uint64_t, OpenSpan>> open_ GUARDED_BY(mu_);
  std::vector<Span> ring_ GUARDED_BY(mu_);
  size_t ring_next_ GUARDED_BY(mu_) = 0;
  size_t ring_size_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  size_t capacity_;
};

// RAII span. The single-argument form parents under the calling thread's
// current span; the explicit-parent form is for crossing threads (shard
// fan-out), and also installs itself as the worker thread's current span so
// deeper spans nest under it.
class SpanScope {
 public:
  SpanScope(Tracer& tracer, const std::string& name);
  SpanScope(Tracer& tracer, const std::string& name, uint64_t parent);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // Attaches a numeric annotation, recorded at close.
  void set_value(int64_t value) { value_ = value; }
  uint64_t id() const { return id_; }

 private:
  Tracer& tracer_;
  uint64_t id_;
  uint64_t prev_current_;
  int64_t value_ = 0;
};

}  // namespace obs
}  // namespace ras

#endif  // RAS_SRC_OBS_TRACE_H_
