// Service profiles: how a workload values each hardware generation
// (the paper's Relative Value metric, Section 2.3 / Figure 3), plus the
// placement-relevant traits RAS consumes (network intensity, storage
// affinity, hardware restrictions).

#ifndef RAS_SRC_FLEET_SERVICE_PROFILE_H_
#define RAS_SRC_FLEET_SERVICE_PROFILE_H_

#include <array>
#include <string>
#include <vector>

#include "src/topology/hardware.h"

namespace ras {

struct ServiceProfile {
  std::string name;
  // Relative value gained on each CPU generation, normalized to generation 1
  // (index 0 unused; generations are 1-based). A zero entry means the service
  // cannot run on that generation at all.
  std::array<double, 4> relative_value = {0.0, 1.0, 1.0, 1.0};
  // Fraction of this service's traffic that crosses datacenters when placed
  // without affinity; drives the Figure 15 model.
  double network_intensity = 0.0;
  // True for replication / erasure-coded storage services (Section 3.3.2).
  bool is_storage = false;
  // Hardware categories this service refuses (empty = anything with a
  // non-zero relative value on its generation works).
  std::vector<uint16_t> excluded_categories;
  // Requires a GPU SKU.
  bool requires_gpu = false;

  // Relative value of one server of `type` for this service: the generation
  // multiplier applied to the SKU's baseline compute units, zero when the
  // hardware is excluded.
  double ValueOf(const HardwareType& type) const;
};

// The four named production services of Figure 3 plus the fleet-average
// profile: DataStore gains nothing from newer generations, Feed1 gains on
// gen 2 but not gen 3, Feed2 gains moderately, Web gains 1.47x / 1.82x.
std::vector<ServiceProfile> MakePaperServiceProfiles();

}  // namespace ras

#endif  // RAS_SRC_FLEET_SERVICE_PROFILE_H_
