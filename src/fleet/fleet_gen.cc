#include "src/fleet/fleet_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ras {
namespace {

// Availability window of a SKU as a function of MSB age in [0, 1]
// (1 = oldest MSB). Returns the stocking weight (0 = not stocked).
//
// Generation-1 SKUs populate old MSBs and taper off; generation-3 SKUs and
// the GPU SKU exist only in newer MSBs. This reproduces Figure 2's pattern
// where each MSB carries only a subset of SKUs and the subsets drift with
// deployment time.
double StockingWeight(const HardwareType& type, double age) {
  double lo = 0.0;
  double hi = 1.0;
  switch (type.cpu_generation) {
    case 1:
      lo = 0.45;  // Gen I only in the older 55% of MSBs.
      hi = 1.0;
      break;
    case 2:
      lo = 0.15;
      hi = 0.85;
      break;
    case 3:
      lo = 0.0;  // Gen III only in the newer 60%.
      hi = 0.6;
      break;
    default:
      break;
  }
  if (type.has_gpu) {
    hi = std::min(hi, 0.25);  // GPU SKU: newest quarter only.
  }
  if (age < lo || age > hi) {
    return 0.0;
  }
  // Triangular weight peaking mid-window so mixtures shift gradually.
  double mid = 0.5 * (lo + hi);
  double half = std::max(0.5 * (hi - lo), 1e-9);
  return std::max(0.05, 1.0 - std::fabs(age - mid) / half);
}

}  // namespace

size_t Fleet::CountInMsb(MsbId msb, HardwareTypeId type) const {
  size_t count = 0;
  for (ServerId id : topology.ServersInMsb(msb)) {
    if (topology.server(id).type == type) {
      ++count;
    }
  }
  return count;
}

std::vector<double> Fleet::TypeMix() const {
  std::vector<double> mix(catalog.size(), 0.0);
  for (const Server& s : topology.servers()) {
    mix[s.type] += 1.0;
  }
  for (double& m : mix) {
    m /= static_cast<double>(std::max<size_t>(topology.num_servers(), 1));
  }
  return mix;
}

std::vector<double> Fleet::TypeMixInMsb(MsbId msb) const {
  std::vector<double> mix(catalog.size(), 0.0);
  const auto& servers = topology.ServersInMsb(msb);
  for (ServerId id : servers) {
    mix[topology.server(id).type] += 1.0;
  }
  for (double& m : mix) {
    m /= static_cast<double>(std::max<size_t>(servers.size(), 1));
  }
  return mix;
}

Fleet GenerateFleet(const FleetOptions& options) {
  assert(options.num_datacenters > 0 && options.msbs_per_datacenter > 0);
  Fleet fleet;
  fleet.catalog = MakePaperCatalog();
  Rng rng(options.seed);

  const int total_msbs = options.num_datacenters * options.msbs_per_datacenter;
  int msb_index = 0;
  // MSBs are numbered region-wide in deployment order; datacenters were
  // turned up one after another, so DC 0 holds the oldest MSBs.
  for (int d = 0; d < options.num_datacenters; ++d) {
    DatacenterId dc = fleet.topology.AddDatacenter();
    for (int m = 0; m < options.msbs_per_datacenter; ++m, ++msb_index) {
      MsbId msb = *fleet.topology.AddMsb(dc);
      double age = total_msbs <= 1
                       ? 0.5
                       : 1.0 - static_cast<double>(msb_index) / static_cast<double>(total_msbs - 1);

      // Per-MSB SKU mixture: stocking weight x jitter.
      std::vector<double> weights(fleet.catalog.size(), 0.0);
      double total_weight = 0.0;
      for (size_t t = 0; t < fleet.catalog.size(); ++t) {
        double w = StockingWeight(fleet.catalog.type(static_cast<HardwareTypeId>(t)), age);
        if (w > 0.0) {
          w *= std::max(0.05, 1.0 + options.mixture_noise * rng.Normal(0.0, 1.0));
        }
        weights[t] = w;
        total_weight += w;
      }
      if (total_weight <= 0.0) {
        // Degenerate window (shouldn't happen with the paper catalog): fall
        // back to the generation-2 workhorse so the MSB is never empty.
        weights[fleet.catalog.FindByName("C2-S1")] = 1.0;
      }

      // Racks are homogeneous: real deployments rack one SKU at a time.
      for (int r = 0; r < options.racks_per_msb; ++r) {
        RackId rack = *fleet.topology.AddRack(msb);
        HardwareTypeId type = static_cast<HardwareTypeId>(rng.WeightedIndex(weights));
        for (int s = 0; s < options.servers_per_rack; ++s) {
          (void)*fleet.topology.AddServer(rack, type);
        }
      }
    }
  }
  fleet.topology.Finalize();
  return fleet;
}

}  // namespace ras
