#include "src/fleet/request_gen.h"

#include <algorithm>
#include <cassert>

namespace ras {

std::vector<GeneratedRequest> GenerateRequests(const HardwareCatalog& catalog,
                                               const RequestGenOptions& options) {
  assert(catalog.size() > 0);
  Rng rng(options.seed);
  std::vector<GeneratedRequest> out;
  out.reserve(options.count);

  // Types sorted newest-generation-first; "latest only" requests pick from
  // the front, broad requests take a prefix of the generation-sorted list.
  std::vector<HardwareTypeId> by_generation(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    by_generation[i] = static_cast<HardwareTypeId>(i);
  }
  std::stable_sort(by_generation.begin(), by_generation.end(),
                   [&catalog](HardwareTypeId a, HardwareTypeId b) {
                     return catalog.type(a).cpu_generation > catalog.type(b).cpu_generation;
                   });

  for (int i = 0; i < options.count; ++i) {
    GeneratedRequest req;
    req.service = "svc-" + std::to_string(i);

    // Size: 70% log-uniform over the mid band (matches "majority of requests
    // range from a few hundred to a few thousand"), 25% over the full range,
    // 5% jumbo requests near the top (the very large Web/Feed deployments).
    double mode = rng.NextDouble();
    if (mode < 0.70) {
      req.units = static_cast<double>(
          rng.LogUniformInt(std::min<int64_t>(200, options.max_units),
                            std::min<int64_t>(5000, options.max_units)));
    } else if (mode < 0.95) {
      req.units = static_cast<double>(rng.LogUniformInt(options.min_units, options.max_units));
    } else {
      req.units = static_cast<double>(
          rng.LogUniformInt(std::max<int64_t>(options.max_units * 2 / 3, options.min_units),
                            options.max_units));
    }

    // Acceptable hardware types: trimodal per Figure 4.
    double fan = rng.NextDouble();
    size_t n_types;
    if (fan < 0.35) {
      n_types = 1;  // Latest generation only.
    } else if (fan < 0.85) {
      n_types = std::min<size_t>(catalog.size(), static_cast<size_t>(rng.UniformInt(6, 9)));
    } else {
      n_types = std::min<size_t>(catalog.size(), static_cast<size_t>(rng.UniformInt(10, 12)));
    }
    req.acceptable_types.assign(by_generation.begin(),
                                by_generation.begin() + static_cast<long>(n_types));
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace ras
