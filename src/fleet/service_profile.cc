#include "src/fleet/service_profile.h"

#include <algorithm>

namespace ras {

double ServiceProfile::ValueOf(const HardwareType& type) const {
  if (requires_gpu && !type.has_gpu) {
    return 0.0;
  }
  for (uint16_t cat : excluded_categories) {
    if (type.category == cat) {
      return 0.0;
    }
  }
  if (type.cpu_generation == 0 || type.cpu_generation >= relative_value.size()) {
    return 0.0;
  }
  double gen_multiplier = relative_value[type.cpu_generation];
  if (gen_multiplier <= 0.0) {
    return 0.0;
  }
  // Relative value scales the SKU's baseline throughput relative to what a
  // generation-1 SKU of the same family would deliver. The catalog already
  // encodes absolute per-SKU compute, so the service-specific multiplier is
  // the ratio of its own scaling to the fleet-average generational scaling.
  return gen_multiplier;
}

std::vector<ServiceProfile> MakePaperServiceProfiles() {
  std::vector<ServiceProfile> profiles;

  ServiceProfile datastore;
  datastore.name = "DataStore";
  datastore.relative_value = {0.0, 1.0, 1.0, 1.0};  // No generational gain (Figure 3).
  datastore.is_storage = true;
  profiles.push_back(datastore);

  ServiceProfile feed1;
  feed1.name = "Feed1";
  feed1.relative_value = {0.0, 1.0, 1.35, 1.35};  // Gains on gen 2, flat to gen 3.
  profiles.push_back(feed1);

  ServiceProfile feed2;
  feed2.name = "Feed2";
  feed2.relative_value = {0.0, 1.0, 1.22, 1.55};
  profiles.push_back(feed2);

  ServiceProfile web;
  web.name = "Web";
  web.relative_value = {0.0, 1.0, 1.47, 1.82};  // The paper's headline numbers.
  profiles.push_back(web);

  ServiceProfile fleet_avg;
  fleet_avg.name = "FleetAvg";
  fleet_avg.relative_value = {0.0, 1.0, 1.28, 1.55};
  profiles.push_back(fleet_avg);

  return profiles;
}

}  // namespace ras
