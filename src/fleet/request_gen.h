// Capacity-request workload generation (the paper's Section 2.4 / Figure 4):
// request sizes span 1 to ~30,000 capacity units with a heavy middle around a
// few hundred to a few thousand, and each request names the set of hardware
// types that can fulfill it — most often either exactly one (latest
// generation only) or a wide band of ~8 types.

#ifndef RAS_SRC_FLEET_REQUEST_GEN_H_
#define RAS_SRC_FLEET_REQUEST_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/hardware.h"
#include "src/util/rng.h"

namespace ras {

struct GeneratedRequest {
  std::string service;
  // Requested capacity in units (one unit = one baseline server's worth).
  double units = 0;
  // Hardware types that can fulfill the request.
  std::vector<HardwareTypeId> acceptable_types;
};

struct RequestGenOptions {
  int count = 1000;
  int64_t min_units = 1;
  int64_t max_units = 30000;
  uint64_t seed = 7;
};

// Draws `count` requests. Sizes are log-uniform with an extra mass in the
// hundreds-to-thousands band; the acceptable-type set is drawn from the
// paper's trimodal pattern (1 type / ~8 types / 10+ types).
std::vector<GeneratedRequest> GenerateRequests(const HardwareCatalog& catalog,
                                               const RequestGenOptions& options);

}  // namespace ras

#endif  // RAS_SRC_FLEET_REQUEST_GEN_H_
