// Synthetic fleet generation.
//
// Substitutes for Facebook's production fleet (Section 2): builds a region
// with the paper's topology (datacenters -> MSBs -> racks -> servers) and a
// heterogeneous hardware mixture that varies across MSBs the way Figure 2
// shows — older MSBs carry older generations and discontinued SKUs, the
// newest MSBs carry the latest generation and the GPU SKU.

#ifndef RAS_SRC_FLEET_FLEET_GEN_H_
#define RAS_SRC_FLEET_FLEET_GEN_H_

#include <cstdint>
#include <vector>

#include "src/topology/hardware.h"
#include "src/topology/topology.h"
#include "src/util/rng.h"

namespace ras {

struct FleetOptions {
  int num_datacenters = 3;
  int msbs_per_datacenter = 4;
  int racks_per_msb = 10;
  int servers_per_rack = 12;
  uint64_t seed = 1;
  // MSB "age" runs from 1.0 (oldest, MSB 0) down to 0.0 (newest). A SKU is
  // stocked in an MSB when the MSB's age falls inside the SKU's availability
  // window, which is derived from its CPU generation.
  // Mixture noise: weight jitter applied per (MSB, SKU).
  double mixture_noise = 0.35;
};

struct Fleet {
  HardwareCatalog catalog;
  RegionTopology topology;

  size_t num_servers() const { return topology.num_servers(); }
  // Count of servers of `type` inside `msb`.
  size_t CountInMsb(MsbId msb, HardwareTypeId type) const;
  // Fraction of each hardware type region-wide (indexed by type id).
  std::vector<double> TypeMix() const;
  // Fraction of each hardware type within one MSB.
  std::vector<double> TypeMixInMsb(MsbId msb) const;
};

// Builds a fleet with the paper catalog (MakePaperCatalog) and an age-driven
// per-MSB mixture. Deterministic in `options.seed`.
Fleet GenerateFleet(const FleetOptions& options);

}  // namespace ras

#endif  // RAS_SRC_FLEET_FLEET_GEN_H_
