#include "src/sim/event_loop.h"

#include <cassert>
#include <memory>
#include <utility>

namespace ras {

void EventLoop::ScheduleAt(SimTime t, Callback fn) {
  if (t < now_) {
    t = now_;
  }
  queue_.push(Entry{t, next_seq_++, std::move(fn)});
}

namespace {

struct RecurringEvent {
  EventLoop* loop;
  SimDuration period;
  EventLoop::Callback body;
};

// Each queue entry owns the shared state and hands it to the next occurrence;
// no entry refers back to itself, so destroying the loop (and with it the
// queue) releases everything — a self-capturing closure would leak as a
// shared_ptr cycle instead.
void RunRecurring(const std::shared_ptr<RecurringEvent>& event, SimTime t) {
  event->body(t);
  event->loop->ScheduleAt(t + event->period,
                          [event](SimTime next) { RunRecurring(event, next); });
}

}  // namespace

void EventLoop::ScheduleEvery(SimTime first, SimDuration period, Callback fn) {
  assert(period.seconds > 0);
  auto event = std::make_shared<RecurringEvent>(RecurringEvent{this, period, std::move(fn)});
  ScheduleAt(first, [event = std::move(event)](SimTime t) { RunRecurring(event, t); });
}

void EventLoop::RunUntil(SimTime end) {
  while (!queue_.empty() && queue_.top().time <= end) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.time;
    entry.fn(now_);
  }
  now_ = end;
}

}  // namespace ras
