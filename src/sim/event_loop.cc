#include "src/sim/event_loop.h"

#include <cassert>
#include <memory>
#include <utility>

namespace ras {

void EventLoop::ScheduleAt(SimTime t, Callback fn) {
  if (t < now_) {
    t = now_;
  }
  queue_.push(Entry{t, next_seq_++, std::move(fn)});
}

void EventLoop::ScheduleEvery(SimTime first, SimDuration period, Callback fn) {
  assert(period.seconds > 0);
  // Self-rescheduling wrapper; shared_ptr breaks the lambda's own-type cycle.
  auto recur = std::make_shared<Callback>();
  auto body = std::make_shared<Callback>(std::move(fn));
  *recur = [this, period, body, recur](SimTime t) {
    (*body)(t);
    ScheduleAt(t + period, *recur);
  };
  ScheduleAt(first, *recur);
}

void EventLoop::RunUntil(SimTime end) {
  while (!queue_.empty() && queue_.top().time <= end) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.time;
    entry.fn(now_);
  }
  now_ = end;
}

}  // namespace ras
