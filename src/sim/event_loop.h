// Minimal discrete-event simulation loop: a priority queue of (time, seq)
// ordered callbacks and a simulated clock. Components schedule one-shot or
// recurring events; RunUntil drains everything up to a horizon.

#ifndef RAS_SRC_SIM_EVENT_LOOP_H_
#define RAS_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/sim_time.h"

namespace ras {

class EventLoop {
 public:
  using Callback = std::function<void(SimTime)>;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (clamped to now).
  void ScheduleAt(SimTime t, Callback fn);
  void ScheduleAfter(SimDuration d, Callback fn) { ScheduleAt(now_ + d, std::move(fn)); }

  // Schedules `fn` every `period` starting at `first`, until the loop stops.
  void ScheduleEvery(SimTime first, SimDuration period, Callback fn);

  // Runs all events with time <= end; leaves now() == end.
  void RunUntil(SimTime end);

  size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal times.
    Callback fn;
    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  SimTime now_{0};
  uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
};

}  // namespace ras

#endif  // RAS_SRC_SIM_EVENT_LOOP_H_
