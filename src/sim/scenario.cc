#include "src/sim/scenario.h"

#include "src/util/stats.h"

namespace ras {

RegionScenario::RegionScenario(const ScenarioOptions& options)
    : fleet(GenerateFleet(options.fleet)), rng(options.seed) {
  broker = std::make_unique<ResourceBroker>(&fleet.topology);
  twine = std::make_unique<TwineAllocator>(&fleet.catalog, broker.get());
  mover = std::make_unique<OnlineMover>(broker.get(), &registry, twine.get());
  greedy = std::make_unique<GreedyAssigner>(&fleet.catalog, broker.get());
  health = std::make_unique<HealthCheckService>(broker.get());
  solver.mutable_config() = options.solver;
  shared_buffer_ids = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog,
                                          options.shared_buffer_fraction);
  supervisor = std::make_unique<SolverSupervisor>(&solver, broker.get(), &registry,
                                                  &fleet.catalog, &loop, options.supervisor);
  if (!options.faults.empty()) {
    fault_injector = std::make_unique<FaultInjector>(options.faults);
    supervisor->SetFaultInjector(fault_injector.get());
  }
}

void RegionScenario::ArmHealth(SimDuration horizon) {
  HealthEventGenerator generator(&fleet.topology, HealthRates());
  Rng health_rng = rng.Fork();
  health->LoadSchedule(generator.GenerateSchedule(loop.now(), horizon, health_rng));
  health->SetFailureCallback(
      [this](ServerId id, HealthEventKind kind) {
        // Correlated failures are absorbed by embedded buffers (no mover
        // action, Section 3.3.1); random failures get fast replacement.
        if (kind != HealthEventKind::kMsbCorrelatedFailure) {
          mover->HandleFailure(id);
        }
      });
}

Result<SolveStats> RegionScenario::SolveRound() {
  SupervisedRound round = supervisor->RunRound();
  // Reconcile and retry unconditionally: even when every rung failed, the
  // broker holds the (consistent) last-good targets and displaced replicas
  // must not be starved waiting for the next successful solve.
  mover->ReconcileAll();
  twine->RetryPending();
  if (ProducedAssignment(round.rung)) {
    return round.stats;
  }
  return round.error;
}

std::vector<double> RegionScenario::MsbPowerDraw() const {
  const RegionTopology& topo = fleet.topology;
  std::vector<double> draw(topo.num_msbs(), 0.0);
  for (const Server& s : topo.servers()) {
    const ServerRecord& rec = broker->record(s.id);
    double watts = fleet.catalog.type(s.type).power_watts;
    if (rec.has_containers) {
      // Busy server: full draw.
    } else if (rec.current != kUnassigned) {
      watts *= 0.6;  // Allocated but idle.
    } else {
      watts *= 0.3;  // Powered-on free pool.
    }
    draw[s.msb] += watts;
  }
  return draw;
}

double RegionScenario::PowerUtilizationVariance() const {
  const RegionTopology& topo = fleet.topology;
  std::vector<double> peak(topo.num_msbs(), 0.0);
  for (const Server& s : topo.servers()) {
    peak[s.msb] += fleet.catalog.type(s.type).power_watts;
  }
  std::vector<double> draw = MsbPowerDraw();
  std::vector<double> utilization;
  utilization.reserve(draw.size());
  for (size_t m = 0; m < draw.size(); ++m) {
    if (peak[m] > 0) {
      utilization.push_back(draw[m] / peak[m]);
    }
  }
  return Variance(utilization);
}

double RegionScenario::CrossDcTrafficFraction(
    ReservationId reservation, const std::map<DatacenterId, double>& data_share) const {
  const RegionTopology& topo = fleet.topology;
  std::vector<double> compute(topo.num_datacenters(), 0.0);
  double total = 0.0;
  for (ServerId id : broker->ServersInReservation(reservation)) {
    const Server& s = topo.server(id);
    double units = fleet.catalog.type(s.type).compute_units;
    compute[s.dc] += units;
    total += units;
  }
  if (total <= 0) {
    return 0.0;
  }
  double local = 0.0;
  for (const auto& [dc, share] : data_share) {
    if (dc < compute.size()) {
      local += (compute[dc] / total) * share;
    }
  }
  return 1.0 - local;
}

double RegionScenario::UnavailableFraction(bool planned) const {
  size_t count = 0;
  for (ServerId id = 0; id < broker->num_servers(); ++id) {
    Unavailability u = broker->record(id).unavailability;
    if (planned && u == Unavailability::kPlannedMaintenance) {
      ++count;
    }
    if (!planned && IsUnplanned(u)) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(broker->num_servers());
}

}  // namespace ras
