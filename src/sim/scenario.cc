#include "src/sim/scenario.h"

#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/stats.h"

namespace ras {

RegionScenario::RegionScenario(const ScenarioOptions& options)
    : fleet(GenerateFleet(options.fleet)), rng(options.seed) {
  // Solve-pipeline spans record the simulated instant they opened at,
  // alongside wall time. Last scenario constructed wins the global tracer;
  // the destructor unwires it.
  obs::Tracer::Default().set_sim_clock([this] { return loop.now().seconds; });
  broker = std::make_unique<ResourceBroker>(&fleet.topology);
  twine = std::make_unique<TwineAllocator>(&fleet.catalog, broker.get());
  mover = std::make_unique<OnlineMover>(broker.get(), &registry, twine.get());
  greedy = std::make_unique<GreedyAssigner>(&fleet.catalog, broker.get());
  health = std::make_unique<HealthCheckService>(broker.get());
  solver.mutable_config() = options.solver;
  supervisor = std::make_unique<SolverSupervisor>(&solver, broker.get(), &registry,
                                                  &fleet.catalog, &loop, options.supervisor);
  if (!options.faults.empty()) {
    fault_injector = std::make_unique<FaultInjector>(options.faults);
    supervisor->SetFaultInjector(fault_injector.get());
  }
  if (options.durable_dir.empty()) {
    shared_buffer_ids = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog,
                                            options.shared_buffer_fraction);
    return;
  }
  durable = std::make_unique<journal::DurableControlPlane>(options.durable_dir, options.durable);
  (void)durable->Attach(broker.get(), &registry);
  const bool recovering = journal::DurableControlPlane::HasState(options.durable_dir);
  if (!recovering) {
    // Bootstrap: seed the buffers first so they land in checkpoint 0.
    shared_buffer_ids = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog,
                                            options.shared_buffer_fraction);
  }
  recovery = durable->OpenOrRecover();
  if (!recovery.status.ok()) {
    RAS_LOG(kWarning) << "durable control plane recovery failed ("
                      << recovery.status.ToString()
                      << "); scenario state is suspect and durability is disconnected";
    return;
  }
  if (recovering) {
    // The buffers came back from the checkpoint; this re-derives their ids
    // (EnsureSharedBuffers is idempotent, so the state is untouched).
    shared_buffer_ids = EnsureSharedBuffers(registry, fleet.topology, fleet.catalog,
                                            options.shared_buffer_fraction);
  }
  supervisor->SetTargetPersistence(durable.get());
}

RegionScenario::~RegionScenario() { obs::Tracer::Default().set_sim_clock(nullptr); }

Result<ReservationId> RegionScenario::AdmitReservation(ReservationSpec spec) {
  if (durable != nullptr && !durable->dead()) {
    return durable->AdmitReservation(std::move(spec));
  }
  return registry.Create(std::move(spec));
}

Status RegionScenario::UpdateReservation(const ReservationSpec& spec) {
  if (durable != nullptr && !durable->dead()) {
    return durable->UpdateReservation(spec);
  }
  return registry.Update(spec);
}

Status RegionScenario::RemoveReservation(ReservationId id) {
  if (durable != nullptr && !durable->dead()) {
    return durable->RemoveReservation(id);
  }
  return registry.Remove(id);
}

void RegionScenario::ArmHealth(SimDuration horizon) {
  HealthEventGenerator generator(&fleet.topology, HealthRates());
  Rng health_rng = rng.Fork();
  health->LoadSchedule(generator.GenerateSchedule(loop.now(), horizon, health_rng));
  health->SetFailureCallback(
      [this](ServerId id, HealthEventKind kind) {
        // Correlated failures are absorbed by embedded buffers (no mover
        // action, Section 3.3.1); random failures get fast replacement.
        if (kind != HealthEventKind::kMsbCorrelatedFailure) {
          mover->HandleFailure(id);
        }
      });
}

Result<SolveStats> RegionScenario::SolveRound() {
  SupervisedRound round = supervisor->RunRound();
  // Reconcile and retry unconditionally: even when every rung failed, the
  // broker holds the (consistent) last-good targets and displaced replicas
  // must not be starved waiting for the next successful solve.
  mover->ReconcileAll();
  twine->RetryPending();
  if (durable != nullptr && !durable->dead()) {
    // End-of-round barrier: digest the post-reconcile state and compact when
    // due. A failure here means the journal is gone; the round itself stands.
    Status barrier = durable->RoundBarrier();
    if (!barrier.ok()) {
      RAS_LOG(kWarning) << "durable round barrier failed: " << barrier.ToString();
    }
  }
  if (ProducedAssignment(round.rung)) {
    return round.stats;
  }
  return round.error;
}

std::vector<double> RegionScenario::MsbPowerDraw() const {
  const RegionTopology& topo = fleet.topology;
  std::vector<double> draw(topo.num_msbs(), 0.0);
  for (const Server& s : topo.servers()) {
    const ServerRecord& rec = broker->record(s.id);
    double watts = fleet.catalog.type(s.type).power_watts;
    if (rec.has_containers) {
      // Busy server: full draw.
    } else if (rec.current != kUnassigned) {
      watts *= 0.6;  // Allocated but idle.
    } else {
      watts *= 0.3;  // Powered-on free pool.
    }
    draw[s.msb] += watts;
  }
  return draw;
}

double RegionScenario::PowerUtilizationVariance() const {
  const RegionTopology& topo = fleet.topology;
  std::vector<double> peak(topo.num_msbs(), 0.0);
  for (const Server& s : topo.servers()) {
    peak[s.msb] += fleet.catalog.type(s.type).power_watts;
  }
  std::vector<double> draw = MsbPowerDraw();
  std::vector<double> utilization;
  utilization.reserve(draw.size());
  for (size_t m = 0; m < draw.size(); ++m) {
    if (peak[m] > 0) {
      utilization.push_back(draw[m] / peak[m]);
    }
  }
  return Variance(utilization);
}

double RegionScenario::CrossDcTrafficFraction(
    ReservationId reservation, const std::map<DatacenterId, double>& data_share) const {
  const RegionTopology& topo = fleet.topology;
  std::vector<double> compute(topo.num_datacenters(), 0.0);
  double total = 0.0;
  for (ServerId id : broker->ServersInReservation(reservation)) {
    const Server& s = topo.server(id);
    double units = fleet.catalog.type(s.type).compute_units;
    compute[s.dc] += units;
    total += units;
  }
  if (total <= 0) {
    return 0.0;
  }
  double local = 0.0;
  for (const auto& [dc, share] : data_share) {
    if (dc < compute.size()) {
      local += (compute[dc] / total) * share;
    }
  }
  return 1.0 - local;
}

double RegionScenario::UnavailableFraction(bool planned) const {
  size_t count = 0;
  for (ServerId id = 0; id < broker->num_servers(); ++id) {
    Unavailability u = broker->record(id).unavailability;
    if (planned && u == Unavailability::kPlannedMaintenance) {
      ++count;
    }
    if (!planned && IsUnplanned(u)) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(broker->num_servers());
}

}  // namespace ras
