// Region scenario: wires every subsystem — synthetic fleet, Resource Broker,
// Health Check Service, Twine allocator, Online Mover, and the Async Solver —
// into one simulated region, with the metric probes the evaluation figures
// report (max-MSB share, power variance, cross-DC traffic, churn).

#ifndef RAS_SRC_SIM_SCENARIO_H_
#define RAS_SRC_SIM_SCENARIO_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/ras.h"
#include "src/fleet/fleet_gen.h"
#include "src/health/health.h"
#include "src/sim/event_loop.h"
#include "src/twine/allocator.h"
#include "src/twine/greedy_assigner.h"

namespace ras {

struct ScenarioOptions {
  FleetOptions fleet;
  HealthRates health;
  SolverConfig solver;
  double shared_buffer_fraction = 0.02;
  uint64_t seed = 42;
};

class RegionScenario {
 public:
  explicit RegionScenario(const ScenarioOptions& options);

  // --- Components (public: benches drive them directly) ---
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;
  std::unique_ptr<TwineAllocator> twine;
  std::unique_ptr<OnlineMover> mover;
  std::unique_ptr<GreedyAssigner> greedy;
  std::unique_ptr<HealthCheckService> health;
  AsyncSolver solver;
  EventLoop loop;
  Rng rng;
  std::vector<ReservationId> shared_buffer_ids;

  // Generates and loads the health schedule for [0, horizon), and wires the
  // failure callback to the Online Mover's fast replacement path.
  void ArmHealth(SimDuration horizon);

  // One solver round: solve + persist targets + reconcile + retry pending
  // container placements. Returns the stats.
  Result<SolveStats> SolveRound();

  // --- Metric probes ---
  // Per-MSB power draw (watts), from allocated/idle/free server states.
  std::vector<double> MsbPowerDraw() const;
  // Variance of per-MSB power utilization (power / MSB peak power).
  double PowerUtilizationVariance() const;
  // 1 - sum_dc (compute share in dc * data share in dc): the fraction of a
  // service's traffic that must cross datacenters under a uniform
  // compute-talks-to-data model.
  double CrossDcTrafficFraction(ReservationId reservation,
                                const std::map<DatacenterId, double>& data_share) const;
  // Fraction of the fleet currently unavailable, split by planned/unplanned.
  double UnavailableFraction(bool planned) const;
};

}  // namespace ras

#endif  // RAS_SRC_SIM_SCENARIO_H_
