// Region scenario: wires every subsystem — synthetic fleet, Resource Broker,
// Health Check Service, Twine allocator, Online Mover, and the Async Solver —
// into one simulated region, with the metric probes the evaluation figures
// report (max-MSB share, power variance, cross-DC traffic, churn).

#ifndef RAS_SRC_SIM_SCENARIO_H_
#define RAS_SRC_SIM_SCENARIO_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/ras.h"
#include "src/core/solver_supervisor.h"
#include "src/faults/fault_plan.h"
#include "src/fleet/fleet_gen.h"
#include "src/health/health.h"
#include "src/journal/durable_control_plane.h"
#include "src/sim/event_loop.h"
#include "src/twine/allocator.h"
#include "src/twine/greedy_assigner.h"

namespace ras {

struct ScenarioOptions {
  FleetOptions fleet;
  HealthRates health;
  SolverConfig solver;
  SupervisorConfig supervisor;
  // Faults to inject into the solve loop; empty = none. Deterministic in
  // FaultPlan::seed.
  FaultPlan faults;
  double shared_buffer_fraction = 0.02;
  // When non-empty, control-plane state is made durable under this directory
  // (write-ahead journal + checkpoints, src/journal). A scenario constructed
  // over a directory that already holds state recovers from it instead of
  // bootstrapping — the crash-restart drills rebuild the scenario on the same
  // directory to model a control-plane restart.
  std::string durable_dir;
  journal::DurableOptions durable;
  uint64_t seed = 42;
};

class RegionScenario {
 public:
  explicit RegionScenario(const ScenarioOptions& options);
  // Unwires this scenario's sim clock from the process-wide tracer.
  ~RegionScenario();

  // --- Components (public: benches drive them directly) ---
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;
  std::unique_ptr<TwineAllocator> twine;
  std::unique_ptr<OnlineMover> mover;
  std::unique_ptr<GreedyAssigner> greedy;
  std::unique_ptr<HealthCheckService> health;
  AsyncSolver solver;
  EventLoop loop;
  Rng rng;
  std::vector<ReservationId> shared_buffer_ids;
  // Fault injection + supervision around the solve loop. The injector is
  // null when options.faults is empty; the supervisor always exists.
  std::unique_ptr<FaultInjector> fault_injector;
  std::unique_ptr<SolverSupervisor> supervisor;
  // Durability layer; null unless options.durable_dir was set. Declared after
  // the broker so its destructor can still unsubscribe its watcher.
  std::unique_ptr<journal::DurableControlPlane> durable;
  // Outcome of the constructor's recover-or-bootstrap step. When its status
  // is non-OK the in-memory state is suspect and the durable layer is left
  // disconnected; drills inspect this and rebuild on a clean directory.
  journal::RecoveryReport recovery;

  // Journaled reservation admission: routes through the durable control plane
  // when one is wired (journal-then-acknowledge), else straight to the
  // registry. Use these instead of registry.Create/Update/Remove in scenarios
  // that care about crash recovery.
  Result<ReservationId> AdmitReservation(ReservationSpec spec);
  Status UpdateReservation(const ReservationSpec& spec);
  Status RemoveReservation(ReservationId id);

  // Generates and loads the health schedule for [0, horizon), and wires the
  // failure callback to the Online Mover's fast replacement path.
  void ArmHealth(SimDuration horizon);

  // One supervised solver round: walk the degradation ladder, then reconcile
  // and retry pending container placements (always — a failed solve must not
  // starve displaced replicas; the last-good targets still converge). Returns
  // the stats of the rung that produced an assignment, or the failure status
  // when the round served from the last-good assignment; either way the
  // broker is left consistent. Per-round rung/retry detail is in
  // supervisor->stats().
  Result<SolveStats> SolveRound();

  // Urgent out-of-band capacity; available only while the supervisor has the
  // emergency path armed (solver unhealthy).
  Result<EmergencyGrant> RequestUrgentCapacity(ReservationId reservation, size_t count) {
    return supervisor->RequestUrgentCapacity(reservation, count);
  }

  // --- Metric probes ---
  // Per-MSB power draw (watts), from allocated/idle/free server states.
  std::vector<double> MsbPowerDraw() const;
  // Variance of per-MSB power utilization (power / MSB peak power).
  double PowerUtilizationVariance() const;
  // 1 - sum_dc (compute share in dc * data share in dc): the fraction of a
  // service's traffic that must cross datacenters under a uniform
  // compute-talks-to-data model.
  double CrossDcTrafficFraction(ReservationId reservation,
                                const std::map<DatacenterId, double>& data_share) const;
  // Fraction of the fleet currently unavailable, split by planned/unplanned.
  double UnavailableFraction(bool planned) const;
};

}  // namespace ras

#endif  // RAS_SRC_SIM_SCENARIO_H_
