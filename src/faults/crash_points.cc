#include "src/faults/crash_points.h"

namespace ras {

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kBeforeJournalAppend:
      return "BEFORE_JOURNAL_APPEND";
    case CrashPoint::kTornJournalAppend:
      return "TORN_JOURNAL_APPEND";
    case CrashPoint::kAfterJournalAppend:
      return "AFTER_JOURNAL_APPEND";
    case CrashPoint::kMidApply:
      return "MID_APPLY";
    case CrashPoint::kAfterApply:
      return "AFTER_APPLY";
    case CrashPoint::kAfterDigest:
      return "AFTER_DIGEST";
    case CrashPoint::kBeforeCheckpointWrite:
      return "BEFORE_CHECKPOINT_WRITE";
    case CrashPoint::kAfterCheckpointWrite:
      return "AFTER_CHECKPOINT_WRITE";
    case CrashPoint::kAfterJournalTruncate:
      return "AFTER_JOURNAL_TRUNCATE";
    case CrashPoint::kAfterAdmitApply:
      return "AFTER_ADMIT_APPLY";
  }
  return "UNKNOWN";
}

void CrashPointInjector::Arm(CrashPoint point, int nth) {
  armed_ = true;
  armed_point_ = point;
  armed_nth_ = nth;
  hits_[static_cast<int>(point)] = 0;
}

void CrashPointInjector::Disarm() { armed_ = false; }

bool CrashPointInjector::ShouldCrash(CrashPoint point) {
  size_t count = ++hits_[static_cast<int>(point)];
  if (!armed_ || crashed_ || point != armed_point_ ||
      count != static_cast<size_t>(armed_nth_)) {
    return false;
  }
  crashed_ = true;
  crashed_at_ = point;
  return true;
}

void CrashPointInjector::Reset() {
  armed_ = false;
  crashed_ = false;
  for (size_t& h : hits_) {
    h = 0;
  }
}

}  // namespace ras
