// Fault injector: evaluates a FaultPlan deterministically and carries the
// hooks that wire faults into the AsyncSolver (timeout / crash), the
// ResourceBroker (write failures), and the snapshot path (corruption /
// staleness). The SolverSupervisor owns one and consults it each round;
// standalone tests can drive it directly.

#ifndef RAS_SRC_FAULTS_FAULT_INJECTOR_H_
#define RAS_SRC_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/core/solve_input.h"
#include "src/faults/fault_plan.h"

namespace ras {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Advances the injector to a new solver round. Query streams are re-derived
  // from (seed, round), so the answers within a round do not depend on how
  // many queries earlier rounds made.
  void BeginRound(int round, SimTime now);

  // Updates the simulated clock mid-round (after a backoff) without touching
  // the draw streams; only the rules' time windows see the new time.
  void AdvanceTime(SimTime now) { now_ = now; }

  int round() const { return round_; }

  // One deterministic Bernoulli query: does `kind` fire now? Consecutive
  // queries for the same kind within a round draw from an independent
  // per-(round, kind) stream, so e.g. three solve attempts in one round get
  // three independent draws.
  bool Fires(FaultKind kind);

  // Like Fires, but without consuming a draw — true iff some rule's window
  // covers the current round/time (regardless of probability).
  bool Armed(FaultKind kind) const;

  // Scribbles deterministic garbage into a snapshot: dangling reservation
  // bindings and an out-of-range truncation of the server vector, the kind of
  // damage ValidateSolveInput must catch.
  void CorruptSnapshot(SolveInput& input);

  // Total times each kind has fired (across all rounds).
  size_t fired_count(FaultKind kind) const { return fired_[static_cast<int>(kind)]; }
  size_t total_fired() const;

 private:
  FaultPlan plan_;
  int round_ = -1;
  SimTime now_{0};
  // Per-kind draw streams for the current round.
  uint64_t stream_state_[kNumFaultKinds] = {};
  size_t fired_[kNumFaultKinds] = {};
};

}  // namespace ras

#endif  // RAS_SRC_FAULTS_FAULT_INJECTOR_H_
