#include "src/faults/fault_injector.h"

namespace ras {
namespace {

// SplitMix64 step, shared idiom with util/rng.cc. Used both to mix the
// (seed, round, kind) triple into a stream state and to step the stream.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double NextUnit(uint64_t& state) {
  return static_cast<double>(SplitMix64(state) >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSolverTimeout:
      return "SOLVER_TIMEOUT";
    case FaultKind::kSolverCrash:
      return "SOLVER_CRASH";
    case FaultKind::kSnapshotCorruption:
      return "SNAPSHOT_CORRUPTION";
    case FaultKind::kSnapshotStale:
      return "SNAPSHOT_STALE";
    case FaultKind::kBrokerWriteFailure:
      return "BROKER_WRITE_FAILURE";
  }
  return "UNKNOWN";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) { BeginRound(0, SimTime{0}); }

void FaultInjector::BeginRound(int round, SimTime now) {
  round_ = round;
  now_ = now;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    // Independent stream per (seed, round, kind): query order across kinds
    // cannot perturb the draws.
    uint64_t mix = plan_.seed;
    SplitMix64(mix);
    mix ^= 0x632be59bd9b4e019ULL * static_cast<uint64_t>(round + 1);
    SplitMix64(mix);
    mix ^= 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(k + 1);
    stream_state_[k] = mix;
  }
}

bool FaultInjector::Armed(FaultKind kind) const {
  for (const FaultRule& rule : plan_.rules) {
    if (rule.kind != kind) {
      continue;
    }
    if (round_ < rule.first_round || round_ > rule.last_round) {
      continue;
    }
    if (now_ < rule.not_before || now_ > rule.not_after) {
      continue;
    }
    return true;
  }
  return false;
}

bool FaultInjector::Fires(FaultKind kind) {
  uint64_t& stream = stream_state_[static_cast<int>(kind)];
  for (const FaultRule& rule : plan_.rules) {
    if (rule.kind != kind) {
      continue;
    }
    if (round_ < rule.first_round || round_ > rule.last_round) {
      continue;
    }
    if (now_ < rule.not_before || now_ > rule.not_after) {
      continue;
    }
    // One draw per query even for probability-1 rules, so changing a rule's
    // probability never shifts later draws in the same stream.
    double u = NextUnit(stream);
    if (u < rule.probability) {
      ++fired_[static_cast<int>(kind)];
      return true;
    }
  }
  return false;
}

void FaultInjector::CorruptSnapshot(SolveInput& input) {
  uint64_t stream = stream_state_[static_cast<int>(FaultKind::kSnapshotCorruption)] ^
                    0xd1b54a32d192ed03ULL;
  if (!input.servers.empty()) {
    // Dangling binding: a reservation id no registry would hand out.
    size_t victim = SplitMix64(stream) % input.servers.size();
    input.servers[victim].current = 0xDEADBEEF;
  }
  if (!input.reservations.empty()) {
    // Negative capacity: a torn read of the request state.
    size_t victim = SplitMix64(stream) % input.reservations.size();
    input.reservations[victim].capacity_rru = -1.0;
  }
  if (input.topology != nullptr && SplitMix64(stream) % 2 == 0) {
    // Truncated server vector: snapshot size no longer matches the fleet.
    input.servers.resize(input.servers.size() / 2);
  }
}

size_t FaultInjector::total_fired() const {
  size_t total = 0;
  for (size_t count : fired_) {
    total += count;
  }
  return total;
}

}  // namespace ras
