// Fault plans: declarative, deterministic descriptions of which faults fire
// when, for chaos testing the continuous solve loop.
//
// A plan is a list of rules. Each rule names a fault kind and a window —
// solver rounds and/or simulated time — inside which the fault fires with a
// given probability per query. All randomness is derived from the plan seed
// and the (round, kind, query-index) triple, so two runs of the same plan
// observe the exact same fault sequence regardless of what else draws random
// numbers.

#ifndef RAS_SRC_FAULTS_FAULT_PLAN_H_
#define RAS_SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/sim_time.h"

namespace ras {

enum class FaultKind : uint8_t {
  // The MIP never returns within its deadline; the attempt yields
  // DEADLINE_EXCEEDED and no assignment.
  kSolverTimeout = 0,
  // The solver process dies mid-solve; the attempt yields INTERNAL.
  kSolverCrash,
  // The snapshot read from the broker arrives mangled (bit flips, torn
  // reads); snapshot validation must reject it before any solve runs.
  kSnapshotCorruption,
  // The broker is mutated out-of-band while the solve is in flight, so the
  // solution was computed against a stale world and must not be persisted.
  kSnapshotStale,
  // A target write to the broker fails (replica quorum loss); a batch of
  // target writes must be rolled back, never half-applied.
  kBrokerWriteFailure,
};

inline constexpr int kNumFaultKinds = 5;

const char* FaultKindName(FaultKind kind);

struct FaultRule {
  FaultKind kind = FaultKind::kSolverCrash;
  // Solver-round window, inclusive on both ends. Rounds count from 0.
  int first_round = 0;
  int last_round = std::numeric_limits<int>::max();
  // Simulated-time window, inclusive; the default spans all of time.
  SimTime not_before{0};
  SimTime not_after{std::numeric_limits<int64_t>::max()};
  // Chance the fault fires for one query inside the window. 1.0 = always.
  double probability = 1.0;
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  uint64_t seed = 0xFA017;

  bool empty() const { return rules.empty(); }

  FaultPlan& Add(FaultRule rule) {
    rules.push_back(rule);
    return *this;
  }

  // A burst: `kind` fires unconditionally for `rounds` consecutive solver
  // rounds starting at `first_round` — the repeated-failure pattern that
  // drives the supervisor to declare the solver unhealthy.
  FaultPlan& AddBurst(FaultKind kind, int first_round, int rounds, double probability = 1.0) {
    FaultRule rule;
    rule.kind = kind;
    rule.first_round = first_round;
    rule.last_round = first_round + rounds - 1;
    rule.probability = probability;
    return Add(rule);
  }
};

}  // namespace ras

#endif  // RAS_SRC_FAULTS_FAULT_PLAN_H_
