// Named crash points: process-death injection sites around the durable
// control plane's journal/apply barrier.
//
// The FaultPlan/FaultInjector machinery models *transient* faults — a solve
// that times out, a write that bounces — which the supervisor survives within
// a round. Crash points model the other failure class from the RAS paper's
// availability posture: the control-plane process dying outright, at the
// worst possible instant. Each site names one instant in the write-ahead
// protocol (before the intent record hits disk, halfway through a record
// write, between journal append and broker apply, mid-checkpoint, ...).
//
// A CrashPointInjector is armed at one site (optionally the nth time that
// site is reached). When the site fires, the durable control plane stops
// performing IO permanently — from the outside, the process died there — and
// the test discards the in-memory region and drives recovery from disk. The
// injector is deterministic: no randomness, just site hit counts.

#ifndef RAS_SRC_FAULTS_CRASH_POINTS_H_
#define RAS_SRC_FAULTS_CRASH_POINTS_H_

#include <cstddef>
#include <cstdint>

namespace ras {

enum class CrashPoint : uint8_t {
  // --- The ApplyTargets journal/apply barrier ---
  kBeforeJournalAppend = 0,  // Intent record never reaches the journal.
  kTornJournalAppend,        // Half the intent record's bytes hit disk.
  kAfterJournalAppend,       // Intent durable; broker apply never ran.
  kMidApply,                 // Broker apply died halfway through the batch.
  kAfterApply,               // Applied; digest record never written.
  kAfterDigest,              // Barrier complete; compaction never ran.
  // --- Checkpoint compaction ---
  kBeforeCheckpointWrite,   // Compaction decided, no checkpoint written.
  kAfterCheckpointWrite,    // Checkpoint renamed in; journal not truncated.
  kAfterJournalTruncate,    // Truncated; old checkpoints not pruned.
  // --- Registry admission ---
  kAfterAdmitApply,  // Reservation created in memory, admit record lost.
};

inline constexpr int kNumCrashPoints = 10;

const char* CrashPointName(CrashPoint point);

class CrashPointInjector {
 public:
  // Arms `point`: the injector reports a crash the `nth` time the site is
  // reached (1-based; counts since the last Arm/Reset). Only one site is
  // armed at a time — a process dies once.
  void Arm(CrashPoint point, int nth = 1);
  void Disarm();

  // Called by the durable control plane at each site. Counts the hit and
  // returns true exactly once, when the armed site reaches its nth hit.
  bool ShouldCrash(CrashPoint point);

  bool crashed() const { return crashed_; }
  CrashPoint crashed_at() const { return crashed_at_; }
  size_t hits(CrashPoint point) const { return hits_[static_cast<int>(point)]; }

  // Clears hit counts and the crashed flag (a fresh process after restart);
  // leaves nothing armed.
  void Reset();

 private:
  bool armed_ = false;
  CrashPoint armed_point_ = CrashPoint::kBeforeJournalAppend;
  int armed_nth_ = 1;
  bool crashed_ = false;
  CrashPoint crashed_at_ = CrashPoint::kBeforeJournalAppend;
  size_t hits_[kNumCrashPoints] = {};
};

}  // namespace ras

#endif  // RAS_SRC_FAULTS_CRASH_POINTS_H_
