#include "src/topology/topology.h"

#include <cassert>
#include <limits>

namespace ras {

DatacenterId RegionTopology::AddDatacenter() {
  assert(!finalized_);
  return static_cast<DatacenterId>(num_datacenters_++);
}

Result<MsbId> RegionTopology::AddMsb(DatacenterId dc) {
  assert(!finalized_);
  if (dc >= num_datacenters_) {
    return Status::InvalidArgument("AddMsb: datacenter does not exist");
  }
  if (msb_dc_.size() >= std::numeric_limits<MsbId>::max()) {
    return Status::ResourceExhausted("AddMsb: too many MSBs");
  }
  msb_dc_.push_back(dc);
  return static_cast<MsbId>(msb_dc_.size() - 1);
}

Result<RackId> RegionTopology::AddRack(MsbId msb) {
  assert(!finalized_);
  if (msb >= msb_dc_.size()) {
    return Status::InvalidArgument("AddRack: MSB does not exist");
  }
  rack_msb_.push_back(msb);
  return static_cast<RackId>(rack_msb_.size() - 1);
}

Result<ServerId> RegionTopology::AddServer(RackId rack, HardwareTypeId type) {
  assert(!finalized_);
  if (rack >= rack_msb_.size()) {
    return Status::InvalidArgument("AddServer: rack does not exist");
  }
  Server s;
  s.id = static_cast<ServerId>(servers_.size());
  s.type = type;
  s.rack = rack;
  s.msb = rack_msb_[rack];
  s.dc = msb_dc_[s.msb];
  servers_.push_back(s);
  return s.id;
}

void RegionTopology::Finalize() {
  assert(!finalized_);
  servers_by_rack_.assign(num_racks(), {});
  servers_by_msb_.assign(num_msbs(), {});
  servers_by_dc_.assign(num_datacenters(), {});
  for (const Server& s : servers_) {
    servers_by_rack_[s.rack].push_back(s.id);
    servers_by_msb_[s.msb].push_back(s.id);
    servers_by_dc_[s.dc].push_back(s.id);
  }
  finalized_ = true;
}

uint32_t RegionTopology::GroupOf(Scope scope, ServerId id) const {
  const Server& s = servers_[id];
  switch (scope) {
    case Scope::kRack:
      return s.rack;
    case Scope::kMsb:
      return s.msb;
    case Scope::kDatacenter:
      return s.dc;
  }
  return 0;
}

size_t RegionTopology::GroupCount(Scope scope) const {
  switch (scope) {
    case Scope::kRack:
      return num_racks();
    case Scope::kMsb:
      return num_msbs();
    case Scope::kDatacenter:
      return num_datacenters();
  }
  return 0;
}

}  // namespace ras
