#include "src/topology/hardware.h"

namespace ras {

Result<HardwareTypeId> HardwareCatalog::Add(HardwareType type) {
  if (FindByName(type.name) != kInvalidHardwareType) {
    return Status::AlreadyExists("hardware type already in catalog: " + type.name);
  }
  if (types_.size() >= kInvalidHardwareType) {
    return Status::ResourceExhausted("hardware catalog is full");
  }
  types_.push_back(std::move(type));
  return static_cast<HardwareTypeId>(types_.size() - 1);
}

HardwareTypeId HardwareCatalog::FindByName(const std::string& name) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) {
      return static_cast<HardwareTypeId>(i);
    }
  }
  return kInvalidHardwareType;
}

HardwareCatalog MakePaperCatalog() {
  HardwareCatalog catalog;
  auto add = [&catalog](const char* name, uint16_t cat, uint16_t sub, uint8_t gen, double compute,
                        double mem_gb, double flash_tb, double watts, bool gpu) {
    HardwareType t;
    t.name = name;
    t.category = cat;
    t.subtype = sub;
    t.cpu_generation = gen;
    t.compute_units = compute;
    t.memory_gb = mem_gb;
    t.flash_tb = flash_tb;
    t.power_watts = watts;
    t.has_gpu = gpu;
    auto result = catalog.Add(std::move(t));
    (void)result;  // Names in this table are unique by construction.
  };
  // Compute SKUs across three processor generations (Figure 3's Gen I-III).
  add("C1", 1, 0, 1, 1.00, 64, 0.0, 280, false);     // Gen-I web tier.
  add("C2-S1", 2, 1, 2, 1.45, 64, 0.0, 320, false);  // Gen-II web tier.
  add("C2-S2", 2, 2, 2, 1.45, 128, 0.0, 340, false);
  add("C3", 3, 0, 3, 1.85, 96, 0.0, 360, false);  // Gen-III web tier.
  // Storage-oriented SKUs (flash-heavy).
  add("C4-S1", 4, 1, 1, 0.90, 128, 8.0, 380, false);
  add("C4-S2", 4, 2, 2, 1.30, 128, 16.0, 420, false);
  add("C4-S3", 4, 3, 3, 1.70, 256, 32.0, 460, false);
  // Memory-heavy cache SKUs.
  add("C5", 5, 0, 2, 1.35, 512, 0.0, 400, false);
  add("C6-S1", 6, 1, 1, 0.95, 256, 2.0, 350, false);
  add("C6-S2", 6, 2, 3, 1.80, 384, 4.0, 410, false);
  // Accelerator SKU (single subtype; the newest MSBs only).
  add("C7-S1", 7, 1, 3, 2.40, 256, 4.0, 900, true);
  add("C8", 8, 0, 1, 1.00, 96, 1.0, 300, false);  // Legacy mixed-use, discontinued.
  return catalog;
}

}  // namespace ras
