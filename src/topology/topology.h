// Region topology: Region -> Datacenter -> MSB (main switch board, the
// largest fault domain, Section 2.1) -> Rack -> Server.
//
// The topology is built once by the fleet generator and is immutable
// afterwards; servers enter and leave service via broker state, not by
// mutating the topology.

#ifndef RAS_SRC_TOPOLOGY_TOPOLOGY_H_
#define RAS_SRC_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "src/topology/hardware.h"
#include "src/util/status.h"

namespace ras {

using ServerId = uint32_t;
using RackId = uint32_t;
using MsbId = uint16_t;
using DatacenterId = uint16_t;

inline constexpr ServerId kInvalidServer = 0xffffffff;

// Fault-domain / partition scopes of the MIP model's psi partitions
// (Table 1): psi_K = racks, psi_F = MSBs, psi_D = datacenters.
enum class Scope {
  kRack,
  kMsb,
  kDatacenter,
};

struct Server {
  ServerId id = kInvalidServer;
  HardwareTypeId type = kInvalidHardwareType;
  RackId rack = 0;
  MsbId msb = 0;
  DatacenterId dc = 0;
};

// Immutable region layout plus fast membership indexes.
class RegionTopology {
 public:
  // --- Construction (used by the fleet generator) ---
  DatacenterId AddDatacenter();
  Result<MsbId> AddMsb(DatacenterId dc);
  Result<RackId> AddRack(MsbId msb);
  Result<ServerId> AddServer(RackId rack, HardwareTypeId type);
  // Builds the per-scope membership indexes; call once after construction.
  void Finalize();

  // --- Sizes ---
  size_t num_servers() const { return servers_.size(); }
  size_t num_racks() const { return rack_msb_.size(); }
  size_t num_msbs() const { return msb_dc_.size(); }
  size_t num_datacenters() const { return num_datacenters_; }

  // --- Lookup ---
  const Server& server(ServerId id) const { return servers_[id]; }
  const std::vector<Server>& servers() const { return servers_; }
  MsbId rack_msb(RackId rack) const { return rack_msb_[rack]; }
  DatacenterId msb_datacenter(MsbId msb) const { return msb_dc_[msb]; }
  DatacenterId rack_datacenter(RackId rack) const { return msb_dc_[rack_msb_[rack]]; }

  // Partition-group id of a server under a scope: rack id, MSB id, or DC id.
  uint32_t GroupOf(Scope scope, ServerId id) const;
  // Number of groups a scope partitions the region into.
  size_t GroupCount(Scope scope) const;

  // Requires Finalize(). Server ids grouped by scope group.
  const std::vector<ServerId>& ServersInMsb(MsbId msb) const { return servers_by_msb_[msb]; }
  const std::vector<ServerId>& ServersInRack(RackId rack) const { return servers_by_rack_[rack]; }
  const std::vector<ServerId>& ServersInDatacenter(DatacenterId dc) const {
    return servers_by_dc_[dc];
  }

  bool finalized() const { return finalized_; }

 private:
  std::vector<Server> servers_;
  std::vector<MsbId> rack_msb_;
  std::vector<DatacenterId> msb_dc_;
  size_t num_datacenters_ = 0;
  bool finalized_ = false;

  std::vector<std::vector<ServerId>> servers_by_rack_;
  std::vector<std::vector<ServerId>> servers_by_msb_;
  std::vector<std::vector<ServerId>> servers_by_dc_;
};

}  // namespace ras

#endif  // RAS_SRC_TOPOLOGY_TOPOLOGY_H_
