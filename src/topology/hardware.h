// Hardware catalog: the <Category-Subtype> server types of the paper's
// Section 2.2 (Figure 2), with the physical attributes RAS reasons about
// (compute throughput per CPU generation, memory, flash, power draw).

#ifndef RAS_SRC_TOPOLOGY_HARDWARE_H_
#define RAS_SRC_TOPOLOGY_HARDWARE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace ras {

// Index into a HardwareCatalog.
using HardwareTypeId = uint16_t;
inline constexpr HardwareTypeId kInvalidHardwareType = 0xffff;

// One server SKU. The paper divides hardware into categories (C1..C9) with
// subtypes (S1..S3) whenever there is a notable performance difference.
struct HardwareType {
  std::string name;         // e.g. "C4-S2".
  uint16_t category = 0;    // C index.
  uint16_t subtype = 0;     // S index within the category (0 if none).
  uint8_t cpu_generation = 1;  // Processor generation, 1-based (Figure 3).
  double compute_units = 1.0;  // Baseline throughput of one server of this SKU.
  double memory_gb = 64.0;
  double flash_tb = 0.0;
  double power_watts = 300.0;  // Nominal draw, for the power-spread model (Figure 14).
  bool has_gpu = false;
};

// Immutable once built; shared by the fleet generator, RRU tables and solver.
class HardwareCatalog {
 public:
  // Returns the id of the added type. Names must be unique.
  Result<HardwareTypeId> Add(HardwareType type);

  size_t size() const { return types_.size(); }
  const HardwareType& type(HardwareTypeId id) const { return types_[id]; }
  const std::vector<HardwareType>& types() const { return types_; }

  // Returns kInvalidHardwareType if no type has this name.
  HardwareTypeId FindByName(const std::string& name) const;

 private:
  std::vector<HardwareType> types_;
};

// Builds the 9-category / 12-subtype catalog used throughout the benches,
// mirroring the SKU mix of the paper's Figure 2 (three compute generations,
// storage-heavy types, memory-heavy types, and one GPU type).
HardwareCatalog MakePaperCatalog();

}  // namespace ras

#endif  // RAS_SRC_TOPOLOGY_HARDWARE_H_
