#include "src/core/admission.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/core/buffer_policy.h"

namespace ras {

AdmissionReport CheckGrantable(const ReservationSpec& spec, const RegionTopology& topology,
                               const HardwareCatalog& catalog) {
  AdmissionReport report;

  std::set<MsbId> msbs;
  std::set<HardwareTypeId> types;
  for (const Server& s : topology.servers()) {
    double v = spec.ValueOfType(s.type);
    if (v <= 0.0) {
      continue;
    }
    report.available_rru += v;
    ++report.compatible_servers;
    msbs.insert(s.msb);
    types.insert(s.type);
  }
  report.compatible_msbs = msbs.size();

  char buf[256];
  if (report.compatible_servers == 0) {
    report.message = "no server in the region matches the request's hardware types";
    return report;
  }

  // Embedded buffer requirement: the best achievable worst-MSB share times
  // C_r must also be provisioned (Expression 6). Waterfill gives the floor.
  double min_worst_share = spec.needs_correlated_buffer
                               ? MinPossibleMaxMsbShare(spec, topology)
                               : 0.0;
  report.required_rru = spec.capacity_rru * (1.0 + min_worst_share);

  if (spec.needs_correlated_buffer && msbs.size() < 2) {
    std::snprintf(buf, sizeof(buf),
                  "compatible hardware exists in only %zu MSB(s); a buffered reservation "
                  "cannot survive an MSB loss — broaden the hardware types or drop the "
                  "correlated-failure guarantee",
                  msbs.size());
    report.message = buf;
    return report;
  }
  if (report.available_rru < report.required_rru) {
    std::snprintf(buf, sizeof(buf),
                  "region offers %.1f RRU of compatible hardware (%zu servers, %zu types) "
                  "but the request needs %.1f RRU (%.1f capacity + %.0f%% embedded buffer) — "
                  "reduce the request or accept more hardware types",
                  report.available_rru, report.compatible_servers, types.size(),
                  report.required_rru, spec.capacity_rru, 100.0 * min_worst_share);
    report.message = buf;
    return report;
  }

  // Affinity sanity: the named datacenters must hold enough compatible RRUs.
  for (const auto& [dc, share] : spec.dc_affinity) {
    double dc_rru = 0.0;
    if (dc < topology.num_datacenters()) {
      for (ServerId id : topology.ServersInDatacenter(dc)) {
        dc_rru += spec.ValueOfType(topology.server(id).type);
      }
    }
    double needed = std::max(0.0, share - spec.affinity_theta) * spec.capacity_rru;
    if (dc_rru < needed) {
      std::snprintf(buf, sizeof(buf),
                    "affinity wants %.1f RRU in datacenter %u but only %.1f RRU of "
                    "compatible hardware exists there — relax the affinity share/theta or "
                    "accept more hardware types",
                    needed, dc, dc_rru);
      report.message = buf;
      return report;
    }
  }

  std::snprintf(buf, sizeof(buf),
                "grantable: %.1f RRU needed (incl. %.0f%% embedded buffer), %.1f RRU of "
                "compatible hardware across %zu MSBs",
                report.required_rru, 100.0 * min_worst_share, report.available_rru,
                msbs.size());
  report.message = buf;
  report.grantable = true;
  (void)catalog;
  return report;
}

}  // namespace ras
