// Initial-state construction (the "Initial State" step of Figure 8): a
// greedy, spread-aware repair of the current assignment that gives the MIP a
// feasible integer warm start — keep every server where it is, then fill
// capacity deficits from the free pool, always adding to the MSB where the
// reservation currently holds the least capacity.
//
// This is also RAS's fallback allocator: if the MIP hits its time limit with
// no better incumbent, the greedy solution is what ships.

#ifndef RAS_SRC_CORE_INITIAL_ASSIGNMENT_H_
#define RAS_SRC_CORE_INITIAL_ASSIGNMENT_H_

#include <vector>

#include "src/core/model_builder.h"
#include "src/core/solve_input.h"

namespace ras {

// Returns assignment counts aligned with built.assignment_vars: the current
// counts X plus greedy fills for reservations short of capacity + buffer.
std::vector<double> BuildInitialCounts(const SolveInput& input,
                                       const std::vector<EquivalenceClass>& classes,
                                       const BuiltModel& built);

// The underlying repair: starting from arbitrary (supply-respecting)
// assignment counts, greedily fill each under-capacity reservation from the
// remaining free supply, spread-first. BuildInitialCounts is this applied to
// the current assignment X; the LP-rounding heuristic (lp_rounding.h) applies
// it to a rounded LP point.
std::vector<double> RepairCounts(const SolveInput& input,
                                 const std::vector<EquivalenceClass>& classes,
                                 const BuiltModel& built, std::vector<double> counts);

}  // namespace ras

#endif  // RAS_SRC_CORE_INITIAL_ASSIGNMENT_H_
