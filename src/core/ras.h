// Umbrella public header for the RAS library.
//
// Typical flow (see examples/quickstart.cc):
//
//   Fleet fleet = GenerateFleet(options);            // or your own topology
//   ResourceBroker broker(&fleet.topology);
//   ReservationRegistry registry;
//   EnsureSharedBuffers(registry, fleet.topology, fleet.catalog);
//   registry.Create(my_reservation_spec);            // capacity request
//   AsyncSolver solver;
//   solver.SolveOnce(broker, registry, fleet.catalog);   // off critical path
//   TwineAllocator twine(&fleet.catalog, &broker);
//   OnlineMover mover(&broker, &registry, &twine);
//   mover.ReconcileAll();                            // materialize bindings
//   twine.SubmitJob(job);                            // real-time placement

#ifndef RAS_SRC_CORE_RAS_H_
#define RAS_SRC_CORE_RAS_H_

#include "src/core/admission.h"
#include "src/core/assignment_decoder.h"
#include "src/core/async_solver.h"
#include "src/core/buffer_policy.h"
#include "src/core/capacity_portal.h"
#include "src/core/emergency.h"
#include "src/core/local_search.h"
#include "src/core/explain.h"
#include "src/core/initial_assignment.h"
#include "src/core/lp_rounding.h"
#include "src/core/model_builder.h"
#include "src/core/online_mover.h"
#include "src/core/reservation.h"
#include "src/core/rru.h"
#include "src/core/solve_input.h"
#include "src/core/state_io.h"

#endif  // RAS_SRC_CORE_RAS_H_
