#include "src/core/buffer_policy.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ras {

std::vector<ReservationId> EnsureSharedBuffers(ReservationRegistry& registry,
                                               const RegionTopology& topology,
                                               const HardwareCatalog& catalog, double fraction) {
  // Population per hardware type.
  std::vector<size_t> population(catalog.size(), 0);
  for (const Server& s : topology.servers()) {
    population[s.type]++;
  }

  std::vector<ReservationId> ids;
  for (size_t t = 0; t < catalog.size(); ++t) {
    if (population[t] == 0) {
      continue;
    }
    double capacity = std::max(1.0, std::ceil(static_cast<double>(population[t]) * fraction));
    std::string name = "shared-buffer/" + catalog.type(static_cast<HardwareTypeId>(t)).name;

    // Find an existing buffer reservation for this type.
    ReservationId existing = kUnassigned;
    for (const ReservationSpec* spec : registry.All()) {
      if (spec->is_shared_random_buffer && spec->name == name) {
        existing = spec->id;
        break;
      }
    }
    if (existing != kUnassigned) {
      ReservationSpec updated = *registry.Find(existing);
      updated.capacity_rru = capacity;
      (void)registry.Update(updated);
      ids.push_back(existing);
      continue;
    }

    ReservationSpec spec;
    spec.name = name;
    spec.capacity_rru = capacity;  // Count-based: 1 RRU per server of the type.
    spec.rru_per_type.assign(catalog.size(), 0.0);
    spec.rru_per_type[t] = 1.0;
    spec.needs_correlated_buffer = false;  // Random failures only (Section 3.3.1).
    spec.is_shared_random_buffer = true;
    auto created = registry.Create(std::move(spec));
    if (created.ok()) {
      ids.push_back(*created);
    }
  }
  return ids;
}

double MaxMsbShare(const ResourceBroker& broker, ReservationId reservation) {
  const auto& servers = broker.ServersInReservation(reservation);
  if (servers.empty()) {
    return 0.0;
  }
  const RegionTopology& topo = broker.topology();
  std::map<MsbId, size_t> per_msb;
  for (ServerId id : servers) {
    per_msb[topo.server(id).msb]++;
  }
  size_t worst = 0;
  for (const auto& [msb, count] : per_msb) {
    worst = std::max(worst, count);
  }
  return static_cast<double>(worst) / static_cast<double>(servers.size());
}

double RegionEmbeddedBufferFraction(const ResourceBroker& broker,
                                    const ReservationRegistry& registry) {
  const RegionTopology& topo = broker.topology();
  size_t total = 0;
  size_t worst_sum = 0;
  for (const ReservationSpec* spec : registry.All()) {
    if (!spec->needs_correlated_buffer) {
      continue;
    }
    const auto& servers = broker.ServersInReservation(spec->id);
    if (servers.empty()) {
      continue;
    }
    std::map<MsbId, size_t> per_msb;
    for (ServerId id : servers) {
      per_msb[topo.server(id).msb]++;
    }
    size_t worst = 0;
    for (const auto& [msb, count] : per_msb) {
      worst = std::max(worst, count);
    }
    total += servers.size();
    worst_sum += worst;
  }
  return total == 0 ? 0.0 : static_cast<double>(worst_sum) / static_cast<double>(total);
}

double MinPossibleMaxMsbShare(const ReservationSpec& spec, const RegionTopology& topology) {
  if (spec.capacity_rru <= 0.0) {
    return 0.0;
  }
  // Per-MSB compatible RRU capacity.
  std::vector<double> caps(topology.num_msbs(), 0.0);
  for (const Server& s : topology.servers()) {
    caps[s.msb] += spec.ValueOfType(s.type);
  }
  double total = 0.0;
  for (double c : caps) {
    total += c;
  }
  if (total < spec.capacity_rru) {
    return 1.0;  // Cannot be satisfied at all; the bound degenerates.
  }
  // Waterfill: find the level L with sum(min(cap, L)) = C_r by bisection.
  double lo = 0.0;
  double hi = *std::max_element(caps.begin(), caps.end());
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    double filled = 0.0;
    for (double c : caps) {
      filled += std::min(c, mid);
    }
    if (filled >= spec.capacity_rru) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi / spec.capacity_rru;
}

double PerfectSpreadBound(const RegionTopology& topology) {
  return topology.num_msbs() == 0 ? 0.0 : 1.0 / static_cast<double>(topology.num_msbs());
}

}  // namespace ras
