#include "src/core/solve_input.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

namespace ras {

int SolveInput::ReservationIndex(ReservationId id) const {
  for (size_t i = 0; i < reservations.size(); ++i) {
    if (reservations[i].id == id) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

SolveInput SnapshotSolveInput(const ResourceBroker& broker, const ReservationRegistry& registry,
                              const HardwareCatalog& catalog) {
  SolveInput input;
  input.topology = &broker.topology();
  input.catalog = &catalog;
  for (const ReservationSpec* spec : registry.AllSolvable()) {
    input.reservations.push_back(*spec);
  }
  input.servers.resize(broker.num_servers());
  for (ServerId id = 0; id < broker.num_servers(); ++id) {
    const ServerRecord& rec = broker.record(id);
    ServerSolveState& state = input.servers[id];
    if (rec.elastic_loan) {
      // Loaned-out buffer capacity belongs to its home reservation for
      // solving purposes, and is freely movable.
      state.current = rec.home;
      state.in_use = false;
    } else {
      state.current = rec.current;
      state.in_use = rec.has_containers;
    }
    state.available = !IsUnplanned(rec.unavailability);
    if (state.current != kUnassigned) {
      const ReservationSpec* owner = registry.Find(state.current);
      if (owner == nullptr) {
        // A deleted reservation leaves dangling bindings; treat them as free
        // so the next solve reclaims the servers.
        state.current = kUnassigned;
        state.in_use = false;
      } else if (owner->externally_managed) {
        // Legacy-managed capacity is invisible to the solver: neither supply
        // nor rebind target.
        state.available = false;
      }
    }
  }
  return input;
}

Status ValidateSolveInput(const SolveInput& input) {
  if (input.topology == nullptr || input.catalog == nullptr) {
    return Status::InvalidArgument("snapshot missing topology or catalog");
  }
  if (input.servers.size() != input.topology->num_servers()) {
    return Status::Internal("snapshot covers " + std::to_string(input.servers.size()) +
                            " servers, fleet has " +
                            std::to_string(input.topology->num_servers()));
  }
  std::unordered_set<ReservationId> ids;
  ids.reserve(input.reservations.size());
  for (const ReservationSpec& spec : input.reservations) {
    if (spec.id == kUnassigned) {
      return Status::Internal("snapshot reservation '" + spec.name + "' has no id");
    }
    if (!ids.insert(spec.id).second) {
      return Status::Internal("snapshot has duplicate reservation id " +
                              std::to_string(spec.id));
    }
    if (spec.capacity_rru < 0.0) {
      return Status::Internal("snapshot reservation " + std::to_string(spec.id) +
                              " has negative capacity");
    }
    if (spec.rru_per_type.empty()) {
      return Status::Internal("snapshot reservation " + std::to_string(spec.id) +
                              " has an empty RRU vector");
    }
  }
  for (ServerId id = 0; id < input.servers.size(); ++id) {
    ReservationId current = input.servers[id].current;
    if (current != kUnassigned && ids.count(current) == 0) {
      return Status::Internal("snapshot server " + std::to_string(id) +
                              " bound to unknown reservation " + std::to_string(current));
    }
  }
  return Status::Ok();
}

std::vector<EquivalenceClass> BuildEquivalenceClasses(const SolveInput& input, Scope granularity,
                                                      const ClassFilter& filter) {
  assert(input.topology != nullptr);
  const RegionTopology& topo = *input.topology;
  using Key = std::tuple<uint32_t, HardwareTypeId, ReservationId, bool>;
  std::map<Key, EquivalenceClass> classes;  // Ordered => deterministic output.

  for (ServerId id = 0; id < input.servers.size(); ++id) {
    const ServerSolveState& state = input.servers[id];
    if (!state.available) {
      continue;  // Availability constraint: failed servers are not capacity.
    }
    if (filter.reservations != nullptr && state.current != kUnassigned &&
        filter.reservations->count(state.current) == 0) {
      continue;  // Phase-2 restriction: other reservations' servers are fixed.
    }
    const Server& s = topo.server(id);
    uint32_t group = topo.GroupOf(granularity, id);
    Key key{group, s.type, state.current, state.in_use};
    auto [it, inserted] = classes.try_emplace(key);
    EquivalenceClass& cls = it->second;
    if (inserted) {
      cls.group = group;
      cls.msb = s.msb;
      cls.dc = s.dc;
      cls.type = s.type;
      cls.current = state.current;
      cls.in_use = state.in_use;
    }
    cls.servers.push_back(id);
  }

  std::vector<EquivalenceClass> out;
  out.reserve(classes.size());
  for (auto& [key, cls] : classes) {
    out.push_back(std::move(cls));
  }
  return out;
}

}  // namespace ras
