#include "src/core/assignment_decoder.h"

#include <cassert>
#include <cmath>

namespace ras {

DecodedAssignment DecodeAssignment(const SolveInput& input,
                                   const std::vector<EquivalenceClass>& classes,
                                   const BuiltModel& built, const std::vector<double>& solution) {
  DecodedAssignment out;
  assert(solution.size() == built.model.num_variables());

  for (size_t c = 0; c < classes.size(); ++c) {
    const EquivalenceClass& cls = classes[c];
    // Quotas for this class: (reservation id, rounded count).
    std::vector<std::pair<ReservationId, long>> quotas;
    long keep_in_place = 0;
    for (int var_index : built.class_to_vars[c]) {
      const auto& av = built.assignment_vars[static_cast<size_t>(var_index)];
      long n = std::lround(solution[av.var]);
      if (n <= 0) {
        continue;
      }
      ReservationId res = input.reservations[static_cast<size_t>(av.reservation_index)].id;
      if (res == cls.current) {
        keep_in_place = n;
      } else {
        quotas.push_back({res, n});
      }
    }

    // Stable walk over the class's servers: the first `keep_in_place` stay,
    // the rest drain into other quotas, leftovers return to the free pool.
    size_t next = 0;
    for (; next < cls.servers.size() && keep_in_place > 0; ++next, --keep_in_place) {
      out.targets.push_back({cls.servers[next], cls.current});
    }
    for (auto& [res, quota] : quotas) {
      for (; next < cls.servers.size() && quota > 0; ++next, --quota) {
        out.targets.push_back({cls.servers[next], res});
        ++out.moves_total;
        (cls.in_use ? out.moves_in_use : out.moves_idle)++;
      }
    }
    for (; next < cls.servers.size(); ++next) {
      out.targets.push_back({cls.servers[next], kUnassigned});
      if (cls.current != kUnassigned) {
        ++out.moves_total;
        (cls.in_use ? out.moves_in_use : out.moves_idle)++;
      }
    }
  }
  return out;
}

}  // namespace ras
