#include "src/core/state_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <vector>

namespace ras {
namespace {

constexpr char kHeader[] = "ras-state v1";

std::vector<std::string> Split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == sep) {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

std::string IdToText(ReservationId id) {
  return id == kUnassigned ? "-" : std::to_string(id);
}

bool TextToId(const std::string& text, ReservationId* id) {
  if (text == "-") {
    *id = kUnassigned;
    return true;
  }
  char* end = nullptr;
  unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return false;
  }
  *id = static_cast<ReservationId>(value);
  return true;
}

// Strict double parse: the whole field must be a finite number.
bool TextToDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

// A capacity or per-type RRU value: finite, non-negative, bounded.
bool ValidRru(double value) { return value >= 0.0 && value <= kMaxStateRru; }

constexpr unsigned kFlagBuffered = 1u;
constexpr unsigned kFlagSharedBuffer = 2u;
constexpr unsigned kFlagElastic = 4u;
constexpr unsigned kFlagStorage = 8u;
constexpr unsigned kFlagExternal = 16u;

}  // namespace

std::string EscapeStateField(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '|') {
      out += "%7C";
    } else if (c == '\n') {
      out += "%0A";
    } else if (c == '%') {
      out += "%25";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeStateField(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      std::string hex = s.substr(i + 1, 2);
      if (hex == "7C") {
        out += '|';
        i += 2;
        continue;
      }
      if (hex == "0A") {
        out += '\n';
        i += 2;
        continue;
      }
      if (hex == "25") {
        out += '%';
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string SerializeReservationRecord(const ReservationSpec& spec) {
  std::ostringstream out;
  char buf[64];
  unsigned flags = (spec.needs_correlated_buffer ? kFlagBuffered : 0) |
                   (spec.is_shared_random_buffer ? kFlagSharedBuffer : 0) |
                   (spec.is_elastic ? kFlagElastic : 0) | (spec.is_storage ? kFlagStorage : 0) |
                   (spec.externally_managed ? kFlagExternal : 0);
  out << "reservation|" << spec.id << "|" << EscapeStateField(spec.name) << "|";
  std::snprintf(buf, sizeof(buf), "%.9g", spec.capacity_rru);
  out << buf << "|" << flags << "|";
  std::snprintf(buf, sizeof(buf), "%.9g|%.9g|%.9g|%.9g", spec.msb_spread_alpha,
                spec.rack_spread_alpha, spec.affinity_theta, spec.max_msb_fraction_hard);
  out << buf << "|" << EscapeStateField(spec.host_profile) << "|";
  for (size_t t = 0; t < spec.rru_per_type.size(); ++t) {
    std::snprintf(buf, sizeof(buf), "%s%.9g", t == 0 ? "" : ",", spec.rru_per_type[t]);
    out << buf;
  }
  out << "|";
  bool first = true;
  for (const auto& [dc, share] : spec.dc_affinity) {
    std::snprintf(buf, sizeof(buf), "%s%u=%.9g", first ? "" : ",", dc, share);
    out << buf;
    first = false;
  }
  return out.str();
}

Status ParseReservationRecord(const std::string& line, ReservationSpec* spec) {
  std::vector<std::string> f = Split(line, '|');
  if (f.empty() || f[0] != "reservation") {
    return Status::InvalidArgument("not a reservation record");
  }
  if (f.size() != 12) {
    return Status::InvalidArgument("reservation record needs 12 fields");
  }
  ReservationSpec out;
  ReservationId id;
  if (!TextToId(f[1], &id) || id == kUnassigned) {
    return Status::InvalidArgument("bad reservation id: " + f[1]);
  }
  out.id = id;
  out.name = UnescapeStateField(f[2]);
  if (!TextToDouble(f[3], &out.capacity_rru) || !ValidRru(out.capacity_rru)) {
    return Status::InvalidArgument("capacity out of range: " + f[3]);
  }
  unsigned flags = static_cast<unsigned>(std::strtoul(f[4].c_str(), nullptr, 10));
  out.needs_correlated_buffer = flags & kFlagBuffered;
  out.is_shared_random_buffer = flags & kFlagSharedBuffer;
  out.is_elastic = flags & kFlagElastic;
  out.is_storage = flags & kFlagStorage;
  out.externally_managed = flags & kFlagExternal;
  if (!TextToDouble(f[5], &out.msb_spread_alpha) || !TextToDouble(f[6], &out.rack_spread_alpha) ||
      !TextToDouble(f[7], &out.affinity_theta) ||
      !TextToDouble(f[8], &out.max_msb_fraction_hard)) {
    return Status::InvalidArgument("bad spread/affinity parameters");
  }
  out.host_profile = UnescapeStateField(f[9]);
  for (const std::string& v : Split(f[10], ',')) {
    if (v.empty()) {
      continue;
    }
    double value;
    if (!TextToDouble(v, &value) || !ValidRru(value)) {
      return Status::InvalidArgument("RRU value out of range: " + v);
    }
    out.rru_per_type.push_back(value);
  }
  if (!f[11].empty()) {
    for (const std::string& pair : Split(f[11], ',')) {
      std::vector<std::string> kv = Split(pair, '=');
      double share;
      if (kv.size() != 2 || !TextToDouble(kv[1], &share)) {
        return Status::InvalidArgument("bad affinity pair: " + pair);
      }
      out.dc_affinity[static_cast<DatacenterId>(std::strtoul(kv[0].c_str(), nullptr, 10))] = share;
    }
  }
  *spec = std::move(out);
  return Status::Ok();
}

std::string SerializeServerRecord(const ServerRecord& r) {
  std::ostringstream out;
  out << "server|" << r.server << "|" << IdToText(r.current) << "|" << IdToText(r.target) << "|"
      << IdToText(r.home) << "|" << (r.elastic_loan ? 1 : 0) << "|"
      << static_cast<int>(r.unavailability) << "|" << (r.has_containers ? 1 : 0);
  return out.str();
}

Status ParseServerRecord(const std::string& line, size_t num_servers, ServerStateRecord* out) {
  std::vector<std::string> f = Split(line, '|');
  if (f.empty() || f[0] != "server") {
    return Status::InvalidArgument("not a server record");
  }
  if (f.size() != 8) {
    return Status::InvalidArgument("server record needs 8 fields");
  }
  ServerStateRecord s;
  char* end = nullptr;
  unsigned long sid = std::strtoul(f[1].c_str(), &end, 10);
  if (f[1].empty() || end == nullptr || *end != '\0' || sid >= num_servers) {
    return Status::InvalidArgument("server id out of range: " + f[1]);
  }
  s.id = static_cast<ServerId>(sid);
  if (!TextToId(f[2], &s.current) || !TextToId(f[3], &s.target) || !TextToId(f[4], &s.home)) {
    return Status::InvalidArgument("bad binding ids");
  }
  s.elastic_loan = f[5] == "1";
  int unavail = std::atoi(f[6].c_str());
  if (unavail < 0 || unavail > static_cast<int>(Unavailability::kUnplannedHardware)) {
    return Status::InvalidArgument("bad unavailability code: " + f[6]);
  }
  s.unavailability = static_cast<Unavailability>(unavail);
  s.has_containers = f[7] == "1";
  *out = s;
  return Status::Ok();
}

void ApplyServerRecord(const ServerStateRecord& s, ResourceBroker& broker) {
  broker.SetCurrent(s.id, s.current);
  broker.SetTarget(s.id, s.target);
  broker.SetElasticLoan(s.id, s.home, s.elastic_loan);
  broker.SetUnavailability(s.id, s.unavailability);
  broker.SetHasContainers(s.id, s.has_containers);
}

std::string SerializeRegionState(const ResourceBroker& broker,
                                 const ReservationRegistry& registry) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "# servers=" << broker.num_servers() << "\n";
  for (const ReservationSpec* spec : registry.All()) {
    out << SerializeReservationRecord(*spec) << "\n";
  }
  for (ServerId id = 0; id < broker.num_servers(); ++id) {
    const ServerRecord& r = broker.record(id);
    // Skip all-default records to keep snapshots proportional to usage.
    if (r.current == kUnassigned && r.target == kUnassigned && !r.elastic_loan &&
        r.unavailability == Unavailability::kNone && !r.has_containers) {
      continue;
    }
    out << SerializeServerRecord(r) << "\n";
  }
  return out.str();
}

Status DeserializeRegionState(const std::string& text, ResourceBroker& broker,
                              ReservationRegistry& registry) {
  if (registry.size() != 0) {
    return Status::FailedPrecondition("restore requires an empty registry");
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing ras-state header");
  }

  // Two-pass: validate everything — syntax, ranges, duplicates — before
  // mutating either the registry or the broker, so failure has no partial
  // effects.
  std::vector<ReservationSpec> specs;
  std::vector<ServerStateRecord> servers;
  std::set<ReservationId> seen_reservations;
  std::set<ServerId> seen_servers;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto bad = [&line_no](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + why);
    };
    if (line.rfind("reservation|", 0) == 0) {
      ReservationSpec spec;
      Status parsed = ParseReservationRecord(line, &spec);
      if (!parsed.ok()) {
        return bad(parsed.message());
      }
      if (!seen_reservations.insert(spec.id).second) {
        return bad("duplicate reservation id " + std::to_string(spec.id));
      }
      specs.push_back(std::move(spec));
    } else if (line.rfind("server|", 0) == 0) {
      ServerStateRecord s;
      Status parsed = ParseServerRecord(line, broker.num_servers(), &s);
      if (!parsed.ok()) {
        return bad(parsed.message());
      }
      if (!seen_servers.insert(s.id).second) {
        return bad("duplicate server id " + std::to_string(s.id));
      }
      servers.push_back(s);
    } else {
      return bad("unknown record type: " + Split(line, '|')[0]);
    }
  }

  for (ReservationSpec& spec : specs) {
    Result<ReservationId> restored = registry.Restore(std::move(spec));
    if (!restored.ok()) {
      return restored.status();
    }
  }
  for (const ServerStateRecord& s : servers) {
    ApplyServerRecord(s, broker);
  }
  return Status::Ok();
}

}  // namespace ras
