#include "src/core/state_io.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace ras {
namespace {

constexpr char kHeader[] = "ras-state v1";

// Field separator escape: names are free-form text.
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '|') {
      out += "%7C";
    } else if (c == '\n') {
      out += "%0A";
    } else if (c == '%') {
      out += "%25";
    } else {
      out += c;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      std::string hex = s.substr(i + 1, 2);
      if (hex == "7C") {
        out += '|';
        i += 2;
        continue;
      }
      if (hex == "0A") {
        out += '\n';
        i += 2;
        continue;
      }
      if (hex == "25") {
        out += '%';
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == sep) {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

std::string IdToText(ReservationId id) {
  return id == kUnassigned ? "-" : std::to_string(id);
}

bool TextToId(const std::string& text, ReservationId* id) {
  if (text == "-") {
    *id = kUnassigned;
    return true;
  }
  char* end = nullptr;
  unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return false;
  }
  *id = static_cast<ReservationId>(value);
  return true;
}

constexpr unsigned kFlagBuffered = 1u;
constexpr unsigned kFlagSharedBuffer = 2u;
constexpr unsigned kFlagElastic = 4u;
constexpr unsigned kFlagStorage = 8u;
constexpr unsigned kFlagExternal = 16u;

}  // namespace

std::string SerializeRegionState(const ResourceBroker& broker,
                                 const ReservationRegistry& registry) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "# servers=" << broker.num_servers() << "\n";

  char buf[64];
  for (const ReservationSpec* spec : registry.All()) {
    unsigned flags = (spec->needs_correlated_buffer ? kFlagBuffered : 0) |
                     (spec->is_shared_random_buffer ? kFlagSharedBuffer : 0) |
                     (spec->is_elastic ? kFlagElastic : 0) |
                     (spec->is_storage ? kFlagStorage : 0) |
                     (spec->externally_managed ? kFlagExternal : 0);
    out << "reservation|" << spec->id << "|" << Escape(spec->name) << "|";
    std::snprintf(buf, sizeof(buf), "%.9g", spec->capacity_rru);
    out << buf << "|" << flags << "|";
    std::snprintf(buf, sizeof(buf), "%.9g|%.9g|%.9g|%.9g", spec->msb_spread_alpha,
                  spec->rack_spread_alpha, spec->affinity_theta, spec->max_msb_fraction_hard);
    out << buf << "|" << Escape(spec->host_profile) << "|";
    for (size_t t = 0; t < spec->rru_per_type.size(); ++t) {
      std::snprintf(buf, sizeof(buf), "%s%.9g", t == 0 ? "" : ",", spec->rru_per_type[t]);
      out << buf;
    }
    out << "|";
    bool first = true;
    for (const auto& [dc, share] : spec->dc_affinity) {
      std::snprintf(buf, sizeof(buf), "%s%u=%.9g", first ? "" : ",", dc, share);
      out << buf;
      first = false;
    }
    out << "\n";
  }

  for (ServerId id = 0; id < broker.num_servers(); ++id) {
    const ServerRecord& r = broker.record(id);
    // Skip all-default records to keep snapshots proportional to usage.
    if (r.current == kUnassigned && r.target == kUnassigned && !r.elastic_loan &&
        r.unavailability == Unavailability::kNone && !r.has_containers) {
      continue;
    }
    out << "server|" << id << "|" << IdToText(r.current) << "|" << IdToText(r.target) << "|"
        << IdToText(r.home) << "|" << (r.elastic_loan ? 1 : 0) << "|"
        << static_cast<int>(r.unavailability) << "|" << (r.has_containers ? 1 : 0) << "\n";
  }
  return out.str();
}

Status DeserializeRegionState(const std::string& text, ResourceBroker& broker,
                              ReservationRegistry& registry) {
  if (registry.size() != 0) {
    return Status::FailedPrecondition("restore requires an empty registry");
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing ras-state header");
  }

  // Two-pass: validate everything before mutating the broker.
  struct ServerLine {
    ServerId id;
    ReservationId current, target, home;
    bool loan, has_containers;
    Unavailability unavailability;
  };
  std::vector<ReservationSpec> specs;
  std::vector<ServerLine> servers;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::vector<std::string> f = Split(line, '|');
    auto bad = [&line_no](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + why);
    };
    if (f[0] == "reservation") {
      if (f.size() != 12) {
        return bad("reservation record needs 12 fields");
      }
      ReservationSpec spec;
      ReservationId id;
      if (!TextToId(f[1], &id) || id == kUnassigned) {
        return bad("bad reservation id");
      }
      spec.id = id;
      spec.name = Unescape(f[2]);
      spec.capacity_rru = std::atof(f[3].c_str());
      unsigned flags = static_cast<unsigned>(std::strtoul(f[4].c_str(), nullptr, 10));
      spec.needs_correlated_buffer = flags & kFlagBuffered;
      spec.is_shared_random_buffer = flags & kFlagSharedBuffer;
      spec.is_elastic = flags & kFlagElastic;
      spec.is_storage = flags & kFlagStorage;
      spec.externally_managed = flags & kFlagExternal;
      spec.msb_spread_alpha = std::atof(f[5].c_str());
      spec.rack_spread_alpha = std::atof(f[6].c_str());
      spec.affinity_theta = std::atof(f[7].c_str());
      spec.max_msb_fraction_hard = std::atof(f[8].c_str());
      spec.host_profile = Unescape(f[9]);
      for (const std::string& v : Split(f[10], ',')) {
        if (!v.empty()) {
          spec.rru_per_type.push_back(std::atof(v.c_str()));
        }
      }
      if (!f[11].empty()) {
        for (const std::string& pair : Split(f[11], ',')) {
          std::vector<std::string> kv = Split(pair, '=');
          if (kv.size() != 2) {
            return bad("bad affinity pair: " + pair);
          }
          spec.dc_affinity[static_cast<DatacenterId>(std::strtoul(kv[0].c_str(), nullptr, 10))] =
              std::atof(kv[1].c_str());
        }
      }
      specs.push_back(std::move(spec));
    } else if (f[0] == "server") {
      if (f.size() != 8) {
        return bad("server record needs 8 fields");
      }
      ServerLine s;
      char* end = nullptr;
      unsigned long sid = std::strtoul(f[1].c_str(), &end, 10);
      if (sid >= broker.num_servers()) {
        return bad("server id out of range: " + f[1]);
      }
      s.id = static_cast<ServerId>(sid);
      if (!TextToId(f[2], &s.current) || !TextToId(f[3], &s.target) ||
          !TextToId(f[4], &s.home)) {
        return bad("bad binding ids");
      }
      s.loan = f[5] == "1";
      int unavail = std::atoi(f[6].c_str());
      if (unavail < 0 || unavail > static_cast<int>(Unavailability::kUnplannedHardware)) {
        return bad("bad unavailability code: " + f[6]);
      }
      s.unavailability = static_cast<Unavailability>(unavail);
      s.has_containers = f[7] == "1";
      servers.push_back(s);
    } else {
      return bad("unknown record type: " + f[0]);
    }
  }

  for (ReservationSpec& spec : specs) {
    Result<ReservationId> restored = registry.Restore(std::move(spec));
    if (!restored.ok()) {
      return restored.status();
    }
  }
  for (const ServerLine& s : servers) {
    broker.SetCurrent(s.id, s.current);
    broker.SetTarget(s.id, s.target);
    broker.SetElasticLoan(s.id, s.home, s.loan);
    broker.SetUnavailability(s.id, s.unavailability);
    broker.SetHasContainers(s.id, s.has_containers);
  }
  return Status::Ok();
}

}  // namespace ras
