// Capacity-request admission: validate a reservation spec against the
// region's actual hardware before it enters the registry, with actionable
// rejection messages (the Section 5.3 lesson: "when a capacity request gets
// rejected due to some requirements not being met, the rejection message
// needs to explain the reason; otherwise it is not actionable").
//
// The check is deliberately conservative-but-fast: it asks whether the
// request could be satisfied if it were alone on the free + reclaimable
// capacity, accounting for the embedded correlated-failure buffer via the
// same waterfill bound the solver's Expression (6) implies.

#ifndef RAS_SRC_CORE_ADMISSION_H_
#define RAS_SRC_CORE_ADMISSION_H_

#include <string>

#include "src/broker/resource_broker.h"
#include "src/core/reservation.h"

namespace ras {

struct AdmissionReport {
  bool grantable = false;
  // Total RRUs the region's hardware could contribute to this request.
  double available_rru = 0.0;
  // RRUs needed including the embedded buffer implied by the spread of the
  // compatible hardware (capacity + worst-MSB exposure).
  double required_rru = 0.0;
  size_t compatible_servers = 0;
  size_t compatible_msbs = 0;
  // Human-readable explanation; on rejection, says what is missing.
  std::string message;
};

// Checks `spec` against all servers in the topology (an upper bound on what
// any solve could deliver). Use before ReservationRegistry::Create to give
// requesters an actionable yes/no.
AdmissionReport CheckGrantable(const ReservationSpec& spec, const RegionTopology& topology,
                               const HardwareCatalog& catalog);

}  // namespace ras

#endif  // RAS_SRC_CORE_ADMISSION_H_
