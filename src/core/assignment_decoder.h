// Decodes a solved MIP (class-level integer counts) back into concrete
// per-server target bindings (Figure 6, step 3: the solve result persisted to
// the Resource Broker's target field).
//
// Within an equivalence class every server is interchangeable by
// construction, so the decoder's only job is to minimize churn: servers whose
// current binding matches a quota stay put; surplus servers are handed to
// other quotas or freed.

#ifndef RAS_SRC_CORE_ASSIGNMENT_DECODER_H_
#define RAS_SRC_CORE_ASSIGNMENT_DECODER_H_

#include <utility>
#include <vector>

#include "src/core/model_builder.h"
#include "src/core/solve_input.h"

namespace ras {

struct DecodedAssignment {
  // Target binding for every server covered by the classes (including
  // kUnassigned for servers the solver returned to the free pool).
  std::vector<std::pair<ServerId, ReservationId>> targets;
  // Moves relative to the snapshot's current assignment.
  size_t moves_total = 0;
  size_t moves_in_use = 0;
  size_t moves_idle = 0;
};

// `solution` is the MIP's full variable vector for built.model.
DecodedAssignment DecodeAssignment(const SolveInput& input,
                                   const std::vector<EquivalenceClass>& classes,
                                   const BuiltModel& built, const std::vector<double>& solution);

}  // namespace ras

#endif  // RAS_SRC_CORE_ASSIGNMENT_DECODER_H_
