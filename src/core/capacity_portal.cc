#include "src/core/capacity_portal.h"

#include <cassert>
#include <cstdio>

namespace ras {

CapacityPortal::CapacityPortal(ReservationRegistry* registry, const RegionTopology* topology,
                               const HardwareCatalog* catalog)
    : registry_(registry), topology_(topology), catalog_(catalog) {
  assert(registry != nullptr && topology != nullptr && catalog != nullptr);
}

Result<ReservationId> CapacityPortal::SubmitRequest(ReservationSpec spec) {
  // Elastic requests skip admission: they carry no guarantee to validate.
  if (!spec.is_elastic) {
    AdmissionReport report = CheckGrantable(spec, *topology_, *catalog_);
    if (!report.grantable) {
      history_.push_back(PortalEvent{PortalEvent::Kind::kRejected, kUnassigned, spec.name,
                                     spec.capacity_rru, report.message});
      return Status::FailedPrecondition(spec.name + ": " + report.message);
    }
  }
  Result<ReservationId> created = registry_->Create(spec);
  if (!created.ok()) {
    history_.push_back(PortalEvent{PortalEvent::Kind::kRejected, kUnassigned, spec.name,
                                   spec.capacity_rru, created.status().ToString()});
    return created;
  }
  history_.push_back(PortalEvent{PortalEvent::Kind::kCreated, *created, spec.name,
                                 spec.capacity_rru, "granted"});
  return created;
}

Status CapacityPortal::ResizeRequest(ReservationId id, double new_capacity_rru) {
  const ReservationSpec* existing = registry_->Find(id);
  if (existing == nullptr) {
    return Status::NotFound("no reservation with id " + std::to_string(id));
  }
  ReservationSpec updated = *existing;
  double old_capacity = updated.capacity_rru;
  updated.capacity_rru = new_capacity_rru;
  if (new_capacity_rru > old_capacity && !updated.is_elastic) {
    AdmissionReport report = CheckGrantable(updated, *topology_, *catalog_);
    if (!report.grantable) {
      history_.push_back(PortalEvent{PortalEvent::Kind::kRejected, id, updated.name,
                                     new_capacity_rru, report.message});
      return Status::FailedPrecondition(updated.name + ": " + report.message);
    }
  }
  Status status = registry_->Update(updated);
  if (status.ok()) {
    char note[96];
    std::snprintf(note, sizeof(note), "resized %.1f -> %.1f RRU", old_capacity,
                  new_capacity_rru);
    history_.push_back(
        PortalEvent{PortalEvent::Kind::kUpdated, id, updated.name, new_capacity_rru, note});
  }
  return status;
}

Status CapacityPortal::UpdateRequest(const ReservationSpec& spec) {
  const ReservationSpec* existing = registry_->Find(spec.id);
  if (existing == nullptr) {
    return Status::NotFound("no reservation with id " + std::to_string(spec.id));
  }
  if (!spec.is_elastic) {
    AdmissionReport report = CheckGrantable(spec, *topology_, *catalog_);
    if (!report.grantable) {
      history_.push_back(PortalEvent{PortalEvent::Kind::kRejected, spec.id, spec.name,
                                     spec.capacity_rru, report.message});
      return Status::FailedPrecondition(spec.name + ": " + report.message);
    }
  }
  Status status = registry_->Update(spec);
  if (status.ok()) {
    history_.push_back(PortalEvent{PortalEvent::Kind::kUpdated, spec.id, spec.name,
                                   spec.capacity_rru, "spec updated"});
  }
  return status;
}

Status CapacityPortal::DeleteRequest(ReservationId id) {
  const ReservationSpec* existing = registry_->Find(id);
  if (existing == nullptr) {
    return Status::NotFound("no reservation with id " + std::to_string(id));
  }
  PortalEvent event{PortalEvent::Kind::kDeleted, id, existing->name, existing->capacity_rru,
                    "deleted"};
  Status status = registry_->Remove(id);
  if (status.ok()) {
    history_.push_back(event);
  }
  return status;
}

}  // namespace ras
