#include "src/core/reservation.h"

#include <algorithm>

namespace ras {

Result<ReservationId> ReservationRegistry::Create(ReservationSpec spec) {
  if (!spec.is_elastic && spec.capacity_rru <= 0.0) {
    return Status::InvalidArgument("reservation capacity must be positive: " + spec.name);
  }
  if (spec.rru_per_type.empty()) {
    return Status::InvalidArgument("reservation must define RRU values: " + spec.name);
  }
  bool any_positive = std::any_of(spec.rru_per_type.begin(), spec.rru_per_type.end(),
                                  [](double v) { return v > 0.0; });
  if (!any_positive) {
    return Status::InvalidArgument("reservation accepts no hardware type: " + spec.name);
  }
  for (auto& [dc, share] : spec.dc_affinity) {
    // Shares are relative to C_r and may exceed 1: a reservation whose data
    // lives entirely in one datacenter wants capacity *plus its embedded
    // buffer* there, i.e. A ~ 1.1-1.4.
    if (share < 0.0 || share > 2.0) {
      return Status::InvalidArgument("affinity shares must be in [0,2]: " + spec.name);
    }
  }
  ReservationId id = next_id_++;
  spec.id = id;
  specs_[id] = std::move(spec);
  return id;
}

Result<ReservationId> ReservationRegistry::Restore(ReservationSpec spec) {
  if (spec.id == kUnassigned) {
    return Status::InvalidArgument("restore requires an id: " + spec.name);
  }
  if (specs_.count(spec.id) != 0) {
    return Status::AlreadyExists("id already present: " + std::to_string(spec.id));
  }
  ReservationId id = spec.id;
  specs_[id] = std::move(spec);
  if (id >= next_id_) {
    next_id_ = id + 1;
  }
  return id;
}

Status ReservationRegistry::Update(const ReservationSpec& spec) {
  auto it = specs_.find(spec.id);
  if (it == specs_.end()) {
    return Status::NotFound("no reservation with id " + std::to_string(spec.id));
  }
  it->second = spec;
  return Status::Ok();
}

Status ReservationRegistry::Remove(ReservationId id) {
  if (specs_.erase(id) == 0) {
    return Status::NotFound("no reservation with id " + std::to_string(id));
  }
  return Status::Ok();
}

const ReservationSpec* ReservationRegistry::Find(ReservationId id) const {
  auto it = specs_.find(id);
  return it == specs_.end() ? nullptr : &it->second;
}

std::vector<const ReservationSpec*> ReservationRegistry::All() const {
  std::vector<const ReservationSpec*> out;
  out.reserve(specs_.size());
  for (const auto& [id, spec] : specs_) {
    out.push_back(&spec);
  }
  return out;
}

std::vector<const ReservationSpec*> ReservationRegistry::AllSolvable() const {
  std::vector<const ReservationSpec*> out;
  for (const auto& [id, spec] : specs_) {
    if (!spec.is_elastic && !spec.externally_managed) {
      out.push_back(&spec);
    }
  }
  return out;
}

std::vector<const ReservationSpec*> ReservationRegistry::AllElastic() const {
  std::vector<const ReservationSpec*> out;
  for (const auto& [id, spec] : specs_) {
    if (spec.is_elastic) {
      out.push_back(&spec);
    }
  }
  return out;
}

}  // namespace ras
