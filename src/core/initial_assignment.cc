#include "src/core/initial_assignment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace ras {

std::vector<double> BuildInitialCounts(const SolveInput& input,
                                       const std::vector<EquivalenceClass>& classes,
                                       const BuiltModel& built) {
  return RepairCounts(input, classes, built, built.initial_counts);
}

std::vector<double> RepairCounts(const SolveInput& input,
                                 const std::vector<EquivalenceClass>& classes,
                                 const BuiltModel& built, std::vector<double> counts) {
  const size_t num_res = input.reservations.size();
  assert(counts.size() == built.assignment_vars.size());

  // Remaining unassigned supply per class.
  std::vector<double> free_in_class(classes.size(), 0.0);
  for (size_t c = 0; c < classes.size(); ++c) {
    free_in_class[c] = static_cast<double>(classes[c].count());
  }
  for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
    free_in_class[static_cast<size_t>(built.assignment_vars[k].class_index)] -= counts[k];
  }

  // Per (reservation, MSB) RRU sums and per-reservation totals for the
  // current counts.
  std::vector<std::map<uint32_t, double>> msb_rru(num_res);
  std::vector<double> total_rru(num_res, 0.0);
  for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
    const auto& av = built.assignment_vars[k];
    if (counts[k] <= 0.0) {
      continue;
    }
    const EquivalenceClass& cls = classes[static_cast<size_t>(av.class_index)];
    double rru = input.reservations[static_cast<size_t>(av.reservation_index)]
                     .ValueOfType(cls.type) * counts[k];
    msb_rru[av.reservation_index][cls.msb] += rru;
    total_rru[av.reservation_index] += rru;
  }

  // Assignment vars per (reservation, MSB) whose class may still have spare
  // supply: candidates the greedy fill can draw from. Sorted by descending
  // RRU value so we prefer the most valuable SKU first (fewer servers
  // consumed). When starting from the current assignment X, only free-pool
  // classes have spare supply; when starting from a rounded LP point, any
  // under-used class does.
  struct Candidate {
    int var_index;
    size_t class_index;
    double value;
  };
  std::vector<std::map<uint32_t, std::vector<Candidate>>> free_candidates(num_res);
  for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
    const auto& av = built.assignment_vars[k];
    const EquivalenceClass& cls = classes[static_cast<size_t>(av.class_index)];
    if (free_in_class[static_cast<size_t>(av.class_index)] <= 0.0) {
      continue;
    }
    double value = input.reservations[static_cast<size_t>(av.reservation_index)]
                       .ValueOfType(cls.type);
    free_candidates[av.reservation_index][cls.msb].push_back(
        Candidate{static_cast<int>(k), static_cast<size_t>(av.class_index), value});
  }
  for (auto& per_res : free_candidates) {
    for (auto& [msb, cands] : per_res) {
      std::sort(cands.begin(), cands.end(),
                [](const Candidate& a, const Candidate& b) { return a.value > b.value; });
    }
  }

  // Greedy fill, reservation by reservation in id order.
  for (size_t r = 0; r < num_res; ++r) {
    if (built.shortfall_vars[r] == kNoVar) {
      continue;  // Not part of this build (phase-2 subset).
    }
    const ReservationSpec& spec = input.reservations[r];
    bool buffered = spec.needs_correlated_buffer;
    auto effective = [&]() {
      double worst = 0.0;
      if (buffered) {
        for (const auto& [msb, rru] : msb_rru[r]) {
          worst = std::max(worst, rru);
        }
      }
      return total_rru[r] - worst;
    };

    // Add one server at a time to the compatible MSB with the least RRU for
    // this reservation; this simultaneously fills capacity and minimizes the
    // embedded buffer (adding below the max never raises it).
    int guard = 0;
    const int max_iterations = static_cast<int>(input.servers.size()) + 1024;
    while (effective() + 1e-9 < spec.capacity_rru && guard++ < max_iterations) {
      uint32_t best_msb = 0;
      double best_rru = kInf;
      bool found = false;
      for (auto& [msb, cands] : free_candidates[r]) {
        bool has_supply = false;
        for (const Candidate& cand : cands) {
          if (free_in_class[cand.class_index] > 0.0) {
            has_supply = true;
            break;
          }
        }
        if (!has_supply) {
          continue;
        }
        double rru = 0.0;
        auto it = msb_rru[r].find(msb);
        if (it != msb_rru[r].end()) {
          rru = it->second;
        }
        if (rru < best_rru) {
          best_rru = rru;
          best_msb = msb;
          found = true;
        }
      }
      if (!found) {
        break;  // Region exhausted; the shortfall slack absorbs the rest.
      }
      for (const Candidate& cand : free_candidates[r][best_msb]) {
        if (free_in_class[cand.class_index] <= 0.0) {
          continue;
        }
        counts[static_cast<size_t>(cand.var_index)] += 1.0;
        free_in_class[cand.class_index] -= 1.0;
        msb_rru[r][best_msb] += cand.value;
        total_rru[r] += cand.value;
        break;
      }
    }

    // Affinity repair: if a datacenter's share is below its (A - theta)
    // floor, pull additional free supply from that datacenter's MSBs. The
    // anti-hoarding term may charge for the extra capacity, but the affinity
    // slack it avoids costs two orders of magnitude more.
    for (const auto& [dc, share] : spec.dc_affinity) {
      double floor_rru = std::max(0.0, share - spec.affinity_theta) * spec.capacity_rru;
      auto dc_rru = [&]() {
        double sum = 0.0;
        for (const auto& [msb, rru] : msb_rru[r]) {
          if (input.topology->msb_datacenter(static_cast<MsbId>(msb)) == dc) {
            sum += rru;
          }
        }
        return sum;
      };
      int affinity_guard = 0;
      while (dc_rru() + 1e-9 < floor_rru && affinity_guard++ < max_iterations) {
        bool added = false;
        for (auto& [msb, cands] : free_candidates[r]) {
          if (input.topology->msb_datacenter(static_cast<MsbId>(msb)) != dc) {
            continue;
          }
          for (const Candidate& cand : cands) {
            if (free_in_class[cand.class_index] <= 0.0) {
              continue;
            }
            counts[static_cast<size_t>(cand.var_index)] += 1.0;
            free_in_class[cand.class_index] -= 1.0;
            msb_rru[r][msb] += cand.value;
            total_rru[r] += cand.value;
            added = true;
            break;
          }
          if (added) {
            break;
          }
        }
        if (!added) {
          break;  // No compatible free supply left in this datacenter.
        }
      }
    }
  }

  return counts;
}

}  // namespace ras
