#include "src/core/local_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/monotonic_time.h"
#include "src/util/rng.h"

namespace ras {
namespace {

// Incremental objective state. Every coefficient is extracted from the built
// model itself, so the local search optimizes exactly what the MIP would.
class ObjectiveState {
 public:
  ObjectiveState(const SolveInput& input, const std::vector<EquivalenceClass>& classes,
                 const BuiltModel& built)
      : input_(input), classes_(classes), built_(built) {
    const size_t num_res = input.reservations.size();
    const size_t num_msbs = input.topology->num_msbs();
    const size_t num_dcs = input.topology->num_datacenters();
    total_.assign(num_res, 0.0);
    msb_rru_.assign(num_res, std::vector<double>(num_msbs, 0.0));
    dc_rru_.assign(num_res, std::vector<double>(num_dcs, 0.0));
    used_.assign(classes.size(), 0.0);

    // Per-reservation coefficient tables from the model's bookkeeping.
    shortfall_cost_.assign(num_res, 0.0);
    buffer_cost_.assign(num_res, 0.0);
    buffered_.assign(num_res, false);
    spread_beta_.assign(num_res, 0.0);
    spread_threshold_.assign(num_res, kInf);
    hoard_cost_.assign(num_res, 0.0);
    for (size_t r = 0; r < num_res; ++r) {
      if (built.shortfall_vars[r] != kNoVar) {
        shortfall_cost_[r] = built.model.variable(built.shortfall_vars[r]).cost;
      }
      if (built.buffer_vars[r] != kNoVar) {
        buffered_[r] = true;
        buffer_cost_[r] = built.model.variable(built.buffer_vars[r]).cost;
      }
      if (built.hoard_vars[r] != kNoVar) {
        hoard_cost_[r] = built.model.variable(built.hoard_vars[r]).cost;
      }
    }
    for (const auto& term : built.msb_spread_terms) {
      spread_beta_[static_cast<size_t>(term.reservation_index)] =
          built.model.variable(term.var).cost;
      spread_threshold_[static_cast<size_t>(term.reservation_index)] = term.threshold;
    }
    affinity_of_.assign(num_res, {});
    for (size_t i = 0; i < built.affinity_terms.size(); ++i) {
      affinity_of_[static_cast<size_t>(built.affinity_terms[i].reservation_index)].push_back(
          static_cast<int>(i));
    }
    quorum_of_.assign(num_res, {});
    for (size_t i = 0; i < built.quorum_terms.size(); ++i) {
      quorum_of_[static_cast<size_t>(built.quorum_terms[i].reservation_index)].push_back(
          static_cast<int>(i));
    }

    // Per-variable values V and cost coefficients.
    const size_t num_vars = built.assignment_vars.size();
    value_.assign(num_vars, 0.0);
    acquire_cost_.assign(num_vars, 0.0);
    move_cost_.assign(num_vars, 0.0);
    for (size_t k = 0; k < num_vars; ++k) {
      const auto& av = built.assignment_vars[k];
      const EquivalenceClass& cls = classes[static_cast<size_t>(av.class_index)];
      value_[k] = input.reservations[static_cast<size_t>(av.reservation_index)]
                      .ValueOfType(cls.type);
      acquire_cost_[k] = built.model.variable(av.var).cost;
      if (built.move_vars[k] != kNoVar) {
        move_cost_[k] = built.model.variable(built.move_vars[k]).cost;
      }
    }
  }

  void Load(const std::vector<double>& counts) {
    counts_ = counts;
    std::fill(used_.begin(), used_.end(), 0.0);
    for (auto& v : msb_rru_) {
      std::fill(v.begin(), v.end(), 0.0);
    }
    for (auto& v : dc_rru_) {
      std::fill(v.begin(), v.end(), 0.0);
    }
    std::fill(total_.begin(), total_.end(), 0.0);
    for (size_t k = 0; k < counts_.size(); ++k) {
      ApplyDelta(k, counts_[k], /*into_counts=*/false);
    }
  }

  const std::vector<double>& counts() const { return counts_; }
  double used(size_t class_index) const { return used_[class_index]; }

  // Objective contribution of one reservation's aggregate terms.
  double ReservationCost(size_t r) const {
    double worst = 0.0;
    for (double rru : msb_rru_[r]) {
      worst = std::max(worst, rru);
    }
    double capacity = input_.reservations[r].capacity_rru;
    double effective = total_[r] - (buffered_[r] ? worst : 0.0);
    double cost = shortfall_cost_[r] *
                  std::clamp(capacity - effective, 0.0, std::max(capacity, 0.0));
    if (buffered_[r]) {
      cost += buffer_cost_[r] * worst;
    }
    if (spread_beta_[r] > 0.0) {
      for (double rru : msb_rru_[r]) {
        cost += spread_beta_[r] * std::max(0.0, rru - spread_threshold_[r]);
      }
    }
    if (hoard_cost_[r] > 0.0) {
      cost += hoard_cost_[r] * std::max(0.0, effective - built_.hoard_limits[r]);
    }
    for (int i : affinity_of_[r]) {
      const auto& term = built_.affinity_terms[static_cast<size_t>(i)];
      double rru = term.dc < dc_rru_[r].size() ? dc_rru_[r][term.dc] : 0.0;
      cost += built_.model.variable(term.lo_slack).cost * std::max(0.0, term.lo - rru);
      cost += built_.model.variable(term.hi_slack).cost * std::max(0.0, rru - term.hi);
    }
    for (int i : quorum_of_[r]) {
      const auto& term = built_.quorum_terms[static_cast<size_t>(i)];
      double rru = msb_rru_[r][term.group];
      cost += built_.model.variable(term.slack).cost * std::max(0.0, rru - term.limit);
    }
    return cost;
  }

  // Objective contribution of one assignment variable's own costs.
  double VarCost(size_t k) const {
    return acquire_cost_[k] * counts_[k] +
           move_cost_[k] * std::max(0.0, built_.initial_counts[k] - counts_[k]);
  }

  // Applies `delta` units to variable k (class supply and aggregates).
  void ApplyDelta(size_t k, double delta, bool into_counts = true) {
    if (delta == 0.0) {
      return;
    }
    const auto& av = built_.assignment_vars[k];
    const EquivalenceClass& cls = classes_[static_cast<size_t>(av.class_index)];
    size_t r = static_cast<size_t>(av.reservation_index);
    double rru = value_[k] * delta;
    total_[r] += rru;
    msb_rru_[r][cls.msb] += rru;
    dc_rru_[r][cls.dc] += rru;
    used_[static_cast<size_t>(av.class_index)] += delta;
    if (into_counts) {
      counts_[k] += delta;
    }
  }

  double FullObjective() const {
    double obj = 0.0;
    for (size_t r = 0; r < input_.reservations.size(); ++r) {
      obj += ReservationCost(r);
    }
    for (size_t k = 0; k < counts_.size(); ++k) {
      obj += VarCost(k);
    }
    return obj;
  }

 private:
  const SolveInput& input_;
  const std::vector<EquivalenceClass>& classes_;
  const BuiltModel& built_;

  std::vector<double> counts_;
  std::vector<double> used_;
  std::vector<double> total_;
  std::vector<std::vector<double>> msb_rru_;
  std::vector<std::vector<double>> dc_rru_;

  std::vector<double> value_;
  std::vector<double> acquire_cost_;
  std::vector<double> move_cost_;
  std::vector<double> shortfall_cost_;
  std::vector<double> buffer_cost_;
  std::vector<bool> buffered_;
  std::vector<double> spread_beta_;
  std::vector<double> spread_threshold_;
  std::vector<double> hoard_cost_;
  std::vector<std::vector<int>> affinity_of_;
  std::vector<std::vector<int>> quorum_of_;
};

}  // namespace

LocalSearchResult LocalSearchOptimize(const SolveInput& input,
                                      const std::vector<EquivalenceClass>& classes,
                                      const BuiltModel& built,
                                      const std::vector<double>& initial_counts,
                                      const LocalSearchOptions& options) {
  LocalSearchResult result;
  double start = util::MonotonicSeconds();
  ObjectiveState state(input, classes, built);
  state.Load(initial_counts);
  result.initial_objective = state.FullObjective();

  Rng rng(options.seed);
  const size_t num_vars = built.assignment_vars.size();
  if (num_vars == 0) {
    result.counts = initial_counts;
    result.final_objective = result.initial_objective;
    return result;
  }

  // Per-reservation variable lists for relocate proposals.
  std::vector<std::vector<int>> res_to_vars(input.reservations.size());
  for (size_t k = 0; k < num_vars; ++k) {
    res_to_vars[static_cast<size_t>(built.assignment_vars[k].reservation_index)].push_back(
        static_cast<int>(k));
  }

  int64_t stall = 0;
  double current = result.initial_objective;
  while (result.proposals < options.max_proposals && stall < options.stall_limit) {
    if ((result.proposals & 1023) == 0 && util::MonotonicSeconds() - start > options.time_limit_seconds) {
      break;
    }
    ++result.proposals;

    // Proposal: move a chunk of servers on variable k — either release to
    // the free pool, transfer to a sibling variable of the same class, or
    // acquire spare units of the class. Variable step sizes (1..8) cross the
    // plateaus that threshold terms (spread, hoard) create, where per-unit
    // deltas are zero but chunk deltas are not.
    size_t k = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(num_vars) - 1));
    const auto& av = built.assignment_vars[k];
    size_t c = static_cast<size_t>(av.class_index);
    double spare = static_cast<double>(classes[c].count()) - state.used(c);
    double step = static_cast<double>(int64_t{1} << rng.UniformInt(0, 3));

    int kind = static_cast<int>(rng.UniformInt(0, 3));
    size_t k2 = k;
    double d1 = 0.0, d2 = 0.0;  // Deltas for k and k2.
    if (kind == 0 && state.counts()[k] >= 1.0) {
      d1 = -std::min(step, state.counts()[k]);  // Release to free pool.
    } else if (kind == 1 && spare >= 1.0) {
      d1 = +std::min(step, spare);  // Acquire spare units.
    } else if (kind == 2 && state.counts()[k] >= 1.0 && built.class_to_vars[c].size() > 1) {
      // Transfer to a random sibling of the same class (reservation change).
      const auto& siblings = built.class_to_vars[c];
      k2 = static_cast<size_t>(
          siblings[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(siblings.size()) - 1))]);
      if (k2 == k) {
        continue;
      }
      d1 = -std::min(step, state.counts()[k]);
      d2 = -d1;
    } else if (kind == 3 && state.counts()[k] >= 1.0) {
      // Relocate within the reservation: swap capacity into another class
      // (different MSB / SKU) that still has spare supply. This is the move
      // that fixes spread without transiting a capacity-shortfall state.
      const auto& peers = res_to_vars[static_cast<size_t>(av.reservation_index)];
      if (peers.size() < 2) {
        continue;
      }
      k2 = static_cast<size_t>(
          peers[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(peers.size()) - 1))]);
      if (k2 == k) {
        continue;
      }
      size_t c2 = static_cast<size_t>(built.assignment_vars[k2].class_index);
      double spare2 = static_cast<double>(classes[c2].count()) - state.used(c2);
      if (spare2 < 1.0) {
        continue;
      }
      d1 = -std::min({step, state.counts()[k], spare2});
      d2 = -d1;
    } else {
      continue;
    }

    size_t r1 = static_cast<size_t>(av.reservation_index);
    size_t r2 = static_cast<size_t>(built.assignment_vars[k2].reservation_index);
    double before = state.ReservationCost(r1) + state.VarCost(k);
    if (k2 != k) {
      if (r2 != r1) {
        before += state.ReservationCost(r2);
      }
      before += state.VarCost(k2);
    }
    state.ApplyDelta(k, d1);
    if (k2 != k) {
      state.ApplyDelta(k2, d2);
    }
    double after = state.ReservationCost(r1) + state.VarCost(k);
    if (k2 != k) {
      if (r2 != r1) {
        after += state.ReservationCost(r2);
      }
      after += state.VarCost(k2);
    }

    if (after < before - 1e-9) {
      current += after - before;
      ++result.accepted;
      stall = 0;
    } else {
      state.ApplyDelta(k, -d1);  // Revert.
      if (k2 != k) {
        state.ApplyDelta(k2, -d2);
      }
      ++stall;
    }
  }

  result.counts = state.counts();
  result.final_objective = state.FullObjective();
  result.seconds = util::MonotonicSeconds() - start;
  // Incremental bookkeeping must agree with the from-scratch evaluation.
  assert(std::fabs(result.final_objective - current) <
         1e-6 * (1.0 + std::fabs(result.final_objective)));
  (void)current;
  return result;
}

}  // namespace ras
