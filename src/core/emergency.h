// Emergency out-of-band capacity path (Section 5.4): when capacity is needed
// to handle an urgent site outage and cannot wait for the hourly solve, this
// path writes server assignments directly to the Resource Broker without
// obeying placement guarantees; future solves correct whatever it broke.
// It is also the back-up when the Async Solver is unavailable.

#ifndef RAS_SRC_CORE_EMERGENCY_H_
#define RAS_SRC_CORE_EMERGENCY_H_

#include <vector>

#include "src/broker/resource_broker.h"
#include "src/core/reservation.h"

namespace ras {

struct EmergencyGrant {
  size_t servers_granted = 0;
  size_t from_free_pool = 0;
  size_t from_elastic = 0;  // Elastic loans preempted and pressed into service.
};

// Grants up to `count` servers of any type the reservation values,
// immediately: free pool first, then elastic-loaned servers (preempting the
// opportunistic workload). Idle shared-buffer servers that are NOT loaned out
// stay untouched — depleting the failure buffer risks the whole region (the
// "prioritize buffer capacity" lesson of Section 5.3).
EmergencyGrant GrantImmediateCapacity(ResourceBroker& broker, const ReservationRegistry& registry,
                                      ReservationId reservation, size_t count);

}  // namespace ras

#endif  // RAS_SRC_CORE_EMERGENCY_H_
