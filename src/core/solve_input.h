// Solve input: the immutable snapshot the Async Solver reads at the start of
// each solve (Figure 6, step 2) — the latest capacity-request state from the
// registry and the complete server fleet state from the Resource Broker —
// plus the symmetry reduction into equivalence classes (Section 3.5.2).

#ifndef RAS_SRC_CORE_SOLVE_INPUT_H_
#define RAS_SRC_CORE_SOLVE_INPUT_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/broker/resource_broker.h"
#include "src/core/reservation.h"
#include "src/topology/topology.h"

namespace ras {

// Per-server snapshot fields the solver cares about.
struct ServerSolveState {
  ReservationId current = kUnassigned;  // Elastic loans resolve to home.
  bool in_use = false;                  // Containers running => high move cost.
  bool available = true;                // False on unplanned unavailability.
};

struct SolveInput {
  const RegionTopology* topology = nullptr;
  const HardwareCatalog* catalog = nullptr;
  // Non-elastic reservations, id order (includes shared random buffers).
  std::vector<ReservationSpec> reservations;
  std::vector<ServerSolveState> servers;  // Indexed by ServerId.

  // Index of a reservation id in `reservations`, or -1.
  int ReservationIndex(ReservationId id) const;
};

// Snapshots broker + registry. Servers loaned to elastic reservations are
// attributed to their home reservation and treated as idle (their moves are
// "virtually free" — the loan is revocable by design).
SolveInput SnapshotSolveInput(const ResourceBroker& broker, const ReservationRegistry& registry,
                              const HardwareCatalog& catalog);

// Structural integrity check a snapshot must pass before it is solved (and
// before its solution may be persisted): topology/catalog present, the server
// vector covering the whole fleet, reservation ids unique with sane capacity
// specs, and every server binding resolving to a snapshotted reservation.
// O(servers + reservations). SnapshotSolveInput output always passes; a
// corrupted or torn snapshot does not.
Status ValidateSolveInput(const SolveInput& input);

// One equivalence class: servers that are interchangeable in the MIP —
// identical location group (MSB in phase 1, rack in phase 2), hardware type,
// current assignment, and movement-cost tier. Merging them turns |class|
// boolean x_{s,r} variables into a single integer variable per reservation.
struct EquivalenceClass {
  uint32_t group = 0;  // MSB id or rack id depending on granularity.
  MsbId msb = 0;
  DatacenterId dc = 0;
  HardwareTypeId type = kInvalidHardwareType;
  ReservationId current = kUnassigned;
  bool in_use = false;
  std::vector<ServerId> servers;

  size_t count() const { return servers.size(); }
};

struct ClassFilter {
  // When non-null, only servers whose current reservation is in this set, or
  // that are free (kUnassigned), participate. Used by phase 2 to restrict the
  // problem to the reservations with the worst rack objectives.
  const std::unordered_set<ReservationId>* reservations = nullptr;
};

// Groups available servers into equivalence classes at the given location
// granularity (Scope::kMsb for phase 1, Scope::kRack for phase 2).
// Unplanned-unavailable servers are excluded entirely: the availability
// constraint of Section 3.5.1. Deterministic order.
std::vector<EquivalenceClass> BuildEquivalenceClasses(const SolveInput& input, Scope granularity,
                                                      const ClassFilter& filter = {});

}  // namespace ras

#endif  // RAS_SRC_CORE_SOLVE_INPUT_H_
