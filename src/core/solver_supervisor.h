// Solver supervision for the continuous solve loop.
//
// The paper's stance (Section 5.4) is that region-wide re-optimization runs
// off the critical path and the system must stay safe when the solver is
// slow, wrong, or down: time limits bound each solve, the greedy incumbent is
// what ships on timeout, and the out-of-band emergency path is "the back-up
// when the Async Solver is unavailable". The SolverSupervisor packages that
// posture into one component wrapped around AsyncSolver:
//
//   - deadline enforcement on every attempt;
//   - bounded retry with exponential backoff + jitter, in *simulated* time
//     (driven through the EventLoop — no wall-clock sleeps anywhere);
//   - snapshot validation before a solve and a broker-generation check
//     before its result may be persisted;
//   - a graceful-degradation ladder, descended within a round:
//
//       full two-phase MIP
//         -> phase-1-only MIP
//           -> greedy incumbent (no MIP)
//             -> keep the last-good assignment (no writes)
//               -> declare the solver unhealthy and arm the
//                  GrantImmediateCapacity emergency path.
//
// Every round's outcome is recorded in SupervisorStats so tests and benches
// can assert exactly which rung served, how many retries it took, and how
// long recovery to a full solve took once faults cleared.

#ifndef RAS_SRC_CORE_SOLVER_SUPERVISOR_H_
#define RAS_SRC_CORE_SOLVER_SUPERVISOR_H_

#include <cstdint>
#include <vector>

#include "src/core/async_solver.h"
#include "src/core/emergency.h"
#include "src/faults/fault_injector.h"
#include "src/obs/round_report.h"
#include "src/sim/event_loop.h"
#include "src/util/rng.h"

namespace ras {

// The degradation ladder, best rung first. Rungs at or above kIncumbent
// produce and persist a fresh assignment; kLastGood and kEmergency keep
// serving placements from whatever the broker already holds.
enum class LadderRung : uint8_t {
  kFullTwoPhase = 0,
  kPhase1Only,
  kIncumbent,
  kLastGood,
  kEmergency,
};

inline constexpr int kNumLadderRungs = 5;

const char* LadderRungName(LadderRung rung);

// True for rungs that produced (and persisted) a fresh assignment.
inline bool ProducedAssignment(LadderRung rung) {
  return static_cast<uint8_t>(rung) <= static_cast<uint8_t>(LadderRung::kIncumbent);
}

// Pluggable persistence barrier for solver results. The default path is a
// bare broker ApplyTargets; a durable control plane (src/journal) implements
// this to journal the batch as an intent record before the broker sees a
// write, so a crash mid-apply is redone at recovery instead of lost.
class TargetPersistence {
 public:
  virtual ~TargetPersistence() = default;
  virtual Status PersistTargets(ResourceBroker& broker,
                                const std::vector<std::pair<ServerId, ReservationId>>& targets) = 0;
};

struct SupervisorConfig {
  // Extra attempts at the full-two-phase rung before degrading. Retries are
  // the cheapest rung of the ladder: the same solve, just later.
  int max_retries = 2;
  // Exponential backoff between retries, in simulated time.
  SimDuration backoff_initial = Seconds(30);
  double backoff_multiplier = 2.0;
  SimDuration backoff_max = Minutes(8);
  // +/- fraction of the delay, drawn from the supervisor's seeded stream.
  // Deterministic: same seed, same jitter sequence.
  double backoff_jitter = 0.25;
  // Wall-clock budget for one solve attempt. A result that took longer is
  // treated as DEADLINE_EXCEEDED and discarded — a solve that overshoots its
  // window is as useless as one that never returned.
  double solve_deadline_seconds = 120.0;
  // Consecutive rounds without a fresh assignment before the solver is
  // declared unhealthy and the emergency path is armed.
  int unhealthy_after_failures = 3;
  // When > 1, the phase-1-only rung re-solves with at least this many shards
  // (src/shard): degraded rounds trade solution quality for K small, cheap
  // MIPs that are far more likely to finish inside the deadline. 0 leaves
  // the solver's configured shard count alone.
  int degraded_shard_count = 0;
  uint64_t seed = 0x5EED5;
};

struct RoundOutcome {
  int round = 0;
  SimTime time{0};
  LadderRung rung = LadderRung::kFullTwoPhase;
  int retries = 0;
  // Why the round degraded (OK when the full two-phase solve succeeded).
  Status error;
  double shortfall_rru = 0.0;
  bool emergency_armed = false;
  // Cross-round reuse, copied from the serving solve's SolveStats: whether the
  // round patched the cached model / skipped the MIP, and how many servers the
  // delta touched (-1 when the round ran cold). All false/-1 for rungs that
  // produced no fresh assignment.
  bool model_patched = false;
  bool solve_skipped = false;
  int delta_servers = -1;
};

// Builds the operator-facing per-round report (src/obs) from a round's
// outcome record and the serving solve's stats. `record` supplies identity,
// rung, and error; `stats` supplies solve shape (pass the SupervisedRound's
// stats, zeroed for rungs that kept the previous assignment).
obs::RoundReport MakeRoundReport(const RoundOutcome& record, const SolveStats& stats);

struct SupervisorStats {
  std::vector<RoundOutcome> rounds;
  size_t rung_counts[kNumLadderRungs] = {};
  size_t total_retries = 0;
  // Failed solve attempts across all rungs (one round can contribute several).
  size_t failed_attempts = 0;
  // Rounds, including the current streak, that produced no fresh assignment.
  size_t consecutive_failed_rounds = 0;
  size_t snapshots_rejected = 0;  // Validation failures (corruption).
  size_t stale_snapshots = 0;     // Generation moved mid-solve.
  size_t persist_failures = 0;    // Broker write batches rolled back.
  // Simulated instant the solver was declared unhealthy; negative = healthy.
  SimTime unhealthy_since{-1};
  // Unhealthy-to-recovered durations, one per completed outage.
  std::vector<SimDuration> recovery_times;

  size_t RungCount(LadderRung rung) const { return rung_counts[static_cast<int>(rung)]; }
};

// What one supervised round produced.
struct SupervisedRound {
  LadderRung rung = LadderRung::kFullTwoPhase;
  // Meaningful when ProducedAssignment(rung); zeroed otherwise.
  SolveStats stats;
  int retries = 0;
  // The failure that forced degradation; OK at the top rung.
  Status error;
};

class SolverSupervisor {
 public:
  // `loop` drives sim-time backoff; pass nullptr to retry without delays
  // (solver-only setups with no clock). `registry` and `catalog` must outlive
  // the supervisor.
  SolverSupervisor(AsyncSolver* solver, ResourceBroker* broker,
                   const ReservationRegistry* registry, const HardwareCatalog* catalog,
                   EventLoop* loop, SupervisorConfig config = SupervisorConfig());
  ~SolverSupervisor();

  SolverSupervisor(const SolverSupervisor&) = delete;
  SolverSupervisor& operator=(const SolverSupervisor&) = delete;

  // Installs (or clears, with nullptr) the fault injector. The supervisor
  // wires it into the solver's fault hook and the broker's write-fault hook;
  // it does not take ownership.
  void SetFaultInjector(FaultInjector* injector);

  // Routes successful solve results through `persistence` instead of a bare
  // broker ApplyTargets (nullptr restores the default). Not owned.
  void SetTargetPersistence(TargetPersistence* persistence) { persistence_ = persistence; }

  // One supervised solver round: walk the ladder until a rung serves. Must be
  // called from outside EventLoop callbacks (backoff re-enters the loop).
  // Never "fails" — the bottom rungs always serve — but the outcome records
  // which rung did and why.
  SupervisedRound RunRound();

  // Urgent out-of-band capacity (Section 5.4). Only available while the
  // solver is unhealthy — the healthy path is a capacity request plus the
  // next solve; returns FAILED_PRECONDITION then.
  Result<EmergencyGrant> RequestUrgentCapacity(ReservationId reservation, size_t count);

  bool solver_healthy() const { return stats_.unhealthy_since.seconds < 0; }
  bool emergency_armed() const { return emergency_armed_; }
  const SupervisorStats& stats() const { return stats_; }
  // Target set from the most recent successful persist (snapshot order).
  const std::vector<std::pair<ServerId, ReservationId>>& last_good_targets() const {
    return last_good_targets_;
  }

 private:
  // One attempt: snapshot -> validate -> solve(mode) -> deadline check ->
  // staleness check -> atomic persist. OK iff the broker holds the fresh
  // assignment afterwards. Any failure after the solve ran (deadline, stale
  // snapshot, persist rollback) also invalidates the solver's resolve cache:
  // the cached round was never applied, so the next round must start cold.
  // (Degraded-mode solves and in-solve faults invalidate inside AsyncSolver.)
  Status AttemptSolve(SolveMode mode, SolveStats* stats);
  // Backoff before retry `attempt` (0-based), advancing simulated time.
  void Backoff(int attempt);
  SimTime now() const;

  AsyncSolver* solver_;
  ResourceBroker* broker_;
  const ReservationRegistry* registry_;
  const HardwareCatalog* catalog_;
  EventLoop* loop_;
  SupervisorConfig config_;
  FaultInjector* injector_ = nullptr;
  TargetPersistence* persistence_ = nullptr;
  Rng rng_;
  int next_round_ = 0;
  bool emergency_armed_ = false;
  SupervisorStats stats_;
  std::vector<std::pair<ServerId, ReservationId>> last_good_targets_;
};

}  // namespace ras

#endif  // RAS_SRC_CORE_SOLVER_SUPERVISOR_H_
