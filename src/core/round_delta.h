// Round deltas: what changed between two consecutive SolveInput snapshots.
//
// The Async Solver runs continuously (Figure 6); consecutive rounds see
// ~99%-identical inputs. The delta classifies the differences — server churn
// (health / binding / in-use flips, fleet growth), reservation churn (added /
// removed / resized / restructured) — and certifies whether the previous
// round's model structure survives, which is what gates the incremental
// re-solve layer: model patching (PatchRasModel), basis + incumbent reuse
// (ResolveCache), and the skip-solve fast path.

#ifndef RAS_SRC_CORE_ROUND_DELTA_H_
#define RAS_SRC_CORE_ROUND_DELTA_H_

#include <vector>

#include "src/core/solve_input.h"

namespace ras {

struct RoundDelta {
  // Server-level churn. `servers_changed` counts index-aligned servers whose
  // binding, in-use flag, or availability flipped; added/removed cover fleet
  // resizes (snapshots index servers by ServerId, so sizes only grow when
  // hardware lands).
  int servers_changed = 0;
  int servers_added = 0;
  int servers_removed = 0;

  // Reservation-level churn, matched by id (both snapshots are id-ordered).
  // "Resized" changes only bounds the model patcher can re-target (capacity,
  // spread alphas, affinity theta / shares, quorum magnitude); a
  // "restructured" reservation changed something that alters the constraint
  // matrix itself (value table, buffer flag, affinity key set, quorum cap
  // appearing or vanishing) and forces a rebuild.
  int reservations_added = 0;
  int reservations_removed = 0;
  int reservations_resized = 0;
  int reservations_restructured = 0;

  // Both snapshots reference the same topology + catalog objects. Different
  // region objects void every cross-round assumption.
  bool same_region = false;

  // The reservation list is patch-compatible: same ids in the same order,
  // none restructured (resizes are fine).
  bool reservations_structurally_equal = false;

  // The equivalence classes produced by the two rounds have identical keys
  // (group, msb, dc, type, current, in_use) at every index — counts may
  // differ. Set by the caller from ClassStructureEqual over the actual class
  // vectors (ComputeRoundDelta cannot know them); defaults to false, so an
  // unset field fails safe into a full rebuild.
  bool classes_structurally_equal = false;

  int delta_servers() const { return servers_changed + servers_added + servers_removed; }

  // Nothing the solver can observe changed: bit-for-bit the same round.
  bool empty() const {
    return delta_servers() == 0 && reservations_added == 0 && reservations_removed == 0 &&
           reservations_resized == 0 && reservations_restructured == 0 && same_region;
  }

  // The previous round's BuiltModel can be re-targeted in place.
  bool patchable() const {
    return same_region && reservations_structurally_equal && classes_structurally_equal;
  }
};

// Input-level delta. Fills everything except `classes_structurally_equal`,
// which the caller certifies with ClassStructureEqual once both rounds'
// class vectors exist.
RoundDelta ComputeRoundDelta(const SolveInput& prev, const SolveInput& next);

// True when `a` and `b` would keep the same model layout under
// BuildRasModel: identical keys at every index. Server membership and counts
// are allowed to differ (those patch as bounds).
bool ClassStructureEqual(const std::vector<EquivalenceClass>& a,
                         const std::vector<EquivalenceClass>& b);

// True when replacing `a` with `b` preserves the constraint matrix: same id,
// same value table, same buffer/elastic flags, same affinity key set, and
// the storage quorum cap neither appears nor vanishes. Size-only changes
// (capacity, alphas, theta, shares, quorum magnitude) return true.
bool ReservationStructureEqual(const ReservationSpec& a, const ReservationSpec& b);

}  // namespace ras

#endif  // RAS_SRC_CORE_ROUND_DELTA_H_
