// Region control-plane state persistence.
//
// The production Resource Broker is highly-available replicated storage; RAS
// itself is stateless between solves apart from the broker bindings and the
// capacity-request database. This module serializes exactly that pair —
// reservation specs and per-server bindings — to a line-based text format,
// so a control plane can restart (or an operator can snapshot/diff a region)
// without losing the continuously-optimized assignment.
//
// Format (one record per line, '|'-separated fields, '#' comments):
//   ras-state v1
//   reservation|<id>|<name>|<capacity>|<flags>|<host_profile>|<rru csv>|<affinity csv>
//   server|<id>|<current>|<target>|<home>|<loan>|<unavail>|<has_containers>
// Hardware/topology are NOT serialized: they are regenerable from the fleet
// seed and are validated by server-count on load.

#ifndef RAS_SRC_CORE_STATE_IO_H_
#define RAS_SRC_CORE_STATE_IO_H_

#include <string>

#include "src/broker/resource_broker.h"
#include "src/core/reservation.h"

namespace ras {

// Serializes registry + broker bindings.
std::string SerializeRegionState(const ResourceBroker& broker,
                                 const ReservationRegistry& registry);

// Restores into an empty registry and a freshly-constructed broker over the
// same topology. Fails without partial effects on malformed input or a
// server-count mismatch.
Status DeserializeRegionState(const std::string& text, ResourceBroker& broker,
                              ReservationRegistry& registry);

}  // namespace ras

#endif  // RAS_SRC_CORE_STATE_IO_H_
