// Region control-plane state persistence.
//
// The production Resource Broker is highly-available replicated storage; RAS
// itself is stateless between solves apart from the broker bindings and the
// capacity-request database. This module serializes exactly that pair —
// reservation specs and per-server bindings — to a line-based text format,
// so a control plane can restart (or an operator can snapshot/diff a region)
// without losing the continuously-optimized assignment.
//
// Format (one record per line, '|'-separated fields, '#' comments):
//   ras-state v1
//   reservation|<id>|<name>|<capacity>|<flags>|<host_profile>|<rru csv>|<affinity csv>
//   server|<id>|<current>|<target>|<home>|<loan>|<unavail>|<has_containers>
// Hardware/topology are NOT serialized: they are regenerable from the fleet
// seed and are validated by server-count on load.
//
// The per-record encoders/parsers are exposed because the write-ahead
// journal (src/journal) reuses them as its payload codec: a journal
// reservation record is exactly one "reservation|..." line, a server delta
// exactly one "server|..." line. Parsing is strict — malformed numbers,
// out-of-range RRU/capacity values, and duplicate ids are rejected with a
// precise error, and DeserializeRegionState has no partial effects on
// failure.

#ifndef RAS_SRC_CORE_STATE_IO_H_
#define RAS_SRC_CORE_STATE_IO_H_

#include <string>

#include "src/broker/resource_broker.h"
#include "src/core/reservation.h"

namespace ras {

// Serializes registry + broker bindings.
std::string SerializeRegionState(const ResourceBroker& broker,
                                 const ReservationRegistry& registry);

// Restores into an empty registry and a freshly-constructed broker over the
// same topology. Fails without partial effects on malformed input, duplicate
// reservation/server ids, out-of-range values, or a server-count mismatch;
// errors name the offending line.
Status DeserializeRegionState(const std::string& text, ResourceBroker& broker,
                              ReservationRegistry& registry);

// --- Per-record codec (shared with src/journal) ---

// '|' / newline / '%' escaping used for free-form text fields.
std::string EscapeStateField(const std::string& s);
std::string UnescapeStateField(const std::string& s);

// One "reservation|..." line (no trailing newline) and its strict parser.
// The parser validates capacity and RRU values: they must be finite,
// non-negative, and below kMaxStateRru.
std::string SerializeReservationRecord(const ReservationSpec& spec);
Status ParseReservationRecord(const std::string& line, ReservationSpec* spec);

// Upper bound accepted for any capacity / per-type RRU value on load. A
// region holds well under a million servers of bounded per-server value;
// anything past this is corruption, not demand.
inline constexpr double kMaxStateRru = 1e12;

// The durable fields of one server record, decoupled from the broker's
// in-memory ServerRecord (which also carries a version counter).
struct ServerStateRecord {
  ServerId id = kInvalidServer;
  ReservationId current = kUnassigned;
  ReservationId target = kUnassigned;
  ReservationId home = kUnassigned;
  bool elastic_loan = false;
  Unavailability unavailability = Unavailability::kNone;
  bool has_containers = false;
};

// One "server|..." line (no trailing newline) and its strict parser.
// `num_servers` bounds the id; pass the broker's server count.
std::string SerializeServerRecord(const ServerRecord& record);
Status ParseServerRecord(const std::string& line, size_t num_servers, ServerStateRecord* out);

// Writes every durable field of `s` into the broker record (used by restore
// and by journal replay).
void ApplyServerRecord(const ServerStateRecord& s, ResourceBroker& broker);

}  // namespace ras

#endif  // RAS_SRC_CORE_STATE_IO_H_
