#include "src/core/explain.h"

#include <algorithm>
#include <cstdio>

namespace ras {

AssignmentExplanation ExplainAssignment(const ResourceBroker& broker,
                                        const ReservationRegistry& registry,
                                        const HardwareCatalog& catalog,
                                        ReservationId reservation, const SolverConfig& config) {
  AssignmentExplanation out;
  out.reservation = reservation;
  const ReservationSpec* spec = registry.Find(reservation);
  if (spec == nullptr) {
    out.name = "<unknown reservation>";
    return out;
  }
  out.name = spec->name;
  out.capacity_rru = spec->capacity_rru;

  const RegionTopology& topo = broker.topology();
  for (ServerId id : broker.ServersInReservation(reservation)) {
    const Server& s = topo.server(id);
    double v = spec->ValueOfType(s.type);
    ++out.servers;
    out.total_rru += v;
    auto& [count, rru] = out.by_type[s.type];
    ++count;
    rru += v;
    out.by_msb[s.msb] += v;
    out.by_dc[s.dc] += v;
  }
  for (const auto& [msb, rru] : out.by_msb) {
    out.worst_msb_rru = std::max(out.worst_msb_rru, rru);
  }
  out.effective_rru = out.total_rru - out.worst_msb_rru;
  out.shortfall_rru = std::max(0.0, out.capacity_rru - out.effective_rru);
  double alpha_f = spec->msb_spread_alpha > 0.0
                       ? spec->msb_spread_alpha
                       : config.msb_alpha_factor / static_cast<double>(topo.num_msbs());
  out.spread_threshold =
      std::max(alpha_f * spec->capacity_rru, config.min_spread_threshold_rru);
  for (const auto& [msb, rru] : out.by_msb) {
    out.msbs_over_threshold += rru > out.spread_threshold + 1e-9 ? 1 : 0;
  }
  (void)catalog;
  return out;
}

std::string AssignmentExplanation::ToString(const HardwareCatalog& catalog) const {
  std::string s;
  char line[256];
  std::snprintf(line, sizeof(line), "reservation %s (id %u): %zu servers, %.1f RRU for a %.1f "
                "RRU request\n",
                name.c_str(), reservation, servers, total_rru, capacity_rru);
  s += line;
  std::snprintf(line, sizeof(line),
                "  guarantee: %.1f RRU survives any single-MSB loss (worst MSB holds %.1f "
                "RRU, the embedded correlated-failure buffer)%s\n",
                effective_rru, worst_msb_rru,
                shortfall_rru > 1e-6 ? " — SHORT of the request" : "");
  s += line;
  s += "  hardware mix (why: request's RRU table values these types; the solver picks\n"
       "  whatever mix meets the RRU total cheapest):\n";
  for (const auto& [type, entry] : by_type) {
    std::snprintf(line, sizeof(line), "    %-8s x%-5zu -> %8.1f RRU\n",
                  catalog.type(type).name.c_str(), entry.first, entry.second);
    s += line;
  }
  std::snprintf(line, sizeof(line),
                "  fault-domain spread: %zu MSBs, per-MSB threshold %.1f RRU, %zu over it "
                "(why: Expression 3 penalizes concentration; the worst MSB bounds the "
                "embedded buffer)\n",
                by_msb.size(), spread_threshold, msbs_over_threshold);
  s += line;
  s += "  datacenter placement (why: affinity constraints, if any, pin shares; "
       "otherwise spread decides):\n";
  for (const auto& [dc, rru] : by_dc) {
    std::snprintf(line, sizeof(line), "    DC %-3u %8.1f RRU (%.0f%%)\n", dc, rru,
                  total_rru > 0 ? 100.0 * rru / total_rru : 0.0);
    s += line;
  }
  return s;
}

}  // namespace ras
