// Assignment explanation (the Section 5.3 lesson: operators must be able to
// describe to service owners why they received a certain composition of
// hardware generations or a particular spread across fault domains).
//
// Summarizes a reservation's current allocation — hardware mix, fault-domain
// spread, datacenter placement, buffer exposure — and annotates each
// dimension with the policy that produced it.

#ifndef RAS_SRC_CORE_EXPLAIN_H_
#define RAS_SRC_CORE_EXPLAIN_H_

#include <map>
#include <string>
#include <vector>

#include "src/broker/resource_broker.h"
#include "src/core/model_builder.h"
#include "src/core/reservation.h"

namespace ras {

struct AssignmentExplanation {
  ReservationId reservation = kUnassigned;
  std::string name;
  double capacity_rru = 0.0;

  size_t servers = 0;
  double total_rru = 0.0;
  // Per hardware type: (server count, RRU contribution).
  std::map<HardwareTypeId, std::pair<size_t, double>> by_type;
  // Per MSB: RRU held there.
  std::map<MsbId, double> by_msb;
  // Per datacenter: RRU held there.
  std::map<DatacenterId, double> by_dc;

  double worst_msb_rru = 0.0;     // The embedded buffer this placement implies.
  double effective_rru = 0.0;     // total - worst MSB: what survives an MSB loss.
  double shortfall_rru = 0.0;     // max(0, C_r - effective).
  double spread_threshold = 0.0;  // alpha_F * C_r actually applied.
  size_t msbs_over_threshold = 0;

  // Human-readable multi-line report.
  std::string ToString(const HardwareCatalog& catalog) const;
};

// Explains `reservation`'s current binding. `config` supplies the default
// spread threshold so the report can say which MSBs exceed it.
AssignmentExplanation ExplainAssignment(const ResourceBroker& broker,
                                        const ReservationRegistry& registry,
                                        const HardwareCatalog& catalog,
                                        ReservationId reservation,
                                        const SolverConfig& config = SolverConfig());

}  // namespace ras

#endif  // RAS_SRC_CORE_EXPLAIN_H_
