// Reservations: RAS's capacity abstraction (Section 3.1).
//
// A reservation is a logical cluster — a guaranteed amount of capacity
// expressed in relative resource units (RRUs) plus placement policy. The
// registry is the durable state behind the Capacity Portal: service owners
// create / modify / delete capacity requests, and the Async Solver reads the
// full request state at each solve.

#ifndef RAS_SRC_CORE_RESERVATION_H_
#define RAS_SRC_CORE_RESERVATION_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/broker/resource_broker.h"
#include "src/topology/hardware.h"
#include "src/util/status.h"

namespace ras {

struct ReservationSpec {
  ReservationId id = kUnassigned;  // Assigned by the registry on Create.
  std::string name;

  // Requested guaranteed capacity C_r, in RRUs.
  double capacity_rru = 0.0;

  // V_{s,r}: RRU value of one server of each hardware type for this
  // reservation (indexed by HardwareTypeId; 0 = that type cannot serve it).
  // Count-based requests simply use 1.0 for every acceptable type.
  std::vector<double> rru_per_type;

  // Whether this reservation embeds a correlated-failure buffer
  // (Expressions 4 and 6). True for guaranteed reservations; false for the
  // shared random-failure buffer and elastic reservations.
  bool needs_correlated_buffer = true;

  // The per-hardware-type shared random-failure buffer (Section 3.3.1) is a
  // standalone special reservation.
  bool is_shared_random_buffer = false;

  // Elastic reservations receive opportunistic capacity from idle buffers
  // (Section 3.4). They are not part of the MIP: the Online Mover manages
  // their loans directly and revokes on failure.
  bool is_elastic = false;

  // Spread thresholds alpha_F (MSB) and alpha_K (rack) as a fraction of C_r;
  // 0 means "use the solver-config default".
  double msb_spread_alpha = 0.0;
  double rack_spread_alpha = 0.0;

  // Network affinity A_{r,G} (Expression 7): desired fraction of capacity per
  // datacenter, e.g. storage-locality ratios. Empty = no affinity constraint.
  std::map<DatacenterId, double> dc_affinity;
  double affinity_theta = 0.05;  // Tolerance around each A value.

  // Storage services consume their embedded buffer for redundant replicas
  // (Section 3.3.2). Replication-based storage additionally needs a *hard*
  // spread cap so a quorum survives any MSB loss: with max_msb_fraction_hard
  // = f > 0, no MSB may hold more than f of C_r (e.g. f = 0.33 keeps 2/3 of
  // a 3-way replicated quorum alive). Enforced as a near-hard constraint
  // (softened only above the affinity tier, per Section 3.5.1).
  bool is_storage = false;
  double max_msb_fraction_hard = 0.0;  // 0 = no hard cap.

  // Not yet migrated to RAS: servers bound to this reservation are managed
  // by the legacy greedy path (Section 1.1) — the solver neither counts them
  // as supply nor rebinds them. Flipping this to false is how a region
  // progressively "enables RAS" (Figures 12 and 14).
  bool externally_managed = false;

  // Twine Host Profile (Section 3.1): the OS configuration (kernel version &
  // settings) this reservation's servers must run. When a server moves
  // between reservations with different profiles, the Online Mover performs
  // host cleanup + OS reconfiguration before the binding completes. An empty
  // string is the fleet-default profile.
  std::string host_profile;

  // Returns the RRU value of `type` (0 when out of range).
  double ValueOfType(HardwareTypeId type) const {
    return type < rru_per_type.size() ? rru_per_type[type] : 0.0;
  }
};

// All capacity-request state, keyed by reservation id. Ids are stable for the
// lifetime of the registry (deleted ids are not reused).
class ReservationRegistry {
 public:
  // Assigns the id. Rejects non-positive capacity for non-elastic requests
  // and empty RRU vectors.
  Result<ReservationId> Create(ReservationSpec spec);
  // Inserts a spec under its existing id (state restore); rejects duplicates
  // and keeps future Create() ids above the restored ones.
  Result<ReservationId> Restore(ReservationSpec spec);
  Status Update(const ReservationSpec& spec);  // spec.id must exist.
  Status Remove(ReservationId id);

  const ReservationSpec* Find(ReservationId id) const;
  size_t size() const { return specs_.size(); }

  // Specs in id order. Stable iteration order keeps solves deterministic.
  std::vector<const ReservationSpec*> All() const;
  // Non-elastic, non-buffer reservations (the MIP's "guaranteed" set plus
  // shared buffers are returned by AllSolvable; elastic ones are skipped).
  std::vector<const ReservationSpec*> AllSolvable() const;
  std::vector<const ReservationSpec*> AllElastic() const;

 private:
  std::map<ReservationId, ReservationSpec> specs_;  // Ordered for determinism.
  ReservationId next_id_ = 1;
};

}  // namespace ras

#endif  // RAS_SRC_CORE_RESERVATION_H_
