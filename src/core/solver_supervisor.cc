#include "src/core/solver_supervisor.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace ras {

const char* LadderRungName(LadderRung rung) {
  switch (rung) {
    case LadderRung::kFullTwoPhase:
      return "FULL_TWO_PHASE";
    case LadderRung::kPhase1Only:
      return "PHASE1_ONLY";
    case LadderRung::kIncumbent:
      return "INCUMBENT";
    case LadderRung::kLastGood:
      return "LAST_GOOD";
    case LadderRung::kEmergency:
      return "EMERGENCY";
  }
  return "UNKNOWN";
}

obs::RoundReport MakeRoundReport(const RoundOutcome& record, const SolveStats& stats) {
  obs::RoundReport report;
  report.round = record.round;
  report.sim_seconds = record.time.seconds;
  report.rung = LadderRungName(record.rung);
  report.retries = record.retries;
  if (!record.error.ok()) {
    report.error = record.error.ToString();
  }
  report.produced_assignment = ProducedAssignment(record.rung);
  report.assignment_variables = stats.phase1.assignment_variables;
  report.moves_total = stats.moves_total;
  report.moves_in_use = stats.moves_in_use;
  report.shortfall_rru = stats.total_shortfall_rru;
  report.wall_seconds = stats.total_seconds;
  report.reuse = stats.solve_skipped    ? "skipped"
                 : stats.basis_reused   ? "patched+basis"
                 : stats.model_patched  ? "patched"
                                        : "cold";
  report.delta_servers = stats.delta_servers;
  report.shard_count = stats.shard_count;
  report.failed_shards = stats.failed_shards;
  report.repair_moves = stats.repair_moves;
  report.emergency_armed = record.emergency_armed;
  return report;
}

SolverSupervisor::SolverSupervisor(AsyncSolver* solver, ResourceBroker* broker,
                                   const ReservationRegistry* registry,
                                   const HardwareCatalog* catalog, EventLoop* loop,
                                   SupervisorConfig config)
    : solver_(solver),
      broker_(broker),
      registry_(registry),
      catalog_(catalog),
      loop_(loop),
      config_(std::move(config)),
      rng_(config_.seed) {
  // Wire the injector's solver faults through the solver's own hook so a
  // fault plan also bites callers that bypass the supervisor. The incumbent
  // rung runs no MIP, so timeout/crash faults do not apply to it.
  solver_->SetFaultHook([this](SolveMode mode) -> Status {
    if (injector_ == nullptr) {
      return Status::Ok();
    }
    // Timeouts bite the MIP modes only: the greedy incumbent is bounded
    // milliseconds and cannot blow a deadline. A crash takes down any mode —
    // the solver process is simply gone — which is why repeated crashes walk
    // the ladder all the way to last-good and, eventually, emergency.
    if (mode != SolveMode::kIncumbentOnly && injector_->Fires(FaultKind::kSolverTimeout)) {
      return Status::DeadlineExceeded("injected: MIP hit its time limit with no incumbent");
    }
    if (injector_->Fires(FaultKind::kSolverCrash)) {
      return Status::Internal("injected: solver process crashed mid-solve");
    }
    return Status::Ok();
  });
  broker_->SetWriteFaultHook([this](ServerId, ReservationId) {
    return injector_ != nullptr && injector_->Fires(FaultKind::kBrokerWriteFailure);
  });
}

SolverSupervisor::~SolverSupervisor() {
  solver_->SetFaultHook(nullptr);
  broker_->SetWriteFaultHook(nullptr);
}

void SolverSupervisor::SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

SimTime SolverSupervisor::now() const { return loop_ != nullptr ? loop_->now() : SimTime{0}; }

void SolverSupervisor::Backoff(int attempt) {
  double delay = static_cast<double>(config_.backoff_initial.seconds) *
                 std::pow(config_.backoff_multiplier, attempt);
  delay = std::min(delay, static_cast<double>(config_.backoff_max.seconds));
  // Jitter de-synchronizes retries across regions; seeded, so deterministic.
  delay *= 1.0 + config_.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
  SimDuration wait = Seconds(std::max<int64_t>(1, static_cast<int64_t>(std::llround(delay))));
  if (loop_ != nullptr) {
    // Sim-time sleep: pending events (health transitions, scheduled work) in
    // the window run first, exactly as they would while a real retry waited.
    loop_->RunUntil(loop_->now() + wait);
    if (injector_ != nullptr) {
      injector_->AdvanceTime(loop_->now());
    }
  }
}

Status SolverSupervisor::AttemptSolve(SolveMode mode, SolveStats* stats) {
  obs::SpanScope attempt_span(obs::Tracer::Default(), "attempt");
  uint64_t snapshot_generation = broker_->generation();
  SolveInput input = SnapshotSolveInput(*broker_, *registry_, *catalog_);
  if (injector_ != nullptr && injector_->Fires(FaultKind::kSnapshotCorruption)) {
    injector_->CorruptSnapshot(input);
  }
  Status valid = ValidateSolveInput(input);
  if (!valid.ok()) {
    ++stats_.snapshots_rejected;
    static obs::Counter& rejected = obs::MetricRegistry::Default().counter(
        "ras_supervisor_snapshots_rejected_total", "Snapshots failing validation.");
    rejected.Add();
    return valid;
  }

  DecodedAssignment decoded;
  Result<SolveStats> solved = solver_->SolveSnapshot(input, &decoded, mode);
  if (!solved.ok()) {
    return solved.status();
  }
  if (solved->total_seconds > config_.solve_deadline_seconds) {
    // The solve finished but its targets will never be applied; the resolve
    // cache now describes a round the world never saw. Start the retry cold.
    solver_->InvalidateResolveCache();
    static obs::Counter& misses = obs::MetricRegistry::Default().counter(
        "ras_supervisor_deadline_misses_total", "Solves discarded for blowing the deadline.");
    misses.Add();
    return Status::DeadlineExceeded("solve took " + std::to_string(solved->total_seconds) +
                                    "s, deadline " +
                                    std::to_string(config_.solve_deadline_seconds) + "s");
  }

  if (injector_ != nullptr && injector_->Fires(FaultKind::kSnapshotStale)) {
    broker_->MarkExternalMutation();
  }
  // Persist only results computed against the current world: if the broker
  // moved while the solve was in flight, the solution may bind servers that
  // no longer exist in that state. Retry with a fresh snapshot instead.
  if (broker_->generation() != snapshot_generation) {
    ++stats_.stale_snapshots;
    static obs::Counter& stale = obs::MetricRegistry::Default().counter(
        "ras_supervisor_stale_snapshots_total", "Results dropped because the broker moved.");
    stale.Add();
    solver_->InvalidateResolveCache();
    return Status::FailedPrecondition("broker generation moved during the solve (snapshot " +
                                      std::to_string(snapshot_generation) + ", now " +
                                      std::to_string(broker_->generation()) + ")");
  }

  Status persisted = persistence_ != nullptr
                         ? persistence_->PersistTargets(*broker_, decoded.targets)
                         : broker_->ApplyTargets(decoded.targets);
  if (!persisted.ok()) {
    ++stats_.persist_failures;
    static obs::Counter& persist_failed = obs::MetricRegistry::Default().counter(
        "ras_supervisor_persist_failures_total", "Solve results whose persist rolled back.");
    persist_failed.Add();
    // A failed (and rolled-back) broker write means the cached round was never
    // applied: any delta the next round computed against it would be fiction.
    solver_->InvalidateResolveCache();
    return persisted;
  }
  last_good_targets_ = std::move(decoded.targets);
  *stats = *solved;
  return Status::Ok();
}

SupervisedRound SolverSupervisor::RunRound() {
  obs::SpanScope round_span(obs::Tracer::Default(), "round");
  int round = next_round_++;
  round_span.set_value(round);
  if (injector_ != nullptr) {
    injector_->BeginRound(round, now());
  }

  SupervisedRound out;
  RoundOutcome record;
  record.round = round;
  record.time = now();

  // Walk the ladder. Rung 0 gets the retry budget; the degraded rungs get one
  // attempt each — by then the round is already late, and their value is
  // precisely that they are cheap and likely to succeed.
  Status error;
  bool served = false;
  for (int attempt = 0; attempt <= config_.max_retries && !served; ++attempt) {
    if (attempt > 0) {
      Backoff(attempt - 1);
      ++out.retries;
      ++stats_.total_retries;
    }
    Status status = AttemptSolve(SolveMode::kFullTwoPhase, &out.stats);
    if (status.ok()) {
      out.rung = LadderRung::kFullTwoPhase;
      served = true;
    } else {
      ++stats_.failed_attempts;
      static obs::Counter& failed_attempts = obs::MetricRegistry::Default().counter(
          "ras_supervisor_failed_attempts_total", "Failed solve attempts across all rungs.");
      failed_attempts.Add();
      error = status;
    }
  }
  if (!served) {
    RAS_LOG(kWarning) << "round " << round << ": full solve failed after " << out.retries
                      << " retries (" << error.ToString() << "); degrading to phase-1-only";
    // Degraded rungs run the serial deterministic solver: a failing round is
    // exactly when reproducibility is worth more than node throughput. They
    // may also raise the shard count — K small MIPs are cheaper and likelier
    // to finish than one big one, and per-shard solves stay deterministic.
    int saved_threads = solver_->config().solver_threads;
    int saved_shards = solver_->config().shard_count;
    solver_->mutable_config().solver_threads = 1;
    if (config_.degraded_shard_count > 1) {
      solver_->mutable_config().shard_count =
          std::max(saved_shards, config_.degraded_shard_count);
    }
    Status status = AttemptSolve(SolveMode::kPhase1Only, &out.stats);
    solver_->mutable_config().solver_threads = saved_threads;
    solver_->mutable_config().shard_count = saved_shards;
    if (status.ok()) {
      out.rung = LadderRung::kPhase1Only;
      served = true;
    } else {
      ++stats_.failed_attempts;
      static obs::Counter& failed_attempts = obs::MetricRegistry::Default().counter(
          "ras_supervisor_failed_attempts_total", "Failed solve attempts across all rungs.");
      failed_attempts.Add();
      error = status;
    }
  }
  if (!served) {
    RAS_LOG(kWarning) << "round " << round
                      << ": phase-1-only failed; degrading to the greedy incumbent";
    Status status = AttemptSolve(SolveMode::kIncumbentOnly, &out.stats);
    if (status.ok()) {
      out.rung = LadderRung::kIncumbent;
      served = true;
    } else {
      ++stats_.failed_attempts;
      static obs::Counter& failed_attempts = obs::MetricRegistry::Default().counter(
          "ras_supervisor_failed_attempts_total", "Failed solve attempts across all rungs.");
      failed_attempts.Add();
      error = status;
    }
  }

  if (served) {
    // Any fresh assignment counts as the solver answering; close an open
    // outage if there was one.
    if (!solver_healthy()) {
      SimDuration outage = now() - stats_.unhealthy_since;
      stats_.recovery_times.push_back(outage);
      RAS_LOG(kInfo) << "round " << round << ": solver recovered on rung "
                     << LadderRungName(out.rung) << " after " << outage.seconds
                     << "s of simulated outage";
      stats_.unhealthy_since = SimTime{-1};
    }
    stats_.consecutive_failed_rounds = 0;
    emergency_armed_ = false;
    out.error = error;  // OK unless a degraded rung served.
  } else {
    // Nothing produced an assignment this round: keep the last-good targets
    // (the broker is untouched — that is the rung) and track solver health.
    ++stats_.consecutive_failed_rounds;
    out.rung = LadderRung::kLastGood;
    out.stats = SolveStats();
    out.error = error;
    if (stats_.consecutive_failed_rounds >=
        static_cast<size_t>(config_.unhealthy_after_failures)) {
      out.rung = LadderRung::kEmergency;
      if (!emergency_armed_) {
        static obs::Counter& armed = obs::MetricRegistry::Default().counter(
            "ras_supervisor_emergency_armed_total", "Transitions into the armed emergency path.");
        armed.Add();
      }
      emergency_armed_ = true;
      if (solver_healthy()) {
        stats_.unhealthy_since = now();
        RAS_LOG(kWarning) << "round " << round << ": solver declared unhealthy after "
                          << stats_.consecutive_failed_rounds
                          << " consecutive failed rounds; emergency path armed";
      }
    }
  }

  record.rung = out.rung;
  record.retries = out.retries;
  record.error = out.error;
  record.shortfall_rru = out.stats.total_shortfall_rru;
  record.emergency_armed = emergency_armed_;
  record.model_patched = out.stats.model_patched;
  record.solve_skipped = out.stats.solve_skipped;
  record.delta_servers = out.stats.delta_servers;
  ++stats_.rung_counts[static_cast<int>(out.rung)];
  stats_.rounds.push_back(std::move(record));

  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  static obs::Counter& rounds_total =
      reg.counter("ras_supervisor_rounds_total", "Supervised solve rounds.");
  static obs::Counter& retries_total =
      reg.counter("ras_supervisor_retries_total", "Full-rung retries across rounds.");
  static obs::Gauge& failed_streak = reg.gauge(
      "ras_supervisor_consecutive_failed_rounds", "Current streak without a fresh assignment.");
  rounds_total.Add();
  retries_total.Add(out.retries);
  failed_streak.Set(static_cast<double>(stats_.consecutive_failed_rounds));
  // Per-rung counters are labelled series of one family; the name varies per
  // round, so this is a registry lookup rather than a static handle (once per
  // round — nowhere near the hot path).
  reg.counter(std::string("ras_supervisor_rung_total{rung=\"") + LadderRungName(out.rung) + "\"}",
              "Rounds served, by the ladder rung that served them.")
      .Add();
  return out;
}

Result<EmergencyGrant> SolverSupervisor::RequestUrgentCapacity(ReservationId reservation,
                                                               size_t count) {
  if (!emergency_armed_) {
    return Status::FailedPrecondition(
        "emergency path not armed: the solver is healthy, submit a capacity request instead");
  }
  EmergencyGrant grant = GrantImmediateCapacity(*broker_, *registry_, reservation, count);
  if (grant.servers_granted < count) {
    RAS_LOG(kWarning) << "emergency grant for reservation " << reservation << " short: "
                      << grant.servers_granted << "/" << count << " servers";
  }
  return grant;
}

}  // namespace ras
