#include "src/core/model_builder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace ras {
namespace {

// Per-reservation collection of assignment variables grouped by a location
// scope, used to emit group-sum rows (buffer, spread, affinity).
struct GroupedVars {
  // group id -> list of (assignment var, RRU value).
  std::map<uint32_t, std::vector<std::pair<VarId, double>>> by_group;
};

}  // namespace

size_t BuiltModel::ModelMemoryBytes() const {
  // Columns add roughly 12 bytes per nonzero (index + value) when the
  // simplex transposes them.
  return model.MemoryBytes() + model.num_nonzeros() * 12 +
         assignment_vars.size() * sizeof(AssignmentVar);
}

size_t BuiltModel::EstimatedMemoryBytes() const {
  size_t m = model.num_rows();
  return ModelMemoryBytes() + m * m * sizeof(double);
}

BuiltModel BuildRasModel(const SolveInput& input, const std::vector<EquivalenceClass>& classes,
                         const SolverConfig& config, bool include_rack_spread,
                         const std::vector<int>& reservation_subset) {
  assert(input.topology != nullptr && input.catalog != nullptr);
  const RegionTopology& topo = *input.topology;
  const size_t num_res = input.reservations.size();

  BuiltModel built;
  Model& model = built.model;
  built.shortfall_vars.assign(num_res, kNoVar);
  built.buffer_vars.assign(num_res, kNoVar);
  built.hoard_vars.assign(num_res, kNoVar);
  built.hoard_limits.assign(num_res, 0.0);
  built.class_to_vars.resize(classes.size());
  built.capacity_rows.assign(num_res, kNoRow);
  built.hoard_rows.assign(num_res, kNoRow);
  built.supply_rows.reserve(classes.size());

  // Which reservation indices participate in this build.
  std::vector<bool> in_subset(num_res, reservation_subset.empty());
  for (int r : reservation_subset) {
    in_subset[static_cast<size_t>(r)] = true;
  }

  // --- Assignment variables n[c][r] with Expression (5) supply rows, plus
  // Expression (1) move-out variables where the class currently sits in r ---
  std::vector<GroupedVars> msb_groups(num_res);
  std::vector<GroupedVars> rack_groups(num_res);
  std::vector<GroupedVars> dc_groups(num_res);

  for (size_t c = 0; c < classes.size(); ++c) {
    const EquivalenceClass& cls = classes[c];
    const double cls_count = static_cast<double>(cls.count());
    RowId supply = model.AddRow(-kInf, cls_count);
    built.supply_rows.push_back(supply);
    for (size_t r = 0; r < num_res; ++r) {
      if (!in_subset[r]) {
        continue;
      }
      const ReservationSpec& spec = input.reservations[r];
      double value = spec.ValueOfType(cls.type);
      if (value <= 0.0) {
        continue;
      }
      double acquire = (cls.current == spec.id) ? 0.0 : config.acquire_cost;
      VarId n = model.AddInteger(0, cls_count, acquire);
      model.AddCoefficient(supply, n, 1.0);
      int var_index = static_cast<int>(built.assignment_vars.size());
      built.assignment_vars.push_back(
          BuiltModel::AssignmentVar{n, static_cast<int>(c), static_cast<int>(r)});
      built.class_to_vars[c].push_back(var_index);

      double initial = (cls.current == spec.id) ? cls_count : 0.0;
      built.initial_counts.push_back(initial);
      if (initial > 0.0) {
        // o >= X - n, at Ms per server (Expression 1).
        double ms = cls.in_use ? config.move_cost_in_use : config.move_cost_idle;
        VarId o = model.AddContinuous(0, initial, ms);
        RowId move_row = model.AddRow(initial, kInf);
        model.AddCoefficient(move_row, n, 1.0);
        model.AddCoefficient(move_row, o, 1.0);
        built.move_vars.push_back(o);
        built.move_rows.push_back(move_row);
      } else {
        built.move_vars.push_back(kNoVar);
        built.move_rows.push_back(kNoRow);
      }

      msb_groups[r].by_group[cls.msb].push_back({n, value});
      if (include_rack_spread) {
        rack_groups[r].by_group[cls.group].push_back({n, value});
      }
      dc_groups[r].by_group[cls.dc].push_back({n, value});
    }
  }

  // --- Per-reservation constraints and objective terms ---
  for (size_t r = 0; r < num_res; ++r) {
    if (!in_subset[r]) {
      continue;
    }
    const ReservationSpec& spec = input.reservations[r];
    const double capacity = spec.capacity_rru;

    // Softened capacity slack: keeps the model feasible when the region
    // cannot satisfy the request; its cost dominates everything else so the
    // solver fixes capacity before optimizing spread or stability.
    VarId shortfall = model.AddContinuous(0, std::max(capacity, 0.0),
                                          config.capacity_soften_cost);
    built.shortfall_vars[r] = shortfall;

    // Expression (4): m_r tracks the worst-MSB exposure; tau minimizes it.
    VarId buffer_var = kNoVar;
    if (spec.needs_correlated_buffer) {
      buffer_var = model.AddContinuous(0, kInf, config.buffer_cost_tau);
      built.buffer_vars[r] = buffer_var;
      for (const auto& [group, vars] : msb_groups[r].by_group) {
        RowId row = model.AddRow(0, kInf);  // m_r - sum_G V*n >= 0.
        model.AddCoefficient(row, buffer_var, 1.0);
        for (const auto& [n, value] : vars) {
          model.AddCoefficient(row, n, -value);
        }
      }
    }

    // Expression (6): total RRUs minus the worst MSB must cover C_r.
    RowId cap_row = model.AddRow(capacity, kInf);
    built.capacity_rows[r] = cap_row;
    for (const auto& [group, vars] : msb_groups[r].by_group) {
      for (const auto& [n, value] : vars) {
        model.AddCoefficient(cap_row, n, value);
      }
    }
    if (buffer_var != kNoVar) {
      model.AddCoefficient(cap_row, buffer_var, -1.0);
    }
    model.AddCoefficient(cap_row, shortfall, 1.0);

    // Anti-hoarding: h >= total RRU - m_r - (1 + allowance) * C_r, at
    // hoarding_cost per RRU. Keeps granted capacity near C_r + buffer.
    double hoard_limit = (1.0 + config.hoarding_allowance) * capacity;
    VarId hoard = model.AddContinuous(0, kInf, config.hoarding_cost);
    built.hoard_vars[r] = hoard;
    built.hoard_limits[r] = hoard_limit;
    RowId hoard_row = model.AddRow(-kInf, hoard_limit);
    built.hoard_rows[r] = hoard_row;
    for (const auto& [group, vars] : msb_groups[r].by_group) {
      for (const auto& [n, value] : vars) {
        model.AddCoefficient(hoard_row, n, value);
      }
    }
    if (buffer_var != kNoVar) {
      model.AddCoefficient(hoard_row, buffer_var, -1.0);
    }
    model.AddCoefficient(hoard_row, hoard, -1.0);

    // Expression (3): MSB spread overflow at beta per RRU over alpha_F * C_r.
    double alpha_f = spec.msb_spread_alpha > 0.0
                         ? spec.msb_spread_alpha
                         : config.msb_alpha_factor / static_cast<double>(topo.num_msbs());
    double msb_threshold = std::max(alpha_f * capacity, config.min_spread_threshold_rru);
    for (const auto& [group, vars] : msb_groups[r].by_group) {
      VarId w = model.AddContinuous(0, kInf, config.spread_penalty_beta);
      RowId row = model.AddRow(-kInf, msb_threshold);  // sum_G V*n - w <= thr.
      for (const auto& [n, value] : vars) {
        model.AddCoefficient(row, n, value);
      }
      model.AddCoefficient(row, w, -1.0);
      built.msb_spread_terms.push_back(
          BuiltModel::SpreadTerm{w, static_cast<int>(r), group, msb_threshold, row});
    }

    // Expression (2): rack spread, phase 2 only.
    if (include_rack_spread) {
      double alpha_k = spec.rack_spread_alpha > 0.0
                           ? spec.rack_spread_alpha
                           : config.rack_alpha_factor / static_cast<double>(topo.num_racks());
      double rack_threshold = std::max(alpha_k * capacity, config.min_spread_threshold_rru);
      for (const auto& [group, vars] : rack_groups[r].by_group) {
        VarId w = model.AddContinuous(0, kInf, config.spread_penalty_beta);
        RowId row = model.AddRow(-kInf, rack_threshold);
        for (const auto& [n, value] : vars) {
          model.AddCoefficient(row, n, value);
        }
        model.AddCoefficient(row, w, -1.0);
        built.rack_spread_terms.push_back(
            BuiltModel::SpreadTerm{w, static_cast<int>(r), group, rack_threshold, row});
      }
    }

    // Storage quorum spread (Section 3.3.2): near-hard per-MSB cap so enough
    // replicas survive any single-MSB loss.
    if (spec.max_msb_fraction_hard > 0.0) {
      double limit = spec.max_msb_fraction_hard * capacity;
      for (const auto& [group, vars] : msb_groups[r].by_group) {
        VarId slack = model.AddContinuous(0, kInf, config.quorum_soften_cost);
        RowId row = model.AddRow(-kInf, limit);  // sum_G V*n - slack <= limit.
        for (const auto& [n, value] : vars) {
          model.AddCoefficient(row, n, value);
        }
        model.AddCoefficient(row, slack, -1.0);
        built.quorum_terms.push_back(
            BuiltModel::QuorumTerm{slack, static_cast<int>(r), group, limit, row});
      }
    }

    // Expression (7): network affinity, softened per Section 3.5.1.
    for (const auto& [dc, share] : spec.dc_affinity) {
      double lo = std::max(0.0, (share - spec.affinity_theta)) * capacity;
      double hi = (share + spec.affinity_theta) * capacity;
      VarId lo_slack = model.AddContinuous(0, kInf, config.affinity_soften_cost);
      VarId hi_slack = model.AddContinuous(0, kInf, config.affinity_soften_cost);
      RowId lo_row = model.AddRow(lo, kInf);  // sum_dc V*n + s_lo >= lo.
      RowId hi_row = model.AddRow(-kInf, hi);  // sum_dc V*n - s_hi <= hi.
      auto it = dc_groups[r].by_group.find(dc);
      if (it != dc_groups[r].by_group.end()) {
        for (const auto& [n, value] : it->second) {
          model.AddCoefficient(lo_row, n, value);
          model.AddCoefficient(hi_row, n, value);
        }
      }
      model.AddCoefficient(lo_row, lo_slack, 1.0);
      model.AddCoefficient(hi_row, hi_slack, -1.0);
      built.affinity_terms.push_back(BuiltModel::AffinityTerm{lo_slack, hi_slack,
                                                              static_cast<int>(r), dc, lo, hi,
                                                              lo_row, hi_row});
    }
  }

  // Warm the compressed-column cache: every LP solver over this model now
  // copies the cached form instead of rebuilding it, and PatchRasModel's
  // bound-only updates keep it valid across rounds.
  built.model.EnsureCompressedCache();
  return built;
}

bool PatchRasModel(BuiltModel& built, const SolveInput& input,
                   const std::vector<EquivalenceClass>& classes, const SolverConfig& config,
                   bool include_rack_spread, const std::vector<int>& reservation_subset) {
  assert(input.topology != nullptr && input.catalog != nullptr);
  const RegionTopology& topo = *input.topology;
  const size_t num_res = input.reservations.size();
  Model& model = built.model;

  if (built.supply_rows.size() != classes.size() ||
      built.class_to_vars.size() != classes.size() || built.shortfall_vars.size() != num_res ||
      built.capacity_rows.size() != num_res ||
      built.move_rows.size() != built.assignment_vars.size() ||
      (!include_rack_spread && !built.rack_spread_terms.empty())) {
    return false;
  }

  std::vector<bool> in_subset(num_res, reservation_subset.empty());
  for (int r : reservation_subset) {
    if (r < 0 || static_cast<size_t>(r) >= num_res) {
      return false;
    }
    in_subset[static_cast<size_t>(r)] = true;
  }

  // --- Assignment variables: re-derive the builder's (class, reservation)
  // sequence; any divergence from the recorded sequence means the structure
  // changed and the caller must rebuild. ---
  size_t k = 0;
  for (size_t c = 0; c < classes.size(); ++c) {
    const EquivalenceClass& cls = classes[c];
    const double cls_count = static_cast<double>(cls.count());
    model.UpdateRowBounds(built.supply_rows[c], -kInf, cls_count);
    for (size_t r = 0; r < num_res; ++r) {
      if (!in_subset[r]) {
        continue;
      }
      const ReservationSpec& spec = input.reservations[r];
      double value = spec.ValueOfType(cls.type);
      if (value <= 0.0) {
        continue;
      }
      if (k >= built.assignment_vars.size() ||
          built.assignment_vars[k].class_index != static_cast<int>(c) ||
          built.assignment_vars[k].reservation_index != static_cast<int>(r)) {
        return false;
      }
      const VarId n = built.assignment_vars[k].var;
      model.UpdateVariableBounds(n, 0, cls_count);
      model.UpdateObjectiveCost(n, (cls.current == spec.id) ? 0.0 : config.acquire_cost);
      const double initial = (cls.current == spec.id) ? cls_count : 0.0;
      built.initial_counts[k] = initial;
      const bool has_move = built.move_vars[k] != kNoVar;
      if ((initial > 0.0) != has_move || (built.move_rows[k] != kNoRow) != has_move) {
        return false;  // A move-out row exists iff the class currently sits in r.
      }
      if (has_move) {
        double ms = cls.in_use ? config.move_cost_in_use : config.move_cost_idle;
        model.UpdateVariableBounds(built.move_vars[k], 0, initial);
        model.UpdateObjectiveCost(built.move_vars[k], ms);
        model.UpdateRowBounds(built.move_rows[k], initial, kInf);
      }
      ++k;
    }
  }
  if (k != built.assignment_vars.size()) {
    return false;
  }

  // --- Per-reservation size-dependent bounds ---
  size_t expected_affinity_terms = 0;
  for (size_t r = 0; r < num_res; ++r) {
    if (!in_subset[r]) {
      if (built.shortfall_vars[r] != kNoVar) {
        return false;
      }
      continue;
    }
    const ReservationSpec& spec = input.reservations[r];
    const double capacity = spec.capacity_rru;
    if (built.shortfall_vars[r] == kNoVar || built.capacity_rows[r] == kNoRow ||
        built.hoard_rows[r] == kNoRow ||
        spec.needs_correlated_buffer != (built.buffer_vars[r] != kNoVar)) {
      return false;
    }
    expected_affinity_terms += spec.dc_affinity.size();
    model.UpdateVariableBounds(built.shortfall_vars[r], 0, std::max(capacity, 0.0));
    model.UpdateRowBounds(built.capacity_rows[r], capacity, kInf);
    const double hoard_limit = (1.0 + config.hoarding_allowance) * capacity;
    built.hoard_limits[r] = hoard_limit;
    model.UpdateRowBounds(built.hoard_rows[r], -kInf, hoard_limit);
  }

  // --- Spread / quorum / affinity thresholds (all scale with C_r) ---
  for (auto& term : built.msb_spread_terms) {
    const ReservationSpec& spec = input.reservations[static_cast<size_t>(term.reservation_index)];
    double alpha_f = spec.msb_spread_alpha > 0.0
                         ? spec.msb_spread_alpha
                         : config.msb_alpha_factor / static_cast<double>(topo.num_msbs());
    term.threshold = std::max(alpha_f * spec.capacity_rru, config.min_spread_threshold_rru);
    model.UpdateRowBounds(term.row, -kInf, term.threshold);
  }
  for (auto& term : built.rack_spread_terms) {
    const ReservationSpec& spec = input.reservations[static_cast<size_t>(term.reservation_index)];
    double alpha_k = spec.rack_spread_alpha > 0.0
                         ? spec.rack_spread_alpha
                         : config.rack_alpha_factor / static_cast<double>(topo.num_racks());
    term.threshold = std::max(alpha_k * spec.capacity_rru, config.min_spread_threshold_rru);
    model.UpdateRowBounds(term.row, -kInf, term.threshold);
  }
  for (auto& term : built.quorum_terms) {
    const ReservationSpec& spec = input.reservations[static_cast<size_t>(term.reservation_index)];
    if (spec.max_msb_fraction_hard <= 0.0) {
      return false;  // Hard cap vanished: the row set no longer matches.
    }
    term.limit = spec.max_msb_fraction_hard * spec.capacity_rru;
    model.UpdateRowBounds(term.row, -kInf, term.limit);
  }
  if (built.affinity_terms.size() != expected_affinity_terms) {
    return false;  // Affinity keys were added or removed.
  }
  for (auto& term : built.affinity_terms) {
    const ReservationSpec& spec = input.reservations[static_cast<size_t>(term.reservation_index)];
    auto it = spec.dc_affinity.find(term.dc);
    if (it == spec.dc_affinity.end()) {
      return false;
    }
    const double capacity = spec.capacity_rru;
    term.lo = std::max(0.0, it->second - spec.affinity_theta) * capacity;
    term.hi = (it->second + spec.affinity_theta) * capacity;
    model.UpdateRowBounds(term.lo_row, term.lo, kInf);
    model.UpdateRowBounds(term.hi_row, -kInf, term.hi);
  }
  return true;
}

std::vector<double> MakeWarmStart(const SolveInput& input,
                                  const std::vector<EquivalenceClass>& classes,
                                  const BuiltModel& built, const std::vector<double>& counts) {
  assert(counts.size() == built.assignment_vars.size());
  const size_t num_res = input.reservations.size();
  std::vector<double> x(built.model.num_variables(), 0.0);

  // Assignment variables and per-reservation aggregates.
  std::vector<double> total_rru(num_res, 0.0);
  std::vector<std::map<uint32_t, double>> msb_rru(num_res);
  std::vector<std::map<uint32_t, double>> rack_rru(num_res);
  std::vector<std::map<uint32_t, double>> dc_rru(num_res);
  for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
    const auto& av = built.assignment_vars[k];
    const EquivalenceClass& cls = classes[static_cast<size_t>(av.class_index)];
    const ReservationSpec& spec = input.reservations[static_cast<size_t>(av.reservation_index)];
    double n = counts[k];
    x[av.var] = n;
    double rru = spec.ValueOfType(cls.type) * n;
    total_rru[av.reservation_index] += rru;
    msb_rru[av.reservation_index][cls.msb] += rru;
    rack_rru[av.reservation_index][cls.group] += rru;
    dc_rru[av.reservation_index][cls.dc] += rru;
    // Move-out variable: o = max(0, X - n).
    if (built.move_vars[k] != kNoVar) {
      x[built.move_vars[k]] = std::max(0.0, built.initial_counts[k] - n);
    }
  }

  // Buffer variables: m_r = worst-MSB RRU.
  std::vector<double> buffer_value(num_res, 0.0);
  for (size_t r = 0; r < num_res; ++r) {
    if (built.buffer_vars[r] == kNoVar) {
      continue;
    }
    double worst = 0.0;
    for (const auto& [group, rru] : msb_rru[r]) {
      worst = std::max(worst, rru);
    }
    buffer_value[r] = worst;
    x[built.buffer_vars[r]] = worst;
  }

  // Capacity shortfall and hoarding slacks.
  for (size_t r = 0; r < num_res; ++r) {
    if (built.shortfall_vars[r] == kNoVar) {
      continue;
    }
    double capacity = input.reservations[r].capacity_rru;
    double effective = total_rru[r] - buffer_value[r];
    x[built.shortfall_vars[r]] = std::clamp(capacity - effective, 0.0, std::max(capacity, 0.0));
    if (built.hoard_vars[r] != kNoVar) {
      // Mirrors the builder's row: h >= total - m - hoard_limit.
      x[built.hoard_vars[r]] = std::max(0.0, effective - built.hoard_limits[r]);
    }
  }

  // Spread overflow variables.
  for (const auto& term : built.msb_spread_terms) {
    auto it = msb_rru[static_cast<size_t>(term.reservation_index)].find(term.group);
    double rru = it == msb_rru[static_cast<size_t>(term.reservation_index)].end() ? 0.0
                                                                                  : it->second;
    x[term.var] = std::max(0.0, rru - term.threshold);
  }
  for (const auto& term : built.rack_spread_terms) {
    auto it = rack_rru[static_cast<size_t>(term.reservation_index)].find(term.group);
    double rru = it == rack_rru[static_cast<size_t>(term.reservation_index)].end() ? 0.0
                                                                                   : it->second;
    x[term.var] = std::max(0.0, rru - term.threshold);
  }

  // Storage quorum slacks.
  for (const auto& term : built.quorum_terms) {
    auto it = msb_rru[static_cast<size_t>(term.reservation_index)].find(term.group);
    double rru = it == msb_rru[static_cast<size_t>(term.reservation_index)].end() ? 0.0
                                                                                  : it->second;
    x[term.slack] = std::max(0.0, rru - term.limit);
  }

  // Affinity slacks.
  for (const auto& term : built.affinity_terms) {
    auto it = dc_rru[static_cast<size_t>(term.reservation_index)].find(term.dc);
    double rru = it == dc_rru[static_cast<size_t>(term.reservation_index)].end() ? 0.0
                                                                                 : it->second;
    x[term.lo_slack] = std::max(0.0, term.lo - rru);
    x[term.hi_slack] = std::max(0.0, rru - term.hi);
  }

  return x;
}

}  // namespace ras
