// Capacity Portal (Figure 6's Frontend): the interface through which service
// owners create, modify, and delete capacity requests. Wraps the registry
// with admission checking so every rejected request carries an actionable
// reason (Section 5.3), and records request history for operator visibility.

#ifndef RAS_SRC_CORE_CAPACITY_PORTAL_H_
#define RAS_SRC_CORE_CAPACITY_PORTAL_H_

#include <string>
#include <vector>

#include "src/core/admission.h"
#include "src/core/reservation.h"

namespace ras {

struct PortalEvent {
  enum class Kind { kCreated, kUpdated, kDeleted, kRejected };
  Kind kind;
  ReservationId reservation = kUnassigned;
  std::string name;
  double capacity_rru = 0.0;
  std::string detail;  // Admission message, rejection reason, or delta note.
};

class CapacityPortal {
 public:
  CapacityPortal(ReservationRegistry* registry, const RegionTopology* topology,
                 const HardwareCatalog* catalog);

  // Validates against the region's hardware (CheckGrantable) and creates the
  // reservation if grantable. Rejections return kFailedPrecondition with the
  // admission report's actionable message.
  Result<ReservationId> SubmitRequest(ReservationSpec spec);

  // Re-validates and applies a capacity change. Shrinks always pass
  // admission (they free capacity); grows re-check the region.
  Status ResizeRequest(ReservationId id, double new_capacity_rru);

  // General spec update with re-admission.
  Status UpdateRequest(const ReservationSpec& spec);

  Status DeleteRequest(ReservationId id);

  // Chronological request history (operator visibility).
  const std::vector<PortalEvent>& history() const { return history_; }

 private:
  ReservationRegistry* registry_;
  const RegionTopology* topology_;
  const HardwareCatalog* catalog_;
  std::vector<PortalEvent> history_;
};

}  // namespace ras

#endif  // RAS_SRC_CORE_CAPACITY_PORTAL_H_
