#include "src/core/async_solver.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/core/initial_assignment.h"
#include "src/core/local_search.h"
#include "src/core/lp_rounding.h"
#include "src/shard/demand_splitter.h"
#include "src/shard/shard_planner.h"
#include "src/shard/shard_solve.h"
#include "src/shard/stitch_repair.h"
#include "src/util/logging.h"
#include "src/util/monotonic_time.h"

namespace ras {
namespace {

// Capacity shortfall of the final assignment: per buffered reservation,
// max(0, C_r - (total RRU - worst-MSB RRU)) over available servers.
double ComputeShortfall(const SolveInput& input,
                        const std::vector<std::pair<ServerId, ReservationId>>& targets) {
  const RegionTopology& topo = *input.topology;
  // Lookup-only (never iterated): hash order cannot leak into the shortfall.
  std::unordered_map<ReservationId, int> res_index;
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    res_index[input.reservations[r].id] = static_cast<int>(r);
  }
  std::vector<double> total(input.reservations.size(), 0.0);
  std::vector<std::map<MsbId, double>> per_msb(input.reservations.size());
  for (const auto& [server, res] : targets) {
    if (res == kUnassigned) {
      continue;
    }
    auto it = res_index.find(res);
    if (it == res_index.end()) {
      continue;
    }
    const Server& s = topo.server(server);
    double v = input.reservations[static_cast<size_t>(it->second)].ValueOfType(s.type);
    total[static_cast<size_t>(it->second)] += v;
    per_msb[static_cast<size_t>(it->second)][s.msb] += v;
  }
  double shortfall = 0.0;
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    const ReservationSpec& spec = input.reservations[r];
    double worst = 0.0;
    if (spec.needs_correlated_buffer) {
      for (const auto& [msb, rru] : per_msb[r]) {
        worst = std::max(worst, rru);
      }
    }
    shortfall += std::max(0.0, spec.capacity_rru - (total[r] - worst));
  }
  return shortfall;
}

}  // namespace

AsyncSolver::PhaseOutcome AsyncSolver::RunPhase(const SolveInput& input,
                                                const std::vector<EquivalenceClass>& classes,
                                                bool include_rack_spread,
                                                const std::vector<int>& subset,
                                                const MipOptions& mip_options,
                                                double snapshot_seconds) {
  PhaseOutcome outcome;
  outcome.stats.ran = true;
  outcome.stats.timings.ras_build_s = snapshot_seconds;

  // Solver build: symmetry-reduced model construction.
  double t0 = util::MonotonicSeconds();
  BuiltModel built = BuildRasModel(input, classes, config_, include_rack_spread, subset);
  outcome.stats.timings.solver_build_s = util::MonotonicSeconds() - t0;
  outcome.stats.assignment_variables = built.num_assignment_variables();
  outcome.stats.model_rows = built.model.num_rows();
  outcome.stats.model_variables = built.model.num_variables();
  outcome.stats.memory_bytes = built.EstimatedMemoryBytes();

  // Initial state: greedy warm start, polished by a short local search (the
  // two backends compose — the search's relocate moves fix spread cheaply,
  // and the MIP then starts from, and can only improve on, that incumbent).
  t0 = util::MonotonicSeconds();
  std::vector<double> counts = BuildInitialCounts(input, classes, built);
  if (config_.backend == SolverBackend::kMip) {
    LocalSearchOptions polish;
    polish.time_limit_seconds = std::min(1.0, mip_options.time_limit_seconds * 0.1);
    polish.seed = 17;
    counts = LocalSearchOptimize(input, classes, built, counts, polish).counts;
  }
  std::vector<double> warm = MakeWarmStart(input, classes, built, counts);
  outcome.stats.warm_start_objective = built.model.Objective(warm);
  outcome.stats.timings.initial_state_s = util::MonotonicSeconds() - t0;

  // Optimize (Section 6: the backend is pluggable; MIP is the paper's choice
  // for RAS, local search the near-realtime alternative).
  t0 = util::MonotonicSeconds();
  std::vector<double> local_solution;
  const std::vector<double>* solution = nullptr;
  if (config_.backend == SolverBackend::kLocalSearch) {
    LocalSearchOptions ls_options;
    ls_options.time_limit_seconds = mip_options.time_limit_seconds;
    LocalSearchResult ls = LocalSearchOptimize(input, classes, built, counts, ls_options);
    local_solution = MakeWarmStart(input, classes, built, ls.counts);
    solution = &local_solution;
    outcome.stats.timings.mip_s = util::MonotonicSeconds() - t0;
    outcome.stats.mip_status = MipStatus::kFeasible;  // No optimality proof.
    outcome.stats.nodes = ls.proposals;
    outcome.stats.objective = ls.final_objective;
    outcome.stats.best_bound = -kInf;
  } else {
    MipOptions options = mip_options;
    options.lp = LpOptions();
    options.threads = std::max(options.threads, config_.solver_threads);
    options.heuristic = MakeLpRoundingHeuristic(input, classes, built);
    MipSolver solver(options);
    MipResult mip = solver.Solve(built.model, &warm);
    outcome.stats.timings.mip_s = util::MonotonicSeconds() - t0;
    outcome.stats.mip_status = mip.status;
    outcome.stats.nodes = mip.nodes;
    if (mip.status == MipStatus::kOptimal || mip.status == MipStatus::kFeasible) {
      local_solution = std::move(mip.x);
      solution = &local_solution;
      outcome.stats.objective = mip.objective;
      outcome.stats.best_bound = mip.best_bound;
    } else {
      // MIP produced nothing usable: ship the greedy initial state, exactly
      // the paper's posture that a timed-out solve must still yield a valid
      // (possibly suboptimal) assignment.
      RAS_LOG(kWarning) << "MIP returned " << MipStatusName(mip.status)
                        << "; falling back to the greedy initial state";
      solution = &warm;
      outcome.stats.objective = outcome.stats.warm_start_objective;
      outcome.stats.best_bound = mip.best_bound;
    }
  }

  outcome.decoded = DecodeAssignment(input, classes, built, *solution);
  outcome.shortfall_rru = 0.0;
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    if (built.shortfall_vars[r] != kNoVar) {
      outcome.shortfall_rru += (*solution)[built.shortfall_vars[r]];
    }
  }
  return outcome;
}

std::vector<double> AsyncSolver::RackOverflow(const SolveInput& input,
                                              const DecodedAssignment& decoded) {
  const RegionTopology& topo = *input.topology;
  std::unordered_map<ReservationId, int> res_index;
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    res_index[input.reservations[r].id] = static_cast<int>(r);
  }
  // Per (reservation, rack) RRU.
  std::vector<std::map<RackId, double>> rack_rru(input.reservations.size());
  for (const auto& [server, res] : decoded.targets) {
    if (res == kUnassigned) {
      continue;
    }
    auto it = res_index.find(res);
    if (it == res_index.end()) {
      continue;
    }
    const Server& s = topo.server(server);
    double v = input.reservations[static_cast<size_t>(it->second)].ValueOfType(s.type);
    rack_rru[static_cast<size_t>(it->second)][s.rack] += v;
  }
  std::vector<double> overflow(input.reservations.size(), 0.0);
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    const ReservationSpec& spec = input.reservations[r];
    double alpha_k = spec.rack_spread_alpha > 0.0
                         ? spec.rack_spread_alpha
                         : config_.rack_alpha_factor / static_cast<double>(topo.num_racks());
    double threshold = std::max(alpha_k * spec.capacity_rru, config_.min_spread_threshold_rru);
    for (const auto& [rack, rru] : rack_rru[r]) {
      overflow[r] += std::max(0.0, rru - threshold);
    }
  }
  return overflow;
}

const char* SolveModeName(SolveMode mode) {
  switch (mode) {
    case SolveMode::kFullTwoPhase:
      return "FULL_TWO_PHASE";
    case SolveMode::kPhase1Only:
      return "PHASE1_ONLY";
    case SolveMode::kIncumbentOnly:
      return "INCUMBENT_ONLY";
  }
  return "UNKNOWN";
}

Result<SolveStats> AsyncSolver::SolveSnapshot(const SolveInput& input,
                                              DecodedAssignment* decoded_out, SolveMode mode) {
  if (input.topology == nullptr || input.catalog == nullptr) {
    return Status::InvalidArgument("solve input missing topology or catalog");
  }
  if (fault_hook_) {
    Status injected = fault_hook_(mode);
    if (!injected.ok()) {
      return injected;
    }
  }

  // Shard decomposition (src/shard): K > 1 partitions the region and solves
  // the shards independently. shard_count == 1 resolves to 1 and falls
  // through to the monolithic path below, bit-for-bit unchanged.
  const int shards = EffectiveShardCount(config_.shard_count, input.servers.size(),
                                         input.topology->num_racks());
  if (shards > 1) {
    return SolveSharded(input, decoded_out, mode, shards);
  }

  double start = util::MonotonicSeconds();
  SolveStats stats;

  if (mode == SolveMode::kIncumbentOnly) {
    // Degraded rung: skip the MIP entirely and ship the greedy spread-aware
    // repair of the current assignment — bounded milliseconds, always
    // produces a valid (if suboptimal) region-wide assignment.
    double t0 = util::MonotonicSeconds();
    std::vector<EquivalenceClass> classes = BuildEquivalenceClasses(input, Scope::kMsb);
    BuiltModel built = BuildRasModel(input, classes, config_, /*include_rack_spread=*/false);
    stats.phase1.timings.ras_build_s = util::MonotonicSeconds() - t0;
    stats.phase1.assignment_variables = built.num_assignment_variables();
    stats.phase1.model_rows = built.model.num_rows();
    stats.phase1.model_variables = built.model.num_variables();
    stats.phase1.memory_bytes = built.EstimatedMemoryBytes();
    t0 = util::MonotonicSeconds();
    std::vector<double> counts = BuildInitialCounts(input, classes, built);
    std::vector<double> warm = MakeWarmStart(input, classes, built, counts);
    stats.phase1.timings.initial_state_s = util::MonotonicSeconds() - t0;
    stats.phase1.ran = true;
    stats.phase1.mip_status = MipStatus::kFeasible;  // Greedy: no bound.
    stats.phase1.objective = built.model.Objective(warm);
    stats.phase1.warm_start_objective = stats.phase1.objective;
    stats.phase1.best_bound = -kInf;
    DecodedAssignment decoded = DecodeAssignment(input, classes, built, warm);
    for (const auto& [server, res] : decoded.targets) {
      const ServerSolveState& before = input.servers[server];
      if (before.current != res) {
        ++stats.moves_total;
        (before.in_use ? stats.moves_in_use : stats.moves_idle)++;
      }
    }
    stats.total_shortfall_rru = ComputeShortfall(input, decoded.targets);
    stats.total_seconds = util::MonotonicSeconds() - start;
    if (decoded_out != nullptr) {
      *decoded_out = std::move(decoded);
    }
    return stats;
  }

  // ---- Phase 1: MSB granularity, region-wide ----
  double t0 = util::MonotonicSeconds();
  std::vector<EquivalenceClass> classes1 = BuildEquivalenceClasses(input, Scope::kMsb);
  double ras_build1 = util::MonotonicSeconds() - t0;
  PhaseOutcome phase1 = RunPhase(input, classes1, /*include_rack_spread=*/false, {},
                                 config_.phase1_mip, ras_build1);
  stats.phase1 = phase1.stats;

  // Working assignment after phase 1.
  std::vector<std::pair<ServerId, ReservationId>> final_targets = phase1.decoded.targets;

  // ---- Phase 2: rack granularity for the worst rack offenders ----
  if (mode == SolveMode::kPhase1Only) {
    for (const auto& [server, res] : final_targets) {
      const ServerSolveState& before = input.servers[server];
      if (before.current != res) {
        ++stats.moves_total;
        (before.in_use ? stats.moves_in_use : stats.moves_idle)++;
      }
    }
    stats.total_shortfall_rru = ComputeShortfall(input, final_targets);
    stats.total_seconds = util::MonotonicSeconds() - start;
    if (decoded_out != nullptr) {
      decoded_out->targets = std::move(final_targets);
      decoded_out->moves_total = stats.moves_total;
      decoded_out->moves_in_use = stats.moves_in_use;
      decoded_out->moves_idle = stats.moves_idle;
    }
    return stats;
  }
  t0 = util::MonotonicSeconds();
  SolveInput input2 = input;  // Apply phase-1 targets as the new current state.
  for (const auto& [server, res] : final_targets) {
    input2.servers[server].current = res;
  }
  std::vector<double> overflow = RackOverflow(input2, phase1.decoded);
  std::vector<int> order(input.reservations.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(),
            [&overflow](int a, int b) { return overflow[a] > overflow[b]; });
  std::vector<int> subset;
  size_t max_take = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(static_cast<double>(input.reservations.size()) *
                                       config_.phase2_reservation_percent / 100.0)));
  for (int r : order) {
    if (subset.size() >= max_take || overflow[static_cast<size_t>(r)] <= 1e-9) {
      break;
    }
    subset.push_back(r);
  }
  double ras_build2 = util::MonotonicSeconds() - t0;

  if (!subset.empty()) {
    std::unordered_set<ReservationId> subset_ids;
    for (int r : subset) {
      subset_ids.insert(input.reservations[static_cast<size_t>(r)].id);
    }
    ClassFilter filter;
    filter.reservations = &subset_ids;
    t0 = util::MonotonicSeconds();
    std::vector<EquivalenceClass> classes2 =
        BuildEquivalenceClasses(input2, Scope::kRack, filter);
    ras_build2 += util::MonotonicSeconds() - t0;

    // Respect the assignment-variable budget: shrink the subset if a crude
    // upper bound (classes x subset reservations) exceeds it.
    while (subset.size() > 1 &&
           classes2.size() * subset.size() > config_.phase2_max_assignment_vars) {
      subset.pop_back();
      subset_ids.erase(input.reservations[static_cast<size_t>(order[subset.size()])].id);
      classes2 = BuildEquivalenceClasses(input2, Scope::kRack, filter);
    }

    PhaseOutcome phase2 = RunPhase(input2, classes2, /*include_rack_spread=*/true, subset,
                                   config_.phase2_mip, ras_build2);
    stats.phase2 = phase2.stats;

    // Merge: phase-2 targets override phase-1 for the servers it touched.
    // Ordered map: the merged target list comes straight out of iteration
    // order, already sorted by server id.
    std::map<ServerId, ReservationId> merged;
    for (const auto& [server, res] : final_targets) {
      merged[server] = res;
    }
    for (const auto& [server, res] : phase2.decoded.targets) {
      merged[server] = res;
    }
    final_targets.assign(merged.begin(), merged.end());
  }

  // ---- Final accounting against the original snapshot ----
  for (const auto& [server, res] : final_targets) {
    const ServerSolveState& before = input.servers[server];
    if (before.current != res) {
      ++stats.moves_total;
      (before.in_use ? stats.moves_in_use : stats.moves_idle)++;
    }
  }
  stats.total_shortfall_rru = ComputeShortfall(input, final_targets);
  stats.total_seconds = util::MonotonicSeconds() - start;

  if (decoded_out != nullptr) {
    decoded_out->targets = std::move(final_targets);
    decoded_out->moves_total = stats.moves_total;
    decoded_out->moves_in_use = stats.moves_in_use;
    decoded_out->moves_idle = stats.moves_idle;
  }
  return stats;
}

Result<SolveStats> AsyncSolver::SolveSharded(const SolveInput& input,
                                             DecodedAssignment* decoded_out, SolveMode mode,
                                             int shard_count) {
  double start = util::MonotonicSeconds();
  ShardPlanOptions plan_options;
  plan_options.shard_count = shard_count;
  plan_options.seed = config_.shard_seed;
  ShardPlan plan = PlanShards(*input.topology, plan_options);
  ShardDemand demand = SplitDemand(input, plan);

  // Each shard runs this solver's monolithic path on its sub-input.
  // shard_count = 1 terminates the recursion; solver_threads = 1 keeps every
  // per-shard solve serial and deterministic — the shards themselves are the
  // parallelism axis.
  SolverConfig sub_config = config_;
  sub_config.shard_count = 1;
  sub_config.solver_threads = 1;
  ShardSolveFn solve_shard = [&sub_config, mode](const SolveInput& shard_input,
                                                 DecodedAssignment* decoded) {
    AsyncSolver shard_solver(sub_config);
    return shard_solver.SolveSnapshot(shard_input, decoded, mode);
  };
  ShardSolveOptions solve_options;
  solve_options.threads = config_.shard_threads;
  ShardSolveOutcome outcome = SolveShards(input, plan, demand, solve_shard, solve_options);
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  if (outcome.aggregate.failed_shards > 0) {
    RAS_LOG(kWarning) << outcome.aggregate.failed_shards << "/" << shard_count
                      << " shards failed; their servers keep snapshot bindings pending repair";
  }

  SolveStats stats = outcome.aggregate;
  stats.shard_count = shard_count;

  // Stitch repair: rounding losses and shard-local infeasibilities are fixed
  // region-wide, across shard boundaries.
  StitchRepairOptions repair_options;
  repair_options.max_moves = config_.shard_repair_max_moves;
  // Spread rebalance uses the same Ψ_F threshold the model charges beta
  // against, so repair moves pay down exactly the penalty the merge created.
  repair_options.msb_spread_fraction =
      config_.msb_alpha_factor / static_cast<double>(input.topology->num_msbs());
  repair_options.min_spread_threshold_rru = config_.min_spread_threshold_rru;
  StitchRepairStats repair = RepairShortfalls(input, outcome.merged.targets, repair_options);
  stats.repair_moves = repair.moves();
  stats.repair_shortfall_before_rru = repair.shortfall_before_rru;

  for (const auto& [server, res] : outcome.merged.targets) {
    const ServerSolveState& before = input.servers[server];
    if (before.current != res) {
      ++stats.moves_total;
      (before.in_use ? stats.moves_in_use : stats.moves_idle)++;
    }
  }
  stats.total_shortfall_rru = ComputeShortfall(input, outcome.merged.targets);
  stats.total_seconds = util::MonotonicSeconds() - start;

  if (decoded_out != nullptr) {
    decoded_out->targets = std::move(outcome.merged.targets);
    decoded_out->moves_total = stats.moves_total;
    decoded_out->moves_in_use = stats.moves_in_use;
    decoded_out->moves_idle = stats.moves_idle;
  }
  return stats;
}

Result<SolveStats> AsyncSolver::SolveOnce(ResourceBroker& broker,
                                          const ReservationRegistry& registry,
                                          const HardwareCatalog& catalog, SolveMode mode) {
  double t0 = util::MonotonicSeconds();
  SolveInput input = SnapshotSolveInput(broker, registry, catalog);
  double snapshot_s = util::MonotonicSeconds() - t0;

  DecodedAssignment decoded;
  Result<SolveStats> stats = SolveSnapshot(input, &decoded, mode);
  if (!stats.ok()) {
    return stats;
  }
  stats->phase1.timings.ras_build_s += snapshot_s;
  stats->total_seconds += snapshot_s;

  // Persist the binding intent (Figure 6, step 3) — all-or-nothing, so a
  // broker write failure cannot strand a half-applied target set.
  Status persisted = broker.ApplyTargets(decoded.targets);
  if (!persisted.ok()) {
    return persisted;
  }
  return stats;
}

}  // namespace ras
